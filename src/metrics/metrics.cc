#include "metrics/metrics.h"

#include <cmath>
#include <cstdlib>

namespace davinci {

double AverageRelativeError(const std::vector<Estimate>& observations) {
  double sum = 0.0;
  size_t counted = 0;
  for (const Estimate& o : observations) {
    if (o.truth == 0) continue;
    sum += static_cast<double>(std::llabs(o.truth - o.estimate)) /
           static_cast<double>(std::llabs(o.truth));
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double AverageAbsoluteError(const std::vector<Estimate>& observations) {
  if (observations.empty()) return 0.0;
  double sum = 0.0;
  for (const Estimate& o : observations) {
    sum += static_cast<double>(std::llabs(o.truth - o.estimate));
  }
  return sum / static_cast<double>(observations.size());
}

double F1Score(size_t correct_reported, size_t total_reported,
               size_t total_actual) {
  if (total_reported == 0 || total_actual == 0) return 0.0;
  double precision = static_cast<double>(correct_reported) /
                     static_cast<double>(total_reported);
  double recall = static_cast<double>(correct_reported) /
                  static_cast<double>(total_actual);
  if (precision + recall == 0.0) return 0.0;
  return 2.0 * precision * recall / (precision + recall);
}

double RelativeError(double truth, double estimate) {
  if (truth == 0.0) return estimate == 0.0 ? 0.0 : 1.0;
  return std::fabs(truth - estimate) / std::fabs(truth);
}

double WeightedMeanRelativeError(const std::map<int64_t, int64_t>& truth,
                                 const std::map<int64_t, int64_t>& estimate) {
  double numerator = 0.0;
  double denominator = 0.0;
  auto account = [&](int64_t t, int64_t e) {
    numerator += std::fabs(static_cast<double>(t - e));
    denominator += (static_cast<double>(t) + static_cast<double>(e)) / 2.0;
  };
  for (const auto& [size, n] : truth) {
    auto it = estimate.find(size);
    account(n, it == estimate.end() ? 0 : it->second);
  }
  for (const auto& [size, n] : estimate) {
    if (truth.find(size) == truth.end()) account(0, n);
  }
  return denominator == 0.0 ? 0.0 : numerator / denominator;
}

}  // namespace davinci
