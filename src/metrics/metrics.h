#ifndef DAVINCI_METRICS_METRICS_H_
#define DAVINCI_METRICS_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

// Evaluation metrics exactly as defined in the paper (§V, "Metrics").

namespace davinci {

// One (true value, estimated value) observation.
struct Estimate {
  int64_t truth = 0;
  int64_t estimate = 0;
};

// ARE = (1/|Ω|) Σ |v - v̂| / |v|. Observations with truth == 0 are skipped.
double AverageRelativeError(const std::vector<Estimate>& observations);

// AAE = (1/|Ω|) Σ |v - v̂|.
double AverageAbsoluteError(const std::vector<Estimate>& observations);

// F1 = 2·PR·RR / (PR + RR), from counts of correctly reported, total
// reported, and total actual positives.
double F1Score(size_t correct_reported, size_t total_reported,
               size_t total_actual);

// RE = |Tru − Est| / Tru.
double RelativeError(double truth, double estimate);

// WMRE = Σ|n_i − n̂_i| / Σ (n_i + n̂_i)/2 over the flow-size histogram.
double WeightedMeanRelativeError(const std::map<int64_t, int64_t>& truth,
                                 const std::map<int64_t, int64_t>& estimate);

// Wall-clock timer for throughput measurements.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Restart() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Million packets per second.
inline double ThroughputMpps(size_t packets, double seconds) {
  if (seconds <= 0) return 0.0;
  return static_cast<double>(packets) / seconds / 1e6;
}

}  // namespace davinci

#endif  // DAVINCI_METRICS_METRICS_H_
