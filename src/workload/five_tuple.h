#ifndef DAVINCI_WORKLOAD_FIVE_TUPLE_H_
#define DAVINCI_WORKLOAD_FIVE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"

// Network five-tuples — the flow key real traces use. Sketches operate on
// 32-bit fingerprints (as the paper does for long keys); this header
// provides the tuple type, its fingerprint, and a five-tuple trace
// generator so the examples/benches can exercise the realistic key shape.

namespace davinci {

struct FiveTuple {
  uint32_t src_ip = 0;
  uint32_t dst_ip = 0;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  uint8_t protocol = 6;  // TCP

  bool operator==(const FiveTuple& other) const = default;

  // 32-bit non-zero fingerprint over the 13 key bytes (lookup3, like the
  // paper's Bob Hash usage).
  uint32_t Fingerprint() const;

  // Dotted-quad rendering for logs/reports.
  std::string ToString() const;
};

struct FiveTupleTrace {
  std::vector<FiveTuple> packets;
};

// A skewed five-tuple trace: `num_flows` distinct tuples whose packet
// counts follow rank^-skew, shuffled (same construction as BuildSkewedTrace
// but producing real tuples).
FiveTupleTrace BuildFiveTupleTrace(size_t num_packets, size_t num_flows,
                                   double skew, uint64_t seed);

}  // namespace davinci

#endif  // DAVINCI_WORKLOAD_FIVE_TUPLE_H_
