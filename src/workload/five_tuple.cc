#include "workload/five_tuple.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>

namespace davinci {

uint32_t FiveTuple::Fingerprint() const {
  uint8_t bytes[13];
  std::memcpy(bytes, &src_ip, 4);
  std::memcpy(bytes + 4, &dst_ip, 4);
  std::memcpy(bytes + 8, &src_port, 2);
  std::memcpy(bytes + 10, &dst_port, 2);
  bytes[12] = protocol;
  uint32_t fp = BobHash(bytes, sizeof(bytes), 0x5eed);
  return fp == 0 ? 1u : fp;
}

std::string FiveTuple::ToString() const {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%u.%u.%u.%u:%u->%u.%u.%u.%u:%u/%u",
                src_ip >> 24, (src_ip >> 16) & 0xff, (src_ip >> 8) & 0xff,
                src_ip & 0xff, src_port, dst_ip >> 24, (dst_ip >> 16) & 0xff,
                (dst_ip >> 8) & 0xff, dst_ip & 0xff, dst_port, protocol);
  return buffer;
}

FiveTupleTrace BuildFiveTupleTrace(size_t num_packets, size_t num_flows,
                                   double skew, uint64_t seed) {
  std::mt19937_64 rng(seed * 29000989 + 7);

  // Distinct tuples: random endpoints, web-like port mix.
  std::vector<FiveTuple> flows(num_flows);
  for (FiveTuple& flow : flows) {
    flow.src_ip = static_cast<uint32_t>(rng());
    flow.dst_ip = static_cast<uint32_t>(rng());
    flow.src_port = static_cast<uint16_t>(1024 + rng() % 64000);
    flow.dst_port = (rng() % 4 == 0) ? 53 : 443;
    flow.protocol = (flow.dst_port == 53) ? 17 : 6;
  }

  // Rank^-skew packet counts summing to num_packets (min 1 per flow).
  std::vector<double> weights(num_flows);
  double total_weight = 0;
  for (size_t i = 0; i < num_flows; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
    total_weight += weights[i];
  }
  FiveTupleTrace trace;
  trace.packets.reserve(num_packets);
  size_t assigned = 0;
  for (size_t i = 0; i < num_flows && assigned < num_packets; ++i) {
    size_t count = std::max<size_t>(
        1, static_cast<size_t>(weights[i] / total_weight *
                               static_cast<double>(num_packets)));
    count = std::min(count, num_packets - assigned);
    trace.packets.insert(trace.packets.end(), count, flows[i]);
    assigned += count;
  }
  while (assigned < num_packets) {
    trace.packets.push_back(flows[0]);
    ++assigned;
  }
  std::shuffle(trace.packets.begin(), trace.packets.end(), rng);
  return trace;
}

}  // namespace davinci
