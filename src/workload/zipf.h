#ifndef DAVINCI_WORKLOAD_ZIPF_H_
#define DAVINCI_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <random>
#include <vector>

// Seeded Zipf(α) generator over the domain {1, ..., n}.
//
// The evaluation traces (CAIDA/MAWI-like) are synthesized from Zipf
// distributions because real traces depend only on the key-frequency skew
// for every algorithm in this repository (see DESIGN.md §4). We use the
// classic cumulative-probability inversion with a precomputed CDF, which is
// exact and fast enough for tens of millions of samples.

namespace davinci {

class ZipfGenerator {
 public:
  // Domain {1..n}; P(k) ∝ 1 / k^alpha. alpha == 0 is uniform.
  ZipfGenerator(uint64_t n, double alpha, uint64_t seed);

  // Next sample in [1, n].
  uint64_t Next();

  uint64_t domain_size() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  uint64_t n_;
  double alpha_;
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> uniform_;
  std::vector<double> cdf_;  // cdf_[k-1] = P(X <= k)
};

}  // namespace davinci

#endif  // DAVINCI_WORKLOAD_ZIPF_H_
