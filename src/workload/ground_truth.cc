#include "workload/ground_truth.h"

#include <cmath>
#include <cstdlib>

namespace davinci {

GroundTruth::GroundTruth(const std::vector<uint32_t>& keys) {
  freq_.reserve(keys.size() / 4 + 16);
  for (uint32_t k : keys) {
    ++freq_[k];
  }
  total_ = static_cast<int64_t>(keys.size());
}

std::vector<std::pair<uint32_t, int64_t>> GroundTruth::HeavyHitters(
    int64_t threshold) const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const auto& [key, f] : freq_) {
    if (f > threshold) out.emplace_back(key, f);
  }
  return out;
}

std::map<int64_t, int64_t> GroundTruth::Distribution() const {
  std::map<int64_t, int64_t> histogram;
  for (const auto& [key, f] : freq_) {
    (void)key;
    if (f != 0) ++histogram[std::llabs(f)];
  }
  return histogram;
}

double GroundTruth::Entropy() const {
  double entropy = 0.0;
  double total = 0.0;
  for (const auto& [key, f] : freq_) {
    (void)key;
    if (f > 0) total += static_cast<double>(f);
  }
  if (total <= 0) return 0.0;
  for (const auto& [key, f] : freq_) {
    (void)key;
    if (f > 0) {
      double p = static_cast<double>(f) / total;
      entropy -= p * std::log(p);
    }
  }
  return entropy;
}

double GroundTruth::InnerJoin(const GroundTruth& a, const GroundTruth& b) {
  const GroundTruth* small = &a;
  const GroundTruth* large = &b;
  if (small->freq_.size() > large->freq_.size()) std::swap(small, large);
  double join = 0.0;
  for (const auto& [key, f] : small->freq_) {
    auto it = large->freq_.find(key);
    if (it != large->freq_.end()) {
      join += static_cast<double>(f) * static_cast<double>(it->second);
    }
  }
  return join;
}

GroundTruth GroundTruth::Difference(const GroundTruth& a,
                                    const GroundTruth& b) {
  GroundTruth out;
  out.freq_ = a.freq_;
  for (const auto& [key, f] : b.freq_) {
    out.freq_[key] -= f;
    if (out.freq_[key] == 0) out.freq_.erase(key);
  }
  out.total_ = a.total_ - b.total_;
  return out;
}

GroundTruth GroundTruth::Union(const GroundTruth& a, const GroundTruth& b) {
  GroundTruth out;
  out.freq_ = a.freq_;
  for (const auto& [key, f] : b.freq_) {
    out.freq_[key] += f;
  }
  out.total_ = a.total_ + b.total_;
  return out;
}

}  // namespace davinci
