#include "workload/trace.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"

namespace davinci {
namespace {

// Deterministically draws `count` distinct non-zero 32-bit keys.
std::vector<uint32_t> DrawDistinctKeys(size_t count, uint64_t seed) {
  std::vector<uint32_t> keys;
  keys.reserve(count);
  std::unordered_set<uint32_t> seen;
  seen.reserve(count * 2);
  uint64_t i = 0;
  while (keys.size() < count) {
    uint32_t k = static_cast<uint32_t>(Mix64(seed * 0x9e3779b9ULL + i++));
    if (k != 0 && seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

}  // namespace

Trace BuildSkewedTrace(const std::string& name, size_t num_packets,
                       size_t num_flows, double skew, uint64_t seed) {
  // Flow sizes proportional to rank^-skew, each at least 1 packet,
  // adjusted so they sum to exactly num_packets.
  std::vector<double> weights(num_flows);
  double total_weight = 0.0;
  for (size_t i = 0; i < num_flows; ++i) {
    weights[i] = 1.0 / std::pow(static_cast<double>(i + 1), skew);
    total_weight += weights[i];
  }

  std::vector<size_t> sizes(num_flows);
  size_t assigned = 0;
  for (size_t i = 0; i < num_flows; ++i) {
    size_t s = static_cast<size_t>(
        weights[i] / total_weight * static_cast<double>(num_packets));
    sizes[i] = std::max<size_t>(1, s);
    assigned += sizes[i];
  }
  // Fix rounding drift on the largest flow (rank 0); if we overshot by more
  // than rank 0 can absorb, trim the next-largest flows too.
  size_t rank = 0;
  while (assigned != num_packets && rank < num_flows) {
    if (assigned < num_packets) {
      sizes[0] += num_packets - assigned;
      assigned = num_packets;
    } else {
      size_t excess = assigned - num_packets;
      size_t take = std::min(excess, sizes[rank] - 1);
      sizes[rank] -= take;
      assigned -= take;
      ++rank;
    }
  }

  std::vector<uint32_t> ids = DrawDistinctKeys(num_flows, seed);
  Trace trace;
  trace.name = name;
  trace.keys.reserve(num_packets);
  for (size_t i = 0; i < num_flows; ++i) {
    trace.keys.insert(trace.keys.end(), sizes[i], ids[i]);
  }
  std::mt19937_64 rng(seed ^ 0xc0ffee);
  std::shuffle(trace.keys.begin(), trace.keys.end(), rng);
  return trace;
}

Trace BuildCaidaLike(double scale, uint64_t seed) {
  return BuildSkewedTrace("CAIDA", static_cast<size_t>(2472727 * scale),
                          static_cast<size_t>(109642 * scale), 1.05, seed);
}

Trace BuildMawiLike(double scale, uint64_t seed) {
  return BuildSkewedTrace("MAWI", static_cast<size_t>(2000000 * scale),
                          static_cast<size_t>(200471 * scale), 0.9, seed);
}

Trace BuildTpcdsLike(double scale, uint64_t seed) {
  // TPC-DS join keys: tiny domain, enormous multiplicities.
  return BuildSkewedTrace("TPC-DS", static_cast<size_t>(4903874 * scale),
                          std::max<size_t>(64, static_cast<size_t>(1834 * scale)),
                          1.2, seed);
}

Trace BuildUniformTrace(const std::string& name, size_t num_packets,
                        size_t num_flows, uint64_t seed) {
  return BuildSkewedTrace(name, num_packets, num_flows, 0.0, seed);
}

Trace BuildBurstyTrace(const std::string& name, size_t num_packets,
                       size_t num_flows, double skew, size_t burst_length,
                       uint64_t seed) {
  Trace shuffled = BuildSkewedTrace(name, num_packets, num_flows, skew, seed);
  // Recover per-flow sizes, then re-emit as interleaved bursts: repeatedly
  // pick a random live flow and emit up to `burst_length` of its packets.
  std::unordered_map<uint32_t, size_t> remaining;
  for (uint32_t key : shuffled.keys) ++remaining[key];
  std::vector<uint32_t> live;
  live.reserve(remaining.size());
  for (const auto& [key, count] : remaining) {
    (void)count;
    live.push_back(key);
  }
  std::mt19937_64 rng(seed ^ 0xb0757);
  Trace trace;
  trace.name = name;
  trace.keys.reserve(num_packets);
  burst_length = std::max<size_t>(1, burst_length);
  while (!live.empty()) {
    size_t pick = rng() % live.size();
    uint32_t key = live[pick];
    size_t& left = remaining[key];
    size_t burst = std::min(burst_length, left);
    trace.keys.insert(trace.keys.end(), burst, key);
    left -= burst;
    if (left == 0) {
      live[pick] = live.back();
      live.pop_back();
    }
  }
  return trace;
}

TraceStats ComputeStats(const Trace& trace) {
  TraceStats stats;
  stats.packets = trace.keys.size();
  std::unordered_set<uint32_t> distinct(trace.keys.begin(), trace.keys.end());
  stats.flows = distinct.size();
  stats.cardinality = distinct.size();
  return stats;
}

Trace Slice(const Trace& trace, size_t begin, size_t end,
            const std::string& name) {
  Trace out;
  out.name = name;
  end = std::min(end, trace.keys.size());
  begin = std::min(begin, end);
  out.keys.assign(trace.keys.begin() + begin, trace.keys.begin() + end);
  return out;
}

}  // namespace davinci
