#ifndef DAVINCI_WORKLOAD_TRACE_H_
#define DAVINCI_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

// Synthetic packet traces calibrated to the paper's datasets (Table II).
//
// A trace is a stream of flow keys (one entry per packet). We synthesize a
// trace with an exact packet count, an exact flow count and a Zipf-like
// flow-size profile, then shuffle packet order. See DESIGN.md §4 for why
// this substitution preserves the evaluated behaviour.

namespace davinci {

struct Trace {
  std::string name;
  std::vector<uint32_t> keys;  // non-zero flow IDs, one per packet
};

struct TraceStats {
  size_t packets = 0;
  size_t flows = 0;        // distinct keys
  size_t cardinality = 0;  // == flows for these traces, kept for Table II
};

// Builds a trace with exactly `num_packets` packets over exactly
// `num_flows` distinct non-zero keys whose sizes follow rank^-skew.
Trace BuildSkewedTrace(const std::string& name, size_t num_packets,
                       size_t num_flows, double skew, uint64_t seed);

// Table II calibrations. `scale` in (0,1] shrinks packet/flow counts
// proportionally for quick runs (1.0 reproduces the paper's sizes).
Trace BuildCaidaLike(double scale = 1.0, uint64_t seed = 1);
Trace BuildMawiLike(double scale = 1.0, uint64_t seed = 2);
Trace BuildTpcdsLike(double scale = 1.0, uint64_t seed = 3);

// Uniform (skew-free) trace: the adversarial case for elephant-oriented
// sketches — every flow has the same expected size.
Trace BuildUniformTrace(const std::string& name, size_t num_packets,
                        size_t num_flows, uint64_t seed);

// Bursty trace: same flow-size profile as BuildSkewedTrace, but packets of
// a flow arrive in contiguous bursts of ~`burst_length` instead of being
// globally shuffled. Exercises the temporal locality the FP eviction
// policy (and HashPipe-style pipelines) are sensitive to.
Trace BuildBurstyTrace(const std::string& name, size_t num_packets,
                       size_t num_flows, double skew, size_t burst_length,
                       uint64_t seed);

TraceStats ComputeStats(const Trace& trace);

// Slice helper: keys[begin, end) as a new trace (used to build the
// union/difference/join operand sets exactly as the paper does).
Trace Slice(const Trace& trace, size_t begin, size_t end,
            const std::string& name);

}  // namespace davinci

#endif  // DAVINCI_WORKLOAD_TRACE_H_
