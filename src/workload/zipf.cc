#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace davinci {

ZipfGenerator::ZipfGenerator(uint64_t n, double alpha, uint64_t seed)
    : n_(n), alpha_(alpha), rng_(seed), uniform_(0.0, 1.0) {
  cdf_.resize(n);
  double sum = 0.0;
  for (uint64_t k = 1; k <= n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k), alpha);
    cdf_[k - 1] = sum;
  }
  for (auto& v : cdf_) v /= sum;
}

uint64_t ZipfGenerator::Next() {
  double u = uniform_(rng_);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<uint64_t>(it - cdf_.begin()) + 1;
}

}  // namespace davinci
