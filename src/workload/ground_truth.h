#ifndef DAVINCI_WORKLOAD_GROUND_TRUTH_H_
#define DAVINCI_WORKLOAD_GROUND_TRUTH_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

// Exact answers for every measurement task, computed from the raw stream.
// Benches and tests compare sketch estimates against these.

namespace davinci {

class GroundTruth {
 public:
  GroundTruth() = default;
  explicit GroundTruth(const std::vector<uint32_t>& keys);

  // Signed per-key frequencies (signed so set differences fit the type).
  const std::unordered_map<uint32_t, int64_t>& frequencies() const {
    return freq_;
  }

  int64_t total() const { return total_; }
  size_t cardinality() const { return freq_.size(); }

  // Elements with frequency strictly above `threshold`.
  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const;

  // |frequency| histogram: size -> number of flows of that size.
  std::map<int64_t, int64_t> Distribution() const;

  // Empirical entropy  -Σ (f_i/S) ln(f_i/S)  over positive frequencies.
  double Entropy() const;

  // Inner product Σ_e f_a(e)·f_b(e).
  static double InnerJoin(const GroundTruth& a, const GroundTruth& b);

  // Signed multiset difference a − b (the paper's extended difference:
  // keys only in b appear with negative frequency).
  static GroundTruth Difference(const GroundTruth& a, const GroundTruth& b);

  // Multiset union a + b (frequencies add).
  static GroundTruth Union(const GroundTruth& a, const GroundTruth& b);

 private:
  std::unordered_map<uint32_t, int64_t> freq_;
  int64_t total_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_WORKLOAD_GROUND_TRUTH_H_
