#ifndef DAVINCI_CORE_KEY_ADAPTER_H_
#define DAVINCI_CORE_KEY_ADAPTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/davinci_sketch.h"

// Variable-length (string) key support, as described in the paper
// (§III-B2): long keys are hashed to a fixed-length fingerprint which is
// what the numerical sketch machinery operates on, and a separate
// fingerprint → original-key mapping is maintained for reverse lookup of
// reported elements (heavy hitters, decoded flows).
//
// Fingerprints are 32-bit, so two distinct keys collide with probability
// ≈ n²/2³³ over n distinct keys — negligible at sketch scale and strictly
// an approximation error, never a crash.

namespace davinci {

class StringKeyDaVinci {
 public:
  explicit StringKeyDaVinci(const DaVinciConfig& config);
  StringKeyDaVinci(size_t bytes, uint64_t seed);

  void Insert(std::string_view key, int64_t count = 1);
  int64_t Query(std::string_view key) const;

  // Heavy hitters with the original keys restored. Fingerprints whose key
  // was never learned (possible after merging foreign sketches) are
  // reported with a hex placeholder.
  std::vector<std::pair<std::string, int64_t>> HeavyHitters(
      int64_t threshold) const;

  double EstimateCardinality() const { return sketch_.EstimateCardinality(); }
  std::map<int64_t, int64_t> Distribution() const {
    return sketch_.Distribution();
  }
  double EstimateEntropy() const { return sketch_.EstimateEntropy(); }

  void Merge(const StringKeyDaVinci& other);
  void Subtract(const StringKeyDaVinci& other);

  size_t MemoryBytes() const { return sketch_.MemoryBytes(); }
  const DaVinciSketch& sketch() const { return sketch_; }

  // The fingerprint this adapter uses for `key` (exposed for tests).
  uint32_t Fingerprint(std::string_view key) const;

 private:
  void Learn(uint32_t fingerprint, std::string_view key);

  DaVinciSketch sketch_;
  uint32_t fingerprint_seed_;
  // Reverse mapping, bounded in practice by the number of distinct keys a
  // site observes; spill-free because it lives beside (not inside) the
  // fixed-size sketch, mirroring the paper's "separate mapping" design.
  std::unordered_map<uint32_t, std::string> reverse_;
};

}  // namespace davinci

#endif  // DAVINCI_CORE_KEY_ADAPTER_H_
