#ifndef DAVINCI_CORE_ELEMENT_FILTER_H_
#define DAVINCI_CORE_ELEMENT_FILTER_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "baselines/tower_sketch.h"
#include "common/check.h"
#include "core/config.h"
#include "obs/health.h"

// The element filter (EF) of DaVinci Sketch: a TowerSketch acting as a
// cold filter with threshold T. Each element keeps at most ~T units of its
// count in the filter; everything beyond T overflows to the infrequent
// part. The filter also cross-validates decodes and feeds linear counting
// and the EM distribution estimator.

namespace davinci {

class ElementFilter {
 public:
  ElementFilter(size_t bytes, const std::vector<int>& level_bits,
                int64_t threshold, uint64_t seed);

  // Absorbs up to T units of (key, count); returns the overflow that must
  // be inserted into the infrequent part.
  int64_t Insert(uint32_t key, int64_t count);

  // Signed variant for difference sketches: negative counts push the
  // element's retained estimate toward −T; the returned overflow carries
  // the sign of `count`.
  int64_t InsertSigned(uint32_t key, int64_t count);

  // Hot-path variant of InsertSigned taking a precomputed
  // HashFamily::BaseHash of the key (the filter's counters are indexed by
  // hash only, so the key itself is not needed).
  int64_t InsertSignedWithHash(uint64_t base_hash, int64_t count);

  // Count-min estimate of the key's retained count (≤ T up to collisions).
  int64_t Query(uint32_t key) const;

  // Signed estimate for subtracted filters.
  int64_t QuerySigned(uint32_t key) const;
  int64_t QuerySignedWithHash(uint64_t base_hash) const;

  // Write-prefetch of the tower counters `base_hash` maps to.
  void Prefetch(uint64_t base_hash) const { tower_.PrefetchCounters(base_hash); }

  int64_t threshold() const { return threshold_; }

  void Merge(const ElementFilter& other) { tower_.Merge(other.tower_); }
  void Subtract(const ElementFilter& other) { tower_.Subtract(other.tower_); }

  // Bottom-level state for cardinality (linear counting) and the EM
  // distribution estimator.
  size_t BottomWidth() const { return tower_.LevelWidth(0); }
  size_t BottomZeroSlots() const { return tower_.ZeroSlots(0); }
  std::vector<int64_t> BottomValues() const { return tower_.LevelValues(0); }
  size_t BottomIndex(uint32_t key) const { return tower_.LevelIndex(0, key); }

  const TowerSketch& tower() const { return tower_; }

  // Identity of the underlying tower's shared counter storage (CoW test
  // hook — see TowerSketch::StorageId).
  const void* StorageId() const { return tower_.StorageId(); }

  void SaveState(std::ostream& out) const { tower_.SaveState(out); }
  bool LoadState(std::istream& in) { return tower_.LoadState(in); }

  // DVSZ compressed / delta state — thin forwards; the tower owns both the
  // encoding and the hostile-image gates (see TowerSketch).
  void SaveStateCompressed(std::ostream& out) const {
    tower_.SaveStateCompressed(out);
  }
  bool LoadStateCompressed(std::istream& in) {
    return tower_.LoadStateCompressed(in);
  }
  void SealDeltaBase() { tower_.SealDeltaBase(); }
  void SaveDeltaState(std::ostream& out) const { tower_.SaveDeltaState(out); }
  bool ApplyDeltaState(std::istream& in) { return tower_.ApplyDeltaState(in); }

  // Aborts (DAVINCI_CHECK) on a violated structural invariant: the
  // promotion threshold is positive and representable by the tower (T must
  // not exceed the top level's saturation cap, or the filter could never
  // retain a flow's full T units), plus every TowerSketch invariant.
  void CheckInvariants(InvariantMode mode) const;

  // Fills `out` with per-level saturation/zero scans and (stats builds)
  // the insert/promotion counters. See docs/OBSERVABILITY.md.
  void CollectStats(obs::EfHealth* out) const;

  size_t MemoryBytes() const { return tower_.MemoryBytes(); }
  uint64_t memory_accesses() const { return tower_.MemoryAccesses(); }

 private:
  int64_t threshold_;
  TowerSketch tower_;

  // Telemetry (no-ops unless built with DAVINCI_STATS).
  struct Counters {
    obs::EventCounter inserts;
    obs::EventCounter promotions;      // inserts whose overflow crossed T
    obs::EventCounter promoted_units;  // Σ |overflow| routed onward
  };
  Counters stats_;
};

}  // namespace davinci

#endif  // DAVINCI_CORE_ELEMENT_FILTER_H_
