#include "core/epoch_manager.h"

#include <algorithm>

#include "obs/stats.h"

namespace davinci {

EpochManager::EpochManager(size_t window_epochs, size_t bytes_per_epoch,
                           uint64_t seed)
    : EpochManager(window_epochs,
                   DaVinciConfig::FromMemory(bytes_per_epoch, seed)) {}

EpochManager::EpochManager(size_t window_epochs, const DaVinciConfig& config)
    : max_epochs_(std::max<size_t>(1, window_epochs)),
      epoch_config_(config),
      live_(epoch_config_) {}

void EpochManager::Insert(uint32_t key, int64_t count) {
  ++live_inserts_;
  live_.Insert(key, count);
}

void EpochManager::InsertBatch(std::span<const uint32_t> keys,
                               std::span<const int64_t> counts) {
  live_inserts_ += keys.size();
  live_.InsertBatch(keys, counts);
}

void EpochManager::InsertBatch(std::span<const uint32_t> keys) {
  live_inserts_ += keys.size();
  live_.InsertBatch(keys);
}

bool EpochManager::ScheduleResize(const DaVinciConfig& config) {
  if (DaVinciConfig::GeometryCompatible(epoch_config_, config) ==
      DaVinciConfig::GeometryRelation::kIncompatible) {
    return false;
  }
  pending_config_ = config;
  return true;
}

std::shared_ptr<const DaVinciSketch> EpochManager::RebuildEpoch(
    const std::shared_ptr<const DaVinciSketch>& epoch) {
  if (epoch->config().GeometryEquals(epoch_config_)) return epoch;
  auto rebuilt = std::make_shared<DaVinciSketch>(*epoch);
  DAVINCI_CHECK(rebuilt->Resize(epoch_config_));
  return rebuilt;
}

void EpochManager::RebuildWindow() {
  // Rebuild every retained epoch into the new geometry, then recompute
  // the two memo structures over the rebuilt epochs so the suffix/fold
  // relationships Flip() and Advance() maintain keep holding exactly.
  // front_stack_[0] is the newest entry of the front segment; entry i's
  // aggregate extends the suffix memo at i−1 (Flip's construction).
  for (size_t i = 0; i < front_stack_.size(); ++i) {
    front_stack_[i].epoch = RebuildEpoch(front_stack_[i].epoch);
    if (i == 0) {
      front_stack_[i].agg = front_stack_[i].epoch;
    } else {
      auto agg = std::make_shared<DaVinciSketch>(*front_stack_[i].epoch);
      agg->Merge(*front_stack_[i - 1].agg);
      ++rebuild_merges_;
      front_stack_[i].agg = std::move(agg);
    }
  }
  for (auto& epoch : back_epochs_) epoch = RebuildEpoch(epoch);
  if (!back_epochs_.empty()) {
    back_agg_ = std::make_shared<DaVinciSketch>(*back_epochs_.front());
    for (size_t i = 1; i < back_epochs_.size(); ++i) {
      back_agg_->Merge(*back_epochs_[i]);
      ++rebuild_merges_;
    }
  }
}

void EpochManager::Advance() {
  ++rotations_;
  // Sealing is a move: the epoch's CoW buffers change owner, no counter
  // state is copied. The fresh live sketch reuses the same seed so the
  // window stays mergeable.
  auto sealed = std::make_shared<const DaVinciSketch>(std::move(live_));
  if (pending_config_.has_value()) {
    // The seal boundary is the geometry swap point: adopt the staged
    // config, rebuild the just-sealed epoch and the retained window, and
    // open the fresh live epoch at the new size. Snapshots taken before
    // this line keep their old-geometry CoW state.
    epoch_config_ = *pending_config_;
    pending_config_.reset();
    ++resizes_applied_;
    sealed = RebuildEpoch(sealed);
    RebuildWindow();
  }
  live_ = DaVinciSketch(epoch_config_);
  live_inserts_ = 0;

  back_epochs_.push_back(sealed);
  if (back_agg_ == nullptr) {
    // Shares the sealed epoch's buffers until the accumulator next merges.
    back_agg_ = std::make_shared<DaVinciSketch>(*sealed);
  } else {
    back_agg_->Merge(*sealed);
    ++rebuild_merges_;
  }

  while (sealed_epochs() + 1 > max_epochs_) {
    Expire();
  }
}

void EpochManager::Expire() {
  if (front_stack_.empty()) Flip();
  front_stack_.pop_back();
}

void EpochManager::Flip() {
  // Rebuild the suffix memo from the back segment, newest epoch first so
  // each pushed entry's aggregate extends the (newer) suffix below it.
  // One Merge per epoch — amortized O(1) per Advance since every epoch is
  // flipped at most once.
  for (size_t i = back_epochs_.size(); i-- > 0;) {
    FrontEntry entry;
    entry.epoch = back_epochs_[i];
    if (front_stack_.empty()) {
      entry.agg = entry.epoch;  // suffix of one — the epoch itself
    } else {
      auto agg = std::make_shared<DaVinciSketch>(*entry.epoch);
      agg->Merge(*front_stack_.back().agg);
      ++rebuild_merges_;
      entry.agg = std::move(agg);
    }
    front_stack_.push_back(std::move(entry));
  }
  back_epochs_.clear();
  back_agg_.reset();
}

int64_t EpochManager::Query(uint32_t key) const {
  int64_t total = live_.Query(key);
  for (const FrontEntry& entry : front_stack_) {
    total += entry.epoch->Query(key);
  }
  for (const std::shared_ptr<const DaVinciSketch>& epoch : back_epochs_) {
    total += epoch->Query(key);
  }
  return total;
}

int64_t EpochManager::QueryCurrentEpoch(uint32_t key) const {
  return live_.Query(key);
}

DaVinciSketch EpochManager::MergedSealed() const {
  DAVINCI_DCHECK(sealed_epochs() > 0);
  // Every sealed epoch is served from a memoized aggregate: the front
  // suffix top already covers the whole front segment, the back
  // accumulator the whole back segment.
  window_merge_hits_.fetch_add(sealed_epochs(), std::memory_order_relaxed);
  if (!front_stack_.empty()) {
    DaVinciSketch merged = *front_stack_.back().agg;
    if (back_agg_ != nullptr) merged.Merge(*back_agg_);
    return merged;
  }
  return *back_agg_;
}

DaVinciSketch EpochManager::MergedWindow() const {
  if (sealed_epochs() == 0) return live_;
  DaVinciSketch merged = MergedSealed();
  // Skipping an untouched live epoch keeps the no-slide window bit-equal
  // to the offline left-fold of the sealed epochs (FP merge order is not
  // bit-associative, so gratuitous merges would perturb the digest).
  if (live_inserts_ > 0) merged.Merge(live_);
  return merged;
}

std::vector<std::pair<uint32_t, int64_t>> EpochManager::HeavyChangers(
    int64_t delta) const {
  if (sealed_epochs() == 0) {
    // Single-epoch window: nothing to compare against.
    return {};
  }
  if (legacy_heavy_changers_) {
    const DaVinciSketch& oldest = !front_stack_.empty()
                                      ? *front_stack_.back().epoch
                                      : *back_epochs_.front();
    return live_.HeavyChangers(oldest, delta);
  }
  // Paper two-window semantics: newest epoch vs the merged remainder of
  // the window.
  DaVinciSketch remainder = MergedSealed();
  return live_.HeavyChangers(remainder, delta);
}

size_t EpochManager::MemoryBytes() const {
  size_t bytes = live_.MemoryBytes();
  for (const FrontEntry& entry : front_stack_) {
    bytes += entry.epoch->MemoryBytes();
  }
  for (const std::shared_ptr<const DaVinciSketch>& epoch : back_epochs_) {
    bytes += epoch->MemoryBytes();
  }
  return bytes;
}

void EpochManager::CheckInvariants(InvariantMode mode) const {
  DAVINCI_CHECK_LE(epochs_in_window(), max_epochs_);
  DAVINCI_CHECK_EQ(back_epochs_.empty(), back_agg_ == nullptr);
  // Geometry uniformity: a resize rebuilds every retained epoch eagerly,
  // so the whole window always shares epoch_config_'s geometry.
  DAVINCI_CHECK(live_.config().GeometryEquals(epoch_config_));
  live_.CheckInvariants(mode);
  for (const FrontEntry& entry : front_stack_) {
    DAVINCI_CHECK(entry.epoch != nullptr);
    DAVINCI_CHECK(entry.agg != nullptr);
    DAVINCI_CHECK(entry.epoch->config().GeometryEquals(epoch_config_));
    entry.epoch->CheckInvariants(mode);
    entry.agg->CheckInvariants(mode);
  }
  for (const std::shared_ptr<const DaVinciSketch>& epoch : back_epochs_) {
    DAVINCI_CHECK(epoch != nullptr);
    DAVINCI_CHECK(epoch->config().GeometryEquals(epoch_config_));
    epoch->CheckInvariants(mode);
  }
  if (back_agg_ != nullptr) back_agg_->CheckInvariants(mode);
}

void EpochManager::CollectStats(obs::HealthSnapshot* out) const {
  *out = obs::HealthSnapshot{};
  out->shards = 0;  // Accumulate sums the per-epoch `shards` of 1 each
  auto fold = [out](const DaVinciSketch& sketch) {
    obs::HealthSnapshot one;
    sketch.CollectStats(&one);
    out->Accumulate(one);
  };
  fold(live_);
  for (const FrontEntry& entry : front_stack_) fold(*entry.epoch);
  for (const std::shared_ptr<const DaVinciSketch>& epoch : back_epochs_) {
    fold(*epoch);
  }
  out->epoch.window_epochs = max_epochs_;
  out->epoch.epochs_in_window = epochs_in_window();
  out->epoch.rotations = rotations_;
  out->epoch.window_merge_hits = window_merge_hits();
  out->epoch.window_rebuild_merges = rebuild_merges_;
  out->epoch.cow_clones = obs::CowTally::Clones();
  out->epoch.cow_clone_bytes = obs::CowTally::CloneBytes();
}

}  // namespace davinci
