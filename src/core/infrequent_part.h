#ifndef DAVINCI_CORE_INFREQUENT_PART_H_
#define DAVINCI_CORE_INFREQUENT_PART_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/modular.h"
#include "core/config.h"
#include "core/element_filter.h"
#include "obs/health.h"

// The infrequent part (IFP) of DaVinci Sketch: a counting Fermat sketch of
// d rows × w buckets {iID, icnt} with per-row ±1 functions ζ_i
// (Algorithm 2). Supports
//  - fast point queries: median of sign-corrected counters (count-sketch
//    style, unbiased),
//  - full decode (Algorithm 5): peel single-element buckets via Fermat's
//    little theorem, validating both e and p−e and cross-validating with
//    the element filter,
//  - linear merge/subtract for union and difference, and
//  - an unbiased inner-product estimate between identically-seeded parts.
//
// The {iID, icnt} lanes live behind a shared_ptr so copies share storage
// in O(1) (copy-on-write): the write path clones lazily, only when a
// snapshot still references the buffers (DESIGN.md §10).

namespace davinci {

class InfrequentPart {
 public:
  InfrequentPart(size_t rows, size_t buckets_per_row, bool use_signs,
                 uint64_t seed);

  void Insert(uint32_t key, int64_t count) {
    InsertWithHash(key, HashFamily::BaseHash(key), count);
  }

  // Hot-path variant: `base_hash` must equal HashFamily::BaseHash(key).
  // The key itself is still needed for the mod-p id encoding.
  void InsertWithHash(uint32_t key, uint64_t base_hash, int64_t count);

  // Write-prefetch of the d (iID, icnt) cells `base_hash` maps to.
  void Prefetch(uint64_t base_hash) const;

  // Median of sign-corrected mapped counters (no decode).
  int64_t FastQuery(uint32_t key) const {
    return FastQueryWithBase(HashFamily::BaseHash(key));
  }

  // Hot-path variant: `base_hash` must equal HashFamily::BaseHash(key).
  int64_t FastQueryWithBase(uint64_t base_hash) const;

  // Tuning for the parallel peeling decode. Only the clock moves with
  // these — the decoded map is bit-identical for every setting.
  struct DecodeOptions {
    // Worker threads for the purity scans (clamped to [1, 64]).
    size_t num_threads = 1;
    // A scan round splits across a second (or further) worker only while
    // every worker keeps at least this many active buckets; below that the
    // round runs fully sequentially (fork/join latency would exceed the
    // scan). Matches DaVinciConfig::decode_min_buckets_per_worker.
    size_t min_buckets_per_worker = 4096;
    // Cap num_threads at std::thread::hardware_concurrency(): requesting 4
    // workers on a 1-core host must not burn the win on context switches.
    // Tests disable the clamp to exercise the pool on any machine.
    bool clamp_to_hardware = true;
  };

  // Peels the sketch into flow -> signed count (Algorithm 5). If
  // `cross_filter` is non-null, candidates must have |filter estimate| ≥
  // its threshold (the paper's double verification).
  //
  // The peeling runs in synchronized rounds: a read-only purity scan over
  // the active buckets (sharded row-major across a persistent worker pool,
  // one contiguous range per worker) selects candidates from a
  // start-of-round snapshot, then one sequential peeling pass applies them
  // in ascending bucket order. Because candidate selection depends only on
  // the snapshot and application order is fixed, the decoded map is
  // bit-identical for every thread count — threads only change who scans,
  // never what is peeled.
  std::unordered_map<uint32_t, int64_t> Decode(
      const ElementFilter* cross_filter, const DecodeOptions& options) const;
  // Convenience overload with default sharding granularity.
  std::unordered_map<uint32_t, int64_t> Decode(
      const ElementFilter* cross_filter, size_t num_threads = 1) const {
    DecodeOptions options;
    options.num_threads = num_threads;
    return Decode(cross_filter, options);
  }

  void Merge(const InfrequentPart& other);
  void Subtract(const InfrequentPart& other);

  // Median over rows of the bucket-wise counter dot product; unbiased for
  // identically-seeded parts thanks to the ζ signs.
  static double InnerProduct(const InfrequentPart& a,
                             const InfrequentPart& b);

  size_t rows() const { return rows_; }
  size_t width() const { return width_; }
  size_t EmptyBuckets() const;
  size_t TotalBuckets() const { return rows_ * width_; }

  size_t MemoryBytes() const {
    return rows_ * width_ * DaVinciConfig::kIfpBucketBytes;
  }
  // Raw state round-trip (geometry must already match). LoadState also
  // range-checks every cell (iID < p, |icnt| ≤ kMaxLoadedCount) so a
  // corrupted or hostile image is rejected at the boundary instead of
  // feeding the peeling arithmetic.
  void SaveState(std::ostream& out) const;
  bool LoadState(std::istream& in);

  // DVSZ compressed state. Real traffic leaves most IFP buckets untouched
  // (100% empty on the insert bench), so the encoder counts the non-empty
  // cells first and picks per image: a u8 mode byte selects sparse
  // (gap-coded strictly-ascending cell indices, each with a varint iID and
  // zigzag icnt) when at most kSparseDensityPercent of the cells are live,
  // else flat (the exact SaveState layout) — a saturated IFP must not pay
  // the sparse index overhead. The loader applies LoadState's field/range
  // gates plus the sparse structure's own (mode byte, index monotonicity
  // and bounds).
  static constexpr size_t kSparseDensityPercent = 50;
  void SaveStateCompressed(std::ostream& out) const;
  bool LoadStateCompressed(std::istream& in);

  // Delta images over the CoW base pinned by SealDeltaBase() — see
  // TowerSketch for the seal/apply contract.
  void SealDeltaBase();
  void SaveDeltaState(std::ostream& out) const;
  bool ApplyDeltaState(std::istream& in);

  // Test hook: plant raw cell contents directly, bypassing both the insert
  // path and LoadState's range gate — how the invariant-audit tests inject
  // corruption that no public boundary admits anymore.
  void OverwriteCellForTesting(size_t row, size_t bucket, uint64_t id,
                               int64_t count) {
    Storage& st = Mut();
    st.ids[row * width_ + bucket] = id;
    st.counts[row * width_ + bucket] = count;
  }

  // Aborts (DAVINCI_CHECK) on a violated structural invariant of the
  // counting Fermat sketch. Unconditional: array geometry; every iID field
  // lies in [0, p) (Fermat decode divides by icnt mod p, so an id outside
  // the field silently corrupts every peel); each row receives every
  // insert exactly once, so the per-row sum of iID fields mod p is the
  // same for all rows. Without sign hashes the per-row icnt sums agree
  // too, and in kAdditive mode each icnt is additionally nonnegative.
  void CheckInvariants(InvariantMode mode) const;

  // Fills `out` with the bucket-load scan and (stats builds) the
  // insert/decode counters, including false decodes rejected by the EF
  // cross-validation. See docs/OBSERVABILITY.md.
  void CollectStats(obs::IfpHealth* out) const;

  uint64_t memory_accesses() const { return accesses_; }

  // Identity of the shared {iID, icnt} storage — two InfrequentParts
  // return the same pointer iff they still share buffers (CoW test hook).
  const void* StorageId() const { return store_.get(); }

 private:
  size_t BucketIndexBase(size_t row, uint64_t base_hash) const {
    return row * width_ + hashes_[row].BucketFastWithBase(base_hash, width_);
  }
  size_t BucketIndex(size_t row, uint32_t key) const {
    return BucketIndexBase(row, HashFamily::BaseHash(key));
  }
  int SignBase(size_t row, uint64_t base_hash) const {
    return use_signs_ ? signs_[row].SignWithBase(base_hash) : 1;
  }
  int Sign(size_t row, uint64_t key) const {
    return SignBase(row, HashFamily::BaseHash(key));
  }

  struct Storage {
    std::vector<uint64_t> ids;    // Σ count·key mod p, rows_ × width_
    std::vector<int64_t> counts;  // Σ ζ(key)·count (signed)
    size_t ByteSize() const {
      return ids.size() * sizeof(uint64_t) + counts.size() * sizeof(int64_t);
    }
  };

  // Write-path storage access: clones iff a snapshot still shares the
  // buffers (see FrequentPart::Mut for the refcount reasoning).
  Storage& Mut() {
    if (store_.use_count() > 1) CloneStore();
    return *store_;
  }
  void CloneStore();

  size_t rows_;
  size_t width_;
  bool use_signs_;
  std::vector<HashFamily> hashes_;
  std::vector<SignHash> signs_;
  std::shared_ptr<Storage> store_;
  // Delta base pinned by SealDeltaBase(); holding the const ref arms the
  // CoW clone in Mut().
  std::shared_ptr<const Storage> delta_base_;
  mutable uint64_t accesses_ = 0;

  // Telemetry (no-ops unless built with DAVINCI_STATS). Mutable: Decode()
  // is logically const but accounts its peeling outcomes. The decode
  // tallies are SharedEventCounter because a published SketchView runs its
  // lazy decode concurrently with other readers copying or inspecting the
  // same part (DESIGN.md §10); `inserts` stays plain — writes happen only
  // under the owner's synchronization.
  struct Counters {
    obs::EventCounter inserts;
    obs::SharedEventCounter decode_runs;
    obs::SharedEventCounter decoded_flows;
    obs::SharedEventCounter decode_rejected_by_filter;
  };
  mutable Counters stats_;
};

}  // namespace davinci

#endif  // DAVINCI_CORE_INFREQUENT_PART_H_
