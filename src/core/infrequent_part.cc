#include "core/infrequent_part.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <thread>

#include "common/prefetch.h"
#include "common/serialize.h"
#include "common/varint.h"
#include "common/worker_pool.h"
#include "obs/stats.h"

namespace davinci {

InfrequentPart::InfrequentPart(size_t rows, size_t buckets_per_row,
                               bool use_signs, uint64_t seed)
    : rows_(std::max<size_t>(1, rows)),
      width_(std::max<size_t>(1, buckets_per_row)),
      use_signs_(use_signs),
      store_(std::make_shared<Storage>()) {
  hashes_.reserve(rows_);
  signs_.reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    hashes_.emplace_back(seed * 23000407 + i);
    signs_.emplace_back(seed * 23000407 + i + 424242);
  }
  store_->ids.assign(rows_ * width_, 0);
  store_->counts.assign(rows_ * width_, 0);
}

void InfrequentPart::CloneStore() {
  store_ = std::make_shared<Storage>(*store_);
  obs::CowTally::RecordClone(store_->ByteSize());
}

void InfrequentPart::InsertWithHash(uint32_t key, uint64_t base_hash,
                                    int64_t count) {
  stats_.inserts.Inc();
  Storage& st = Mut();
  uint64_t delta = MulMod(SignedMod(count, kFermatPrime), key, kFermatPrime);
  for (size_t i = 0; i < rows_; ++i) {
    ++accesses_;
    size_t j = BucketIndexBase(i, base_hash);
    st.ids[j] = AddMod(st.ids[j], delta, kFermatPrime);
    // Wrapping add: after merges/subtracts a cell is a *sum* of signed
    // counts and may legitimately pass through the int64 rim; the decode
    // algebra is self-inverse under mod-2^64 arithmetic.
    st.counts[j] = WrapAdd(st.counts[j], SignApply(SignBase(i, base_hash),
                                                   count));
  }
}

void InfrequentPart::Prefetch(uint64_t base_hash) const {
  const Storage& st = *store_;
  for (size_t i = 0; i < rows_; ++i) {
    size_t j = BucketIndexBase(i, base_hash);
    PrefetchWrite(&st.ids[j]);
    PrefetchWrite(&st.counts[j]);
  }
}

int64_t InfrequentPart::FastQueryWithBase(uint64_t base_hash) const {
  const Storage& st = *store_;
  std::vector<int64_t> estimates;
  estimates.reserve(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    estimates.push_back(SignApply(SignBase(i, base_hash),
                                  st.counts[BucketIndexBase(i, base_hash)]));
  }
  std::nth_element(estimates.begin(), estimates.begin() + estimates.size() / 2,
                   estimates.end());
  return estimates[estimates.size() / 2];
}

std::unordered_map<uint32_t, int64_t> InfrequentPart::Decode(
    const ElementFilter* cross_filter, const DecodeOptions& options) const {
  stats_.decode_runs.Inc();
  // Full-decode latency lands in the process-wide registry so benches can
  // surface the 1-vs-N-thread speedup (see docs/OBSERVABILITY.md).
  obs::ScopedLatencyTimer decode_timer(
      &obs::StatsRegistry::Global().Histogram("ifp_decode"));

  std::vector<uint64_t> ids = store_->ids;
  std::vector<int64_t> counts = store_->counts;
  std::unordered_map<uint32_t, int64_t> flows;

  auto validate = [&](uint32_t key) {
    if (cross_filter == nullptr) return true;
    // The element reached the IFP only by crossing the filter threshold,
    // so its (signed, for differences) filter estimate must sit at ±T.
    if (std::llabs(cross_filter->QuerySigned(key)) >=
        cross_filter->threshold()) {
      return true;
    }
    // A pure-looking bucket produced a candidate the filter never saw: a
    // false decode caught by the paper's double verification.
    stats_.decode_rejected_by_filter.Inc();
    return false;
  };

  // Does `candidate` explain bucket `index` on its own? Pure function of
  // the working arrays — the scan workers call it concurrently between
  // peeling rounds, when nothing mutates.
  auto is_consistent = [&](size_t index, uint64_t candidate) -> bool {
    if (candidate == 0 || candidate > UINT32_MAX) return false;
    uint32_t key = static_cast<uint32_t>(candidate);
    uint64_t base_hash = HashFamily::BaseHash(key);
    size_t row = index / width_;
    if (BucketIndexBase(row, base_hash) != index) return false;
    // Sign-consistency: with icnt = ζ_row(key)·count, the id field must
    // equal count·key mod p. SignApply: a corrupted image can put
    // INT64_MIN in a cell, whose plain negation is UB.
    int64_t count = SignApply(SignBase(row, base_hash), counts[index]);
    uint64_t expected =
        MulMod(SignedMod(count, kFermatPrime), key, kFermatPrime);
    return expected == ids[index];
  };

  // Read-only purity probe for the scan phase. Validates both e and p − e
  // (Algorithm 5's two-sided check, needed for ζ = −1 rows and for
  // negative counts after set difference). No telemetry, no filter check —
  // those stay in the sequential phase.
  auto looks_pure = [&](size_t index) -> bool {
    if (ids[index] == 0 && counts[index] == 0) return false;
    uint64_t count_mod = SignedMod(counts[index], kFermatPrime);
    if (count_mod == 0) return false;
    uint64_t e = MulMod(ids[index], ModInverse(count_mod, kFermatPrime),
                        kFermatPrime);
    return is_consistent(index, e) || is_consistent(index, kFermatPrime - e);
  };

  // Buckets touched by peels this round, each recorded once (in touch
  // order, deduplicated by `pending`), to become the next round's work set.
  std::vector<size_t> touched;
  std::vector<uint8_t> pending(ids.size(), 0);

  // Tries to peel bucket `index` as the single element `candidate`.
  auto try_candidate = [&](size_t index, uint64_t candidate) -> bool {
    if (!is_consistent(index, candidate)) return false;
    uint32_t key = static_cast<uint32_t>(candidate);
    if (!validate(key)) return false;

    uint64_t base_hash = HashFamily::BaseHash(key);
    size_t row = index / width_;
    int64_t count = SignApply(SignBase(row, base_hash), counts[index]);
    flows[key] = WrapAdd(flows[key], count);
    uint64_t delta =
        MulMod(SignedMod(count, kFermatPrime), key, kFermatPrime);
    for (size_t r = 0; r < rows_; ++r) {
      size_t j = BucketIndexBase(r, base_hash);
      ids[j] = SubMod(ids[j], delta, kFermatPrime);
      counts[j] = WrapSub(counts[j], SignApply(SignBase(r, base_hash), count));
      if (!pending[j]) {
        pending[j] = 1;
        touched.push_back(j);
      }
    }
    return true;
  };

  auto try_peel = [&](size_t index) -> bool {
    if (ids[index] == 0 && counts[index] == 0) return false;
    uint64_t count_mod = SignedMod(counts[index], kFermatPrime);
    if (count_mod == 0) return false;
    uint64_t e = MulMod(ids[index], ModInverse(count_mod, kFermatPrime),
                        kFermatPrime);
    if (try_candidate(index, e)) return true;
    return try_candidate(index, kFermatPrime - e);
  };

  // Synchronized peeling rounds. Phase 1 scans the active buckets against
  // a start-of-round snapshot (read-only, shardable across workers) and
  // selects the pure-looking ones; phase 2 peels the selection
  // sequentially in row-major order, re-deriving each candidate from the
  // live arrays (an earlier peel in the same round may have changed — or
  // newly purified — a later bucket; both outcomes are deterministic).
  // Candidate selection depends only on the snapshot and application order
  // only on the selection, so the decoded map is bit-identical for every
  // `num_threads`. The `peels` valve stops pathological false-positive
  // cycles that can arise in overloaded sketches.
  size_t threads =
      std::max<size_t>(1, std::min<size_t>(options.num_threads, 64));
  if (options.clamp_to_hardware) {
    size_t hardware = std::thread::hardware_concurrency();
    if (hardware == 0) hardware = 1;
    threads = std::min(threads, hardware);
  }
  const size_t granularity =
      std::max<size_t>(1, options.min_buckets_per_worker);
  std::vector<size_t> active(ids.size());
  std::iota(active.begin(), active.end(), size_t{0});
  std::vector<size_t> promising;
  size_t peels = 0;
  const size_t max_peels = ids.size() * 4 + 64;

  // Workers stay parked between rounds; the pool is built once, on the
  // first round wide enough to split, and only then — a decode that never
  // crosses the granularity threshold never starts a thread.
  std::unique_ptr<WorkerPool> pool;

  while (!active.empty() && peels < max_peels) {
    // Phase 1 — purity scan. Row-major sharding: each worker filters one
    // contiguous range of `active`; concatenating per-worker results in
    // shard order reproduces the sequential scan order exactly. A round
    // splits only while every worker keeps >= granularity buckets.
    promising.clear();
    size_t workers = std::min(threads, active.size() / granularity);
    if (workers <= 1) {
      for (size_t index : active) {
        if (looks_pure(index)) promising.push_back(index);
      }
    } else {
      std::vector<std::vector<size_t>> found(workers);
      size_t chunk = (active.size() + workers - 1) / workers;
      auto scan_shard = [&](size_t w) {
        size_t begin = w * chunk;
        size_t end = std::min(begin + chunk, active.size());
        for (size_t i = begin; i < end; ++i) {
          if (looks_pure(active[i])) found[w].push_back(active[i]);
        }
      };
      if (pool == nullptr) pool = std::make_unique<WorkerPool>(threads - 1);
      pool->Run(workers, scan_shard);
      for (const std::vector<size_t>& shard : found) {
        promising.insert(promising.end(), shard.begin(), shard.end());
      }
    }
    if (promising.empty()) break;

    // Phase 2 — sequential peeling round.
    touched.clear();
    bool progress = false;
    for (size_t index : promising) {
      if (peels >= max_peels) break;
      if (try_peel(index)) {
        ++peels;
        progress = true;
      }
    }
    for (size_t index : touched) pending[index] = 0;
    std::sort(touched.begin(), touched.end());
    active.swap(touched);
    if (!progress) break;
  }
  for (auto it = flows.begin(); it != flows.end();) {
    if (it->second == 0) {
      it = flows.erase(it);
    } else {
      ++it;
    }
  }
  stats_.decoded_flows.Inc(flows.size());
  return flows;
}

void InfrequentPart::Merge(const InfrequentPart& other) {
  Storage& st = Mut();
  const Storage& src = *other.store_;
  for (size_t i = 0; i < st.ids.size(); ++i) {
    st.ids[i] = AddMod(st.ids[i], src.ids[i], kFermatPrime);
    st.counts[i] = WrapAdd(st.counts[i], src.counts[i]);
  }
}

void InfrequentPart::Subtract(const InfrequentPart& other) {
  Storage& st = Mut();
  const Storage& src = *other.store_;
  for (size_t i = 0; i < st.ids.size(); ++i) {
    st.ids[i] = SubMod(st.ids[i], src.ids[i], kFermatPrime);
    st.counts[i] = WrapSub(st.counts[i], src.counts[i]);
  }
}

double InfrequentPart::InnerProduct(const InfrequentPart& a,
                                    const InfrequentPart& b) {
  std::vector<double> row_dots;
  row_dots.reserve(a.rows_);
  for (size_t i = 0; i < a.rows_; ++i) {
    double dot = 0.0;
    for (size_t j = 0; j < a.width_; ++j) {
      dot += static_cast<double>(a.store_->counts[i * a.width_ + j]) *
             static_cast<double>(b.store_->counts[i * b.width_ + j]);
    }
    row_dots.push_back(dot);
  }
  std::nth_element(row_dots.begin(), row_dots.begin() + row_dots.size() / 2,
                   row_dots.end());
  return row_dots[row_dots.size() / 2];
}

void InfrequentPart::SaveState(std::ostream& out) const {
  WriteVec(out, store_->ids);
  WriteVec(out, store_->counts);
}

bool InfrequentPart::LoadState(std::istream& in) {
  std::vector<uint64_t> ids;
  std::vector<int64_t> counts;
  if (!ReadVec(in, &ids) || !ReadVec(in, &counts)) return false;
  if (ids.size() != rows_ * width_ || counts.size() != rows_ * width_) {
    return false;
  }
  // Field/range validation (tests/fuzz/fuzz_serialize.cc drives mutated
  // images through here): every iID must be a residue mod p, and icnt
  // cells are capped well below the int64 rim so downstream sums (the
  // ResolveQuery three-part total) can never overflow.
  for (uint64_t id : ids) {
    if (id >= kFermatPrime) return false;
  }
  for (int64_t count : counts) {
    if (count > kMaxLoadedCount || count < -kMaxLoadedCount) return false;
  }
  Storage& st = Mut();
  st.ids = std::move(ids);
  st.counts = std::move(counts);
  return true;
}

void InfrequentPart::SaveStateCompressed(std::ostream& out) const {
  const Storage& st = *store_;
  const size_t total = rows_ * width_;
  size_t live = 0;
  for (size_t i = 0; i < total; ++i) {
    if (st.ids[i] != 0 || st.counts[i] != 0) ++live;
  }
  if (live * 100 > total * kSparseDensityPercent) {
    WritePod(out, static_cast<uint8_t>(0));  // flat fallback
    SaveState(out);
    return;
  }
  WritePod(out, static_cast<uint8_t>(1));  // sparse
  WriteVarU64(out, live);
  uint64_t previous = 0;
  bool first = true;
  for (size_t i = 0; i < total; ++i) {
    if (st.ids[i] == 0 && st.counts[i] == 0) continue;
    WriteVarU64(out, first ? i : i - previous);
    WriteVarU64(out, st.ids[i]);
    WriteVarI64(out, st.counts[i]);
    previous = i;
    first = false;
  }
}

bool InfrequentPart::LoadStateCompressed(std::istream& in) {
  uint8_t mode = 0;
  if (!ReadPod(in, &mode)) return false;
  if (mode == 0) return LoadState(in);
  if (mode != 1) return false;
  const size_t total = rows_ * width_;
  uint64_t live = 0;
  if (!ReadVarU64(in, &live)) return false;
  if (live > total) return false;
  std::vector<uint64_t> ids(total, 0);
  std::vector<int64_t> counts(total, 0);
  uint64_t index = 0;
  for (uint64_t k = 0; k < live; ++k) {
    uint64_t gap = 0, id = 0;
    int64_t count = 0;
    if (!ReadVarU64(in, &gap) || !ReadVarU64(in, &id) ||
        !ReadVarI64(in, &count)) {
      return false;
    }
    // Strictly-ascending bounded indices: duplicates, descents and
    // wrap-around gaps all reject here (fuzz corpus seeds cover each).
    if (k == 0) {
      if (gap >= total) return false;
      index = gap;
    } else {
      if (gap == 0 || gap >= total - index) return false;
      index += gap;
    }
    // Same field/range gates as the flat loader.
    if (id >= kFermatPrime) return false;
    if (count > kMaxLoadedCount || count < -kMaxLoadedCount) return false;
    if (id == 0 && count == 0) return false;  // a live cell must be live
    ids[index] = id;
    counts[index] = count;
  }
  Storage& st = Mut();
  st.ids = std::move(ids);
  st.counts = std::move(counts);
  return true;
}

void InfrequentPart::SealDeltaBase() { delta_base_ = store_; }

void InfrequentPart::SaveDeltaState(std::ostream& out) const {
  const Storage& st = *store_;
  const size_t total = rows_ * width_;
  uint64_t changed = 0;
  for (size_t i = 0; i < total; ++i) {
    uint64_t base_id = delta_base_ != nullptr ? delta_base_->ids[i] : 0;
    int64_t base_count = delta_base_ != nullptr ? delta_base_->counts[i] : 0;
    if (st.ids[i] != base_id || st.counts[i] != base_count) ++changed;
  }
  WriteVarU64(out, changed);
  uint64_t previous = 0;
  bool first = true;
  for (size_t i = 0; i < total; ++i) {
    uint64_t base_id = delta_base_ != nullptr ? delta_base_->ids[i] : 0;
    int64_t base_count = delta_base_ != nullptr ? delta_base_->counts[i] : 0;
    if (st.ids[i] == base_id && st.counts[i] == base_count) continue;
    WriteVarU64(out, first ? i : i - previous);
    WriteVarU64(out, st.ids[i]);
    WriteVarI64(out, st.counts[i]);
    previous = i;
    first = false;
  }
}

bool InfrequentPart::ApplyDeltaState(std::istream& in) {
  const size_t total = rows_ * width_;
  uint64_t changed = 0;
  if (!ReadVarU64(in, &changed)) return false;
  if (changed > total) return false;
  Storage& st = Mut();
  uint64_t index = 0;
  for (uint64_t k = 0; k < changed; ++k) {
    uint64_t gap = 0, id = 0;
    int64_t count = 0;
    if (!ReadVarU64(in, &gap) || !ReadVarU64(in, &id) ||
        !ReadVarI64(in, &count)) {
      return false;
    }
    if (k == 0) {
      if (gap >= total) return false;
      index = gap;
    } else {
      if (gap == 0 || gap >= total - index) return false;
      index += gap;
    }
    if (id >= kFermatPrime) return false;
    if (count > kMaxLoadedCount || count < -kMaxLoadedCount) return false;
    st.ids[index] = id;
    st.counts[index] = count;
  }
  return true;
}

void InfrequentPart::CheckInvariants(InvariantMode mode) const {
  const Storage& st = *store_;
  DAVINCI_CHECK_EQ(st.ids.size(), rows_ * width_);
  DAVINCI_CHECK_EQ(st.counts.size(), rows_ * width_);
  DAVINCI_CHECK_EQ(hashes_.size(), rows_);
  DAVINCI_CHECK_EQ(signs_.size(), rows_);
  uint64_t row0_id_sum = 0;
  int64_t row0_count_sum = 0;
  for (size_t row = 0; row < rows_; ++row) {
    uint64_t id_sum = 0;
    int64_t count_sum = 0;
    for (size_t j = 0; j < width_; ++j) {
      size_t i = row * width_ + j;
      DAVINCI_CHECK_MSG(st.ids[i] < kFermatPrime,
                        "row " + std::to_string(row) + " bucket " +
                            std::to_string(j) + ": iID outside the field");
      id_sum = AddMod(id_sum, st.ids[i], kFermatPrime);
      count_sum += st.counts[i];
      if (mode == InvariantMode::kAdditive && !use_signs_) {
        DAVINCI_CHECK_MSG(st.counts[i] >= 0,
                          "row " + std::to_string(row) + " bucket " +
                              std::to_string(j) + ": negative icnt");
      }
    }
    if (row == 0) {
      row0_id_sum = id_sum;
      row0_count_sum = count_sum;
    } else {
      // Every row absorbs the full update stream, so Σ_j iID mod p (and,
      // without ζ signs, Σ_j icnt) must agree across rows.
      DAVINCI_CHECK_EQ(id_sum, row0_id_sum);
      if (!use_signs_) DAVINCI_CHECK_EQ(count_sum, row0_count_sum);
    }
  }
}

void InfrequentPart::CollectStats(obs::IfpHealth* out) const {
  out->rows = rows_;
  out->width = width_;
  out->empty_buckets = EmptyBuckets();
  out->inserts = stats_.inserts.value();
  out->decode_runs = stats_.decode_runs.value();
  out->decoded_flows = stats_.decoded_flows.value();
  out->decode_rejected_by_filter = stats_.decode_rejected_by_filter.value();
}

size_t InfrequentPart::EmptyBuckets() const {
  const Storage& st = *store_;
  size_t empty = 0;
  for (size_t i = 0; i < st.ids.size(); ++i) {
    if (st.ids[i] == 0 && st.counts[i] == 0) ++empty;
  }
  return empty;
}

}  // namespace davinci
