#ifndef DAVINCI_CORE_AUTOTUNE_H_
#define DAVINCI_CORE_AUTOTUNE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.h"
#include "obs/health.h"

// Configuration auto-tuning, in two forms:
//
//  - AutotuneConfig: one-shot, sample-driven — given a prefix of the
//    stream and a byte budget, grid-search the FP/EF/IFP split (and
//    promotion threshold) that minimizes frequency error on the sample.
//
//  - AutotuneController: continuous — reads each epoch's HealthSnapshot
//    (FP occupancy and eviction pressure, EF level saturation, IFP load)
//    and proposes a bounded re-split at the same byte budget when the
//    pressure across the three parts goes lopsided. Proposals are gated by
//    hysteresis (a minimum pressure imbalance), a max step size per
//    proposal, and a cooldown of quiet epochs, so the controller cannot
//    oscillate; the caller applies them at an epoch seal boundary via
//    DaVinciSketch::Resize / ConcurrentDaVinci::Resize /
//    EpochManager::ScheduleResize (DESIGN.md §12).

namespace davinci {

struct AutotuneResult {
  DaVinciConfig config;
  double sample_are = 0.0;  // ARE of the winning config on the sample
};

// Evaluates a small grid of splits × thresholds on `sample_keys` (a few
// hundred thousand keys is plenty) and returns the best configuration for
// `total_bytes`. Deterministic for a given seed.
AutotuneResult AutotuneConfig(const std::vector<uint32_t>& sample_keys,
                              size_t total_bytes, uint64_t seed);

struct AutotuneControllerOptions {
  // Largest change of any part's byte fraction in one proposal.
  double max_step = 0.10;
  // Minimum pressure imbalance (max part pressure − min part pressure)
  // before a re-split is proposed; below it the controller stays quiet.
  double hysteresis = 0.25;
  // Observe() calls to stay quiet after a proposal, letting the resized
  // sketch's structural scans settle before re-measuring.
  size_t cooldown_epochs = 2;
  // Fraction clamps: no part is ever starved to make room for another.
  double min_fraction = 0.10;
  double max_fraction = 0.65;
  // Promotion-threshold recalibration bounds (moved by factors of 2).
  int64_t threshold_min = 4;
  int64_t threshold_max = 256;
};

// Deterministic continuous controller: state is (current geometry,
// cooldown counter); Observe is a pure function of that state and the
// snapshot it is fed, so replaying a workload replays the decisions.
class AutotuneController {
 public:
  // Per-part structural pressure in [0, 1], derived from scans that are
  // live regardless of DAVINCI_STATS.
  struct Pressures {
    double fp = 0.0;   // slot occupancy + eviction-flag coverage
    double ef = 0.0;   // worst tower-level saturation
    double ifp = 0.0;  // bucket load (decode failure risk grows with it)
  };
  static Pressures ComputePressures(const obs::HealthSnapshot& health);

  AutotuneController(const DaVinciConfig& initial, size_t total_bytes,
                     const AutotuneControllerOptions& options = {});

  // Feeds one epoch's aggregated snapshot. Returns the bounded re-split
  // to apply — already adopted as the controller's current geometry — or
  // nullopt when the pressures are balanced or the cooldown is active.
  // If the caller fails to apply a proposal (quota denial), call
  // RevertTo() with the geometry actually live so controller state
  // re-converges with reality.
  std::optional<DaVinciConfig> Observe(const obs::HealthSnapshot& health);
  void RevertTo(const DaVinciConfig& live);

  const DaVinciConfig& current() const { return current_; }
  size_t total_bytes() const { return total_bytes_; }
  uint64_t proposals() const { return proposals_; }

 private:
  DaVinciConfig WithSplit(double fp_fraction, double ef_fraction,
                          int64_t threshold) const;

  AutotuneControllerOptions options_;
  DaVinciConfig current_;
  size_t total_bytes_;
  double fp_fraction_;
  double ef_fraction_;
  size_t cooldown_ = 0;
  uint64_t proposals_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_CORE_AUTOTUNE_H_
