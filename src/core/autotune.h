#ifndef DAVINCI_CORE_AUTOTUNE_H_
#define DAVINCI_CORE_AUTOTUNE_H_

#include <cstdint>
#include <vector>

#include "core/config.h"

// Configuration auto-tuning: given a sample of the stream and a byte
// budget, pick the FP/EF/IFP split (and promotion threshold) that
// minimizes frequency error on the sample. The optimal split depends on
// the workload's skew — the ablation bench shows 2–3× ARE between splits —
// so a short calibration pass on a prefix of the stream pays for itself.

namespace davinci {

struct AutotuneResult {
  DaVinciConfig config;
  double sample_are = 0.0;  // ARE of the winning config on the sample
};

// Evaluates a small grid of splits × thresholds on `sample_keys` (a few
// hundred thousand keys is plenty) and returns the best configuration for
// `total_bytes`. Deterministic for a given seed.
AutotuneResult AutotuneConfig(const std::vector<uint32_t>& sample_keys,
                              size_t total_bytes, uint64_t seed);

}  // namespace davinci

#endif  // DAVINCI_CORE_AUTOTUNE_H_
