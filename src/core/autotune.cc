#include "core/autotune.h"

#include <cstdlib>
#include <unordered_map>

#include "core/davinci_sketch.h"

namespace davinci {
namespace {

double SampleAre(const std::vector<uint32_t>& keys,
                 const DaVinciConfig& config) {
  DaVinciSketch sketch(config);
  std::unordered_map<uint32_t, int64_t> truth;
  truth.reserve(keys.size() / 4 + 16);
  for (uint32_t key : keys) {
    sketch.Insert(key, 1);
    ++truth[key];
  }
  double sum = 0.0;
  for (const auto& [key, f] : truth) {
    sum += static_cast<double>(std::llabs(sketch.Query(key) - f)) /
           static_cast<double>(f);
  }
  return truth.empty() ? 0.0 : sum / static_cast<double>(truth.size());
}

}  // namespace

AutotuneResult AutotuneConfig(const std::vector<uint32_t>& sample_keys,
                              size_t total_bytes, uint64_t seed) {
  struct Split {
    double fp, ef;
  };
  // The grid spans the regimes the ablation bench identifies: FP-starved,
  // balanced, FP-heavy, and IFP-heavy.
  const Split splits[] = {
      {0.10, 0.60}, {0.25, 0.50}, {0.40, 0.40}, {0.50, 0.25}};
  const int64_t thresholds[] = {8, 16, 32};

  AutotuneResult best;
  bool first = true;
  for (const Split& split : splits) {
    for (int64_t threshold : thresholds) {
      DaVinciConfig config =
          DaVinciConfig::FromMemorySplit(total_bytes, split.fp, split.ef,
                                         seed);
      config.promotion_threshold = threshold;
      double are = SampleAre(sample_keys, config);
      if (first || are < best.sample_are) {
        best.config = config;
        best.sample_are = are;
        first = false;
      }
    }
  }
  return best;
}

}  // namespace davinci
