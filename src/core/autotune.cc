#include "core/autotune.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

#include "core/davinci_sketch.h"

namespace davinci {
namespace {

double SampleAre(const std::vector<uint32_t>& keys,
                 const DaVinciConfig& config) {
  DaVinciSketch sketch(config);
  std::unordered_map<uint32_t, int64_t> truth;
  truth.reserve(keys.size() / 4 + 16);
  for (uint32_t key : keys) {
    sketch.Insert(key, 1);
    ++truth[key];
  }
  double sum = 0.0;
  for (const auto& [key, f] : truth) {
    sum += static_cast<double>(std::llabs(sketch.Query(key) - f)) /
           static_cast<double>(f);
  }
  return truth.empty() ? 0.0 : sum / static_cast<double>(truth.size());
}

}  // namespace

AutotuneController::Pressures AutotuneController::ComputePressures(
    const obs::HealthSnapshot& health) {
  Pressures p;
  // FP: slot occupancy, sharpened by how much of the table has already
  // been forced to evict (flagged buckets). Both are structural scans.
  double occupancy = health.fp.Occupancy();
  double flagged =
      health.fp.buckets == 0
          ? 0.0
          : static_cast<double>(health.fp.flagged_buckets) /
                static_cast<double>(health.fp.buckets);
  p.fp = std::min(1.0, 0.6 * occupancy + 0.4 * flagged);
  // EF: the worst tower level's saturation — a pinned counter lies about
  // every flow mapped onto it, so the worst level bounds filter fidelity.
  for (const obs::EfLevelHealth& level : health.ef.levels) {
    p.ef = std::max(p.ef, level.SaturationFraction());
  }
  // IFP: bucket load. Peeling needs pure buckets; decode failure risk
  // (and fast-query noise) climbs directly with load.
  p.ifp = std::min(1.0, health.ifp.Load());
  return p;
}

AutotuneController::AutotuneController(const DaVinciConfig& initial,
                                       size_t total_bytes,
                                       const AutotuneControllerOptions& options)
    : options_(options), current_(initial), total_bytes_(total_bytes) {
  double total = static_cast<double>(initial.TotalBytes());
  fp_fraction_ = total == 0.0
                     ? 0.25
                     : static_cast<double>(initial.FpBytes()) / total;
  ef_fraction_ = total == 0.0
                     ? 0.50
                     : static_cast<double>(initial.ef_bytes) / total;
}

DaVinciConfig AutotuneController::WithSplit(double fp_fraction,
                                            double ef_fraction,
                                            int64_t threshold) const {
  // Re-derive sizes directly (not via FromMemorySplit) so every
  // non-fraction field — slots, rows, level bits, tuning knobs, seed —
  // carries over from the current geometry.
  DaVinciConfig config = current_;
  auto fp_bytes = static_cast<size_t>(
      static_cast<double>(total_bytes_) * fp_fraction);
  auto ef_bytes = static_cast<size_t>(
      static_cast<double>(total_bytes_) * ef_fraction);
  size_t ifp_bytes =
      total_bytes_ > fp_bytes + ef_bytes ? total_bytes_ - fp_bytes - ef_bytes
                                         : 0;
  size_t bucket_bytes = config.fp_slots * DaVinciConfig::kFpSlotBytes +
                        DaVinciConfig::kFpBucketOverheadBytes;
  config.fp_buckets = std::max<size_t>(1, fp_bytes / bucket_bytes);
  config.ef_bytes = std::max<size_t>(64, ef_bytes);
  config.ifp_buckets_per_row = std::max<size_t>(
      4, ifp_bytes / DaVinciConfig::kIfpBucketBytes / config.ifp_rows);
  config.promotion_threshold = threshold;
  return config;
}

std::optional<DaVinciConfig> AutotuneController::Observe(
    const obs::HealthSnapshot& health) {
  if (cooldown_ > 0) {
    --cooldown_;
    return std::nullopt;
  }
  Pressures p = ComputePressures(health);

  // Threshold recalibration rides along with (and uses the same cooldown
  // as) the re-split: a loaded IFP wants a higher T so more mass stays in
  // the filter; a saturated EF with a quiet IFP wants a lower T so mass
  // stops piling into pinned counters.
  int64_t threshold = current_.promotion_threshold;
  if (p.ifp > 0.5 && threshold * 2 <= options_.threshold_max) {
    threshold *= 2;
  } else if (p.ef > 0.5 && p.ifp < 0.25 &&
             threshold / 2 >= options_.threshold_min) {
    threshold /= 2;
  }

  // Byte re-split: move budget from the least-pressured part toward the
  // most-pressured one, step-bounded and clamped.
  double fractions[3] = {fp_fraction_, ef_fraction_,
                         1.0 - fp_fraction_ - ef_fraction_};
  double pressures[3] = {p.fp, p.ef, p.ifp};
  int hi = 0, lo = 0;
  for (int i = 1; i < 3; ++i) {
    if (pressures[i] > pressures[hi]) hi = i;
    if (pressures[i] < pressures[lo]) lo = i;
  }
  double imbalance = pressures[hi] - pressures[lo];
  bool rebalance = imbalance > options_.hysteresis &&
                   fractions[hi] < options_.max_fraction &&
                   fractions[lo] > options_.min_fraction;
  if (!rebalance && threshold == current_.promotion_threshold) {
    return std::nullopt;
  }
  if (rebalance) {
    double step = std::min(options_.max_step, options_.max_step * imbalance +
                                                  options_.max_step * 0.5);
    step = std::min(step, fractions[lo] - options_.min_fraction);
    step = std::min(step, options_.max_fraction - fractions[hi]);
    fractions[hi] += step;
    fractions[lo] -= step;
  }
  DaVinciConfig proposed = WithSplit(fractions[0], fractions[1], threshold);
  if (proposed.GeometryEquals(current_)) return std::nullopt;
  fp_fraction_ = fractions[0];
  ef_fraction_ = fractions[1];
  current_ = proposed;
  cooldown_ = options_.cooldown_epochs;
  ++proposals_;
  return proposed;
}

void AutotuneController::RevertTo(const DaVinciConfig& live) {
  current_ = live;
  double total = static_cast<double>(live.TotalBytes());
  if (total > 0.0) {
    fp_fraction_ = static_cast<double>(live.FpBytes()) / total;
    ef_fraction_ = static_cast<double>(live.ef_bytes) / total;
  }
}

AutotuneResult AutotuneConfig(const std::vector<uint32_t>& sample_keys,
                              size_t total_bytes, uint64_t seed) {
  struct Split {
    double fp, ef;
  };
  // The grid spans the regimes the ablation bench identifies: FP-starved,
  // balanced, FP-heavy, and IFP-heavy.
  const Split splits[] = {
      {0.10, 0.60}, {0.25, 0.50}, {0.40, 0.40}, {0.50, 0.25}};
  const int64_t thresholds[] = {8, 16, 32};

  AutotuneResult best;
  bool first = true;
  for (const Split& split : splits) {
    for (int64_t threshold : thresholds) {
      DaVinciConfig config =
          DaVinciConfig::FromMemorySplit(total_bytes, split.fp, split.ef,
                                         seed);
      config.promotion_threshold = threshold;
      double are = SampleAre(sample_keys, config);
      if (first || are < best.sample_are) {
        best.config = config;
        best.sample_are = are;
        first = false;
      }
    }
  }
  return best;
}

}  // namespace davinci
