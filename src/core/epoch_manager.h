#ifndef DAVINCI_CORE_EPOCH_MANAGER_H_
#define DAVINCI_CORE_EPOCH_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/davinci_sketch.h"

// EpochManager: the one window lifecycle every temporal feature sits on
// (DESIGN.md §10). It owns epoch rotation — Advance() seals the current
// epoch (a zero-copy move into an immutable shared_ptr) and opens a fresh
// same-seed sketch — and retains a ring of up to W−1 sealed epochs plus
// the live one, so the window covers the last W epochs exactly like the
// original SlidingDaVinci deque.
//
// Window queries are answered by LAZY INCREMENTAL MERGE with memoized
// prefix merges, using the classic two-stack sliding-window aggregation
// (DaVinci merge is associative in value but NOT invertible — λ-vote
// eviction loses information — so a subtract-the-expired-epoch scheme is
// unsound):
//
//  - back accumulator: a running left-fold merge of the most recently
//    sealed epochs, extended by one Merge per Advance();
//  - front suffix stack: for the oldest segment, entry i memoizes the
//    merge of epoch i with everything newer in the segment. Expiring the
//    oldest epoch is a pop; when the stack runs dry the back segment is
//    flipped into it (one Merge per epoch, amortized O(1) per Advance).
//
// MergedWindow() then combines at most two memoized aggregates and the
// live epoch — constant merge work per call regardless of W, with sealed
// epochs never re-merged (the `window_merge_hits` telemetry counts how
// many sealed epochs each query served from the memo).
//
// Not internally synchronized: like DaVinciSketch, callers serialize
// writes; wrap in ConcurrentDaVinci-style locking if needed. Concurrent
// *const* queries against a quiescent manager are allowed, which is why
// the one piece of state a const path mutates — the window_merge_hits_
// telemetry tally — is a relaxed atomic (the PR 7 annotation audit found
// the old `mutable uint64_t` racing itself under two concurrent window
// queries; every other member is only touched by the externally-serialized
// write path or read after it).

namespace davinci {

class EpochManager {
 public:
  // The window spans `window_epochs` epochs of `bytes_per_epoch` each
  // (default 25/50/25 split); all epochs share `seed`, so they stay
  // mergeable.
  EpochManager(size_t window_epochs, size_t bytes_per_epoch, uint64_t seed);

  // Explicit-geometry variant (the resize/autotune entry point).
  EpochManager(size_t window_epochs, const DaVinciConfig& config);

  // Moves require exclusive ownership of both sides, like any write (the
  // atomic telemetry member deletes the implicit versions).
  EpochManager(EpochManager&& other) noexcept
      : max_epochs_(other.max_epochs_),
        epoch_config_(std::move(other.epoch_config_)),
        pending_config_(std::move(other.pending_config_)),
        legacy_heavy_changers_(other.legacy_heavy_changers_),
        live_(std::move(other.live_)),
        live_inserts_(other.live_inserts_),
        front_stack_(std::move(other.front_stack_)),
        back_epochs_(std::move(other.back_epochs_)),
        back_agg_(std::move(other.back_agg_)),
        rotations_(other.rotations_),
        rebuild_merges_(other.rebuild_merges_),
        resizes_applied_(other.resizes_applied_),
        window_merge_hits_(other.window_merge_hits()) {}
  EpochManager& operator=(EpochManager&& other) noexcept {
    if (this == &other) return *this;
    max_epochs_ = other.max_epochs_;
    epoch_config_ = std::move(other.epoch_config_);
    pending_config_ = std::move(other.pending_config_);
    legacy_heavy_changers_ = other.legacy_heavy_changers_;
    live_ = std::move(other.live_);
    live_inserts_ = other.live_inserts_;
    front_stack_ = std::move(other.front_stack_);
    back_epochs_ = std::move(other.back_epochs_);
    back_agg_ = std::move(other.back_agg_);
    rotations_ = other.rotations_;
    rebuild_merges_ = other.rebuild_merges_;
    resizes_applied_ = other.resizes_applied_;
    window_merge_hits_.store(other.window_merge_hits(),
                             std::memory_order_relaxed);
    return *this;
  }

  // ---- write path (live epoch) ----
  void Insert(uint32_t key, int64_t count = 1);
  void InsertBatch(std::span<const uint32_t> keys,
                   std::span<const int64_t> counts);
  void InsertBatch(std::span<const uint32_t> keys);  // count 1 per key

  // Seals the current epoch into the ring and opens a fresh same-seed
  // sketch; the oldest epoch expires once the window would exceed W.
  // If a resize is pending (ScheduleResize), the rotation is also the
  // geometry swap point: the sealed epoch and every retained window epoch
  // are rebuilt into the new geometry (DaVinciSketch::Resize), the suffix
  // memos are recomputed over the rebuilt epochs, and the fresh live
  // epoch opens at the new size. Outstanding CoW snapshots keep serving
  // the old-geometry state untouched.
  void Advance();

  // ---- dynamic geometry ----
  // Stages `config` to take effect at the next Advance() (the seal-by-move
  // rotation is the one point where no reader holds the live sketch).
  // Returns false — staging nothing — when the new geometry is
  // kIncompatible with the current one. A second call before the next
  // Advance replaces the staged config.
  bool ScheduleResize(const DaVinciConfig& config);
  bool resize_pending() const { return pending_config_.has_value(); }
  // Geometry swaps applied at seal boundaries so far.
  uint64_t resizes_applied() const { return resizes_applied_; }
  // The geometry every window epoch currently shares (a pending resize
  // does not show here until its Advance applies it).
  const DaVinciConfig& epoch_config() const { return epoch_config_; }

  // ---- window queries ----
  // Frequency over the whole window (sum of per-epoch estimates).
  int64_t Query(uint32_t key) const;
  // Frequency in the live epoch only.
  int64_t QueryCurrentEpoch(uint32_t key) const;
  // One merged sketch covering the window, for the remaining tasks (heavy
  // hitters, cardinality, distribution, entropy, joins). Constant merge
  // work per call via the memoized aggregates.
  DaVinciSketch MergedWindow() const;

  // Heavy changers of the newest epoch against the merged remainder of
  // the window (the paper's two-window semantics, Algorithm 4 task 3).
  // With set_legacy_heavy_changers(true), compares against the single
  // oldest epoch instead (the pre-epoch-engine behavior; default off).
  std::vector<std::pair<uint32_t, int64_t>> HeavyChangers(
      int64_t delta) const;
  void set_legacy_heavy_changers(bool legacy) {
    legacy_heavy_changers_ = legacy;
  }

  // ---- introspection ----
  const DaVinciSketch& live() const { return live_; }
  size_t window_epochs() const { return max_epochs_; }
  size_t sealed_epochs() const {
    return front_stack_.size() + back_epochs_.size();
  }
  size_t epochs_in_window() const { return sealed_epochs() + 1; }
  uint64_t rotations() const { return rotations_; }
  uint64_t window_merge_hits() const {
    return window_merge_hits_.load(std::memory_order_relaxed);
  }
  uint64_t window_rebuild_merges() const { return rebuild_merges_; }

  // Design bytes of the W window epochs (the memoized aggregates are
  // derived caches and not counted, matching the pre-engine accounting).
  size_t MemoryBytes() const;

  // Aborts (DAVINCI_CHECK) on a violated structural invariant: the window
  // never holds more than W epochs, every epoch and memoized aggregate
  // passes its own sketch audit, and the memo covers exactly the sealed
  // epochs.
  void CheckInvariants(InvariantMode mode) const;

  // Accumulates every window epoch's HealthSnapshot (shards counts
  // epochs, as in ConcurrentDaVinci) and fills the `epoch` section with
  // rotation/memoization/CoW telemetry.
  void CollectStats(obs::HealthSnapshot* out) const;

 private:
  struct FrontEntry {
    std::shared_ptr<const DaVinciSketch> epoch;
    // Merge of `epoch` with every newer epoch in the front segment.
    std::shared_ptr<const DaVinciSketch> agg;
  };

  // Pops the oldest epoch, flipping the back segment into the suffix
  // stack first if the stack is dry.
  void Expire();
  void Flip();
  // Merged remainder of the window excluding the live epoch; requires
  // sealed_epochs() > 0. Bumps window_merge_hits_.
  DaVinciSketch MergedSealed() const;
  // Rebuilds one retained epoch into epoch_config_'s geometry.
  std::shared_ptr<const DaVinciSketch> RebuildEpoch(
      const std::shared_ptr<const DaVinciSketch>& epoch);
  // Rebuilds every retained epoch and recomputes the two-stack memos.
  void RebuildWindow();

  size_t max_epochs_;
  DaVinciConfig epoch_config_;
  std::optional<DaVinciConfig> pending_config_;
  bool legacy_heavy_changers_ = false;

  DaVinciSketch live_;
  uint64_t live_inserts_ = 0;  // lets MergedWindow skip merging an empty live
  // Oldest segment, top (back()) = oldest epoch in the window.
  std::vector<FrontEntry> front_stack_;
  // Newest sealed segment in seal order (front() = oldest of the segment).
  std::deque<std::shared_ptr<const DaVinciSketch>> back_epochs_;
  // Left-fold merge of back_epochs_; null iff back_epochs_ is empty.
  std::shared_ptr<DaVinciSketch> back_agg_;

  uint64_t rotations_ = 0;
  uint64_t rebuild_merges_ = 0;
  uint64_t resizes_applied_ = 0;
  // Bumped from const query paths, which may run concurrently (see the
  // class comment); relaxed is enough for a monotone telemetry tally.
  mutable std::atomic<uint64_t> window_merge_hits_{0};
};

}  // namespace davinci

#endif  // DAVINCI_CORE_EPOCH_MANAGER_H_
