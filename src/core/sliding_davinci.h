#ifndef DAVINCI_CORE_SLIDING_DAVINCI_H_
#define DAVINCI_CORE_SLIDING_DAVINCI_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "core/davinci_sketch.h"

// Sliding-window extension: the paper's related work notes that heavy-
// hitter systems manage temporal locality with sliding windows; DaVinci's
// linearity makes this a natural extension. The window of the last W
// epochs is maintained as W identically-seeded sub-sketches; Advance()
// retires the oldest. Queries either sum per-epoch answers (cheap) or
// merge the epochs into one sketch (full task support).

namespace davinci {

class SlidingDaVinci {
 public:
  // `epochs` sub-sketches of `bytes_per_epoch` each cover the window.
  SlidingDaVinci(size_t epochs, size_t bytes_per_epoch, uint64_t seed);

  // Insert into the current (newest) epoch.
  void Insert(uint32_t key, int64_t count = 1);

  // Close the current epoch and open a new one; the oldest epoch falls
  // out of the window once more than `epochs` have been opened.
  void Advance();

  // Frequency over the whole window (sum of per-epoch estimates).
  int64_t Query(uint32_t key) const;

  // Frequency in the most recent epoch only.
  int64_t QueryCurrentEpoch(uint32_t key) const;

  // One merged sketch covering the window, for the remaining tasks
  // (heavy hitters, cardinality, distribution, entropy, joins).
  DaVinciSketch MergedWindow() const;

  // Heavy changers between the newest and oldest epoch in the window.
  std::vector<std::pair<uint32_t, int64_t>> HeavyChangers(
      int64_t delta) const;

  size_t epochs_in_window() const { return window_.size(); }
  size_t MemoryBytes() const;

 private:
  size_t max_epochs_;
  size_t bytes_per_epoch_;
  uint64_t seed_;
  std::deque<DaVinciSketch> window_;  // front = oldest, back = current
};

}  // namespace davinci

#endif  // DAVINCI_CORE_SLIDING_DAVINCI_H_
