#ifndef DAVINCI_CORE_SLIDING_DAVINCI_H_
#define DAVINCI_CORE_SLIDING_DAVINCI_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/epoch_manager.h"

// Sliding-window extension: the paper's related work notes that heavy-
// hitter systems manage temporal locality with sliding windows; DaVinci's
// linearity makes this a natural extension. Since PR 5 this is a thin
// client of EpochManager (DESIGN.md §10), which owns rotation, the ring of
// sealed epochs, and the memoized window merges; SlidingDaVinci just keeps
// the historical window-API names.

namespace davinci {

class SlidingDaVinci {
 public:
  // `epochs` sub-sketches of `bytes_per_epoch` each cover the window.
  SlidingDaVinci(size_t epochs, size_t bytes_per_epoch, uint64_t seed)
      : engine_(epochs, bytes_per_epoch, seed) {}

  // Insert into the current (newest) epoch.
  void Insert(uint32_t key, int64_t count = 1) { engine_.Insert(key, count); }

  // Batched insert into the current epoch (DaVinciSketch::InsertBatch
  // semantics: bit-equivalent to single Inserts in stream order).
  void InsertBatch(std::span<const uint32_t> keys,
                   std::span<const int64_t> counts) {
    engine_.InsertBatch(keys, counts);
  }
  void InsertBatch(std::span<const uint32_t> keys) {
    engine_.InsertBatch(keys);
  }

  // Close the current epoch and open a new one; the oldest epoch falls
  // out of the window once more than `epochs` have been opened.
  void Advance() { engine_.Advance(); }

  // Frequency over the whole window (sum of per-epoch estimates).
  int64_t Query(uint32_t key) const { return engine_.Query(key); }

  // Frequency in the most recent epoch only.
  int64_t QueryCurrentEpoch(uint32_t key) const {
    return engine_.QueryCurrentEpoch(key);
  }

  // One merged sketch covering the window, for the remaining tasks
  // (heavy hitters, cardinality, distribution, entropy, joins).
  DaVinciSketch MergedWindow() const { return engine_.MergedWindow(); }

  // Heavy changers of the newest epoch against the merged remainder of
  // the window (the paper's two-window semantics). The pre-PR-5 behavior
  // — newest vs the single oldest epoch — is available behind
  // set_legacy_heavy_changers(true), defaulting off.
  std::vector<std::pair<uint32_t, int64_t>> HeavyChangers(
      int64_t delta) const {
    return engine_.HeavyChangers(delta);
  }
  void set_legacy_heavy_changers(bool legacy) {
    engine_.set_legacy_heavy_changers(legacy);
  }

  // Aborts (DAVINCI_CHECK) if any window epoch or memoized window merge
  // violates its sketch invariants (see EpochManager::CheckInvariants).
  void CheckInvariants(InvariantMode mode) const {
    engine_.CheckInvariants(mode);
  }

  // Aggregated health telemetry across the window epochs plus the epoch
  // engine's rotation/memoization counters.
  void CollectStats(obs::HealthSnapshot* out) const {
    engine_.CollectStats(out);
  }

  size_t epochs_in_window() const { return engine_.epochs_in_window(); }
  size_t MemoryBytes() const { return engine_.MemoryBytes(); }

  const EpochManager& engine() const { return engine_; }

 private:
  EpochManager engine_;
};

}  // namespace davinci

#endif  // DAVINCI_CORE_SLIDING_DAVINCI_H_
