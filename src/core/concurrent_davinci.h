#ifndef DAVINCI_CORE_CONCURRENT_DAVINCI_H_
#define DAVINCI_CORE_CONCURRENT_DAVINCI_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_annotations.h"
#include "core/davinci_sketch.h"

// A sharded, thread-safe wrapper: keys are partitioned across S DaVinci
// Sketches by a shard hash, so concurrent writers rarely contend.
//
// RCU-style read path (DESIGN.md §10): each shard publishes an immutable
// SketchView through an atomic shared_ptr. Readers (`Query`, `QueryBatch`,
// `EstimateCardinality`, `HeavyHitters`, `SnapshotAll`) load the current
// view with one acquire and never touch a mutex — a reader observes either
// the state before or after any given write, never a torn middle, and is
// never blocked by a writer. Writers keep the per-shard mutex, mutate the
// live sketch (cloning any CoW buffer a view still shares), and publish a
// fresh view before unlocking.
//
// The write-side protocol is machine-checked (docs/STATIC_ANALYSIS.md):
// the live sketch and the publication tally are GUARDED_BY the shard
// mutex, and Publish/CountMutations carry REQUIRES(shard.mutex), so the
// TSA build rejects any mutation or publication outside the lock. The
// `view` slot itself is a std::atomic — reads are deliberately lock-free —
// but every *store* happens inside Publish, which the annotations pin
// under the mutex (the mutex orders the CoW refcount increment inside
// Snapshot() against other writers).
//
// Publication frequency is tunable (SetPublishInterval): at the default
// interval of 1 every mutation publishes, so a read always reflects every
// completed write (read-your-writes). Raising the interval publishes every
// Nth mutation per shard instead, which bounds the dominant write-side
// cost under concurrent readers — each publish leaves a view sharing the
// live sketch's CoW buffers, so the *next* mutation re-clones them
// (~200KB/publish at default geometry). Readers then serve a view at most
// N-1 mutations stale; FlushViews() force-publishes any shard with
// unpublished writes (call after quiescing writers to make reads exact
// again). Staleness only ever hides suffixes of the write stream — a view
// is always a prefix-consistent image of its shard.
//
// Aggregate queries either sum per-shard answers (cardinality, frequency)
// or operate on a merged snapshot (the remaining tasks). The shards share
// seeds, so snapshots of two ConcurrentDaVinci instances remain mergeable.

namespace davinci {

class ConcurrentDaVinci {
 public:
  // `total_bytes` is divided evenly across `shards`.
  ConcurrentDaVinci(size_t shards, size_t total_bytes, uint64_t seed);

  // Publish a fresh view every `interval` mutations per shard (default 1:
  // publish-per-mutation, read-your-writes). Serving deployments with hot
  // writers raise this to amortize the snapshot/CoW-reclone cost across a
  // batch of writes at the price of bounded read staleness. Safe to call
  // while writers run; takes effect on each shard's next mutation.
  void SetPublishInterval(size_t interval);
  size_t publish_interval() const {
    return publish_interval_.load(std::memory_order_relaxed);
  }

  // Force-publishes every shard with unpublished mutations (no-op at
  // interval 1). After writers quiesce, this makes the lock-free read
  // paths exact again.
  void FlushViews();

  void Insert(uint32_t key, int64_t count = 1);

  // Batched insert: processes keys in blocks, groups each block by shard,
  // and takes each shard's lock ONCE per block instead of once per key
  // before handing the group to DaVinciSketch::InsertBatch. Keys of the
  // same shard are applied in stream order, so the per-shard (and hence
  // snapshot) state is identical to single Inserts.
  void InsertBatch(std::span<const uint32_t> keys,
                   std::span<const int64_t> counts);
  void InsertBatch(std::span<const uint32_t> keys);  // count 1 per key

  // Lock-free point query against the shard's published view.
  int64_t Query(uint32_t key) const;

  // Batched point queries: groups each block of keys by shard (remembering
  // every key's position in `keys`), runs each group against that shard's
  // published view — lock-free — and scatters the answers back into
  // result order. Answer-equivalent to `for (i) Query(keys[i])`.
  std::vector<int64_t> QueryBatch(std::span<const uint32_t> keys) const;

  // Lock-free: sums each published view's estimate (shards partition the
  // key space, so cardinalities add).
  double EstimateCardinality() const;

  // Lock-free: concatenates each published view's heavy hitters (shards
  // partition the key space, so no flow spans two shards).
  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const;

  // Union with another sharded sketch built with the same shard count and
  // seed: merges shard-by-shard, holding the pair of shard locks via an
  // address-ordered MutexLockPair (deadlock-free even when two threads
  // merge two instances into each other concurrently). Safe to run while
  // writers keep inserting into either side; inserts into `other` that
  // race the merge land in whichever side their shard has already been
  // merged from.
  void Merge(const ConcurrentDaVinci& other);

  // A coherent per-shard vector of the currently-published views, one
  // atomic load per shard and no locks. Each view is individually a
  // consistent image of its shard; the vector is the serving primitive for
  // merged-task queries (union, inner product, ...).
  std::vector<std::shared_ptr<const SketchView>> SnapshotAll() const;

  // A single merged sketch built from SnapshotAll() — lock-free (shards
  // hash-partition the key space, so the merge sees each flow once).
  // During a Resize transient the published views briefly span two
  // geometries; a view that disagrees with the first shard's is rebuilt
  // through DaVinciSketch::Resize before merging, so the snapshot stays
  // servable mid-swap.
  DaVinciSketch Snapshot() const;

  // ---- dynamic geometry (DESIGN.md §12) ----
  // Rebuilds every shard's live sketch into `per_shard_config`, one shard
  // at a time under that shard's mutex, publishing a fresh view per shard
  // — readers stay lock-free on their current views throughout and are
  // never blocked. Returns false (recording a rejection) when the new
  // geometry is kIncompatible with the current one. `trigger` is an
  // obs::ResizeHealth::Trigger value recorded in the resize provenance.
  // Concurrent writers are safe; concurrent Resize calls must be
  // externally serialized (the server's tenant does so) — two interleaved
  // resizes could strand shards on different geometries.
  bool Resize(const DaVinciConfig& per_shard_config,
              uint32_t trigger = obs::ResizeHealth::kAdmin);
  // Bumps the rejected-resize tally (quota denials happen above this
  // layer but belong in the same provenance stream).
  void RecordResizeRejected() {
    resizes_rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t resizes_applied() const {
    return resizes_applied_.load(std::memory_order_relaxed);
  }
  // The full provenance record (same fields CollectStats reports) — the
  // server checkpoints it so resize history survives recovery.
  obs::ResizeHealth ResizeProvenance() const {
    obs::ResizeHealth resize;
    resize.applied = resizes_applied_.load(std::memory_order_relaxed);
    resize.rejected = resizes_rejected_.load(std::memory_order_relaxed);
    resize.bytes_before = resize_bytes_before_.load(std::memory_order_relaxed);
    resize.bytes_after = resize_bytes_after_.load(std::memory_order_relaxed);
    resize.last_trigger = resize_trigger_.load(std::memory_order_relaxed);
    return resize;
  }
  // Per-shard geometry currently live (read off shard 0's published view;
  // uniform outside a Resize transient).
  DaVinciConfig ShardConfig() const;

  // ---- persistence (the server's tenant checkpoints) ----
  // Serializes the shard count followed by each shard's PUBLISHED view —
  // one atomic load per shard, no locks, so writers are never stalled by a
  // checkpoint. The image is prefix-consistent per shard: call FlushViews()
  // first (after quiescing, or accepting interval-bounded staleness) to
  // capture every completed write.
  void SaveShards(std::ostream& out) const;

  // Same image with a per-shard format selector: kCompressed writes each
  // shard as a DVSZ container (typically >4x smaller on skewed traffic —
  // the DVCK v2 checkpoint body and the server's kExportSketch use this).
  // Readers need no flag: DaVinciSketch::Load sniffs the format per shard,
  // so RestoreShards and ParseShardImage accept both, including images
  // that mix formats.
  void SaveShards(std::ostream& out, SketchFormat format) const;

  // Parses ONE SaveShards image into per-shard sketches without touching
  // live state. Returns false — leaving `staged` unspecified — on any of
  // RestoreShards' gates (shard count, per-shard Load, mutual geometry,
  // FP shard routing); with `match_live_geometry` additionally when the
  // image's geometry differs from this instance's live one (required
  // before MergeShardImages — DaVinciSketch::Merge aborts on mismatched
  // configs, and a wire image must fail softly instead).
  bool ParseShardImage(std::istream& in, std::vector<DaVinciSketch>* staged,
                       bool match_live_geometry = true) const;

  // Fan-in merge: left-folds every staged image (each from ParseShardImage
  // with match_live_geometry) into the live shards, in the order given,
  // publishing each shard once at the end. The state evolution is exactly
  // `for (i) Merge(engine_of(images[i]))` — the canonical order matters
  // because FP eviction during merge is order-sensitive (DESIGN.md §Wire
  // format), so the aggregator pins request order rather than pretending
  // Merge is associative.
  void MergeShardImages(std::vector<std::vector<DaVinciSketch>>&& images);

  // Restores an image produced by SaveShards into this instance, replacing
  // every shard's live sketch and republishing. Non-aborting on hostile
  // input: returns false — leaving *this untouched — when the shard count
  // differs from this instance's, any per-shard image fails the
  // DaVinciSketch::Load gate, the shard configs are not mutually
  // merge-compatible (GeometryEquals), or a frequent-part resident key is
  // routed to a different shard by this instance's shard hash (a corrupted
  // image must not poison Snapshot()'s cross-shard merge).
  bool RestoreShards(std::istream& in);

  // Aggregated health telemetry: collects every shard's snapshot under its
  // lock and sums them (capacities and counters add across shards;
  // `shards` records the shard count). Safe while writers are active.
  void CollectStats(obs::HealthSnapshot* out) const;

  size_t num_shards() const { return shards_.size(); }
  size_t MemoryBytes() const;

  // Aborts (DAVINCI_CHECK) on a violated structural invariant: every
  // shard's sketch passes its own audit, the shards share one geometry
  // and seed (Snapshot's Merge requires it), each shard holds only keys
  // the shard hash routes to it, and each shard has a published view.
  // Takes every shard lock in turn, so it is safe to call while writers
  // are active.
  void CheckInvariants(InvariantMode mode) const;

  // Returns shard `shard`'s writer mutex (test hook: the lock-free-read
  // tests hold a shard lock hostage — via ReleasableMutexLock — and assert
  // reads still complete). The old form returned an already-locked
  // std::unique_lock, which Thread Safety Analysis cannot track across the
  // call boundary; handing out the annotated Mutex instead keeps the
  // hostage-holding *test* inside the analysis too (the pattern is
  // documented in docs/STATIC_ANALYSIS.md §"Locks across call boundaries").
  Mutex& ShardMutexForTesting(size_t shard) const {
    return shards_[shard].mutex;
  }

 private:
  // Whole-struct alignment keeps any two shards off a shared cache line:
  // reader threads hammer `view` (acquire load + refcount bump) while
  // writer threads spin adjacent shards' mutexes, and at the default
  // alignment shard s's view slot and shard s+1's mutex land on one line
  // and ping-pong it between cores.
  struct alignas(128) Shard {
    mutable Mutex mutex;
    std::unique_ptr<DaVinciSketch> sketch DAVINCI_GUARDED_BY(mutex);
    // Mutations since the last publish.
    size_t unpublished DAVINCI_GUARDED_BY(mutex) = 0;
    // RCU publication point: the immutable view readers run against.
    // Stored with release by writers (every mutation at interval 1, every
    // Nth otherwise), loaded with acquire by readers; never null once the
    // constructor finishes. Deliberately NOT guarded: reads are lock-free
    // by design, and all stores live in Publish (REQUIRES the mutex).
    std::atomic<std::shared_ptr<const SketchView>> view;
    // Read-side query tally (the lock-free paths bypass the live sketch's
    // counters, which only writers touch). Own cache line: readers bump it
    // on every query, and sharing a line with `view` would drag the
    // publication slot into every increment's ownership transfer.
    alignas(64) mutable obs::SharedEventCounter read_queries;
  };

  size_t ShardOf(uint32_t key) const {
    return shard_hash_.BucketFast(key, shards_.size());
  }

  // Publishes a fresh view of the shard's live sketch (the mutex orders
  // the CoW refcount increment inside Snapshot() against other writers).
  static void Publish(Shard& shard) DAVINCI_REQUIRES(shard.mutex) {
    shard.view.store(shard.sketch->Snapshot(), std::memory_order_release);
    shard.unpublished = 0;
  }

  // Tallies `mutations` fresh mutations against the shard and publishes
  // once the tally reaches the publish interval.
  void CountMutations(Shard& shard, size_t mutations)
      DAVINCI_REQUIRES(shard.mutex) {
    shard.unpublished += mutations;
    if (shard.unpublished >= publish_interval_.load(std::memory_order_relaxed))
      Publish(shard);
  }

  HashFamily shard_hash_;
  std::vector<Shard> shards_;
  std::atomic<size_t> publish_interval_{1};

  // Resize provenance (obs::ResizeHealth). Relaxed atomics: bumped by the
  // (externally serialized) resize path, read by CollectStats from any
  // thread.
  std::atomic<uint64_t> resizes_applied_{0};
  std::atomic<uint64_t> resizes_rejected_{0};
  std::atomic<uint64_t> resize_bytes_before_{0};
  std::atomic<uint64_t> resize_bytes_after_{0};
  std::atomic<uint32_t> resize_trigger_{obs::ResizeHealth::kNone};
};

}  // namespace davinci

#endif  // DAVINCI_CORE_CONCURRENT_DAVINCI_H_
