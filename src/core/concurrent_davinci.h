#ifndef DAVINCI_CORE_CONCURRENT_DAVINCI_H_
#define DAVINCI_CORE_CONCURRENT_DAVINCI_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/davinci_sketch.h"

// A sharded, thread-safe wrapper: keys are partitioned across S
// independently-locked DaVinci Sketches by a shard hash, so concurrent
// writers rarely contend. Aggregate queries either sum per-shard answers
// (cardinality, frequency) or operate on a merged snapshot (the remaining
// tasks). The shards share seeds, so snapshots of two ConcurrentDaVinci
// instances remain mergeable.

namespace davinci {

class ConcurrentDaVinci {
 public:
  // `total_bytes` is divided evenly across `shards`.
  ConcurrentDaVinci(size_t shards, size_t total_bytes, uint64_t seed);

  void Insert(uint32_t key, int64_t count = 1);

  // Batched insert: processes keys in blocks, groups each block by shard,
  // and takes each shard's lock ONCE per block instead of once per key
  // before handing the group to DaVinciSketch::InsertBatch. Keys of the
  // same shard are applied in stream order, so the per-shard (and hence
  // snapshot) state is identical to single Inserts.
  void InsertBatch(std::span<const uint32_t> keys,
                   std::span<const int64_t> counts);
  void InsertBatch(std::span<const uint32_t> keys);  // count 1 per key

  int64_t Query(uint32_t key) const;

  // Batched point queries: groups each block of keys by shard (remembering
  // every key's position in `keys`), takes each shard's lock once per
  // block, and scatters the per-shard DaVinciSketch::QueryBatch answers
  // back into result order. Answer-equivalent to `for (i) Query(keys[i])`.
  std::vector<int64_t> QueryBatch(std::span<const uint32_t> keys) const;

  double EstimateCardinality() const;

  // Union with another sharded sketch built with the same shard count and
  // seed: merges shard-by-shard, holding the pair of shard locks via
  // std::scoped_lock (deadlock-free even when two threads merge two
  // instances into each other concurrently). Safe to run while writers
  // keep inserting into either side; inserts into `other` that race the
  // merge land in whichever side their shard has already been merged from.
  void Merge(const ConcurrentDaVinci& other);

  // A single-threaded snapshot merging every shard (shards hash-partition
  // the key space, so the merge sees each flow exactly once).
  DaVinciSketch Snapshot() const;

  // Aggregated health telemetry: collects every shard's snapshot under its
  // lock and sums them (capacities and counters add across shards;
  // `shards` records the shard count). Safe while writers are active.
  void CollectStats(obs::HealthSnapshot* out) const;

  size_t num_shards() const { return shards_.size(); }
  size_t MemoryBytes() const;

  // Aborts (DAVINCI_CHECK) on a violated structural invariant: every
  // shard's sketch passes its own audit, the shards share one geometry
  // and seed (Snapshot's Merge requires it), and each shard holds only
  // keys the shard hash routes to it. Takes every shard lock in turn, so
  // it is safe to call while writers are active.
  void CheckInvariants(InvariantMode mode) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unique_ptr<DaVinciSketch> sketch;
  };

  size_t ShardOf(uint32_t key) const {
    return shard_hash_.BucketFast(key, shards_.size());
  }

  HashFamily shard_hash_;
  std::vector<Shard> shards_;
};

}  // namespace davinci

#endif  // DAVINCI_CORE_CONCURRENT_DAVINCI_H_
