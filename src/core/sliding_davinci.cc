#include "core/sliding_davinci.h"

#include <algorithm>

namespace davinci {

SlidingDaVinci::SlidingDaVinci(size_t epochs, size_t bytes_per_epoch,
                               uint64_t seed)
    : max_epochs_(std::max<size_t>(1, epochs)),
      bytes_per_epoch_(bytes_per_epoch),
      seed_(seed) {
  window_.emplace_back(bytes_per_epoch_, seed_);
}

void SlidingDaVinci::Insert(uint32_t key, int64_t count) {
  window_.back().Insert(key, count);
}

void SlidingDaVinci::Advance() {
  window_.emplace_back(bytes_per_epoch_, seed_);
  if (window_.size() > max_epochs_) {
    window_.pop_front();
  }
}

int64_t SlidingDaVinci::Query(uint32_t key) const {
  int64_t total = 0;
  for (const DaVinciSketch& epoch : window_) {
    total += epoch.Query(key);
  }
  return total;
}

int64_t SlidingDaVinci::QueryCurrentEpoch(uint32_t key) const {
  return window_.back().Query(key);
}

DaVinciSketch SlidingDaVinci::MergedWindow() const {
  DaVinciSketch merged = window_.front();
  for (size_t i = 1; i < window_.size(); ++i) {
    merged.Merge(window_[i]);
  }
  return merged;
}

std::vector<std::pair<uint32_t, int64_t>> SlidingDaVinci::HeavyChangers(
    int64_t delta) const {
  return window_.back().HeavyChangers(window_.front(), delta);
}

size_t SlidingDaVinci::MemoryBytes() const {
  size_t bytes = 0;
  for (const DaVinciSketch& epoch : window_) {
    bytes += epoch.MemoryBytes();
  }
  return bytes;
}

}  // namespace davinci
