#ifndef DAVINCI_CORE_FREQUENT_PART_H_
#define DAVINCI_CORE_FREQUENT_PART_H_

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hash.h"
#include "common/simd.h"
#include "core/config.h"
#include "obs/health.h"

// The frequent part (FP) of DaVinci Sketch: a hash table of k buckets,
// each with c (key, count) entries, an evict counter and an evict flag,
// implementing Algorithm 1 of the paper. Frequent elements are stored
// exactly; losers are evicted toward the element filter.
//
// Storage is SoA: one contiguous key lane, count lane and taint lane, each
// laid out bucket-major with the per-bucket slot run padded to
// simd::kKeyLaneStride entries, so the probe kernels in common/simd.h can
// test every slot of a bucket with one vector compare. Padding slots are
// permanently empty (key 0 / count 0) and invisible to every accessor;
// serialization writes only the logical c slots per bucket, so the on-disk
// format is identical across SIMD backends and pre-padding builds.
//
// The flat arrays live behind a shared_ptr so copies share storage in O(1)
// (copy-on-write): the write path clones the arrays lazily, only when a
// snapshot still references them (DESIGN.md §10). With no snapshot
// outstanding a mutation costs one relaxed use_count load on top of the
// pre-CoW code.

namespace davinci {

class FrequentPart {
 public:
  // What Insert decided, and what (if anything) must continue to the
  // element filter.
  struct InsertResult {
    enum class Action {
      kAbsorbed,      // case 1/2: fully handled inside the FP
      kEvicted,       // case 3: the bucket's minimum was evicted
      kRejected,      // case 4: the incoming element goes to the EF
    };
    Action action = Action::kAbsorbed;
    uint32_t overflow_key = 0;    // key leaving the FP (evicted or rejected)
    int64_t overflow_count = 0;   // its count
  };

  struct Entry {
    uint32_t key = 0;
    int64_t count = 0;
    // True if the flow may have additional mass in the element filter /
    // infrequent part (it entered by case-3 takeover, or survived a merge
    // in which entries were evicted). Case-2 entries are untainted: their
    // FP count is the flow's exact total.
    bool tainted = false;
  };

  FrequentPart(size_t buckets, size_t slots, int64_t evict_lambda,
               uint64_t seed);

  InsertResult Insert(uint32_t key, int64_t count) {
    return InsertWithHash(key, HashFamily::BaseHash(key), count);
  }

  // Hot-path variant: `base_hash` must equal HashFamily::BaseHash(key),
  // computed once by the caller and shared with the other parts.
  InsertResult InsertWithHash(uint32_t key, uint64_t base_hash, int64_t count);

  // Issues a write prefetch for the bucket `base_hash` maps to, so a
  // subsequent InsertWithHash with the same base hash starts warm.
  void PrefetchBucket(uint64_t base_hash) const;

  // Read-prefetch variant for the batched query pipeline: pulls the key
  // lane and count lane of the bucket `base_hash` maps to.
  void PrefetchBucketRead(uint64_t base_hash) const;

  // Count of `key` if resident, 0 otherwise. `tainted` is set to the
  // entry's taint bit (true = the key may have residue in the element
  // filter / infrequent part); it is left untouched on a miss.
  int64_t Query(uint32_t key, bool* tainted) const {
    return QueryWithBase(HashFamily::BaseHash(key), key, tainted);
  }

  // Hot-path variant: `base_hash` must equal HashFamily::BaseHash(key),
  // computed once by the caller (the batched query pipeline's form).
  int64_t QueryWithBase(uint64_t base_hash, uint32_t key,
                        bool* tainted) const {
    const Storage& s = *store_;
    size_t base = BucketOfBase(base_hash) * stride_;
    size_t hit = simd::FindLiveKey(&s.keys[base], &s.counts[base], stride_,
                                   key);
    if (hit == SIZE_MAX) return 0;
    if (tainted != nullptr) *tainted = s.tainted[base + hit] != 0;
    return s.counts[base + hit];
  }

  bool Contains(uint32_t key) const;

  // Direct structural access (merge, heavy hitters, cardinality).
  size_t num_buckets() const { return buckets_; }
  size_t num_slots() const { return slots_; }
  bool BucketFlag(size_t bucket) const { return store_->flags[bucket]; }
  void SetBucketFlag(size_t bucket, bool flag) {
    Mut().flags[bucket] = flag;
  }
  Entry EntryAt(size_t bucket, size_t slot) const {
    const Storage& s = *store_;
    size_t i = bucket * stride_ + slot;
    return {s.keys[i], s.counts[i], s.tainted[i] != 0};
  }
  size_t BucketOf(uint32_t key) const {
    return hash_.BucketFast(key, buckets_);
  }
  size_t BucketOfBase(uint64_t base_hash) const {
    return hash_.BucketFastWithBase(base_hash, buckets_);
  }

  // All live entries (key, count).
  std::vector<Entry> Entries() const;

  // Replaces the contents of `bucket` with up to c entries; extra
  // responsibility for evicted entries lies with the caller (Algorithm 3).
  void OverwriteBucket(size_t bucket, const std::vector<Entry>& entries,
                       bool flag);

  // Raw state round-trip (geometry must already match).
  void SaveState(std::ostream& out) const;
  bool LoadState(std::istream& in);

  // DVSZ compressed state over the logical (unpadded) layout: keys stay
  // raw u32 (high-entropy, incompressible), counts become zigzag varints
  // (empty slots cost one byte instead of eight), taint bits and bucket
  // flags are bit-packed eight to a byte, and evict counters are varints.
  // The loader applies LoadState's range gates (counts within
  // ±kMaxLoadedCount) plus structural ones (spare bits in the packed
  // bitmaps must be zero).
  void SaveStateCompressed(std::ostream& out) const;
  bool LoadStateCompressed(std::istream& in);

  // Delta images at bucket granularity over the CoW base pinned by
  // SealDeltaBase(): a bucket whose slots, evict counter or flag moved
  // since the seal is re-emitted whole. See TowerSketch for the seal/apply
  // contract.
  void SealDeltaBase();
  void SaveDeltaState(std::ostream& out) const;
  bool ApplyDeltaState(std::istream& in);

  // Aborts (DAVINCI_CHECK) if Algorithm 1's structural invariants are
  // violated. Unconditional: array geometry, flag/taint bytes are 0/1,
  // every live entry hashes to the bucket holding it, no bucket holds a
  // key twice. In kAdditive mode additionally: live counts are positive,
  // a bucket with a free slot has a zero evict counter (ecnt only moves
  // while the bucket is full), and a full bucket's evict counter respects
  // the λ-vote bound ecnt ≤ λ·min|count| (an insert pushing it past the
  // bound must have evicted and reset it).
  void CheckInvariants(InvariantMode mode) const;

  // Fills `out` with the bucket-occupancy scan and (stats builds) the
  // Algorithm 1 case counters. See docs/OBSERVABILITY.md.
  void CollectStats(obs::FpHealth* out) const;

  uint64_t memory_accesses() const { return accesses_; }
  size_t MemoryBytes() const {
    return buckets_ * (slots_ * DaVinciConfig::kFpSlotBytes +
                       DaVinciConfig::kFpBucketOverheadBytes);
  }

  // Identity of the shared flat storage — two FrequentParts return the
  // same pointer iff they still share buffers (CoW test hook; not part of
  // the measurement API).
  const void* StorageId() const { return store_.get(); }

 private:
  struct Storage {
    std::vector<uint32_t> keys;     // buckets_ × stride_ (padding keys are 0)
    std::vector<int64_t> counts;    // buckets_ × stride_ (0 = empty slot)
    std::vector<uint8_t> tainted;   // buckets_ × stride_
    std::vector<uint32_t> ecnt;     // per-bucket evict counters
    std::vector<uint8_t> flags;     // per-bucket evict flags
    size_t ByteSize() const {
      return keys.size() * sizeof(uint32_t) +
             counts.size() * sizeof(int64_t) + tainted.size() +
             ecnt.size() * sizeof(uint32_t) + flags.size();
    }
  };

  // Write-path storage access: clones iff a snapshot still shares the
  // buffers. Refcount increments only happen while the owner is externally
  // synchronized with writes, so a concurrent *release* by a reader can at
  // worst cause one spurious clone — never a missed one.
  Storage& Mut() {
    if (store_.use_count() > 1) CloneStore();
    return *store_;
  }
  void CloneStore();

  size_t buckets_;
  size_t slots_;
  size_t stride_;  // slots_ rounded up to simd::kKeyLaneStride
  int64_t evict_lambda_;
  HashFamily hash_;
  std::shared_ptr<Storage> store_;
  // Delta base pinned by SealDeltaBase(); holding the const ref arms the
  // CoW clone in Mut().
  std::shared_ptr<const Storage> delta_base_;
  mutable uint64_t accesses_ = 0;

  // Telemetry (no-ops unless built with DAVINCI_STATS).
  struct Counters {
    obs::EventCounter inserts;
    obs::EventCounter hits;        // case 1
    obs::EventCounter fills;       // case 2
    obs::EventCounter evictions;   // case 3
    obs::EventCounter rejections;  // case 4
  };
  Counters stats_;
};

}  // namespace davinci

#endif  // DAVINCI_CORE_FREQUENT_PART_H_
