#ifndef DAVINCI_CORE_EXTENDED_QUERIES_H_
#define DAVINCI_CORE_EXTENDED_QUERIES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/davinci_sketch.h"
#include "core/epoch_manager.h"

// Queries beyond the paper's nine tasks, derived from the same structure —
// the paper notes that "if new operations can be transformed into this
// framework, additional queries may be supported": these are the natural
// ones downstream users ask for.

namespace davinci {

// |A ∩ B| for distinct elements, by inclusion–exclusion over the linear
// union: |A∩B| = |A| + |B| − |A∪B|. Requires identical configs/seeds.
double EstimateIntersectionCardinality(const DaVinciSketch& a,
                                       const DaVinciSketch& b);

// Jaccard similarity |A∩B| / |A∪B| of the two key sets.
double EstimateJaccard(const DaVinciSketch& a, const DaVinciSketch& b);

// The k largest flows, sorted by estimated frequency (descending). The
// candidates are the frequent-part residents plus decoded medium flows,
// which by design contain every possible top-k member.
std::vector<std::pair<uint32_t, int64_t>> TopK(const DaVinciSketch& sketch,
                                               size_t k);

// The q-quantile (q in [0,1]) of the flow-size distribution: the smallest
// size s such that at least q of all flows have size ≤ s.
int64_t FlowSizeQuantile(const DaVinciSketch& sketch, double q);

// Second frequency moment F₂ = Σ f² (self-join size).
double EstimateSecondMoment(const DaVinciSketch& sketch);

// Heavy changers over an epoch engine's window: elements whose frequency
// in the newest epoch differs by more than `delta` from the merged
// remainder of the window (the paper's two-window semantics, routed
// through EpochManager's memoized merges). Callers that used to juggle
// two ad-hoc sketches insert into one engine and Advance() between
// windows instead.
std::vector<std::pair<uint32_t, int64_t>> WindowHeavyChangers(
    const EpochManager& engine, int64_t delta);

}  // namespace davinci

#endif  // DAVINCI_CORE_EXTENDED_QUERIES_H_
