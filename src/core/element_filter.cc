#include "core/element_filter.h"

namespace davinci {

ElementFilter::ElementFilter(size_t bytes, const std::vector<int>& level_bits,
                             int64_t threshold, uint64_t seed)
    : threshold_(threshold),
      tower_(bytes, seed * 22000331 + 5, TowerSketch::Options{level_bits}) {}

int64_t ElementFilter::Insert(uint32_t key, int64_t count) {
  return tower_.InsertCapped(key, count, threshold_);
}

int64_t ElementFilter::InsertSigned(uint32_t key, int64_t count) {
  return InsertSignedWithHash(HashFamily::BaseHash(key), count);
}

int64_t ElementFilter::InsertSignedWithHash(uint64_t base_hash,
                                            int64_t count) {
  if (count >= 0) {
    return tower_.InsertCappedWithHash(base_hash, count, threshold_);
  }
  return -tower_.InsertCappedDownWithHash(base_hash, -count, threshold_);
}

int64_t ElementFilter::Query(uint32_t key) const { return tower_.Query(key); }

int64_t ElementFilter::QuerySigned(uint32_t key) const {
  return tower_.QuerySigned(key);
}

int64_t ElementFilter::QuerySignedWithHash(uint64_t base_hash) const {
  return tower_.QuerySignedWithHash(base_hash);
}

void ElementFilter::CheckInvariants(InvariantMode mode) const {
  DAVINCI_CHECK(threshold_ > 0);
  DAVINCI_CHECK_LE(threshold_, tower_.LevelCap(tower_.num_levels() - 1));
  tower_.CheckInvariants(mode);
}

}  // namespace davinci
