#include "core/element_filter.h"

namespace davinci {

ElementFilter::ElementFilter(size_t bytes, const std::vector<int>& level_bits,
                             int64_t threshold, uint64_t seed)
    : threshold_(threshold),
      tower_(bytes, seed * 22000331 + 5, TowerSketch::Options{level_bits}) {}

int64_t ElementFilter::Insert(uint32_t key, int64_t count) {
  stats_.inserts.Inc();
  int64_t overflow = tower_.InsertCapped(key, count, threshold_);
  if (overflow != 0) {
    stats_.promotions.Inc();
    stats_.promoted_units.Inc(static_cast<uint64_t>(overflow));
  }
  return overflow;
}

int64_t ElementFilter::InsertSigned(uint32_t key, int64_t count) {
  return InsertSignedWithHash(HashFamily::BaseHash(key), count);
}

int64_t ElementFilter::InsertSignedWithHash(uint64_t base_hash,
                                            int64_t count) {
  stats_.inserts.Inc();
  int64_t overflow;
  if (count >= 0) {
    overflow = tower_.InsertCappedWithHash(base_hash, count, threshold_);
  } else {
    overflow = -tower_.InsertCappedDownWithHash(base_hash, -count, threshold_);
  }
  if (overflow != 0) {
    stats_.promotions.Inc();
    stats_.promoted_units.Inc(
        static_cast<uint64_t>(overflow < 0 ? -overflow : overflow));
  }
  return overflow;
}

void ElementFilter::CollectStats(obs::EfHealth* out) const {
  out->threshold = threshold_;
  out->levels.clear();
  out->levels.reserve(tower_.num_levels());
  for (size_t i = 0; i < tower_.num_levels(); ++i) {
    obs::EfLevelHealth level;
    level.width = tower_.LevelWidth(i);
    level.bits = tower_.LevelBits(i);
    level.cap = tower_.LevelCap(i);
    level.saturated = tower_.SaturatedSlots(i);
    level.zeros = tower_.ZeroSlots(i);
    out->levels.push_back(level);
  }
  out->inserts = stats_.inserts.value();
  out->promotions = stats_.promotions.value();
  out->promoted_units = stats_.promoted_units.value();
}

int64_t ElementFilter::Query(uint32_t key) const { return tower_.Query(key); }

int64_t ElementFilter::QuerySigned(uint32_t key) const {
  return tower_.QuerySigned(key);
}

int64_t ElementFilter::QuerySignedWithHash(uint64_t base_hash) const {
  return tower_.QuerySignedWithHash(base_hash);
}

void ElementFilter::CheckInvariants(InvariantMode mode) const {
  DAVINCI_CHECK(threshold_ > 0);
  DAVINCI_CHECK_LE(threshold_, tower_.LevelCap(tower_.num_levels() - 1));
  tower_.CheckInvariants(mode);
}

}  // namespace davinci
