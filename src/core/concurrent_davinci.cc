#include "core/concurrent_davinci.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "common/serialize.h"

namespace davinci {

ConcurrentDaVinci::ConcurrentDaVinci(size_t shards, size_t total_bytes,
                                     uint64_t seed)
    : shard_hash_(seed * 31001011 + 13),
      shards_(std::max<size_t>(1, shards)) {
  size_t per_shard = std::max<size_t>(8 * 1024, total_bytes / shards_.size());
  for (Shard& shard : shards_) {
    // No concurrent access is possible yet, but Publish's contract requires
    // the shard mutex, and an uncontended acquire costs nothing.
    MutexLock lock(&shard.mutex);
    shard.sketch = std::make_unique<DaVinciSketch>(per_shard, seed);
    Publish(shard);
  }
}

void ConcurrentDaVinci::SetPublishInterval(size_t interval) {
  DAVINCI_CHECK_MSG(interval >= 1, "publish interval must be >= 1");
  publish_interval_.store(interval, std::memory_order_relaxed);
}

void ConcurrentDaVinci::FlushViews() {
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mutex);
    if (shard.unpublished > 0) Publish(shard);
  }
}

void ConcurrentDaVinci::Insert(uint32_t key, int64_t count) {
  Shard& shard = shards_[ShardOf(key)];
  MutexLock lock(&shard.mutex);
  shard.sketch->Insert(key, count);
  CountMutations(shard, 1);
}

void ConcurrentDaVinci::InsertBatch(std::span<const uint32_t> keys,
                                    std::span<const int64_t> counts) {
  // Partition each block by shard into scratch buffers, then drain every
  // non-empty shard group under a single lock acquisition. Blocks bound the
  // scratch memory and the time any one lock is held.
  constexpr size_t kBlock = 16 * DaVinciSketch::kInsertBlock;
  std::vector<std::vector<uint32_t>> shard_keys(shards_.size());
  std::vector<std::vector<int64_t>> shard_counts(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_keys[s].reserve(kBlock);
    shard_counts[s].reserve(kBlock);
  }
  for (size_t start = 0; start < keys.size(); start += kBlock) {
    size_t len = std::min(kBlock, keys.size() - start);
    for (size_t i = 0; i < len; ++i) {
      size_t s = ShardOf(keys[start + i]);
      shard_keys[s].push_back(keys[start + i]);
      shard_counts[s].push_back(counts[start + i]);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shard_keys[s].empty()) continue;
      {
        MutexLock lock(&shards_[s].mutex);
        shards_[s].sketch->InsertBatch(shard_keys[s], shard_counts[s]);
        CountMutations(shards_[s], shard_keys[s].size());
      }
      shard_keys[s].clear();
      shard_counts[s].clear();
    }
  }
}

void ConcurrentDaVinci::InsertBatch(std::span<const uint32_t> keys) {
  if (keys.empty()) return;
  std::vector<int64_t> ones(std::min<size_t>(keys.size(), size_t{4096}), 1);
  for (size_t start = 0; start < keys.size(); start += ones.size()) {
    size_t len = std::min(ones.size(), keys.size() - start);
    InsertBatch(keys.subspan(start, len),
                std::span<const int64_t>(ones.data(), len));
  }
}

int64_t ConcurrentDaVinci::Query(uint32_t key) const {
  const Shard& shard = shards_[ShardOf(key)];
  shard.read_queries.Inc();
  // One acquire load pins the shard's current immutable view; no lock.
  std::shared_ptr<const SketchView> view =
      shard.view.load(std::memory_order_acquire);
  return view->Query(key);
}

std::vector<int64_t> ConcurrentDaVinci::QueryBatch(
    std::span<const uint32_t> keys) const {
  std::vector<int64_t> out(keys.size());
  // Same block structure as InsertBatch, with a parallel position vector so
  // the per-shard answers scatter back to the caller's order.
  constexpr size_t kBlock = 16 * DaVinciSketch::kInsertBlock;
  std::vector<std::vector<uint32_t>> shard_keys(shards_.size());
  std::vector<std::vector<size_t>> shard_pos(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_keys[s].reserve(kBlock);
    shard_pos[s].reserve(kBlock);
  }
  std::vector<int64_t> answers;
  answers.reserve(kBlock);
  for (size_t start = 0; start < keys.size(); start += kBlock) {
    size_t len = std::min(kBlock, keys.size() - start);
    for (size_t i = 0; i < len; ++i) {
      size_t s = ShardOf(keys[start + i]);
      shard_keys[s].push_back(keys[start + i]);
      shard_pos[s].push_back(start + i);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shard_keys[s].empty()) continue;
      shards_[s].read_queries.Inc(shard_keys[s].size());
      std::shared_ptr<const SketchView> view =
          shards_[s].view.load(std::memory_order_acquire);
      answers = view->QueryBatch(shard_keys[s]);
      for (size_t i = 0; i < answers.size(); ++i) {
        out[shard_pos[s][i]] = answers[i];
      }
      shard_keys[s].clear();
      shard_pos[s].clear();
    }
  }
  return out;
}

double ConcurrentDaVinci::EstimateCardinality() const {
  // Shards partition the key space, so cardinalities add.
  double total = 0;
  for (const Shard& shard : shards_) {
    std::shared_ptr<const SketchView> view =
        shard.view.load(std::memory_order_acquire);
    total += view->EstimateCardinality();
  }
  return total;
}

std::vector<std::pair<uint32_t, int64_t>> ConcurrentDaVinci::HeavyHitters(
    int64_t threshold) const {
  // Shards partition the key space, so each flow lives in exactly one
  // shard and the per-shard lists concatenate without dedup.
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const Shard& shard : shards_) {
    shard.read_queries.Inc();
    std::shared_ptr<const SketchView> view =
        shard.view.load(std::memory_order_acquire);
    std::vector<std::pair<uint32_t, int64_t>> found =
        view->HeavyHitters(threshold);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

std::vector<std::shared_ptr<const SketchView>> ConcurrentDaVinci::SnapshotAll()
    const {
  std::vector<std::shared_ptr<const SketchView>> views;
  views.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    views.push_back(shard.view.load(std::memory_order_acquire));
  }
  return views;
}

DaVinciSketch ConcurrentDaVinci::Snapshot() const {
  std::vector<std::shared_ptr<const SketchView>> views = SnapshotAll();
  // The copy shares the first view's CoW buffers; Merge then clones what
  // it mutates. The views pin their state, so no locks are needed.
  DaVinciSketch merged = views[0]->sketch();
  for (size_t s = 1; s < views.size(); ++s) {
    const DaVinciSketch& shard_sketch = views[s]->sketch();
    if (!merged.config().GeometryEquals(shard_sketch.config())) {
      // Mid-Resize transient: this shard still publishes the other
      // geometry. Rebuild a copy into the merge geometry (same seed by
      // construction, so this cannot fail) instead of letting Merge abort.
      DaVinciSketch rebuilt = shard_sketch;
      DAVINCI_CHECK(rebuilt.Resize(merged.config()));
      merged.Merge(rebuilt);
    } else {
      merged.Merge(shard_sketch);
    }
  }
  return merged;
}

DaVinciConfig ConcurrentDaVinci::ShardConfig() const {
  return shards_[0].view.load(std::memory_order_acquire)->sketch().config();
}

bool ConcurrentDaVinci::Resize(const DaVinciConfig& per_shard_config,
                               uint32_t trigger) {
  if (DaVinciConfig::GeometryCompatible(ShardConfig(), per_shard_config) ==
      DaVinciConfig::GeometryRelation::kIncompatible) {
    RecordResizeRejected();
    return false;
  }
  size_t before = MemoryBytes();
  for (Shard& shard : shards_) {
    MutexLock lock(&shard.mutex);
    DAVINCI_CHECK(shard.sketch->Resize(per_shard_config));
    Publish(shard);
  }
  resize_bytes_before_.store(before, std::memory_order_relaxed);
  resize_bytes_after_.store(MemoryBytes(), std::memory_order_relaxed);
  resize_trigger_.store(trigger, std::memory_order_relaxed);
  resizes_applied_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ConcurrentDaVinci::CollectStats(obs::HealthSnapshot* out) const {
  *out = obs::HealthSnapshot{};
  out->shards = 0;  // Accumulate sums the per-shard `shards` of 1 each
  for (const Shard& shard : shards_) {
    obs::HealthSnapshot one;
    {
      MutexLock lock(&shard.mutex);
      shard.sketch->CollectStats(&one);
    }
    // The lock-free read paths never touch the live sketch's counters;
    // fold in the shard's read-side tally.
    one.queries += shard.read_queries.value();
    out->Accumulate(one);
  }
  out->tuning.publish_interval = publish_interval();
  out->resize.applied = resizes_applied_.load(std::memory_order_relaxed);
  out->resize.rejected = resizes_rejected_.load(std::memory_order_relaxed);
  out->resize.bytes_before =
      resize_bytes_before_.load(std::memory_order_relaxed);
  out->resize.bytes_after =
      resize_bytes_after_.load(std::memory_order_relaxed);
  out->resize.last_trigger = resize_trigger_.load(std::memory_order_relaxed);
}

void ConcurrentDaVinci::SaveShards(std::ostream& out) const {
  SaveShards(out, SketchFormat::kFlat);
}

void ConcurrentDaVinci::SaveShards(std::ostream& out,
                                   SketchFormat format) const {
  std::vector<std::shared_ptr<const SketchView>> views = SnapshotAll();
  WritePod(out, static_cast<uint32_t>(views.size()));
  for (const std::shared_ptr<const SketchView>& view : views) {
    view->sketch().Save(out, format);
  }
}

bool ConcurrentDaVinci::ParseShardImage(std::istream& in,
                                        std::vector<DaVinciSketch>* staged,
                                        bool match_live_geometry) const {
  uint32_t count = 0;
  if (!ReadPod(in, &count)) return false;
  if (count != shards_.size()) return false;
  staged->clear();
  staged->reserve(count);
  // The live geometry is read off shard 0's published view: views are
  // never null after construction and one atomic load needs no lock.
  DaVinciConfig live_config;
  if (match_live_geometry) {
    live_config = shards_[0]
                      .view.load(std::memory_order_acquire)
                      ->sketch()
                      .config();
  }
  for (uint32_t s = 0; s < count; ++s) {
    DaVinciSketch loaded(8 * 1024, 0);  // placeholder, overwritten by Load
    if (!DaVinciSketch::Load(in, &loaded)) return false;
    if (match_live_geometry &&
        DaVinciConfig::GeometryCompatible(loaded.config(), live_config) !=
            DaVinciConfig::GeometryRelation::kIdentical) {
      return false;  // Merge into the live shard would abort
    }
    if (!staged->empty() &&
        !staged->front().config().GeometryEquals(loaded.config())) {
      return false;  // cross-shard merge (Snapshot) would abort
    }
    // Routing gate: every frequent-part resident must hash back to its
    // shard, or Snapshot() double-counts and Query() consults the wrong
    // shard. (EF/IFP state is not key-addressable, so FP residency is the
    // strongest check a sketch image supports.)
    for (const FrequentPart::Entry& entry : loaded.frequent_part().Entries()) {
      if (ShardOf(entry.key) != s) return false;
    }
    staged->push_back(std::move(loaded));
  }
  return true;
}

void ConcurrentDaVinci::MergeShardImages(
    std::vector<std::vector<DaVinciSketch>>&& images) {
  for (const std::vector<DaVinciSketch>& image : images) {
    DAVINCI_CHECK_EQ(image.size(), shards_.size());
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(&shard.mutex);
    // Left fold in request order: bit-identical to merging the source
    // engines one by one (wire_format_test pins this equivalence).
    for (std::vector<DaVinciSketch>& image : images) {
      shard.sketch->Merge(image[s]);
    }
    Publish(shard);
  }
}

bool ConcurrentDaVinci::RestoreShards(std::istream& in) {
  // Stage every shard image before touching live state, so a failure at
  // shard k never leaves shards [0, k) restored and the rest stale. No
  // live-geometry gate: a restore may legitimately swap in a differently
  // sized sketch (recovery rebuilds the tenant from the image's own
  // config).
  std::vector<DaVinciSketch> staged;
  if (!ParseShardImage(in, &staged, /*match_live_geometry=*/false)) {
    return false;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    MutexLock lock(&shard.mutex);
    *shard.sketch = std::move(staged[s]);
    Publish(shard);
  }
  return true;
}

void ConcurrentDaVinci::Merge(const ConcurrentDaVinci& other) {
  DAVINCI_CHECK_MSG(this != &other, "self-merge is not supported");
  DAVINCI_CHECK_EQ(shards_.size(), other.shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    MutexLockPair lock(&shards_[s].mutex, &other.shards_[s].mutex);
    shards_[s].sketch->Merge(*other.shards_[s].sketch);
    Publish(shards_[s]);
  }
}

void ConcurrentDaVinci::CheckInvariants(InvariantMode mode) const {
  DAVINCI_CHECK(!shards_.empty());
  // Copy the reference geometry out under shard 0's lock (the annotation
  // pass flagged the old code, which read shard 0's sketch unlocked while
  // holding only the loop shard's mutex).
  DaVinciConfig reference;
  {
    MutexLock lock(&shards_[0].mutex);
    reference = shards_[0].sketch->config();
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    MutexLock lock(&shards_[s].mutex);
    DAVINCI_CHECK_MSG(
        shards_[s].view.load(std::memory_order_acquire) != nullptr,
        "shard " + std::to_string(s) + " has no published view");
    const DaVinciSketch& sketch = *shards_[s].sketch;
    const DaVinciConfig& config = sketch.config();
    DAVINCI_CHECK_EQ(config.seed, reference.seed);
    DAVINCI_CHECK_EQ(config.fp_buckets, reference.fp_buckets);
    DAVINCI_CHECK_EQ(config.fp_slots, reference.fp_slots);
    DAVINCI_CHECK_EQ(config.ef_bytes, reference.ef_bytes);
    DAVINCI_CHECK_EQ(config.ifp_rows, reference.ifp_rows);
    DAVINCI_CHECK_EQ(config.ifp_buckets_per_row,
                     reference.ifp_buckets_per_row);
    sketch.CheckInvariants(mode);
    // Shard-routing conservation: a key resident in shard s's frequent
    // part must hash to s, or Snapshot would double-count it and Query
    // would consult the wrong shard.
    for (const FrequentPart::Entry& entry :
         sketch.frequent_part().Entries()) {
      DAVINCI_CHECK_MSG(ShardOf(entry.key) == s,
                        "key " + std::to_string(entry.key) +
                            " resident in foreign shard " +
                            std::to_string(s));
    }
  }
}

size_t ConcurrentDaVinci::MemoryBytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mutex);
    bytes += shard.sketch->MemoryBytes();
  }
  return bytes;
}

}  // namespace davinci
