#include "core/concurrent_davinci.h"

#include <algorithm>

namespace davinci {

ConcurrentDaVinci::ConcurrentDaVinci(size_t shards, size_t total_bytes,
                                     uint64_t seed)
    : shard_hash_(seed * 31001011 + 13),
      shards_(std::max<size_t>(1, shards)) {
  size_t per_shard = std::max<size_t>(8 * 1024, total_bytes / shards_.size());
  for (Shard& shard : shards_) {
    shard.sketch = std::make_unique<DaVinciSketch>(per_shard, seed);
  }
}

void ConcurrentDaVinci::Insert(uint32_t key, int64_t count) {
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sketch->Insert(key, count);
}

int64_t ConcurrentDaVinci::Query(uint32_t key) const {
  const Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sketch->Query(key);
}

double ConcurrentDaVinci::EstimateCardinality() const {
  // Shards partition the key space, so cardinalities add.
  double total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.sketch->EstimateCardinality();
  }
  return total;
}

DaVinciSketch ConcurrentDaVinci::Snapshot() const {
  std::lock_guard<std::mutex> first_lock(shards_[0].mutex);
  DaVinciSketch merged = *shards_[0].sketch;
  for (size_t s = 1; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    merged.Merge(*shards_[s].sketch);
  }
  return merged;
}

size_t ConcurrentDaVinci::MemoryBytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    bytes += shard.sketch->MemoryBytes();
  }
  return bytes;
}

}  // namespace davinci
