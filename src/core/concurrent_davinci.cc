#include "core/concurrent_davinci.h"

#include <algorithm>

namespace davinci {

ConcurrentDaVinci::ConcurrentDaVinci(size_t shards, size_t total_bytes,
                                     uint64_t seed)
    : shard_hash_(seed * 31001011 + 13),
      shards_(std::max<size_t>(1, shards)) {
  size_t per_shard = std::max<size_t>(8 * 1024, total_bytes / shards_.size());
  for (Shard& shard : shards_) {
    shard.sketch = std::make_unique<DaVinciSketch>(per_shard, seed);
  }
}

void ConcurrentDaVinci::Insert(uint32_t key, int64_t count) {
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.sketch->Insert(key, count);
}

void ConcurrentDaVinci::InsertBatch(std::span<const uint32_t> keys,
                                    std::span<const int64_t> counts) {
  // Partition each block by shard into scratch buffers, then drain every
  // non-empty shard group under a single lock acquisition. Blocks bound the
  // scratch memory and the time any one lock is held.
  constexpr size_t kBlock = 16 * DaVinciSketch::kInsertBlock;
  std::vector<std::vector<uint32_t>> shard_keys(shards_.size());
  std::vector<std::vector<int64_t>> shard_counts(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_keys[s].reserve(kBlock);
    shard_counts[s].reserve(kBlock);
  }
  for (size_t start = 0; start < keys.size(); start += kBlock) {
    size_t len = std::min(kBlock, keys.size() - start);
    for (size_t i = 0; i < len; ++i) {
      size_t s = ShardOf(keys[start + i]);
      shard_keys[s].push_back(keys[start + i]);
      shard_counts[s].push_back(counts[start + i]);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shard_keys[s].empty()) continue;
      {
        std::lock_guard<std::mutex> lock(shards_[s].mutex);
        shards_[s].sketch->InsertBatch(shard_keys[s], shard_counts[s]);
      }
      shard_keys[s].clear();
      shard_counts[s].clear();
    }
  }
}

void ConcurrentDaVinci::InsertBatch(std::span<const uint32_t> keys) {
  if (keys.empty()) return;
  std::vector<int64_t> ones(std::min<size_t>(keys.size(), size_t{4096}), 1);
  for (size_t start = 0; start < keys.size(); start += ones.size()) {
    size_t len = std::min(ones.size(), keys.size() - start);
    InsertBatch(keys.subspan(start, len),
                std::span<const int64_t>(ones.data(), len));
  }
}

int64_t ConcurrentDaVinci::Query(uint32_t key) const {
  const Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sketch->Query(key);
}

std::vector<int64_t> ConcurrentDaVinci::QueryBatch(
    std::span<const uint32_t> keys) const {
  std::vector<int64_t> out(keys.size());
  // Same block structure as InsertBatch, with a parallel position vector so
  // the per-shard answers scatter back to the caller's order.
  constexpr size_t kBlock = 16 * DaVinciSketch::kInsertBlock;
  std::vector<std::vector<uint32_t>> shard_keys(shards_.size());
  std::vector<std::vector<size_t>> shard_pos(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_keys[s].reserve(kBlock);
    shard_pos[s].reserve(kBlock);
  }
  std::vector<int64_t> answers;
  answers.reserve(kBlock);
  for (size_t start = 0; start < keys.size(); start += kBlock) {
    size_t len = std::min(kBlock, keys.size() - start);
    for (size_t i = 0; i < len; ++i) {
      size_t s = ShardOf(keys[start + i]);
      shard_keys[s].push_back(keys[start + i]);
      shard_pos[s].push_back(start + i);
    }
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (shard_keys[s].empty()) continue;
      {
        std::lock_guard<std::mutex> lock(shards_[s].mutex);
        answers = shards_[s].sketch->QueryBatch(shard_keys[s]);
      }
      for (size_t i = 0; i < answers.size(); ++i) {
        out[shard_pos[s][i]] = answers[i];
      }
      shard_keys[s].clear();
      shard_pos[s].clear();
    }
  }
  return out;
}

double ConcurrentDaVinci::EstimateCardinality() const {
  // Shards partition the key space, so cardinalities add.
  double total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.sketch->EstimateCardinality();
  }
  return total;
}

DaVinciSketch ConcurrentDaVinci::Snapshot() const {
  std::lock_guard<std::mutex> first_lock(shards_[0].mutex);
  DaVinciSketch merged = *shards_[0].sketch;
  for (size_t s = 1; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    merged.Merge(*shards_[s].sketch);
  }
  return merged;
}

void ConcurrentDaVinci::CollectStats(obs::HealthSnapshot* out) const {
  *out = obs::HealthSnapshot{};
  out->shards = 0;  // Accumulate sums the per-shard `shards` of 1 each
  for (const Shard& shard : shards_) {
    obs::HealthSnapshot one;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.sketch->CollectStats(&one);
    }
    out->Accumulate(one);
  }
}

void ConcurrentDaVinci::Merge(const ConcurrentDaVinci& other) {
  DAVINCI_CHECK_MSG(this != &other, "self-merge is not supported");
  DAVINCI_CHECK_EQ(shards_.size(), other.shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::scoped_lock lock(shards_[s].mutex, other.shards_[s].mutex);
    shards_[s].sketch->Merge(*other.shards_[s].sketch);
  }
}

void ConcurrentDaVinci::CheckInvariants(InvariantMode mode) const {
  DAVINCI_CHECK(!shards_.empty());
  const DaVinciConfig& reference = shards_[0].sketch->config();
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    const DaVinciSketch& sketch = *shards_[s].sketch;
    const DaVinciConfig& config = sketch.config();
    DAVINCI_CHECK_EQ(config.seed, reference.seed);
    DAVINCI_CHECK_EQ(config.fp_buckets, reference.fp_buckets);
    DAVINCI_CHECK_EQ(config.fp_slots, reference.fp_slots);
    DAVINCI_CHECK_EQ(config.ef_bytes, reference.ef_bytes);
    DAVINCI_CHECK_EQ(config.ifp_rows, reference.ifp_rows);
    DAVINCI_CHECK_EQ(config.ifp_buckets_per_row,
                     reference.ifp_buckets_per_row);
    sketch.CheckInvariants(mode);
    // Shard-routing conservation: a key resident in shard s's frequent
    // part must hash to s, or Snapshot would double-count it and Query
    // would consult the wrong shard.
    for (const FrequentPart::Entry& entry :
         sketch.frequent_part().Entries()) {
      DAVINCI_CHECK_MSG(ShardOf(entry.key) == s,
                        "key " + std::to_string(entry.key) +
                            " resident in foreign shard " +
                            std::to_string(s));
    }
  }
}

size_t ConcurrentDaVinci::MemoryBytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    bytes += shard.sketch->MemoryBytes();
  }
  return bytes;
}

}  // namespace davinci
