#include "core/key_adapter.h"

#include <cstdio>

#include "common/hash.h"

namespace davinci {

StringKeyDaVinci::StringKeyDaVinci(const DaVinciConfig& config)
    : sketch_(config),
      fingerprint_seed_(static_cast<uint32_t>(config.seed * 27000817 + 3)) {}

StringKeyDaVinci::StringKeyDaVinci(size_t bytes, uint64_t seed)
    : StringKeyDaVinci(DaVinciConfig::FromMemory(bytes, seed)) {}

uint32_t StringKeyDaVinci::Fingerprint(std::string_view key) const {
  uint32_t fp = BobHash(key.data(), key.size(), fingerprint_seed_);
  // 0 is the sketch's empty-slot sentinel; remap it.
  return fp == 0 ? 1u : fp;
}

void StringKeyDaVinci::Learn(uint32_t fingerprint, std::string_view key) {
  reverse_.emplace(fingerprint, std::string(key));
}

void StringKeyDaVinci::Insert(std::string_view key, int64_t count) {
  uint32_t fp = Fingerprint(key);
  Learn(fp, key);
  sketch_.Insert(fp, count);
}

int64_t StringKeyDaVinci::Query(std::string_view key) const {
  return sketch_.Query(Fingerprint(key));
}

std::vector<std::pair<std::string, int64_t>> StringKeyDaVinci::HeavyHitters(
    int64_t threshold) const {
  std::vector<std::pair<std::string, int64_t>> out;
  for (const auto& [fp, count] : sketch_.HeavyHitters(threshold)) {
    auto it = reverse_.find(fp);
    if (it != reverse_.end()) {
      out.emplace_back(it->second, count);
    } else {
      char placeholder[16];
      std::snprintf(placeholder, sizeof(placeholder), "<%08x>", fp);
      out.emplace_back(placeholder, count);
    }
  }
  return out;
}

void StringKeyDaVinci::Merge(const StringKeyDaVinci& other) {
  sketch_.Merge(other.sketch_);
  reverse_.insert(other.reverse_.begin(), other.reverse_.end());
}

void StringKeyDaVinci::Subtract(const StringKeyDaVinci& other) {
  sketch_.Subtract(other.sketch_);
  reverse_.insert(other.reverse_.begin(), other.reverse_.end());
}

}  // namespace davinci
