#ifndef DAVINCI_CORE_CONFIG_H_
#define DAVINCI_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

// Configuration and sizing of a DaVinci Sketch.

namespace davinci {

struct DaVinciConfig {
  // --- Frequent part (FP) ---
  size_t fp_buckets = 1024;  // k
  size_t fp_slots = 7;       // c entries per bucket (paper's tested value)
  int64_t evict_lambda = 8;  // λ in Algorithm 1

  // --- Element filter (EF) ---
  std::vector<int> ef_level_bits = {8, 16};  // m = 2 tower levels
  size_t ef_bytes = 64 * 1024;
  int64_t promotion_threshold = 16;  // T: estimate above T promotes to IFP

  // --- Infrequent part (IFP) ---
  size_t ifp_rows = 3;  // d
  size_t ifp_buckets_per_row = 1024;  // w
  bool use_sign_hash = true;           // ζ_i on (unbiased fast queries)
  bool decode_cross_validation = true;  // EF check inside canDecode

  // Worker threads for the IFP peeling decode (cardinality / distribution /
  // entropy / difference queries). Runtime-only tuning — deliberately NOT
  // serialized (two hosts may decode the same sketch with different
  // parallelism; the decoded map is bit-identical either way, see
  // InfrequentPart::Decode). 1 = today's sequential behavior.
  size_t decode_threads = 1;

  // --- Query-path tuning (runtime-only, never serialized; the answers are
  // identical for every setting — these move only the clock). All four are
  // surfaced in HealthSnapshot and the bench JSONs so a tuned deployment is
  // reproducible; Validate() pins their legal ranges. ---

  // Batches shorter than this skip the batched pipeline and run the plain
  // per-key query loop: below the threshold the pipeline's hash staging and
  // prefetch issue cost more than the misses they hide.
  size_t batch_query_min_keys = 32;
  // Chunk width of the batched query pipeline: base hashes are staged for
  // one chunk at a time (bounds the stack scratch — max 2048 — and keeps
  // the staged hashes L1-resident while the probe pass consumes them).
  size_t batch_query_block = 1024;
  // How many keys ahead of the probe cursor the FP bucket lines are
  // read-prefetched. 0 disables prefetch — the right setting when the
  // frequent part fits in cache and speculative loads only burn bandwidth.
  size_t batch_prefetch_distance = 16;
  // Decode sharding granularity: a purity-scan round splits across a
  // second (or further) worker only while every worker keeps at least this
  // many active buckets. Below the threshold the round runs sequentially —
  // the fork/join latency exceeds the scan it would parallelize.
  size_t decode_min_buckets_per_worker = 4096;

  uint64_t seed = 1;

  // Aborts (DAVINCI_CHECK) on an out-of-range tuning knob. Called by the
  // DaVinciSketch constructor, so a sketch can only exist over a sane
  // config. Bounds, not equalities: every value inside them answers
  // queries identically.
  void Validate() const;

  // Non-aborting geometry check for DESERIALIZED configs: every count is
  // in a range an honestly-built sketch can reach, and the total footprint
  // (computed overflow-safe) stays under kMaxLoadedBytes — so Load rejects
  // a corrupted or hostile prefix instead of aborting the process or
  // attempting a multi-terabyte allocation. In-process construction keeps
  // using the aborting Validate(): a bad config there is a programming
  // error, not input.
  bool Valid() const;

  // Footprint ceiling Valid() enforces (2 GiB of design state — far above
  // any evaluated sketch, far below an allocation-of-death).
  static constexpr uint64_t kMaxLoadedBytes = uint64_t{1} << 31;

  // Memory accounting constants (bytes of design state):
  //   FP bucket: c·(4B key + 4B count + taint bit) + 4B ecnt + 1B flag
  //   IFP bucket: 5B id (33-bit mod-p value) + 4B signed count
  static constexpr size_t kFpSlotBytes = 8;
  static constexpr size_t kFpBucketOverheadBytes = 6;
  static constexpr size_t kIfpBucketBytes = 9;

  size_t FpBytes() const {
    return fp_buckets * (fp_slots * kFpSlotBytes + kFpBucketOverheadBytes);
  }
  size_t IfpBytes() const {
    return ifp_rows * ifp_buckets_per_row * kIfpBucketBytes;
  }
  size_t TotalBytes() const { return FpBytes() + ef_bytes + IfpBytes(); }

  // Splits a byte budget 25% FP / 50% EF / 25% IFP (the default used by
  // all benches; the ablation bench sweeps the split).
  static DaVinciConfig FromMemory(size_t total_bytes, uint64_t seed);

  // Same, with explicit part fractions (must sum to <= 1).
  static DaVinciConfig FromMemorySplit(size_t total_bytes, double fp_fraction,
                                       double ef_fraction, uint64_t seed);

  // Binary round-trip (used by DaVinciSketch::Save/Load).
  void Save(std::ostream& out) const;
  static bool Load(std::istream& in, DaVinciConfig* config);

  // Continuation of Load for a caller that already consumed the leading
  // u64 (fp_buckets) while sniffing the stream for the DVSZ magic word.
  // The magic|version pair can never be a valid fp_buckets (Valid() caps
  // it at 2^24), so DaVinciSketch::Load branches on that first word and
  // hands the flat case here — no seeking, so non-seekable streams work.
  static bool LoadTail(uint64_t fp_buckets, std::istream& in,
                       DaVinciConfig* config);

  // True when two sketches built from these configs are linear-compatible
  // (Merge/Subtract/HeavyChangers/InnerProduct are sound): identical seed
  // and identical serialized geometry. Runtime-only tuning knobs
  // (decode/batch/prefetch) are deliberately ignored — they never change
  // answers. The server's cross-tenant query gates call this instead of
  // letting a mismatched Merge abort the process.
  bool GeometryEquals(const DaVinciConfig& other) const;

  // How two geometries relate — the single admission gate shared by
  // resize, merge/import, and delta-apply instead of scattered ad-hoc
  // GeometryEquals call sites.
  enum class GeometryRelation {
    // Same seed, same serialized geometry: linear ops (Merge / Subtract /
    // InnerProduct / ApplyDelta / ImportMerge) are sound, and a Resize is
    // a digest-preserving no-op.
    kIdentical,
    // Same seed (hash family continuity), both geometries Valid(), but
    // shapes differ: linear ops are NOT sound; the only legal migration
    // is the rebuild/replay path (DaVinciSketch::Resize), with the §12
    // accuracy contract.
    kResizable,
    // Different seed or an invalid geometry: no migration path at all.
    kIncompatible,
  };
  static GeometryRelation GeometryCompatible(const DaVinciConfig& from,
                                             const DaVinciConfig& to);
};

}  // namespace davinci

#endif  // DAVINCI_CORE_CONFIG_H_
