#include "core/config.h"

#include <algorithm>

#include "common/check.h"
#include "common/serialize.h"

namespace davinci {

void DaVinciConfig::Validate() const {
  DAVINCI_CHECK_MSG(decode_threads >= 1 && decode_threads <= 64,
                    "decode_threads must be in [1, 64]");
  DAVINCI_CHECK_MSG(batch_query_min_keys >= 1,
                    "batch_query_min_keys must be >= 1");
  DAVINCI_CHECK_MSG(
      batch_query_block >= 64 && batch_query_block <= 2048,
      "batch_query_block must be in [64, 2048]");
  DAVINCI_CHECK_MSG(batch_prefetch_distance < batch_query_block,
                    "batch_prefetch_distance must be < batch_query_block");
  DAVINCI_CHECK_MSG(decode_min_buckets_per_worker >= 1,
                    "decode_min_buckets_per_worker must be >= 1");
}

bool DaVinciConfig::Valid() const {
  if (fp_buckets < 1 || fp_buckets > (uint64_t{1} << 24)) return false;
  if (fp_slots < 1 || fp_slots > 64) return false;
  if (evict_lambda < 1 || evict_lambda > (int64_t{1} << 20)) return false;
  if (ef_level_bits.empty() || ef_level_bits.size() > 8) return false;
  for (int bits : ef_level_bits) {
    if (bits < 1 || bits > 64) return false;
  }
  if (ef_bytes < 64 || ef_bytes > kMaxLoadedBytes) return false;
  if (promotion_threshold < 1 || promotion_threshold > kMaxLoadedCount) {
    return false;
  }
  if (ifp_rows < 1 || ifp_rows > 16) return false;
  if (ifp_buckets_per_row < 1 || ifp_buckets_per_row > (uint64_t{1} << 24)) {
    return false;
  }
  // With the per-field caps above, each term fits comfortably in 64 bits
  // (2^24 buckets × ≤ 518 B < 2^34), so this sum cannot overflow.
  uint64_t total = static_cast<uint64_t>(FpBytes()) + ef_bytes +
                   static_cast<uint64_t>(IfpBytes());
  return total <= kMaxLoadedBytes;
}

DaVinciConfig DaVinciConfig::FromMemory(size_t total_bytes, uint64_t seed) {
  return FromMemorySplit(total_bytes, 0.25, 0.50, seed);
}

DaVinciConfig DaVinciConfig::FromMemorySplit(size_t total_bytes,
                                             double fp_fraction,
                                             double ef_fraction,
                                             uint64_t seed) {
  DaVinciConfig config;
  config.seed = seed;

  size_t fp_bytes =
      static_cast<size_t>(static_cast<double>(total_bytes) * fp_fraction);
  size_t ef_bytes =
      static_cast<size_t>(static_cast<double>(total_bytes) * ef_fraction);
  size_t ifp_bytes = total_bytes - fp_bytes - ef_bytes;

  size_t bucket_bytes =
      config.fp_slots * kFpSlotBytes + kFpBucketOverheadBytes;
  config.fp_buckets = std::max<size_t>(1, fp_bytes / bucket_bytes);
  config.ef_bytes = std::max<size_t>(64, ef_bytes);
  config.ifp_buckets_per_row = std::max<size_t>(
      4, ifp_bytes / kIfpBucketBytes / config.ifp_rows);
  return config;
}

void DaVinciConfig::Save(std::ostream& out) const {
  WritePod(out, static_cast<uint64_t>(fp_buckets));
  WritePod(out, static_cast<uint64_t>(fp_slots));
  WritePod(out, evict_lambda);
  WriteVec(out, ef_level_bits);
  WritePod(out, static_cast<uint64_t>(ef_bytes));
  WritePod(out, promotion_threshold);
  WritePod(out, static_cast<uint64_t>(ifp_rows));
  WritePod(out, static_cast<uint64_t>(ifp_buckets_per_row));
  WritePod(out, static_cast<uint8_t>(use_sign_hash ? 1 : 0));
  WritePod(out, static_cast<uint8_t>(decode_cross_validation ? 1 : 0));
  WritePod(out, seed);
}

bool DaVinciConfig::GeometryEquals(const DaVinciConfig& other) const {
  return seed == other.seed && fp_buckets == other.fp_buckets &&
         fp_slots == other.fp_slots && evict_lambda == other.evict_lambda &&
         ef_level_bits == other.ef_level_bits && ef_bytes == other.ef_bytes &&
         promotion_threshold == other.promotion_threshold &&
         ifp_rows == other.ifp_rows &&
         ifp_buckets_per_row == other.ifp_buckets_per_row &&
         use_sign_hash == other.use_sign_hash &&
         decode_cross_validation == other.decode_cross_validation;
}

DaVinciConfig::GeometryRelation DaVinciConfig::GeometryCompatible(
    const DaVinciConfig& from, const DaVinciConfig& to) {
  if (!from.Valid() || !to.Valid()) return GeometryRelation::kIncompatible;
  if (from.GeometryEquals(to)) return GeometryRelation::kIdentical;
  // The rebuild/replay path re-inserts surviving flows through the new
  // sketch's hash pipeline; a shared seed keeps the hash family (and the
  // EF cross-validation it feeds) continuous across the migration.
  if (from.seed != to.seed) return GeometryRelation::kIncompatible;
  return GeometryRelation::kResizable;
}

bool DaVinciConfig::Load(std::istream& in, DaVinciConfig* config) {
  uint64_t fp_buckets = 0;
  if (!ReadPod(in, &fp_buckets)) return false;
  return LoadTail(fp_buckets, in, config);
}

bool DaVinciConfig::LoadTail(uint64_t fp_buckets, std::istream& in,
                             DaVinciConfig* config) {
  uint64_t fp_slots = 0, ef_bytes = 0, ifp_rows = 0, ifp_buckets = 0;
  uint8_t signs = 0, validate = 0;
  if (!ReadPod(in, &fp_slots) ||
      !ReadPod(in, &config->evict_lambda) ||
      !ReadVec(in, &config->ef_level_bits) || !ReadPod(in, &ef_bytes) ||
      !ReadPod(in, &config->promotion_threshold) || !ReadPod(in, &ifp_rows) ||
      !ReadPod(in, &ifp_buckets) || !ReadPod(in, &signs) ||
      !ReadPod(in, &validate) || !ReadPod(in, &config->seed)) {
    return false;
  }
  config->fp_buckets = fp_buckets;
  config->fp_slots = fp_slots;
  config->ef_bytes = ef_bytes;
  config->ifp_rows = ifp_rows;
  config->ifp_buckets_per_row = ifp_buckets;
  config->use_sign_hash = signs != 0;
  config->decode_cross_validation = validate != 0;
  // Geometry gate: everything below came from the (possibly hostile)
  // stream; the caller is about to size allocations from it.
  return config->Valid();
}

}  // namespace davinci
