#include "core/davinci_sketch.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "common/serialize.h"

#include "estimators/em_distribution.h"
#include "estimators/entropy.h"
#include "estimators/linear_counting.h"

namespace davinci {

DaVinciSketch::DaVinciSketch(const DaVinciConfig& config)
    : config_(config),
      fp_(config.fp_buckets, config.fp_slots, config.evict_lambda,
          config.seed),
      ef_(config.ef_bytes, config.ef_level_bits, config.promotion_threshold,
          config.seed),
      ifp_(config.ifp_rows, config.ifp_buckets_per_row, config.use_sign_hash,
           config.seed) {
  config_.Validate();
}

DaVinciSketch::DaVinciSketch(size_t bytes, uint64_t seed)
    : DaVinciSketch(DaVinciConfig::FromMemory(bytes, seed)) {}

// Memberwise except decode_cache_, which stays cold: the cache is the one
// member a shared SketchView still writes (under its once-cell) after
// publication, so reading other.decode_cache_ here would race that lazy
// decode (davinci_sketch.h documents the contract).
DaVinciSketch::DaVinciSketch(const DaVinciSketch& other)
    : config_(other.config_),
      fp_(other.fp_),
      ef_(other.ef_),
      ifp_(other.ifp_),
      inserts_(other.inserts_),
      queries_(other.queries_) {}

DaVinciSketch& DaVinciSketch::operator=(const DaVinciSketch& other) {
  if (this == &other) return *this;
  config_ = other.config_;
  fp_ = other.fp_;
  ef_ = other.ef_;
  ifp_ = other.ifp_;
  decode_cache_.reset();
  inserts_ = other.inserts_;
  queries_ = other.queries_;
  return *this;
}

size_t DaVinciSketch::MemoryBytes() const {
  return fp_.MemoryBytes() + ef_.MemoryBytes() + ifp_.MemoryBytes();
}

uint64_t DaVinciSketch::MemoryAccesses() const {
  return fp_.memory_accesses() + ef_.memory_accesses() +
         ifp_.memory_accesses();
}

void DaVinciSketch::RouteToFilter(uint32_t key, int64_t count) {
  RouteToFilterWithHash(key, HashFamily::BaseHash(key), count);
}

void DaVinciSketch::RouteToFilterWithHash(uint32_t key, uint64_t base_hash,
                                          int64_t count) {
  int64_t overflow = ef_.InsertSignedWithHash(base_hash, count);
  if (overflow != 0) {
    ifp_.InsertWithHash(key, base_hash, overflow);
  }
}

void DaVinciSketch::Insert(uint32_t key, int64_t count) {
  InvalidateDecodeCache();
  inserts_.Inc();
  uint64_t base_hash = HashFamily::BaseHash(key);
  FrequentPart::InsertResult result = fp_.InsertWithHash(key, base_hash, count);
  if (result.action != FrequentPart::InsertResult::Action::kAbsorbed) {
    // An eviction overflows the resident minimum, not the inserted key, so
    // its base hash must be derived afresh in that (rare) case.
    uint64_t overflow_hash = result.overflow_key == key
                                 ? base_hash
                                 : HashFamily::BaseHash(result.overflow_key);
    RouteToFilterWithHash(result.overflow_key, overflow_hash,
                          result.overflow_count);
  }
}

void DaVinciSketch::InsertBatch(std::span<const uint32_t> keys,
                                std::span<const int64_t> counts) {
  DAVINCI_DCHECK_EQ(keys.size(), counts.size());
  if (keys.empty()) return;
  InvalidateDecodeCache();
  inserts_.Inc(keys.size());

  // Double-buffered stage A state: while block k is applied (stages B/C),
  // block k+1's base hashes are already computed and its FP bucket lines
  // are in flight — the one-block-ahead prefetch invariant.
  uint64_t hash_buf[2][kInsertBlock];
  struct Overflow {
    uint32_t key;
    int64_t count;
    uint64_t base_hash;
  };
  Overflow overflow[kInsertBlock];

  const size_t n = keys.size();
  auto stage_a = [&](size_t start, uint64_t* hashes) {
    size_t len = std::min(kInsertBlock, n - start);
    for (size_t i = 0; i < len; ++i) {
      hashes[i] = HashFamily::BaseHash(keys[start + i]);
      fp_.PrefetchBucket(hashes[i]);
    }
  };

  stage_a(0, hash_buf[0]);
  for (size_t start = 0, parity = 0; start < n;
       start += kInsertBlock, parity ^= 1) {
    if (start + kInsertBlock < n) {
      stage_a(start + kInsertBlock, hash_buf[parity ^ 1]);
    }
    const uint64_t* hashes = hash_buf[parity];
    size_t len = std::min(kInsertBlock, n - start);

    // Stage B: FP inserts. Overflow (rejected newcomers and evicted
    // residents) is buffered instead of routed immediately; the FP and the
    // filter never read each other's state, so deferring the EF/IFP work to
    // the end of the block leaves every part bit-identical to the
    // one-key-at-a-time order.
    size_t num_overflow = 0;
    for (size_t i = 0; i < len; ++i) {
      uint32_t key = keys[start + i];
      FrequentPart::InsertResult result =
          fp_.InsertWithHash(key, hashes[i], counts[start + i]);
      if (result.action != FrequentPart::InsertResult::Action::kAbsorbed) {
        uint64_t overflow_hash =
            result.overflow_key == key
                ? hashes[i]
                : HashFamily::BaseHash(result.overflow_key);
        // Start the EF miss as soon as the overflow is known — the rest of
        // the block's FP work runs while the filter counters travel up the
        // cache hierarchy.
        ef_.Prefetch(overflow_hash);
        overflow[num_overflow++] = {result.overflow_key,
                                    result.overflow_count, overflow_hash};
      }
    }

    // Stage C: apply the buffered overflow through EF and (on filter
    // overflow) IFP. The EF counters were prefetched at discovery time in
    // stage B; the IFP (iID, icnt) cells are NOT prefetched — only the
    // small filter-crossing fraction of overflow keys reaches the IFP, and
    // measurements showed the 2·d speculative lines per key cost more in
    // memory bandwidth than the avoided demand misses returned.
    for (size_t i = 0; i < num_overflow; ++i) {
      RouteToFilterWithHash(overflow[i].key, overflow[i].base_hash,
                            overflow[i].count);
    }
  }
}

void DaVinciSketch::InsertBatch(std::span<const uint32_t> keys) {
  // A stack chunk of ones feeds the two-span pipeline in pieces large
  // enough (many blocks) that the one-block-ahead prefetch stays engaged.
  constexpr size_t kOnesChunk = 64 * kInsertBlock;
  int64_t ones[kOnesChunk];
  std::fill(std::begin(ones), std::end(ones), int64_t{1});
  for (size_t start = 0; start < keys.size(); start += kOnesChunk) {
    size_t len = std::min(kOnesChunk, keys.size() - start);
    InsertBatch(keys.subspan(start, len), std::span<const int64_t>(ones, len));
  }
}

const std::unordered_map<uint32_t, int64_t>& DaVinciSketch::DecodedFlows()
    const {
  if (decode_cache_ == nullptr) {
    InfrequentPart::DecodeOptions options;
    options.num_threads = config_.decode_threads;
    options.min_buckets_per_worker = config_.decode_min_buckets_per_worker;
    decode_cache_ = std::make_shared<const std::unordered_map<uint32_t, int64_t>>(
        ifp_.Decode(config_.decode_cross_validation ? &ef_ : nullptr,
                    options));
  }
  return *decode_cache_;
}

int64_t DaVinciSketch::ResolveQuery(uint32_t key, uint64_t base_hash,
                                    int64_t fp_count, bool tainted) const {
  if (fp_count != 0 && !tainted) {
    return fp_count;  // exact: the flow never left the frequent part
  }

  int64_t ef_estimate = ef_.QuerySignedWithHash(base_hash);
  const auto& decoded = DecodedFlows();
  auto it = decoded.find(key);
  if (it != decoded.end()) {
    // Exact IFP share + the (≈T) share retained by the element filter.
    return fp_count + it->second + ef_estimate;
  }
  if (std::llabs(ef_estimate) >= config_.promotion_threshold) {
    // The flow crossed the filter but did not decode: fall back to the
    // unbiased count-sketch-style fast query of the infrequent part.
    return fp_count + ifp_.FastQueryWithBase(base_hash) + ef_estimate;
  }
  return fp_count + ef_estimate;
}

int64_t DaVinciSketch::Query(uint32_t key) const {
  queries_.Inc();
  uint64_t base_hash = HashFamily::BaseHash(key);
  bool tainted = false;
  int64_t fp_count = fp_.QueryWithBase(base_hash, key, &tainted);
  return ResolveQuery(key, base_hash, fp_count, tainted);
}

std::vector<int64_t> DaVinciSketch::QueryBatch(
    std::span<const uint32_t> keys) const {
  std::vector<int64_t> out(keys.size());
  if (keys.empty()) return out;
  queries_.Inc(keys.size());
  const size_t n = keys.size();

  // Adaptive fallthrough: below the threshold the staged pipeline's hash
  // buffering and prefetch issue cost more than the misses they hide, so
  // short batches run the plain per-key tail (same answers — the pipeline
  // only reorders reads).
  if (n < config_.batch_query_min_keys) {
    for (size_t i = 0; i < n; ++i) {
      uint64_t base_hash = HashFamily::BaseHash(keys[i]);
      bool tainted = false;
      int64_t fp_count = fp_.QueryWithBase(base_hash, keys[i], &tainted);
      out[i] = ResolveQuery(keys[i], base_hash, fp_count, tainted);
    }
    return out;
  }

  // Materialize the decode cache before the pipeline starts so no chunk
  // stalls on a full peel mid-flight.
  (void)DecodedFlows();

  // Chunked two-pass pipeline. Pass 1 stages a chunk's base hashes in one
  // tight loop (one multiply-mix per key, no interleaved bucket work);
  // pass 2 probes with the staged hashes, read-prefetching the FP bucket
  // lanes a fixed key distance ahead of the probe cursor. Keys the FP does
  // not settle are buffered and resolved at chunk end, their EF counters
  // prefetched the moment the probe misses — the rest of the chunk's FP
  // work hides the filter fetch.
  constexpr size_t kMaxQueryBlock = 2048;  // DaVinciConfig::Validate() cap
  const size_t block = std::min(config_.batch_query_block, kMaxQueryBlock);
  const size_t dist = std::min(config_.batch_prefetch_distance, block - 1);
  uint64_t hashes[kMaxQueryBlock];
  struct PendingKey {
    size_t index;
    uint64_t base_hash;
    int64_t fp_count;
  };
  PendingKey pending[kMaxQueryBlock];

  for (size_t start = 0; start < n; start += block) {
    const size_t len = std::min(block, n - start);
    for (size_t i = 0; i < len; ++i) {
      hashes[i] = HashFamily::BaseHash(keys[start + i]);
    }
    // Warm the first `dist` buckets so the probe loop's steady-state
    // prefetch distance holds from its first iteration.
    for (size_t i = 0; i < std::min(dist, len); ++i) {
      fp_.PrefetchBucketRead(hashes[i]);
    }

    size_t num_pending = 0;
    if (dist > 0) {
      for (size_t i = 0; i < len; ++i) {
        if (i + dist < len) fp_.PrefetchBucketRead(hashes[i + dist]);
        bool tainted = false;
        int64_t fp_count =
            fp_.QueryWithBase(hashes[i], keys[start + i], &tainted);
        if (fp_count != 0 && !tainted) {
          out[start + i] = fp_count;
          continue;
        }
        ef_.Prefetch(hashes[i]);
        pending[num_pending++] = {start + i, hashes[i], fp_count};
      }
    } else {
      // Prefetch disabled (FP resident in cache): the probe loop runs with
      // zero speculative loads.
      for (size_t i = 0; i < len; ++i) {
        bool tainted = false;
        int64_t fp_count =
            fp_.QueryWithBase(hashes[i], keys[start + i], &tainted);
        if (fp_count != 0 && !tainted) {
          out[start + i] = fp_count;
          continue;
        }
        pending[num_pending++] = {start + i, hashes[i], fp_count};
      }
    }

    // Resolve the pending keys through EF / decoded map / IFP.
    for (size_t i = 0; i < num_pending; ++i) {
      const PendingKey& p = pending[i];
      out[p.index] =
          ResolveQuery(keys[p.index], p.base_hash, p.fp_count,
                       /*tainted=*/true);
    }
  }
  return out;
}

std::vector<std::pair<uint32_t, int64_t>> DaVinciSketch::HeavyHitters(
    int64_t threshold) const {
  const std::vector<FrequentPart::Entry> entries = fp_.Entries();
  const auto& decoded = DecodedFlows();
  // Every candidate comes from the FP entries or the decoded map, so sizing
  // both containers up front avoids any rehash/regrow churn below.
  std::vector<std::pair<uint32_t, int64_t>> out;
  out.reserve(entries.size());
  std::unordered_set<uint32_t> reported;
  reported.reserve(entries.size() + decoded.size());
  for (const FrequentPart::Entry& entry : entries) {
    // The entry IS the FP probe result — resolve the EF/IFP shares
    // directly instead of re-hashing and re-probing the bucket per
    // candidate.
    int64_t est = ResolveQuery(entry.key, HashFamily::BaseHash(entry.key),
                               entry.count, entry.tainted);
    if (est > threshold && reported.insert(entry.key).second) {
      out.emplace_back(entry.key, est);
    }
  }
  // Medium flows that stayed out of the FP can still cross the threshold.
  for (const auto& [key, count] : decoded) {
    (void)count;
    if (reported.count(key)) continue;
    int64_t est = Query(key);
    if (est > threshold && reported.insert(key).second) {
      out.emplace_back(key, est);
    }
  }
  return out;
}

double DaVinciSketch::EstimateCardinality() const {
  // Everything that ever left the FP passed through the element filter, so
  // linear counting over the filter's bottom level counts all non-resident
  // flows. Untainted residents never touched the filter and are added
  // exactly; tainted residents are assumed already counted by the filter.
  double card =
      LinearCountingEstimate(ef_.BottomWidth(), ef_.BottomZeroSlots());
  for (const FrequentPart::Entry& entry : fp_.Entries()) {
    if (!entry.tainted) card += 1.0;
  }
  return card;
}

std::map<int64_t, int64_t> DaVinciSketch::Distribution() const {
  std::map<int64_t, int64_t> histogram;

  // Exact sizes: FP residents and decoded medium flows. The entry already
  // carries the FP probe result, so only the EF/IFP shares are resolved.
  std::unordered_set<uint32_t> known;
  for (const FrequentPart::Entry& entry : fp_.Entries()) {
    ++histogram[std::llabs(ResolveQuery(entry.key,
                                        HashFamily::BaseHash(entry.key),
                                        entry.count, entry.tainted))];
    known.insert(entry.key);
  }
  for (const auto& [key, count] : DecodedFlows()) {
    (void)count;
    if (known.insert(key).second) {
      ++histogram[std::llabs(Query(key))];
    }
  }

  // Small flows: EM over the filter's bottom level, with the ≈T residue of
  // the known tainted flows removed so they are not double counted
  // (untainted FP residents never touched the filter).
  std::vector<int64_t> bottom = ef_.BottomValues();
  for (const FrequentPart::Entry& entry : fp_.Entries()) {
    if (!entry.tainted) continue;
    int64_t& c = bottom[ef_.BottomIndex(entry.key)];
    c -= std::min<int64_t>(c, config_.promotion_threshold);
  }
  for (const auto& [key, count] : DecodedFlows()) {
    (void)count;
    if (fp_.Contains(key)) continue;  // already handled above
    int64_t& c = bottom[ef_.BottomIndex(key)];
    c -= std::min<int64_t>(c, config_.promotion_threshold);
  }
  for (const auto& [size, n] : EmDistribution::Estimate(bottom)) {
    histogram[size] += n;
  }
  return histogram;
}

double DaVinciSketch::EstimateEntropy() const {
  return EntropyFromDistribution(Distribution());
}

void DaVinciSketch::Combine(const DaVinciSketch& other, bool subtract) {
  InvalidateDecodeCache();

  // Phase 1 — FP merge (Algorithm 3), while both element filters are still
  // in their pre-merge state so taint can be decided per entry. Evictees
  // are deferred until the filters are combined.
  std::vector<FrequentPart::Entry> evictees;
  for (size_t b = 0; b < fp_.num_buckets(); ++b) {
    std::vector<FrequentPart::Entry> combined;
    for (size_t s = 0; s < fp_.num_slots(); ++s) {
      FrequentPart::Entry entry = fp_.EntryAt(b, s);
      if (entry.count == 0) continue;
      // The other sketch may hold part of this flow in its EF/IFP.
      entry.tainted = entry.tainted || other.ef_.Query(entry.key) != 0;
      combined.push_back(entry);
    }
    for (size_t s = 0; s < other.fp_.num_slots(); ++s) {
      FrequentPart::Entry entry = other.fp_.EntryAt(b, s);
      if (entry.count == 0) continue;
      if (subtract) entry.count = -entry.count;
      bool matched = false;
      for (FrequentPart::Entry& mine : combined) {
        if (mine.key == entry.key) {
          mine.count += entry.count;
          mine.tainted = mine.tainted || entry.tainted;
          matched = true;
          break;
        }
      }
      if (!matched) {
        entry.tainted = entry.tainted || ef_.Query(entry.key) != 0;
        combined.push_back(entry);
      }
    }
    // Exact zeros vanish (e.g. identical flows cancel in a difference).
    combined.erase(std::remove_if(combined.begin(), combined.end(),
                                  [](const FrequentPart::Entry& e) {
                                    return e.count == 0;
                                  }),
                   combined.end());
    std::sort(combined.begin(), combined.end(),
              [](const FrequentPart::Entry& lhs,
                 const FrequentPart::Entry& rhs) {
                return std::llabs(lhs.count) > std::llabs(rhs.count);
              });
    bool evicted_any = combined.size() > fp_.num_slots();
    for (size_t s = fp_.num_slots(); s < combined.size(); ++s) {
      evictees.push_back(combined[s]);
    }
    if (combined.size() > fp_.num_slots()) combined.resize(fp_.num_slots());
    bool flag =
        fp_.BucketFlag(b) || other.fp_.BucketFlag(b) || evicted_any;
    fp_.OverwriteBucket(b, combined, flag);
  }

  // Phase 2 — linear combine of the filter and infrequent parts.
  if (subtract) {
    ef_.Subtract(other.ef_);
    ifp_.Subtract(other.ifp_);
  } else {
    ef_.Merge(other.ef_);
    ifp_.Merge(other.ifp_);
  }

  // Phase 3 — route the FP evictees through the combined filter so the
  // "everything in the IFP crossed the filter" invariant (which decode
  // cross-validation relies on) still holds.
  for (const FrequentPart::Entry& entry : evictees) {
    RouteToFilter(entry.key, entry.count);
  }
}

void DaVinciSketch::Merge(const DaVinciSketch& other) {
  Combine(other, /*subtract=*/false);
}

void DaVinciSketch::Subtract(const DaVinciSketch& other) {
  Combine(other, /*subtract=*/true);
}

std::vector<std::pair<uint32_t, int64_t>> DaVinciSketch::HeavyChangers(
    const DaVinciSketch& other, int64_t delta) const {
  // One explicit working copy of this sketch, subtracted in place; nothing
  // else below copies sketch state.
  DaVinciSketch difference = *this;
  difference.Subtract(other);

  const std::vector<FrequentPart::Entry> mine = fp_.Entries();
  const std::vector<FrequentPart::Entry> theirs = other.fp_.Entries();
  const auto& decoded = difference.DecodedFlows();

  std::vector<std::pair<uint32_t, int64_t>> out;
  out.reserve(mine.size() + theirs.size());
  std::unordered_set<uint32_t> seen;
  seen.reserve(mine.size() + theirs.size() + decoded.size());
  auto report = [&](uint32_t key, int64_t change) {
    if (std::llabs(change) > delta) out.emplace_back(key, change);
  };
  // The difference FP's residents (every surviving combination of the two
  // windows' entries — the common case for a heavy changer) carry their
  // probe result already; resolve them without the redundant re-probe.
  for (const FrequentPart::Entry& entry : difference.fp_.Entries()) {
    if (!seen.insert(entry.key).second) continue;
    report(entry.key,
           difference.ResolveQuery(entry.key, HashFamily::BaseHash(entry.key),
                                   entry.count, entry.tainted));
  }
  auto consider = [&](uint32_t key) {
    if (!seen.insert(key).second) return;
    report(key, difference.Query(key));
  };
  for (const FrequentPart::Entry& entry : mine) consider(entry.key);
  for (const FrequentPart::Entry& entry : theirs) consider(entry.key);
  for (const auto& [key, count] : decoded) {
    (void)count;
    consider(key);
  }
  return out;
}

void DaVinciSketch::CheckInvariants(InvariantMode mode) const {
  DAVINCI_CHECK_EQ(fp_.num_buckets(), config_.fp_buckets);
  DAVINCI_CHECK_EQ(fp_.num_slots(), config_.fp_slots);
  DAVINCI_CHECK_EQ(ifp_.rows(), config_.ifp_rows);
  DAVINCI_CHECK_EQ(ifp_.width(), config_.ifp_buckets_per_row);
  DAVINCI_CHECK_EQ(ef_.threshold(), config_.promotion_threshold);
  fp_.CheckInvariants(mode);
  ef_.CheckInvariants(mode);
  ifp_.CheckInvariants(mode);
  if (decode_cache_ != nullptr) {
    for (const auto& [key, count] : *decode_cache_) {
      DAVINCI_CHECK_MSG(count != 0,
                        "decode cache holds zero-count flow " +
                            std::to_string(key));
    }
  }
}

void DaVinciSketch::CollectStats(obs::HealthSnapshot* out) const {
  *out = obs::HealthSnapshot{};
  out->memory_bytes = MemoryBytes();
  out->inserts = inserts_.value();
  out->queries = queries_.value();
  fp_.CollectStats(&out->fp);
  ef_.CollectStats(&out->ef);
  ifp_.CollectStats(&out->ifp);
  // The IFP itself is decode-thread agnostic; the knob lives in the config.
  out->ifp.decode_threads = config_.decode_threads;
  out->tuning.batch_query_min_keys = config_.batch_query_min_keys;
  out->tuning.batch_query_block = config_.batch_query_block;
  out->tuning.batch_prefetch_distance = config_.batch_prefetch_distance;
  out->tuning.decode_min_buckets_per_worker =
      config_.decode_min_buckets_per_worker;
}

void DaVinciSketch::Save(std::ostream& out) const {
  config_.Save(out);
  fp_.SaveState(out);
  ef_.SaveState(out);
  ifp_.SaveState(out);
}

void DaVinciSketch::Save(std::ostream& out, SketchFormat format) const {
  if (format == SketchFormat::kFlat) {
    Save(out);
    return;
  }
  WritePod(out, kDvszMagic);
  WritePod(out, kDvszVersion);
  config_.Save(out);
  fp_.SaveStateCompressed(out);
  ef_.SaveStateCompressed(out);
  ifp_.SaveStateCompressed(out);
  WritePod(out, kDvszTrailer);
}

bool DaVinciSketch::Load(std::istream& in, DaVinciSketch* sketch) {
  // Format sniff: the flat image leads with the config's fp_buckets u64,
  // which Valid() caps at 2^24 — so the DVSZ magic|version word (≈ 6.2e18)
  // unambiguously marks a compressed image even on non-seekable streams.
  uint64_t first_word = 0;
  if (!ReadPod(in, &first_word)) return false;
  const uint64_t dvsz_header =
      (uint64_t{kDvszVersion} << 32) | uint64_t{kDvszMagic};
  const bool compressed = first_word == dvsz_header;
  DaVinciConfig config;
  if (compressed) {
    if (!DaVinciConfig::Load(in, &config)) return false;
  } else {
    if (!DaVinciConfig::LoadTail(first_word, in, &config)) return false;
  }
  DaVinciSketch loaded(config);
  if (compressed) {
    if (!loaded.fp_.LoadStateCompressed(in) ||
        !loaded.ef_.LoadStateCompressed(in) ||
        !loaded.ifp_.LoadStateCompressed(in)) {
      return false;
    }
    uint32_t trailer = 0;
    if (!ReadPod(in, &trailer) || trailer != kDvszTrailer) return false;
  } else {
    if (!loaded.fp_.LoadState(in) || !loaded.ef_.LoadState(in) ||
        !loaded.ifp_.LoadState(in)) {
      return false;
    }
  }
  *sketch = std::move(loaded);
  return true;
}

void DaVinciSketch::SealDelta() {
  fp_.SealDeltaBase();
  ef_.SealDeltaBase();
  ifp_.SealDeltaBase();
}

void DaVinciSketch::SaveDelta(std::ostream& out) const {
  WritePod(out, kDvsdMagic);
  WritePod(out, kDvsdVersion);
  config_.Save(out);
  fp_.SaveDeltaState(out);
  ef_.SaveDeltaState(out);
  ifp_.SaveDeltaState(out);
  WritePod(out, kDvsdTrailer);
}

bool DaVinciSketch::ApplyDelta(std::istream& in) {
  uint32_t magic = 0, version = 0;
  if (!ReadPod(in, &magic) || magic != kDvsdMagic) return false;
  if (!ReadPod(in, &version) || version != kDvsdVersion) return false;
  DaVinciConfig config;
  if (!DaVinciConfig::Load(in, &config)) return false;
  // Deltas are positional — applying one across geometries would scatter
  // cells onto the wrong hashes silently, so admission demands the
  // kIdentical relation (kResizable is rebuildable, not delta-appliable).
  if (DaVinciConfig::GeometryCompatible(config, config_) !=
      DaVinciConfig::GeometryRelation::kIdentical) {
    return false;
  }
  // Stage on a CoW copy so a hostile image that fails mid-apply leaves
  // *this untouched; the copy also starts with the cold decode cache the
  // commit must end up with anyway.
  DaVinciSketch staged(*this);
  if (!staged.fp_.ApplyDeltaState(in) || !staged.ef_.ApplyDeltaState(in) ||
      !staged.ifp_.ApplyDeltaState(in)) {
    return false;
  }
  uint32_t trailer = 0;
  if (!ReadPod(in, &trailer) || trailer != kDvsdTrailer) return false;
  *this = std::move(staged);
  return true;
}

std::vector<std::pair<uint32_t, int64_t>> DaVinciSketch::SurvivingFlows()
    const {
  std::vector<std::pair<uint32_t, int64_t>> flows;
  const std::vector<FrequentPart::Entry> entries = fp_.Entries();
  const auto& decoded = DecodedFlows();
  flows.reserve(entries.size() + decoded.size());
  for (const FrequentPart::Entry& entry : entries) {
    flows.emplace_back(entry.key, entry.count);
  }
  // unordered_map iteration order is not deterministic across layouts;
  // the replay order must be, so the decoded tail is sorted by key.
  std::vector<std::pair<uint32_t, int64_t>> tail(decoded.begin(),
                                                 decoded.end());
  std::sort(tail.begin(), tail.end());
  for (const auto& [key, count] : tail) {
    if (count != 0) flows.emplace_back(key, count);
  }
  return flows;
}

bool DaVinciSketch::EfCarriesOver(const DaVinciConfig& from,
                                  const DaVinciConfig& to) {
  return from.seed == to.seed && from.ef_bytes == to.ef_bytes &&
         from.ef_level_bits == to.ef_level_bits &&
         to.promotion_threshold >= from.promotion_threshold;
}

bool DaVinciSketch::Resize(const DaVinciConfig& new_config) {
  using Rel = DaVinciConfig::GeometryRelation;
  switch (DaVinciConfig::GeometryCompatible(config_, new_config)) {
    case Rel::kIncompatible:
      return false;
    case Rel::kIdentical:
      // Geometry (the serialized fields) is unchanged, so the pinned flat
      // digest is too; only the runtime tuning knobs move.
      config_ = new_config;
      config_.Validate();
      return true;
    case Rel::kResizable:
      break;
  }

  DaVinciSketch staged(new_config);
  const bool ef_carries = EfCarriesOver(config_, new_config);
  if (ef_carries) staged.ef_.Merge(ef_);
  for (const auto& [key, count] : SurvivingFlows()) {
    staged.Insert(key, count);
  }
  if (ef_carries) {
    // A replayed FP resident may have carried residue in the merged EF
    // that plain re-insertion cannot know about; re-derive its taint bit
    // the way Merge does, so the query tail adds the EF share back.
    for (size_t b = 0; b < staged.fp_.num_buckets(); ++b) {
      std::vector<FrequentPart::Entry> entries;
      bool changed = false;
      for (size_t s = 0; s < staged.fp_.num_slots(); ++s) {
        FrequentPart::Entry entry = staged.fp_.EntryAt(b, s);
        if (entry.count == 0) continue;
        if (!entry.tainted && staged.ef_.Query(entry.key) != 0) {
          entry.tainted = true;
          changed = true;
        }
        entries.push_back(entry);
      }
      if (changed) {
        staged.fp_.OverwriteBucket(b, entries, staged.fp_.BucketFlag(b));
      }
    }
  }
  // The replay is migration, not new traffic: carry the old tallies.
  staged.inserts_ = inserts_;
  staged.queries_ = queries_;
  *this = std::move(staged);
  return true;
}

std::shared_ptr<const SketchView> DaVinciSketch::Snapshot() const {
  // The DaVinciSketch copy here is O(parts), not O(counters): each part's
  // flat storage is CoW-shared. The view starts with a cold decode cache
  // (the copy constructor never propagates it) and materializes its own
  // through Decoded()'s once-cell on first demand.
  return std::make_shared<const SketchView>(*this);
}

void SketchView::Decoded() const {
  // call_once semantics, spelled out so Thread Safety Analysis can check
  // it: winners fill under decode_mu_ and release-publish decode_ready_;
  // losers of the race serialize on the mutex, see decode_filled_, and
  // skip the decode. Readers that arrive later take only the fence-free
  // fast path. (std::once_flag is opaque to the analysis.)
  if (decode_ready_.load(std::memory_order_acquire)) return;
  MutexLock lock(&decode_mu_);
  if (!decode_filled_) {
    (void)sketch_.DecodedFlows();
    decode_filled_ = true;
    decode_ready_.store(true, std::memory_order_release);
  }
}

int64_t SketchView::Query(uint32_t key) const {
  sketch_.queries_.Inc();
  uint64_t base_hash = HashFamily::BaseHash(key);
  bool tainted = false;
  int64_t fp_count =
      sketch_.fp_.QueryWithBase(base_hash, key, &tainted);
  if (fp_count != 0 && !tainted) {
    return fp_count;  // exact — no decode, no shared mutable state touched
  }
  // The tail reads the decode cache; materialize it exactly once so the
  // concurrent readers below only ever see a const map.
  Decoded();
  return sketch_.ResolveQuery(key, base_hash, fp_count, tainted);
}

std::vector<int64_t> SketchView::QueryBatch(
    std::span<const uint32_t> keys) const {
  // DaVinciSketch::QueryBatch materializes the decode cache up front; the
  // once-cell here makes that materialization race-free across readers,
  // after which the batch pipeline is a pure read.
  Decoded();
  return sketch_.QueryBatch(keys);
}

std::vector<std::pair<uint32_t, int64_t>> SketchView::HeavyHitters(
    int64_t threshold) const {
  Decoded();
  return sketch_.HeavyHitters(threshold);
}

double DaVinciSketch::InnerProduct(const DaVinciSketch& a,
                                   const DaVinciSketch& b) {
  const auto& decoded_a = a.DecodedFlows();
  const auto& decoded_b = b.DecodedFlows();

  auto ifp_share = [](const std::unordered_map<uint32_t, int64_t>& decoded,
                      uint32_t key) -> int64_t {
    auto it = decoded.find(key);
    return it == decoded.end() ? 0 : it->second;
  };

  double join = 0.0;

  // J_FF + J_FI + J_FE: frequent part of a against everything in b.
  for (const FrequentPart::Entry& entry : a.fp_.Entries()) {
    bool flag = false;
    double fa = static_cast<double>(entry.count);
    int64_t fb_fp = b.fp_.Query(entry.key, &flag);
    join += fa * static_cast<double>(fb_fp);                        // FF
    join += fa * static_cast<double>(ifp_share(decoded_b, entry.key));  // FI
    join += fa * static_cast<double>(b.ef_.QuerySigned(entry.key));     // FE
  }
  // J_IF + J_EF: frequent part of b against a's filter/infrequent shares.
  for (const FrequentPart::Entry& entry : b.fp_.Entries()) {
    double fb = static_cast<double>(entry.count);
    join += static_cast<double>(ifp_share(decoded_a, entry.key)) * fb;  // IF
    join += static_cast<double>(a.ef_.QuerySigned(entry.key)) * fb;     // EF
  }
  // J_IE + J_EI: decoded infrequent flows against the other filter.
  for (const auto& [key, count] : decoded_a) {
    join += static_cast<double>(count) *
            static_cast<double>(b.ef_.QuerySigned(key));  // IE
  }
  for (const auto& [key, count] : decoded_b) {
    join += static_cast<double>(a.ef_.QuerySigned(key)) *
            static_cast<double>(count);  // EI
  }
  // J_II: unbiased counter dot product of the two Fermat sketches.
  join += InfrequentPart::InnerProduct(a.ifp_, b.ifp_);
  // J_EE: bottom-level dot product with the count-min collision correction
  //   E[dot] = f⊙g + (Σf·Σg − f⊙g)/w  →  unbiased (dot − ΣΣ/w)/(1 − 1/w).
  const std::vector<int64_t> ea = a.ef_.BottomValues();
  const std::vector<int64_t> eb = b.ef_.BottomValues();
  double dot = 0.0, sum_a = 0.0, sum_b = 0.0;
  for (size_t j = 0; j < ea.size(); ++j) {
    dot += static_cast<double>(ea[j]) * static_cast<double>(eb[j]);
    sum_a += static_cast<double>(ea[j]);
    sum_b += static_cast<double>(eb[j]);
  }
  double w = static_cast<double>(ea.size());
  if (w > 1.0) {
    join += (dot - sum_a * sum_b / w) / (1.0 - 1.0 / w);
  } else {
    join += dot;
  }
  return join;
}

}  // namespace davinci
