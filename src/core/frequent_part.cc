#include "core/frequent_part.h"

#include <algorithm>
#include <cstdlib>

#include "common/prefetch.h"
#include "common/serialize.h"
#include "common/varint.h"
#include "obs/stats.h"

namespace davinci {

FrequentPart::FrequentPart(size_t buckets, size_t slots, int64_t evict_lambda,
                           uint64_t seed)
    : buckets_(std::max<size_t>(1, buckets)),
      slots_(std::max<size_t>(1, slots)),
      stride_(simd::PaddedSlots(std::max<size_t>(1, slots))),
      evict_lambda_(evict_lambda),
      hash_(seed * 21000277 + 17),
      store_(std::make_shared<Storage>()) {
  store_->keys.assign(buckets_ * stride_, 0);
  store_->counts.assign(buckets_ * stride_, 0);
  store_->tainted.assign(buckets_ * stride_, 0);
  store_->ecnt.assign(buckets_, 0);
  store_->flags.assign(buckets_, 0);
}

void FrequentPart::CloneStore() {
  store_ = std::make_shared<Storage>(*store_);
  obs::CowTally::RecordClone(store_->ByteSize());
}

void FrequentPart::PrefetchBucket(uint64_t base_hash) const {
  const Storage& s = *store_;
  size_t base = BucketOfBase(base_hash) * stride_;
  PrefetchWrite(&s.keys[base]);
  PrefetchWrite(&s.counts[base]);
  // A bucket's counts span stride_ × 8 bytes and may straddle a line.
  PrefetchWrite(&s.counts[base + stride_ - 1]);
}

void FrequentPart::PrefetchBucketRead(uint64_t base_hash) const {
  const Storage& s = *store_;
  size_t base = BucketOfBase(base_hash) * stride_;
  PrefetchRead(&s.keys[base]);
  PrefetchRead(&s.counts[base]);
  PrefetchRead(&s.counts[base + stride_ - 1]);
}

FrequentPart::InsertResult FrequentPart::InsertWithHash(uint32_t key,
                                                        uint64_t base_hash,
                                                        int64_t count) {
  stats_.inserts.Inc();
  Storage& st = Mut();
  size_t bucket = BucketOfBase(base_hash);
  size_t base = bucket * stride_;

  // Case 1 first: one vector compare over the bucket's key lane. The
  // access tally mirrors the pre-SIMD slot walk (hit at slot s = s + 1
  // probes, full miss = slots_ probes) so MemoryAccesses() stays
  // backend-independent. Liveness is count != 0 so that difference tables
  // (negative counts) keep working.
  size_t hit = simd::FindLiveKey(&st.keys[base], &st.counts[base], stride_, key);
  if (hit != SIZE_MAX) {
    accesses_ += hit + 1;
    size_t i = base + hit;
    st.counts[i] += count;
    if (i != base &&
        std::llabs(st.counts[i]) > std::llabs(st.counts[i - 1])) {
      // Move-to-front: hot flows bubble toward the bucket head so their
      // next hit costs fewer probes.
      std::swap(st.keys[i], st.keys[i - 1]);
      std::swap(st.counts[i], st.counts[i - 1]);
      std::swap(st.tainted[i], st.tainted[i - 1]);
    }
    stats_.hits.Inc();
    return {};
  }
  accesses_ += slots_;

  size_t empty = simd::FindZeroCount(&st.counts[base], stride_);
  if (empty < slots_) {  // case 2 (a padding slot does not count as free)
    size_t i = base + empty;
    st.keys[i] = key;
    st.counts[i] = count;
    st.tainted[i] = 0;
    stats_.fills.Inc();
    return {};
  }

  // Bucket full: scalar scan for the resident minimum |count|.
  size_t min_slot = base;
  bool min_seen = false;
  for (size_t i = base; i < base + slots_; ++i) {
    if (!min_seen ||
        std::llabs(st.counts[i]) < std::llabs(st.counts[min_slot])) {
      min_slot = i;
      min_seen = true;
    }
  }

  accesses_ += 2;  // ecnt + flag
  st.ecnt[bucket] += 1;
  // λ·|min| can exceed int64 for loaded extreme counts (λ up to 2^20,
  // |count| up to 2^60 pass Load validation); ecnt is 32-bit, so any
  // |min| ≥ 2^32 loses the vote without needing the product.
  int64_t min_abs = std::llabs(st.counts[min_slot]);
  if (min_abs <= (int64_t{1} << 32) &&
      static_cast<int64_t>(st.ecnt[bucket]) > evict_lambda_ * min_abs) {
    // Case 3: evict the resident minimum toward the element filter. The
    // newcomer had earlier rejections routed to the filter, so it is
    // tainted.
    InsertResult result;
    result.action = InsertResult::Action::kEvicted;
    result.overflow_key = st.keys[min_slot];
    result.overflow_count = st.counts[min_slot];
    st.keys[min_slot] = key;
    st.counts[min_slot] = count;
    st.tainted[min_slot] = 1;
    st.flags[bucket] = 1;
    st.ecnt[bucket] = 0;
    stats_.evictions.Inc();
    return result;
  }
  // Case 4: the incoming element is deemed infrequent.
  stats_.rejections.Inc();
  InsertResult result;
  result.action = InsertResult::Action::kRejected;
  result.overflow_key = key;
  result.overflow_count = count;
  return result;
}

bool FrequentPart::Contains(uint32_t key) const {
  bool tainted = false;
  return Query(key, &tainted) != 0;
}

std::vector<FrequentPart::Entry> FrequentPart::Entries() const {
  const Storage& st = *store_;
  std::vector<Entry> entries;
  for (size_t b = 0; b < buckets_; ++b) {
    size_t base = b * stride_;
    for (size_t s = 0; s < slots_; ++s) {
      size_t i = base + s;
      if (st.counts[i] != 0) {
        entries.push_back({st.keys[i], st.counts[i], st.tainted[i] != 0});
      }
    }
  }
  return entries;
}

// Serialization carries only the logical buckets_ × slots_ entries, in the
// pre-padding layout — the byte stream is identical for every SIMD backend
// (and to pre-stride builds; the pinned digest in serialization_fuzz_test
// enforces this).
void FrequentPart::SaveState(std::ostream& out) const {
  const Storage& st = *store_;
  std::vector<uint32_t> keys(buckets_ * slots_);
  std::vector<int64_t> counts(buckets_ * slots_);
  std::vector<uint8_t> tainted(buckets_ * slots_);
  for (size_t b = 0; b < buckets_; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      keys[b * slots_ + s] = st.keys[b * stride_ + s];
      counts[b * slots_ + s] = st.counts[b * stride_ + s];
      tainted[b * slots_ + s] = st.tainted[b * stride_ + s];
    }
  }
  WriteVec(out, keys);
  WriteVec(out, counts);
  WriteVec(out, tainted);
  WriteVec(out, st.ecnt);
  WriteVec(out, st.flags);
}

bool FrequentPart::LoadState(std::istream& in) {
  std::vector<uint32_t> keys;
  std::vector<int64_t> counts;
  std::vector<uint8_t> tainted;
  std::vector<uint32_t> ecnt;
  std::vector<uint8_t> flags;
  if (!ReadVec(in, &keys) || !ReadVec(in, &counts) || !ReadVec(in, &tainted) ||
      !ReadVec(in, &ecnt) || !ReadVec(in, &flags)) {
    return false;
  }
  if (keys.size() != buckets_ * slots_ || counts.size() != keys.size() ||
      tainted.size() != keys.size() || ecnt.size() != buckets_ ||
      flags.size() != buckets_) {
    return false;
  }
  // Range validation (tests/fuzz/fuzz_serialize.cc drives mutated images
  // through here): capping loaded counts keeps the λ-vote comparison
  // (λ·|min|) and ResolveQuery's three-part sum inside int64; llabs at
  // INT64_MIN is itself UB, so that value must never enter.
  for (int64_t count : counts) {
    if (count > kMaxLoadedCount || count < -kMaxLoadedCount) return false;
  }
  Storage& st = Mut();
  st.keys.assign(buckets_ * stride_, 0);
  st.counts.assign(buckets_ * stride_, 0);
  st.tainted.assign(buckets_ * stride_, 0);
  for (size_t b = 0; b < buckets_; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      st.keys[b * stride_ + s] = keys[b * slots_ + s];
      st.counts[b * stride_ + s] = counts[b * slots_ + s];
      st.tainted[b * stride_ + s] = tainted[b * slots_ + s];
    }
  }
  st.ecnt = std::move(ecnt);
  st.flags = std::move(flags);
  return true;
}

namespace {

// Bitmap packing for the taint / flag lanes: eight 0/1 bytes per output
// byte, LSB-first. The reader rejects set spare bits in the final partial
// byte — a canonical image never has them, so they flag corruption.
void WritePackedBits(std::ostream& out, const std::vector<uint8_t>& bits) {
  for (size_t i = 0; i < bits.size(); i += 8) {
    uint8_t byte = 0;
    for (size_t j = 0; j < 8 && i + j < bits.size(); ++j) {
      if (bits[i + j] != 0) byte = static_cast<uint8_t>(byte | (1u << j));
    }
    WritePod(out, byte);
  }
}

bool ReadPackedBits(std::istream& in, size_t count,
                    std::vector<uint8_t>* bits) {
  bits->assign(count, 0);
  for (size_t i = 0; i < count; i += 8) {
    uint8_t byte = 0;
    if (!ReadPod(in, &byte)) return false;
    size_t lanes = std::min<size_t>(8, count - i);
    if (lanes < 8 && (byte >> lanes) != 0) return false;
    for (size_t j = 0; j < lanes; ++j) {
      (*bits)[i + j] = (byte >> j) & 1;
    }
  }
  return true;
}

}  // namespace

void FrequentPart::SaveStateCompressed(std::ostream& out) const {
  const Storage& st = *store_;
  std::vector<uint32_t> keys(buckets_ * slots_);
  std::vector<uint8_t> tainted(buckets_ * slots_);
  for (size_t b = 0; b < buckets_; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      keys[b * slots_ + s] = st.keys[b * stride_ + s];
      tainted[b * slots_ + s] = st.tainted[b * stride_ + s];
    }
  }
  WriteVec(out, keys);
  for (size_t b = 0; b < buckets_; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      WriteVarI64(out, st.counts[b * stride_ + s]);
    }
  }
  WritePackedBits(out, tainted);
  for (size_t b = 0; b < buckets_; ++b) {
    WriteVarU64(out, st.ecnt[b]);
  }
  WritePackedBits(out, std::vector<uint8_t>(st.flags.begin(), st.flags.end()));
}

bool FrequentPart::LoadStateCompressed(std::istream& in) {
  std::vector<uint32_t> keys;
  if (!ReadVec(in, &keys) || keys.size() != buckets_ * slots_) return false;
  std::vector<int64_t> counts(buckets_ * slots_);
  for (size_t i = 0; i < counts.size(); ++i) {
    int64_t count = 0;
    if (!ReadVarI64(in, &count)) return false;
    // Same range gate as the flat loader: the λ-vote and ResolveQuery
    // arithmetic trusts loaded counts to sit within ±kMaxLoadedCount.
    if (count > kMaxLoadedCount || count < -kMaxLoadedCount) return false;
    counts[i] = count;
  }
  std::vector<uint8_t> tainted;
  if (!ReadPackedBits(in, buckets_ * slots_, &tainted)) return false;
  std::vector<uint32_t> ecnt(buckets_);
  for (size_t b = 0; b < buckets_; ++b) {
    uint64_t value = 0;
    if (!ReadVarU64(in, &value)) return false;
    if (value > UINT32_MAX) return false;
    ecnt[b] = static_cast<uint32_t>(value);
  }
  std::vector<uint8_t> flags;
  if (!ReadPackedBits(in, buckets_, &flags)) return false;
  Storage& st = Mut();
  st.keys.assign(buckets_ * stride_, 0);
  st.counts.assign(buckets_ * stride_, 0);
  st.tainted.assign(buckets_ * stride_, 0);
  for (size_t b = 0; b < buckets_; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      st.keys[b * stride_ + s] = keys[b * slots_ + s];
      st.counts[b * stride_ + s] = counts[b * slots_ + s];
      st.tainted[b * stride_ + s] = tainted[b * slots_ + s];
    }
  }
  st.ecnt = std::move(ecnt);
  st.flags = std::move(flags);
  return true;
}

void FrequentPart::SealDeltaBase() { delta_base_ = store_; }

void FrequentPart::SaveDeltaState(std::ostream& out) const {
  const Storage& st = *store_;
  // A bucket is "touched" when any logical slot, its evict counter or its
  // flag moved since the seal; base == nullptr diffs against the
  // freshly-constructed all-zero state.
  const Storage* base = delta_base_.get();
  auto bucket_changed = [&](size_t b) {
    for (size_t s = 0; s < slots_; ++s) {
      size_t i = b * stride_ + s;
      uint32_t base_key = base != nullptr ? base->keys[i] : 0;
      int64_t base_count = base != nullptr ? base->counts[i] : 0;
      uint8_t base_taint = base != nullptr ? base->tainted[i] : 0;
      if (st.keys[i] != base_key || st.counts[i] != base_count ||
          st.tainted[i] != base_taint) {
        return true;
      }
    }
    uint32_t base_ecnt = base != nullptr ? base->ecnt[b] : 0;
    uint8_t base_flag = base != nullptr ? base->flags[b] : 0;
    return st.ecnt[b] != base_ecnt || st.flags[b] != base_flag;
  };
  uint64_t changed = 0;
  for (size_t b = 0; b < buckets_; ++b) {
    if (bucket_changed(b)) ++changed;
  }
  WriteVarU64(out, changed);
  uint64_t previous = 0;
  bool first = true;
  for (size_t b = 0; b < buckets_; ++b) {
    if (!bucket_changed(b)) continue;
    WriteVarU64(out, first ? b : b - previous);
    uint64_t taint_mask = 0;
    for (size_t s = 0; s < slots_; ++s) {
      size_t i = b * stride_ + s;
      WritePod(out, st.keys[i]);
      WriteVarI64(out, st.counts[i]);
      if (st.tainted[i] != 0) taint_mask |= uint64_t{1} << s;
    }
    WriteVarU64(out, taint_mask);
    WriteVarU64(out, st.ecnt[b]);
    WritePod(out, st.flags[b]);
    previous = b;
    first = false;
  }
}

bool FrequentPart::ApplyDeltaState(std::istream& in) {
  uint64_t changed = 0;
  if (!ReadVarU64(in, &changed)) return false;
  if (changed > buckets_) return false;
  Storage& st = Mut();
  uint64_t bucket = 0;
  for (uint64_t k = 0; k < changed; ++k) {
    uint64_t gap = 0;
    if (!ReadVarU64(in, &gap)) return false;
    if (k == 0) {
      if (gap >= buckets_) return false;
      bucket = gap;
    } else {
      if (gap == 0 || gap >= buckets_ - bucket) return false;
      bucket += gap;
    }
    std::vector<uint32_t> keys(slots_);
    std::vector<int64_t> counts(slots_);
    for (size_t s = 0; s < slots_; ++s) {
      if (!ReadPod(in, &keys[s]) || !ReadVarI64(in, &counts[s])) return false;
      if (counts[s] > kMaxLoadedCount || counts[s] < -kMaxLoadedCount) {
        return false;
      }
    }
    uint64_t taint_mask = 0, ecnt = 0;
    uint8_t flag = 0;
    if (!ReadVarU64(in, &taint_mask) || !ReadVarU64(in, &ecnt) ||
        !ReadPod(in, &flag)) {
      return false;
    }
    // Spare taint bits beyond the slot count, oversized evict counters and
    // non-boolean flags all flag corruption.
    if (slots_ < 64 && (taint_mask >> slots_) != 0) return false;
    if (ecnt > UINT32_MAX || flag > 1) return false;
    for (size_t s = 0; s < slots_; ++s) {
      size_t i = bucket * stride_ + s;
      st.keys[i] = keys[s];
      st.counts[i] = counts[s];
      st.tainted[i] = (taint_mask >> s) & 1 ? 1 : 0;
    }
    st.ecnt[bucket] = static_cast<uint32_t>(ecnt);
    st.flags[bucket] = flag;
  }
  return true;
}

void FrequentPart::CheckInvariants(InvariantMode mode) const {
  const Storage& st = *store_;
  DAVINCI_CHECK_EQ(stride_, simd::PaddedSlots(slots_));
  DAVINCI_CHECK_EQ(st.keys.size(), buckets_ * stride_);
  DAVINCI_CHECK_EQ(st.counts.size(), buckets_ * stride_);
  DAVINCI_CHECK_EQ(st.tainted.size(), buckets_ * stride_);
  DAVINCI_CHECK_EQ(st.ecnt.size(), buckets_);
  DAVINCI_CHECK_EQ(st.flags.size(), buckets_);
  for (size_t b = 0; b < buckets_; ++b) {
    const std::string where = "bucket " + std::to_string(b);
    DAVINCI_CHECK_MSG(st.flags[b] <= 1, where);
    size_t base = b * stride_;
    // Padding slots must stay permanently empty or the vector probe could
    // surface a phantom entry.
    for (size_t s = slots_; s < stride_; ++s) {
      DAVINCI_CHECK_MSG(st.keys[base + s] == 0 && st.counts[base + s] == 0 &&
                            st.tainted[base + s] == 0,
                        where + ": dirty padding slot " + std::to_string(s));
    }
    bool full = true;
    bool all_positive = true;
    int64_t min_abs = 0;
    bool min_seen = false;
    for (size_t s = 0; s < slots_; ++s) {
      size_t i = base + s;
      DAVINCI_CHECK_MSG(st.tainted[i] <= 1, where);
      if (st.counts[i] == 0) {
        full = false;
        continue;
      }
      DAVINCI_CHECK_MSG(BucketOf(st.keys[i]) == b,
                        where + ": resident key " +
                            std::to_string(st.keys[i]) + " hashes elsewhere");
      for (size_t t = s + 1; t < slots_; ++t) {
        DAVINCI_CHECK_MSG(
            st.counts[base + t] == 0 || st.keys[base + t] != st.keys[i],
            where + ": duplicate key " + std::to_string(st.keys[i]));
      }
      if (mode == InvariantMode::kAdditive) {
        DAVINCI_CHECK_MSG(st.counts[i] > 0, where + ": nonpositive count");
      }
      if (st.counts[i] < 0) all_positive = false;
      int64_t abs = std::llabs(st.counts[i]);
      if (!min_seen || abs < min_abs) {
        min_abs = abs;
        min_seen = true;
      }
    }
    if (mode == InvariantMode::kAdditive) {
      if (!full) {
        DAVINCI_CHECK_MSG(st.ecnt[b] == 0,
                          where + ": evict counter moved while a slot was "
                                  "free");
      } else if (all_positive && min_seen) {
        DAVINCI_CHECK_MSG(
            static_cast<int64_t>(st.ecnt[b]) <= evict_lambda_ * min_abs,
            where + ": ecnt " + std::to_string(st.ecnt[b]) +
                " exceeds lambda*min " +
                std::to_string(evict_lambda_ * min_abs));
      }
    }
  }
}

void FrequentPart::CollectStats(obs::FpHealth* out) const {
  const Storage& st = *store_;
  out->buckets = buckets_;
  out->slots = slots_;
  out->live_slots = 0;
  for (int64_t count : st.counts) {
    if (count != 0) ++out->live_slots;
  }
  out->flagged_buckets = 0;
  for (uint8_t flag : st.flags) {
    if (flag != 0) ++out->flagged_buckets;
  }
  out->ecnt_sum = 0;
  out->ecnt_max = 0;
  for (uint32_t ecnt : st.ecnt) {
    out->ecnt_sum += ecnt;
    if (ecnt > out->ecnt_max) out->ecnt_max = ecnt;
  }
  out->inserts = stats_.inserts.value();
  out->hits = stats_.hits.value();
  out->fills = stats_.fills.value();
  out->evictions = stats_.evictions.value();
  out->rejections = stats_.rejections.value();
}

void FrequentPart::OverwriteBucket(size_t bucket,
                                   const std::vector<Entry>& entries,
                                   bool flag) {
  DAVINCI_DCHECK_LT(bucket, buckets_);
  DAVINCI_DCHECK_LE(entries.size(), slots_);
  Storage& st = Mut();
  size_t base = bucket * stride_;
  for (size_t s = 0; s < slots_; ++s) {
    if (s < entries.size()) {
      st.keys[base + s] = entries[s].key;
      st.counts[base + s] = entries[s].count;
      st.tainted[base + s] = entries[s].tainted ? 1 : 0;
    } else {
      st.keys[base + s] = 0;
      st.counts[base + s] = 0;
      st.tainted[base + s] = 0;
    }
  }
  st.flags[bucket] = flag ? 1 : 0;
  st.ecnt[bucket] = 0;
}

}  // namespace davinci
