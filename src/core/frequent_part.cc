#include "core/frequent_part.h"

#include <algorithm>
#include <cstdlib>

#include "common/prefetch.h"
#include "common/serialize.h"
#include "obs/stats.h"

namespace davinci {

FrequentPart::FrequentPart(size_t buckets, size_t slots, int64_t evict_lambda,
                           uint64_t seed)
    : buckets_(std::max<size_t>(1, buckets)),
      slots_(std::max<size_t>(1, slots)),
      stride_(simd::PaddedSlots(std::max<size_t>(1, slots))),
      evict_lambda_(evict_lambda),
      hash_(seed * 21000277 + 17),
      store_(std::make_shared<Storage>()) {
  store_->keys.assign(buckets_ * stride_, 0);
  store_->counts.assign(buckets_ * stride_, 0);
  store_->tainted.assign(buckets_ * stride_, 0);
  store_->ecnt.assign(buckets_, 0);
  store_->flags.assign(buckets_, 0);
}

void FrequentPart::CloneStore() {
  store_ = std::make_shared<Storage>(*store_);
  obs::CowTally::RecordClone(store_->ByteSize());
}

void FrequentPart::PrefetchBucket(uint64_t base_hash) const {
  const Storage& s = *store_;
  size_t base = BucketOfBase(base_hash) * stride_;
  PrefetchWrite(&s.keys[base]);
  PrefetchWrite(&s.counts[base]);
  // A bucket's counts span stride_ × 8 bytes and may straddle a line.
  PrefetchWrite(&s.counts[base + stride_ - 1]);
}

void FrequentPart::PrefetchBucketRead(uint64_t base_hash) const {
  const Storage& s = *store_;
  size_t base = BucketOfBase(base_hash) * stride_;
  PrefetchRead(&s.keys[base]);
  PrefetchRead(&s.counts[base]);
  PrefetchRead(&s.counts[base + stride_ - 1]);
}

FrequentPart::InsertResult FrequentPart::InsertWithHash(uint32_t key,
                                                        uint64_t base_hash,
                                                        int64_t count) {
  stats_.inserts.Inc();
  Storage& st = Mut();
  size_t bucket = BucketOfBase(base_hash);
  size_t base = bucket * stride_;

  // Case 1 first: one vector compare over the bucket's key lane. The
  // access tally mirrors the pre-SIMD slot walk (hit at slot s = s + 1
  // probes, full miss = slots_ probes) so MemoryAccesses() stays
  // backend-independent. Liveness is count != 0 so that difference tables
  // (negative counts) keep working.
  size_t hit = simd::FindLiveKey(&st.keys[base], &st.counts[base], stride_, key);
  if (hit != SIZE_MAX) {
    accesses_ += hit + 1;
    size_t i = base + hit;
    st.counts[i] += count;
    if (i != base &&
        std::llabs(st.counts[i]) > std::llabs(st.counts[i - 1])) {
      // Move-to-front: hot flows bubble toward the bucket head so their
      // next hit costs fewer probes.
      std::swap(st.keys[i], st.keys[i - 1]);
      std::swap(st.counts[i], st.counts[i - 1]);
      std::swap(st.tainted[i], st.tainted[i - 1]);
    }
    stats_.hits.Inc();
    return {};
  }
  accesses_ += slots_;

  size_t empty = simd::FindZeroCount(&st.counts[base], stride_);
  if (empty < slots_) {  // case 2 (a padding slot does not count as free)
    size_t i = base + empty;
    st.keys[i] = key;
    st.counts[i] = count;
    st.tainted[i] = 0;
    stats_.fills.Inc();
    return {};
  }

  // Bucket full: scalar scan for the resident minimum |count|.
  size_t min_slot = base;
  bool min_seen = false;
  for (size_t i = base; i < base + slots_; ++i) {
    if (!min_seen ||
        std::llabs(st.counts[i]) < std::llabs(st.counts[min_slot])) {
      min_slot = i;
      min_seen = true;
    }
  }

  accesses_ += 2;  // ecnt + flag
  st.ecnt[bucket] += 1;
  // λ·|min| can exceed int64 for loaded extreme counts (λ up to 2^20,
  // |count| up to 2^60 pass Load validation); ecnt is 32-bit, so any
  // |min| ≥ 2^32 loses the vote without needing the product.
  int64_t min_abs = std::llabs(st.counts[min_slot]);
  if (min_abs <= (int64_t{1} << 32) &&
      static_cast<int64_t>(st.ecnt[bucket]) > evict_lambda_ * min_abs) {
    // Case 3: evict the resident minimum toward the element filter. The
    // newcomer had earlier rejections routed to the filter, so it is
    // tainted.
    InsertResult result;
    result.action = InsertResult::Action::kEvicted;
    result.overflow_key = st.keys[min_slot];
    result.overflow_count = st.counts[min_slot];
    st.keys[min_slot] = key;
    st.counts[min_slot] = count;
    st.tainted[min_slot] = 1;
    st.flags[bucket] = 1;
    st.ecnt[bucket] = 0;
    stats_.evictions.Inc();
    return result;
  }
  // Case 4: the incoming element is deemed infrequent.
  stats_.rejections.Inc();
  InsertResult result;
  result.action = InsertResult::Action::kRejected;
  result.overflow_key = key;
  result.overflow_count = count;
  return result;
}

bool FrequentPart::Contains(uint32_t key) const {
  bool tainted = false;
  return Query(key, &tainted) != 0;
}

std::vector<FrequentPart::Entry> FrequentPart::Entries() const {
  const Storage& st = *store_;
  std::vector<Entry> entries;
  for (size_t b = 0; b < buckets_; ++b) {
    size_t base = b * stride_;
    for (size_t s = 0; s < slots_; ++s) {
      size_t i = base + s;
      if (st.counts[i] != 0) {
        entries.push_back({st.keys[i], st.counts[i], st.tainted[i] != 0});
      }
    }
  }
  return entries;
}

// Serialization carries only the logical buckets_ × slots_ entries, in the
// pre-padding layout — the byte stream is identical for every SIMD backend
// (and to pre-stride builds; the pinned digest in serialization_fuzz_test
// enforces this).
void FrequentPart::SaveState(std::ostream& out) const {
  const Storage& st = *store_;
  std::vector<uint32_t> keys(buckets_ * slots_);
  std::vector<int64_t> counts(buckets_ * slots_);
  std::vector<uint8_t> tainted(buckets_ * slots_);
  for (size_t b = 0; b < buckets_; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      keys[b * slots_ + s] = st.keys[b * stride_ + s];
      counts[b * slots_ + s] = st.counts[b * stride_ + s];
      tainted[b * slots_ + s] = st.tainted[b * stride_ + s];
    }
  }
  WriteVec(out, keys);
  WriteVec(out, counts);
  WriteVec(out, tainted);
  WriteVec(out, st.ecnt);
  WriteVec(out, st.flags);
}

bool FrequentPart::LoadState(std::istream& in) {
  std::vector<uint32_t> keys;
  std::vector<int64_t> counts;
  std::vector<uint8_t> tainted;
  std::vector<uint32_t> ecnt;
  std::vector<uint8_t> flags;
  if (!ReadVec(in, &keys) || !ReadVec(in, &counts) || !ReadVec(in, &tainted) ||
      !ReadVec(in, &ecnt) || !ReadVec(in, &flags)) {
    return false;
  }
  if (keys.size() != buckets_ * slots_ || counts.size() != keys.size() ||
      tainted.size() != keys.size() || ecnt.size() != buckets_ ||
      flags.size() != buckets_) {
    return false;
  }
  // Range validation (tests/fuzz/fuzz_serialize.cc drives mutated images
  // through here): capping loaded counts keeps the λ-vote comparison
  // (λ·|min|) and ResolveQuery's three-part sum inside int64; llabs at
  // INT64_MIN is itself UB, so that value must never enter.
  for (int64_t count : counts) {
    if (count > kMaxLoadedCount || count < -kMaxLoadedCount) return false;
  }
  Storage& st = Mut();
  st.keys.assign(buckets_ * stride_, 0);
  st.counts.assign(buckets_ * stride_, 0);
  st.tainted.assign(buckets_ * stride_, 0);
  for (size_t b = 0; b < buckets_; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      st.keys[b * stride_ + s] = keys[b * slots_ + s];
      st.counts[b * stride_ + s] = counts[b * slots_ + s];
      st.tainted[b * stride_ + s] = tainted[b * slots_ + s];
    }
  }
  st.ecnt = std::move(ecnt);
  st.flags = std::move(flags);
  return true;
}

void FrequentPart::CheckInvariants(InvariantMode mode) const {
  const Storage& st = *store_;
  DAVINCI_CHECK_EQ(stride_, simd::PaddedSlots(slots_));
  DAVINCI_CHECK_EQ(st.keys.size(), buckets_ * stride_);
  DAVINCI_CHECK_EQ(st.counts.size(), buckets_ * stride_);
  DAVINCI_CHECK_EQ(st.tainted.size(), buckets_ * stride_);
  DAVINCI_CHECK_EQ(st.ecnt.size(), buckets_);
  DAVINCI_CHECK_EQ(st.flags.size(), buckets_);
  for (size_t b = 0; b < buckets_; ++b) {
    const std::string where = "bucket " + std::to_string(b);
    DAVINCI_CHECK_MSG(st.flags[b] <= 1, where);
    size_t base = b * stride_;
    // Padding slots must stay permanently empty or the vector probe could
    // surface a phantom entry.
    for (size_t s = slots_; s < stride_; ++s) {
      DAVINCI_CHECK_MSG(st.keys[base + s] == 0 && st.counts[base + s] == 0 &&
                            st.tainted[base + s] == 0,
                        where + ": dirty padding slot " + std::to_string(s));
    }
    bool full = true;
    bool all_positive = true;
    int64_t min_abs = 0;
    bool min_seen = false;
    for (size_t s = 0; s < slots_; ++s) {
      size_t i = base + s;
      DAVINCI_CHECK_MSG(st.tainted[i] <= 1, where);
      if (st.counts[i] == 0) {
        full = false;
        continue;
      }
      DAVINCI_CHECK_MSG(BucketOf(st.keys[i]) == b,
                        where + ": resident key " +
                            std::to_string(st.keys[i]) + " hashes elsewhere");
      for (size_t t = s + 1; t < slots_; ++t) {
        DAVINCI_CHECK_MSG(
            st.counts[base + t] == 0 || st.keys[base + t] != st.keys[i],
            where + ": duplicate key " + std::to_string(st.keys[i]));
      }
      if (mode == InvariantMode::kAdditive) {
        DAVINCI_CHECK_MSG(st.counts[i] > 0, where + ": nonpositive count");
      }
      if (st.counts[i] < 0) all_positive = false;
      int64_t abs = std::llabs(st.counts[i]);
      if (!min_seen || abs < min_abs) {
        min_abs = abs;
        min_seen = true;
      }
    }
    if (mode == InvariantMode::kAdditive) {
      if (!full) {
        DAVINCI_CHECK_MSG(st.ecnt[b] == 0,
                          where + ": evict counter moved while a slot was "
                                  "free");
      } else if (all_positive && min_seen) {
        DAVINCI_CHECK_MSG(
            static_cast<int64_t>(st.ecnt[b]) <= evict_lambda_ * min_abs,
            where + ": ecnt " + std::to_string(st.ecnt[b]) +
                " exceeds lambda*min " +
                std::to_string(evict_lambda_ * min_abs));
      }
    }
  }
}

void FrequentPart::CollectStats(obs::FpHealth* out) const {
  const Storage& st = *store_;
  out->buckets = buckets_;
  out->slots = slots_;
  out->live_slots = 0;
  for (int64_t count : st.counts) {
    if (count != 0) ++out->live_slots;
  }
  out->flagged_buckets = 0;
  for (uint8_t flag : st.flags) {
    if (flag != 0) ++out->flagged_buckets;
  }
  out->ecnt_sum = 0;
  out->ecnt_max = 0;
  for (uint32_t ecnt : st.ecnt) {
    out->ecnt_sum += ecnt;
    if (ecnt > out->ecnt_max) out->ecnt_max = ecnt;
  }
  out->inserts = stats_.inserts.value();
  out->hits = stats_.hits.value();
  out->fills = stats_.fills.value();
  out->evictions = stats_.evictions.value();
  out->rejections = stats_.rejections.value();
}

void FrequentPart::OverwriteBucket(size_t bucket,
                                   const std::vector<Entry>& entries,
                                   bool flag) {
  DAVINCI_DCHECK_LT(bucket, buckets_);
  DAVINCI_DCHECK_LE(entries.size(), slots_);
  Storage& st = Mut();
  size_t base = bucket * stride_;
  for (size_t s = 0; s < slots_; ++s) {
    if (s < entries.size()) {
      st.keys[base + s] = entries[s].key;
      st.counts[base + s] = entries[s].count;
      st.tainted[base + s] = entries[s].tainted ? 1 : 0;
    } else {
      st.keys[base + s] = 0;
      st.counts[base + s] = 0;
      st.tainted[base + s] = 0;
    }
  }
  st.flags[bucket] = flag ? 1 : 0;
  st.ecnt[bucket] = 0;
}

}  // namespace davinci
