#include "core/frequent_part.h"

#include <algorithm>
#include <cstdlib>

#include "common/prefetch.h"
#include "common/serialize.h"

namespace davinci {

FrequentPart::FrequentPart(size_t buckets, size_t slots, int64_t evict_lambda,
                           uint64_t seed)
    : buckets_(std::max<size_t>(1, buckets)),
      slots_(std::max<size_t>(1, slots)),
      stride_(simd::PaddedSlots(std::max<size_t>(1, slots))),
      evict_lambda_(evict_lambda),
      hash_(seed * 21000277 + 17) {
  keys_.assign(buckets_ * stride_, 0);
  counts_.assign(buckets_ * stride_, 0);
  tainted_.assign(buckets_ * stride_, 0);
  ecnt_.assign(buckets_, 0);
  flags_.assign(buckets_, 0);
}

void FrequentPart::PrefetchBucket(uint64_t base_hash) const {
  size_t base = BucketOfBase(base_hash) * stride_;
  PrefetchWrite(&keys_[base]);
  PrefetchWrite(&counts_[base]);
  // A bucket's counts span stride_ × 8 bytes and may straddle a line.
  PrefetchWrite(&counts_[base + stride_ - 1]);
}

void FrequentPart::PrefetchBucketRead(uint64_t base_hash) const {
  size_t base = BucketOfBase(base_hash) * stride_;
  PrefetchRead(&keys_[base]);
  PrefetchRead(&counts_[base]);
  PrefetchRead(&counts_[base + stride_ - 1]);
}

FrequentPart::InsertResult FrequentPart::InsertWithHash(uint32_t key,
                                                        uint64_t base_hash,
                                                        int64_t count) {
  stats_.inserts.Inc();
  size_t bucket = BucketOfBase(base_hash);
  size_t base = bucket * stride_;

  // Case 1 first: one vector compare over the bucket's key lane. The
  // access tally mirrors the pre-SIMD slot walk (hit at slot s = s + 1
  // probes, full miss = slots_ probes) so MemoryAccesses() stays
  // backend-independent. Liveness is count != 0 so that difference tables
  // (negative counts) keep working.
  size_t hit = simd::FindLiveKey(&keys_[base], &counts_[base], stride_, key);
  if (hit != SIZE_MAX) {
    accesses_ += hit + 1;
    size_t i = base + hit;
    counts_[i] += count;
    if (i != base && std::llabs(counts_[i]) > std::llabs(counts_[i - 1])) {
      // Move-to-front: hot flows bubble toward the bucket head so their
      // next hit costs fewer probes.
      std::swap(keys_[i], keys_[i - 1]);
      std::swap(counts_[i], counts_[i - 1]);
      std::swap(tainted_[i], tainted_[i - 1]);
    }
    stats_.hits.Inc();
    return {};
  }
  accesses_ += slots_;

  size_t empty = simd::FindZeroCount(&counts_[base], stride_);
  if (empty < slots_) {  // case 2 (a padding slot does not count as free)
    size_t i = base + empty;
    keys_[i] = key;
    counts_[i] = count;
    tainted_[i] = 0;
    stats_.fills.Inc();
    return {};
  }

  // Bucket full: scalar scan for the resident minimum |count|.
  size_t min_slot = base;
  bool min_seen = false;
  for (size_t i = base; i < base + slots_; ++i) {
    if (!min_seen || std::llabs(counts_[i]) < std::llabs(counts_[min_slot])) {
      min_slot = i;
      min_seen = true;
    }
  }

  accesses_ += 2;  // ecnt + flag
  ecnt_[bucket] += 1;
  if (static_cast<int64_t>(ecnt_[bucket]) >
      evict_lambda_ * std::llabs(counts_[min_slot])) {
    // Case 3: evict the resident minimum toward the element filter. The
    // newcomer had earlier rejections routed to the filter, so it is
    // tainted.
    InsertResult result;
    result.action = InsertResult::Action::kEvicted;
    result.overflow_key = keys_[min_slot];
    result.overflow_count = counts_[min_slot];
    keys_[min_slot] = key;
    counts_[min_slot] = count;
    tainted_[min_slot] = 1;
    flags_[bucket] = 1;
    ecnt_[bucket] = 0;
    stats_.evictions.Inc();
    return result;
  }
  // Case 4: the incoming element is deemed infrequent.
  stats_.rejections.Inc();
  InsertResult result;
  result.action = InsertResult::Action::kRejected;
  result.overflow_key = key;
  result.overflow_count = count;
  return result;
}

bool FrequentPart::Contains(uint32_t key) const {
  bool tainted = false;
  return Query(key, &tainted) != 0;
}

std::vector<FrequentPart::Entry> FrequentPart::Entries() const {
  std::vector<Entry> entries;
  for (size_t b = 0; b < buckets_; ++b) {
    size_t base = b * stride_;
    for (size_t s = 0; s < slots_; ++s) {
      size_t i = base + s;
      if (counts_[i] != 0) {
        entries.push_back({keys_[i], counts_[i], tainted_[i] != 0});
      }
    }
  }
  return entries;
}

// Serialization carries only the logical buckets_ × slots_ entries, in the
// pre-padding layout — the byte stream is identical for every SIMD backend
// (and to pre-stride builds; the pinned digest in serialization_fuzz_test
// enforces this).
void FrequentPart::SaveState(std::ostream& out) const {
  std::vector<uint32_t> keys(buckets_ * slots_);
  std::vector<int64_t> counts(buckets_ * slots_);
  std::vector<uint8_t> tainted(buckets_ * slots_);
  for (size_t b = 0; b < buckets_; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      keys[b * slots_ + s] = keys_[b * stride_ + s];
      counts[b * slots_ + s] = counts_[b * stride_ + s];
      tainted[b * slots_ + s] = tainted_[b * stride_ + s];
    }
  }
  WriteVec(out, keys);
  WriteVec(out, counts);
  WriteVec(out, tainted);
  WriteVec(out, ecnt_);
  WriteVec(out, flags_);
}

bool FrequentPart::LoadState(std::istream& in) {
  std::vector<uint32_t> keys;
  std::vector<int64_t> counts;
  std::vector<uint8_t> tainted;
  std::vector<uint32_t> ecnt;
  std::vector<uint8_t> flags;
  if (!ReadVec(in, &keys) || !ReadVec(in, &counts) || !ReadVec(in, &tainted) ||
      !ReadVec(in, &ecnt) || !ReadVec(in, &flags)) {
    return false;
  }
  if (keys.size() != buckets_ * slots_ || counts.size() != keys.size() ||
      tainted.size() != keys.size() || ecnt.size() != ecnt_.size() ||
      flags.size() != flags_.size()) {
    return false;
  }
  keys_.assign(buckets_ * stride_, 0);
  counts_.assign(buckets_ * stride_, 0);
  tainted_.assign(buckets_ * stride_, 0);
  for (size_t b = 0; b < buckets_; ++b) {
    for (size_t s = 0; s < slots_; ++s) {
      keys_[b * stride_ + s] = keys[b * slots_ + s];
      counts_[b * stride_ + s] = counts[b * slots_ + s];
      tainted_[b * stride_ + s] = tainted[b * slots_ + s];
    }
  }
  ecnt_ = std::move(ecnt);
  flags_ = std::move(flags);
  return true;
}

void FrequentPart::CheckInvariants(InvariantMode mode) const {
  DAVINCI_CHECK_EQ(stride_, simd::PaddedSlots(slots_));
  DAVINCI_CHECK_EQ(keys_.size(), buckets_ * stride_);
  DAVINCI_CHECK_EQ(counts_.size(), buckets_ * stride_);
  DAVINCI_CHECK_EQ(tainted_.size(), buckets_ * stride_);
  DAVINCI_CHECK_EQ(ecnt_.size(), buckets_);
  DAVINCI_CHECK_EQ(flags_.size(), buckets_);
  for (size_t b = 0; b < buckets_; ++b) {
    const std::string where = "bucket " + std::to_string(b);
    DAVINCI_CHECK_MSG(flags_[b] <= 1, where);
    size_t base = b * stride_;
    // Padding slots must stay permanently empty or the vector probe could
    // surface a phantom entry.
    for (size_t s = slots_; s < stride_; ++s) {
      DAVINCI_CHECK_MSG(keys_[base + s] == 0 && counts_[base + s] == 0 &&
                            tainted_[base + s] == 0,
                        where + ": dirty padding slot " + std::to_string(s));
    }
    bool full = true;
    bool all_positive = true;
    int64_t min_abs = 0;
    bool min_seen = false;
    for (size_t s = 0; s < slots_; ++s) {
      size_t i = base + s;
      DAVINCI_CHECK_MSG(tainted_[i] <= 1, where);
      if (counts_[i] == 0) {
        full = false;
        continue;
      }
      DAVINCI_CHECK_MSG(BucketOf(keys_[i]) == b,
                        where + ": resident key " +
                            std::to_string(keys_[i]) + " hashes elsewhere");
      for (size_t t = s + 1; t < slots_; ++t) {
        DAVINCI_CHECK_MSG(counts_[base + t] == 0 || keys_[base + t] != keys_[i],
                          where + ": duplicate key " +
                              std::to_string(keys_[i]));
      }
      if (mode == InvariantMode::kAdditive) {
        DAVINCI_CHECK_MSG(counts_[i] > 0, where + ": nonpositive count");
      }
      if (counts_[i] < 0) all_positive = false;
      int64_t abs = std::llabs(counts_[i]);
      if (!min_seen || abs < min_abs) {
        min_abs = abs;
        min_seen = true;
      }
    }
    if (mode == InvariantMode::kAdditive) {
      if (!full) {
        DAVINCI_CHECK_MSG(ecnt_[b] == 0,
                          where + ": evict counter moved while a slot was "
                                  "free");
      } else if (all_positive && min_seen) {
        DAVINCI_CHECK_MSG(
            static_cast<int64_t>(ecnt_[b]) <= evict_lambda_ * min_abs,
            where + ": ecnt " + std::to_string(ecnt_[b]) +
                " exceeds lambda*min " +
                std::to_string(evict_lambda_ * min_abs));
      }
    }
  }
}

void FrequentPart::CollectStats(obs::FpHealth* out) const {
  out->buckets = buckets_;
  out->slots = slots_;
  out->live_slots = 0;
  for (int64_t count : counts_) {
    if (count != 0) ++out->live_slots;
  }
  out->flagged_buckets = 0;
  for (uint8_t flag : flags_) {
    if (flag != 0) ++out->flagged_buckets;
  }
  out->ecnt_sum = 0;
  out->ecnt_max = 0;
  for (uint32_t ecnt : ecnt_) {
    out->ecnt_sum += ecnt;
    if (ecnt > out->ecnt_max) out->ecnt_max = ecnt;
  }
  out->inserts = stats_.inserts.value();
  out->hits = stats_.hits.value();
  out->fills = stats_.fills.value();
  out->evictions = stats_.evictions.value();
  out->rejections = stats_.rejections.value();
}

void FrequentPart::OverwriteBucket(size_t bucket,
                                   const std::vector<Entry>& entries,
                                   bool flag) {
  DAVINCI_DCHECK_LT(bucket, buckets_);
  DAVINCI_DCHECK_LE(entries.size(), slots_);
  size_t base = bucket * stride_;
  for (size_t s = 0; s < slots_; ++s) {
    if (s < entries.size()) {
      keys_[base + s] = entries[s].key;
      counts_[base + s] = entries[s].count;
      tainted_[base + s] = entries[s].tainted ? 1 : 0;
    } else {
      keys_[base + s] = 0;
      counts_[base + s] = 0;
      tainted_[base + s] = 0;
    }
  }
  flags_[bucket] = flag ? 1 : 0;
  ecnt_[bucket] = 0;
}

}  // namespace davinci
