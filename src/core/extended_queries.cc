#include "core/extended_queries.h"

#include <algorithm>
#include <cstdlib>

namespace davinci {

double EstimateIntersectionCardinality(const DaVinciSketch& a,
                                       const DaVinciSketch& b) {
  DaVinciSketch merged = a;
  merged.Merge(b);
  double intersection = a.EstimateCardinality() + b.EstimateCardinality() -
                        merged.EstimateCardinality();
  return std::max(0.0, intersection);
}

double EstimateJaccard(const DaVinciSketch& a, const DaVinciSketch& b) {
  DaVinciSketch merged = a;
  merged.Merge(b);
  double union_card = merged.EstimateCardinality();
  if (union_card <= 0.0) return 0.0;
  double intersection = a.EstimateCardinality() + b.EstimateCardinality() -
                        union_card;
  return std::clamp(intersection / union_card, 0.0, 1.0);
}

std::vector<std::pair<uint32_t, int64_t>> TopK(const DaVinciSketch& sketch,
                                               size_t k) {
  // Threshold 0 enumerates every candidate the sketch can name: all FP
  // residents and all decoded medium flows.
  std::vector<std::pair<uint32_t, int64_t>> candidates =
      sketch.HeavyHitters(0);
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& x, const auto& y) {
              if (x.second != y.second) return x.second > y.second;
              return x.first < y.first;
            });
  if (candidates.size() > k) candidates.resize(k);
  return candidates;
}

int64_t FlowSizeQuantile(const DaVinciSketch& sketch, double q) {
  q = std::clamp(q, 0.0, 1.0);
  auto histogram = sketch.Distribution();
  double total = 0;
  for (const auto& [size, n] : histogram) {
    (void)size;
    total += static_cast<double>(n);
  }
  if (total <= 0) return 0;
  double cumulative = 0;
  int64_t last_size = 0;
  for (const auto& [size, n] : histogram) {
    cumulative += static_cast<double>(n);
    last_size = size;
    if (cumulative / total >= q) return size;
  }
  return last_size;
}

double EstimateSecondMoment(const DaVinciSketch& sketch) {
  return DaVinciSketch::InnerProduct(sketch, sketch);
}

std::vector<std::pair<uint32_t, int64_t>> WindowHeavyChangers(
    const EpochManager& engine, int64_t delta) {
  return engine.HeavyChangers(delta);
}

}  // namespace davinci
