#ifndef DAVINCI_CORE_DAVINCI_SKETCH_H_
#define DAVINCI_CORE_DAVINCI_SKETCH_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/thread_annotations.h"
#include "core/config.h"
#include "core/element_filter.h"
#include "core/frequent_part.h"
#include "core/infrequent_part.h"
#include "obs/health.h"

// DaVinci Sketch: one data structure, nine set-measurement tasks.
//
// Layout (paper §III):
//   frequent part   — exact (key, count) hash table with λ-vote eviction
//   element filter  — TowerSketch cold filter holding ≤ T units per flow
//   infrequent part — counting Fermat sketch holding everything beyond T
//
// A flow of size f is represented as f = f_FP + f_EF + f_IFP, where the FP
// share is exact, the EF share is ≈ min(f, T), and the IFP share is
// recoverable exactly by decode (or approximately by a count-sketch-style
// fast query). All nine tasks are answered from this decomposition.
//
// Two sketches built with the same DaVinciConfig (same seed!) are linear:
// Merge computes the union and Subtract the (signed) difference, after
// which every query keeps working on the result.
//
// Snapshot() returns an immutable SketchView in O(1): the three parts'
// flat buffers are copy-on-write (shared until the live sketch next
// mutates them), so acquiring a snapshot never copies counter state and
// writers never block on readers (DESIGN.md §10).

namespace davinci {

class SketchView;

// Serialization format selector (DESIGN.md §Wire format). kFlat is the
// original fixed-width POD dump — its byte layout is pinned by the FNV
// digest in tests/serialization_fuzz_test.cc and must never change.
// kCompressed is the DVSZ v1 container: varint + zero-run coding for the
// EF tower, sparse cells for the near-empty IFP, varint counts and
// bit-packed flags for the FP — typically >4x smaller on skewed traffic.
// Load() auto-detects the format, so both stay readable forever.
enum class SketchFormat : uint8_t {
  kFlat = 0,
  kCompressed = 1,
};

// DVSZ (full compressed image) and DVSD (delta image) container framing.
// The magic|version pair occupies the position of the flat format's
// leading fp_buckets u64; DaVinciConfig::Valid() caps fp_buckets at 2^24,
// so the sniff in Load() can never misread an honest flat image.
inline constexpr uint32_t kDvszMagic = 0x5A535644;    // "DVSZ" little-endian
inline constexpr uint32_t kDvszVersion = 1;
inline constexpr uint32_t kDvszTrailer = 0x4456535A;  // "ZSVD"
inline constexpr uint32_t kDvsdMagic = 0x44535644;    // "DVSD"
inline constexpr uint32_t kDvsdVersion = 1;
inline constexpr uint32_t kDvsdTrailer = 0x44565344;  // "DSVD"

class DaVinciSketch : public FrequencySketch, public HeavyHitterSketch {
 public:
  explicit DaVinciSketch(const DaVinciConfig& config);

  // Convenience: split `bytes` across the three parts with the default
  // 25/50/25 plan.
  DaVinciSketch(size_t bytes, uint64_t seed);

  // Copies share the parts' CoW buffers in O(1) but start with a COLD
  // decode cache: the cache pointer is the one member a shared SketchView
  // still writes (under its once-cell) after publication, so a copy that
  // read it would race the view's lazy decode. Nothing loses a warm cache
  // in practice — every write path invalidates it anyway. Moves transfer
  // the cache; they require exclusive ownership like any other mutation.
  DaVinciSketch(const DaVinciSketch& other);
  DaVinciSketch& operator=(const DaVinciSketch& other);
  DaVinciSketch(DaVinciSketch&&) = default;
  DaVinciSketch& operator=(DaVinciSketch&&) = default;

  std::string Name() const override { return "DaVinci"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;  // Algorithm 4
  uint64_t MemoryAccesses() const override;

  // ---- batched hot path ----
  // Block width of the insertion pipeline: stage A hashes a block's keys
  // once each and prefetches their FP bucket lines one block ahead of use;
  // stage B applies the FP inserts, prefetching the element-filter counters
  // of each overflow key the moment it is discovered; stage C drains the
  // block's overflow through EF and IFP.
  static constexpr size_t kInsertBlock = 64;

  // State-equivalent to `for (i) Insert(keys[i], counts[i])` — bit-for-bit:
  // the FP/EF/IFP state after a batch is identical to the single-insert
  // state, so every query answers the same. `counts` must match `keys` in
  // size.
  void InsertBatch(std::span<const uint32_t> keys,
                   std::span<const int64_t> counts);
  // Same with an implicit count of 1 per key.
  void InsertBatch(std::span<const uint32_t> keys);

  // Batched point queries, mirroring the insertion pipeline: each block's
  // base hashes are computed once and its FP bucket lines read-prefetched
  // one block ahead; the EF counters of keys that miss the FP (or hit a
  // tainted entry) are prefetched the moment the FP probe resolves.
  // Returns exactly what `for (i) Query(keys[i])` would — same decode
  // cache, same per-key result (tests/query_batch_test.cc pins this).
  std::vector<int64_t> QueryBatch(std::span<const uint32_t> keys) const;

  // ---- single-set tasks ----
  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;
  double EstimateCardinality() const;
  std::map<int64_t, int64_t> Distribution() const;
  double EstimateEntropy() const;

  // ---- multi-set tasks ----
  // Union (Algorithm 3): this += other. Requires identical configs.
  void Merge(const DaVinciSketch& other);
  // Signed difference: this -= other; keys only in `other` go negative.
  void Subtract(const DaVinciSketch& other);
  // Heavy changers between this window and `other`:
  // elements with |f_this − f_other| > delta.
  std::vector<std::pair<uint32_t, int64_t>> HeavyChangers(
      const DaVinciSketch& other, int64_t delta) const;
  // Cardinality of the inner join, decomposed into the nine FF..EE terms.
  static double InnerProduct(const DaVinciSketch& a, const DaVinciSketch& b);

  // ---- dynamic geometry (DESIGN.md §12) ----
  // The flows that survive a rebuild, in the deterministic replay order
  // the migration uses: FP entries in bucket/slot iteration order, then
  // the decoded IFP flows in ascending key order. EF-resident residue
  // (≤ T units per flow) is NOT enumerable — the tower is hash-indexed
  // with no key set — and is therefore absent here; see Resize() for when
  // it survives anyway.
  std::vector<std::pair<uint32_t, int64_t>> SurvivingFlows() const;

  // True when the EF tower state can be carried verbatim across a resize
  // from `from` to `to`: identical tower geometry (ef_bytes + level bits)
  // and seed, and a non-decreasing promotion threshold (lowering T would
  // leave carried per-flow residue above the new threshold, breaking the
  // "EF holds ≤ T per flow" invariant the decode cross-validation needs).
  static bool EfCarriesOver(const DaVinciConfig& from,
                            const DaVinciConfig& to);

  // Rebuilds *this into `new_config`'s geometry. Returns false (leaving
  // *this untouched) when GeometryCompatible says kIncompatible. When the
  // geometries are kIdentical this is a digest-preserving no-op that only
  // adopts the new runtime tuning knobs (the serialized image — and thus
  // the pinned flat-format digest — cannot change, because only geometry
  // fields are serialized). Otherwise the migration stages a fresh sketch
  // and move-commits atomically on success:
  //   1. If EfCarriesOver, the old tower is merged into the staged EF.
  //   2. SurvivingFlows() is replayed through the staged sketch's normal
  //      Insert path (so FP placement, eviction routing, and taint bits
  //      are exactly what honest ingestion would produce).
  //   3. With a carried EF, a taint-fixup pass marks replayed FP residents
  //      whose key shows EF residue, mirroring Merge's taint rule.
  // Accuracy contract: when the EF does not carry over, the result is
  // bit-identical to a fresh sketch of the new geometry fed
  // SurvivingFlows() in order — the EF residue (≤ T_old per flow) and any
  // undecodable IFP remainder are the documented loss. When the EF does
  // carry over, that residue survives too and per-flow answers stay
  // within the old sketch's own error bounds. Requires additive state
  // (InvariantMode::kAdditive) — resizing a subtracted sketch is
  // unsupported. Insert/query telemetry tallies carry across.
  bool Resize(const DaVinciConfig& new_config);

  // ---- snapshots ----
  // O(1) immutable snapshot: the view shares the parts' CoW buffers with
  // the live sketch, so no counter state is copied now and the live
  // sketch's next write to a shared buffer clones it instead of mutating
  // the view's copy. The caller must externally synchronize Snapshot()
  // with concurrent writes to *this* sketch (ConcurrentDaVinci does so
  // under its shard mutex); once returned, the view is safe to read from
  // any number of threads with no further synchronization.
  std::shared_ptr<const SketchView> Snapshot() const;

  // ---- persistence ----
  // Binary serialization: the config is written first, then the raw state
  // of the three parts. Load reconstructs an identical sketch (same seeds,
  // so it stays mergeable with its siblings) from either format — it
  // sniffs the leading u64 for the DVSZ magic and otherwise reads flat.
  void Save(std::ostream& out) const;
  void Save(std::ostream& out, SketchFormat format) const;
  static bool Load(std::istream& in, DaVinciSketch* sketch);

  // ---- delta images (DVSD) ----
  // SealDelta() pins the three parts' current CoW storage as the delta
  // base — free on the hot path; the next write to each part clones once,
  // exactly as an outstanding Snapshot() would force. SaveDelta() encodes
  // only the cells/buckets touched since the seal; ApplyDelta() replays
  // such an image onto a replica holding the base state, after which the
  // replica is bit-identical to the sealed writer (wire_format_test pins
  // this with the flat-image digest). ApplyDelta requires matching
  // geometry and rejects hostile images without mutating *this.
  void SealDelta();
  void SaveDelta(std::ostream& out) const;
  bool ApplyDelta(std::istream& in);

  // Aborts (DAVINCI_CHECK) on a violated structural invariant: the three
  // parts' geometry matches the config, every part-level audit passes
  // (see FrequentPart/ElementFilter/InfrequentPart::CheckInvariants), and
  // the decode cache — if populated — holds no zero-count flows. Pass
  // kAdditive only if the sketch saw nothing but nonnegative inserts and
  // merges.
  void CheckInvariants(InvariantMode mode) const;

  // ---- introspection ----
  // Populates a HealthSnapshot from the three parts' CollectStats hooks
  // plus the sketch-level insert/query tallies. Structural fields (slot
  // occupancy, tower saturation, IFP load) are always live; event counters
  // are zero unless built with DAVINCI_STATS (see docs/OBSERVABILITY.md).
  void CollectStats(obs::HealthSnapshot* out) const;

  const DaVinciConfig& config() const { return config_; }
  const FrequentPart& frequent_part() const { return fp_; }
  const ElementFilter& element_filter() const { return ef_; }
  const InfrequentPart& infrequent_part() const { return ifp_; }
  // Cached full decode of the infrequent part (flow -> signed count).
  const std::unordered_map<uint32_t, int64_t>& DecodedFlows() const;

 private:
  // SketchView drives the FP-probe fast path + ResolveQuery tail directly
  // (materializing the decode cache exactly once via its own once-cell).
  friend class SketchView;

  // Shared tail of Query/QueryBatch: combines an already-computed FP probe
  // result with the EF/IFP shares per Algorithm 4. `base_hash` must equal
  // HashFamily::BaseHash(key); `fp_count`/`tainted` must come from the FP
  // probe of that key. HeavyHitters/Distribution call this directly with
  // the FP entry they are iterating, skipping the redundant re-probe.
  int64_t ResolveQuery(uint32_t key, uint64_t base_hash, int64_t fp_count,
                       bool tainted) const;
  // Routes an overflow (evicted or rejected element) through EF then IFP.
  void RouteToFilter(uint32_t key, int64_t count);
  void RouteToFilterWithHash(uint32_t key, uint64_t base_hash, int64_t count);
  // Shared implementation of Merge/Subtract.
  void Combine(const DaVinciSketch& other, bool subtract);
  void InvalidateDecodeCache() { decode_cache_.reset(); }

  DaVinciConfig config_;
  FrequentPart fp_;
  ElementFilter ef_;
  InfrequentPart ifp_;
  // Per-instance immutable decode cache, built lazily by DecodedFlows().
  // Deliberately NOT propagated by copies (see the copy constructor): a
  // published SketchView fills it under its once-cell while other threads
  // may be copying the view's sketch, so copies must not read it.
  mutable std::shared_ptr<const std::unordered_map<uint32_t, int64_t>>
      decode_cache_;

  // Telemetry (no-ops unless built with DAVINCI_STATS); queries_ is
  // mutable because Query() is const, and relaxed-atomic because snapshot
  // views run Query concurrently from many reader threads.
  obs::EventCounter inserts_;
  mutable obs::SharedEventCounter queries_;
};

// An immutable, internally-synchronized view of a DaVinciSketch, produced
// by DaVinciSketch::Snapshot(). The view owns a CoW copy of the sketch:
// buffers stay shared with the live sketch until the live side writes, so
// the view's answers are frozen at snapshot time ("bit-stable") no matter
// what the writer does afterwards.
//
// Thread safety: every method is safe to call concurrently from any number
// of threads. The only lazily-built state — the IFP decode cache — is
// materialized through an annotated double-checked once-cell (Decoded());
// the pure FP fast path never waits on it, so point queries that the
// frequent part settles stay decode-free.
class SketchView {
 public:
  explicit SketchView(const DaVinciSketch& sketch) : sketch_(sketch) {}
  SketchView(const SketchView&) = delete;
  SketchView& operator=(const SketchView&) = delete;

  int64_t Query(uint32_t key) const;
  std::vector<int64_t> QueryBatch(std::span<const uint32_t> keys) const;
  // Pure read over the EF bottom level + FP entries; never decodes.
  double EstimateCardinality() const { return sketch_.EstimateCardinality(); }
  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const;

  // The frozen sketch itself, for merged-task queries (Merge a copy,
  // InnerProduct, Save, ...). Callers must treat it as const.
  const DaVinciSketch& sketch() const { return sketch_; }

  size_t MemoryBytes() const { return sketch_.MemoryBytes(); }

 private:
  // Materializes the decode cache exactly once (thread-safe); afterwards
  // every DecodedFlows() call inside the query tail is a const read.
  // call_once-equivalent, but written as an annotated double-checked
  // once-cell: std::once_flag is opaque to Thread Safety Analysis, and
  // this is the one lazy write behind the "immutable" view, so it is
  // exactly the state the analysis must see (EXCLUDES catches a Decoded()
  // call from a context already holding the fill lock).
  void Decoded() const DAVINCI_EXCLUDES(decode_mu_);

  DaVinciSketch sketch_;
  // decode_ready_ is the lock-free fast-path flag (release-published after
  // the fill, acquire-checked by readers); decode_filled_ is the guarded
  // source of truth that makes losers of the fill race skip the decode.
  mutable Mutex decode_mu_;
  mutable std::atomic<bool> decode_ready_{false};
  mutable bool decode_filled_ DAVINCI_GUARDED_BY(decode_mu_) = false;
};

}  // namespace davinci

#endif  // DAVINCI_CORE_DAVINCI_SKETCH_H_
