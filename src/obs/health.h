#ifndef DAVINCI_OBS_HEALTH_H_
#define DAVINCI_OBS_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/stats.h"

// HealthSnapshot: a point-in-time view of a DaVinci Sketch's internal
// dynamics, populated by the CollectStats() hooks on the three parts
// (docs/OBSERVABILITY.md maps every field to the paper's Algorithms 1/3/5).
//
// Two kinds of fields coexist:
//  - structural scans (slot occupancy, tower saturation, IFP bucket load):
//    recomputed from sketch state on every CollectStats() call, available
//    regardless of DAVINCI_STATS;
//  - event counters (evictions, promotions, decode rejects): accumulated in
//    the hot paths, zero when the build has DAVINCI_STATS off (check
//    `stats_enabled`).

namespace davinci::obs {

// Frequent part (Algorithm 1: λ-vote eviction).
struct FpHealth {
  // Structural scan.
  size_t buckets = 0;
  size_t slots = 0;            // per bucket
  size_t live_slots = 0;       // entries with count != 0
  size_t flagged_buckets = 0;  // evict flag set (bucket ever evicted)
  uint64_t ecnt_sum = 0;       // Σ per-bucket evict counters
  uint32_t ecnt_max = 0;
  // Event counters (Algorithm 1's four cases).
  uint64_t inserts = 0;
  uint64_t hits = 0;        // case 1: key already resident
  uint64_t fills = 0;       // case 2: took a free slot
  uint64_t evictions = 0;   // case 3: λ-vote evicted the resident minimum
  uint64_t rejections = 0;  // case 4: newcomer deemed infrequent

  double Occupancy() const {
    size_t total = buckets * slots;
    return total == 0 ? 0.0
                      : static_cast<double>(live_slots) /
                            static_cast<double>(total);
  }
};

// One tower level of the element filter.
struct EfLevelHealth {
  size_t width = 0;      // counters at this level
  int bits = 0;          // design counter width
  int64_t cap = 0;       // saturation value
  size_t saturated = 0;  // counters pinned at cap
  size_t zeros = 0;      // untouched counters

  double SaturationFraction() const {
    return width == 0 ? 0.0
                      : static_cast<double>(saturated) /
                            static_cast<double>(width);
  }
};

// Element filter (cold filter with threshold T).
struct EfHealth {
  int64_t threshold = 0;  // T
  std::vector<EfLevelHealth> levels;
  // Event counters.
  uint64_t inserts = 0;
  uint64_t promotions = 0;      // inserts whose overflow crossed T
  uint64_t promoted_units = 0;  // Σ |overflow| handed to the IFP
};

// Infrequent part (Algorithm 5: Fermat peeling with EF cross-validation).
struct IfpHealth {
  // Structural scan.
  size_t rows = 0;
  size_t width = 0;  // buckets per row
  size_t empty_buckets = 0;
  // Configured Decode() worker count (DaVinciConfig::decode_threads) —
  // runtime tuning, not serialized sketch state; shard aggregation takes
  // the max.
  size_t decode_threads = 1;
  // Event counters.
  uint64_t inserts = 0;
  uint64_t decode_runs = 0;    // full Decode() invocations
  uint64_t decoded_flows = 0;  // flows recovered across all runs
  // Pure-looking buckets whose candidate failed the element-filter
  // cross-check (the paper's double verification rejecting false decodes).
  uint64_t decode_rejected_by_filter = 0;

  double Load() const {
    size_t total = rows * width;
    return total == 0 ? 0.0
                      : 1.0 - static_cast<double>(empty_buckets) /
                                  static_cast<double>(total);
  }
};

// Epoch engine (EpochManager: rotation + memoized window merges, see
// DESIGN.md §10). All fields are structural/rotation-granularity counters,
// live regardless of DAVINCI_STATS; zero when the snapshot came from a
// plain sketch.
struct EpochHealth {
  size_t window_epochs = 0;     // configured W
  size_t epochs_in_window = 0;  // sealed + live currently covered
  uint64_t rotations = 0;       // Advance() calls
  // Sealed epochs answered from a memoized suffix/accumulator merge
  // instead of being re-merged (summed per window query).
  uint64_t window_merge_hits = 0;
  // Merges spent maintaining the memo (per-Advance accumulation + the
  // amortized suffix rebuilds).
  uint64_t window_rebuild_merges = 0;
  // Process-wide CowTally readings at collect time (max on Accumulate —
  // the tally is global, summing would double count).
  uint64_t cow_clones = 0;
  uint64_t cow_clone_bytes = 0;
};

// Runtime query-path tuning in effect at collect time: the adaptive-batch
// and decode-sharding knobs from DaVinciConfig plus the concurrent
// wrapper's publish interval. Pure tuning, never serialized sketch state;
// shard aggregation takes the max (shards share one config).
struct TuningHealth {
  size_t batch_query_min_keys = 0;
  size_t batch_query_block = 0;
  size_t batch_prefetch_distance = 0;
  size_t decode_min_buckets_per_worker = 0;
  size_t publish_interval = 0;  // 0 unless collected from ConcurrentDaVinci
};

// Fan-in merge-tree provenance (server kImportMerge aggregation, see
// docs/SERVER.md §Export / ImportMerge). A tenant that has only ever
// ingested raw traffic sits at height 0; importing images whose tallest
// source has height h lifts the target to h+1, so `height` reads off how
// many aggregation hops separate this view from raw ingest. Structural
// counters, live regardless of DAVINCI_STATS.
struct MergeTreeHealth {
  uint32_t height = 0;            // max source height + 1, 0 = leaf
  uint64_t import_requests = 0;   // kImportMerge frames applied
  uint64_t imported_images = 0;   // shard images folded in, total
  uint64_t imported_bytes = 0;    // wire bytes of those images
  // imported_images bucketed by the level they arrived at (the height of
  // the target AFTER the import): index 0 counts leaf-to-leaf folds,
  // higher indexes deeper aggregation tiers. Capped at kMaxTrackedLevels;
  // deeper imports land in the last bucket.
  static constexpr size_t kMaxTrackedLevels = 8;
  std::vector<uint64_t> images_per_level;
};

// Dynamic-geometry provenance (DaVinciSketch::Resize via ConcurrentDaVinci
// / EpochManager / the server's kResizeTenant — see DESIGN.md §12). What
// triggered the last applied resize, and the footprint it moved between.
// Structural counters, live regardless of DAVINCI_STATS.
struct ResizeHealth {
  // What asked for the last applied resize.
  enum Trigger : uint32_t {
    kNone = 0,      // never resized
    kAdmin = 1,     // kResizeTenant / an explicit Resize call
    kAutotune = 2,  // the continuous autotune controller
  };
  uint64_t applied = 0;   // geometry swaps committed
  uint64_t rejected = 0;  // requests refused (incompatible geometry / quota)
  uint64_t bytes_before = 0;  // design bytes before the last applied swap
  uint64_t bytes_after = 0;   // design bytes after it
  uint32_t last_trigger = kNone;
};

struct HealthSnapshot {
  bool stats_enabled = kStatsEnabled;
  size_t shards = 1;  // > 1 when collected from a ConcurrentDaVinci
  size_t memory_bytes = 0;
  uint64_t inserts = 0;  // sketch-level Insert/InsertBatch keys
  uint64_t queries = 0;
  FpHealth fp;
  EfHealth ef;
  IfpHealth ifp;
  EpochHealth epoch;
  TuningHealth tuning;
  MergeTreeHealth merge_tree;
  ResizeHealth resize;

  // Shard aggregation: sums capacities, scans and counters; takes the max
  // of ecnt_max; merges tower levels element-wise (shards share geometry).
  void Accumulate(const HealthSnapshot& other);

  // Single JSON object, no trailing newline.
  void WriteJson(std::ostream& out) const;
};

}  // namespace davinci::obs

#endif  // DAVINCI_OBS_HEALTH_H_
