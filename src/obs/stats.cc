#include "obs/stats.h"

#include <bit>
#include <ostream>

namespace davinci::obs {

namespace {

// Log-linear index (HDR style). Values below 8 get an exact bucket; any
// wider value is keyed by its bit length (the log2 major bucket) plus the
// three bits after the leading one (8 linear sub-buckets per major), so
// bucket width never exceeds 1/8 of the bucket's lower bound.
size_t BucketOf(uint64_t nanos) {
  if (nanos < 8) return static_cast<size_t>(nanos);
  size_t msb = static_cast<size_t>(std::bit_width(nanos)) - 1;  // >= 3
  size_t sub = static_cast<size_t>(nanos >> (msb - 3)) & 7;
  return 8 + (msb - 3) * 8 + sub;
}

// Largest value BucketOf maps to `bucket` (saturating at UINT64_MAX for
// the top buckets, whose nominal bound overflows 64 bits).
uint64_t BucketUpperBound(size_t bucket) {
  if (bucket < 8) return bucket;
  size_t major = (bucket - 8) / 8;  // msb - 3
  uint64_t sub = (bucket - 8) % 8;
  if (major >= 60) return UINT64_MAX;
  return ((8 + sub + 1) << major) - 1;
}

}  // namespace

void LatencyHistogram::Record(uint64_t nanos) {
  buckets_[BucketOf(nanos)].fetch_add(1, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_.compare_exchange_weak(seen, nanos, std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::Count() const {
  uint64_t total = 0;
  for (const auto& bucket : buckets_) {
    total += bucket.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t LatencyHistogram::PercentileNanos(double p) const {
  uint64_t total = Count();
  if (total == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the requested quantile, 1-based; cumulative walk finds its
  // bucket.
  uint64_t rank = static_cast<uint64_t>(p * static_cast<double>(total));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // The top bucket's nominal bound can exceed the true max; clamp so
      // reported percentiles never exceed the observed maximum.
      uint64_t bound = BucketUpperBound(i);
      uint64_t max = MaxNanos();
      return bound < max ? bound : max;
    }
  }
  return MaxNanos();
}

namespace {
std::atomic<uint64_t> g_cow_clones{0};
std::atomic<uint64_t> g_cow_clone_bytes{0};
}  // namespace

void CowTally::RecordClone(size_t bytes) {
  g_cow_clones.fetch_add(1, std::memory_order_relaxed);
  g_cow_clone_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

uint64_t CowTally::Clones() {
  return g_cow_clones.load(std::memory_order_relaxed);
}

uint64_t CowTally::CloneBytes() {
  return g_cow_clone_bytes.load(std::memory_order_relaxed);
}

void CowTally::ResetForTesting() {
  g_cow_clones.store(0, std::memory_order_relaxed);
  g_cow_clone_bytes.store(0, std::memory_order_relaxed);
}

StatsRegistry& StatsRegistry::Global() {
  static StatsRegistry* registry = new StatsRegistry();
  return *registry;
}

std::atomic<uint64_t>& StatsRegistry::Counter(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<std::atomic<uint64_t>>(0);
  return *slot;
}

LatencyHistogram& StatsRegistry::Histogram(const std::string& name) {
  MutexLock lock(&mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return *slot;
}

void StatsRegistry::DumpJson(std::ostream& out) const {
  MutexLock lock(&mutex_);
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name
        << "\":" << counter->load(std::memory_order_relaxed);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"count\":" << histogram->Count()
        << ",\"p50_ns\":" << histogram->PercentileNanos(0.50)
        << ",\"p99_ns\":" << histogram->PercentileNanos(0.99)
        << ",\"max_ns\":" << histogram->MaxNanos() << "}";
  }
  out << "}}";
}

void StatsRegistry::Reset() {
  MutexLock lock(&mutex_);
  counters_.clear();
  histograms_.clear();
}

}  // namespace davinci::obs
