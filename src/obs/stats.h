#ifndef DAVINCI_OBS_STATS_H_
#define DAVINCI_OBS_STATS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "common/thread_annotations.h"

// Observability primitives (see docs/OBSERVABILITY.md).
//
// Two tiers with different cost models:
//
//  - EventCounter: a per-structure event tally embedded in the sketch hot
//    paths (FP evictions, EF promotions, IFP decode rejects, ...). Gated by
//    the compile-time DAVINCI_STATS flag: with stats on it is a plain
//    uint64_t increment (the structures are externally synchronized, so no
//    atomics are needed); with stats off every method is an empty inline
//    and the compiler removes the hook entirely — the release-off build is
//    bit- and speed-identical to an uninstrumented one.
//
//  - StatsRegistry / LatencyHistogram: process-wide named atomic counters
//    and log-scale latency histograms (p50/p99/max) for harness-level
//    instrumentation (benches, servers). Always compiled: these live at
//    block/operation granularity, never inside the per-key hot loop.
//
// Serialized sketch state never includes any of this, so DAVINCI_STATS=ON
// and =OFF builds produce byte-identical Save() output
// (tests/serialization_fuzz_test.cc pins a digest to enforce it).

namespace davinci::obs {

#ifdef DAVINCI_STATS
inline constexpr bool kStatsEnabled = true;

// Plain (non-atomic) event tally. Embedded in structures that are either
// single-threaded or externally locked (DaVinciSketch under its
// ConcurrentDaVinci shard mutex), so a bare increment is race-free.
class EventCounter {
 public:
  void Inc(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};
// Relaxed-atomic event tally for counters bumped on *shared* read paths
// (DaVinciSketch query tallies on published snapshots, ConcurrentDaVinci
// lock-free reads). Copying reads the value — a snapshot starts with the
// live sketch's tally and diverges independently. Stats-off builds compile
// it away exactly like EventCounter.
class SharedEventCounter {
 public:
  SharedEventCounter() = default;
  SharedEventCounter(const SharedEventCounter& other)
      : value_(other.value()) {}
  SharedEventCounter& operator=(const SharedEventCounter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};
#else
inline constexpr bool kStatsEnabled = false;

// Stats-off stub: every call site compiles to nothing.
class EventCounter {
 public:
  void Inc(uint64_t = 1) {}
  uint64_t value() const { return 0; }
};

class SharedEventCounter {
 public:
  void Inc(uint64_t = 1) {}
  uint64_t value() const { return 0; }
};
#endif

// Process-wide tally of copy-on-write buffer clones (see DESIGN.md §10):
// every time a part's write path clones its storage because a snapshot
// still shares it, the clone's byte size lands here. Always compiled —
// clones happen at whole-buffer granularity, never per key — so tests can
// assert "no snapshot outstanding → no clone" in every build mode, and
// benches can report snapshot write amplification.
class CowTally {
 public:
  static void RecordClone(size_t bytes);
  static uint64_t Clones();
  static uint64_t CloneBytes();
  // Zeroes both tallies (test/bench-only; racing writers may be mid-count).
  static void ResetForTesting();
};

// Lock-free log-linear histogram (HDR style): each power-of-two range is
// split into 8 linear sub-buckets, bounding the quantization error at
// 12.5% of the sample value instead of the 2x a pure log2 bucketing
// allows. The distinction matters for tight distributions — a decode whose
// samples all sit between 28ms and 33ms spans several sub-buckets here,
// where one factor-of-2 bucket would swallow the lot and report
// p50 == p99 == max. Record is one relaxed fetch_add plus a relaxed max
// update; safe from any number of threads.
class LatencyHistogram {
 public:
  void Record(uint64_t nanos);

  uint64_t Count() const;
  uint64_t MaxNanos() const { return max_.load(std::memory_order_relaxed); }
  // Upper bound of the sub-bucket holding the p-quantile (p in (0, 1]),
  // clamped to the observed maximum. Returns 0 when empty.
  uint64_t PercentileNanos(double p) const;

  // Values 0..7 get exact buckets; each wider bit-length contributes 8
  // linear sub-buckets, up to bit length 64: 8 + 61*8 = 496.
  static constexpr size_t kBuckets = 496;

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> max_{0};
};

// Times a scope and records the elapsed nanoseconds into a histogram.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(LatencyHistogram* histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyTimer() {
    if (histogram_ == nullptr) return;
    auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  LatencyHistogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

// Process-wide name -> counter/histogram registry. Registration takes a
// mutex (the maps are GUARDED_BY it — the TSA build rejects an unlocked
// touch); the returned references are stable for the registry's lifetime,
// so callers resolve a name once and then update lock-free.
class StatsRegistry {
 public:
  static StatsRegistry& Global();

  std::atomic<uint64_t>& Counter(const std::string& name)
      DAVINCI_EXCLUDES(mutex_);
  LatencyHistogram& Histogram(const std::string& name)
      DAVINCI_EXCLUDES(mutex_);

  // {"counters": {...}, "histograms": {name: {count,p50,p99,max}, ...}}
  void DumpJson(std::ostream& out) const DAVINCI_EXCLUDES(mutex_);

  // Drops every registered counter and histogram (previously returned
  // references dangle — test-only).
  void Reset() DAVINCI_EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<std::atomic<uint64_t>>> counters_
      DAVINCI_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      DAVINCI_GUARDED_BY(mutex_);
};

}  // namespace davinci::obs

#endif  // DAVINCI_OBS_STATS_H_
