#include "obs/health.h"

#include <algorithm>
#include <ostream>

namespace davinci::obs {

void HealthSnapshot::Accumulate(const HealthSnapshot& other) {
  stats_enabled = stats_enabled && other.stats_enabled;
  shards += other.shards;
  memory_bytes += other.memory_bytes;
  inserts += other.inserts;
  queries += other.queries;

  fp.buckets += other.fp.buckets;
  fp.slots = std::max(fp.slots, other.fp.slots);
  fp.live_slots += other.fp.live_slots;
  fp.flagged_buckets += other.fp.flagged_buckets;
  fp.ecnt_sum += other.fp.ecnt_sum;
  fp.ecnt_max = std::max(fp.ecnt_max, other.fp.ecnt_max);
  fp.inserts += other.fp.inserts;
  fp.hits += other.fp.hits;
  fp.fills += other.fp.fills;
  fp.evictions += other.fp.evictions;
  fp.rejections += other.fp.rejections;

  ef.threshold = std::max(ef.threshold, other.ef.threshold);
  if (ef.levels.size() < other.ef.levels.size()) {
    ef.levels.resize(other.ef.levels.size());
  }
  for (size_t i = 0; i < other.ef.levels.size(); ++i) {
    EfLevelHealth& mine = ef.levels[i];
    const EfLevelHealth& theirs = other.ef.levels[i];
    mine.width += theirs.width;
    mine.bits = std::max(mine.bits, theirs.bits);
    mine.cap = std::max(mine.cap, theirs.cap);
    mine.saturated += theirs.saturated;
    mine.zeros += theirs.zeros;
  }
  ef.inserts += other.ef.inserts;
  ef.promotions += other.ef.promotions;
  ef.promoted_units += other.ef.promoted_units;

  ifp.rows = std::max(ifp.rows, other.ifp.rows);
  ifp.width += other.ifp.width;
  ifp.empty_buckets += other.ifp.empty_buckets;
  ifp.decode_threads = std::max(ifp.decode_threads, other.ifp.decode_threads);
  ifp.inserts += other.ifp.inserts;
  ifp.decode_runs += other.ifp.decode_runs;
  ifp.decoded_flows += other.ifp.decoded_flows;
  ifp.decode_rejected_by_filter += other.ifp.decode_rejected_by_filter;

  epoch.window_epochs = std::max(epoch.window_epochs, other.epoch.window_epochs);
  epoch.epochs_in_window += other.epoch.epochs_in_window;
  epoch.rotations += other.epoch.rotations;
  epoch.window_merge_hits += other.epoch.window_merge_hits;
  epoch.window_rebuild_merges += other.epoch.window_rebuild_merges;
  epoch.cow_clones = std::max(epoch.cow_clones, other.epoch.cow_clones);
  epoch.cow_clone_bytes =
      std::max(epoch.cow_clone_bytes, other.epoch.cow_clone_bytes);

  tuning.batch_query_min_keys =
      std::max(tuning.batch_query_min_keys, other.tuning.batch_query_min_keys);
  tuning.batch_query_block =
      std::max(tuning.batch_query_block, other.tuning.batch_query_block);
  tuning.batch_prefetch_distance = std::max(
      tuning.batch_prefetch_distance, other.tuning.batch_prefetch_distance);
  tuning.decode_min_buckets_per_worker =
      std::max(tuning.decode_min_buckets_per_worker,
               other.tuning.decode_min_buckets_per_worker);
  tuning.publish_interval =
      std::max(tuning.publish_interval, other.tuning.publish_interval);

  // Merge-tree provenance: the height of an aggregate view is its tallest
  // contributor; the counters sum; the per-level histogram merges
  // element-wise.
  merge_tree.height = std::max(merge_tree.height, other.merge_tree.height);
  merge_tree.import_requests += other.merge_tree.import_requests;
  merge_tree.imported_images += other.merge_tree.imported_images;
  merge_tree.imported_bytes += other.merge_tree.imported_bytes;
  if (merge_tree.images_per_level.size() <
      other.merge_tree.images_per_level.size()) {
    merge_tree.images_per_level.resize(
        other.merge_tree.images_per_level.size(), 0);
  }
  for (size_t i = 0; i < other.merge_tree.images_per_level.size(); ++i) {
    merge_tree.images_per_level[i] += other.merge_tree.images_per_level[i];
  }

  // Resize provenance: the request tallies sum; the before/after footprint
  // and trigger describe ONE (the most recent) swap, so the side that has
  // seen more applied swaps wins — with a tie the non-empty one does.
  resize.rejected += other.resize.rejected;
  if (other.resize.applied > 0 &&
      (resize.applied == 0 || other.resize.applied >= resize.applied)) {
    resize.bytes_before = other.resize.bytes_before;
    resize.bytes_after = other.resize.bytes_after;
    resize.last_trigger = other.resize.last_trigger;
  }
  resize.applied += other.resize.applied;
}

void HealthSnapshot::WriteJson(std::ostream& out) const {
  out << "{\"stats_enabled\":" << (stats_enabled ? "true" : "false")
      << ",\"shards\":" << shards << ",\"memory_bytes\":" << memory_bytes
      << ",\"inserts\":" << inserts << ",\"queries\":" << queries;

  out << ",\"fp\":{\"buckets\":" << fp.buckets << ",\"slots\":" << fp.slots
      << ",\"live_slots\":" << fp.live_slots << ",\"occupancy\":"
      << fp.Occupancy() << ",\"flagged_buckets\":" << fp.flagged_buckets
      << ",\"ecnt_sum\":" << fp.ecnt_sum << ",\"ecnt_max\":" << fp.ecnt_max
      << ",\"inserts\":" << fp.inserts << ",\"hits\":" << fp.hits
      << ",\"fills\":" << fp.fills << ",\"evictions\":" << fp.evictions
      << ",\"rejections\":" << fp.rejections << "}";

  out << ",\"ef\":{\"threshold\":" << ef.threshold << ",\"levels\":[";
  for (size_t i = 0; i < ef.levels.size(); ++i) {
    const EfLevelHealth& level = ef.levels[i];
    if (i > 0) out << ",";
    out << "{\"width\":" << level.width << ",\"bits\":" << level.bits
        << ",\"cap\":" << level.cap << ",\"saturated\":" << level.saturated
        << ",\"saturation\":" << level.SaturationFraction()
        << ",\"zeros\":" << level.zeros << "}";
  }
  out << "],\"inserts\":" << ef.inserts << ",\"promotions\":" << ef.promotions
      << ",\"promoted_units\":" << ef.promoted_units << "}";

  out << ",\"ifp\":{\"rows\":" << ifp.rows << ",\"width\":" << ifp.width
      << ",\"empty_buckets\":" << ifp.empty_buckets << ",\"load\":"
      << ifp.Load() << ",\"decode_threads\":" << ifp.decode_threads
      << ",\"inserts\":" << ifp.inserts << ",\"decode_runs\":"
      << ifp.decode_runs << ",\"decoded_flows\":" << ifp.decoded_flows
      << ",\"decode_rejected_by_filter\":" << ifp.decode_rejected_by_filter
      << "}";

  out << ",\"epoch\":{\"window_epochs\":" << epoch.window_epochs
      << ",\"epochs_in_window\":" << epoch.epochs_in_window
      << ",\"rotations\":" << epoch.rotations << ",\"window_merge_hits\":"
      << epoch.window_merge_hits << ",\"window_rebuild_merges\":"
      << epoch.window_rebuild_merges << ",\"cow_clones\":" << epoch.cow_clones
      << ",\"cow_clone_bytes\":" << epoch.cow_clone_bytes << "}";

  out << ",\"tuning\":{\"batch_query_min_keys\":" << tuning.batch_query_min_keys
      << ",\"batch_query_block\":" << tuning.batch_query_block
      << ",\"batch_prefetch_distance\":" << tuning.batch_prefetch_distance
      << ",\"decode_min_buckets_per_worker\":"
      << tuning.decode_min_buckets_per_worker
      << ",\"publish_interval\":" << tuning.publish_interval << "}";

  out << ",\"merge_tree\":{\"height\":" << merge_tree.height
      << ",\"import_requests\":" << merge_tree.import_requests
      << ",\"imported_images\":" << merge_tree.imported_images
      << ",\"imported_bytes\":" << merge_tree.imported_bytes
      << ",\"images_per_level\":[";
  for (size_t i = 0; i < merge_tree.images_per_level.size(); ++i) {
    if (i > 0) out << ",";
    out << merge_tree.images_per_level[i];
  }
  out << "]}";

  out << ",\"resize\":{\"applied\":" << resize.applied
      << ",\"rejected\":" << resize.rejected
      << ",\"bytes_before\":" << resize.bytes_before
      << ",\"bytes_after\":" << resize.bytes_after
      << ",\"last_trigger\":" << resize.last_trigger << "}";

  out << "}";
}

}  // namespace davinci::obs
