#include "estimators/ams_entropy.h"

#include <cmath>

namespace davinci {

AmsEntropyEstimator::AmsEntropyEstimator(size_t samples, uint64_t seed)
    : samples_(samples < 1 ? 1 : samples), rng_(seed * 36001391 + 21) {}

void AmsEntropyEstimator::Insert(uint32_t key) {
  ++length_;
  for (Sample& sample : samples_) {
    // Reservoir sampling of positions: replace with probability 1/length.
    if (rng_() % static_cast<uint64_t>(length_) == 0) {
      sample.key = key;
      sample.tail_count = 1;
    } else if (sample.tail_count > 0 && sample.key == key) {
      ++sample.tail_count;
    }
  }
}

double AmsEntropyEstimator::EstimateEntropy() const {
  if (length_ <= 0) return 0.0;
  double m = static_cast<double>(length_);
  double sum = 0.0;
  size_t counted = 0;
  for (const Sample& sample : samples_) {
    if (sample.tail_count <= 0) continue;
    double r = static_cast<double>(sample.tail_count);
    double x = r * std::log(m / r);
    if (sample.tail_count > 1) {
      x -= (r - 1.0) * std::log(m / (r - 1.0));
    }
    sum += x;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace davinci
