#ifndef DAVINCI_ESTIMATORS_EM_DISTRIBUTION_H_
#define DAVINCI_ESTIMATORS_EM_DISTRIBUTION_H_

#include <cstdint>
#include <map>
#include <vector>

// Flow-size-distribution estimation from a hashed counter array, following
// the Expectation-Maximization scheme of Kumar et al. (MRAC, SIGMETRICS'04),
// which the paper uses for its distribution task (reference [47]).
//
// Model: each flow lands in a uniformly random counter; the number of flows
// per counter is ≈ Poisson(λ = n/m). The observable is the histogram of
// counter values. EM alternates between (E) splitting each counter value
// into its most likely flow compositions under the current size
// distribution and (M) re-normalizing the resulting expected flow counts.
//
// As in production implementations, compositions are truncated to at most
// two flows per counter (three-way collisions are rare at the load factors
// sketches run at), and counters above `single_flow_cutoff` are attributed
// to a single flow.

namespace davinci {

class EmDistribution {
 public:
  struct Options {
    int max_iterations = 15;
    int64_t single_flow_cutoff = 4096;
  };

  // `counter_values` are the raw values of one counter array (e.g. the
  // bottom level of a TowerSketch or the MRAC array). Returns the estimated
  // histogram: flow size -> estimated number of flows of that size.
  static std::map<int64_t, int64_t> Estimate(
      const std::vector<int64_t>& counter_values, const Options& options);
  static std::map<int64_t, int64_t> Estimate(
      const std::vector<int64_t>& counter_values) {
    return Estimate(counter_values, Options());
  }
};

}  // namespace davinci

#endif  // DAVINCI_ESTIMATORS_EM_DISTRIBUTION_H_
