#ifndef DAVINCI_ESTIMATORS_LINEAR_COUNTING_H_
#define DAVINCI_ESTIMATORS_LINEAR_COUNTING_H_

#include <cstddef>

// Whang et al.'s linear-time probabilistic counting. The paper applies it
// to the element filter and infrequent part to estimate the cardinality of
// elements that never reached the frequent part.

namespace davinci {

// Estimated number of distinct elements hashed into `total_slots` slots of
// which `zero_slots` remained untouched:  n̂ = m · ln(m / z).
// If every slot is occupied the estimate saturates (returns a value derived
// from z = 0.5 to avoid infinity); callers should size structures so this
// does not happen in practice.
double LinearCountingEstimate(size_t total_slots, size_t zero_slots);

}  // namespace davinci

#endif  // DAVINCI_ESTIMATORS_LINEAR_COUNTING_H_
