#include "estimators/em_distribution.h"

#include <cmath>

#include "estimators/linear_counting.h"

namespace davinci {

std::map<int64_t, int64_t> EmDistribution::Estimate(
    const std::vector<int64_t>& counter_values, const Options& options) {
  size_t m = counter_values.size();
  std::map<int64_t, int64_t> counter_histogram;
  size_t zero_slots = 0;
  for (int64_t v : counter_values) {
    if (v <= 0) {
      ++zero_slots;
    } else {
      ++counter_histogram[v];
    }
  }
  if (m == 0 || counter_histogram.empty()) return {};

  double n_hat = LinearCountingEstimate(m, zero_slots);
  double lambda = n_hat / static_cast<double>(m);
  // Relative weight of a 2-flow composition vs a 1-flow composition under
  // Poisson(λ) occupancy: π_2/π_1 = λ/2.
  double pair_prior = lambda / 2.0;

  // Initial size distribution: counter values taken at face value.
  std::map<int64_t, double> phi;
  double phi_total = 0.0;
  for (const auto& [v, c] : counter_histogram) {
    phi[v] = static_cast<double>(c);
    phi_total += static_cast<double>(c);
  }
  for (auto& [s, p] : phi) p /= phi_total;

  std::map<int64_t, double> expected;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    expected.clear();
    for (const auto& [v, c] : counter_histogram) {
      double count = static_cast<double>(c);
      if (v > options.single_flow_cutoff) {
        expected[v] += count;
        continue;
      }
      // Enumerate compositions: {v} or {a, v-a}.
      auto phi_at = [&](int64_t s) {
        auto it = phi.find(s);
        return it == phi.end() ? 0.0 : it->second;
      };
      double w_single = phi_at(v);
      double z = w_single;
      std::vector<std::pair<int64_t, double>> pair_weights;
      for (int64_t a = 1; a * 2 <= v; ++a) {
        double w = phi_at(a) * phi_at(v - a);
        if (w <= 0.0) continue;
        w *= pair_prior * (a * 2 == v ? 1.0 : 2.0);
        pair_weights.emplace_back(a, w);
        z += w;
      }
      if (z <= 0.0) {
        expected[v] += count;
        continue;
      }
      expected[v] += count * w_single / z;
      for (const auto& [a, w] : pair_weights) {
        double responsibility = count * w / z;
        expected[a] += responsibility;
        expected[v - a] += responsibility;
      }
    }
    // M-step: new distribution is the normalized expectation.
    double total = 0.0;
    for (const auto& [s, e] : expected) total += e;
    if (total <= 0.0) break;
    phi.clear();
    for (const auto& [s, e] : expected) phi[s] = e / total;
  }

  std::map<int64_t, int64_t> histogram;
  for (const auto& [s, e] : expected) {
    int64_t n = static_cast<int64_t>(std::llround(e));
    if (n > 0) histogram[s] = n;
  }
  return histogram;
}

}  // namespace davinci
