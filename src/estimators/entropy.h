#ifndef DAVINCI_ESTIMATORS_ENTROPY_H_
#define DAVINCI_ESTIMATORS_ENTROPY_H_

#include <cstdint>
#include <map>

// Empirical entropy of a multiset from its flow-size histogram:
//   H = -Σ_i n_i · (i/S) · ln(i/S),   S = Σ_i n_i · i.
// This is the formula the paper applies to the estimated distribution
// (Table I, entropy task).

namespace davinci {

// `histogram` maps flow size -> number of flows of that size.
double EntropyFromDistribution(const std::map<int64_t, int64_t>& histogram);

}  // namespace davinci

#endif  // DAVINCI_ESTIMATORS_ENTROPY_H_
