#include "estimators/linear_counting.h"

#include <cmath>

namespace davinci {

double LinearCountingEstimate(size_t total_slots, size_t zero_slots) {
  if (total_slots == 0) return 0.0;
  double m = static_cast<double>(total_slots);
  double z = zero_slots == 0 ? 0.5 : static_cast<double>(zero_slots);
  return m * std::log(m / z);
}

}  // namespace davinci
