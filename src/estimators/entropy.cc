#include "estimators/entropy.h"

#include <cmath>

namespace davinci {

double EntropyFromDistribution(const std::map<int64_t, int64_t>& histogram) {
  double total = 0.0;
  for (const auto& [size, n] : histogram) {
    if (size > 0 && n > 0) {
      total += static_cast<double>(size) * static_cast<double>(n);
    }
  }
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (const auto& [size, n] : histogram) {
    if (size <= 0 || n <= 0) continue;
    double p = static_cast<double>(size) / total;
    entropy -= static_cast<double>(n) * p * std::log(p);
  }
  return entropy;
}

}  // namespace davinci
