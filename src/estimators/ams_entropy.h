#ifndef DAVINCI_ESTIMATORS_AMS_ENTROPY_H_
#define DAVINCI_ESTIMATORS_AMS_ENTROPY_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

// AMS-style streaming entropy estimator (Chakrabarti, Cormode, McGregor —
// paper reference [48]): reservoir-sample positions of the stream; for a
// sample at position J with element a, track r = #occurrences of a from J
// to the end. Then X = r·ln(m/r) − (r−1)·ln(m/(r−1)) is an unbiased
// estimate of the empirical entropy, averaged over samples.

namespace davinci {

class AmsEntropyEstimator {
 public:
  // `samples` concurrent estimators (memory ≈ 16 bytes each).
  AmsEntropyEstimator(size_t samples, uint64_t seed);

  std::string Name() const { return "AMS-Entropy"; }
  size_t MemoryBytes() const { return samples_.size() * 16; }

  void Insert(uint32_t key);
  double EstimateEntropy() const;

  int64_t stream_length() const { return length_; }

 private:
  struct Sample {
    uint32_t key = 0;
    int64_t tail_count = 0;  // occurrences of key since it was sampled
  };

  std::vector<Sample> samples_;
  int64_t length_ = 0;
  std::mt19937_64 rng_;
};

}  // namespace davinci

#endif  // DAVINCI_ESTIMATORS_AMS_ENTROPY_H_
