// davinci_serverd: the multi-tenant sketch daemon (docs/SERVER.md).
//
//   davinci_serverd [--port N] [--checkpoint-dir DIR]
//                   [--checkpoint-every MUTATIONS] [--workers N]
//
// Prints "LISTENING <port>" on stdout once the socket is bound (the
// recovery test and loadgen parse this to find an ephemeral port), then
// serves until SIGINT/SIGTERM. Graceful shutdown checkpoints every
// tenant; a SIGKILL mid-run loses at most the mutations since the last
// epoch-seal checkpoint, which is exactly what the recovery test pins.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/server.h"

namespace {

uint64_t ParseU64(const char* text, uint64_t fallback) {
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 10);
  return (end == text || *end != '\0') ? fallback : value;
}

}  // namespace

int main(int argc, char** argv) {
  davinci::server::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      options.port = static_cast<uint16_t>(ParseU64(next("--port"), 0));
    } else if (std::strcmp(argv[i], "--checkpoint-dir") == 0) {
      options.checkpoint_dir = next("--checkpoint-dir");
    } else if (std::strcmp(argv[i], "--checkpoint-every") == 0) {
      options.checkpoint_every = ParseU64(next("--checkpoint-every"), 0);
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.workers = ParseU64(next("--workers"), 3);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  // Block INT/TERM before the server's threads start so they inherit the
  // mask and the signals land in the sigwait below.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  davinci::server::SketchServer server(options);
  if (!server.Start()) {
    std::fprintf(stderr, "failed to bind port %u\n", options.port);
    return 1;
  }
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&mask, &sig);
  server.Stop();  // checkpoints all tenants when persistent
  return 0;
}
