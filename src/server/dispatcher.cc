#include "server/dispatcher.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "core/davinci_sketch.h"
#include "obs/health.h"

namespace davinci::server {

namespace {

StatusCode ToStatus(RegistryResult result) {
  switch (result) {
    case RegistryResult::kOk: return StatusCode::kOk;
    case RegistryResult::kExists: return StatusCode::kTenantExists;
    case RegistryResult::kNotFound: return StatusCode::kNoSuchTenant;
    case RegistryResult::kInvalid: return StatusCode::kBadArgument;
    case RegistryResult::kFull: return StatusCode::kTooLarge;
    case RegistryResult::kIoError: return StatusCode::kInternal;
  }
  return StatusCode::kInternal;
}

}  // namespace

RequestDispatcher::RequestDispatcher(TenantRegistry* registry,
                                     DispatcherOptions options)
    : registry_(registry), options_(options) {}

std::string RequestDispatcher::Handle(std::span<const uint8_t> body) {
  WireReader reader(body);
  uint8_t version = 0;
  uint8_t opcode = 0;
  if (!reader.U8(&version) || !reader.U8(&opcode)) {
    return StatusBody(StatusCode::kMalformed);
  }
  if (version != kProtocolVersion) {
    return StatusBody(StatusCode::kBadVersion);
  }
  return Dispatch(static_cast<Op>(opcode), reader);
}

std::string RequestDispatcher::Dispatch(Op op, WireReader& reader) {
  switch (op) {
    case Op::kPing:
      return reader.Done() ? StatusBody(StatusCode::kOk)
                           : StatusBody(StatusCode::kMalformed);
    case Op::kCreateTenant: return CreateTenant(reader);
    case Op::kDropTenant: return DropTenant(reader);
    case Op::kListTenants: return ListTenants(reader);
    case Op::kAdvanceEpoch: return AdvanceEpoch(reader);
    case Op::kCheckpoint: return Checkpoint(reader);
    case Op::kHealth: return Health(reader);
    case Op::kFlushViews: return FlushViews(reader);
    case Op::kInsert: return Insert(reader);
    case Op::kInsertBatch: return InsertBatch(reader);
    case Op::kQuery: return Query(reader);
    case Op::kQueryBatch: return QueryBatch(reader);
    case Op::kHeavyHitters: return HeavyHitters(reader);
    case Op::kHeavyChangers: return HeavyChangers(reader);
    case Op::kCardinality: return Cardinality(reader);
    case Op::kDistribution: return Distribution(reader);
    case Op::kEntropy: return Entropy(reader);
    case Op::kUnionCardinality: return UnionCardinality(reader);
    case Op::kDifferenceQuery: return DifferenceQuery(reader);
    case Op::kInnerProduct: return InnerProduct(reader);
    case Op::kWindowHeavyChangers: return WindowHeavyChangers(reader);
    case Op::kExportSketch: return ExportSketch(reader);
    case Op::kImportMerge: return ImportMerge(reader);
    case Op::kResizeTenant: return ResizeTenant(reader);
  }
  return StatusBody(StatusCode::kUnknownOp);
}

void RequestDispatcher::MaybeCheckpoint(const std::shared_ptr<Tenant>& tenant,
                                        uint64_t mutations) {
  if (options_.checkpoint_every == 0 || !registry_->persistent()) return;
  if (tenant->CountMutations(mutations) >= options_.checkpoint_every) {
    // Seal boundary first, so the checkpointed image is epoch-aligned;
    // Checkpoint() resets the mutation clock on success.
    tenant->AdvanceEpoch();
    registry_->Checkpoint(*tenant);
  }
}

// ---------------------------------------------------------------------------
// Admin / lifecycle.

std::string RequestDispatcher::CreateTenant(WireReader& reader) {
  std::string name;
  TenantOptions options;
  if (!reader.Str(&name) || !reader.U32(&options.shards) ||
      !reader.U64(&options.total_bytes) || !reader.U64(&options.seed) ||
      !reader.U32(&options.window_epochs) || !reader.U64(&options.max_bytes) ||
      !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  // Quota admission gets its own status so a client can tell "you asked
  // for more than your ceiling" from a structurally invalid request
  // (registry Create would fold both into kBadArgument via Valid()).
  if (options.max_bytes != 0 && options.total_bytes > options.max_bytes) {
    return StatusBody(StatusCode::kQuotaExceeded);
  }
  return StatusBody(ToStatus(registry_->Create(name, options)));
}

std::string RequestDispatcher::DropTenant(WireReader& reader) {
  std::string name;
  if (!reader.Str(&name) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  return StatusBody(ToStatus(registry_->Drop(name)));
}

std::string RequestDispatcher::ListTenants(WireReader& reader) {
  if (!reader.Done()) return StatusBody(StatusCode::kMalformed);
  std::vector<std::string> names = registry_->List();
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.U32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) writer.Str(name);
  return writer.Take();
}

std::string RequestDispatcher::AdvanceEpoch(WireReader& reader) {
  std::string name;
  if (!reader.Str(&name) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  uint64_t epoch = tenant->AdvanceEpoch();
  // Epoch seals are the checkpoint boundary: a persistent server durably
  // captures the sealed state right here.
  if (registry_->persistent()) registry_->Checkpoint(*tenant);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.U64(epoch);
  return writer.Take();
}

std::string RequestDispatcher::Checkpoint(WireReader& reader) {
  std::string name;
  if (!reader.Str(&name) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  bool written = registry_->Checkpoint(*tenant);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.U8(written ? 1 : 0);
  return writer.Take();
}

std::string RequestDispatcher::ResizeTenant(WireReader& reader) {
  std::string name;
  uint64_t total_bytes = 0;
  if (!reader.Str(&name) || !reader.U64(&total_bytes) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  switch (tenant->Resize(total_bytes, obs::ResizeHealth::kAdmin)) {
    case Tenant::ResizeOutcome::kBadArgument:
      return StatusBody(StatusCode::kBadArgument);
    case Tenant::ResizeOutcome::kQuotaExceeded:
      return StatusBody(StatusCode::kQuotaExceeded);
    case Tenant::ResizeOutcome::kOk:
      break;
  }
  // A resize is durable state: on a persistent server the new geometry
  // must survive a crash even if no further ingest arrives, so checkpoint
  // at the same seal boundary the periodic trigger uses.
  if (registry_->persistent()) {
    tenant->AdvanceEpoch();
    registry_->Checkpoint(*tenant);
  }
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.U64(tenant->engine().MemoryBytes());
  return writer.Take();
}

std::string RequestDispatcher::Health(WireReader& reader) {
  std::string name;
  if (!reader.Str(&name) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  obs::HealthSnapshot stats;
  tenant->CollectStats(&stats);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.U64(stats.shards);
  writer.U64(stats.memory_bytes);
  writer.U64(stats.inserts);
  writer.U64(stats.queries);
  writer.U64(tenant->epoch());
  writer.U8(tenant->windowed() ? 1 : 0);
  writer.U32(tenant->merge_height());
  writer.U64(stats.resize.applied);
  writer.U64(stats.resize.rejected);
  writer.U64(stats.resize.bytes_before);
  writer.U64(stats.resize.bytes_after);
  writer.U32(stats.resize.last_trigger);
  return writer.Take();
}

std::string RequestDispatcher::FlushViews(WireReader& reader) {
  std::string name;
  if (!reader.Str(&name) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  tenant->engine().FlushViews();
  return StatusBody(StatusCode::kOk);
}

// ---------------------------------------------------------------------------
// Merge-tree fan-in.

std::string RequestDispatcher::ExportSketch(WireReader& reader) {
  std::string name;
  uint8_t format = 0;
  if (!reader.Str(&name) || !reader.U8(&format) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  if (format > static_cast<uint8_t>(SketchFormat::kCompressed)) {
    return StatusBody(StatusCode::kBadArgument);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  // Flush first so the exported image carries every completed write, same
  // contract as a checkpoint.
  tenant->engine().FlushViews();
  std::ostringstream image;
  tenant->engine().SaveShards(image, static_cast<SketchFormat>(format));
  std::string bytes = std::move(image).str();
  // status + height + blob length prefix must still frame; a tenant too big
  // for one flat frame can usually still export compressed.
  if (bytes.size() + 16 > kMaxFrameBytes) {
    return StatusBody(StatusCode::kTooLarge);
  }
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.U32(tenant->merge_height());
  writer.Blob(bytes);
  return writer.Take();
}

std::string RequestDispatcher::ImportMerge(WireReader& reader) {
  std::string name;
  uint32_t n = 0;
  if (!reader.Str(&name) || !reader.U32(&n)) {
    return StatusBody(StatusCode::kMalformed);
  }
  if (n == 0 || n > kMaxImportImages) {
    return StatusBody(StatusCode::kBadArgument);
  }
  std::vector<uint32_t> heights(n);
  std::vector<std::string> blobs(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!reader.U32(&heights[i]) || !reader.Blob(&blobs[i])) {
      return StatusBody(StatusCode::kMalformed);
    }
  }
  if (!reader.Done()) return StatusBody(StatusCode::kMalformed);
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  // All-or-nothing: every image is parsed and geometry-gated BEFORE any of
  // them touches the engine, so a bad image in the middle of the batch
  // cannot leave a half-applied fold.
  std::vector<std::vector<DaVinciSketch>> staged;
  staged.reserve(n);
  uint64_t total_bytes = 0;
  uint32_t max_source_height = 0;
  for (uint32_t i = 0; i < n; ++i) {
    std::istringstream in(blobs[i]);
    std::vector<DaVinciSketch> shards;
    if (!tenant->engine().ParseShardImage(in, &shards) ||
        in.peek() != std::char_traits<char>::eof()) {
      return StatusBody(StatusCode::kBadArgument);
    }
    total_bytes += blobs[i].size();
    max_source_height = std::max(max_source_height, heights[i]);
    staged.push_back(std::move(shards));
  }
  tenant->engine().MergeShardImages(std::move(staged));
  tenant->RecordImport(n, total_bytes, max_source_height);
  MaybeCheckpoint(tenant, n);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.U32(tenant->merge_height());
  return writer.Take();
}

// ---------------------------------------------------------------------------
// Ingest.

std::string RequestDispatcher::Insert(WireReader& reader) {
  std::string name;
  uint32_t key = 0;
  int64_t count = 0;
  if (!reader.Str(&name) || !reader.U32(&key) || !reader.I64(&count) ||
      !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  tenant->Insert(key, count);
  MaybeCheckpoint(tenant, 1);
  return StatusBody(StatusCode::kOk);
}

std::string RequestDispatcher::InsertBatch(WireReader& reader) {
  std::string name;
  std::vector<uint32_t> keys;
  std::vector<int64_t> counts;
  if (!reader.Str(&name) || !reader.Keys(&keys) || !reader.Counts(&counts) ||
      !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  // Counts must pair up one-to-one; an empty vector means "1 per key".
  if (!counts.empty() && counts.size() != keys.size()) {
    return StatusBody(StatusCode::kBadArgument);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  if (counts.empty()) counts.assign(keys.size(), 1);
  tenant->InsertBatch(keys, counts);
  MaybeCheckpoint(tenant, keys.size());
  return StatusBody(StatusCode::kOk);
}

// ---------------------------------------------------------------------------
// Single-tenant queries — all answered from published views (the engine's
// lock-free read paths or Snapshot()); no writer lock is ever taken here.

std::string RequestDispatcher::Query(WireReader& reader) {
  std::string name;
  uint32_t key = 0;
  if (!reader.Str(&name) || !reader.U32(&key) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.I64(tenant->engine().Query(key));
  return writer.Take();
}

std::string RequestDispatcher::QueryBatch(WireReader& reader) {
  std::string name;
  std::vector<uint32_t> keys;
  if (!reader.Str(&name) || !reader.Keys(&keys) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  std::vector<int64_t> answers = tenant->engine().QueryBatch(keys);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.Counts(answers);
  return writer.Take();
}

std::string RequestDispatcher::HeavyHitters(WireReader& reader) {
  std::string name;
  int64_t threshold = 0;
  if (!reader.Str(&name) || !reader.I64(&threshold) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.Pairs(tenant->engine().HeavyHitters(threshold));
  return writer.Take();
}

std::string RequestDispatcher::Cardinality(WireReader& reader) {
  std::string name;
  if (!reader.Str(&name) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.F64(tenant->engine().EstimateCardinality());
  return writer.Take();
}

std::string RequestDispatcher::Distribution(WireReader& reader) {
  std::string name;
  if (!reader.Str(&name) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  std::map<int64_t, int64_t> dist = tenant->engine().Snapshot().Distribution();
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.U32(static_cast<uint32_t>(dist.size()));
  for (const auto& [size, flows] : dist) {
    writer.I64(size);
    writer.I64(flows);
  }
  return writer.Take();
}

std::string RequestDispatcher::Entropy(WireReader& reader) {
  std::string name;
  if (!reader.Str(&name) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.F64(tenant->engine().Snapshot().EstimateEntropy());
  return writer.Take();
}

std::string RequestDispatcher::WindowHeavyChangers(WireReader& reader) {
  std::string name;
  int64_t delta = 0;
  if (!reader.Str(&name) || !reader.I64(&delta) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  std::shared_ptr<Tenant> tenant = registry_->Find(name);
  if (!tenant) return StatusBody(StatusCode::kNoSuchTenant);
  if (!tenant->windowed()) return StatusBody(StatusCode::kBadArgument);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.Pairs(tenant->WindowHeavyChangers(delta));
  return writer.Take();
}

// ---------------------------------------------------------------------------
// Cross-tenant queries. The core's Merge/Subtract/HeavyChangers/
// InnerProduct DAVINCI_CHECK-abort on mismatched geometry, so the gate
// below turns a hostile pairing into kBadArgument instead of killing the
// daemon for every other tenant.

namespace {

struct TenantPair {
  std::shared_ptr<Tenant> a;
  std::shared_ptr<Tenant> b;
  // Minimal placeholders (no default ctor); overwritten by SnapshotPair.
  DaVinciSketch snap_a{8 * 1024, 0};
  DaVinciSketch snap_b{8 * 1024, 0};
};

StatusCode SnapshotPair(TenantRegistry* registry, const std::string& name_a,
                        const std::string& name_b, TenantPair* out) {
  out->a = registry->Find(name_a);
  out->b = registry->Find(name_b);
  if (!out->a || !out->b) return StatusCode::kNoSuchTenant;
  out->snap_a = out->a->engine().Snapshot();
  out->snap_b = out->b->engine().Snapshot();
  // Cross-tenant linear ops need the kIdentical relation; two kResizable
  // tenants (same seed, different split) still answer kBadArgument — the
  // server never rebuilds a whole tenant to satisfy one query.
  if (DaVinciConfig::GeometryCompatible(out->snap_a.config(),
                                        out->snap_b.config()) !=
      DaVinciConfig::GeometryRelation::kIdentical) {
    return StatusCode::kBadArgument;
  }
  return StatusCode::kOk;
}

}  // namespace

std::string RequestDispatcher::HeavyChangers(WireReader& reader) {
  std::string name_a, name_b;
  int64_t delta = 0;
  if (!reader.Str(&name_a) || !reader.Str(&name_b) || !reader.I64(&delta) ||
      !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  TenantPair pair;
  StatusCode status = SnapshotPair(registry_, name_a, name_b, &pair);
  if (status != StatusCode::kOk) return StatusBody(status);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.Pairs(pair.snap_a.HeavyChangers(pair.snap_b, delta));
  return writer.Take();
}

std::string RequestDispatcher::UnionCardinality(WireReader& reader) {
  std::string name_a, name_b;
  if (!reader.Str(&name_a) || !reader.Str(&name_b) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  TenantPair pair;
  StatusCode status = SnapshotPair(registry_, name_a, name_b, &pair);
  if (status != StatusCode::kOk) return StatusBody(status);
  pair.snap_a.Merge(pair.snap_b);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.F64(pair.snap_a.EstimateCardinality());
  return writer.Take();
}

std::string RequestDispatcher::DifferenceQuery(WireReader& reader) {
  std::string name_a, name_b;
  std::vector<uint32_t> keys;
  if (!reader.Str(&name_a) || !reader.Str(&name_b) || !reader.Keys(&keys) ||
      !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  TenantPair pair;
  StatusCode status = SnapshotPair(registry_, name_a, name_b, &pair);
  if (status != StatusCode::kOk) return StatusBody(status);
  pair.snap_a.Subtract(pair.snap_b);
  std::vector<int64_t> answers = pair.snap_a.QueryBatch(keys);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.Counts(answers);
  return writer.Take();
}

std::string RequestDispatcher::InnerProduct(WireReader& reader) {
  std::string name_a, name_b;
  if (!reader.Str(&name_a) || !reader.Str(&name_b) || !reader.Done()) {
    return StatusBody(StatusCode::kMalformed);
  }
  TenantPair pair;
  StatusCode status = SnapshotPair(registry_, name_a, name_b, &pair);
  if (status != StatusCode::kOk) return StatusBody(status);
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(StatusCode::kOk));
  writer.F64(DaVinciSketch::InnerProduct(pair.snap_a, pair.snap_b));
  return writer.Take();
}

}  // namespace davinci::server
