#ifndef DAVINCI_SERVER_PROTOCOL_H_
#define DAVINCI_SERVER_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

// Wire protocol of the multi-tenant sketch server (docs/SERVER.md).
//
// Everything on the wire is little-endian and length-prefixed, following
// the same conventions as common/serialize.h (flat PODs, length-prefixed
// vectors, hard caps on every hostile-controlled length BEFORE any
// allocation is sized from it):
//
//   frame    := u32 body_len | body          (1 <= body_len <= kMaxFrameBytes)
//   request  := u8 version | u8 opcode | payload
//   response := u8 status | payload
//
// Strings are u16 len + bytes (tenant names, capped at kMaxNameBytes);
// key/count vectors are u32 count + raw elements (capped at
// kMaxBatchKeys). Doubles travel as their IEEE-754 bit pattern, so a wire
// answer can be compared bit-for-bit against the in-process computation
// (tests/server_protocol_test.cc does exactly that for all nine tasks).
//
// The three layers in this header are deliberately separable so the fuzz
// harness can drive them without sockets:
//   - WireWriter / WireReader: bounds-checked encode/decode of one body;
//   - FrameAssembler: the streaming length-prefix state machine the event
//     loop feeds raw socket bytes into (and fuzz_protocol.cc feeds
//     mutated garbage into);
//   - opcode/status enums shared by client and dispatcher.

namespace davinci::server {

inline constexpr uint8_t kProtocolVersion = 1;

// Hard ceiling on one frame body. Large enough for a 4M-key batch
// response, small enough that a hostile length prefix cannot force a
// giant allocation (the assembler rejects bigger prefixes before
// buffering a byte).
inline constexpr uint32_t kMaxFrameBytes = uint32_t{1} << 26;  // 64 MiB

inline constexpr size_t kMaxNameBytes = 256;
inline constexpr size_t kMaxBatchKeys = size_t{1} << 22;  // 4M keys/frame
inline constexpr size_t kMaxTenants = 4096;
inline constexpr size_t kMaxShardsPerTenant = 1024;
// Fan-in bound of one kImportMerge frame: N sketch images fold into the
// target in one request; wider fan-ins compose as multiple requests (or a
// deeper tree via re-export).
inline constexpr size_t kMaxImportImages = 64;

enum class Op : uint8_t {
  // Admin / lifecycle.
  kPing = 1,
  kCreateTenant = 2,
  kDropTenant = 3,
  kListTenants = 4,
  kAdvanceEpoch = 5,
  kCheckpoint = 6,
  kHealth = 7,
  kFlushViews = 8,
  // Ingest.
  kInsert = 10,
  kInsertBatch = 11,
  // The paper's nine query tasks (Algorithm 4 numbering in docs/SERVER.md).
  kQuery = 20,           // 1: frequency
  kHeavyHitters = 21,    // 2: heavy hitters
  kHeavyChangers = 22,   // 3: heavy changers (tenant A vs tenant B)
  kCardinality = 23,     // 4: cardinality
  kDistribution = 24,    // 5: flow-size distribution
  kEntropy = 25,         // 6: entropy
  kUnionCardinality = 26,  // 7: set union
  kDifferenceQuery = 27,   // 8: set difference (per-key signed delta)
  kInnerProduct = 28,      // 9: inner join
  // Batched / windowed extensions.
  kQueryBatch = 30,
  kWindowHeavyChangers = 31,
  // Distributed merge tree (docs/SERVER.md §Export / ImportMerge).
  kExportSketch = 40,  // ship a tenant's SaveShards image (flat or DVSZ)
  kImportMerge = 41,   // fan-in merge N exported images into a tenant
  // Dynamic geometry (docs/SERVER.md §ResizeTenant): live re-split of a
  // tenant's memory at the publish boundary, gated by the tenant's quota.
  kResizeTenant = 50,
};

enum class StatusCode : uint8_t {
  kOk = 0,
  kUnknownOp = 1,     // opcode outside the table; connection survives
  kMalformed = 2,     // payload failed the bounds-checked parse
  kBadVersion = 3,
  kNoSuchTenant = 4,
  kTenantExists = 5,
  kBadArgument = 6,   // e.g. cross-tenant query over mismatched geometry
  kTooLarge = 7,      // length prefix above kMaxFrameBytes (fatal per-conn)
  kInternal = 8,
  // Create/resize admission: the requested footprint exceeds the
  // per-tenant memory quota (docs/SERVER.md §Quotas).
  kQuotaExceeded = 9,
};

inline const char* StatusName(StatusCode status) {
  switch (status) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kUnknownOp: return "unknown-op";
    case StatusCode::kMalformed: return "malformed";
    case StatusCode::kBadVersion: return "bad-version";
    case StatusCode::kNoSuchTenant: return "no-such-tenant";
    case StatusCode::kTenantExists: return "tenant-exists";
    case StatusCode::kBadArgument: return "bad-argument";
    case StatusCode::kTooLarge: return "too-large";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kQuotaExceeded: return "quota-exceeded";
  }
  return "invalid-status";
}

// ---------------------------------------------------------------------------
// WireWriter: append-only body builder.

class WireWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  // IEEE-754 bit pattern: wire doubles compare bit-for-bit.
  void F64(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U16(static_cast<uint16_t>(s.size()));
    Raw(s.data(), s.size());
  }
  void Keys(std::span<const uint32_t> keys) {
    U32(static_cast<uint32_t>(keys.size()));
    Raw(keys.data(), keys.size() * sizeof(uint32_t));
  }
  void Counts(std::span<const int64_t> counts) {
    U32(static_cast<uint32_t>(counts.size()));
    Raw(counts.data(), counts.size() * sizeof(int64_t));
  }
  void Pairs(const std::vector<std::pair<uint32_t, int64_t>>& pairs) {
    U32(static_cast<uint32_t>(pairs.size()));
    for (const auto& [key, count] : pairs) {
      U32(key);
      I64(count);
    }
  }
  // Opaque byte payload (serialized sketch images): u32 len + bytes.
  void Blob(const std::string& blob) {
    U32(static_cast<uint32_t>(blob.size()));
    Raw(blob.data(), blob.size());
  }

  const std::string& str() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  void Raw(const void* data, size_t n) {
    if (n == 0) return;  // append(nullptr, 0) is formally UB
    bytes_.append(static_cast<const char*>(data), n);
  }
  std::string bytes_;
};

// Prepends the u32 length prefix to a finished body.
inline std::string Frame(const std::string& body) {
  uint32_t len = static_cast<uint32_t>(body.size());
  std::string frame;
  frame.reserve(sizeof(len) + body.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(body);
  return frame;
}

// ---------------------------------------------------------------------------
// WireReader: bounds-checked cursor over one body. Every accessor returns
// false (and leaves the out-param untouched) on overrun; ok() goes false
// sticky, so a handler can parse a whole payload and check once. Nothing
// here sizes an allocation from a hostile length without capping it first.

class WireReader {
 public:
  explicit WireReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  bool U8(uint8_t* v) { return Pod(v); }
  bool U16(uint16_t* v) { return Pod(v); }
  bool U32(uint32_t* v) { return Pod(v); }
  bool U64(uint64_t* v) { return Pod(v); }
  bool I64(int64_t* v) { return Pod(v); }
  bool F64(double* v) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Str(std::string* s) {
    uint16_t len = 0;
    if (!U16(&len)) return false;
    if (len > kMaxNameBytes || !Have(len)) return Fail();
    s->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  bool Keys(std::vector<uint32_t>* keys) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (n > kMaxBatchKeys || !Have(size_t{n} * sizeof(uint32_t))) {
      return Fail();
    }
    keys->resize(n);
    if (n > 0) {
      std::memcpy(keys->data(), bytes_.data() + pos_, n * sizeof(uint32_t));
    }
    pos_ += size_t{n} * sizeof(uint32_t);
    return true;
  }
  bool Counts(std::vector<int64_t>* counts) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (n > kMaxBatchKeys || !Have(size_t{n} * sizeof(int64_t))) {
      return Fail();
    }
    counts->resize(n);
    if (n > 0) {
      std::memcpy(counts->data(), bytes_.data() + pos_, n * sizeof(int64_t));
    }
    pos_ += size_t{n} * sizeof(int64_t);
    return true;
  }
  bool Pairs(std::vector<std::pair<uint32_t, int64_t>>* pairs) {
    uint32_t n = 0;
    if (!U32(&n)) return false;
    if (n > kMaxBatchKeys || !Have(size_t{n} * 12)) return Fail();
    pairs->clear();
    pairs->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint32_t key = 0;
      int64_t count = 0;
      if (!U32(&key) || !I64(&count)) return false;
      pairs->emplace_back(key, count);
    }
    return true;
  }

  // Opaque byte payload (serialized sketch images). The length is capped
  // by the frame bound itself — a blob can never be declared larger than
  // the body that carries it, so no separate cap is needed before sizing
  // the copy.
  bool Blob(std::string* blob) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (len > kMaxFrameBytes || !Have(len)) return Fail();
    blob->assign(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return true;
  }

  // True when the payload was consumed exactly: trailing garbage after a
  // well-formed prefix is rejected too, so every accepted request has one
  // canonical encoding.
  bool Done() const { return ok_ && pos_ == bytes_.size(); }
  bool ok() const { return ok_; }

 private:
  template <typename T>
  bool Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!Have(sizeof(T))) return Fail();
    std::memcpy(v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  bool Have(size_t n) const {
    return ok_ && n <= bytes_.size() - pos_;
  }
  bool Fail() {
    ok_ = false;
    return false;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// FrameAssembler: the streaming length-prefix state machine. The event
// loop (and the fuzz harness) feeds raw bytes in; complete bodies pop out.
// A length prefix above kMaxFrameBytes (or zero) is a fatal framing error:
// the stream cannot be resynchronized, so the connection must send one
// kTooLarge reply and close. State never grows past the declared body
// size, so a hostile prefix cannot balloon the buffer.

class FrameAssembler {
 public:
  // Appends raw bytes. Returns false on a fatal framing error (oversized
  // or zero length prefix); the assembler is then poisoned and Next() will
  // not produce further frames.
  bool Feed(const uint8_t* data, size_t size) {
    if (fatal_) return false;
    buffer_.insert(buffer_.end(), data, data + size);
    // Validate the earliest unvalidated prefix eagerly so oversized
    // declarations are rejected before more bytes accumulate.
    if (buffer_.size() >= sizeof(uint32_t)) {
      uint32_t len = PeekLen();
      if (len == 0 || len > kMaxFrameBytes) {
        fatal_ = true;
        return false;
      }
    }
    return true;
  }

  // Pops the next complete body, if any.
  bool Next(std::vector<uint8_t>* body) {
    if (fatal_ || buffer_.size() < sizeof(uint32_t)) return false;
    uint32_t len = PeekLen();
    if (len == 0 || len > kMaxFrameBytes) {
      fatal_ = true;
      return false;
    }
    if (buffer_.size() < sizeof(uint32_t) + len) return false;
    body->assign(buffer_.begin() + sizeof(uint32_t),
                 buffer_.begin() + sizeof(uint32_t) + len);
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + sizeof(uint32_t) + len);
    return true;
  }

  bool fatal() const { return fatal_; }
  size_t buffered() const { return buffer_.size(); }

 private:
  uint32_t PeekLen() const {
    uint32_t len = 0;
    std::memcpy(&len, buffer_.data(), sizeof(len));
    return len;
  }

  std::vector<uint8_t> buffer_;
  bool fatal_ = false;
};

// One-status response body (the common error shape).
inline std::string StatusBody(StatusCode status) {
  WireWriter writer;
  writer.U8(static_cast<uint8_t>(status));
  return writer.Take();
}

}  // namespace davinci::server

#endif  // DAVINCI_SERVER_PROTOCOL_H_
