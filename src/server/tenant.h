#ifndef DAVINCI_SERVER_TENANT_H_
#define DAVINCI_SERVER_TENANT_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "core/concurrent_davinci.h"
#include "core/epoch_manager.h"
#include "server/protocol.h"

// Tenant lifecycle of the sketch server (docs/SERVER.md §Tenants).
//
// A tenant is one isolated measurement namespace: its own sharded
// ConcurrentDaVinci (ingest + the RCU lock-free read path every wire query
// is answered from) and — when created with window_epochs > 0 — its own
// EpochManager for windowed queries. The registry multiplexes up to
// kMaxTenants of them behind one mutex-guarded name map; handlers take a
// shared_ptr out and drop the registry lock, so a slow query or checkpoint
// on one tenant never blocks requests against the others, and dropping a
// tenant mid-query is safe (the last shared_ptr frees it).
//
// Checkpoints (docs/SERVER.md §Checkpoints) are per-tenant files written
// atomically (tmp + rename) so a crash mid-write can never destroy the
// previous good image:
//
//   DVCK v3 := magic u32 'DVCK' | version u32
//            | name (u16 len + bytes) | shards u32 | bytes u64 | seed u64
//            | window_epochs u32 | max_bytes u64 | epoch u64
//            | current_bytes u64
//            | resize: applied u64 | rejected u64 | bytes_before u64
//                    | bytes_after u64 | last_trigger u32
//            | ConcurrentDaVinci::SaveShards image
//            | trailer u32 'KCVD'
//
// v1 (flat shard images) and v2 (DVSZ-compressed, no quota/resize fields)
// remain readable; their missing fields recover as zero. The shard image
// itself carries each shard's geometry, so a tenant resized after creation
// recovers at its post-resize geometry even though the header's
// total_bytes still records the creation-time budget.
//
// Recovery re-creates the tenant from the header and restores the shard
// image through the hostile-input Load gates; a corrupted or truncated
// body yields an EMPTY tenant with the header's options (never an abort),
// and an unreadable header skips the file entirely. The window is runtime
// state and deliberately not checkpointed: a recovered tenant restarts
// its window from the recovered cumulative sketch's epoch counter.

namespace davinci::server {

struct TenantOptions {
  uint32_t shards = 4;
  uint64_t total_bytes = 1 << 20;
  uint64_t seed = 1;
  // 0 = no window: AdvanceEpoch only bumps the checkpoint clock.
  uint32_t window_epochs = 0;
  // Memory quota: the ceiling any kResizeTenant (or the initial
  // total_bytes) may grow the tenant to. 0 = unlimited. Enforced at create
  // and resize admission (StatusCode::kQuotaExceeded on the wire).
  uint64_t max_bytes = 0;

  bool Valid() const {
    return shards >= 1 && shards <= kMaxShardsPerTenant &&
           total_bytes >= 1024 && total_bytes <= (uint64_t{1} << 31) &&
           window_epochs <= 64 &&
           (max_bytes == 0 || total_bytes <= max_bytes);
  }
};

class Tenant {
 public:
  Tenant(std::string name, const TenantOptions& options);

  const std::string& name() const { return name_; }
  const TenantOptions& options() const { return options_; }
  bool windowed() const { return options_.window_epochs > 0; }

  // Ingest: engine first (the serving path), then — for windowed tenants —
  // the same stream into the window's live epoch under the window mutex.
  void Insert(uint32_t key, int64_t count);
  void InsertBatch(std::span<const uint32_t> keys,
                   std::span<const int64_t> counts);

  // The sharded engine every wire query reads from (published views only).
  ConcurrentDaVinci& engine() { return engine_; }
  const ConcurrentDaVinci& engine() const { return engine_; }

  // Seals the current epoch (rotating the window when one exists) and
  // returns the new epoch number.
  uint64_t AdvanceEpoch() DAVINCI_EXCLUDES(window_mu_);
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // Windowed heavy changers (newest epoch vs merged remainder); empty when
  // the tenant has no window or nothing sealed yet.
  std::vector<std::pair<uint32_t, int64_t>> WindowHeavyChangers(
      int64_t delta) const DAVINCI_EXCLUDES(window_mu_);

  // Engine health plus — for windowed tenants — the epoch engine's
  // rotation/memoization telemetry folded in.
  void CollectStats(obs::HealthSnapshot* out) const
      DAVINCI_EXCLUDES(window_mu_);

  // ---- dynamic geometry (kResizeTenant; DESIGN.md §12) ----
  // Rebuilds the tenant onto a `total_bytes` budget: the engine resizes
  // shard-by-shard (readers stay lock-free throughout) and a windowed
  // tenant schedules the matching per-epoch geometry for its next seal
  // boundary. The seed and shard count are fixed at creation, so the new
  // geometry is always kResizable. Returns kQuotaExceeded (recording a
  // rejection) when options().max_bytes caps the tenant below the request,
  // kBadArgument when `total_bytes` is outside TenantOptions bounds.
  // Serialized internally: concurrent Resize calls queue on resize_mu_.
  enum class ResizeOutcome : uint8_t { kOk, kBadArgument, kQuotaExceeded };
  ResizeOutcome Resize(uint64_t total_bytes,
                       uint32_t trigger = obs::ResizeHealth::kAdmin)
      DAVINCI_EXCLUDES(resize_mu_, window_mu_);
  // The byte budget currently live (creation total_bytes until the first
  // successful Resize; restored from a v3 checkpoint on recovery).
  uint64_t current_bytes() const {
    return current_bytes_.load(std::memory_order_relaxed);
  }

  // Mutations since the last checkpoint (the server's periodic
  // seal-and-checkpoint trigger reads and resets this).
  uint64_t CountMutations(uint64_t mutations) {
    return mutations_since_checkpoint_.fetch_add(
               mutations, std::memory_order_relaxed) +
           mutations;
  }
  void ResetMutationClock() {
    mutations_since_checkpoint_.store(0, std::memory_order_relaxed);
  }

  // ---- merge-tree provenance (kImportMerge; docs/OBSERVABILITY.md) ----
  // Aggregation height of this tenant's view: 0 until the first import
  // (pure raw ingest), then max over imports of (tallest source height +
  // 1). Exported alongside the image so a downstream aggregator can track
  // its own depth.
  uint32_t merge_height() const {
    return merge_height_.load(std::memory_order_relaxed);
  }
  // Records one applied kImportMerge: `images` shard images totalling
  // `bytes` wire bytes, whose tallest source sat at `max_source_height`.
  void RecordImport(uint64_t images, uint64_t bytes,
                    uint32_t max_source_height) DAVINCI_EXCLUDES(import_mu_);

  // ---- persistence ----
  // Serializes the DVCK image (flushes unpublished views first so the
  // image reflects every completed write at call time).
  void SaveCheckpoint(std::ostream& out);
  // Parses a DVCK header; returns false if it is unusable (bad magic /
  // version / name / options).
  struct CheckpointHeader {
    std::string name;
    TenantOptions options;
    uint64_t epoch = 0;
    // v3 fields; zero when recovering a v1/v2 image.
    uint64_t current_bytes = 0;
    obs::ResizeHealth resize;
  };
  static bool ReadCheckpointHeader(std::istream& in, CheckpointHeader* header);
  // Restores the shard image + trailer into this tenant's engine, plus the
  // header's epoch and (v3) resize provenance. False (engine untouched) on
  // any validation failure.
  bool RestoreCheckpointBody(std::istream& in, const CheckpointHeader& header);

 private:
  const std::string name_;
  const TenantOptions options_;
  ConcurrentDaVinci engine_;

  mutable Mutex window_mu_;
  // Engaged iff windowed(); EpochManager is externally synchronized, so
  // every touch happens under window_mu_.
  std::unique_ptr<EpochManager> window_ DAVINCI_GUARDED_BY(window_mu_);

  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> mutations_since_checkpoint_{0};

  // Resize path. resize_mu_ serializes concurrent Resize calls (the
  // engine's shard-by-shard swap must not interleave with another resize)
  // and guards the provenance baseline restored from a v3 checkpoint —
  // CollectStats folds it into the engine's live counters so resize
  // history survives recovery.
  mutable Mutex resize_mu_;
  obs::ResizeHealth resize_baseline_ DAVINCI_GUARDED_BY(resize_mu_);
  std::atomic<uint64_t> current_bytes_;

  // Merge-tree provenance. The height is atomic so kExportSketch reads it
  // lock-free; the counters and per-level histogram sit behind their own
  // mutex (imports are rare admin-path operations).
  std::atomic<uint32_t> merge_height_{0};
  mutable Mutex import_mu_;
  uint64_t import_requests_ DAVINCI_GUARDED_BY(import_mu_) = 0;
  uint64_t imported_images_ DAVINCI_GUARDED_BY(import_mu_) = 0;
  uint64_t imported_bytes_ DAVINCI_GUARDED_BY(import_mu_) = 0;
  std::vector<uint64_t> images_per_level_ DAVINCI_GUARDED_BY(import_mu_);
};

// Status of a registry mutation (mirrors the wire statuses the dispatcher
// maps them to).
enum class RegistryResult : uint8_t {
  kOk = 0,
  kExists,
  kNotFound,
  kInvalid,
  kFull,
  kIoError,
};

class TenantRegistry {
 public:
  // `checkpoint_dir` empty disables persistence entirely.
  explicit TenantRegistry(std::string checkpoint_dir);

  RegistryResult Create(const std::string& name, const TenantOptions& options,
                        std::shared_ptr<Tenant>* out = nullptr)
      DAVINCI_EXCLUDES(mu_);
  // Removes the tenant and deletes its checkpoint file (if any). In-flight
  // handlers holding the shared_ptr finish safely.
  RegistryResult Drop(const std::string& name) DAVINCI_EXCLUDES(mu_);
  std::shared_ptr<Tenant> Find(const std::string& name) const
      DAVINCI_EXCLUDES(mu_);
  std::vector<std::string> List() const DAVINCI_EXCLUDES(mu_);
  size_t size() const DAVINCI_EXCLUDES(mu_);

  // ---- persistence ----
  const std::string& checkpoint_dir() const { return dir_; }
  bool persistent() const { return !dir_.empty(); }
  // Atomically (tmp + rename) writes `tenant`'s DVCK file. No-op without a
  // checkpoint dir. Serialized per registry so two triggers cannot
  // interleave their tmp files.
  bool Checkpoint(Tenant& tenant) DAVINCI_EXCLUDES(ckpt_mu_);
  // Checkpoints every current tenant; returns how many succeeded.
  size_t CheckpointAll() DAVINCI_EXCLUDES(mu_, ckpt_mu_);
  // Scans the checkpoint dir for *.dvck files and revives each tenant:
  // restored state when the body passes the Load gates, empty otherwise.
  // Returns the number of tenants created.
  size_t RecoverAll() DAVINCI_EXCLUDES(mu_);

  // True when the named tenant's last recovery fell back to an empty
  // sketch because its checkpoint body was corrupt (surfaced in logs and
  // asserted by tests/server_recovery_test.cc).
  bool RecoveredEmpty(const std::string& name) const DAVINCI_EXCLUDES(mu_);

 private:
  std::string CheckpointPath(const std::string& name) const;

  const std::string dir_;
  mutable Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Tenant>> tenants_
      DAVINCI_GUARDED_BY(mu_);
  std::unordered_map<std::string, bool> recovered_empty_
      DAVINCI_GUARDED_BY(mu_);
  Mutex ckpt_mu_;
};

}  // namespace davinci::server

#endif  // DAVINCI_SERVER_TENANT_H_
