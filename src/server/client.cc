#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace davinci::server {

namespace {

// Request body builders (kept local: the typed methods are the API).

std::string ReqHeader(Op op) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(op));
  return writer.Take();
}

std::string NameOnlyRequest(Op op, const std::string& name) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(op));
  writer.Str(name);
  return writer.Take();
}

bool ReadPairs(WireReader& reader,
               std::vector<std::pair<uint32_t, int64_t>>* out) {
  return reader.Pairs(out) && reader.Done();
}

}  // namespace

Client::~Client() { Close(); }

bool Client::Connect(uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Close();
    return false;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

bool Client::SendRaw(const void* data, size_t size) {
  const char* bytes = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Client::SendRequest(const std::string& body) {
  std::string frame = Frame(body);
  return SendRaw(frame.data(), frame.size());
}

bool Client::ReadResponse(std::string* body) {
  uint8_t prefix[sizeof(uint32_t)];
  size_t got = 0;
  while (got < sizeof(prefix)) {
    ssize_t n = ::read(fd_, prefix + got, sizeof(prefix) - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof(len));
  if (len == 0 || len > kMaxFrameBytes) return false;
  body->resize(len);
  got = 0;
  while (got < len) {
    ssize_t n = ::read(fd_, body->data() + got, len - got);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Client::Call(const std::string& body, std::string* response) {
  return SendRequest(body) && ReadResponse(response);
}

bool Client::RoundTrip(const std::string& body, std::string* response,
                       StatusCode* status) {
  if (!Call(body, response)) return false;
  if (response->empty()) return false;
  *status = static_cast<StatusCode>(static_cast<uint8_t>((*response)[0]));
  return true;
}

StatusCode Client::ParseStatus(const std::string& response) {
  if (response.empty()) return StatusCode::kInternal;
  return static_cast<StatusCode>(static_cast<uint8_t>(response[0]));
}

// ---------------------------------------------------------------------------
// Admin / lifecycle.

StatusCode Client::Ping() {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(ReqHeader(Op::kPing), &response, &status)) {
    return StatusCode::kInternal;
  }
  return status;
}

StatusCode Client::CreateTenant(const std::string& name, uint32_t shards,
                                uint64_t total_bytes, uint64_t seed,
                                uint32_t window_epochs, uint64_t max_bytes) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kCreateTenant));
  writer.Str(name);
  writer.U32(shards);
  writer.U64(total_bytes);
  writer.U64(seed);
  writer.U32(window_epochs);
  writer.U64(max_bytes);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  return status;
}

StatusCode Client::ResizeTenant(const std::string& name, uint64_t total_bytes,
                                uint64_t* new_memory_bytes) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kResizeTenant));
  writer.Str(name);
  writer.U64(total_bytes);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  uint64_t bytes = 0;
  if (!reader.U64(&bytes) || !reader.Done()) return StatusCode::kInternal;
  if (new_memory_bytes != nullptr) *new_memory_bytes = bytes;
  return StatusCode::kOk;
}

StatusCode Client::DropTenant(const std::string& name) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(NameOnlyRequest(Op::kDropTenant, name), &response, &status)) {
    return StatusCode::kInternal;
  }
  return status;
}

StatusCode Client::ListTenants(std::vector<std::string>* names) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(ReqHeader(Op::kListTenants), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  uint32_t n = 0;
  if (!reader.U32(&n) || n > kMaxTenants) return StatusCode::kInternal;
  names->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    if (!reader.Str(&name)) return StatusCode::kInternal;
    names->push_back(std::move(name));
  }
  return reader.Done() ? StatusCode::kOk : StatusCode::kInternal;
}

StatusCode Client::AdvanceEpoch(const std::string& name, uint64_t* epoch) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(NameOnlyRequest(Op::kAdvanceEpoch, name), &response,
                 &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return reader.U64(epoch) && reader.Done() ? StatusCode::kOk
                                            : StatusCode::kInternal;
}

StatusCode Client::Checkpoint(const std::string& name, bool* written) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(NameOnlyRequest(Op::kCheckpoint, name), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  uint8_t flag = 0;
  if (!reader.U8(&flag) || !reader.Done()) return StatusCode::kInternal;
  if (written != nullptr) *written = flag != 0;
  return StatusCode::kOk;
}

StatusCode Client::Health(const std::string& name, HealthReply* out) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(NameOnlyRequest(Op::kHealth, name), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  uint8_t windowed = 0;
  if (!reader.U64(&out->shards) || !reader.U64(&out->memory_bytes) ||
      !reader.U64(&out->inserts) || !reader.U64(&out->queries) ||
      !reader.U64(&out->epoch) || !reader.U8(&windowed) ||
      !reader.U32(&out->merge_height) || !reader.U64(&out->resizes_applied) ||
      !reader.U64(&out->resizes_rejected) ||
      !reader.U64(&out->resize_bytes_before) ||
      !reader.U64(&out->resize_bytes_after) ||
      !reader.U32(&out->resize_last_trigger) || !reader.Done()) {
    return StatusCode::kInternal;
  }
  out->windowed = windowed != 0;
  return StatusCode::kOk;
}

StatusCode Client::FlushViews(const std::string& name) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(NameOnlyRequest(Op::kFlushViews, name), &response, &status)) {
    return StatusCode::kInternal;
  }
  return status;
}

// ---------------------------------------------------------------------------
// Merge-tree fan-in.

StatusCode Client::ExportSketch(const std::string& name, uint8_t format,
                                ExportedSketch* out) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kExportSketch));
  writer.Str(name);
  writer.U8(format);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return reader.U32(&out->height) && reader.Blob(&out->image) && reader.Done()
             ? StatusCode::kOk
             : StatusCode::kInternal;
}

StatusCode Client::ImportMerge(const std::string& name,
                               std::span<const ExportedSketch> images,
                               uint32_t* new_height) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kImportMerge));
  writer.Str(name);
  writer.U32(static_cast<uint32_t>(images.size()));
  for (const ExportedSketch& exported : images) {
    writer.U32(exported.height);
    writer.Blob(exported.image);
  }
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  uint32_t height = 0;
  if (!reader.U32(&height) || !reader.Done()) return StatusCode::kInternal;
  if (new_height != nullptr) *new_height = height;
  return StatusCode::kOk;
}

// ---------------------------------------------------------------------------
// Ingest.

StatusCode Client::Insert(const std::string& name, uint32_t key,
                          int64_t count) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kInsert));
  writer.Str(name);
  writer.U32(key);
  writer.I64(count);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  return status;
}

std::string Client::InsertBatchRequest(const std::string& name,
                                       std::span<const uint32_t> keys,
                                       std::span<const int64_t> counts) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kInsertBatch));
  writer.Str(name);
  writer.Keys(keys);
  writer.Counts(counts);
  return writer.Take();
}

StatusCode Client::InsertBatch(const std::string& name,
                               std::span<const uint32_t> keys,
                               std::span<const int64_t> counts) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(InsertBatchRequest(name, keys, counts), &response, &status)) {
    return StatusCode::kInternal;
  }
  return status;
}

// ---------------------------------------------------------------------------
// Queries.

std::string Client::QueryRequest(const std::string& name, uint32_t key) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kQuery));
  writer.Str(name);
  writer.U32(key);
  return writer.Take();
}

StatusCode Client::Query(const std::string& name, uint32_t key, int64_t* out) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(QueryRequest(name, key), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return reader.I64(out) && reader.Done() ? StatusCode::kOk
                                          : StatusCode::kInternal;
}

StatusCode Client::QueryBatch(const std::string& name,
                              std::span<const uint32_t> keys,
                              std::vector<int64_t>* out) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kQueryBatch));
  writer.Str(name);
  writer.Keys(keys);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return reader.Counts(out) && reader.Done() ? StatusCode::kOk
                                             : StatusCode::kInternal;
}

StatusCode Client::HeavyHitters(
    const std::string& name, int64_t threshold,
    std::vector<std::pair<uint32_t, int64_t>>* out) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kHeavyHitters));
  writer.Str(name);
  writer.I64(threshold);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return ReadPairs(reader, out) ? StatusCode::kOk : StatusCode::kInternal;
}

StatusCode Client::HeavyChangers(
    const std::string& a, const std::string& b, int64_t delta,
    std::vector<std::pair<uint32_t, int64_t>>* out) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kHeavyChangers));
  writer.Str(a);
  writer.Str(b);
  writer.I64(delta);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return ReadPairs(reader, out) ? StatusCode::kOk : StatusCode::kInternal;
}

StatusCode Client::Cardinality(const std::string& name, double* out) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(NameOnlyRequest(Op::kCardinality, name), &response,
                 &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return reader.F64(out) && reader.Done() ? StatusCode::kOk
                                          : StatusCode::kInternal;
}

StatusCode Client::Distribution(
    const std::string& name, std::vector<std::pair<int64_t, int64_t>>* out) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(NameOnlyRequest(Op::kDistribution, name), &response,
                 &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  uint32_t n = 0;
  if (!reader.U32(&n) || n > kMaxBatchKeys) return StatusCode::kInternal;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    int64_t size = 0;
    int64_t flows = 0;
    if (!reader.I64(&size) || !reader.I64(&flows)) {
      return StatusCode::kInternal;
    }
    out->emplace_back(size, flows);
  }
  return reader.Done() ? StatusCode::kOk : StatusCode::kInternal;
}

StatusCode Client::Entropy(const std::string& name, double* out) {
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(NameOnlyRequest(Op::kEntropy, name), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return reader.F64(out) && reader.Done() ? StatusCode::kOk
                                          : StatusCode::kInternal;
}

StatusCode Client::UnionCardinality(const std::string& a, const std::string& b,
                                    double* out) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kUnionCardinality));
  writer.Str(a);
  writer.Str(b);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return reader.F64(out) && reader.Done() ? StatusCode::kOk
                                          : StatusCode::kInternal;
}

StatusCode Client::DifferenceQuery(const std::string& a, const std::string& b,
                                   std::span<const uint32_t> keys,
                                   std::vector<int64_t>* out) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kDifferenceQuery));
  writer.Str(a);
  writer.Str(b);
  writer.Keys(keys);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return reader.Counts(out) && reader.Done() ? StatusCode::kOk
                                             : StatusCode::kInternal;
}

StatusCode Client::InnerProduct(const std::string& a, const std::string& b,
                                double* out) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kInnerProduct));
  writer.Str(a);
  writer.Str(b);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return reader.F64(out) && reader.Done() ? StatusCode::kOk
                                          : StatusCode::kInternal;
}

StatusCode Client::WindowHeavyChangers(
    const std::string& name, int64_t delta,
    std::vector<std::pair<uint32_t, int64_t>>* out) {
  WireWriter writer;
  writer.U8(kProtocolVersion);
  writer.U8(static_cast<uint8_t>(Op::kWindowHeavyChangers));
  writer.Str(name);
  writer.I64(delta);
  std::string response;
  StatusCode status = StatusCode::kInternal;
  if (!RoundTrip(writer.Take(), &response, &status)) {
    return StatusCode::kInternal;
  }
  if (status != StatusCode::kOk) return status;
  WireReader reader(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(response.data()) + 1,
      response.size() - 1));
  return ReadPairs(reader, out) ? StatusCode::kOk : StatusCode::kInternal;
}

}  // namespace davinci::server
