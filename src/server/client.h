#ifndef DAVINCI_SERVER_CLIENT_H_
#define DAVINCI_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.h"

// Blocking client for the sketch server: one method per opcode, plus raw
// escape hatches (SendRaw / SendRequest / ReadResponse / fd()) that the
// conformance tests use to speak hostile bytes and the loadgen uses to
// pipeline. Every typed call returns the server's StatusCode, or
// kInternal when the transport itself failed (connection refused, short
// read, oversized reply). Not thread-safe: one Client per thread.

namespace davinci::server {

struct HealthReply {
  uint64_t shards = 0;
  uint64_t memory_bytes = 0;
  uint64_t inserts = 0;
  uint64_t queries = 0;
  uint64_t epoch = 0;
  bool windowed = false;
  // Merge-tree aggregation height (0 = pure raw-ingest leaf).
  uint32_t merge_height = 0;
  // Resize provenance (kResizeTenant / autotune; survives DVCK recovery).
  uint64_t resizes_applied = 0;
  uint64_t resizes_rejected = 0;
  uint64_t resize_bytes_before = 0;
  uint64_t resize_bytes_after = 0;
  uint32_t resize_last_trigger = 0;  // obs::ResizeHealth::Trigger
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to 127.0.0.1:port (the server only binds loopback).
  bool Connect(uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  // The raw socket, for tests that bypass the framing entirely.
  int fd() const { return fd_; }

  // ---- raw layer ----
  bool SendRaw(const void* data, size_t size);
  // Frames and sends one request body without waiting for the reply
  // (pipelining: send N, then ReadResponse N times, in order).
  bool SendRequest(const std::string& body);
  // Reads one framed response body (blocking).
  bool ReadResponse(std::string* body);
  // SendRequest + ReadResponse.
  bool Call(const std::string& body, std::string* response);

  // ---- admin / lifecycle ----
  StatusCode Ping();
  StatusCode CreateTenant(const std::string& name, uint32_t shards,
                          uint64_t total_bytes, uint64_t seed,
                          uint32_t window_epochs = 0, uint64_t max_bytes = 0);
  // Rebuilds `name` onto a new byte budget (kResizeTenant). On success
  // `new_memory_bytes` (optional) reports the engine's post-resize
  // footprint; kQuotaExceeded when the tenant's quota caps it below the
  // request.
  StatusCode ResizeTenant(const std::string& name, uint64_t total_bytes,
                          uint64_t* new_memory_bytes = nullptr);
  StatusCode DropTenant(const std::string& name);
  StatusCode ListTenants(std::vector<std::string>* names);
  StatusCode AdvanceEpoch(const std::string& name, uint64_t* epoch);
  StatusCode Checkpoint(const std::string& name, bool* written);
  StatusCode Health(const std::string& name, HealthReply* out);
  StatusCode FlushViews(const std::string& name);

  // ---- merge-tree fan-in ----
  // One exported image with its aggregation height, as shipped on the wire.
  struct ExportedSketch {
    uint32_t height = 0;
    std::string image;
  };
  // Flushes + serializes `name`'s shard image server-side (format 0 = flat,
  // 1 = DVSZ compressed) and returns it with the tenant's merge height.
  StatusCode ExportSketch(const std::string& name, uint8_t format,
                          ExportedSketch* out);
  // Fan-in: folds `images` (in order) into tenant `name`; on success
  // `new_height` (optional) reports the tenant's post-import merge height.
  StatusCode ImportMerge(const std::string& name,
                         std::span<const ExportedSketch> images,
                         uint32_t* new_height = nullptr);

  // ---- ingest ----
  StatusCode Insert(const std::string& name, uint32_t key, int64_t count = 1);
  StatusCode InsertBatch(const std::string& name,
                         std::span<const uint32_t> keys,
                         std::span<const int64_t> counts);
  // Builds the kInsertBatch request body without sending it (pipelining).
  static std::string InsertBatchRequest(const std::string& name,
                                        std::span<const uint32_t> keys,
                                        std::span<const int64_t> counts);

  // ---- the nine query tasks ----
  StatusCode Query(const std::string& name, uint32_t key, int64_t* out);
  StatusCode QueryBatch(const std::string& name,
                        std::span<const uint32_t> keys,
                        std::vector<int64_t>* out);
  static std::string QueryRequest(const std::string& name, uint32_t key);
  StatusCode HeavyHitters(const std::string& name, int64_t threshold,
                          std::vector<std::pair<uint32_t, int64_t>>* out);
  StatusCode HeavyChangers(const std::string& a, const std::string& b,
                           int64_t delta,
                           std::vector<std::pair<uint32_t, int64_t>>* out);
  StatusCode Cardinality(const std::string& name, double* out);
  StatusCode Distribution(const std::string& name,
                          std::vector<std::pair<int64_t, int64_t>>* out);
  StatusCode Entropy(const std::string& name, double* out);
  StatusCode UnionCardinality(const std::string& a, const std::string& b,
                              double* out);
  StatusCode DifferenceQuery(const std::string& a, const std::string& b,
                             std::span<const uint32_t> keys,
                             std::vector<int64_t>* out);
  StatusCode InnerProduct(const std::string& a, const std::string& b,
                          double* out);
  StatusCode WindowHeavyChangers(
      const std::string& name, int64_t delta,
      std::vector<std::pair<uint32_t, int64_t>>* out);

  // Parses a response produced by a pipelined ReadResponse for an op with
  // a status-only payload.
  static StatusCode ParseStatus(const std::string& response);

 private:
  // Sends `body` and parses `u8 status`, leaving the reader positioned on
  // the payload for the caller. False on transport failure.
  bool RoundTrip(const std::string& body, std::string* response,
                 StatusCode* status);

  int fd_ = -1;
};

}  // namespace davinci::server

#endif  // DAVINCI_SERVER_CLIENT_H_
