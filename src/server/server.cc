#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace davinci::server {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

SketchServer::SketchServer(ServerOptions options)
    : options_(options),
      registry_(options.checkpoint_dir),
      dispatcher_(&registry_,
                  DispatcherOptions{.checkpoint_every =
                                        options.checkpoint_every}),
      pool_(options.workers) {}

SketchServer::~SketchServer() { Stop(); }

bool SketchServer::Start() {
  if (running()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // bench/test daemon: local only
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 128) != 0 || !SetNonBlocking(listen_fd_)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = ntohs(addr.sin_port);
  if (::pipe(wake_pipe_) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  // Warm restart: revive every tenant whose checkpoint header parses;
  // corrupt bodies fall back to empty tenants (tenant.cc logs them).
  if (registry_.persistent()) registry_.RecoverAll();

  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  // Long-lived I/O loop, not per-request work — the per-request fan-out
  // goes through WorkerPool as the lint rule intends.
  loop_thread_ = std::thread([this] { Loop(); });  // davinci-lint: allow(raw-thread)
  return true;
}

void SketchServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  if (loop_thread_.joinable()) loop_thread_.join();
  for (std::unique_ptr<Connection>& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  // Graceful shutdown is a checkpoint boundary too: the next Start() of
  // this dir warm-restarts from here.
  if (registry_.persistent()) registry_.CheckpointAll();
}

void SketchServer::AcceptNew() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next iteration
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    connections_.push_back(std::move(conn));
  }
}

void SketchServer::DrainReadable(Connection& conn) {
  char buffer[64 * 1024];
  while (true) {
    ssize_t n = ::read(conn.fd, buffer, sizeof(buffer));
    if (n > 0) {
      if (!conn.assembler.Feed(reinterpret_cast<const uint8_t*>(buffer),
                               static_cast<size_t>(n))) {
        // Unrecoverable framing (zero or oversized length prefix): the
        // stream cannot be resynchronized. One kTooLarge reply, then
        // close once it flushes. Other tenants/connections are unharmed.
        conn.outbox += Frame(StatusBody(StatusCode::kTooLarge));
        conn.close_after_flush = true;
        return;
      }
      continue;
    }
    if (n == 0) {
      conn.eof = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    conn.eof = true;
    return;
  }
}

void SketchServer::DispatchRound() {
  std::vector<Connection*> busy;
  for (std::unique_ptr<Connection>& conn : connections_) {
    if (conn->assembler.fatal()) continue;
    std::vector<uint8_t> body;
    while (conn->assembler.Next(&body)) {
      conn->inbox.push_back(std::move(body));
    }
    if (!conn->inbox.empty()) busy.push_back(conn.get());
  }
  if (busy.empty()) return;
  // One fork/join round: worker i owns connection busy[i] outright and
  // answers its frames in arrival order — per-connection response order
  // is preserved without any locking.
  pool_.Run(busy.size(), [this, &busy](size_t i) {
    Connection& conn = *busy[i];
    for (const std::vector<uint8_t>& request : conn.inbox) {
      conn.outbox += Frame(dispatcher_.Handle(request));
    }
    conn.inbox.clear();
  });
}

void SketchServer::FlushWritable(Connection& conn) {
  while (!conn.outbox.empty()) {
    ssize_t n = ::send(conn.fd, conn.outbox.data(), conn.outbox.size(),
                       MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbox.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn.eof = true;  // peer gone; drop the connection below
    return;
  }
}

void SketchServer::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    // Connections accepted mid-iteration have no pollfd entry yet; only
    // the first `polled` entries of connections_ map onto fds[i + 2].
    const size_t polled = connections_.size();
    std::vector<pollfd> fds;
    fds.reserve(polled + 2);
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    for (std::unique_ptr<Connection>& conn : connections_) {
      short events = POLLIN;
      if (!conn->outbox.empty()) events |= POLLOUT;
      fds.push_back(pollfd{conn->fd, events, 0});
    }
    int ready = ::poll(fds.data(), fds.size(), 1000);
    if (ready < 0 && errno != EINTR) break;
    if (stop_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;

    if (fds[1].revents & POLLIN) {
      char drain[64];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) AcceptNew();
    for (size_t i = 0; i < polled; ++i) {
      short revents = fds[i + 2].revents;
      Connection& conn = *connections_[i];
      if (revents & (POLLERR | POLLHUP | POLLNVAL)) conn.eof = true;
      if ((revents & POLLIN) && !conn.eof && !conn.close_after_flush) {
        DrainReadable(conn);
      }
    }

    DispatchRound();

    // Opportunistic flush (most responses fit the socket buffer, so the
    // common case completes without waiting for a POLLOUT wakeup).
    for (size_t i = 0; i < connections_.size();) {
      Connection& conn = *connections_[i];
      FlushWritable(conn);
      if ((conn.eof && conn.outbox.empty() && conn.inbox.empty()) ||
          (conn.close_after_flush && conn.outbox.empty())) {
        ::close(conn.fd);
        connections_.erase(connections_.begin() +
                           static_cast<ptrdiff_t>(i));
        continue;
      }
      ++i;
    }
  }
}

}  // namespace davinci::server
