#ifndef DAVINCI_SERVER_DISPATCHER_H_
#define DAVINCI_SERVER_DISPATCHER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "server/protocol.h"
#include "server/tenant.h"

// RequestDispatcher: one request body in, one response body out. This is
// the server's entire opcode surface, factored away from the socket layer
// so tests/server_protocol_test.cc can exercise every handler in-process
// and the event loop stays a dumb byte pump.
//
// Contracts (asserted by the protocol conformance tests):
//   - NEVER aborts or throws on a hostile body: unknown opcodes answer
//     kUnknownOp, short/overlong/garbage payloads answer kMalformed, and
//     a cross-tenant query over mismatched sketch geometry answers
//     kBadArgument instead of tripping the core's DAVINCI_CHECK.
//   - Queries are answered exclusively from published SketchViews (the
//     engine's lock-free read path / Snapshot()); a query never takes a
//     writer lock, so a slow reader cannot stall ingest.
//   - Answers are bit-identical to the in-process computation: doubles
//     travel as IEEE-754 bit patterns, pair lists in the core's order.
//
// When constructed over a persistent registry with checkpoint_every > 0,
// ingest handlers count mutations per tenant and — at the threshold —
// seal an epoch and checkpoint that tenant (the "periodic checkpoint at
// epoch-seal boundaries" lifecycle in docs/SERVER.md).

namespace davinci::server {

struct DispatcherOptions {
  // Mutations per tenant between automatic seal-and-checkpoint triggers;
  // 0 disables the trigger (explicit kCheckpoint still works).
  uint64_t checkpoint_every = 0;
};

class RequestDispatcher {
 public:
  explicit RequestDispatcher(TenantRegistry* registry,
                             DispatcherOptions options = {});

  // Handles one framed request body, returning the response body (the
  // caller frames it). Thread-compatible with itself: concurrent Handle
  // calls are safe — all shared state lives behind the registry's and
  // tenants' own synchronization.
  std::string Handle(std::span<const uint8_t> body);

 private:
  std::string Dispatch(Op op, WireReader& reader);

  // Admin / lifecycle.
  std::string CreateTenant(WireReader& reader);
  std::string DropTenant(WireReader& reader);
  std::string ListTenants(WireReader& reader);
  std::string AdvanceEpoch(WireReader& reader);
  std::string Checkpoint(WireReader& reader);
  std::string Health(WireReader& reader);
  std::string FlushViews(WireReader& reader);
  // Dynamic geometry (docs/SERVER.md §Resize).
  std::string ResizeTenant(WireReader& reader);
  // Merge-tree fan-in (docs/SERVER.md §Export / ImportMerge).
  std::string ExportSketch(WireReader& reader);
  std::string ImportMerge(WireReader& reader);
  // Ingest.
  std::string Insert(WireReader& reader);
  std::string InsertBatch(WireReader& reader);
  // Queries.
  std::string Query(WireReader& reader);
  std::string QueryBatch(WireReader& reader);
  std::string HeavyHitters(WireReader& reader);
  std::string HeavyChangers(WireReader& reader);
  std::string Cardinality(WireReader& reader);
  std::string Distribution(WireReader& reader);
  std::string Entropy(WireReader& reader);
  std::string UnionCardinality(WireReader& reader);
  std::string DifferenceQuery(WireReader& reader);
  std::string InnerProduct(WireReader& reader);
  std::string WindowHeavyChangers(WireReader& reader);

  // Seals + checkpoints `tenant` once its mutation tally since the last
  // checkpoint reaches options_.checkpoint_every.
  void MaybeCheckpoint(const std::shared_ptr<Tenant>& tenant,
                       uint64_t mutations);

  TenantRegistry* registry_;
  DispatcherOptions options_;
};

}  // namespace davinci::server

#endif  // DAVINCI_SERVER_DISPATCHER_H_
