#ifndef DAVINCI_SERVER_SERVER_H_
#define DAVINCI_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/worker_pool.h"
#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/tenant.h"

// SketchServer: the multi-tenant measurement daemon (docs/SERVER.md).
//
// Architecture: ONE event-loop thread owns every socket; request
// execution fans out through a WorkerPool. Each poll() iteration
//   1. accepts new connections and drains readable sockets into their
//      per-connection FrameAssembler (the length-prefix state machine
//      that rejects hostile prefixes before buffering);
//   2. collects the connections that completed >= 1 frame and runs ONE
//      WorkerPool::Run round over them — each worker claims a connection
//      and handles ALL of its frames in arrival order. A connection is
//      touched by exactly one worker per round, so responses stay in
//      request order and no per-connection locking exists at all;
//      tenant-level synchronization lives inside TenantRegistry/Tenant.
//   3. flushes response bytes, closing connections that hit a fatal
//      framing error (kTooLarge reply first) or EOF.
//
// Lifecycle: Start() binds (loopback only), recovers tenants from the
// newest valid checkpoints (warm restart), and launches the loop thread.
// Stop() wakes the loop via a self-pipe, joins, closes every socket, and
// — when persistent — checkpoints all tenants one final time.

namespace davinci::server {

struct ServerOptions {
  // 0 = ephemeral port; port() reports the bound one after Start().
  uint16_t port = 0;
  // Empty disables persistence (no recovery, no checkpoints).
  std::string checkpoint_dir;
  // Mutations per tenant between automatic seal-and-checkpoint triggers;
  // 0 leaves only explicit kCheckpoint/kAdvanceEpoch checkpoints.
  uint64_t checkpoint_every = 0;
  // Extra threads in the request-execution pool (0 = everything on the
  // event-loop thread).
  size_t workers = 3;
};

class SketchServer {
 public:
  explicit SketchServer(ServerOptions options);
  ~SketchServer();
  SketchServer(const SketchServer&) = delete;
  SketchServer& operator=(const SketchServer&) = delete;

  // Binds + recovers + launches the loop thread. False on bind failure.
  bool Start();
  // Idempotent. Joins the loop thread; final CheckpointAll when persistent.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // The tenant map (tests reach in to compare wire answers against
  // in-process ones; the daemon main only touches it via the wire).
  TenantRegistry& registry() { return registry_; }

 private:
  struct Connection {
    int fd = -1;
    FrameAssembler assembler;
    // Complete request bodies gathered this iteration (drained by the
    // dispatch round).
    std::vector<std::vector<uint8_t>> inbox;
    // Framed responses not yet written to the socket.
    std::string outbox;
    // Sent after a fatal framing error, then close once outbox drains.
    bool close_after_flush = false;
    bool eof = false;
  };

  void Loop();
  void AcceptNew();
  // Reads everything available; queues kTooLarge + close on framing abuse.
  void DrainReadable(Connection& conn);
  // One WorkerPool round over every connection with a non-empty inbox.
  void DispatchRound();
  void FlushWritable(Connection& conn);

  const ServerOptions options_;
  TenantRegistry registry_;
  RequestDispatcher dispatcher_;
  WorkerPool pool_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread loop_thread_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace davinci::server

#endif  // DAVINCI_SERVER_SERVER_H_
