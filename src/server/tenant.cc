#include "server/tenant.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/serialize.h"

namespace davinci::server {

namespace {

constexpr uint32_t kCheckpointMagic = 0x4B435644;    // "DVCK"
constexpr uint32_t kCheckpointTrailer = 0x44564B43;  // "KCVD"
// v1 bodies carry flat SaveShards images; v2 carries DVSZ compressed
// ones. Readers accept both — the per-shard format is sniffed by
// DaVinciSketch::Load, so the version is provenance, not a dispatch key,
// and pre-compression checkpoints stay recoverable forever. v3 (current)
// additionally carries the tenant's quota, its live byte budget, and the
// resize provenance record in the header (see docs/SERVER.md
// §Checkpoints); v1/v2 recover with those fields zeroed.
constexpr uint32_t kCheckpointVersionFlat = 1;
constexpr uint32_t kCheckpointVersionCompressed = 2;
constexpr uint32_t kCheckpointVersion = 3;

// Tenant names double as checkpoint file stems, so they are restricted to
// a filesystem-safe alphabet — no separators, no dotfiles, no traversal.
bool ValidTenantName(const std::string& name) {
  if (name.empty() || name.size() > kMaxNameBytes) return false;
  if (name.front() == '.') return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-' && c != '.') {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Tenant

Tenant::Tenant(std::string name, const TenantOptions& options)
    : name_(std::move(name)),
      options_(options),
      engine_(options.shards, options.total_bytes, options.seed),
      current_bytes_(options.total_bytes) {
  if (options_.window_epochs > 0) {
    // The window shares the engine's per-shard budget so a windowed tenant
    // roughly doubles (not squares) its footprint; same seed keeps the
    // window's epochs mergeable with nothing — it is a private lifecycle.
    MutexLock lock(&window_mu_);
    window_ = std::make_unique<EpochManager>(
        options_.window_epochs,
        std::max<uint64_t>(8 * 1024, options_.total_bytes / options_.shards),
        options_.seed);
  }
}

void Tenant::Insert(uint32_t key, int64_t count) {
  engine_.Insert(key, count);
  if (windowed()) {
    MutexLock lock(&window_mu_);
    window_->Insert(key, count);
  }
}

void Tenant::InsertBatch(std::span<const uint32_t> keys,
                         std::span<const int64_t> counts) {
  engine_.InsertBatch(keys, counts);
  if (windowed()) {
    MutexLock lock(&window_mu_);
    window_->InsertBatch(keys, counts);
  }
}

uint64_t Tenant::AdvanceEpoch() {
  if (windowed()) {
    MutexLock lock(&window_mu_);
    window_->Advance();
    uint64_t epoch = window_->rotations();
    epoch_.store(epoch, std::memory_order_relaxed);
    return epoch;
  }
  return epoch_.fetch_add(1, std::memory_order_relaxed) + 1;
}

Tenant::ResizeOutcome Tenant::Resize(uint64_t total_bytes, uint32_t trigger) {
  MutexLock lock(&resize_mu_);
  if (total_bytes < 1024 || total_bytes > (uint64_t{1} << 31)) {
    engine_.RecordResizeRejected();
    return ResizeOutcome::kBadArgument;
  }
  if (options_.max_bytes != 0 && total_bytes > options_.max_bytes) {
    engine_.RecordResizeRejected();
    return ResizeOutcome::kQuotaExceeded;
  }
  // Same per-shard derivation as construction, at the new budget; the
  // creation seed carries over, so the relation is kResizable by
  // construction and the engine swap cannot be rejected.
  uint64_t per_shard =
      std::max<uint64_t>(8 * 1024, total_bytes / options_.shards);
  DaVinciConfig config =
      DaVinciConfig::FromMemory(per_shard, options_.seed);
  if (!engine_.Resize(config, trigger)) return ResizeOutcome::kBadArgument;
  if (windowed()) {
    // The window applies the same per-shard geometry at its next seal
    // boundary (EpochManager::Advance), mirroring its construction-time
    // budget share.
    MutexLock window_lock(&window_mu_);
    DAVINCI_CHECK(window_->ScheduleResize(config));
  }
  current_bytes_.store(total_bytes, std::memory_order_relaxed);
  return ResizeOutcome::kOk;
}

std::vector<std::pair<uint32_t, int64_t>> Tenant::WindowHeavyChangers(
    int64_t delta) const {
  if (!windowed()) return {};
  MutexLock lock(&window_mu_);
  if (window_->sealed_epochs() == 0) return {};
  return window_->HeavyChangers(delta);
}

void Tenant::CollectStats(obs::HealthSnapshot* out) const {
  engine_.CollectStats(out);
  if (windowed()) {
    obs::HealthSnapshot window_stats;
    {
      MutexLock lock(&window_mu_);
      window_->CollectStats(&window_stats);
    }
    out->Accumulate(window_stats);
  }
  {
    // Fold the checkpointed provenance baseline under the engine's live
    // counters so resize history reads continuously across a recovery —
    // same precedence rule as HealthSnapshot::Accumulate (the live record
    // wins the bytes/trigger fields once the engine has applied anything).
    MutexLock lock(&resize_mu_);
    out->resize.applied += resize_baseline_.applied;
    out->resize.rejected += resize_baseline_.rejected;
    if (out->resize.last_trigger == obs::ResizeHealth::kNone &&
        resize_baseline_.last_trigger != obs::ResizeHealth::kNone) {
      out->resize.bytes_before = resize_baseline_.bytes_before;
      out->resize.bytes_after = resize_baseline_.bytes_after;
      out->resize.last_trigger = resize_baseline_.last_trigger;
    }
  }
  out->merge_tree.height = merge_height();
  {
    MutexLock lock(&import_mu_);
    out->merge_tree.import_requests = import_requests_;
    out->merge_tree.imported_images = imported_images_;
    out->merge_tree.imported_bytes = imported_bytes_;
    out->merge_tree.images_per_level = images_per_level_;
  }
}

void Tenant::RecordImport(uint64_t images, uint64_t bytes,
                          uint32_t max_source_height) {
  uint32_t new_height = max_source_height + 1;
  // Monotonic max: concurrent imports race benignly.
  uint32_t seen = merge_height_.load(std::memory_order_relaxed);
  while (seen < new_height &&
         !merge_height_.compare_exchange_weak(seen, new_height,
                                              std::memory_order_relaxed)) {
  }
  MutexLock lock(&import_mu_);
  ++import_requests_;
  imported_images_ += images;
  imported_bytes_ += bytes;
  size_t level = std::min<size_t>(new_height - 1,
                                  obs::MergeTreeHealth::kMaxTrackedLevels - 1);
  if (images_per_level_.size() <= level) images_per_level_.resize(level + 1, 0);
  images_per_level_[level] += images;
}

void Tenant::SaveCheckpoint(std::ostream& out) {
  WritePod(out, kCheckpointMagic);
  WritePod(out, kCheckpointVersion);
  WritePod(out, static_cast<uint16_t>(name_.size()));
  out.write(name_.data(), static_cast<std::streamsize>(name_.size()));
  WritePod(out, options_.shards);
  WritePod(out, options_.total_bytes);
  WritePod(out, options_.seed);
  WritePod(out, options_.window_epochs);
  WritePod(out, options_.max_bytes);
  WritePod(out, epoch());
  // v3: the live budget and the cumulative resize record (recovery's
  // baseline + everything the engine applied since), so resize history
  // reads continuously across any number of crash/recover cycles. The
  // shard image below already carries the post-resize geometry — this is
  // provenance, not a rebuild key.
  WritePod(out, current_bytes());
  obs::ResizeHealth live = engine_.ResizeProvenance();
  {
    MutexLock lock(&resize_mu_);
    live.applied += resize_baseline_.applied;
    live.rejected += resize_baseline_.rejected;
    if (live.last_trigger == obs::ResizeHealth::kNone) {
      live.bytes_before = resize_baseline_.bytes_before;
      live.bytes_after = resize_baseline_.bytes_after;
      live.last_trigger = resize_baseline_.last_trigger;
    }
  }
  WritePod(out, live.applied);
  WritePod(out, live.rejected);
  WritePod(out, live.bytes_before);
  WritePod(out, live.bytes_after);
  WritePod(out, live.last_trigger);
  // Capture every completed write: views may be publish-interval stale.
  engine_.FlushViews();
  engine_.SaveShards(out, SketchFormat::kCompressed);
  WritePod(out, kCheckpointTrailer);
}

bool Tenant::ReadCheckpointHeader(std::istream& in, CheckpointHeader* header) {
  uint32_t magic = 0, version = 0;
  uint16_t name_len = 0;
  if (!ReadPod(in, &magic) || magic != kCheckpointMagic) return false;
  if (!ReadPod(in, &version) ||
      (version != kCheckpointVersionFlat &&
       version != kCheckpointVersionCompressed &&
       version != kCheckpointVersion)) {
    return false;
  }
  if (!ReadPod(in, &name_len) || name_len > kMaxNameBytes) return false;
  header->name.resize(name_len);
  in.read(header->name.data(), name_len);
  if (!in) return false;
  if (!ReadPod(in, &header->options.shards) ||
      !ReadPod(in, &header->options.total_bytes) ||
      !ReadPod(in, &header->options.seed) ||
      !ReadPod(in, &header->options.window_epochs)) {
    return false;
  }
  if (version >= kCheckpointVersion &&
      !ReadPod(in, &header->options.max_bytes)) {
    return false;
  }
  if (!ReadPod(in, &header->epoch)) return false;
  if (version >= kCheckpointVersion) {
    if (!ReadPod(in, &header->current_bytes) ||
        !ReadPod(in, &header->resize.applied) ||
        !ReadPod(in, &header->resize.rejected) ||
        !ReadPod(in, &header->resize.bytes_before) ||
        !ReadPod(in, &header->resize.bytes_after) ||
        !ReadPod(in, &header->resize.last_trigger)) {
      return false;
    }
  }
  return ValidTenantName(header->name) && header->options.Valid();
}

bool Tenant::RestoreCheckpointBody(std::istream& in,
                                   const CheckpointHeader& header) {
  if (!engine_.RestoreShards(in)) return false;
  uint32_t trailer = 0;
  if (!ReadPod(in, &trailer) || trailer != kCheckpointTrailer) return false;
  epoch_.store(header.epoch, std::memory_order_relaxed);
  {
    MutexLock lock(&resize_mu_);
    resize_baseline_ = header.resize;
  }
  if (header.current_bytes != 0) {
    current_bytes_.store(header.current_bytes, std::memory_order_relaxed);
  }
  return true;
}

// ---------------------------------------------------------------------------
// TenantRegistry

TenantRegistry::TenantRegistry(std::string checkpoint_dir)
    : dir_(std::move(checkpoint_dir)) {}

RegistryResult TenantRegistry::Create(const std::string& name,
                                      const TenantOptions& options,
                                      std::shared_ptr<Tenant>* out) {
  if (!ValidTenantName(name) || !options.Valid()) {
    return RegistryResult::kInvalid;
  }
  // Construct outside the lock (a big tenant allocates megabytes), then
  // publish under it.
  std::shared_ptr<Tenant> tenant = std::make_shared<Tenant>(name, options);
  {
    MutexLock lock(&mu_);
    if (tenants_.size() >= kMaxTenants) return RegistryResult::kFull;
    auto [it, inserted] = tenants_.emplace(name, tenant);
    if (!inserted) return RegistryResult::kExists;
  }
  if (out != nullptr) *out = std::move(tenant);
  return RegistryResult::kOk;
}

RegistryResult TenantRegistry::Drop(const std::string& name) {
  {
    MutexLock lock(&mu_);
    if (tenants_.erase(name) == 0) return RegistryResult::kNotFound;
    recovered_empty_.erase(name);
  }
  if (persistent()) {
    std::error_code ec;
    std::filesystem::remove(CheckpointPath(name), ec);
  }
  return RegistryResult::kOk;
}

std::shared_ptr<Tenant> TenantRegistry::Find(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

std::vector<std::string> TenantRegistry::List() const {
  std::vector<std::string> names;
  {
    MutexLock lock(&mu_);
    names.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t TenantRegistry::size() const {
  MutexLock lock(&mu_);
  return tenants_.size();
}

std::string TenantRegistry::CheckpointPath(const std::string& name) const {
  return (std::filesystem::path(dir_) / (name + ".dvck")).string();
}

bool TenantRegistry::Checkpoint(Tenant& tenant) {
  if (!persistent()) return false;
  MutexLock lock(&ckpt_mu_);
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string path = CheckpointPath(tenant.name());
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    tenant.SaveCheckpoint(out);
    if (!out) {
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  // rename(2) is atomic within a filesystem: readers (and a post-crash
  // recovery) see either the old image or the new one, never a torn file.
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  tenant.ResetMutationClock();
  return true;
}

size_t TenantRegistry::CheckpointAll() {
  size_t written = 0;
  std::vector<std::shared_ptr<Tenant>> tenants;
  {
    MutexLock lock(&mu_);
    tenants.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) tenants.push_back(tenant);
  }
  for (const std::shared_ptr<Tenant>& tenant : tenants) {
    if (Checkpoint(*tenant)) ++written;
  }
  return written;
}

size_t TenantRegistry::RecoverAll() {
  if (!persistent()) return 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) return 0;
  size_t recovered = 0;
  for (const std::filesystem::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || entry.path().extension() != ".dvck") {
      continue;
    }
    std::ifstream in(entry.path(), std::ios::binary);
    if (!in) continue;
    Tenant::CheckpointHeader header;
    if (!Tenant::ReadCheckpointHeader(in, &header)) {
      // Unusable header: there is nothing trustworthy to recreate the
      // tenant from. Skip the file (and say so) rather than abort.
      std::fprintf(stderr, "tenant recovery: %s: unreadable header, skipped\n",
                   entry.path().c_str());
      continue;
    }
    std::shared_ptr<Tenant> tenant;
    if (Create(header.name, header.options, &tenant) != RegistryResult::kOk) {
      continue;  // duplicate name across files, or registry full
    }
    bool restored = tenant->RestoreCheckpointBody(in, header);
    if (!restored) {
      // Load gate rejected the body: the tenant starts empty with the
      // header's options instead of serving a corrupted sketch.
      std::fprintf(stderr,
                   "tenant recovery: %s: corrupt body, tenant '%s' starts "
                   "empty\n",
                   entry.path().c_str(), header.name.c_str());
    }
    {
      MutexLock lock(&mu_);
      recovered_empty_[header.name] = !restored;
    }
    ++recovered;
  }
  return recovered;
}

bool TenantRegistry::RecoveredEmpty(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = recovered_empty_.find(name);
  return it != recovered_empty_.end() && it->second;
}

}  // namespace davinci::server
