#include "common/hash.h"

#include <cstring>

namespace davinci {
namespace {

inline uint32_t Rot(uint32_t x, int k) { return (x << k) | (x >> (32 - k)); }

// lookup3 mixing steps (public domain, Bob Jenkins, May 2006).
inline void Mix(uint32_t& a, uint32_t& b, uint32_t& c) {
  a -= c; a ^= Rot(c, 4);  c += b;
  b -= a; b ^= Rot(a, 6);  a += c;
  c -= b; c ^= Rot(b, 8);  b += a;
  a -= c; a ^= Rot(c, 16); c += b;
  b -= a; b ^= Rot(a, 19); a += c;
  c -= b; c ^= Rot(b, 4);  b += a;
}

inline void Final(uint32_t& a, uint32_t& b, uint32_t& c) {
  c ^= b; c -= Rot(b, 14);
  a ^= c; a -= Rot(c, 11);
  b ^= a; b -= Rot(a, 25);
  c ^= b; c -= Rot(b, 16);
  a ^= c; a -= Rot(c, 4);
  b ^= a; b -= Rot(a, 14);
  c ^= b; c -= Rot(b, 24);
}

}  // namespace

uint32_t BobHash(const void* data, size_t len, uint32_t seed) {
  const uint8_t* k = static_cast<const uint8_t*>(data);
  uint32_t a = 0xdeadbeef + static_cast<uint32_t>(len) + seed;
  uint32_t b = a;
  uint32_t c = a;

  while (len > 12) {
    uint32_t w[3];
    std::memcpy(w, k, 12);
    a += w[0];
    b += w[1];
    c += w[2];
    Mix(a, b, c);
    len -= 12;
    k += 12;
  }

  if (len > 0) {
    uint32_t w[3] = {0, 0, 0};
    std::memcpy(w, k, len);
    a += w[0];
    b += w[1];
    c += w[2];
    Final(a, b, c);
  }
  return c;
}

}  // namespace davinci
