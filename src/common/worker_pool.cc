#include "common/worker_pool.h"

namespace davinci {

WorkerPool::WorkerPool(size_t extra_workers) {
  threads_.reserve(extra_workers);
  for (size_t i = 0; i < extra_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  round_start_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::DrainShards() {
  for (;;) {
    size_t shard;
    const std::function<void(size_t)>* task;
    {
      MutexLock lock(&mutex_);
      if (next_shard_ >= shards_) return;
      shard = next_shard_++;
      ++in_flight_;
      task = task_;
    }
    (*task)(shard);
    bool last;
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      last = next_shard_ >= shards_ && in_flight_ == 0;
    }
    if (last) round_done_.notify_all();
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      // Hand-written wait loop: the guarded predicate must be evaluated in
      // this scope (where the analysis knows mutex_ is held), not inside a
      // wait(lock, pred) lambda it would treat as an unlocked function.
      MutexLock lock(&mutex_);
      while (!shutdown_ && generation_ == seen_generation) {
        round_start_.wait(mutex_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
    }
    DrainShards();
  }
}

void WorkerPool::Run(size_t shards, const std::function<void(size_t)>& fn) {
  if (shards == 0) return;
  if (threads_.empty() || shards == 1) {
    for (size_t s = 0; s < shards; ++s) fn(s);
    return;
  }
  {
    MutexLock lock(&mutex_);
    task_ = &fn;
    shards_ = shards;
    next_shard_ = 0;
    in_flight_ = 0;
    ++generation_;
  }
  round_start_.notify_all();
  // The caller works too — on a machine with exactly `extra_workers + 1`
  // cores every core runs shards, none sits blocked.
  DrainShards();
  MutexLock lock(&mutex_);
  while (!(next_shard_ >= shards_ && in_flight_ == 0)) {
    round_done_.wait(mutex_);
  }
  task_ = nullptr;
}

}  // namespace davinci
