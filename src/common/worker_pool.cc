#include "common/worker_pool.h"

namespace davinci {

WorkerPool::WorkerPool(size_t extra_workers) {
  threads_.reserve(extra_workers);
  for (size_t i = 0; i < extra_workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  round_start_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::DrainShards() {
  for (;;) {
    size_t shard;
    const std::function<void(size_t)>* task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_shard_ >= shards_) return;
      shard = next_shard_++;
      ++in_flight_;
      task = task_;
    }
    (*task)(shard);
    bool last;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      last = next_shard_ >= shards_ && in_flight_ == 0;
    }
    if (last) round_done_.notify_all();
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      round_start_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    DrainShards();
  }
}

void WorkerPool::Run(size_t shards, const std::function<void(size_t)>& fn) {
  if (shards == 0) return;
  if (threads_.empty() || shards == 1) {
    for (size_t s = 0; s < shards; ++s) fn(s);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &fn;
    shards_ = shards;
    next_shard_ = 0;
    in_flight_ = 0;
    ++generation_;
  }
  round_start_.notify_all();
  // The caller works too — on a machine with exactly `extra_workers + 1`
  // cores every core runs shards, none sits blocked.
  DrainShards();
  std::unique_lock<std::mutex> lock(mutex_);
  round_done_.wait(lock,
                   [&] { return next_shard_ >= shards_ && in_flight_ == 0; });
  task_ = nullptr;
}

}  // namespace davinci
