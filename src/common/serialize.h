#ifndef DAVINCI_COMMON_SERIALIZE_H_
#define DAVINCI_COMMON_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <type_traits>
#include <vector>

// Minimal binary (de)serialization helpers for sketch state. The format
// is a flat little-endian dump of PODs and length-prefixed vectors — the
// sketches write their configuration first, so a reader can reconstruct
// geometry before streaming counters.

namespace davinci {

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

// Largest single read()/write() issued for vector payloads. Byte counts
// are computed in uint64 and moved in chunks no larger than this, so the
// std::streamsize casts below can never truncate — even on builds where
// streamsize is 32-bit and a capped element count times sizeof(T) (2^28 ×
// 8 B = 2^31) would wrap the cast.
inline constexpr uint64_t kMaxIoChunkBytes = uint64_t{1} << 30;

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& values) {
  static_assert(std::is_trivially_copyable_v<T>);
  WritePod(out, static_cast<uint64_t>(values.size()));
  const char* data = reinterpret_cast<const char*>(values.data());
  uint64_t remaining = static_cast<uint64_t>(values.size()) * sizeof(T);
  while (remaining > 0) {
    uint64_t chunk = remaining < kMaxIoChunkBytes ? remaining : kMaxIoChunkBytes;
    out.write(data, static_cast<std::streamsize>(chunk));
    data += chunk;
    remaining -= chunk;
  }
}

// Upper bound on any serialized vector (2^28 elements ≈ the largest
// plausible sketch array). Rejecting larger prefixes keeps a corrupted or
// hostile stream from forcing a giant allocation.
inline constexpr uint64_t kMaxSerializedElements = uint64_t{1} << 28;

// Magnitude cap on any loaded per-flow/per-cell count (2^60). Honest
// sketches sit many orders of magnitude below this; rejecting larger
// values at Load time means every downstream combination — ResolveQuery's
// FP + EF + IFP three-term sum, a heavy-changer delta — stays well inside
// int64, so a hostile image can corrupt *answers* at worst, never trip
// undefined behavior (tests/fuzz/fuzz_serialize.cc leans on this).
inline constexpr int64_t kMaxLoadedCount = int64_t{1} << 60;

template <typename T>
bool ReadVec(std::istream& in, std::vector<T>* values) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = 0;
  if (!ReadPod(in, &size)) return false;
  if (size > kMaxSerializedElements) return false;
  values->resize(size);
  // The hostile-prefix byte length is validated in 64 bits and consumed in
  // kMaxIoChunkBytes pieces: the element cap alone does not keep
  // size*sizeof(T) inside a 32-bit std::streamsize, and a wrapped cast
  // would silently under-read the payload.
  char* data = reinterpret_cast<char*>(values->data());
  uint64_t remaining = size * sizeof(T);
  while (remaining > 0) {
    uint64_t chunk = remaining < kMaxIoChunkBytes ? remaining : kMaxIoChunkBytes;
    in.read(data, static_cast<std::streamsize>(chunk));
    if (!in) return false;
    data += chunk;
    remaining -= chunk;
  }
  return static_cast<bool>(in);
}

}  // namespace davinci

#endif  // DAVINCI_COMMON_SERIALIZE_H_
