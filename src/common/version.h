#ifndef DAVINCI_COMMON_VERSION_H_
#define DAVINCI_COMMON_VERSION_H_

// Library version, bumped per release.

namespace davinci {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace davinci

#endif  // DAVINCI_COMMON_VERSION_H_
