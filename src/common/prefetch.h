#ifndef DAVINCI_COMMON_PREFETCH_H_
#define DAVINCI_COMMON_PREFETCH_H_

// Portable software-prefetch wrappers for the batched insertion pipeline.
// On compilers without __builtin_prefetch these compile to nothing, so the
// pipeline degrades to a plain (still correct) staged loop.

namespace davinci {

// Hint that `addr` will be read soon.
inline void PrefetchRead(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/0, /*locality=*/3);
#else
  (void)addr;
#endif
}

// Hint that `addr` will be read and written soon.
inline void PrefetchWrite(const void* addr) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, /*rw=*/1, /*locality=*/3);
#else
  (void)addr;
#endif
}

}  // namespace davinci

#endif  // DAVINCI_COMMON_PREFETCH_H_
