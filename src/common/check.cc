#include "common/check.h"

#include <cstdio>
#include <cstdlib>

namespace davinci {
namespace internal {

void CheckFail(const char* file, int line, const char* expr,
               const std::string& message) {
  std::fprintf(stderr, "DAVINCI_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace davinci
