#ifndef DAVINCI_COMMON_THREAD_ANNOTATIONS_H_
#define DAVINCI_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>
#include <utility>

// Clang Thread Safety Analysis annotations (docs/STATIC_ANALYSIS.md).
//
// Every locking contract in the concurrency surface — which fields a mutex
// guards, which functions require it, which must be called without it — is
// written in these macros instead of prose, so `clang++ -Wthread-safety
// -Werror` (the `tsa` preset / CI leg) rejects any code that breaks the
// protocol at compile time. On GCC (which has no thread-safety analysis)
// every macro expands to nothing and the wrappers below cost exactly one
// std::mutex; the annotated build is the same program.
//
// The analysis only understands annotated capability types, not
// std::mutex/std::unique_lock (libstdc++ ships them unannotated), so the
// concurrency surface uses the `Mutex` / `MutexLock` wrappers below. A
// `std::unique_lock` returned across a call boundary is invisible to the
// analysis — that is why ConcurrentDaVinci exposes an annotated mutex
// reference for tests instead of a lock object (see ShardMutexForTesting).

#if defined(__clang__)
#define DAVINCI_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define DAVINCI_THREAD_ANNOTATION__(x)  // no-op on GCC and friends
#endif

// Type annotations ---------------------------------------------------------

// Marks a type as a capability ("mutex" in diagnostics).
#define DAVINCI_CAPABILITY(x) DAVINCI_THREAD_ANNOTATION__(capability(x))

// Marks an RAII type whose constructor acquires and destructor releases.
#define DAVINCI_SCOPED_CAPABILITY DAVINCI_THREAD_ANNOTATION__(scoped_lockable)

// Field annotations --------------------------------------------------------

// The field may only be read or written while holding `x`.
#define DAVINCI_GUARDED_BY(x) DAVINCI_THREAD_ANNOTATION__(guarded_by(x))

// The data pointed to may only be accessed while holding `x`.
#define DAVINCI_PT_GUARDED_BY(x) DAVINCI_THREAD_ANNOTATION__(pt_guarded_by(x))

// Function annotations -----------------------------------------------------

// Caller must hold the capability (exclusively) when calling.
#define DAVINCI_REQUIRES(...) \
  DAVINCI_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

// Function acquires the capability and holds it on return.
#define DAVINCI_ACQUIRE(...) \
  DAVINCI_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

// Function releases the capability (caller must hold it).
#define DAVINCI_RELEASE(...) \
  DAVINCI_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

// Function acquires the capability iff it returns `b`.
#define DAVINCI_TRY_ACQUIRE(b, ...) \
  DAVINCI_THREAD_ANNOTATION__(try_acquire_capability(b, __VA_ARGS__))

// Caller must NOT hold the capability (the function acquires it itself, or
// would deadlock). The analysis enforces this only across annotated code,
// which is exactly the surface we care about.
#define DAVINCI_EXCLUDES(...) \
  DAVINCI_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Function returns a reference to the capability named by `x`.
#define DAVINCI_RETURN_CAPABILITY(x) \
  DAVINCI_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch: the function body is not analyzed (its declared contract
// still is, for callers). Used only where the acquisition order is computed
// at runtime (MutexLockPair's address ordering) — never to silence a real
// finding; docs/STATIC_ANALYSIS.md requires a comment at every use.
#define DAVINCI_NO_THREAD_SAFETY_ANALYSIS \
  DAVINCI_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace davinci {

// An annotated mutex. Lower-case lock/unlock/try_lock keep it a standard
// BasicLockable, so std::condition_variable_any can wait on it directly
// (worker_pool.cc does) — the analysis sees the annotated methods, the
// standard library sees a Lockable.
class DAVINCI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DAVINCI_ACQUIRE() { mu_.lock(); }
  void unlock() DAVINCI_RELEASE() { mu_.unlock(); }
  bool try_lock() DAVINCI_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock the analysis can follow (the annotated std::lock_guard).
class DAVINCI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DAVINCI_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() DAVINCI_RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// MutexLock with an early-release valve, for scopes that must drop the
// lock before their end (the hostage-lock tests release the shard writer
// lock before asserting). Release() may be called at most once.
class DAVINCI_SCOPED_CAPABILITY ReleasableMutexLock {
 public:
  explicit ReleasableMutexLock(Mutex* mu) DAVINCI_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~ReleasableMutexLock() DAVINCI_RELEASE() {
    if (mu_ != nullptr) mu_->unlock();
  }

  void Release() DAVINCI_RELEASE() {
    mu_->unlock();
    mu_ = nullptr;
  }

  ReleasableMutexLock(const ReleasableMutexLock&) = delete;
  ReleasableMutexLock& operator=(const ReleasableMutexLock&) = delete;

 private:
  Mutex* mu_;
};

// Deadlock-free two-mutex scoped lock (the annotated std::scoped_lock):
// acquires in address order, so two threads merging two ConcurrentDaVinci
// instances into each other cannot deadlock. The constructor body is
// excluded from analysis because the acquisition order is computed at
// runtime — the ACQUIRE contract callers rely on is still enforced.
class DAVINCI_SCOPED_CAPABILITY MutexLockPair {
 public:
  MutexLockPair(Mutex* a, Mutex* b)
      DAVINCI_ACQUIRE(a, b) DAVINCI_NO_THREAD_SAFETY_ANALYSIS
      : a_(a), b_(b) {
    Mutex* first = std::less<Mutex*>()(a, b) ? a : b;
    Mutex* second = first == a ? b : a;
    first->lock();
    second->lock();
  }
  ~MutexLockPair() DAVINCI_RELEASE() DAVINCI_NO_THREAD_SAFETY_ANALYSIS {
    b_->unlock();
    a_->unlock();
  }

  MutexLockPair(const MutexLockPair&) = delete;
  MutexLockPair& operator=(const MutexLockPair&) = delete;

 private:
  Mutex* const a_;
  Mutex* const b_;
};

}  // namespace davinci

#endif  // DAVINCI_COMMON_THREAD_ANNOTATIONS_H_
