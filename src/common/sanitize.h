#ifndef DAVINCI_COMMON_SANITIZE_H_
#define DAVINCI_COMMON_SANITIZE_H_

// Marks a function whose unsigned arithmetic wraps BY DESIGN (hash mixing,
// modular-arithmetic carry tricks), so clang's `-fsanitize=integer` group —
// which flags well-defined unsigned wraparound as a lint — skips it. The
// core `undefined` sanitizers still run inside these functions; GCC doesn't
// implement the integer group, so the attribute is clang-only. Every use
// must sit next to a comment saying why the wrap is intentional
// (docs/STATIC_ANALYSIS.md).
#if defined(__clang__)
#define DAVINCI_NO_SANITIZE_INTEGER \
  __attribute__((no_sanitize("unsigned-integer-overflow", \
                             "unsigned-shift-base")))
#else
#define DAVINCI_NO_SANITIZE_INTEGER
#endif

#endif  // DAVINCI_COMMON_SANITIZE_H_
