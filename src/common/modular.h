#ifndef DAVINCI_COMMON_MODULAR_H_
#define DAVINCI_COMMON_MODULAR_H_

#include <cstdint>

#include "common/check.h"
#include "common/sanitize.h"

// Modular arithmetic over a 64-bit prime, used by the counting Fermat
// sketch (the DaVinci infrequent part) and by FlowRadar/LossRadar-style
// invertible structures.
//
// The paper's decode relies on Fermat's little theorem: for prime p and
// a ≢ 0 (mod p), a^(p-1) ≡ 1, hence a^(p-2) is the multiplicative inverse.

namespace davinci {

// Smallest prime larger than 2^32, so any non-zero 32-bit key is a unit
// mod p and decodes uniquely.
inline constexpr uint64_t kFermatPrime = 4294967311ULL;  // 2^32 + 15

// (a * b) mod m without overflow (128-bit intermediate).
uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m);

// (base ^ exp) mod m by square-and-multiply.
uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m);

// Multiplicative inverse of a mod prime p via Fermat's little theorem.
// Precondition: a % p != 0.
uint64_t ModInverse(uint64_t a, uint64_t p);

// Reduce a signed 64-bit value into [0, p). All arithmetic is unsigned:
// the old signed form (`v % int64_t(p)`) silently computed the wrong
// residue for p > INT64_MAX and relied on signed overflow rules for
// INT64_MIN; the magnitude trick below is fully defined for every input
// (note `-(v + 1)` cannot overflow, unlike `-v` at INT64_MIN).
inline uint64_t SignedMod(int64_t v, uint64_t p) {
  DAVINCI_DCHECK(p != 0);
  if (v >= 0) return static_cast<uint64_t>(v) % p;
  uint64_t magnitude = static_cast<uint64_t>(-(v + 1)) + 1;
  uint64_t r = magnitude % p;
  return r == 0 ? 0 : p - r;
}

// Modular addition/subtraction for values already in [0, p).
// Precondition (DCHECKed): a, b ∈ [0, p). Correct for any p up to 2^64−1:
// `s < a` detects uint64 wraparound of `a + b`, and the following `s -= p`
// wraps a second time, landing exactly on a + b − p.
DAVINCI_NO_SANITIZE_INTEGER
inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t p) {
  DAVINCI_DCHECK(a < p && b < p);
  uint64_t s = a + b;
  if (s >= p || s < a) s -= p;
  return s;
}

inline uint64_t SubMod(uint64_t a, uint64_t b, uint64_t p) {
  DAVINCI_DCHECK(a < p && b < p);
  return a >= b ? a - b : a + (p - b);
}

// Two's-complement wrapping int64 arithmetic, defined for EVERY input
// (signed overflow is UB; the uint64 round-trip is exact mod 2^64 since
// C++20). The IFP bucket cells (`icnt`) and the peeling decode use these:
// a corrupted or adversarial Load image can put arbitrary values in the
// cells, and the decode must stay UB-free on them so validation gets the
// chance to reject the garbage (tests/fuzz/fuzz_decode.cc drives this).
inline int64_t WrapAdd(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) +
                              static_cast<uint64_t>(b));
}

inline int64_t WrapSub(int64_t a, int64_t b) {
  return static_cast<int64_t>(static_cast<uint64_t>(a) -
                              static_cast<uint64_t>(b));
}

inline int64_t WrapNeg(int64_t a) { return WrapSub(0, a); }

// sign(±1) · v with a wrapping negation (−INT64_MIN is UB, its wrap is
// INT64_MIN again — exactly what the decode's self-inverse algebra needs).
inline int64_t SignApply(int sign, int64_t v) {
  return sign >= 0 ? v : WrapNeg(v);
}

}  // namespace davinci

#endif  // DAVINCI_COMMON_MODULAR_H_
