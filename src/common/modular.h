#ifndef DAVINCI_COMMON_MODULAR_H_
#define DAVINCI_COMMON_MODULAR_H_

#include <cstdint>

// Modular arithmetic over a 64-bit prime, used by the counting Fermat
// sketch (the DaVinci infrequent part) and by FlowRadar/LossRadar-style
// invertible structures.
//
// The paper's decode relies on Fermat's little theorem: for prime p and
// a ≢ 0 (mod p), a^(p-1) ≡ 1, hence a^(p-2) is the multiplicative inverse.

namespace davinci {

// Smallest prime larger than 2^32, so any non-zero 32-bit key is a unit
// mod p and decodes uniquely.
inline constexpr uint64_t kFermatPrime = 4294967311ULL;  // 2^32 + 15

// (a * b) mod m without overflow (128-bit intermediate).
uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m);

// (base ^ exp) mod m by square-and-multiply.
uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m);

// Multiplicative inverse of a mod prime p via Fermat's little theorem.
// Precondition: a % p != 0.
uint64_t ModInverse(uint64_t a, uint64_t p);

// Reduce a signed 64-bit value into [0, p).
inline uint64_t SignedMod(int64_t v, uint64_t p) {
  int64_t r = v % static_cast<int64_t>(p);
  if (r < 0) r += static_cast<int64_t>(p);
  return static_cast<uint64_t>(r);
}

// Modular addition/subtraction for values already in [0, p).
inline uint64_t AddMod(uint64_t a, uint64_t b, uint64_t p) {
  uint64_t s = a + b;
  if (s >= p) s -= p;
  return s;
}

inline uint64_t SubMod(uint64_t a, uint64_t b, uint64_t p) {
  return a >= b ? a - b : a + p - b;
}

}  // namespace davinci

#endif  // DAVINCI_COMMON_MODULAR_H_
