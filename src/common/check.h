#ifndef DAVINCI_COMMON_CHECK_H_
#define DAVINCI_COMMON_CHECK_H_

#include <sstream>
#include <string>

// Invariant-checking support for the sketch structures.
//
// DAVINCI_CHECK*   — always on, abort with file:line and a message on
//                    failure. Used by the CheckInvariants() audits so they
//                    fire even in release-built tests.
// DAVINCI_DCHECK*  — same, but compiled out under NDEBUG (the condition is
//                    parsed, never evaluated). Used for hot-path
//                    preconditions that would cost real time in release.
//
// The *_MSG variants take an extra context expression (anything
// std::string-convertible); it is evaluated only when the check fails, so
// building the message with std::to_string costs nothing on the success
// path.

namespace davinci {

// How much a structural audit may assume about the workload that built the
// sketch. Several invariants (counter nonnegativity, tower saturation
// bounds, the FP evict-counter bound) hold only when every update was a
// nonnegative insert or a merge; after Subtract or negative-count inserts
// only the unconditional structural invariants remain.
enum class InvariantMode {
  kAdditive,  // built from nonnegative Inserts and Merges only
  kGeneral,   // anything goes (Subtract, negative counts)
};

namespace internal {

[[noreturn]] void CheckFail(const char* file, int line, const char* expr,
                            const std::string& message);

// Failure reporter for the binary-comparison checks: formats both operand
// values into the message so the log shows what was actually compared.
template <typename A, typename B>
[[noreturn]] void CheckOpFail(const char* file, int line, const char* expr,
                              const A& lhs, const B& rhs) {
  std::ostringstream os;
  os << "(" << lhs << " vs " << rhs << ")";
  CheckFail(file, line, expr, os.str());
}

}  // namespace internal
}  // namespace davinci

#define DAVINCI_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::davinci::internal::CheckFail(__FILE__, __LINE__, #cond,          \
                                     std::string());                     \
    }                                                                    \
  } while (0)

#define DAVINCI_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::davinci::internal::CheckFail(__FILE__, __LINE__, #cond, (msg));  \
    }                                                                    \
  } while (0)

#define DAVINCI_INTERNAL_CHECK_OP(op, a, b)                              \
  do {                                                                   \
    const auto& davinci_check_lhs = (a);                                 \
    const auto& davinci_check_rhs = (b);                                 \
    if (!(davinci_check_lhs op davinci_check_rhs)) {                     \
      ::davinci::internal::CheckOpFail(__FILE__, __LINE__,               \
                                       #a " " #op " " #b,                \
                                       davinci_check_lhs,                \
                                       davinci_check_rhs);               \
    }                                                                    \
  } while (0)

#define DAVINCI_CHECK_EQ(a, b) DAVINCI_INTERNAL_CHECK_OP(==, a, b)
#define DAVINCI_CHECK_LE(a, b) DAVINCI_INTERNAL_CHECK_OP(<=, a, b)
#define DAVINCI_CHECK_LT(a, b) DAVINCI_INTERNAL_CHECK_OP(<, a, b)

#ifdef NDEBUG
// The `false &&` keeps the condition compiled (names stay "used", typos
// still break the build) while the short circuit removes the evaluation.
#define DAVINCI_DCHECK(cond) static_cast<void>(false && (cond))
#define DAVINCI_DCHECK_MSG(cond, msg) static_cast<void>(false && (cond))
#define DAVINCI_DCHECK_EQ(a, b) static_cast<void>(false && ((a) == (b)))
#define DAVINCI_DCHECK_LE(a, b) static_cast<void>(false && ((a) <= (b)))
#define DAVINCI_DCHECK_LT(a, b) static_cast<void>(false && ((a) < (b)))
#else
#define DAVINCI_DCHECK(cond) DAVINCI_CHECK(cond)
#define DAVINCI_DCHECK_MSG(cond, msg) DAVINCI_CHECK_MSG(cond, msg)
#define DAVINCI_DCHECK_EQ(a, b) DAVINCI_CHECK_EQ(a, b)
#define DAVINCI_DCHECK_LE(a, b) DAVINCI_CHECK_LE(a, b)
#define DAVINCI_DCHECK_LT(a, b) DAVINCI_CHECK_LT(a, b)
#endif

#endif  // DAVINCI_COMMON_CHECK_H_
