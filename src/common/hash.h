#ifndef DAVINCI_COMMON_HASH_H_
#define DAVINCI_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

#include "common/sanitize.h"

// Hash functions used throughout the library.
//
// The paper evaluates with "Bob Hash" (Bob Jenkins' lookup3). We provide a
// faithful lookup3 implementation for arbitrary byte strings plus a fast
// seeded 64-bit mixer for fixed-width integer keys, which is what every
// sketch in this repository hashes. Each sketch row draws an independent
// hash by picking a distinct seed.

namespace davinci {

// Bob Jenkins' lookup3 hashword-style hash over a byte string.
// `seed` selects an independent function from the family.
uint32_t BobHash(const void* data, size_t len, uint32_t seed);

// SplitMix64 finalizer: a high-quality 64-bit mixer. Used to derive
// per-row seeds and as the integer-key hash. The adds and multiplies wrap
// mod 2^64 by construction — that IS the mixing.
DAVINCI_NO_SANITIZE_INTEGER
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A seeded 64-bit hash family over integer keys. Instances are cheap value
// types; two instances with the same seed are the same function.
//
// Hot-path composition: the batched insertion pipeline mixes each key ONCE
// with BaseHash and then derives every row/part hash from that base with
// RehashBase (one multiply + xor-shift, keyed by the row seed). Index
// reduction uses FastReduce (Lemire's multiply-shift fastrange, with a mask
// path for power-of-two widths) instead of a hardware divide.
class HashFamily {
 public:
  HashFamily() : seed_(0) {}
  // The seed offset wraps mod 2^64 by design (it only decorrelates seeds).
  DAVINCI_NO_SANITIZE_INTEGER
  explicit HashFamily(uint64_t seed)
      : seed_(Mix64(seed + 0x5851f42d4c957f2dULL)) {}

  // Full 64-bit hash of `key`.
  uint64_t Hash(uint64_t key) const { return Mix64(key ^ seed_); }

  // One full mix of the key, shared across every row and part. Seed
  // independent: compute it once per key and thread it through the
  // *WithHash entry points.
  static constexpr uint64_t BaseHash(uint64_t key) { return Mix64(key); }

  // Cheap per-row derivation from a precomputed BaseHash: one multiply
  // (murmur3 fmix constant) plus a xor-shift, keyed by this family's seed.
  // The multiply pushes entropy into the high bits, which is exactly what
  // FastReduce consumes — its wrap mod 2^64 is the mixing.
  DAVINCI_NO_SANITIZE_INTEGER
  constexpr uint64_t RehashBase(uint64_t base_hash) const {
    uint64_t x = (base_hash ^ seed_) * 0xff51afd7ed558ccdULL;
    return x ^ (x >> 33);
  }

  // Lemire fastrange: reduce a 64-bit hash to [0, n) with one multiply
  // (high 64 bits of hash·n), or a mask when n is a power of two.
  // Precondition: n >= 1.
  static constexpr size_t FastReduce(uint64_t hash, size_t n) {
    if ((n & (n - 1)) == 0) return static_cast<size_t>(hash & (n - 1));
    return static_cast<size_t>(
        (static_cast<unsigned __int128>(hash) * n) >> 64);
  }

  // Hash reduced to a bucket index in [0, buckets).
  size_t Bucket(uint64_t key, size_t buckets) const {
    return static_cast<size_t>(Hash(key) % buckets);
  }

  // Divide-free bucket index used by the DaVinci hot path. NOTE: this is a
  // different (equally uniform) mapping than Bucket(); a structure must use
  // one or the other consistently.
  size_t BucketFast(uint64_t key, size_t buckets) const {
    return FastReduce(RehashBase(BaseHash(key)), buckets);
  }

  // Same, from a precomputed BaseHash (the batched pipeline's form).
  size_t BucketFastWithBase(uint64_t base_hash, size_t buckets) const {
    return FastReduce(RehashBase(base_hash), buckets);
  }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

// ±1 hash (the paper's ζ_i). Derived from an independent bit of the family.
class SignHash {
 public:
  SignHash() : family_(1) {}
  explicit SignHash(uint64_t seed) : family_(seed ^ 0xa076bc9d3f2e11ULL) {}

  // Returns +1 or -1 with equal probability over keys. The sign comes from
  // the hash's high bit: after the final multiply the top bits carry the
  // most mixed entropy, whereas bit 0 is the weakest bit of a multiply.
  int Sign(uint64_t key) const {
    return SignWithBase(HashFamily::BaseHash(key));
  }

  // Same, from a precomputed BaseHash.
  int SignWithBase(uint64_t base_hash) const {
    return (family_.RehashBase(base_hash) >> 63) ? 1 : -1;
  }

 private:
  HashFamily family_;
};

}  // namespace davinci

#endif  // DAVINCI_COMMON_HASH_H_
