#ifndef DAVINCI_COMMON_HASH_H_
#define DAVINCI_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>

// Hash functions used throughout the library.
//
// The paper evaluates with "Bob Hash" (Bob Jenkins' lookup3). We provide a
// faithful lookup3 implementation for arbitrary byte strings plus a fast
// seeded 64-bit mixer for fixed-width integer keys, which is what every
// sketch in this repository hashes. Each sketch row draws an independent
// hash by picking a distinct seed.

namespace davinci {

// Bob Jenkins' lookup3 hashword-style hash over a byte string.
// `seed` selects an independent function from the family.
uint32_t BobHash(const void* data, size_t len, uint32_t seed);

// SplitMix64 finalizer: a high-quality 64-bit mixer. Used to derive
// per-row seeds and as the integer-key hash.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// A seeded 64-bit hash family over integer keys. Instances are cheap value
// types; two instances with the same seed are the same function.
class HashFamily {
 public:
  HashFamily() : seed_(0) {}
  explicit HashFamily(uint64_t seed) : seed_(Mix64(seed + 0x5851f42d4c957f2dULL)) {}

  // Full 64-bit hash of `key`.
  uint64_t Hash(uint64_t key) const { return Mix64(key ^ seed_); }

  // Hash reduced to a bucket index in [0, buckets).
  size_t Bucket(uint64_t key, size_t buckets) const {
    return static_cast<size_t>(Hash(key) % buckets);
  }

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
};

// ±1 hash (the paper's ζ_i). Derived from an independent bit of the family.
class SignHash {
 public:
  SignHash() : family_(1) {}
  explicit SignHash(uint64_t seed) : family_(seed ^ 0xa076bc9d3f2e11ULL) {}

  // Returns +1 or -1 with equal probability over keys.
  int Sign(uint64_t key) const {
    return (family_.Hash(key) & 1) ? 1 : -1;
  }

 private:
  HashFamily family_;
};

}  // namespace davinci

#endif  // DAVINCI_COMMON_HASH_H_
