#include "common/modular.h"

namespace davinci {

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  return static_cast<uint64_t>((static_cast<unsigned __int128>(a) * b) % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

uint64_t ModInverse(uint64_t a, uint64_t p) {
  return PowMod(a % p, p - 2, p);
}

}  // namespace davinci
