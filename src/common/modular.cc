#include "common/modular.h"

namespace davinci {

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t m) {
  DAVINCI_DCHECK(m != 0);
  return static_cast<uint64_t>((static_cast<unsigned __int128>(a) * b) % m);
}

uint64_t PowMod(uint64_t base, uint64_t exp, uint64_t m) {
  DAVINCI_DCHECK(m != 0);
  uint64_t result = 1 % m;
  base %= m;
  while (exp > 0) {
    if ((exp & 1) != 0) result = MulMod(result, base, m);
    base = MulMod(base, base, m);
    exp >>= 1;
  }
  return result;
}

uint64_t ModInverse(uint64_t a, uint64_t p) {
  // Fermat's little theorem needs a unit: a ≢ 0 (mod p). A zero here means
  // the caller is about to divide by zero in the field — in the Fermat
  // decode path that corrupts every subsequent peel, so fail loudly.
  DAVINCI_DCHECK_MSG(a % p != 0, "ModInverse of 0 is undefined");
  DAVINCI_DCHECK(p > 2);
  return PowMod(a % p, p - 2, p);
}

}  // namespace davinci
