#ifndef DAVINCI_COMMON_VARINT_H_
#define DAVINCI_COMMON_VARINT_H_

#include <cstdint>
#include <istream>
#include <ostream>

// LEB128 varints + zigzag signed mapping — the primitives of the DVSZ
// compressed sketch encoding (DESIGN.md §Wire format). A uint64 costs
// 1..10 bytes, small magnitudes cost 1; zigzag folds sign into the low
// bit so near-zero signed counters stay one byte either way.
//
// The reader is the trust boundary: it rejects streams that run past 10
// continuation bytes or set payload bits beyond the 64th (an "overlong"
// encoding that would otherwise wrap silently), so a hostile image can
// fail a Load but never smuggle an out-of-range value through.

namespace davinci {

inline void WriteVarU64(std::ostream& out, uint64_t value) {
  while (value >= 0x80) {
    out.put(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.put(static_cast<char>(value));
}

inline bool ReadVarU64(std::istream& in, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    int byte = in.get();
    if (byte == std::istream::traits_type::eof()) return false;
    uint64_t payload = static_cast<uint64_t>(byte) & 0x7F;
    // The 10th byte carries bits 63..69: anything above bit 63 means the
    // encoded value does not fit in 64 bits.
    if (shift == 63 && payload > 1) return false;
    result |= payload << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
  }
  return false;  // 10 continuation bytes and still no terminator
}

inline uint64_t ZigZagEncode(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         (value < 0 ? ~uint64_t{0} : uint64_t{0});
}

inline int64_t ZigZagDecode(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

inline void WriteVarI64(std::ostream& out, int64_t value) {
  WriteVarU64(out, ZigZagEncode(value));
}

inline bool ReadVarI64(std::istream& in, int64_t* value) {
  uint64_t raw = 0;
  if (!ReadVarU64(in, &raw)) return false;
  *value = ZigZagDecode(raw);
  return true;
}

}  // namespace davinci

#endif  // DAVINCI_COMMON_VARINT_H_
