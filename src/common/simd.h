#ifndef DAVINCI_COMMON_SIMD_H_
#define DAVINCI_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

// Vectorized bucket-probe kernels for the DaVinci hot paths.
//
// The frequent part stores each bucket as SoA lanes — a contiguous run of
// keys and a contiguous run of counts — padded to kKeyLaneStride slots, so
// one vector compare tests a whole bucket's keys at once. The kernels here
// are the only place that knows which instruction set is in use; everything
// else calls FindLiveKey/FindZeroCount and gets identical results from
// every backend (the scalar reference is the semantic definition, and the
// simd-off CI preset pins the equivalence).
//
// Backend selection is compile-time:
//   -DDAVINCI_SIMD=OFF (cmake)  -> DAVINCI_SIMD_DISABLED -> scalar
//   __AVX2__                    -> 8-lane 32-bit compares
//   __SSE2__                    -> 4-lane 32-bit compares
//   anything else               -> scalar
//
// Padding contract: callers pass lanes whose length is a multiple of
// kKeyLaneStride; padding slots hold key 0 / count 0 and are never live, so
// the liveness filter (count != 0) masks them out of every result.

#if !defined(DAVINCI_SIMD_DISABLED) && defined(__AVX2__)
#include <immintrin.h>
#define DAVINCI_SIMD_AVX2 1
#elif !defined(DAVINCI_SIMD_DISABLED) && defined(__SSE2__)
#include <emmintrin.h>
#define DAVINCI_SIMD_SSE2 1
#endif

namespace davinci::simd {

// Bucket key lanes are padded to a multiple of this many slots so the
// kernels can issue full-width loads with no tail masking.
inline constexpr size_t kKeyLaneStride = 8;

inline constexpr size_t PaddedSlots(size_t slots) {
  return (slots + kKeyLaneStride - 1) / kKeyLaneStride * kKeyLaneStride;
}

#if defined(DAVINCI_SIMD_AVX2)
inline constexpr const char* kBackend = "avx2";
#elif defined(DAVINCI_SIMD_SSE2)
inline constexpr const char* kBackend = "sse2";
#else
inline constexpr const char* kBackend = "scalar";
#endif

// Reference semantics for every backend: the first slot i < padded_n with
// keys[i] == key and counts[i] != 0, or SIZE_MAX. Always compiled (the
// micro-benchmarks and the equivalence tests compare against it).
inline size_t FindLiveKeyScalar(const uint32_t* keys, const int64_t* counts,
                                size_t padded_n, uint32_t key) {
  for (size_t i = 0; i < padded_n; ++i) {
    if (keys[i] == key && counts[i] != 0) return i;
  }
  return SIZE_MAX;
}

// Reference: the first slot i < padded_n with counts[i] == 0, or SIZE_MAX.
inline size_t FindZeroCountScalar(const int64_t* counts, size_t padded_n) {
  for (size_t i = 0; i < padded_n; ++i) {
    if (counts[i] == 0) return i;
  }
  return SIZE_MAX;
}

// First live slot holding `key`. One vector compare covers a whole stride
// of keys; match candidates (rare: at most one live plus stale duplicates)
// are filtered by the scalar liveness check.
inline size_t FindLiveKey(const uint32_t* keys, const int64_t* counts,
                          size_t padded_n, uint32_t key) {
#if defined(DAVINCI_SIMD_AVX2)
  const __m256i needle = _mm256_set1_epi32(static_cast<int>(key));
  for (size_t base = 0; base < padded_n; base += 8) {
    const __m256i lane = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(keys + base));
    uint32_t mask = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpeq_epi32(lane, needle))));
    while (mask != 0) {
      size_t i = base + static_cast<size_t>(__builtin_ctz(mask));
      if (counts[i] != 0) return i;
      mask &= mask - 1;
    }
  }
  return SIZE_MAX;
#elif defined(DAVINCI_SIMD_SSE2)
  const __m128i needle = _mm_set1_epi32(static_cast<int>(key));
  for (size_t base = 0; base < padded_n; base += 4) {
    const __m128i lane =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + base));
    uint32_t mask = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(lane, needle))));
    while (mask != 0) {
      size_t i = base + static_cast<size_t>(__builtin_ctz(mask));
      if (counts[i] != 0) return i;
      mask &= mask - 1;
    }
  }
  return SIZE_MAX;
#else
  return FindLiveKeyScalar(keys, counts, padded_n, key);
#endif
}

// First free slot (count == 0). Padding counts are always zero, so a full
// bucket of s live slots returns s (the first padding slot) when padded_n
// exceeds the logical slot count — callers compare against their logical
// width.
inline size_t FindZeroCount(const int64_t* counts, size_t padded_n) {
#if defined(DAVINCI_SIMD_AVX2)
  const __m256i zero = _mm256_setzero_si256();
  for (size_t base = 0; base < padded_n; base += 4) {
    const __m256i lane = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(counts + base));
    uint32_t mask = static_cast<uint32_t>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(lane, zero))));
    if (mask != 0) return base + static_cast<size_t>(__builtin_ctz(mask));
  }
  return SIZE_MAX;
#else
  // SSE2 has no 64-bit integer compare; the scalar scan is already cheap
  // next to the vector key probe.
  return FindZeroCountScalar(counts, padded_n);
#endif
}

}  // namespace davinci::simd

#endif  // DAVINCI_COMMON_SIMD_H_
