#ifndef DAVINCI_COMMON_WORKER_POOL_H_
#define DAVINCI_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

// A small persistent fork/join pool for round-synchronized parallel scans
// (the IFP peeling decode runs tens of purity-scan rounds per call; paying
// a thread spawn + join per round — the PR 4 design — cost more than the
// scan it parallelized). Threads are created once, parked on a condition
// variable between rounds, and torn down by the destructor.
//
// The pool runs *shard-indexed* work: Run(shards, fn) invokes fn(s) exactly
// once for each s in [0, shards) and returns when all calls finished. The
// caller's thread executes shard 0 (and any shard left unclaimed), so a
// pool constructed with `extra_workers == 0` degrades to a plain loop and a
// machine with one core never context-switches for correctness. Shard
// claiming is dynamic, so fn must not care which thread runs which shard —
// decode's determinism comes from sharding by contiguous range and
// concatenating results in shard order, not from thread identity.
//
// The locking protocol is machine-checked: every piece of round state is
// GUARDED_BY(mutex_), and the entry points carry EXCLUDES(mutex_), so the
// TSA build rejects both an unlocked touch of the round counters and a
// reentrant call that would self-deadlock.

namespace davinci {

class WorkerPool {
 public:
  // Spawns `extra_workers` helper threads (0 is valid: everything runs on
  // the calling thread).
  explicit WorkerPool(size_t extra_workers);
  ~WorkerPool() DAVINCI_EXCLUDES(mutex_);
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Executes fn(0) .. fn(shards-1), each exactly once, across the helper
  // threads and the calling thread; blocks until every shard completed.
  // Not reentrant: one Run at a time per pool (decode's rounds are
  // strictly sequential, which is the point).
  void Run(size_t shards, const std::function<void(size_t)>& fn)
      DAVINCI_EXCLUDES(mutex_);

  size_t extra_workers() const { return threads_.size(); }

 private:
  void WorkerLoop() DAVINCI_EXCLUDES(mutex_);
  // Claims and runs shards until none remain; returns when the round's
  // shard counter is exhausted.
  void DrainShards() DAVINCI_EXCLUDES(mutex_);

  Mutex mutex_;
  // condition_variable_any so the waits take the annotated Mutex directly
  // (it is a BasicLockable); the wait loops are written out by hand because
  // a predicate lambda is analyzed as a separate function and cannot see
  // that mutex_ is held at the call site.
  std::condition_variable_any round_start_;
  std::condition_variable_any round_done_;
  // Round state (the pool synchronizes rounds with plain locking — rounds
  // are milliseconds, the lock is nanoseconds).
  const std::function<void(size_t)>* task_ DAVINCI_GUARDED_BY(mutex_) =
      nullptr;
  size_t next_shard_ DAVINCI_GUARDED_BY(mutex_) = 0;
  size_t shards_ DAVINCI_GUARDED_BY(mutex_) = 0;
  // Shards claimed but not finished.
  size_t in_flight_ DAVINCI_GUARDED_BY(mutex_) = 0;
  uint64_t generation_ DAVINCI_GUARDED_BY(mutex_) = 0;
  bool shutdown_ DAVINCI_GUARDED_BY(mutex_) = false;

  std::vector<std::thread> threads_;
};

}  // namespace davinci

#endif  // DAVINCI_COMMON_WORKER_POOL_H_
