#ifndef DAVINCI_COMMON_WORKER_POOL_H_
#define DAVINCI_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// A small persistent fork/join pool for round-synchronized parallel scans
// (the IFP peeling decode runs tens of purity-scan rounds per call; paying
// a thread spawn + join per round — the PR 4 design — cost more than the
// scan it parallelized). Threads are created once, parked on a condition
// variable between rounds, and torn down by the destructor.
//
// The pool runs *shard-indexed* work: Run(shards, fn) invokes fn(s) exactly
// once for each s in [0, shards) and returns when all calls finished. The
// caller's thread executes shard 0 (and any shard left unclaimed), so a
// pool constructed with `extra_workers == 0` degrades to a plain loop and a
// machine with one core never context-switches for correctness. Shard
// claiming is dynamic, so fn must not care which thread runs which shard —
// decode's determinism comes from sharding by contiguous range and
// concatenating results in shard order, not from thread identity.

namespace davinci {

class WorkerPool {
 public:
  // Spawns `extra_workers` helper threads (0 is valid: everything runs on
  // the calling thread).
  explicit WorkerPool(size_t extra_workers);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Executes fn(0) .. fn(shards-1), each exactly once, across the helper
  // threads and the calling thread; blocks until every shard completed.
  // Not reentrant: one Run at a time per pool (decode's rounds are
  // strictly sequential, which is the point).
  void Run(size_t shards, const std::function<void(size_t)>& fn);

  size_t extra_workers() const { return threads_.size(); }

 private:
  void WorkerLoop();
  // Claims and runs shards until none remain; returns when the round's
  // shard counter is exhausted. Caller must NOT hold `mutex_`.
  void DrainShards();

  std::mutex mutex_;
  std::condition_variable round_start_;
  std::condition_variable round_done_;
  // Round state, all guarded by mutex_ (the pool synchronizes rounds with
  // plain locking — rounds are milliseconds, the lock is nanoseconds).
  const std::function<void(size_t)>* task_ = nullptr;
  size_t next_shard_ = 0;
  size_t shards_ = 0;
  size_t in_flight_ = 0;  // shards claimed but not finished
  uint64_t generation_ = 0;
  bool shutdown_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace davinci

#endif  // DAVINCI_COMMON_WORKER_POOL_H_
