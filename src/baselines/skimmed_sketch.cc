#include "baselines/skimmed_sketch.h"

#include <unordered_map>

namespace davinci {
namespace {

// Keys above this fraction of the stream are skimmed as heavy hitters.
constexpr double kSkimFraction = 0.0005;

// Removes each hitter's estimated contribution from a sketch copy.
CountSketch Skim(const CountSketch& sketch,
                 const std::vector<std::pair<uint32_t, int64_t>>& hitters) {
  CountSketch skimmed = sketch;
  for (const auto& [key, count] : hitters) {
    for (size_t row = 0; row < skimmed.rows(); ++row) {
      skimmed.MutableCounter(row, skimmed.RowIndex(row, key)) -=
          skimmed.RowSign(row, key) * count;
    }
  }
  return skimmed;
}

}  // namespace

SkimmedSketch::SkimmedSketch(size_t memory_bytes, uint64_t seed)
    : heap_(memory_bytes, 4, seed * 17000209) {}

std::vector<std::pair<uint32_t, int64_t>> SkimmedSketch::SkimmedHitters()
    const {
  int64_t threshold =
      static_cast<int64_t>(kSkimFraction * static_cast<double>(total_));
  return heap_.HeavyHitters(threshold);
}

double SkimmedSketch::InnerProduct(const SkimmedSketch& a,
                                   const SkimmedSketch& b) {
  auto hitters_a = a.SkimmedHitters();
  auto hitters_b = b.SkimmedHitters();
  std::unordered_map<uint32_t, int64_t> map_b;
  for (const auto& [key, count] : hitters_b) map_b[key] = count;

  CountSketch skim_a = Skim(a.heap_.sketch(), hitters_a);
  CountSketch skim_b = Skim(b.heap_.sketch(), hitters_b);

  double join = 0.0;
  for (const auto& [key, count] : hitters_a) {
    auto it = map_b.find(key);
    if (it != map_b.end()) {
      // Heavy × heavy: exact product of the skimmed estimates.
      join += static_cast<double>(count) * static_cast<double>(it->second);
    } else {
      join += static_cast<double>(count) *
              static_cast<double>(skim_b.Query(key));
    }
  }
  for (const auto& [key, count] : hitters_b) {
    join += static_cast<double>(skim_a.Query(key)) *
            static_cast<double>(count);
  }
  join += CountSketch::InnerProduct(skim_a, skim_b);
  return join;
}

}  // namespace davinci
