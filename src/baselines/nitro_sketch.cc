#include "baselines/nitro_sketch.h"

#include <algorithm>
#include <cmath>

namespace davinci {

NitroSketch::NitroSketch(size_t memory_bytes, size_t rows,
                         double update_probability, uint64_t seed)
    : probability_(std::clamp(update_probability, 0.01, 1.0)),
      rng_(seed * 37001401 + 3),
      geometric_(std::clamp(update_probability, 0.01, 1.0)) {
  rows = std::max<size_t>(1, rows);
  width_ = std::max<size_t>(1, memory_bytes / 4 / rows);
  for (size_t i = 0; i < rows; ++i) {
    hashes_.emplace_back(seed * 37001401 + i);
    signs_.emplace_back(seed * 37001401 + i + 555);
  }
  counters_.assign(rows * width_, 0.0);
  next_update_.assign(rows, 0);
  for (size_t i = 0; i < rows; ++i) next_update_[i] = geometric_(rng_);
}

void NitroSketch::Insert(uint32_t key, int64_t count) {
  for (int64_t unit = 0; unit < count; ++unit) {
    for (size_t i = 0; i < hashes_.size(); ++i) {
      if (next_update_[i] > 0) {
        --next_update_[i];
        continue;
      }
      ++accesses_;
      counters_[i * width_ + hashes_[i].Bucket(key, width_)] +=
          signs_[i].Sign(key) / probability_;
      next_update_[i] = geometric_(rng_);
    }
  }
}

int64_t NitroSketch::Query(uint32_t key) const {
  std::vector<double> estimates;
  estimates.reserve(hashes_.size());
  for (size_t i = 0; i < hashes_.size(); ++i) {
    estimates.push_back(signs_[i].Sign(key) *
                        counters_[i * width_ + hashes_[i].Bucket(key, width_)]);
  }
  std::nth_element(estimates.begin(), estimates.begin() + estimates.size() / 2,
                   estimates.end());
  return static_cast<int64_t>(std::llround(estimates[estimates.size() / 2]));
}

}  // namespace davinci
