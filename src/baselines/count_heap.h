#ifndef DAVINCI_BASELINES_COUNT_HEAP_H_
#define DAVINCI_BASELINES_COUNT_HEAP_H_

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/count_sketch.h"
#include "baselines/sketch_interface.h"

// CountHeap (Charikar et al.): a Count Sketch plus a top-k tracker, the
// classical heavy-hitter / heavy-changer pipeline. A fixed share of the
// byte budget funds the tracker (key + counter per slot); the rest funds
// the sketch.

namespace davinci {

class CountHeap : public FrequencySketch, public HeavyHitterSketch {
 public:
  CountHeap(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "CountHeap"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override;

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

  const CountSketch& sketch() const { return sketch_; }
  // Keys currently tracked (heavy-changer candidates).
  std::vector<uint32_t> TrackedKeys() const;

 private:
  void MaybeTrack(uint32_t key, int64_t estimate);

  size_t capacity_;
  CountSketch sketch_;
  std::unordered_map<uint32_t, int64_t> tracked_;
  // Lazy min-heap over (estimate, key); stale entries are skipped on pop.
  std::priority_queue<std::pair<int64_t, uint32_t>,
                      std::vector<std::pair<int64_t, uint32_t>>,
                      std::greater<>>
      heap_;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_COUNT_HEAP_H_
