#ifndef DAVINCI_BASELINES_WAVING_SKETCH_H_
#define DAVINCI_BASELINES_WAVING_SKETCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// WavingSketch (Li et al., KDD'20 — paper reference [40]): unbiased top-k.
// Each bucket holds l heavy cells (key, frequency, "frozen" flag) and one
// signed waving counter. Misses wave the counter with a ±1 hash; when a
// newcomer's unbiased waving estimate beats the smallest resident, they
// swap, and the evicted resident's frequency is folded back into the
// counter. Unfrozen residents query through the waving counter, which makes
// the estimates unbiased.

namespace davinci {

class WavingSketch : public FrequencySketch, public HeavyHitterSketch {
 public:
  WavingSketch(size_t memory_bytes, size_t cells_per_bucket, uint64_t seed);

  std::string Name() const override { return "Waving"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

 private:
  struct Cell {
    uint32_t key = 0;
    int64_t frequency = 0;
    bool frozen = true;  // true = counted exactly since insertion
  };
  struct Bucket {
    std::vector<Cell> cells;
    int64_t wave = 0;  // Σ ζ(e)·count of non-resident items
  };

  static constexpr size_t kCellBytes = 9;   // key + freq + flag
  static constexpr size_t kWaveBytes = 4;

  size_t cells_per_bucket_;
  HashFamily bucket_hash_;
  SignHash sign_;
  std::vector<Bucket> buckets_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_WAVING_SKETCH_H_
