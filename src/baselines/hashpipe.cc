#include "baselines/hashpipe.h"

#include <algorithm>
#include <unordered_map>

namespace davinci {
namespace {

constexpr size_t kSlotBytes = 8;  // 4B key + 4B count

}  // namespace

HashPipe::HashPipe(size_t memory_bytes, size_t stages, uint64_t seed) {
  stages = std::max<size_t>(2, stages);
  width_ = std::max<size_t>(1, memory_bytes / kSlotBytes / stages);
  hashes_.reserve(stages);
  stages_.resize(stages);
  for (size_t s = 0; s < stages; ++s) {
    hashes_.emplace_back(seed * 7000003 + s);
    stages_[s].assign(width_, Slot{});
  }
}

size_t HashPipe::MemoryBytes() const {
  return stages_.size() * width_ * kSlotBytes;
}

void HashPipe::Insert(uint32_t key, int64_t count) {
  // Stage 0: always insert; the previous occupant (if different) is
  // carried into the rest of the pipeline.
  ++accesses_;
  Slot& first = stages_[0][hashes_[0].Bucket(key, width_)];
  Slot carried;
  if (first.count > 0 && first.key == key) {
    first.count += count;
    return;
  }
  carried = first;
  first.key = key;
  first.count = count;
  if (carried.count == 0) return;

  for (size_t s = 1; s < stages_.size(); ++s) {
    ++accesses_;
    Slot& slot = stages_[s][hashes_[s].Bucket(carried.key, width_)];
    if (slot.count > 0 && slot.key == carried.key) {
      slot.count += carried.count;
      return;
    }
    if (slot.count == 0) {
      slot = carried;
      return;
    }
    if (carried.count > slot.count) {
      std::swap(slot, carried);
    }
  }
  // The final carried entry is dropped (HashPipe's controlled loss).
}

int64_t HashPipe::Query(uint32_t key) const {
  int64_t total = 0;
  for (size_t s = 0; s < stages_.size(); ++s) {
    const Slot& slot = stages_[s][hashes_[s].Bucket(key, width_)];
    if (slot.count > 0 && slot.key == key) total += slot.count;
  }
  return total;
}

std::vector<std::pair<uint32_t, int64_t>> HashPipe::HeavyHitters(
    int64_t threshold) const {
  // A flow may be split across stages; aggregate before thresholding.
  std::unordered_map<uint32_t, int64_t> aggregate;
  for (const auto& stage : stages_) {
    for (const Slot& slot : stage) {
      if (slot.count > 0) aggregate[slot.key] += slot.count;
    }
  }
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const auto& [key, est] : aggregate) {
    if (est > threshold) out.emplace_back(key, est);
  }
  return out;
}

}  // namespace davinci
