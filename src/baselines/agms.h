#ifndef DAVINCI_BASELINES_AGMS_H_
#define DAVINCI_BASELINES_AGMS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/count_sketch.h"
#include "baselines/sketch_interface.h"
#include "common/hash.h"

// AGMS / tug-of-war sketches (Alon, Gibbons, Matias, Szegedy) and their
// hash-bucketed refinement F-AGMS (Cormode & Garofalakis), the classical
// inner-product estimators the paper compares against for the cardinality
// of the inner join.

namespace davinci {

// Atomic AGMS: every counter j maintains Σ_e f_e·ξ_j(e), so each insert
// touches all counters — O(w) per item. Kept for correctness tests and
// small streams; use FAgms for the trace-scale benches.
class Agms : public FrequencySketch {
 public:
  // `estimators` counters arranged as rows × columns for median-of-means.
  Agms(size_t rows, size_t columns, uint64_t seed);

  std::string Name() const override { return "AGMS"; }
  size_t MemoryBytes() const override { return counters_.size() * 4; }
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;

  // Median over rows of the mean over columns of products of paired
  // counters (median-of-means estimator of f ⊙ g).
  static double InnerProduct(const Agms& a, const Agms& b);

  // Self-join size estimate (second frequency moment F2).
  double SecondMoment() const;

 private:
  size_t rows_;
  size_t columns_;
  std::vector<SignHash> signs_;  // one ξ per counter
  std::vector<int64_t> counters_;
};

// F-AGMS: a Count Sketch whose rows are dotted and median-combined. This
// is the configuration the paper's join benches use.
class FAgms : public FrequencySketch {
 public:
  FAgms(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "F-AGMS"; }
  size_t MemoryBytes() const override { return sketch_.MemoryBytes(); }
  void Insert(uint32_t key, int64_t count) override {
    sketch_.Insert(key, count);
  }
  int64_t Query(uint32_t key) const override { return sketch_.Query(key); }
  uint64_t MemoryAccesses() const override {
    return sketch_.MemoryAccesses();
  }

  static double InnerProduct(const FAgms& a, const FAgms& b) {
    return CountSketch::InnerProduct(a.sketch_, b.sketch_);
  }

 private:
  CountSketch sketch_;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_AGMS_H_
