#ifndef DAVINCI_BASELINES_UNIVMON_H_
#define DAVINCI_BASELINES_UNIVMON_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/count_heap.h"
#include "baselines/sketch_interface.h"
#include "common/hash.h"

// UnivMon (Liu et al., SIGCOMM'16): universal streaming. L sampled
// substreams, each summarized by a Count Sketch + top-k heap; any G-sum
// Σ g(f_i) is estimated with the recursive unbiased estimator
//   Y_j = 2·Y_{j+1} + Σ_{heap_j} (1 − 2·sampled_{j+1}(e)) · g(ŵ_e),
// which yields heavy hitters, entropy and cardinality from one structure.

namespace davinci {

class UnivMon : public FrequencySketch, public HeavyHitterSketch {
 public:
  UnivMon(size_t memory_bytes, size_t levels, uint64_t seed);

  std::string Name() const override { return "UnivMon"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override;

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

  // Estimate Σ_e g(f_e) over distinct elements via the recursion above.
  double GSum(const std::function<double(double)>& g) const;

  // Cardinality: G-sum with g ≡ 1.
  double EstimateCardinality() const;

  // Empirical entropy: H = ln S − (Σ f ln f)/S with S = total count.
  double EstimateEntropy() const;

 private:
  // True if `key` survives sampling into level `level` (level 0 = all).
  bool SampledInto(uint32_t key, size_t level) const;

  HashFamily sample_hash_;
  std::vector<std::unique_ptr<CountHeap>> levels_;
  int64_t total_count_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_UNIVMON_H_
