#ifndef DAVINCI_BASELINES_NITRO_SKETCH_H_
#define DAVINCI_BASELINES_NITRO_SKETCH_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// NitroSketch (Liu et al., SIGCOMM'19): software-switch-friendly sketching
// by sampling *counter updates* instead of packets. Each row of a Count
// Sketch is updated independently with probability p, adding 1/p, which
// keeps the estimator unbiased while cutting per-packet work to ~p·d row
// touches. Listed in the paper's related work on robust software sketches.

namespace davinci {

class NitroSketch : public FrequencySketch {
 public:
  // `update_probability` is the per-row sampling rate p (e.g. 0.25).
  NitroSketch(size_t memory_bytes, size_t rows, double update_probability,
              uint64_t seed);

  std::string Name() const override { return "Nitro"; }
  size_t MemoryBytes() const override { return counters_.size() * 4; }
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  double update_probability() const { return probability_; }

 private:
  size_t width_;
  double probability_;
  std::vector<HashFamily> hashes_;
  std::vector<SignHash> signs_;
  std::vector<double> counters_;  // fractional due to 1/p compensation
  // Geometric skip counter per row: how many inserts to skip until the
  // next sampled update (the paper's "always-line-rate" optimization).
  std::vector<int64_t> next_update_;
  std::mt19937_64 rng_;
  std::geometric_distribution<int64_t> geometric_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_NITRO_SKETCH_H_
