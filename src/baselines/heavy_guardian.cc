#include "baselines/heavy_guardian.h"

#include <algorithm>
#include <cmath>

namespace davinci {

HeavyGuardian::HeavyGuardian(size_t memory_bytes, uint64_t seed)
    : bucket_hash_(seed * 33001171 + 1),
      light_hash_(seed * 33001171 + 2),
      rng_(seed * 33001171 + 3) {
  size_t num_buckets = std::max<size_t>(1, memory_bytes / kBucketBytes);
  buckets_.resize(num_buckets);
  for (Bucket& bucket : buckets_) {
    bucket.heavy.resize(kHeavyCells);
    bucket.light.assign(kLightCells, 0);
  }
}

size_t HeavyGuardian::MemoryBytes() const {
  return buckets_.size() * kBucketBytes;
}

void HeavyGuardian::Insert(uint32_t key, int64_t count) {
  Bucket& bucket = buckets_[bucket_hash_.Bucket(key, buckets_.size())];
  Cell* weakest = &bucket.heavy[0];
  for (Cell& cell : bucket.heavy) {
    ++accesses_;
    if (cell.count > 0 && cell.key == key) {
      cell.count += count;
      return;
    }
    if (cell.count == 0) {
      cell.key = key;
      cell.count = count;
      return;
    }
    if (cell.count < weakest->count) weakest = &cell;
  }
  // Guard: decay the weakest resident with probability b^-count per unit;
  // if it hits zero, the newcomer takes the cell.
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  for (int64_t unit = 0; unit < count && weakest->count > 0; ++unit) {
    double p = std::pow(kDecayBase, -static_cast<double>(weakest->count));
    if (uniform(rng_) < p) weakest->count -= 1;
  }
  if (weakest->count == 0) {
    weakest->key = key;
    weakest->count = count;
    return;
  }
  // Loser: the mouse lands in the bucket's light counters.
  ++accesses_;
  int64_t& light = bucket.light[LightIndex(key)];
  light = std::min(light + count, kLightCap);
}

int64_t HeavyGuardian::Query(uint32_t key) const {
  const Bucket& bucket =
      buckets_[bucket_hash_.Bucket(key, buckets_.size())];
  for (const Cell& cell : bucket.heavy) {
    if (cell.count > 0 && cell.key == key) return cell.count;
  }
  return bucket.light[LightIndex(key)];
}

std::vector<std::pair<uint32_t, int64_t>> HeavyGuardian::HeavyHitters(
    int64_t threshold) const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const Bucket& bucket : buckets_) {
    for (const Cell& cell : bucket.heavy) {
      if (cell.count > threshold) out.emplace_back(cell.key, cell.count);
    }
  }
  return out;
}

}  // namespace davinci
