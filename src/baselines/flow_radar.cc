#include "baselines/flow_radar.h"

#include <algorithm>
#include <deque>

namespace davinci {

FlowRadar::FlowRadar(size_t memory_bytes, uint64_t seed) {
  // ~1/8 of memory funds the Bloom flow filter, the rest the counting table.
  size_t bloom_bytes = std::max<size_t>(8, memory_bytes / 8);
  bloom_bits_ = bloom_bytes * 8;
  bloom_.assign(bloom_bits_, false);
  for (size_t i = 0; i < 4; ++i) {
    bloom_hashes_.emplace_back(seed * 11000027 + 100 + i);
  }
  size_t table_bytes = memory_bytes - bloom_bytes;
  width_ = std::max<size_t>(1, table_bytes / kCellBytes / kHashes);
  for (size_t i = 0; i < kHashes; ++i) {
    hashes_.emplace_back(seed * 11000027 + i);
  }
  cells_.assign(kHashes * width_, Cell{});
}

size_t FlowRadar::MemoryBytes() const {
  return bloom_bits_ / 8 + cells_.size() * kCellBytes;
}

void FlowRadar::Insert(uint32_t key, int64_t count) {
  bool known = true;
  for (const HashFamily& h : bloom_hashes_) {
    ++accesses_;
    if (!bloom_[h.Bucket(key, bloom_bits_)]) known = false;
  }
  if (!known) {
    for (const HashFamily& h : bloom_hashes_) {
      bloom_[h.Bucket(key, bloom_bits_)] = true;
    }
  }
  for (size_t i = 0; i < kHashes; ++i) {
    ++accesses_;
    Cell& cell = cells_[CellIndex(i, key)];
    if (!known) {
      cell.flow_xor ^= key;
      cell.flow_count += 1;
    }
    cell.packet_count += count;
  }
}

void FlowRadar::Subtract(const FlowRadar& other) {
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].flow_xor ^= other.cells_[i].flow_xor;
    cells_[i].flow_count -= other.cells_[i].flow_count;
    cells_[i].packet_count -= other.cells_[i].packet_count;
  }
  // The flow filters are not meaningful after subtraction; keep ours.
}

std::unordered_map<uint32_t, int64_t> FlowRadar::Decode() const {
  std::vector<Cell> cells = cells_;
  std::unordered_map<uint32_t, int64_t> flows;
  std::deque<size_t> queue;
  for (size_t i = 0; i < cells.size(); ++i) queue.push_back(i);

  auto try_peel = [&](size_t index) -> bool {
    Cell& cell = cells[index];
    if (cell.flow_count != 1 && cell.flow_count != -1) return false;
    uint32_t key = cell.flow_xor;
    size_t row = index / width_;
    if (key == 0 || CellIndex(row, key) != index) return false;
    int64_t count = cell.packet_count;
    int64_t flow_sign = cell.flow_count;  // captured before cells mutate
    flows[key] += count;
    for (size_t r = 0; r < kHashes; ++r) {
      size_t j = CellIndex(r, key);
      cells[j].flow_xor ^= key;
      cells[j].flow_count -= flow_sign;
      cells[j].packet_count -= count;
      queue.push_back(j);
    }
    return true;
  };

  // Two safety valves bound the peeling: `stale` stops when no progress is
  // possible, and `peels` stops pathological false-positive cycles (peel /
  // un-peel oscillations that can arise in overloaded sketches).
  size_t stale = 0;
  size_t peels = 0;
  const size_t max_peels = cells.size() * 4 + 64;
  while (!queue.empty() && stale < cells.size() * 4 &&
         peels < max_peels) {
    size_t index = queue.front();
    queue.pop_front();
    if (try_peel(index)) {
      stale = 0;
      ++peels;
    } else {
      ++stale;
    }
  }
  // Peeling may insert then remove a flow's mirror; drop exact zeros.
  for (auto it = flows.begin(); it != flows.end();) {
    if (it->second == 0) {
      it = flows.erase(it);
    } else {
      ++it;
    }
  }
  return flows;
}

int64_t FlowRadar::Query(uint32_t key) const {
  auto flows = Decode();
  auto it = flows.find(key);
  return it == flows.end() ? 0 : it->second;
}

}  // namespace davinci
