#include "baselines/mv_sketch.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

namespace davinci {

MvSketch::MvSketch(size_t memory_bytes, size_t rows, uint64_t seed) {
  rows = std::max<size_t>(1, rows);
  width_ = std::max<size_t>(1, memory_bytes / kBucketBytes / rows);
  hashes_.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    hashes_.emplace_back(seed * 25000609 + r);
  }
  buckets_.assign(rows * width_, Bucket{});
}

size_t MvSketch::MemoryBytes() const { return buckets_.size() * kBucketBytes; }

void MvSketch::Insert(uint32_t key, int64_t count) {
  for (size_t r = 0; r < hashes_.size(); ++r) {
    ++accesses_;
    Bucket& b = buckets_[r * width_ + hashes_[r].Bucket(key, width_)];
    b.total += count;
    if (b.majority == key) {
      b.indicator += count;
    } else {
      b.indicator -= count;
      if (b.indicator < 0) {
        b.majority = key;
        b.indicator = -b.indicator;
      }
    }
  }
}

int64_t MvSketch::Query(uint32_t key) const {
  int64_t best = INT64_MAX;
  for (size_t r = 0; r < hashes_.size(); ++r) {
    const Bucket& b = buckets_[r * width_ + hashes_[r].Bucket(key, width_)];
    int64_t estimate = b.majority == key ? (b.total + b.indicator) / 2
                                         : (b.total - b.indicator) / 2;
    best = std::min(best, estimate);
  }
  return best == INT64_MAX ? 0 : best;
}

std::vector<std::pair<uint32_t, int64_t>> MvSketch::HeavyHitters(
    int64_t threshold) const {
  std::unordered_set<uint32_t> candidates;
  for (const Bucket& b : buckets_) {
    if (b.total > threshold && b.majority != 0) candidates.insert(b.majority);
  }
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (uint32_t key : candidates) {
    int64_t est = Query(key);
    if (est > threshold) out.emplace_back(key, est);
  }
  return out;
}

std::vector<std::pair<uint32_t, int64_t>> MvSketch::HeavyChangers(
    const MvSketch& a, const MvSketch& b, int64_t delta) {
  std::unordered_set<uint32_t> candidates;
  for (const Bucket& bucket : a.buckets_) {
    if (bucket.majority != 0) candidates.insert(bucket.majority);
  }
  for (const Bucket& bucket : b.buckets_) {
    if (bucket.majority != 0) candidates.insert(bucket.majority);
  }
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (uint32_t key : candidates) {
    int64_t change = a.Query(key) - b.Query(key);
    if (std::llabs(change) > delta) out.emplace_back(key, change);
  }
  return out;
}

}  // namespace davinci
