#include "baselines/heavy_keeper.h"

#include <algorithm>
#include <cmath>

namespace davinci {

HeavyKeeper::HeavyKeeper(size_t memory_bytes, size_t rows, uint64_t seed)
    : fingerprint_hash_(seed * 24000509 + 99), rng_(seed * 24000509 + 5) {
  rows = std::max<size_t>(1, rows);
  // As in the original design, a small min-heap of keys (1/4 of memory)
  // accompanies the fingerprint buckets.
  size_t heap_bytes = memory_bytes / 4;
  heap_capacity_ = std::max<size_t>(8, heap_bytes / kSlotBytes);
  size_t bucket_bytes = memory_bytes - heap_bytes;
  width_ = std::max<size_t>(1, bucket_bytes / kSlotBytes / rows);
  hashes_.reserve(rows);
  rows_.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    hashes_.emplace_back(seed * 24000509 + r);
    rows_[r].assign(width_, Slot{});
  }
}

size_t HeavyKeeper::MemoryBytes() const {
  return rows_.size() * width_ * kSlotBytes + heap_capacity_ * kSlotBytes;
}

void HeavyKeeper::Insert(uint32_t key, int64_t count) {
  uint32_t fp = Fingerprint(key);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  for (size_t r = 0; r < rows_.size(); ++r) {
    ++accesses_;
    Slot& slot = rows_[r][hashes_[r].Bucket(key, width_)];
    if (slot.count == 0) {
      slot.fingerprint = fp;
      slot.count = count;
    } else if (slot.fingerprint == fp) {
      slot.count += count;
    } else {
      // Exponential decay, applied per inserted unit: the resident loses
      // one with probability b^-count each time.
      for (int64_t unit = 0; unit < count && slot.count > 0; ++unit) {
        double p = std::pow(kDecayBase, -static_cast<double>(slot.count));
        if (uniform(rng_) < p) slot.count -= 1;
      }
      if (slot.count == 0) {
        slot.fingerprint = fp;
        slot.count = count;
      }
    }
  }

  // Track the top keys (HeavyKeeper's min-heap, realized as a pruned map).
  int64_t estimate = Query(key);
  auto it = tracked_.find(key);
  if (it != tracked_.end()) {
    it->second = std::max(it->second, estimate);
  } else {
    tracked_[key] = estimate;
    if (tracked_.size() >= heap_capacity_ * 2) {
      std::vector<std::pair<int64_t, uint32_t>> entries;
      entries.reserve(tracked_.size());
      for (const auto& [k, v] : tracked_) entries.emplace_back(v, k);
      std::nth_element(entries.begin(), entries.begin() + heap_capacity_,
                       entries.end(), std::greater<>());
      entries.resize(heap_capacity_);
      tracked_.clear();
      for (const auto& [v, k] : entries) tracked_[k] = v;
    }
  }
}

int64_t HeavyKeeper::Query(uint32_t key) const {
  uint32_t fp = Fingerprint(key);
  int64_t best = 0;
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Slot& slot = rows_[r][hashes_[r].Bucket(key, width_)];
    if (slot.fingerprint == fp) best = std::max(best, slot.count);
  }
  return best;
}

std::vector<std::pair<uint32_t, int64_t>> HeavyKeeper::HeavyHitters(
    int64_t threshold) const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const auto& [key, est] : tracked_) {
    (void)est;
    int64_t current = Query(key);
    if (current > threshold) out.emplace_back(key, current);
  }
  return out;
}

}  // namespace davinci
