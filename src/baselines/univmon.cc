#include "baselines/univmon.h"

#include <algorithm>
#include <cmath>

namespace davinci {

UnivMon::UnivMon(size_t memory_bytes, size_t levels, uint64_t seed)
    : sample_hash_(seed * 9000007 + 99) {
  levels = std::max<size_t>(2, levels);
  size_t per_level = std::max<size_t>(256, memory_bytes / levels);
  levels_.reserve(levels);
  for (size_t j = 0; j < levels; ++j) {
    levels_.push_back(
        std::make_unique<CountHeap>(per_level, 4, seed * 9000007 + j));
  }
}

size_t UnivMon::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& level : levels_) bytes += level->MemoryBytes();
  return bytes;
}

bool UnivMon::SampledInto(uint32_t key, size_t level) const {
  if (level == 0) return true;
  // Level j requires the bottom j bits of the sampling hash to be ones.
  uint64_t h = sample_hash_.Hash(key);
  uint64_t mask = (uint64_t{1} << level) - 1;
  return (h & mask) == mask;
}

void UnivMon::Insert(uint32_t key, int64_t count) {
  total_count_ += count;
  for (size_t j = 0; j < levels_.size(); ++j) {
    if (!SampledInto(key, j)) break;  // sampling is nested
    levels_[j]->Insert(key, count);
  }
}

int64_t UnivMon::Query(uint32_t key) const { return levels_[0]->Query(key); }

uint64_t UnivMon::MemoryAccesses() const {
  uint64_t total = 0;
  for (const auto& level : levels_) total += level->MemoryAccesses();
  return total;
}

std::vector<std::pair<uint32_t, int64_t>> UnivMon::HeavyHitters(
    int64_t threshold) const {
  return levels_[0]->HeavyHitters(threshold);
}

double UnivMon::GSum(const std::function<double(double)>& g) const {
  double y = 0.0;
  for (size_t j = levels_.size(); j-- > 0;) {
    const CountHeap& level = *levels_[j];
    double correction = 0.0;
    for (uint32_t key : level.TrackedKeys()) {
      double w = static_cast<double>(std::max<int64_t>(1, level.Query(key)));
      double indicator = (j + 1 < levels_.size() && SampledInto(key, j + 1))
                             ? 1.0
                             : 0.0;
      correction += (1.0 - 2.0 * indicator) * g(w);
    }
    if (j == levels_.size() - 1) {
      // Base case: the deepest level's heap is assumed to hold its stream.
      double base = 0.0;
      for (uint32_t key : level.TrackedKeys()) {
        base += g(static_cast<double>(std::max<int64_t>(1, level.Query(key))));
      }
      y = base;
    } else {
      y = 2.0 * y + correction;
    }
  }
  return std::max(0.0, y);
}

double UnivMon::EstimateCardinality() const {
  return GSum([](double) { return 1.0; });
}

double UnivMon::EstimateEntropy() const {
  if (total_count_ <= 0) return 0.0;
  double s = static_cast<double>(total_count_);
  double g_sum = GSum([](double w) { return w * std::log(w); });
  return std::max(0.0, std::log(s) - g_sum / s);
}

}  // namespace davinci
