#ifndef DAVINCI_BASELINES_CU_SKETCH_H_
#define DAVINCI_BASELINES_CU_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// CU sketch (Estan & Varghese conservative update): like Count-Min but an
// insertion only raises the mapped counters that equal the current minimum,
// which removes much of CM's one-sided error.

namespace davinci {

class CuSketch : public FrequencySketch {
 public:
  CuSketch(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "CU"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

 private:
  size_t width_;
  std::vector<HashFamily> hashes_;
  std::vector<int64_t> counters_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_CU_SKETCH_H_
