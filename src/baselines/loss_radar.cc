#include "baselines/loss_radar.h"

#include <algorithm>
#include <deque>

namespace davinci {

LossRadar::LossRadar(size_t memory_bytes, uint64_t seed) {
  width_ = std::max<size_t>(1, memory_bytes / kCellBytes / kHashes);
  for (size_t i = 0; i < kHashes; ++i) {
    hashes_.emplace_back(seed * 12000097 + i);
  }
  cells_.assign(kHashes * width_, Cell{});
}

size_t LossRadar::MemoryBytes() const { return cells_.size() * kCellBytes; }

void LossRadar::Insert(uint32_t key, int64_t count) {
  for (size_t i = 0; i < kHashes; ++i) {
    ++accesses_;
    Cell& cell = cells_[CellIndex(i, key)];
    cell.count += count;
    cell.key_sum += static_cast<int64_t>(key) * count;
    cell.check_sum += Checksum(key) * count;
  }
}

void LossRadar::Subtract(const LossRadar& other) {
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].count -= other.cells_[i].count;
    cells_[i].key_sum -= other.cells_[i].key_sum;
    cells_[i].check_sum -= other.cells_[i].check_sum;
  }
}

void LossRadar::Merge(const LossRadar& other) {
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].count += other.cells_[i].count;
    cells_[i].key_sum += other.cells_[i].key_sum;
    cells_[i].check_sum += other.cells_[i].check_sum;
  }
}

std::unordered_map<uint32_t, int64_t> LossRadar::Decode() const {
  std::vector<Cell> cells = cells_;
  std::unordered_map<uint32_t, int64_t> flows;
  std::deque<size_t> queue;
  for (size_t i = 0; i < cells.size(); ++i) queue.push_back(i);

  auto try_peel = [&](size_t index) -> bool {
    Cell& cell = cells[index];
    if (cell.count == 0) return false;
    if (cell.key_sum % cell.count != 0) return false;
    int64_t candidate = cell.key_sum / cell.count;
    if (candidate <= 0 || candidate > static_cast<int64_t>(UINT32_MAX)) {
      return false;
    }
    uint32_t key = static_cast<uint32_t>(candidate);
    if (cell.check_sum != Checksum(key) * cell.count) return false;
    size_t row = index / width_;
    if (CellIndex(row, key) != index) return false;

    int64_t count = cell.count;
    flows[key] += count;
    for (size_t r = 0; r < kHashes; ++r) {
      size_t j = CellIndex(r, key);
      cells[j].count -= count;
      cells[j].key_sum -= static_cast<int64_t>(key) * count;
      cells[j].check_sum -= Checksum(key) * count;
      queue.push_back(j);
    }
    return true;
  };

  // Two safety valves bound the peeling: `stale` stops when no progress is
  // possible, and `peels` stops pathological false-positive cycles (peel /
  // un-peel oscillations that can arise in overloaded sketches).
  size_t stale = 0;
  size_t peels = 0;
  const size_t max_peels = cells.size() * 4 + 64;
  while (!queue.empty() && stale < cells.size() * 4 &&
         peels < max_peels) {
    size_t index = queue.front();
    queue.pop_front();
    if (try_peel(index)) {
      stale = 0;
      ++peels;
    } else {
      ++stale;
    }
  }
  for (auto it = flows.begin(); it != flows.end();) {
    if (it->second == 0) {
      it = flows.erase(it);
    } else {
      ++it;
    }
  }
  return flows;
}

int64_t LossRadar::Query(uint32_t key) const {
  auto flows = Decode();
  auto it = flows.find(key);
  return it == flows.end() ? 0 : it->second;
}

}  // namespace davinci
