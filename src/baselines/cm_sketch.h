#ifndef DAVINCI_BASELINES_CM_SKETCH_H_
#define DAVINCI_BASELINES_CM_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// Count-Min sketch (Cormode & Muthukrishnan): d rows of w 32-bit counters;
// query is the minimum over the mapped counters. The paper's classical
// frequency baseline.

namespace davinci {

class CmSketch : public FrequencySketch {
 public:
  CmSketch(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "CM"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  size_t rows() const { return hashes_.size(); }
  size_t width() const { return width_; }
  int64_t CounterValue(size_t row, size_t index) const {
    return counters_[row * width_ + index];
  }
  // Raw values of one row (for MRAC-style distribution estimation).
  std::vector<int64_t> RowValues(size_t row) const;

  // Counter-wise merge/subtract with an identically-seeded sketch
  // (sketch linearity; used for heavy-changer detection).
  void Merge(const CmSketch& other);
  void Subtract(const CmSketch& other);

 private:
  size_t width_;
  std::vector<HashFamily> hashes_;
  std::vector<int64_t> counters_;  // rows * width, design width 32 bits
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_CM_SKETCH_H_
