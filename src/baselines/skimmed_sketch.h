#ifndef DAVINCI_BASELINES_SKIMMED_SKETCH_H_
#define DAVINCI_BASELINES_SKIMMED_SKETCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/count_heap.h"
#include "baselines/sketch_interface.h"

// Skimmed Sketch (Ganguly et al.): estimate a join size by first "skimming"
// the heavy hitters out of an AGMS-style sketch, computing their exact
// contribution, and estimating the residual with the de-noised sketch:
//   J ≈ ΣH_a×H_b + H_a×skim(b) + skim(a)×H_b + skim(a)⊙skim(b).

namespace davinci {

class SkimmedSketch : public FrequencySketch {
 public:
  SkimmedSketch(size_t memory_bytes, uint64_t seed);

  std::string Name() const override { return "Skimmed"; }
  size_t MemoryBytes() const override { return heap_.MemoryBytes(); }
  void Insert(uint32_t key, int64_t count) override {
    total_ += count;
    heap_.Insert(key, count);
  }
  int64_t Query(uint32_t key) const override { return heap_.Query(key); }
  uint64_t MemoryAccesses() const override {
    return heap_.MemoryAccesses();
  }

  static double InnerProduct(const SkimmedSketch& a, const SkimmedSketch& b);

 private:
  // Heavy hitters to skim: tracked keys above a fraction of the stream.
  std::vector<std::pair<uint32_t, int64_t>> SkimmedHitters() const;

  CountHeap heap_;
  int64_t total_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_SKIMMED_SKETCH_H_
