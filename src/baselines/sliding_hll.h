#ifndef DAVINCI_BASELINES_SLIDING_HLL_H_
#define DAVINCI_BASELINES_SLIDING_HLL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"

// Sliding HyperLogLog (Chabchoub & Hébrail — paper reference [54]):
// cardinality over the last W epochs. Each register keeps, per epoch in
// the window, the maximum rank observed, so expired epochs can be dropped
// without rebuilding. This is the epoch-bucketed variant of the LPFM-list
// original, trading a small constant factor of memory for O(1) updates.

namespace davinci {

class SlidingHll {
 public:
  // 2^precision registers, window of `epochs` epochs.
  SlidingHll(int precision, size_t epochs, uint64_t seed);

  std::string Name() const { return "SlidingHLL"; }
  size_t MemoryBytes() const;

  void Insert(uint32_t key);
  // Close the current epoch; the oldest falls out of the window.
  void Advance();
  // Distinct elements seen within the current window.
  double EstimateCardinality() const;

  size_t window_epochs() const { return epochs_; }

 private:
  int precision_;
  size_t epochs_;
  size_t current_ = 0;  // ring index of the active epoch
  HashFamily hash_;
  // registers_[epoch][register] = max rank in that epoch.
  std::vector<std::vector<uint8_t>> registers_;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_SLIDING_HLL_H_
