#include "baselines/coco_sketch.h"

#include <algorithm>
#include <unordered_map>

namespace davinci {
namespace {

constexpr size_t kSlotBytes = 8;  // 4B key + 4B count

}  // namespace

CocoSketch::CocoSketch(size_t memory_bytes, size_t rows, uint64_t seed)
    : rng_(seed * 8000009 + 5) {
  rows = std::max<size_t>(1, rows);
  width_ = std::max<size_t>(1, memory_bytes / kSlotBytes / rows);
  hashes_.reserve(rows);
  rows_.resize(rows);
  for (size_t r = 0; r < rows; ++r) {
    hashes_.emplace_back(seed * 8000009 + r);
    rows_[r].assign(width_, Slot{});
  }
}

size_t CocoSketch::MemoryBytes() const {
  return rows_.size() * width_ * kSlotBytes;
}

void CocoSketch::Insert(uint32_t key, int64_t count) {
  // If any mapped bucket already holds the key, increment it; otherwise
  // update the smallest mapped bucket and replace its key with probability
  // count/updated_count (Coco's unbiased replacement rule).
  Slot* smallest = nullptr;
  for (size_t r = 0; r < rows_.size(); ++r) {
    ++accesses_;
    Slot& slot = rows_[r][hashes_[r].Bucket(key, width_)];
    if (slot.count > 0 && slot.key == key) {
      slot.count += count;
      return;
    }
    if (smallest == nullptr || slot.count < smallest->count) {
      smallest = &slot;
    }
  }
  smallest->count += count;
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  if (uniform(rng_) < static_cast<double>(count) /
                          static_cast<double>(smallest->count)) {
    smallest->key = key;
  }
}

int64_t CocoSketch::Query(uint32_t key) const {
  int64_t total = 0;
  for (size_t r = 0; r < rows_.size(); ++r) {
    const Slot& slot = rows_[r][hashes_[r].Bucket(key, width_)];
    if (slot.count > 0 && slot.key == key) total += slot.count;
  }
  return total;
}

std::vector<std::pair<uint32_t, int64_t>> CocoSketch::HeavyHitters(
    int64_t threshold) const {
  std::unordered_map<uint32_t, int64_t> aggregate;
  for (const auto& row : rows_) {
    for (const Slot& slot : row) {
      if (slot.count > 0) aggregate[slot.key] += slot.count;
    }
  }
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const auto& [key, est] : aggregate) {
    if (est > threshold) out.emplace_back(key, est);
  }
  return out;
}

}  // namespace davinci
