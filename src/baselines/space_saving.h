#ifndef DAVINCI_BASELINES_SPACE_SAVING_H_
#define DAVINCI_BASELINES_SPACE_SAVING_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"

// Space-Saving (Metwally, Agrawal, El Abbadi): the classic counter-based
// top-k summary. m (key, count, error) entries; a miss overwrites the
// current minimum with count = min+1 and error = min. Guarantees
// count ≥ true frequency ≥ count − error for every resident key.
// Part of the heavy-hitter related work the paper builds on.

namespace davinci {

class SpaceSaving : public FrequencySketch, public HeavyHitterSketch {
 public:
  SpaceSaving(size_t memory_bytes, uint64_t seed);

  std::string Name() const override { return "SpaceSaving"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

  // Overestimation bound of a resident key (its `error` field).
  int64_t ErrorOf(uint32_t key) const;

 private:
  struct Entry {
    int64_t count = 0;
    int64_t error = 0;
    // Iterator into buckets_ for O(log m) min maintenance.
    std::multimap<int64_t, uint32_t>::iterator bucket;
  };

  static constexpr size_t kEntryBytes = 12;  // 4B key + 4B count + 4B error

  size_t capacity_;
  std::unordered_map<uint32_t, Entry> entries_;
  std::multimap<int64_t, uint32_t> buckets_;  // count -> key (min at begin)
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_SPACE_SAVING_H_
