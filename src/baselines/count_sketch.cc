#include "baselines/count_sketch.h"

#include <algorithm>

namespace davinci {

CountSketch::CountSketch(size_t memory_bytes, size_t rows, uint64_t seed) {
  rows = std::max<size_t>(1, rows);
  width_ = std::max<size_t>(1, memory_bytes / 4 / rows);
  hashes_.reserve(rows);
  signs_.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    hashes_.emplace_back(seed * 3000017 + i);
    signs_.emplace_back(seed * 3000017 + i + 7777);
  }
  counters_.assign(rows * width_, 0);
}

size_t CountSketch::MemoryBytes() const { return counters_.size() * 4; }

void CountSketch::Insert(uint32_t key, int64_t count) {
  for (size_t i = 0; i < hashes_.size(); ++i) {
    ++accesses_;
    counters_[i * width_ + hashes_[i].Bucket(key, width_)] +=
        signs_[i].Sign(key) * count;
  }
}

int64_t CountSketch::Query(uint32_t key) const {
  std::vector<int64_t> estimates;
  estimates.reserve(hashes_.size());
  for (size_t i = 0; i < hashes_.size(); ++i) {
    estimates.push_back(signs_[i].Sign(key) *
                        counters_[i * width_ + hashes_[i].Bucket(key, width_)]);
  }
  std::nth_element(estimates.begin(), estimates.begin() + estimates.size() / 2,
                   estimates.end());
  return estimates[estimates.size() / 2];
}

void CountSketch::Merge(const CountSketch& other) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

void CountSketch::Subtract(const CountSketch& other) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] -= other.counters_[i];
  }
}

double CountSketch::InnerProduct(const CountSketch& a, const CountSketch& b) {
  std::vector<double> row_dots;
  row_dots.reserve(a.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    double dot = 0.0;
    for (size_t j = 0; j < a.width_; ++j) {
      dot += static_cast<double>(a.counters_[i * a.width_ + j]) *
             static_cast<double>(b.counters_[i * b.width_ + j]);
    }
    row_dots.push_back(dot);
  }
  std::nth_element(row_dots.begin(), row_dots.begin() + row_dots.size() / 2,
                   row_dots.end());
  return row_dots[row_dots.size() / 2];
}

}  // namespace davinci
