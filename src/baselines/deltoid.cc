#include "baselines/deltoid.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

namespace davinci {

Deltoid::Deltoid(size_t memory_bytes, size_t rows, uint64_t seed) {
  rows = std::max<size_t>(1, rows);
  width_ = std::max<size_t>(1, memory_bytes / kBucketBytes / rows);
  hashes_.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    hashes_.emplace_back(seed * 28000837 + r);
  }
  counters_.assign(rows * width_ * (kBits + 1), 0);
}

size_t Deltoid::MemoryBytes() const {
  return hashes_.size() * width_ * kBucketBytes;
}

void Deltoid::Insert(uint32_t key, int64_t count) {
  for (size_t r = 0; r < hashes_.size(); ++r) {
    ++accesses_;
    size_t base = Base(r, hashes_[r].Bucket(key, width_));
    counters_[base] += count;
    for (size_t bit = 0; bit < kBits; ++bit) {
      if (key & (1u << bit)) counters_[base + 1 + bit] += count;
    }
  }
}

int64_t Deltoid::Query(uint32_t key) const {
  int64_t best = INT64_MAX;
  for (size_t r = 0; r < hashes_.size(); ++r) {
    best = std::min(best, counters_[Base(r, hashes_[r].Bucket(key, width_))]);
  }
  return best == INT64_MAX ? 0 : best;
}

void Deltoid::Subtract(const Deltoid& other) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] -= other.counters_[i];
  }
}

void Deltoid::Merge(const Deltoid& other) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

std::vector<std::pair<uint32_t, int64_t>> Deltoid::HeavyChangers(
    int64_t threshold) const {
  std::unordered_set<uint32_t> seen;
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (size_t r = 0; r < hashes_.size(); ++r) {
    for (size_t b = 0; b < width_; ++b) {
      size_t base = Base(r, b);
      int64_t total = counters_[base];
      if (std::llabs(total) <= threshold) continue;
      // Majority test per bit: a bit of the dominant changer is 1 iff the
      // bit counter carries more than half of the bucket's total change.
      uint32_t key = 0;
      for (size_t bit = 0; bit < kBits; ++bit) {
        int64_t with_bit = counters_[base + 1 + bit];
        int64_t without_bit = total - with_bit;
        if (std::llabs(with_bit) > std::llabs(without_bit)) {
          key |= (1u << bit);
        }
      }
      if (key == 0) continue;
      // Verification: the candidate must hash back to this bucket.
      if (hashes_[r].Bucket(key, width_) != b) continue;
      if (seen.insert(key).second) {
        out.emplace_back(key, total);
      }
    }
  }
  return out;
}

}  // namespace davinci
