#ifndef DAVINCI_BASELINES_ELASTIC_SKETCH_H_
#define DAVINCI_BASELINES_ELASTIC_SKETCH_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// Elastic Sketch (Yang et al., SIGCOMM'18): a heavy part (hash table with
// vote-based eviction) that stores elephants exactly, backed by a light
// part (one-row count-min of 8-bit saturating counters) for mice. Supports
// frequency, heavy hitters, distribution/entropy and sketch merge (union).

namespace davinci {

class ElasticSketch : public FrequencySketch, public HeavyHitterSketch {
 public:
  ElasticSketch(size_t memory_bytes, uint64_t seed);

  std::string Name() const override { return "Elastic"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

  // Merge with an identically-seeded sketch (the paper's union baseline).
  void Merge(const ElasticSketch& other);

  // Flow-size histogram estimate: exact heavy part + light counter values.
  std::vector<std::pair<uint32_t, int64_t>> HeavyEntries() const;
  const std::vector<int64_t>& LightCounters() const { return light_; }
  size_t LightZeroSlots() const;

  // Task estimators the paper benchmarks Elastic on.
  double EstimateCardinality() const;
  std::map<int64_t, int64_t> Distribution() const;
  double EstimateEntropy() const;

 private:
  struct Bucket {
    uint32_t key = 0;
    int64_t positive_votes = 0;  // count of the resident flow
    int64_t negative_votes = 0;  // evict pressure from other flows
    bool flag = false;           // resident flow may have mass in light part
  };

  static constexpr int64_t kLightCap = 255;  // 8-bit light counters
  static constexpr int64_t kEvictLambda = 8;

  void InsertLight(uint32_t key, int64_t count);
  int64_t QueryLight(uint32_t key) const;

  std::vector<Bucket> heavy_;
  std::vector<int64_t> light_;
  HashFamily heavy_hash_;
  HashFamily light_hash_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_ELASTIC_SKETCH_H_
