#include "baselines/cold_filter.h"

#include <algorithm>

namespace davinci {

ColdFilterCm::ColdFilterCm(size_t memory_bytes, int64_t threshold,
                           uint64_t seed)
    : threshold_(threshold),
      filter_(memory_bytes / 2, seed * 34001231 + 1,
              TowerSketch::Options{{4, 8}}),
      backing_(memory_bytes - memory_bytes / 2, 3, seed * 34001231 + 2) {}

size_t ColdFilterCm::MemoryBytes() const {
  return filter_.MemoryBytes() + backing_.MemoryBytes();
}

void ColdFilterCm::Insert(uint32_t key, int64_t count) {
  int64_t overflow = filter_.InsertCapped(key, count, threshold_);
  if (overflow > 0) backing_.Insert(key, overflow);
}

int64_t ColdFilterCm::Query(uint32_t key) const {
  int64_t filtered = filter_.Query(key);
  if (filtered < threshold_) return filtered;
  return filtered + backing_.Query(key);
}

uint64_t ColdFilterCm::MemoryAccesses() const {
  return filter_.MemoryAccesses() + backing_.MemoryAccesses();
}

}  // namespace davinci
