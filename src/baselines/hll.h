#ifndef DAVINCI_BASELINES_HLL_H_
#define DAVINCI_BASELINES_HLL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"

// HyperLogLog (Flajolet et al., with the HLL++ small-range correction):
// the standard cardinality estimator, provided as an extra comparator for
// the cardinality task and used by the distributed-union example.

namespace davinci {

class HyperLogLog {
 public:
  // 2^precision registers; precision in [4, 18].
  HyperLogLog(int precision, uint64_t seed);

  std::string Name() const { return "HLL"; }
  size_t MemoryBytes() const { return registers_.size(); }

  void Insert(uint32_t key);
  double EstimateCardinality() const;

  // Register-wise max merge (distributed union of observations).
  void Merge(const HyperLogLog& other);

 private:
  int precision_;
  HashFamily hash_;
  std::vector<uint8_t> registers_;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_HLL_H_
