#ifndef DAVINCI_BASELINES_FERMAT_SKETCH_H_
#define DAVINCI_BASELINES_FERMAT_SKETCH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"
#include "common/modular.h"

// FermatSketch (from ChameleMon, Yang et al.): d arrays of buckets
// {id_sum mod p, count}. Insertion adds count·key into the id field modulo
// the Fermat prime; a bucket holding a single flow is inverted with
// Fermat's little theorem (key = id_sum · count^{p-2} mod p) and peeled.
// Linear in the stream, so union is bucket-wise addition and difference is
// bucket-wise subtraction. CSOA uses it for the union/difference tasks.

namespace davinci {

class FermatSketch : public FrequencySketch {
 public:
  FermatSketch(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "Fermat"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  void Merge(const FermatSketch& other);
  void Subtract(const FermatSketch& other);

  // Peels the sketch; returns flow -> signed count.
  std::unordered_map<uint32_t, int64_t> Decode() const;

 private:
  struct Bucket {
    uint64_t id_sum = 0;  // Σ count·key mod p
    int64_t count = 0;    // Σ count (signed)
  };

  static constexpr size_t kBucketBytes = 9;  // 33-bit id (5B) + 4B count

  size_t BucketIndex(size_t row, uint32_t key) const {
    return row * width_ + hashes_[row].Bucket(key, width_);
  }

  size_t width_;
  std::vector<HashFamily> hashes_;
  std::vector<Bucket> buckets_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_FERMAT_SKETCH_H_
