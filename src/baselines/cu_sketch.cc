#include "baselines/cu_sketch.h"

#include <algorithm>

namespace davinci {

CuSketch::CuSketch(size_t memory_bytes, size_t rows, uint64_t seed) {
  rows = std::max<size_t>(1, rows);
  width_ = std::max<size_t>(1, memory_bytes / 4 / rows);
  hashes_.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    hashes_.emplace_back(seed * 2000003 + i);
  }
  counters_.assign(rows * width_, 0);
}

size_t CuSketch::MemoryBytes() const { return counters_.size() * 4; }

void CuSketch::Insert(uint32_t key, int64_t count) {
  // Conservative update: raise every mapped counter to the new estimate,
  // which only changes counters currently at or below it.
  int64_t current = Query(key);
  int64_t target = current + count;
  for (size_t i = 0; i < hashes_.size(); ++i) {
    ++accesses_;
    int64_t& c = counters_[i * width_ + hashes_[i].Bucket(key, width_)];
    c = std::max(c, target);
  }
}

int64_t CuSketch::Query(uint32_t key) const {
  int64_t best = INT64_MAX;
  for (size_t i = 0; i < hashes_.size(); ++i) {
    best = std::min(best, counters_[i * width_ + hashes_[i].Bucket(key, width_)]);
  }
  return best == INT64_MAX ? 0 : best;
}

}  // namespace davinci
