#ifndef DAVINCI_BASELINES_COLD_FILTER_H_
#define DAVINCI_BASELINES_COLD_FILTER_H_

#include <cstdint>
#include <string>

#include "baselines/cm_sketch.h"
#include "baselines/sketch_interface.h"
#include "baselines/tower_sketch.h"

// Cold Filter (Zhou et al., SIGMOD'18 — paper reference [31]): a two-layer
// bounded filter in front of any sketch. Cold items are absorbed by the
// filter's small counters; only the part of a flow exceeding the threshold
// reaches the backing structure (here a CM sketch), which therefore only
// stores hot items. The DaVinci element filter generalizes exactly this
// idea, so the standalone baseline doubles as a reference implementation.

namespace davinci {

class ColdFilterCm : public FrequencySketch {
 public:
  // `filter_fraction` of the byte budget funds the filter layers.
  ColdFilterCm(size_t memory_bytes, int64_t threshold, uint64_t seed);

  std::string Name() const override { return "ColdFilter+CM"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override;

  int64_t threshold() const { return threshold_; }

 private:
  int64_t threshold_;
  TowerSketch filter_;  // two small-counter layers (4-bit + 8-bit)
  CmSketch backing_;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_COLD_FILTER_H_
