#ifndef DAVINCI_BASELINES_HEAVY_GUARDIAN_H_
#define DAVINCI_BASELINES_HEAVY_GUARDIAN_H_

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// HeavyGuardian (Yang et al., KDD'18 — paper reference [38]): "separate
// and guard". Each bucket guards a few heavy cells with exponential-decay
// eviction (only improbable streaks of misses can dethrone an elephant)
// and keeps small light counters for the mice that lose.

namespace davinci {

class HeavyGuardian : public FrequencySketch, public HeavyHitterSketch {
 public:
  HeavyGuardian(size_t memory_bytes, uint64_t seed);

  std::string Name() const override { return "HeavyGuardian"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

 private:
  struct Cell {
    uint32_t key = 0;
    int64_t count = 0;
  };
  struct Bucket {
    std::vector<Cell> heavy;
    std::vector<int64_t> light;  // 8-bit saturating (design width)
  };

  static constexpr size_t kHeavyCells = 4;
  static constexpr size_t kLightCells = 8;
  static constexpr int64_t kLightCap = 255;
  static constexpr double kDecayBase = 1.08;
  static constexpr size_t kBucketBytes = kHeavyCells * 8 + kLightCells;

  size_t LightIndex(uint32_t key) const {
    return light_hash_.Bucket(key, kLightCells);
  }

  HashFamily bucket_hash_;
  HashFamily light_hash_;
  std::vector<Bucket> buckets_;
  std::mt19937_64 rng_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_HEAVY_GUARDIAN_H_
