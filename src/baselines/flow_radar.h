#ifndef DAVINCI_BASELINES_FLOW_RADAR_H_
#define DAVINCI_BASELINES_FLOW_RADAR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// FlowRadar (Li et al., NSDI'16): a Bloom flow filter plus a counting table
// whose cells accumulate {FlowXOR, FlowCount, PacketCount}. New flows touch
// all three fields; repeat packets only the packet counter. Cells holding a
// single flow are peeled to recover exact (flow, count) pairs; subtracting
// two encoded tables yields the set difference, which is the role the paper
// benchmarks it in.

namespace davinci {

class FlowRadar : public FrequencySketch {
 public:
  FlowRadar(size_t memory_bytes, uint64_t seed);

  std::string Name() const override { return "FlowRadar"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  // Frequency via decode (0 if the flow failed to decode).
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  // Cell-wise subtraction with an identically-seeded sketch.
  void Subtract(const FlowRadar& other);

  // Peels the counting table; returns flow -> signed packet count.
  std::unordered_map<uint32_t, int64_t> Decode() const;

 private:
  struct Cell {
    uint32_t flow_xor = 0;
    int64_t flow_count = 0;
    int64_t packet_count = 0;
  };

  static constexpr size_t kCellBytes = 9;  // 4B xor + 1B flows + 4B packets
  static constexpr size_t kHashes = 3;

  size_t CellIndex(size_t row, uint32_t key) const {
    return row * width_ + hashes_[row].Bucket(key, width_);
  }

  size_t bloom_bits_;
  std::vector<bool> bloom_;
  std::vector<HashFamily> bloom_hashes_;
  size_t width_;
  std::vector<HashFamily> hashes_;
  std::vector<Cell> cells_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_FLOW_RADAR_H_
