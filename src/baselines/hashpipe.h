#ifndef DAVINCI_BASELINES_HASHPIPE_H_
#define DAVINCI_BASELINES_HASHPIPE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// HashPipe (Sivaraman et al., SOSR'17): a pipeline of d (key, count)
// stages. A new packet always claims a slot in the first stage; the evicted
// entry then walks the remaining stages, displacing smaller entries, and
// the final loser is dropped. Designed for heavy-hitter detection on
// programmable switches.

namespace davinci {

class HashPipe : public FrequencySketch, public HeavyHitterSketch {
 public:
  HashPipe(size_t memory_bytes, size_t stages, uint64_t seed);

  std::string Name() const override { return "HashPipe"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

 private:
  struct Slot {
    uint32_t key = 0;
    int64_t count = 0;
  };

  size_t width_;
  std::vector<HashFamily> hashes_;        // one per stage
  std::vector<std::vector<Slot>> stages_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_HASHPIPE_H_
