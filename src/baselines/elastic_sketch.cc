#include "baselines/elastic_sketch.h"

#include <algorithm>

#include "estimators/em_distribution.h"
#include "estimators/entropy.h"
#include "estimators/linear_counting.h"

namespace davinci {
namespace {

constexpr size_t kHeavyBucketBytes = 13;  // 4B key + 4B+4B votes + 1B flag

}  // namespace

ElasticSketch::ElasticSketch(size_t memory_bytes, uint64_t seed)
    : heavy_hash_(seed * 4000037 + 1), light_hash_(seed * 4000037 + 2) {
  // The original work recommends roughly a 1:3 heavy:light byte split.
  size_t heavy_bytes = memory_bytes / 4;
  heavy_.assign(std::max<size_t>(1, heavy_bytes / kHeavyBucketBytes), Bucket{});
  light_.assign(std::max<size_t>(1, memory_bytes - heavy_bytes), 0);
}

size_t ElasticSketch::MemoryBytes() const {
  return heavy_.size() * kHeavyBucketBytes + light_.size();
}

void ElasticSketch::InsertLight(uint32_t key, int64_t count) {
  ++accesses_;
  int64_t& c = light_[light_hash_.Bucket(key, light_.size())];
  c = std::min(c + count, kLightCap);
}

int64_t ElasticSketch::QueryLight(uint32_t key) const {
  return light_[light_hash_.Bucket(key, light_.size())];
}

void ElasticSketch::Insert(uint32_t key, int64_t count) {
  ++accesses_;
  Bucket& b = heavy_[heavy_hash_.Bucket(key, heavy_.size())];
  if (b.key == key && b.positive_votes > 0) {
    b.positive_votes += count;
    return;
  }
  if (b.positive_votes == 0) {
    b.key = key;
    b.positive_votes = count;
    b.negative_votes = 0;
    b.flag = false;
    return;
  }
  b.negative_votes += count;
  if (b.negative_votes >= kEvictLambda * b.positive_votes) {
    // Evict the resident flow into the light part; the newcomer takes over.
    InsertLight(b.key, b.positive_votes);
    b.key = key;
    b.positive_votes = count;
    b.negative_votes = 1;
    b.flag = true;  // the newcomer may already have mass in the light part
  } else {
    InsertLight(key, count);
  }
}

int64_t ElasticSketch::Query(uint32_t key) const {
  const Bucket& b = heavy_[heavy_hash_.Bucket(key, heavy_.size())];
  if (b.key == key && b.positive_votes > 0) {
    return b.flag ? b.positive_votes + QueryLight(key) : b.positive_votes;
  }
  return QueryLight(key);
}

std::vector<std::pair<uint32_t, int64_t>> ElasticSketch::HeavyHitters(
    int64_t threshold) const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const Bucket& b : heavy_) {
    if (b.positive_votes == 0) continue;
    int64_t est = b.flag ? b.positive_votes + QueryLight(b.key)
                         : b.positive_votes;
    if (est > threshold) out.emplace_back(b.key, est);
  }
  return out;
}

void ElasticSketch::Merge(const ElasticSketch& other) {
  for (size_t i = 0; i < light_.size(); ++i) {
    light_[i] = std::min(light_[i] + other.light_[i], kLightCap);
  }
  for (size_t i = 0; i < heavy_.size(); ++i) {
    Bucket& dst = heavy_[i];
    const Bucket& src = other.heavy_[i];
    if (src.positive_votes == 0) continue;
    if (dst.positive_votes == 0) {
      dst = src;
    } else if (dst.key == src.key) {
      dst.positive_votes += src.positive_votes;
      dst.negative_votes += src.negative_votes;
      dst.flag = dst.flag || src.flag;
    } else {
      // Keep the larger flow; flush the loser into the light part.
      const Bucket& winner =
          dst.positive_votes >= src.positive_votes ? dst : src;
      const Bucket& loser =
          dst.positive_votes >= src.positive_votes ? src : dst;
      InsertLight(loser.key, loser.positive_votes);
      Bucket merged = winner;
      merged.flag = true;
      merged.negative_votes = dst.negative_votes + src.negative_votes;
      dst = merged;
    }
  }
}

std::vector<std::pair<uint32_t, int64_t>> ElasticSketch::HeavyEntries() const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const Bucket& b : heavy_) {
    if (b.positive_votes > 0) out.emplace_back(b.key, b.positive_votes);
  }
  return out;
}

size_t ElasticSketch::LightZeroSlots() const {
  size_t zeros = 0;
  for (int64_t c : light_) {
    if (c == 0) ++zeros;
  }
  return zeros;
}

double ElasticSketch::EstimateCardinality() const {
  // Linear counting over the light part plus the resident flows that never
  // spilled into it (flag == false buckets).
  double card = LinearCountingEstimate(light_.size(), LightZeroSlots());
  for (const Bucket& b : heavy_) {
    if (b.positive_votes != 0 && !b.flag) card += 1.0;
  }
  return card;
}

std::map<int64_t, int64_t> ElasticSketch::Distribution() const {
  // Saturated light counters carry no size information; heavy flows are
  // added with their full estimates.
  std::vector<int64_t> light = light_;
  for (int64_t& v : light) {
    if (v >= kLightCap) v = 0;
  }
  std::map<int64_t, int64_t> histogram = EmDistribution::Estimate(light);
  for (const Bucket& b : heavy_) {
    if (b.positive_votes != 0) ++histogram[Query(b.key)];
  }
  return histogram;
}

double ElasticSketch::EstimateEntropy() const {
  return EntropyFromDistribution(Distribution());
}

}  // namespace davinci
