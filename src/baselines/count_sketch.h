#ifndef DAVINCI_BASELINES_COUNT_SKETCH_H_
#define DAVINCI_BASELINES_COUNT_SKETCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// Count Sketch (Charikar, Chen, Farach-Colton): d rows of signed counters
// updated with a ±1 hash; the query is the median of the sign-corrected
// mapped counters, which makes the estimate unbiased. Also the substrate of
// CountHeap, UnivMon, F-AGMS and SkimmedSketch.

namespace davinci {

class CountSketch : public FrequencySketch {
 public:
  CountSketch(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "Count"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  size_t rows() const { return hashes_.size(); }
  size_t width() const { return width_; }
  int64_t CounterValue(size_t row, size_t index) const {
    return counters_[row * width_ + index];
  }
  int64_t& MutableCounter(size_t row, size_t index) {
    return counters_[row * width_ + index];
  }
  size_t RowIndex(size_t row, uint32_t key) const {
    return hashes_[row].Bucket(key, width_);
  }
  int RowSign(size_t row, uint32_t key) const {
    return signs_[row].Sign(key);
  }

  void Merge(const CountSketch& other);
  void Subtract(const CountSketch& other);

  // Unbiased inner-product estimate between two identically-seeded
  // sketches: median over rows of the row dot products (the F-AGMS
  // estimator of Cormode & Garofalakis).
  static double InnerProduct(const CountSketch& a, const CountSketch& b);

 private:
  size_t width_;
  std::vector<HashFamily> hashes_;
  std::vector<SignHash> signs_;
  std::vector<int64_t> counters_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_COUNT_SKETCH_H_
