#ifndef DAVINCI_BASELINES_COCO_SKETCH_H_
#define DAVINCI_BASELINES_COCO_SKETCH_H_

#include <cstdint>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// CocoSketch (Zhang et al., SIGCOMM'21): arrays of (key, count) buckets.
// Every insertion increments the mapped bucket's counter; the resident key
// is replaced by the incoming key with probability count_increment/count,
// which keeps each bucket's key an unbiased sample weighted by frequency.
// The paper uses it as a heavy-hitter comparator.

namespace davinci {

class CocoSketch : public FrequencySketch, public HeavyHitterSketch {
 public:
  CocoSketch(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "Coco"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

 private:
  struct Slot {
    uint32_t key = 0;
    int64_t count = 0;
  };

  size_t width_;
  std::vector<HashFamily> hashes_;
  std::vector<std::vector<Slot>> rows_;
  std::mt19937_64 rng_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_COCO_SKETCH_H_
