#include "baselines/tower_sketch.h"

#include <algorithm>
#include <cstdlib>

#include "common/prefetch.h"
#include "common/serialize.h"
#include "common/varint.h"
#include "obs/stats.h"

namespace davinci {

TowerSketch::TowerSketch(size_t memory_bytes, uint64_t seed, Options options)
    : store_(std::make_shared<Storage>()) {
  size_t num_levels = options.level_bits.empty() ? 1 : options.level_bits.size();
  size_t bytes_per_level = std::max<size_t>(1, memory_bytes / num_levels);
  levels_.resize(num_levels);
  store_->counters.resize(num_levels);
  for (size_t i = 0; i < num_levels; ++i) {
    Level& level = levels_[i];
    // Clamp before shifting: a hostile/garbage config (bits <= 0 or > 64)
    // would otherwise make the cap shift UB and the width divide by zero.
    int bits = options.level_bits.empty() ? 32 : options.level_bits[i];
    level.bits = std::clamp(bits, 1, 64);
    level.cap = (level.bits >= 63) ? INT64_MAX
                                   : ((int64_t{1} << level.bits) - 1);
    level.width = std::max<size_t>(1, bytes_per_level * 8 /
                                          static_cast<size_t>(level.bits));
    store_->counters[i].assign(level.width, 0);
    level.hash = HashFamily(seed * 131 + i + 1);
  }
}

void TowerSketch::CloneStore() {
  store_ = std::make_shared<Storage>(*store_);
  obs::CowTally::RecordClone(store_->ByteSize());
}

size_t TowerSketch::MemoryBytes() const {
  size_t bits = 0;
  for (const Level& level : levels_) {
    bits += level.width * static_cast<size_t>(level.bits);
  }
  return (bits + 7) / 8;
}

void TowerSketch::Insert(uint32_t key, int64_t count) {
  uint64_t base_hash = HashFamily::BaseHash(key);
  Storage& st = Mut();
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    ++accesses_;
    int64_t& c = st.counters[i][IndexIn(level, base_hash)];
    c = std::min(c + count, level.cap);
  }
}

int64_t TowerSketch::Query(uint32_t key) const {
  return QueryWithHash(HashFamily::BaseHash(key));
}

int64_t TowerSketch::QueryWithHash(uint64_t base_hash) const {
  const Storage& st = *store_;
  int64_t best = 0;
  bool found = false;
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    int64_t c = st.counters[i][IndexIn(level, base_hash)];
    if (c < level.cap) {
      if (!found || c < best) best = c;
      found = true;
    }
  }
  if (!found && !levels_.empty()) best = levels_.back().cap;
  return best;
}

void TowerSketch::PrefetchCounters(uint64_t base_hash) const {
  const Storage& st = *store_;
  for (size_t i = 0; i < levels_.size(); ++i) {
    PrefetchWrite(&st.counters[i][IndexIn(levels_[i], base_hash)]);
  }
}

int64_t TowerSketch::InsertCappedWithHash(uint64_t base_hash, int64_t count,
                                          int64_t cap) {
  // Conservative update: raise the element's estimate from its current
  // value toward min(current + count, cap); the remainder overflows.
  int64_t current = QueryWithHash(base_hash);
  if (current >= cap) {
    accesses_ += levels_.size();  // the query above touched each level
    return count;
  }
  int64_t absorbed = std::min(count, cap - current);
  int64_t target = current + absorbed;
  Storage& st = Mut();
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    ++accesses_;
    int64_t& c = st.counters[i][IndexIn(level, base_hash)];
    c = std::min(std::max(c, target), level.cap);
  }
  return count - absorbed;
}

int64_t TowerSketch::InsertCappedDownWithHash(uint64_t base_hash,
                                              int64_t magnitude, int64_t cap) {
  int64_t current = QuerySignedWithHash(base_hash);
  if (current <= -cap) {
    accesses_ += levels_.size();
    return magnitude;
  }
  int64_t absorbed = std::min(magnitude, cap + current);
  int64_t target = current - absorbed;
  Storage& st = Mut();
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    ++accesses_;
    int64_t& c = st.counters[i][IndexIn(level, base_hash)];
    c = std::max(std::min(c, target), -level.cap);
  }
  return magnitude - absorbed;
}

int64_t TowerSketch::QuerySignedWithHash(uint64_t base_hash) const {
  const Storage& st = *store_;
  int64_t best = 0;
  bool found = false;
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    int64_t c = st.counters[i][IndexIn(level, base_hash)];
    if (c < level.cap && c > -level.cap) {
      if (!found || std::llabs(c) < std::llabs(best)) best = c;
      found = true;
    }
  }
  return found || levels_.empty() ? best : levels_.back().cap;
}

void TowerSketch::Merge(const TowerSketch& other) {
  Storage& st = Mut();
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    std::vector<int64_t>& dst = st.counters[i];
    const std::vector<int64_t>& src = other.store_->counters[i];
    for (size_t j = 0; j < dst.size(); ++j) {
      dst[j] = std::min(dst[j] + src[j], level.cap);
    }
  }
}

void TowerSketch::Subtract(const TowerSketch& other) {
  Storage& st = Mut();
  for (size_t i = 0; i < levels_.size(); ++i) {
    std::vector<int64_t>& dst = st.counters[i];
    const std::vector<int64_t>& src = other.store_->counters[i];
    for (size_t j = 0; j < dst.size(); ++j) {
      dst[j] -= src[j];
    }
  }
}

void TowerSketch::SaveState(std::ostream& out) const {
  const Storage& st = *store_;
  for (size_t i = 0; i < levels_.size(); ++i) {
    WriteVec(out, st.counters[i]);
  }
}

bool TowerSketch::LoadState(std::istream& in) {
  Storage& st = Mut();
  for (size_t i = 0; i < levels_.size(); ++i) {
    std::vector<int64_t> counters;
    if (!ReadVec(in, &counters) || counters.size() != levels_[i].width) {
      return false;
    }
    // Range validation (tests/fuzz/fuzz_serialize.cc drives mutated images
    // through here): the write paths saturate every cell to [-cap, cap],
    // so anything outside is a corrupt image — and letting it in would put
    // the arithmetic that trusts the cap (signed absorb/saturate math) on
    // UB-capable inputs.
    for (int64_t counter : counters) {
      if (counter > levels_[i].cap || counter < -levels_[i].cap) {
        return false;
      }
    }
    st.counters[i] = std::move(counters);
  }
  return true;
}

void TowerSketch::SaveStateCompressed(std::ostream& out) const {
  const Storage& st = *store_;
  for (size_t i = 0; i < levels_.size(); ++i) {
    const std::vector<int64_t>& counters = st.counters[i];
    size_t pos = 0;
    while (pos < counters.size()) {
      size_t zero_run = 0;
      while (pos + zero_run < counters.size() &&
             counters[pos + zero_run] == 0) {
        ++zero_run;
      }
      WriteVarU64(out, zero_run);
      pos += zero_run;
      if (pos == counters.size()) break;
      size_t literal_run = 0;
      while (pos + literal_run < counters.size() &&
             counters[pos + literal_run] != 0) {
        ++literal_run;
      }
      WriteVarU64(out, literal_run);
      for (size_t j = 0; j < literal_run; ++j) {
        WriteVarI64(out, counters[pos + j]);
      }
      pos += literal_run;
    }
  }
}

bool TowerSketch::LoadStateCompressed(std::istream& in) {
  std::vector<std::vector<int64_t>> staged(levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    const size_t width = levels_[i].width;
    const int64_t cap = levels_[i].cap;
    std::vector<int64_t> counters(width, 0);
    size_t pos = 0;
    // Run arithmetic validation: each run length is checked against the
    // remaining width BEFORE advancing, so a hostile run count can neither
    // overflow `pos` nor index out of the level.
    while (pos < width) {
      uint64_t zero_run = 0;
      if (!ReadVarU64(in, &zero_run)) return false;
      if (zero_run > width - pos) return false;
      pos += zero_run;
      if (pos == width) break;
      uint64_t literal_run = 0;
      if (!ReadVarU64(in, &literal_run)) return false;
      if (literal_run == 0 || literal_run > width - pos) return false;
      for (uint64_t j = 0; j < literal_run; ++j) {
        int64_t value = 0;
        if (!ReadVarI64(in, &value)) return false;
        // Same range gate as the flat loader: the saturate math trusts
        // every cell to sit within ±cap.
        if (value > cap || value < -cap) return false;
        counters[pos + j] = value;
      }
      pos += literal_run;
    }
    staged[i] = std::move(counters);
  }
  Storage& st = Mut();
  st.counters = std::move(staged);
  return true;
}

void TowerSketch::SealDeltaBase() { delta_base_ = store_; }

void TowerSketch::SaveDeltaState(std::ostream& out) const {
  const Storage& st = *store_;
  for (size_t i = 0; i < levels_.size(); ++i) {
    const std::vector<int64_t>& counters = st.counters[i];
    // An unsealed sketch diffs against the all-zero state, so a delta from
    // a fresh sketch degenerates to the sparse full image.
    const std::vector<int64_t>* base =
        delta_base_ != nullptr ? &delta_base_->counters[i] : nullptr;
    uint64_t changed = 0;
    for (size_t j = 0; j < counters.size(); ++j) {
      int64_t base_value = base != nullptr ? (*base)[j] : 0;
      if (counters[j] != base_value) ++changed;
    }
    WriteVarU64(out, changed);
    uint64_t previous = 0;
    bool first = true;
    for (size_t j = 0; j < counters.size(); ++j) {
      int64_t base_value = base != nullptr ? (*base)[j] : 0;
      if (counters[j] == base_value) continue;
      WriteVarU64(out, first ? j : j - previous);
      WriteVarI64(out, counters[j]);
      previous = j;
      first = false;
    }
  }
}

bool TowerSketch::ApplyDeltaState(std::istream& in) {
  Storage& st = Mut();
  for (size_t i = 0; i < levels_.size(); ++i) {
    const size_t width = levels_[i].width;
    const int64_t cap = levels_[i].cap;
    uint64_t changed = 0;
    if (!ReadVarU64(in, &changed)) return false;
    if (changed > width) return false;
    uint64_t index = 0;
    for (uint64_t k = 0; k < changed; ++k) {
      uint64_t gap = 0;
      int64_t value = 0;
      if (!ReadVarU64(in, &gap) || !ReadVarI64(in, &value)) return false;
      // First entry is an absolute index; the rest are strictly-positive
      // gaps, so duplicate or descending indices reject. Gaps are bounded
      // against the remaining width before the add so a hostile gap cannot
      // wrap `index` back into range.
      if (k == 0) {
        if (gap >= width) return false;
        index = gap;
      } else {
        if (gap == 0 || gap >= width - index) return false;
        index += gap;
      }
      if (value > cap || value < -cap) return false;
      st.counters[i][index] = value;
    }
  }
  return true;
}

void TowerSketch::CheckInvariants(InvariantMode mode) const {
  DAVINCI_CHECK(!levels_.empty());
  const Storage& st = *store_;
  DAVINCI_CHECK_EQ(st.counters.size(), levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    const std::vector<int64_t>& counters = st.counters[i];
    DAVINCI_CHECK_MSG(level.bits > 0 && level.bits <= 64,
                      "level " + std::to_string(i));
    DAVINCI_CHECK_MSG(level.cap > 0, "level " + std::to_string(i));
    DAVINCI_CHECK_MSG(!counters.empty(), "level " + std::to_string(i));
    DAVINCI_CHECK_EQ(counters.size(), level.width);
    if (i > 0) {
      // Tower shape: going up, counters get wider (larger saturation cap)
      // and scarcer. Queries depend on this — a level saturating before
      // the one above it is what makes "smallest unsaturated" sound.
      DAVINCI_CHECK_LE(levels_[i - 1].cap, level.cap);
      DAVINCI_CHECK_LE(level.width, levels_[i - 1].width);
    }
    if (mode == InvariantMode::kAdditive) {
      for (size_t j = 0; j < counters.size(); ++j) {
        DAVINCI_CHECK_MSG(
            counters[j] >= 0 && counters[j] <= level.cap,
            "level " + std::to_string(i) + " counter " + std::to_string(j) +
                " = " + std::to_string(counters[j]));
      }
    }
  }
}

size_t TowerSketch::SaturatedSlots(size_t level) const {
  size_t saturated = 0;
  for (int64_t c : store_->counters[level]) {
    if (c >= levels_[level].cap) ++saturated;
  }
  return saturated;
}

size_t TowerSketch::ZeroSlots(size_t level) const {
  size_t zeros = 0;
  for (int64_t c : store_->counters[level]) {
    if (c == 0) ++zeros;
  }
  return zeros;
}

}  // namespace davinci
