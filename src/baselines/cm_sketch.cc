#include "baselines/cm_sketch.h"

#include <algorithm>

namespace davinci {

CmSketch::CmSketch(size_t memory_bytes, size_t rows, uint64_t seed) {
  rows = std::max<size_t>(1, rows);
  width_ = std::max<size_t>(1, memory_bytes / 4 / rows);
  hashes_.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    hashes_.emplace_back(seed * 1000003 + i);
  }
  counters_.assign(rows * width_, 0);
}

size_t CmSketch::MemoryBytes() const { return counters_.size() * 4; }

void CmSketch::Insert(uint32_t key, int64_t count) {
  for (size_t i = 0; i < hashes_.size(); ++i) {
    ++accesses_;
    counters_[i * width_ + hashes_[i].Bucket(key, width_)] += count;
  }
}

int64_t CmSketch::Query(uint32_t key) const {
  int64_t best = INT64_MAX;
  for (size_t i = 0; i < hashes_.size(); ++i) {
    best = std::min(best, counters_[i * width_ + hashes_[i].Bucket(key, width_)]);
  }
  return best == INT64_MAX ? 0 : best;
}

std::vector<int64_t> CmSketch::RowValues(size_t row) const {
  return std::vector<int64_t>(counters_.begin() + row * width_,
                              counters_.begin() + (row + 1) * width_);
}

void CmSketch::Merge(const CmSketch& other) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

void CmSketch::Subtract(const CmSketch& other) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] -= other.counters_[i];
  }
}

}  // namespace davinci
