#include "baselines/cardinality_sketches.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace davinci {

Pcsa::Pcsa(size_t bitmaps, uint64_t seed)
    : hash_(seed * 26000711 + 1),
      bitmaps_(std::max<size_t>(1, bitmaps), 0) {}

void Pcsa::Insert(uint32_t key) {
  uint64_t h = hash_.Hash(key);
  size_t index = static_cast<size_t>(h % bitmaps_.size());
  uint32_t suffix = static_cast<uint32_t>(h / bitmaps_.size()) | 0x80000000u;
  int rho = std::countr_zero(suffix);
  bitmaps_[index] |= (1u << rho);
}

double Pcsa::EstimateCardinality() const {
  double mean_r = 0.0;
  for (uint32_t bitmap : bitmaps_) {
    // R = position of the lowest unset bit.
    int r = std::countr_one(bitmap);
    mean_r += static_cast<double>(r);
  }
  mean_r /= static_cast<double>(bitmaps_.size());
  return static_cast<double>(bitmaps_.size()) / kPhi *
         std::pow(2.0, mean_r);
}

void Pcsa::Merge(const Pcsa& other) {
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    bitmaps_[i] |= other.bitmaps_[i];
  }
}

LogLog::LogLog(int precision, uint64_t seed)
    : precision_(std::clamp(precision, 4, 16)),
      hash_(seed * 26000711 + 2),
      registers_(size_t{1} << precision_, 0) {}

void LogLog::Insert(uint32_t key) {
  uint64_t h = hash_.Hash(key);
  size_t index = h >> (64 - precision_);
  uint64_t suffix = h << precision_ | (uint64_t{1} << (precision_ - 1));
  uint8_t rank = static_cast<uint8_t>(std::countl_zero(suffix) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

double LogLog::EstimateCardinality() const {
  // Durand-Flajolet α ≈ 0.39701 for large m (the asymptotic constant).
  constexpr double kAlpha = 0.39701;
  double mean = 0.0;
  for (uint8_t r : registers_) mean += static_cast<double>(r);
  mean /= static_cast<double>(registers_.size());
  return kAlpha * static_cast<double>(registers_.size()) *
         std::pow(2.0, mean);
}

void LogLog::Merge(const LogLog& other) {
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace davinci
