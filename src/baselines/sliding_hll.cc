#include "baselines/sliding_hll.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "estimators/linear_counting.h"

namespace davinci {

SlidingHll::SlidingHll(int precision, size_t epochs, uint64_t seed)
    : precision_(std::clamp(precision, 4, 16)),
      epochs_(std::max<size_t>(1, epochs)),
      hash_(seed * 35001301 + 9) {
  registers_.assign(epochs_,
                    std::vector<uint8_t>(size_t{1} << precision_, 0));
}

size_t SlidingHll::MemoryBytes() const {
  return epochs_ * (size_t{1} << precision_);
}

void SlidingHll::Insert(uint32_t key) {
  uint64_t h = hash_.Hash(key);
  size_t index = h >> (64 - precision_);
  uint64_t suffix = h << precision_ | (uint64_t{1} << (precision_ - 1));
  uint8_t rank = static_cast<uint8_t>(std::countl_zero(suffix) + 1);
  uint8_t& reg = registers_[current_][index];
  reg = std::max(reg, rank);
}

void SlidingHll::Advance() {
  current_ = (current_ + 1) % epochs_;
  std::fill(registers_[current_].begin(), registers_[current_].end(), 0);
}

double SlidingHll::EstimateCardinality() const {
  // Combine the window's epochs register-wise (max), then the standard
  // HLL estimate with small-range linear counting.
  size_t m = size_t{1} << precision_;
  double sum = 0.0;
  size_t zeros = 0;
  for (size_t r = 0; r < m; ++r) {
    uint8_t best = 0;
    for (size_t e = 0; e < epochs_; ++e) {
      best = std::max(best, registers_[e][r]);
    }
    sum += std::ldexp(1.0, -static_cast<int>(best));
    if (best == 0) ++zeros;
  }
  double md = static_cast<double>(m);
  double alpha = 0.7213 / (1.0 + 1.079 / md);
  double estimate = alpha * md * md / sum;
  if (estimate <= 2.5 * md && zeros > 0) {
    return LinearCountingEstimate(m, zeros);
  }
  return estimate;
}

}  // namespace davinci
