#include "baselines/agms.h"

#include <algorithm>

namespace davinci {

Agms::Agms(size_t rows, size_t columns, uint64_t seed)
    : rows_(std::max<size_t>(1, rows)),
      columns_(std::max<size_t>(1, columns)) {
  signs_.reserve(rows_ * columns_);
  for (size_t i = 0; i < rows_ * columns_; ++i) {
    signs_.emplace_back(seed * 14000153 + i);
  }
  counters_.assign(rows_ * columns_, 0);
}

void Agms::Insert(uint32_t key, int64_t count) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += signs_[i].Sign(key) * count;
  }
}

int64_t Agms::Query(uint32_t key) const {
  // AGMS is a moment estimator, not a point-query structure; the best
  // available point estimate is the mean of sign-corrected counters.
  double sum = 0.0;
  for (size_t i = 0; i < counters_.size(); ++i) {
    sum += static_cast<double>(signs_[i].Sign(key) * counters_[i]);
  }
  return static_cast<int64_t>(sum / static_cast<double>(counters_.size()));
}

double Agms::InnerProduct(const Agms& a, const Agms& b) {
  std::vector<double> row_means;
  row_means.reserve(a.rows_);
  for (size_t r = 0; r < a.rows_; ++r) {
    double mean = 0.0;
    for (size_t c = 0; c < a.columns_; ++c) {
      size_t i = r * a.columns_ + c;
      mean += static_cast<double>(a.counters_[i]) *
              static_cast<double>(b.counters_[i]);
    }
    row_means.push_back(mean / static_cast<double>(a.columns_));
  }
  std::nth_element(row_means.begin(), row_means.begin() + row_means.size() / 2,
                   row_means.end());
  return row_means[row_means.size() / 2];
}

double Agms::SecondMoment() const { return InnerProduct(*this, *this); }

FAgms::FAgms(size_t memory_bytes, size_t rows, uint64_t seed)
    : sketch_(memory_bytes, rows, seed * 15000161) {}

}  // namespace davinci
