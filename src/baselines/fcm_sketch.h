#ifndef DAVINCI_BASELINES_FCM_SKETCH_H_
#define DAVINCI_BASELINES_FCM_SKETCH_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// FCM-Sketch (Song et al., CoNEXT'20): d trees of hierarchical counters;
// each tree has a wide bottom stage of small counters and exponentially
// narrower upper stages of larger counters. A counter that saturates
// carries into its parent. We pair it with a small top-k tracker (the
// FCM+TopK configuration the paper compares against for heavy hitters).

namespace davinci {

class FcmSketch : public FrequencySketch, public HeavyHitterSketch {
 public:
  FcmSketch(size_t memory_bytes, uint64_t seed);

  std::string Name() const override { return "FCM"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

  // Bottom-stage counter values of tree 0 (distribution estimation) and
  // its zero count (linear counting).
  std::vector<int64_t> BottomStageValues() const;
  size_t BottomStageZeroSlots() const;

  std::vector<uint32_t> TrackedKeys() const;

  // Task estimators the paper benchmarks FCM on.
  double EstimateCardinality() const;
  std::map<int64_t, int64_t> Distribution() const;
  double EstimateEntropy() const;

 private:
  struct Stage {
    int64_t cap = 0;
    std::vector<int64_t> counters;
  };
  struct Tree {
    HashFamily hash;
    std::vector<Stage> stages;
  };

  static constexpr size_t kFanout = 8;
  static constexpr size_t kTrees = 2;

  int64_t QueryTree(const Tree& tree, uint32_t key) const;

  std::vector<Tree> trees_;
  size_t tracker_capacity_;
  std::unordered_map<uint32_t, int64_t> tracked_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_FCM_SKETCH_H_
