#ifndef DAVINCI_BASELINES_LOSS_RADAR_H_
#define DAVINCI_BASELINES_LOSS_RADAR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// LossRadar (Li et al., CoNEXT'16): an invertible-Bloom-lookup-table meter.
// Each cell accumulates {count, Σ key, Σ checksum(key)}; subtracting the
// upstream and downstream meters leaves exactly the lost (or, here, the
// differing) packets, and cells reduced to a single flow are peeled out.
// The paper benchmarks it on the set-difference task.

namespace davinci {

class LossRadar : public FrequencySketch {
 public:
  LossRadar(size_t memory_bytes, uint64_t seed);

  std::string Name() const override { return "LossRadar"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  void Subtract(const LossRadar& other);
  void Merge(const LossRadar& other);

  // Peels the table; returns flow -> signed packet count.
  std::unordered_map<uint32_t, int64_t> Decode() const;

 private:
  struct Cell {
    int64_t count = 0;
    int64_t key_sum = 0;    // Σ key · multiplicity (signed)
    int64_t check_sum = 0;  // Σ checksum(key) · multiplicity (signed)
  };

  static constexpr size_t kCellBytes = 16;  // 4B count + 8B keysum + 4B check
  static constexpr size_t kHashes = 3;

  static int64_t Checksum(uint32_t key) {
    return static_cast<int64_t>(Mix64(key ^ 0x5bd1e995u) & 0x7fffffffu);
  }

  size_t CellIndex(size_t row, uint32_t key) const {
    return row * width_ + hashes_[row].Bucket(key, width_);
  }

  size_t width_;
  std::vector<HashFamily> hashes_;
  std::vector<Cell> cells_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_LOSS_RADAR_H_
