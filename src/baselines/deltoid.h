#ifndef DAVINCI_BASELINES_DELTOID_H_
#define DAVINCI_BASELINES_DELTOID_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// Deltoid (Cormode & Muthukrishnan, "What's hot and what's not"): group
// testing for deltoids (heavy changers). Each bucket keeps one total
// counter plus one counter per key bit; subtracting two time windows and
// majority-testing the bit counters reconstructs the keys whose frequency
// changed the most. Listed in the paper's heavy-changer related work.

namespace davinci {

class Deltoid : public FrequencySketch {
 public:
  Deltoid(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "Deltoid"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  // Point estimate: min over rows of the bucket total (CM-style).
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  void Subtract(const Deltoid& other);
  void Merge(const Deltoid& other);

  // Keys whose |change| exceeds `threshold`, reconstructed bit-by-bit from
  // buckets whose |total| exceeds it (call after Subtract).
  std::vector<std::pair<uint32_t, int64_t>> HeavyChangers(
      int64_t threshold) const;

 private:
  static constexpr size_t kBits = 32;
  // total + one counter per bit, 4 bytes each (design width).
  static constexpr size_t kBucketBytes = (kBits + 1) * 4;

  size_t Base(size_t row, size_t bucket) const {
    return (row * width_ + bucket) * (kBits + 1);
  }

  size_t width_;
  std::vector<HashFamily> hashes_;
  std::vector<int64_t> counters_;  // rows × width × (1 + kBits)
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_DELTOID_H_
