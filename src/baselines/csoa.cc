#include "baselines/csoa.h"


namespace davinci {

Csoa::Csoa(const MemoryPlan& plan, uint64_t seed)
    : fcm_(plan.fcm_bytes, seed * 19000231 + 1),
      fermat_(plan.fermat_bytes, 3, seed * 19000231 + 2),
      join_(plan.join_bytes, seed * 19000231 + 3) {}

size_t Csoa::MemoryBytes() const {
  return fcm_.MemoryBytes() + fermat_.MemoryBytes() + join_.MemoryBytes();
}

void Csoa::Insert(uint32_t key, int64_t count) {
  fcm_.Insert(key, count);
  fermat_.Insert(key, count);
  join_.Insert(key, count);
}

uint64_t Csoa::MemoryAccesses() const {
  return fcm_.MemoryAccesses() + fermat_.MemoryAccesses() +
         join_.MemoryAccesses();
}

double Csoa::EstimateCardinality() const {
  return fcm_.EstimateCardinality();
}

std::map<int64_t, int64_t> Csoa::Distribution() const {
  return fcm_.Distribution();
}

double Csoa::EstimateEntropy() const { return fcm_.EstimateEntropy(); }

}  // namespace davinci
