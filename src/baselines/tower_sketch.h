#ifndef DAVINCI_BASELINES_TOWER_SKETCH_H_
#define DAVINCI_BASELINES_TOWER_SKETCH_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/check.h"
#include "common/hash.h"

// TowerSketch (Yang et al., SketchINT): a stack of count-min arrays where
// lower levels have many small counters and higher levels few large ones.
// Used standalone as a frequency baseline and as the substrate of the
// DaVinci element filter.
//
// Counters are stored physically as int64_t so that sketch subtraction
// (set difference) can go negative; MemoryBytes() accounts the design
// widths (level i uses `level_bits[i]`-bit counters), which is what the
// paper's memory axes measure.
//
// The counter arrays live behind a shared_ptr so copies share storage in
// O(1) (copy-on-write): the write path clones lazily, only when a snapshot
// still references the buffers (DESIGN.md §10). Level geometry (widths,
// caps, hash seeds) stays by value — it never changes after construction.

namespace davinci {

class TowerSketch : public FrequencySketch {
 public:
  struct Options {
    // Counter widths per level, bottom first. Every level gets an equal
    // share of the byte budget, so lower levels get more counters.
    std::vector<int> level_bits = {8, 16};
  };

  TowerSketch(size_t memory_bytes, uint64_t seed, Options options);
  TowerSketch(size_t memory_bytes, uint64_t seed)
      : TowerSketch(memory_bytes, seed, Options()) {}

  std::string Name() const override { return "Tower"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  // Cold-filter-style bounded insert used by the DaVinci element filter:
  // performs a conservative (CU) update but never grows the element's
  // estimate beyond `cap`. Returns the part of `count` that did not fit.
  int64_t InsertCapped(uint32_t key, int64_t count, int64_t cap) {
    return InsertCappedWithHash(HashFamily::BaseHash(key), count, cap);
  }

  // Mirror of InsertCapped for negative mass (difference sketches): pushes
  // the element's estimate down toward −cap by `magnitude` (≥ 0); returns
  // the magnitude that did not fit.
  int64_t InsertCappedDown(uint32_t key, int64_t magnitude, int64_t cap) {
    return InsertCappedDownWithHash(HashFamily::BaseHash(key), magnitude, cap);
  }

  // Point query that may return a negative value (for subtracted sketches):
  // among unsaturated levels, the value of smallest magnitude.
  int64_t QuerySigned(uint32_t key) const {
    return QuerySignedWithHash(HashFamily::BaseHash(key));
  }

  // Hot-path variants taking a precomputed HashFamily::BaseHash of the key
  // (the counter index depends only on the base hash, not the key itself).
  int64_t InsertCappedWithHash(uint64_t base_hash, int64_t count, int64_t cap);
  int64_t InsertCappedDownWithHash(uint64_t base_hash, int64_t magnitude,
                                   int64_t cap);
  int64_t QueryWithHash(uint64_t base_hash) const;
  int64_t QuerySignedWithHash(uint64_t base_hash) const;

  // Write-prefetch of the one counter per level that `base_hash` maps to.
  void PrefetchCounters(uint64_t base_hash) const;

  // Counter-wise merge/subtract with a sketch of identical geometry and
  // seeds. Merge saturates at each level's cap, as the paper prescribes.
  void Merge(const TowerSketch& other);
  void Subtract(const TowerSketch& other);

  size_t num_levels() const { return levels_.size(); }
  size_t LevelWidth(size_t level) const { return levels_[level].width; }
  int64_t CounterValue(size_t level, size_t index) const {
    return store_->counters[level][index];
  }
  const std::vector<int64_t>& LevelValues(size_t level) const {
    return store_->counters[level];
  }
  size_t LevelIndex(size_t level, uint32_t key) const {
    return LevelIndexWithBase(level, HashFamily::BaseHash(key));
  }
  size_t LevelIndexWithBase(size_t level, uint64_t base_hash) const {
    return IndexIn(levels_[level], base_hash);
  }
  int64_t LevelCap(size_t level) const { return levels_[level].cap; }
  int LevelBits(size_t level) const { return levels_[level].bits; }

  // Untouched slots in `level` (for linear counting).
  size_t ZeroSlots(size_t level) const;

  // Counters pinned at the level's saturation cap (for health telemetry:
  // a saturated level degrades silently, see docs/OBSERVABILITY.md).
  size_t SaturatedSlots(size_t level) const;

  // Aborts (DAVINCI_CHECK) if the tower's structural invariants are
  // violated: levels exist, counter widths shrink and caps grow going up
  // (the tower shape saturation relies on), and — in kAdditive mode —
  // every counter sits in [0, cap] (inserts and merges saturate at cap and
  // never go negative).
  void CheckInvariants(InvariantMode mode) const;

  // Raw counter state round-trip (geometry must already match; used by
  // DaVinciSketch serialization).
  void SaveState(std::ostream& out) const;
  bool LoadState(std::istream& in);

  // DVSZ compressed counter state: per level, alternating runs of
  // (zero_run varint, literal_run varint, literal_run × zigzag varints)
  // until the level width is filled. Tower levels are mostly zeros on real
  // traffic (~94% at level 0 on the insert bench), so this is where the
  // flat image's bulk disappears. The loader re-validates everything the
  // flat loader does (runs sum exactly to the width, every counter within
  // ±cap) plus the run arithmetic itself, so truncated runs and overlong
  // varints reject cleanly instead of feeding the saturate math.
  void SaveStateCompressed(std::ostream& out) const;
  bool LoadStateCompressed(std::istream& in);

  // Delta images: SealDeltaBase() pins the current storage as the delta
  // base by retaining its CoW shared_ptr — the next write clones through
  // Mut() exactly as a snapshot would, so sealing costs nothing on the
  // insert hot path. SaveDeltaState() then emits only the cells that
  // differ from the base (gap-coded sparse indices); ApplyDeltaState()
  // overwrites those cells, turning a peer's base-state copy into a
  // bit-identical replica of this sketch.
  void SealDeltaBase();
  void SaveDeltaState(std::ostream& out) const;
  bool ApplyDeltaState(std::istream& in);

  // Identity of the shared counter storage — two TowerSketches return the
  // same pointer iff they still share buffers (CoW test hook).
  const void* StorageId() const { return store_.get(); }

 private:
  struct Level {
    int bits = 8;
    int64_t cap = 255;
    HashFamily hash;
    size_t width = 1;  // counter count at this level (fixed geometry)
  };

  struct Storage {
    // counters[level][index]; widths mirror levels_[level].width.
    std::vector<std::vector<int64_t>> counters;
    size_t ByteSize() const {
      size_t bytes = 0;
      for (const auto& level : counters) {
        bytes += level.size() * sizeof(int64_t);
      }
      return bytes;
    }
  };

  // Divide-free per-level counter index from a precomputed base hash.
  static size_t IndexIn(const Level& level, uint64_t base_hash) {
    return HashFamily::FastReduce(level.hash.RehashBase(base_hash),
                                  level.width);
  }

  // Write-path storage access: clones iff a snapshot still shares the
  // buffers (see FrequentPart::Mut for the refcount reasoning).
  Storage& Mut() {
    if (store_.use_count() > 1) CloneStore();
    return *store_;
  }
  void CloneStore();

  std::vector<Level> levels_;
  std::shared_ptr<Storage> store_;
  // Delta base pinned by SealDeltaBase(); null until the first seal. Holding
  // the const ref here is what arms the CoW clone in Mut().
  std::shared_ptr<const Storage> delta_base_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_TOWER_SKETCH_H_
