#include "baselines/fcm_sketch.h"

#include <algorithm>

#include "estimators/em_distribution.h"
#include "estimators/entropy.h"
#include "estimators/linear_counting.h"

namespace davinci {
namespace {

constexpr size_t kTrackerShareDenominator = 8;  // tracker gets 1/8 of memory
constexpr size_t kBytesPerTrackedKey = 8;
constexpr int kStageBits[] = {8, 16, 32};
constexpr size_t kNumStages = 3;

}  // namespace

FcmSketch::FcmSketch(size_t memory_bytes, uint64_t seed) {
  size_t tracker_bytes = memory_bytes / kTrackerShareDenominator;
  tracker_capacity_ = std::max<size_t>(8, tracker_bytes / kBytesPerTrackedKey);
  size_t sketch_bytes = memory_bytes - tracker_bytes;

  // Solve for the bottom width w of one tree: bytes(tree) =
  // w·1 + (w/8)·2 + (w/64)·4 = w·(1 + 1/4 + 1/16) bytes.
  double per_tree = static_cast<double>(sketch_bytes) / kTrees;
  size_t bottom = std::max<size_t>(
      kFanout * kFanout, static_cast<size_t>(per_tree / (1.0 + 0.25 + 0.0625)));

  trees_.resize(kTrees);
  for (size_t t = 0; t < kTrees; ++t) {
    Tree& tree = trees_[t];
    tree.hash = HashFamily(seed * 5000011 + t);
    tree.stages.resize(kNumStages);
    size_t width = bottom;
    for (size_t s = 0; s < kNumStages; ++s) {
      tree.stages[s].cap = (int64_t{1} << kStageBits[s]) - 1;
      tree.stages[s].counters.assign(std::max<size_t>(1, width), 0);
      width /= kFanout;
    }
  }
}

size_t FcmSketch::MemoryBytes() const {
  size_t bytes = tracker_capacity_ * kBytesPerTrackedKey;
  for (const Tree& tree : trees_) {
    for (size_t s = 0; s < tree.stages.size(); ++s) {
      bytes += tree.stages[s].counters.size() * (kStageBits[s] / 8);
    }
  }
  return bytes;
}

void FcmSketch::Insert(uint32_t key, int64_t count) {
  for (Tree& tree : trees_) {
    size_t index = tree.hash.Bucket(key, tree.stages[0].counters.size());
    int64_t remaining = count;
    for (Stage& stage : tree.stages) {
      ++accesses_;
      int64_t& c = stage.counters[index % stage.counters.size()];
      int64_t room = stage.cap - c;
      if (remaining <= room) {
        c += remaining;
        remaining = 0;
        break;
      }
      c = stage.cap;
      remaining -= room;
      index /= kFanout;
    }
  }

  // Top-k tracker with periodic pruning.
  auto it = tracked_.find(key);
  if (it != tracked_.end()) {
    it->second += count;
  } else {
    tracked_[key] = QueryTree(trees_[0], key);
    if (tracked_.size() >= tracker_capacity_ * 2) {
      std::vector<std::pair<int64_t, uint32_t>> entries;
      entries.reserve(tracked_.size());
      for (const auto& [k, v] : tracked_) entries.emplace_back(v, k);
      std::nth_element(entries.begin(), entries.begin() + tracker_capacity_,
                       entries.end(), std::greater<>());
      entries.resize(tracker_capacity_);
      tracked_.clear();
      for (const auto& [v, k] : entries) tracked_[k] = v;
    }
  }
}

int64_t FcmSketch::QueryTree(const Tree& tree, uint32_t key) const {
  size_t index = tree.hash.Bucket(key, tree.stages[0].counters.size());
  int64_t total = 0;
  for (const Stage& stage : tree.stages) {
    int64_t c = stage.counters[index % stage.counters.size()];
    total += c;
    if (c < stage.cap) break;
    index /= kFanout;
  }
  return total;
}

int64_t FcmSketch::Query(uint32_t key) const {
  int64_t best = INT64_MAX;
  for (const Tree& tree : trees_) {
    best = std::min(best, QueryTree(tree, key));
  }
  return best == INT64_MAX ? 0 : best;
}

std::vector<std::pair<uint32_t, int64_t>> FcmSketch::HeavyHitters(
    int64_t threshold) const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const auto& [key, est] : tracked_) {
    int64_t value = std::max(est, Query(key));
    if (value > threshold) out.emplace_back(key, value);
  }
  return out;
}

std::vector<int64_t> FcmSketch::BottomStageValues() const {
  return trees_[0].stages[0].counters;
}

size_t FcmSketch::BottomStageZeroSlots() const {
  size_t zeros = 0;
  for (int64_t c : trees_[0].stages[0].counters) {
    if (c == 0) ++zeros;
  }
  return zeros;
}

double FcmSketch::EstimateCardinality() const {
  return LinearCountingEstimate(trees_[0].stages[0].counters.size(),
                                BottomStageZeroSlots());
}

std::map<int64_t, int64_t> FcmSketch::Distribution() const {
  // Saturated bottom counters belong to heavy flows; blank them for EM and
  // add the tracked heavy flows with their multi-stage estimates.
  std::vector<int64_t> bottom = BottomStageValues();
  const int64_t cap = trees_[0].stages[0].cap;
  for (int64_t& v : bottom) {
    if (v >= cap) v = 0;
  }
  std::map<int64_t, int64_t> histogram = EmDistribution::Estimate(bottom);
  for (const auto& [key, est] : tracked_) {
    (void)est;
    int64_t value = Query(key);
    if (value >= cap) ++histogram[value];
  }
  return histogram;
}

double FcmSketch::EstimateEntropy() const {
  return EntropyFromDistribution(Distribution());
}

std::vector<uint32_t> FcmSketch::TrackedKeys() const {
  std::vector<uint32_t> keys;
  keys.reserve(tracked_.size());
  for (const auto& [k, v] : tracked_) {
    (void)v;
    keys.push_back(k);
  }
  return keys;
}

}  // namespace davinci
