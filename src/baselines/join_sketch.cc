#include "baselines/join_sketch.h"

#include <algorithm>
#include <unordered_map>

namespace davinci {
namespace {

// Frequent part gets 1/4 of the byte budget, per the original guidance.
size_t FrequentBytes(size_t memory_bytes) { return memory_bytes / 4; }

}  // namespace

JoinSketch::JoinSketch(size_t memory_bytes, uint64_t seed)
    : bucket_hash_(seed * 16000183 + 1),
      sketch_(memory_bytes - FrequentBytes(memory_bytes), 4,
              seed * 16000183 + 2) {
  size_t bucket_bytes = kSlotsPerBucket * kSlotBytes + 4;  // + vote counter
  size_t num_buckets =
      std::max<size_t>(1, FrequentBytes(memory_bytes) / bucket_bytes);
  buckets_.resize(num_buckets);
  for (Bucket& bucket : buckets_) {
    bucket.slots.resize(kSlotsPerBucket);
  }
}

size_t JoinSketch::MemoryBytes() const {
  return buckets_.size() * (kSlotsPerBucket * kSlotBytes + 4) +
         sketch_.MemoryBytes();
}

void JoinSketch::Insert(uint32_t key, int64_t count) {
  Bucket& bucket = buckets_[bucket_hash_.Bucket(key, buckets_.size())];
  Slot* smallest = &bucket.slots[0];
  for (Slot& slot : bucket.slots) {
    ++accesses_;
    if (slot.count > 0 && slot.key == key) {
      slot.count += count;
      return;
    }
    if (slot.count == 0) {
      slot.key = key;
      slot.count = count;
      return;
    }
    if (slot.count < smallest->count) smallest = &slot;
  }
  bucket.evict_votes += count;
  if (bucket.evict_votes > kEvictLambda * smallest->count) {
    // The resident minimum is demoted to the infrequent sketch.
    sketch_.Insert(smallest->key, smallest->count);
    smallest->key = key;
    smallest->count = count;
    bucket.evict_votes = 0;
  } else {
    sketch_.Insert(key, count);
  }
}

int64_t JoinSketch::Query(uint32_t key) const {
  const Bucket& bucket =
      buckets_[bucket_hash_.Bucket(key, buckets_.size())];
  for (const Slot& slot : bucket.slots) {
    if (slot.count > 0 && slot.key == key) return slot.count;
  }
  return QueryInfrequent(key);
}

std::vector<std::pair<uint32_t, int64_t>> JoinSketch::FrequentEntries() const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const Bucket& bucket : buckets_) {
    for (const Slot& slot : bucket.slots) {
      if (slot.count > 0) out.emplace_back(slot.key, slot.count);
    }
  }
  return out;
}

double JoinSketch::InnerProduct(const JoinSketch& a, const JoinSketch& b) {
  std::unordered_map<uint32_t, int64_t> frequent_b;
  for (const auto& [key, count] : b.FrequentEntries()) {
    frequent_b[key] = count;
  }

  double join = 0.0;
  // Frequent(a) × [Frequent(b) exact | Infrequent(b) sketch query].
  for (const auto& [key, count] : a.FrequentEntries()) {
    auto it = frequent_b.find(key);
    int64_t other = it != frequent_b.end() ? it->second
                                           : b.QueryInfrequent(key);
    join += static_cast<double>(count) * static_cast<double>(other);
  }
  // Infrequent(a) × Frequent(b).
  for (const auto& [key, count] : frequent_b) {
    join += static_cast<double>(a.QueryInfrequent(key)) *
            static_cast<double>(count);
  }
  // Infrequent × Infrequent via the unbiased Count-Sketch inner product.
  join += CountSketch::InnerProduct(a.sketch_, b.sketch_);
  return join;
}

}  // namespace davinci
