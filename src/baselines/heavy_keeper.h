#ifndef DAVINCI_BASELINES_HEAVY_KEEPER_H_
#define DAVINCI_BASELINES_HEAVY_KEEPER_H_

#include <cstdint>
#include <random>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// HeavyKeeper (Yang et al., ToN'19 — the paper's reference [11]):
// probabilistic "count-with-exponential-decay" buckets for finding top-k
// elephant flows. Each bucket stores a fingerprint and a counter; a
// mismatching arrival decays the resident counter with probability b^-C,
// so mice cannot displace elephants but dead flows eventually fade.

namespace davinci {

class HeavyKeeper : public FrequencySketch, public HeavyHitterSketch {
 public:
  HeavyKeeper(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "HeavyKeeper"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

 private:
  struct Slot {
    uint32_t fingerprint = 0;
    int64_t count = 0;
  };

  static constexpr double kDecayBase = 1.08;
  static constexpr size_t kSlotBytes = 8;  // 4B fingerprint + 4B counter

  uint32_t Fingerprint(uint32_t key) const {
    return static_cast<uint32_t>(fingerprint_hash_.Hash(key)) | 1u;
  }

  size_t width_;
  size_t heap_capacity_;
  std::vector<HashFamily> hashes_;
  HashFamily fingerprint_hash_;
  std::vector<std::vector<Slot>> rows_;
  std::unordered_map<uint32_t, int64_t> tracked_;  // top-k key list
  std::mt19937_64 rng_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_HEAVY_KEEPER_H_
