#include "baselines/fermat_sketch.h"

#include <algorithm>
#include <deque>

namespace davinci {

FermatSketch::FermatSketch(size_t memory_bytes, size_t rows, uint64_t seed) {
  rows = std::max<size_t>(1, rows);
  width_ = std::max<size_t>(1, memory_bytes / kBucketBytes / rows);
  for (size_t i = 0; i < rows; ++i) {
    hashes_.emplace_back(seed * 13000133 + i);
  }
  buckets_.assign(rows * width_, Bucket{});
}

size_t FermatSketch::MemoryBytes() const {
  return buckets_.size() * kBucketBytes;
}

void FermatSketch::Insert(uint32_t key, int64_t count) {
  uint64_t delta = MulMod(SignedMod(count, kFermatPrime), key, kFermatPrime);
  for (size_t i = 0; i < hashes_.size(); ++i) {
    ++accesses_;
    Bucket& bucket = buckets_[BucketIndex(i, key)];
    bucket.id_sum = AddMod(bucket.id_sum, delta, kFermatPrime);
    bucket.count += count;
  }
}

void FermatSketch::Merge(const FermatSketch& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].id_sum =
        AddMod(buckets_[i].id_sum, other.buckets_[i].id_sum, kFermatPrime);
    buckets_[i].count += other.buckets_[i].count;
  }
}

void FermatSketch::Subtract(const FermatSketch& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i].id_sum =
        SubMod(buckets_[i].id_sum, other.buckets_[i].id_sum, kFermatPrime);
    buckets_[i].count -= other.buckets_[i].count;
  }
}

std::unordered_map<uint32_t, int64_t> FermatSketch::Decode() const {
  std::vector<Bucket> buckets = buckets_;
  std::unordered_map<uint32_t, int64_t> flows;
  std::deque<size_t> queue;
  for (size_t i = 0; i < buckets.size(); ++i) queue.push_back(i);

  auto try_peel = [&](size_t index) -> bool {
    Bucket& bucket = buckets[index];
    if (bucket.count == 0) return false;
    uint64_t count_mod = SignedMod(bucket.count, kFermatPrime);
    if (count_mod == 0) return false;
    uint64_t candidate =
        MulMod(bucket.id_sum, ModInverse(count_mod, kFermatPrime),
               kFermatPrime);
    if (candidate == 0 || candidate > UINT32_MAX) return false;
    uint32_t key = static_cast<uint32_t>(candidate);
    size_t row = index / width_;
    if (BucketIndex(row, key) != index) return false;

    int64_t count = bucket.count;
    uint64_t delta = MulMod(SignedMod(count, kFermatPrime), key, kFermatPrime);
    flows[key] += count;
    for (size_t r = 0; r < hashes_.size(); ++r) {
      size_t j = BucketIndex(r, key);
      buckets[j].id_sum = SubMod(buckets[j].id_sum, delta, kFermatPrime);
      buckets[j].count -= count;
      queue.push_back(j);
    }
    return true;
  };

  // Two safety valves bound the peeling: `stale` stops when no progress is
  // possible, and `peels` stops pathological false-positive cycles (peel /
  // un-peel oscillations that can arise in overloaded sketches).
  size_t stale = 0;
  size_t peels = 0;
  const size_t max_peels = buckets.size() * 4 + 64;
  while (!queue.empty() && stale < buckets.size() * 4 &&
         peels < max_peels) {
    size_t index = queue.front();
    queue.pop_front();
    if (try_peel(index)) {
      stale = 0;
      ++peels;
    } else {
      ++stale;
    }
  }
  for (auto it = flows.begin(); it != flows.end();) {
    if (it->second == 0) {
      it = flows.erase(it);
    } else {
      ++it;
    }
  }
  return flows;
}

int64_t FermatSketch::Query(uint32_t key) const {
  auto flows = Decode();
  auto it = flows.find(key);
  return it == flows.end() ? 0 : it->second;
}

}  // namespace davinci
