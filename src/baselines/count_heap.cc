#include "baselines/count_heap.h"

#include <algorithm>

namespace davinci {
namespace {

constexpr size_t kTrackerShareDenominator = 4;  // tracker gets 1/4 of memory
constexpr size_t kBytesPerTrackedKey = 8;       // 4B key + 4B counter

}  // namespace

CountHeap::CountHeap(size_t memory_bytes, size_t rows, uint64_t seed)
    : capacity_(std::max<size_t>(
          8, memory_bytes / kTrackerShareDenominator / kBytesPerTrackedKey)),
      sketch_(memory_bytes - memory_bytes / kTrackerShareDenominator, rows,
              seed) {
  tracked_.reserve(capacity_ * 2);
}

size_t CountHeap::MemoryBytes() const {
  return sketch_.MemoryBytes() + capacity_ * kBytesPerTrackedKey;
}

void CountHeap::Insert(uint32_t key, int64_t count) {
  sketch_.Insert(key, count);
  auto it = tracked_.find(key);
  if (it != tracked_.end()) {
    it->second += count;
    heap_.emplace(it->second, key);
    return;
  }
  MaybeTrack(key, sketch_.Query(key));
}

void CountHeap::MaybeTrack(uint32_t key, int64_t estimate) {
  if (tracked_.size() < capacity_) {
    tracked_[key] = estimate;
    heap_.emplace(estimate, key);
    return;
  }
  // Find the current minimum, skipping entries whose estimate is stale.
  while (!heap_.empty()) {
    auto [est, min_key] = heap_.top();
    auto it = tracked_.find(min_key);
    if (it == tracked_.end() || it->second != est) {
      heap_.pop();
      continue;
    }
    if (estimate > est) {
      heap_.pop();
      tracked_.erase(it);
      tracked_[key] = estimate;
      heap_.emplace(estimate, key);
    }
    return;
  }
}

int64_t CountHeap::Query(uint32_t key) const {
  auto it = tracked_.find(key);
  if (it != tracked_.end()) return it->second;
  return sketch_.Query(key);
}

uint64_t CountHeap::MemoryAccesses() const {
  return sketch_.MemoryAccesses();
}

std::vector<std::pair<uint32_t, int64_t>> CountHeap::HeavyHitters(
    int64_t threshold) const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const auto& [key, est] : tracked_) {
    if (est > threshold) out.emplace_back(key, est);
  }
  return out;
}

std::vector<uint32_t> CountHeap::TrackedKeys() const {
  std::vector<uint32_t> keys;
  keys.reserve(tracked_.size());
  for (const auto& [key, est] : tracked_) {
    (void)est;
    keys.push_back(key);
  }
  return keys;
}

}  // namespace davinci
