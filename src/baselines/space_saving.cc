#include "baselines/space_saving.h"

#include <algorithm>

namespace davinci {

SpaceSaving::SpaceSaving(size_t memory_bytes, uint64_t seed)
    : capacity_(std::max<size_t>(4, memory_bytes / kEntryBytes)) {
  (void)seed;  // deterministic structure; kept for interface uniformity
  entries_.reserve(capacity_ * 2);
}

size_t SpaceSaving::MemoryBytes() const { return capacity_ * kEntryBytes; }

void SpaceSaving::Insert(uint32_t key, int64_t count) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    Entry& entry = it->second;
    buckets_.erase(entry.bucket);
    entry.count += count;
    entry.bucket = buckets_.emplace(entry.count, key);
    return;
  }
  if (entries_.size() < capacity_) {
    Entry entry;
    entry.count = count;
    entry.error = 0;
    entry.bucket = buckets_.emplace(count, key);
    entries_.emplace(key, entry);
    return;
  }
  // Replace the minimum: the newcomer inherits min as its error bound.
  auto min_it = buckets_.begin();
  int64_t min_count = min_it->first;
  uint32_t victim = min_it->second;
  buckets_.erase(min_it);
  entries_.erase(victim);

  Entry entry;
  entry.count = min_count + count;
  entry.error = min_count;
  entry.bucket = buckets_.emplace(entry.count, key);
  entries_.emplace(key, entry);
}

int64_t SpaceSaving::Query(uint32_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.count;
}

int64_t SpaceSaving::ErrorOf(uint32_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.error;
}

std::vector<std::pair<uint32_t, int64_t>> SpaceSaving::HeavyHitters(
    int64_t threshold) const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.count > threshold) out.emplace_back(key, entry.count);
  }
  return out;
}

}  // namespace davinci
