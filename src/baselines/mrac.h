#ifndef DAVINCI_BASELINES_MRAC_H_
#define DAVINCI_BASELINES_MRAC_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// MRAC (Kumar et al., SIGMETRICS'04): a single array of counters indexed by
// one hash; the flow-size distribution is recovered from the histogram of
// counter values with EM. The paper's distribution/entropy baseline.

namespace davinci {

class Mrac : public FrequencySketch {
 public:
  Mrac(size_t memory_bytes, uint64_t seed);

  std::string Name() const override { return "MRAC"; }
  size_t MemoryBytes() const override { return counters_.size() * 4; }
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  // EM-estimated flow-size histogram.
  std::map<int64_t, int64_t> Distribution() const;

  double EstimateEntropy() const;
  double EstimateCardinality() const;

 private:
  HashFamily hash_;
  std::vector<int64_t> counters_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_MRAC_H_
