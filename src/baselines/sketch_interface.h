#ifndef DAVINCI_BASELINES_SKETCH_INTERFACE_H_
#define DAVINCI_BASELINES_SKETCH_INTERFACE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

// Uniform interfaces implemented by every comparator sketch so the bench
// harness can sweep algorithms generically. Concrete sketches implement the
// capability interfaces that match the tasks the paper evaluates them on.

namespace davinci {

// Base capability: streaming insertion of keyed counts plus point queries.
class FrequencySketch {
 public:
  virtual ~FrequencySketch() = default;

  virtual std::string Name() const = 0;

  // Bytes of sketch state under the design's counter widths (the number
  // the paper's memory axes refer to), not the process RSS.
  virtual size_t MemoryBytes() const = 0;

  virtual void Insert(uint32_t key, int64_t count) = 0;

  virtual int64_t Query(uint32_t key) const = 0;

  // Counter/bucket touches performed so far by Insert (for the paper's
  // Average Memory Access metric). Sketches that do not participate in the
  // AMA experiment may keep the default.
  virtual uint64_t MemoryAccesses() const { return 0; }
};

// Sketches that can enumerate candidate heavy hitters without an external
// key list (HashPipe, Elastic, Coco, CountHeap, UnivMon, FCM, DaVinci).
class HeavyHitterSketch {
 public:
  virtual ~HeavyHitterSketch() = default;

  // All elements whose estimated frequency exceeds `threshold`.
  virtual std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_SKETCH_INTERFACE_H_
