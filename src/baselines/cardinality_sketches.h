#ifndef DAVINCI_BASELINES_CARDINALITY_SKETCHES_H_
#define DAVINCI_BASELINES_CARDINALITY_SKETCHES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"

// Classical cardinality estimators from the paper's related work
// (alongside HyperLogLog in hll.h): PCSA (Flajolet-Martin probabilistic
// counting with stochastic averaging) and Durand-Flajolet LogLog.

namespace davinci {

// PCSA: m bitmaps; element e sets bit ρ(h(e)) of bitmap h(e) mod m, where
// ρ is the position of the lowest set bit. n̂ = m/φ · 2^(mean lowest unset).
class Pcsa {
 public:
  Pcsa(size_t bitmaps, uint64_t seed);

  std::string Name() const { return "PCSA"; }
  size_t MemoryBytes() const { return bitmaps_.size() * 4; }

  void Insert(uint32_t key);
  double EstimateCardinality() const;
  void Merge(const Pcsa& other);  // bitwise OR

 private:
  static constexpr double kPhi = 0.77351;

  HashFamily hash_;
  std::vector<uint32_t> bitmaps_;
};

// LogLog: m registers holding the max rank seen; n̂ = α_m · m · 2^(mean).
class LogLog {
 public:
  LogLog(int precision, uint64_t seed);

  std::string Name() const { return "LogLog"; }
  size_t MemoryBytes() const { return registers_.size(); }

  void Insert(uint32_t key);
  double EstimateCardinality() const;
  void Merge(const LogLog& other);  // register-wise max

 private:
  int precision_;
  HashFamily hash_;
  std::vector<uint8_t> registers_;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_CARDINALITY_SKETCHES_H_
