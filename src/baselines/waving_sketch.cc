#include "baselines/waving_sketch.h"

#include <algorithm>

namespace davinci {

WavingSketch::WavingSketch(size_t memory_bytes, size_t cells_per_bucket,
                           uint64_t seed)
    : cells_per_bucket_(std::max<size_t>(1, cells_per_bucket)),
      bucket_hash_(seed * 32001103 + 1),
      sign_(seed * 32001103 + 2) {
  size_t bucket_bytes = cells_per_bucket_ * kCellBytes + kWaveBytes;
  size_t num_buckets = std::max<size_t>(1, memory_bytes / bucket_bytes);
  buckets_.resize(num_buckets);
  for (Bucket& bucket : buckets_) {
    bucket.cells.resize(cells_per_bucket_);
  }
}

size_t WavingSketch::MemoryBytes() const {
  return buckets_.size() * (cells_per_bucket_ * kCellBytes + kWaveBytes);
}

void WavingSketch::Insert(uint32_t key, int64_t count) {
  Bucket& bucket = buckets_[bucket_hash_.Bucket(key, buckets_.size())];
  Cell* smallest = &bucket.cells[0];
  for (Cell& cell : bucket.cells) {
    ++accesses_;
    if (cell.frequency > 0 && cell.key == key) {
      cell.frequency += count;
      if (!cell.frozen) {
        // Its mass also lives in the waving counter; keep them in sync.
        bucket.wave += sign_.Sign(key) * count;
      }
      return;
    }
    if (cell.frequency == 0) {
      cell.key = key;
      cell.frequency = count;
      cell.frozen = true;
      return;
    }
    if (cell.frequency < smallest->frequency) smallest = &cell;
  }
  // Miss on a full bucket: wave, then challenge the smallest resident
  // with the unbiased estimate.
  ++accesses_;
  bucket.wave += sign_.Sign(key) * count;
  int64_t estimate = sign_.Sign(key) * bucket.wave;
  if (estimate > smallest->frequency) {
    if (smallest->frozen) {
      // The evicted resident's exact mass folds into the counter.
      bucket.wave += sign_.Sign(smallest->key) * smallest->frequency;
    }
    smallest->key = key;
    smallest->frequency = estimate;
    smallest->frozen = false;
  }
}

int64_t WavingSketch::Query(uint32_t key) const {
  const Bucket& bucket =
      buckets_[bucket_hash_.Bucket(key, buckets_.size())];
  for (const Cell& cell : bucket.cells) {
    if (cell.frequency > 0 && cell.key == key) return cell.frequency;
  }
  return std::max<int64_t>(0, sign_.Sign(key) * bucket.wave);
}

std::vector<std::pair<uint32_t, int64_t>> WavingSketch::HeavyHitters(
    int64_t threshold) const {
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const Bucket& bucket : buckets_) {
    for (const Cell& cell : bucket.cells) {
      if (cell.frequency > threshold) {
        out.emplace_back(cell.key, cell.frequency);
      }
    }
  }
  return out;
}

}  // namespace davinci
