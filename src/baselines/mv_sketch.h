#ifndef DAVINCI_BASELINES_MV_SKETCH_H_
#define DAVINCI_BASELINES_MV_SKETCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/sketch_interface.h"
#include "common/hash.h"

// MV-Sketch (Tang, Huang, Lee — INFOCOM'19): an invertible majority-vote
// sketch for heavy flows and heavy changers. Each bucket tracks the total
// count V, a candidate key K and an indicator C updated with the
// Boyer-Moore majority vote, so the dominant flow of each bucket is
// recoverable without storing every key. Listed by the paper among the
// heavy-changer comparators.

namespace davinci {

class MvSketch : public FrequencySketch, public HeavyHitterSketch {
 public:
  MvSketch(size_t memory_bytes, size_t rows, uint64_t seed);

  std::string Name() const override { return "MV"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  // Point estimate: min over rows of (V + C)/2 if K == key else (V − C)/2.
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override;

  // Heavy changers between two identically-seeded windows: candidates are
  // the majority keys of both sketches; the change estimate is the
  // difference of the point queries.
  static std::vector<std::pair<uint32_t, int64_t>> HeavyChangers(
      const MvSketch& a, const MvSketch& b, int64_t delta);

 private:
  struct Bucket {
    int64_t total = 0;      // V: all counts hashed here
    uint32_t majority = 0;  // K: majority candidate
    int64_t indicator = 0;  // C: majority vote balance
  };

  static constexpr size_t kBucketBytes = 12;  // 4B V + 4B K + 4B C

  size_t width_;
  std::vector<HashFamily> hashes_;
  std::vector<Bucket> buckets_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_MV_SKETCH_H_
