#ifndef DAVINCI_BASELINES_JOIN_SKETCH_H_
#define DAVINCI_BASELINES_JOIN_SKETCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "baselines/count_sketch.h"
#include "baselines/sketch_interface.h"
#include "common/hash.h"

// JoinSketch (Wang et al., SIGMOD'23): separates frequent from infrequent
// keys for accurate, unbiased inner-product estimation. Frequent keys live
// exactly in a small hash table with vote-based eviction; everything else
// lands in a Count Sketch. The inner product of two JoinSketches is
//   exact(F_a ⊙ F_b) + cross(F_a ⊙ I_b) + cross(I_a ⊙ F_b) + CS(I_a ⊙ I_b).
// CSOA uses it for the inner-join task.

namespace davinci {

class JoinSketch : public FrequencySketch {
 public:
  JoinSketch(size_t memory_bytes, uint64_t seed);

  std::string Name() const override { return "JoinSketch"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override;
  uint64_t MemoryAccesses() const override { return accesses_; }

  static double InnerProduct(const JoinSketch& a, const JoinSketch& b);

  std::vector<std::pair<uint32_t, int64_t>> FrequentEntries() const;

 private:
  struct Slot {
    uint32_t key = 0;
    int64_t count = 0;
  };
  struct Bucket {
    std::vector<Slot> slots;
    int64_t evict_votes = 0;
  };

  static constexpr size_t kSlotsPerBucket = 4;
  static constexpr int64_t kEvictLambda = 8;
  static constexpr size_t kSlotBytes = 8;  // 4B key + 4B count

  int64_t QueryInfrequent(uint32_t key) const { return sketch_.Query(key); }

  std::vector<Bucket> buckets_;
  HashFamily bucket_hash_;
  CountSketch sketch_;
  mutable uint64_t accesses_ = 0;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_JOIN_SKETCH_H_
