#include "baselines/hll.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "estimators/linear_counting.h"

namespace davinci {

HyperLogLog::HyperLogLog(int precision, uint64_t seed)
    : precision_(std::clamp(precision, 4, 18)),
      hash_(seed * 18000211 + 3),
      registers_(size_t{1} << precision_, 0) {}

void HyperLogLog::Insert(uint32_t key) {
  uint64_t h = hash_.Hash(key);
  size_t index = h >> (64 - precision_);
  uint64_t suffix = h << precision_ | (uint64_t{1} << (precision_ - 1));
  uint8_t rank = static_cast<uint8_t>(std::countl_zero(suffix) + 1);
  registers_[index] = std::max(registers_[index], rank);
}

double HyperLogLog::EstimateCardinality() const {
  double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() <= 16) {
    alpha = 0.673;
  } else if (registers_.size() <= 32) {
    alpha = 0.697;
  } else if (registers_.size() <= 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros > 0) {
    // Small-range correction: fall back to linear counting.
    return LinearCountingEstimate(registers_.size(), zeros);
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace davinci
