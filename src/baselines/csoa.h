#ifndef DAVINCI_BASELINES_CSOA_H_
#define DAVINCI_BASELINES_CSOA_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "baselines/fcm_sketch.h"
#include "baselines/fermat_sketch.h"
#include "baselines/join_sketch.h"
#include "baselines/sketch_interface.h"

// The Composite Set Operations Algorithm (CSOA) from the paper's overall-
// performance evaluation: the minimal combination of single-task
// state-of-the-art sketches that covers all nine tasks —
//   FCM      → frequency, heavy hitters/changers, cardinality,
//              distribution, entropy
//   Fermat   → union and difference
//   JoinSketch → cardinality of the inner join
// Every packet is inserted into all three structures, which is exactly the
// overhead DaVinci Sketch is designed to remove.

namespace davinci {

class Csoa : public FrequencySketch, public HeavyHitterSketch {
 public:
  struct MemoryPlan {
    size_t fcm_bytes = 0;
    size_t fermat_bytes = 0;
    size_t join_bytes = 0;
  };

  Csoa(const MemoryPlan& plan, uint64_t seed);

  std::string Name() const override { return "CSOA"; }
  size_t MemoryBytes() const override;
  void Insert(uint32_t key, int64_t count) override;
  int64_t Query(uint32_t key) const override { return fcm_.Query(key); }
  uint64_t MemoryAccesses() const override;

  std::vector<std::pair<uint32_t, int64_t>> HeavyHitters(
      int64_t threshold) const override {
    return fcm_.HeavyHitters(threshold);
  }

  double EstimateCardinality() const;
  std::map<int64_t, int64_t> Distribution() const;
  double EstimateEntropy() const;

  // Task-specific members for the two-set operations.
  const FcmSketch& fcm() const { return fcm_; }
  const FermatSketch& fermat() const { return fermat_; }
  FermatSketch& fermat() { return fermat_; }
  const JoinSketch& join_sketch() const { return join_; }

  static double InnerProduct(const Csoa& a, const Csoa& b) {
    return JoinSketch::InnerProduct(a.join_, b.join_);
  }

 private:
  FcmSketch fcm_;
  FermatSketch fermat_;
  JoinSketch join_;
};

}  // namespace davinci

#endif  // DAVINCI_BASELINES_CSOA_H_
