#include "baselines/mrac.h"

#include <algorithm>

#include "estimators/em_distribution.h"
#include "estimators/entropy.h"
#include "estimators/linear_counting.h"

namespace davinci {

Mrac::Mrac(size_t memory_bytes, uint64_t seed)
    : hash_(seed * 6000101 + 1),
      counters_(std::max<size_t>(1, memory_bytes / 4), 0) {}

void Mrac::Insert(uint32_t key, int64_t count) {
  ++accesses_;
  counters_[hash_.Bucket(key, counters_.size())] += count;
}

int64_t Mrac::Query(uint32_t key) const {
  return counters_[hash_.Bucket(key, counters_.size())];
}

std::map<int64_t, int64_t> Mrac::Distribution() const {
  return EmDistribution::Estimate(counters_);
}

double Mrac::EstimateEntropy() const {
  return EntropyFromDistribution(Distribution());
}

double Mrac::EstimateCardinality() const {
  size_t zeros = 0;
  for (int64_t c : counters_) {
    if (c == 0) ++zeros;
  }
  return LinearCountingEstimate(counters_.size(), zeros);
}

}  // namespace davinci
