# Configure-time proof that the thread-safety annotations still bite.
#
# Annotations are only as good as the diagnostics they produce: if
# DAVINCI_GUARDED_BY silently expanded to nothing under clang (a macro
# guard typo, an attribute spelling the compiler stopped honoring), every
# TSA CI leg would stay green while checking nothing. So the TSA build
# compiles three probes with the same -Wthread-safety -Werror flags as the
# real code and FATAL_ERRORs unless each lands on the expected side:
#
#   tests/negative/tsa_clean.cc            -> must COMPILE (toolchain sane)
#   tests/negative/tsa_unlocked_access.cc  -> must FAIL (guarded field,
#                                             no lock)
#   tests/negative/tsa_missing_requires.cc -> must FAIL (REQUIRES callee,
#                                             lock-free caller)
#
# Included only from the DAVINCI_TSA branch of the top-level CMakeLists —
# the probes are meaningless without clang's analysis.

function(davinci_tsa_probe source expect_compile)
  # Per-probe result variable, unset first: try_compile caches its result
  # and would silently skip every probe after the first (and every
  # reconfigure) under a shared or stale name.
  string(MAKE_C_IDENTIFIER "davinci_tsa_probe_ok_${source}" probe_var)
  unset(${probe_var} CACHE)
  try_compile(
    ${probe_var}
    ${CMAKE_BINARY_DIR}/tsa-negative-compile
    ${PROJECT_SOURCE_DIR}/tests/negative/${source}
    COMPILE_DEFINITIONS "-Wthread-safety -Werror"
    CMAKE_FLAGS
      "-DINCLUDE_DIRECTORIES=${PROJECT_SOURCE_DIR}/src"
      "-DCMAKE_CXX_STANDARD=20"
      "-DCMAKE_CXX_STANDARD_REQUIRED=ON"
    OUTPUT_VARIABLE davinci_tsa_probe_output
  )
  set(davinci_tsa_probe_ok ${${probe_var}})
  if(expect_compile AND NOT davinci_tsa_probe_ok)
    message(FATAL_ERROR
      "Thread-safety negative-compile harness: ${source} should compile "
      "under -Wthread-safety -Werror but failed. The annotated wrappers "
      "are broken.\n${davinci_tsa_probe_output}")
  endif()
  if(NOT expect_compile AND davinci_tsa_probe_ok)
    message(FATAL_ERROR
      "Thread-safety negative-compile harness: ${source} compiled under "
      "-Wthread-safety -Werror but must NOT. The annotations have rotted "
      "(the analysis no longer rejects a known locking violation).")
  endif()
  if(expect_compile)
    message(STATUS "TSA probe ${source}: compiled (expected)")
  else()
    message(STATUS "TSA probe ${source}: rejected (expected)")
  endif()
endfunction()

davinci_tsa_probe(tsa_clean.cc TRUE)
davinci_tsa_probe(tsa_unlocked_access.cc FALSE)
davinci_tsa_probe(tsa_missing_requires.cc FALSE)
