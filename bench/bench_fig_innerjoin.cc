// Figures 4i / 5i / 6i: cardinality of the inner join, relative error vs
// memory. Two overlapping windows of each trace are joined. Comparators:
// JoinSketch, SkimmedSketch, F-AGMS vs DaVinci (nine-component estimate).
// Each point averages several seeds since a single join yields one scalar.

#include <cstdio>

#include "baselines/agms.h"
#include "baselines/join_sketch.h"
#include "baselines/skimmed_sketch.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"

namespace {

constexpr int kTrials = 3;

}  // namespace

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig_innerjoin");
  std::printf("# Fig 4i/5i/6i: cardinality of the inner join, RE "
              "(scale=%.2f, %d trials)\n",
              scale, kTrials);
  std::printf("dataset,memory_kb,algorithm,re\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    size_t n = dataset.trace.keys.size();
    davinci::Trace wa = davinci::Slice(dataset.trace, 0, 2 * n / 3, "a");
    davinci::Trace wb = davinci::Slice(dataset.trace, n / 3, n, "b");
    double truth = davinci::GroundTruth::InnerJoin(
        davinci::GroundTruth(wa.keys), davinci::GroundTruth(wb.keys));

    for (size_t kb : davinci::bench::MemorySweepKb()) {
      size_t bytes = kb * 1024;
      double ours = 0, join = 0, skim = 0, fagms = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        uint64_t seed = 37 + trial * 101;
        {
          davinci::DaVinciSketch a(bytes, seed), b(bytes, seed);
          for (uint32_t key : wa.keys) a.Insert(key, 1);
          for (uint32_t key : wb.keys) b.Insert(key, 1);
          ours += davinci::RelativeError(
              truth, davinci::DaVinciSketch::InnerProduct(a, b));
        }
        {
          davinci::JoinSketch a(bytes, seed), b(bytes, seed);
          for (uint32_t key : wa.keys) a.Insert(key, 1);
          for (uint32_t key : wb.keys) b.Insert(key, 1);
          join += davinci::RelativeError(
              truth, davinci::JoinSketch::InnerProduct(a, b));
        }
        {
          davinci::SkimmedSketch a(bytes, seed), b(bytes, seed);
          for (uint32_t key : wa.keys) a.Insert(key, 1);
          for (uint32_t key : wb.keys) b.Insert(key, 1);
          skim += davinci::RelativeError(
              truth, davinci::SkimmedSketch::InnerProduct(a, b));
        }
        {
          davinci::FAgms a(bytes, 5, seed), b(bytes, 5, seed);
          for (uint32_t key : wa.keys) a.Insert(key, 1);
          for (uint32_t key : wb.keys) b.Insert(key, 1);
          fagms += davinci::RelativeError(truth,
                                          davinci::FAgms::InnerProduct(a, b));
        }
      }
      const char* dataset_name = dataset.trace.name.c_str();
      std::printf("%s,%zu,Ours,%.6f\n", dataset_name, kb, ours / kTrials);
      std::printf("%s,%zu,JoinSketch,%.6f\n", dataset_name, kb,
                  join / kTrials);
      std::printf("%s,%zu,Skimmed,%.6f\n", dataset_name, kb, skim / kTrials);
      std::printf("%s,%zu,F-AGMS,%.6f\n", dataset_name, kb, fagms / kTrials);
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
