// Figures 4e / 5e / 6e: flow-size distribution WMRE vs memory.
// Comparators: Elastic, FCM, MRAC vs DaVinci. The paper sweeps 200–600 KB
// and highlights 600 KB.

#include <cstdio>

#include "baselines/elastic_sketch.h"
#include "baselines/fcm_sketch.h"
#include "baselines/mrac.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig_distribution");
  std::printf("# Fig 4e/5e/6e: flow-size distribution WMRE (scale=%.2f)\n",
              scale);
  std::printf("dataset,memory_kb,algorithm,wmre\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    auto truth = dataset.truth.Distribution();
    for (size_t kb : davinci::bench::MemorySweepKb()) {
      size_t bytes = kb * 1024;
      auto report = [&](const char* name,
                        const std::map<int64_t, int64_t>& estimate) {
        std::printf("%s,%zu,%s,%.6f\n", dataset.trace.name.c_str(), kb, name,
                    davinci::WeightedMeanRelativeError(truth, estimate));
      };
      {
        davinci::DaVinciSketch s(bytes, 19);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("Ours", s.Distribution());
      }
      {
        davinci::ElasticSketch s(bytes, 19);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("Elastic", s.Distribution());
      }
      {
        davinci::FcmSketch s(bytes, 19);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("FCM", s.Distribution());
      }
      {
        davinci::Mrac s(bytes, 19);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("MRAC", s.Distribution());
      }
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
