// Table III: DaVinci Sketch accuracy on all nine tasks across nine memory
// cases (case k = k × 100 KB). Columns mirror the paper's table:
// frequency ARE, heavy-hitter F1, heavy-changer F1, cardinality RE,
// distribution WMRE, entropy RE, union ARE, difference ARE, inner-join RE.

#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "core/davinci_sketch.h"

namespace {

using davinci::DaVinciSketch;
using davinci::GroundTruth;
using davinci::Trace;

DaVinciSketch Build(const std::vector<uint32_t>& keys, size_t bytes,
                    uint64_t seed) {
  DaVinciSketch sketch(bytes, seed);
  for (uint32_t key : keys) sketch.Insert(key, 1);
  return sketch;
}

}  // namespace

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("table3_cases");
  Trace trace = davinci::BuildCaidaLike(scale);
  GroundTruth truth(trace.keys);
  size_t n = trace.keys.size();

  // Pre-slice the operand sets shared by all cases.
  Trace w1 = davinci::Slice(trace, 0, n / 2, "w1");
  Trace w2 = davinci::Slice(trace, n / 2, n, "w2");
  GroundTruth t1(w1.keys), t2(w2.keys);
  Trace da = davinci::Slice(trace, 0, 2 * n / 3, "da");
  Trace db = davinci::Slice(trace, n / 3, n, "db");
  GroundTruth ta(da.keys), tb(db.keys);
  GroundTruth diff_truth = GroundTruth::Difference(ta, tb);
  double join_truth = GroundTruth::InnerJoin(ta, tb);

  int64_t hh_threshold =
      static_cast<int64_t>(static_cast<double>(n) * 0.0002);
  int64_t hc_delta = static_cast<int64_t>(static_cast<double>(n) * 0.0001);
  auto hh_actual = truth.HeavyHitters(hh_threshold);
  GroundTruth window_diff = GroundTruth::Difference(t1, t2);
  std::vector<std::pair<uint32_t, int64_t>> hc_actual;
  for (const auto& [key, change] : window_diff.frequencies()) {
    if (std::llabs(change) > hc_delta) hc_actual.emplace_back(key, change);
  }

  std::printf("# Table III: DaVinci accuracy per memory case (scale=%.2f)\n",
              scale);
  std::printf(
      "case,memory_kb,freq_are,hh_f1,hc_f1,card_re,dist_wmre,entropy_re,"
      "union_are,diff_are,join_re\n");

  for (int c = 1; c <= 9; ++c) {
    size_t bytes = static_cast<size_t>(c) * 100 * 1024;
    DaVinciSketch full = Build(trace.keys, bytes, 41);

    auto observations = davinci::bench::Observe(
        truth, [&](uint32_t key) { return full.Query(key); });
    double freq_are = davinci::AverageRelativeError(observations);

    double hh_f1 = davinci::bench::HeavySetF1(
        full.HeavyHitters(hh_threshold), hh_actual);

    DaVinciSketch s1 = Build(w1.keys, bytes, 41);
    DaVinciSketch s2 = Build(w2.keys, bytes, 41);
    double hc_f1 =
        davinci::bench::HeavySetF1(s1.HeavyChangers(s2, hc_delta), hc_actual);

    double card_re = davinci::RelativeError(
        static_cast<double>(truth.cardinality()), full.EstimateCardinality());
    double dist_wmre = davinci::WeightedMeanRelativeError(
        truth.Distribution(), full.Distribution());
    double entropy_re =
        davinci::RelativeError(truth.Entropy(), full.EstimateEntropy());

    // Union of the two windows, evaluated by frequency ARE.
    DaVinciSketch u1 = Build(w1.keys, bytes, 41);
    DaVinciSketch u2 = Build(w2.keys, bytes, 41);
    u1.Merge(u2);
    auto union_observations = davinci::bench::Observe(
        truth, [&](uint32_t key) { return u1.Query(key); });
    double union_are = davinci::AverageRelativeError(union_observations);

    // Overlap difference.
    DaVinciSketch sa = Build(da.keys, bytes, 41);
    DaVinciSketch sb = Build(db.keys, bytes, 41);
    sa.Subtract(sb);
    std::vector<davinci::Estimate> diff_observations;
    for (const auto& [key, f] : diff_truth.frequencies()) {
      diff_observations.push_back({f, sa.Query(key)});
    }
    double diff_are = davinci::AverageRelativeError(diff_observations);

    DaVinciSketch ja = Build(da.keys, bytes, 41);
    DaVinciSketch jb = Build(db.keys, bytes, 41);
    double join_re = davinci::RelativeError(
        join_truth, DaVinciSketch::InnerProduct(ja, jb));

    std::printf("%d,%zu,%.4f,%.4f,%.4f,%.5f,%.4f,%.5f,%.4f,%.4f,%.5f\n", c,
                bytes / 1024, freq_are, hh_f1, hc_f1, card_re, dist_wmre,
                entropy_re, union_are, diff_are, join_re);
  }
  davinci::bench::DaVinciObsEpilogue(json, trace.keys, 600 * 1024, 7);
  return 0;
}
