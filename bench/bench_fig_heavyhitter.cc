// Figures 4b / 5b / 6b: heavy-hitter detection F1 vs memory.
// Comparators: HashPipe, Elastic, Coco, FCM, UnivMon, CountHeap vs DaVinci.
// Threshold θ ≈ 0.02% of the packet count, as in the paper.

#include <cstdio>
#include <memory>

#include "baselines/coco_sketch.h"
#include "baselines/count_heap.h"
#include "baselines/elastic_sketch.h"
#include "baselines/fcm_sketch.h"
#include "baselines/hashpipe.h"
#include "baselines/sketch_interface.h"
#include "baselines/heavy_guardian.h"
#include "baselines/heavy_keeper.h"
#include "baselines/mv_sketch.h"
#include "baselines/space_saving.h"
#include "baselines/univmon.h"
#include "baselines/waving_sketch.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"

namespace {

struct Candidate {
  std::unique_ptr<davinci::FrequencySketch> sketch;
  davinci::HeavyHitterSketch* heavy = nullptr;
};

Candidate Make(const std::string& name, size_t bytes, uint64_t seed) {
  Candidate c;
  if (name == "HashPipe") {
    auto s = std::make_unique<davinci::HashPipe>(bytes, 6, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "Elastic") {
    auto s = std::make_unique<davinci::ElasticSketch>(bytes, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "Coco") {
    auto s = std::make_unique<davinci::CocoSketch>(bytes, 2, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "FCM") {
    auto s = std::make_unique<davinci::FcmSketch>(bytes, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "UnivMon") {
    auto s = std::make_unique<davinci::UnivMon>(bytes, 8, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "CountHeap") {
    auto s = std::make_unique<davinci::CountHeap>(bytes, 3, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "SpaceSaving") {
    auto s = std::make_unique<davinci::SpaceSaving>(bytes, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "HeavyKeeper") {
    auto s = std::make_unique<davinci::HeavyKeeper>(bytes, 2, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "Waving") {
    auto s = std::make_unique<davinci::WavingSketch>(bytes, 8, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "HeavyGuardian") {
    auto s = std::make_unique<davinci::HeavyGuardian>(bytes, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else if (name == "MV") {
    auto s = std::make_unique<davinci::MvSketch>(bytes, 4, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  } else {
    auto s = std::make_unique<davinci::DaVinciSketch>(bytes, seed);
    c.heavy = s.get();
    c.sketch = std::move(s);
  }
  return c;
}

}  // namespace

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig_heavyhitter");
  std::printf("# Fig 4b/5b/6b: heavy-hitter detection F1 (scale=%.2f)\n",
              scale);
  std::printf("dataset,memory_kb,algorithm,f1\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    int64_t threshold = static_cast<int64_t>(
        static_cast<double>(dataset.trace.keys.size()) * 0.0002);
    auto actual = dataset.truth.HeavyHitters(threshold);
    for (size_t kb : davinci::bench::MemorySweepKb()) {
      for (const std::string name :  // NOLINT: elements are char literals
           {"Ours", "HashPipe", "Elastic", "Coco", "FCM", "UnivMon",
            "CountHeap", "SpaceSaving", "HeavyKeeper", "Waving",
            "HeavyGuardian", "MV"}) {
        Candidate c = Make(name, kb * 1024, 11);
        for (uint32_t key : dataset.trace.keys) c.sketch->Insert(key, 1);
        double f1 = davinci::bench::HeavySetF1(c.heavy->HeavyHitters(threshold),
                                               actual);
        std::printf("%s,%zu,%s,%.4f\n", dataset.trace.name.c_str(), kb,
                    name.c_str(), f1);
      }
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
