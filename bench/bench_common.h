#ifndef DAVINCI_BENCH_BENCH_COMMON_H_
#define DAVINCI_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/davinci_sketch.h"
#include "metrics/metrics.h"
#include "obs/health.h"
#include "obs/stats.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

// Shared plumbing for the figure/table reproduction harnesses. Every bench
// prints a self-describing CSV so results can be compared side-by-side with
// the paper's plots (EXPERIMENTS.md maps each output to its figure).
//
// DAVINCI_SCALE (env var, default 0.25) scales the Table II trace sizes;
// set DAVINCI_SCALE=1.0 to run the paper's full trace sizes.
//
// Besides the CSV, every bench binary writes BENCH_<name>.json (insert
// throughput, sampled latency percentiles, and a HealthSnapshot of the
// final sketch) via BenchJson, so the performance/health trajectory is
// machine-readable from every run. DAVINCI_BENCH_JSON_DIR overrides the
// output directory (default: ./results when it exists, else the cwd).

namespace davinci::bench {

inline double ScaleFromEnv() {
  const char* env = std::getenv("DAVINCI_SCALE");
  if (env == nullptr) return 0.25;
  double scale = std::atof(env);
  return (scale > 0.0 && scale <= 1.0) ? scale : 0.25;
}

struct Dataset {
  Trace trace;
  GroundTruth truth;
};

inline std::vector<Dataset> AllDatasets(double scale) {
  std::vector<Dataset> datasets;
  for (Trace trace : {BuildCaidaLike(scale), BuildMawiLike(scale),
                      BuildTpcdsLike(scale)}) {
    GroundTruth truth(trace.keys);
    datasets.push_back({std::move(trace), std::move(truth)});
  }
  return datasets;
}

// The paper's memory axis: 200 KB – 600 KB.
inline std::vector<size_t> MemorySweepKb() { return {200, 300, 400, 500, 600}; }

// Frequency observations for ARE/AAE against a point-query functor.
template <typename QueryFn>
std::vector<Estimate> Observe(const GroundTruth& truth, QueryFn&& query) {
  std::vector<Estimate> observations;
  observations.reserve(truth.frequencies().size());
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, query(key)});
  }
  return observations;
}

// Collects named numeric fields plus an optional HealthSnapshot and writes
// them as BENCH_<name>.json on Write() (or destruction). Fields keep
// insertion order.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  ~BenchJson() { Write(); }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void Metric(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  void Count(const std::string& key, uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  // Quoted string field (e.g. the SIMD backend in use). `value` must not
  // need JSON escaping.
  void Str(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, "\"" + value + "\"");
  }
  // p50/p99/max/sample-count of a latency histogram under `prefix`.
  void Histogram(const std::string& prefix,
                 const obs::LatencyHistogram& histogram) {
    Count(prefix + "_p50_ns", histogram.PercentileNanos(0.50));
    Count(prefix + "_p99_ns", histogram.PercentileNanos(0.99));
    Count(prefix + "_max_ns", histogram.MaxNanos());
    Count(prefix + "_samples", histogram.Count());
  }
  void Snapshot(const obs::HealthSnapshot& snapshot) {
    snapshot_ = snapshot;
    have_snapshot_ = true;
  }

  std::string Path() const {
    namespace fs = std::filesystem;
    const char* env = std::getenv("DAVINCI_BENCH_JSON_DIR");
    fs::path dir = env != nullptr && *env != '\0'
                       ? fs::path(env)
                       : (fs::is_directory("results") ? fs::path("results")
                                                      : fs::path("."));
    return (dir / ("BENCH_" + name_ + ".json")).string();
  }

  void Write() {
    if (written_) return;
    written_ = true;
    std::string path = Path();
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return;
    }
    out << "{\n  \"bench\": \"" << name_ << "\"";
    for (const auto& [key, value] : fields_) {
      out << ",\n  \"" << key << "\": " << value;
    }
    if (have_snapshot_) {
      out << ",\n  \"health\": ";
      snapshot_.WriteJson(out);
    }
    out << "\n}\n";
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
  obs::HealthSnapshot snapshot_;
  bool have_snapshot_ = false;
  bool written_ = false;
};

// Streams `keys` into `sketch` (anything with Insert(key, count)), timing
// the whole loop; every `sample_every`-th op is additionally timed alone
// into `histogram` when non-null. Returns Mops.
template <typename Sketch>
double TimedInsert(Sketch& sketch, const std::vector<uint32_t>& keys,
                   obs::LatencyHistogram* histogram = nullptr,
                   size_t sample_every = 256) {
  Timer timer;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (histogram != nullptr && i % sample_every == 0) {
      obs::ScopedLatencyTimer op_timer(histogram);
      sketch.Insert(keys[i], 1);
    } else {
      sketch.Insert(keys[i], 1);
    }
  }
  return ThroughputMpps(keys.size(), timer.ElapsedSeconds());
}

// Standard observability epilogue shared by the figure/table benches:
// streams `keys` into a fresh DaVinci sketch of `bytes`, records insert
// throughput, sampled per-op latency percentiles and the final
// HealthSnapshot into `json`.
inline void DaVinciObsEpilogue(BenchJson& json,
                               const std::vector<uint32_t>& keys,
                               size_t bytes, uint64_t seed) {
  DaVinciSketch sketch(bytes, seed);
  obs::LatencyHistogram histogram;
  double mops = TimedInsert(sketch, keys, &histogram);
  json.Count("obs_trace_len", keys.size());
  json.Count("obs_sketch_bytes", bytes);
  json.Metric("insert_mops", mops);
  json.Histogram("insert", histogram);
  obs::HealthSnapshot snapshot;
  sketch.CollectStats(&snapshot);
  json.Snapshot(snapshot);
}

// F1 of a reported heavy set vs the exact heavy set.
inline double HeavySetF1(
    const std::vector<std::pair<uint32_t, int64_t>>& reported,
    const std::vector<std::pair<uint32_t, int64_t>>& actual) {
  std::unordered_map<uint32_t, int64_t> actual_map(actual.begin(),
                                                   actual.end());
  size_t correct = 0;
  for (const auto& [key, est] : reported) {
    if (actual_map.count(key)) ++correct;
  }
  return F1Score(correct, reported.size(), actual.size());
}

}  // namespace davinci::bench

#endif  // DAVINCI_BENCH_BENCH_COMMON_H_
