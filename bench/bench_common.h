#ifndef DAVINCI_BENCH_BENCH_COMMON_H_
#define DAVINCI_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

// Shared plumbing for the figure/table reproduction harnesses. Every bench
// prints a self-describing CSV so results can be compared side-by-side with
// the paper's plots (EXPERIMENTS.md maps each output to its figure).
//
// DAVINCI_SCALE (env var, default 0.25) scales the Table II trace sizes;
// set DAVINCI_SCALE=1.0 to run the paper's full trace sizes.

namespace davinci::bench {

inline double ScaleFromEnv() {
  const char* env = std::getenv("DAVINCI_SCALE");
  if (env == nullptr) return 0.25;
  double scale = std::atof(env);
  return (scale > 0.0 && scale <= 1.0) ? scale : 0.25;
}

struct Dataset {
  Trace trace;
  GroundTruth truth;
};

inline std::vector<Dataset> AllDatasets(double scale) {
  std::vector<Dataset> datasets;
  for (Trace trace : {BuildCaidaLike(scale), BuildMawiLike(scale),
                      BuildTpcdsLike(scale)}) {
    GroundTruth truth(trace.keys);
    datasets.push_back({std::move(trace), std::move(truth)});
  }
  return datasets;
}

// The paper's memory axis: 200 KB – 600 KB.
inline std::vector<size_t> MemorySweepKb() { return {200, 300, 400, 500, 600}; }

// Frequency observations for ARE/AAE against a point-query functor.
template <typename QueryFn>
std::vector<Estimate> Observe(const GroundTruth& truth, QueryFn&& query) {
  std::vector<Estimate> observations;
  observations.reserve(truth.frequencies().size());
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, query(key)});
  }
  return observations;
}

// F1 of a reported heavy set vs the exact heavy set.
inline double HeavySetF1(
    const std::vector<std::pair<uint32_t, int64_t>>& reported,
    const std::vector<std::pair<uint32_t, int64_t>>& actual) {
  std::unordered_map<uint32_t, int64_t> actual_map(actual.begin(),
                                                   actual.end());
  size_t correct = 0;
  for (const auto& [key, est] : reported) {
    if (actual_map.count(key)) ++correct;
  }
  return F1Score(correct, reported.size(), actual.size());
}

}  // namespace davinci::bench

#endif  // DAVINCI_BENCH_BENCH_COMMON_H_
