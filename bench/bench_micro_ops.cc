// Google-benchmark micro-benchmarks: per-sketch insertion and query
// throughput on a Zipf stream (backs the paper's throughput claims with
// op-level numbers).
//
// Besides the console table, writes BENCH_micro_ops.json (per-sketch Mops
// plus the final DaVinci HealthSnapshot), BENCH_query_kernels.json
// (scalar-vs-SIMD probe throughput, single-vs-batch query throughput and
// 1-vs-4-thread decode latency) and BENCH_epoch_engine.json (snapshot
// acquisition, CoW clone tallies, epoch rotation rate and RCU read
// throughput) for the CI bench-regression gates.

#include <algorithm>
#include <atomic>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "baselines/cm_sketch.h"
#include "baselines/csoa.h"
#include "baselines/cu_sketch.h"
#include "baselines/elastic_sketch.h"
#include "baselines/cold_filter.h"
#include "baselines/fcm_sketch.h"
#include "baselines/heavy_guardian.h"
#include "baselines/space_saving.h"
#include "bench_common.h"
#include "common/simd.h"
#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "core/epoch_manager.h"
#include "core/infrequent_part.h"
#include "workload/trace.h"

namespace {

constexpr size_t kBytes = 200 * 1024;

const std::vector<uint32_t>& Keys() {
  static const std::vector<uint32_t>* keys = [] {
    auto trace = new davinci::Trace(
        davinci::BuildSkewedTrace("bench", 200000, 20000, 1.05, 97));
    return &trace->keys;
  }();
  return *keys;
}

template <typename Sketch>
Sketch MakeSketch();

template <>
davinci::DaVinciSketch MakeSketch() {
  return davinci::DaVinciSketch(kBytes, 1);
}
template <>
davinci::CmSketch MakeSketch() {
  return davinci::CmSketch(kBytes, 3, 1);
}
template <>
davinci::CuSketch MakeSketch() {
  return davinci::CuSketch(kBytes, 3, 1);
}
template <>
davinci::ElasticSketch MakeSketch() {
  return davinci::ElasticSketch(kBytes, 1);
}
template <>
davinci::FcmSketch MakeSketch() {
  return davinci::FcmSketch(kBytes, 1);
}
template <>
davinci::Csoa MakeSketch() {
  return davinci::Csoa({kBytes, kBytes, kBytes}, 1);
}
template <>
davinci::ColdFilterCm MakeSketch() {
  return davinci::ColdFilterCm(kBytes, 15, 1);
}
template <>
davinci::SpaceSaving MakeSketch() {
  return davinci::SpaceSaving(kBytes, 1);
}
template <>
davinci::HeavyGuardian MakeSketch() {
  return davinci::HeavyGuardian(kBytes, 1);
}

template <typename Sketch>
void BM_Insert(benchmark::State& state) {
  const auto& keys = Keys();
  for (auto _ : state) {
    Sketch sketch = MakeSketch<Sketch>();
    for (uint32_t key : keys) sketch.Insert(key, 1);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(keys.size()));
}

template <typename Sketch>
void BM_Query(benchmark::State& state) {
  const auto& keys = Keys();
  Sketch sketch = MakeSketch<Sketch>();
  for (uint32_t key : keys) sketch.Insert(key, 1);
  size_t i = 0;
  int64_t sink = 0;
  for (auto _ : state) {
    sink += sketch.Query(keys[i % keys.size()]);
    ++i;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// ---- query-path kernels (SIMD probe / batch query / parallel decode) ----

// A field of FP-shaped buckets (7 logical slots padded to the SIMD stride)
// with a probe stream that alternates hits and misses — the kernels' real
// workload, minus the surrounding sketch.
struct ProbeFixture {
  size_t stride = 0;
  std::vector<uint32_t> keys;
  std::vector<int64_t> counts;
  std::vector<uint32_t> needles;  // needle i probes bucket i % kBuckets

  static constexpr size_t kBuckets = 4096;
  static constexpr size_t kSlots = 7;
};

const ProbeFixture& Probes() {
  static const ProbeFixture* fixture = [] {
    auto* f = new ProbeFixture;
    f->stride = davinci::simd::PaddedSlots(ProbeFixture::kSlots);
    f->keys.assign(ProbeFixture::kBuckets * f->stride, 0);
    f->counts.assign(ProbeFixture::kBuckets * f->stride, 0);
    std::mt19937_64 rng(42);
    for (size_t b = 0; b < ProbeFixture::kBuckets; ++b) {
      for (size_t s = 0; s < ProbeFixture::kSlots; ++s) {
        f->keys[b * f->stride + s] =
            static_cast<uint32_t>(b * ProbeFixture::kSlots + s + 1);
        f->counts[b * f->stride + s] = 1 + static_cast<int64_t>(rng() % 100);
      }
    }
    f->needles.resize(1 << 16);
    for (size_t i = 0; i < f->needles.size(); ++i) {
      size_t b = i % ProbeFixture::kBuckets;
      // Even probes hit a random resident slot, odd probes miss.
      f->needles[i] =
          (i & 1) == 0
              ? f->keys[b * f->stride + rng() % ProbeFixture::kSlots]
              : static_cast<uint32_t>(1000000000u + i);
    }
    return f;
  }();
  return *fixture;
}

// One full pass over the probe stream; returns a sink so the loop is not
// optimized away. `UseSimd` selects the dispatched kernel vs the scalar
// reference.
template <bool UseSimd>
size_t ProbePass(const ProbeFixture& f) {
  size_t sink = 0;
  for (size_t i = 0; i < f.needles.size(); ++i) {
    size_t base = (i % ProbeFixture::kBuckets) * f.stride;
    size_t hit = UseSimd
                     ? davinci::simd::FindLiveKey(&f.keys[base],
                                                  &f.counts[base], f.stride,
                                                  f.needles[i])
                     : davinci::simd::FindLiveKeyScalar(
                           &f.keys[base], &f.counts[base], f.stride,
                           f.needles[i]);
    sink += hit != SIZE_MAX ? hit : 0;
  }
  return sink;
}

void BM_ProbeScalar(benchmark::State& state) {
  const ProbeFixture& f = Probes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProbePass<false>(f));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.needles.size()));
}

void BM_ProbeSimd(benchmark::State& state) {
  const ProbeFixture& f = Probes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProbePass<true>(f));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.needles.size()));
}

void BM_QueryBatch(benchmark::State& state) {
  const auto& keys = Keys();
  davinci::DaVinciSketch sketch = MakeSketch<davinci::DaVinciSketch>();
  sketch.InsertBatch(keys);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.QueryBatch(keys));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(keys.size()));
}

// A decodable infrequent part big enough that the purity scans dominate.
const davinci::InfrequentPart& DecodeFixture() {
  static const davinci::InfrequentPart* ifp = [] {
    auto* part = new davinci::InfrequentPart(3, 1 << 16, /*use_signs=*/true,
                                             /*seed=*/7);
    std::mt19937_64 rng(7);
    for (int i = 0; i < 25000; ++i) {
      part->Insert(static_cast<uint32_t>(1 + rng() % 40000),
                   1 + static_cast<int64_t>(rng() % 30));
    }
    return part;
  }();
  return *ifp;
}

void BM_Decode(benchmark::State& state) {
  const davinci::InfrequentPart& ifp = DecodeFixture();
  size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ifp.Decode(nullptr, threads));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Best-of-N wall time for `rounds` invocations of `pass` (minimum over
// repeats, the standard noise-rejection estimator for short kernels: any
// scheduling hiccup only ever inflates a measurement).
template <typename Fn>
double BestOfSeconds(int repeats, Fn&& pass) {
  double best = -1.0;
  for (int r = 0; r < repeats; ++r) {
    davinci::Timer timer;
    pass();
    double seconds = timer.ElapsedSeconds();
    if (best < 0 || seconds < best) best = seconds;
  }
  return best;
}

// Direct timings for BENCH_query_kernels.json (independent of the
// benchmark framework's iteration policy, so the JSON is cheap to
// regenerate and deterministic in shape).
void WriteQueryKernelsJson() {
  davinci::bench::BenchJson json("query_kernels");
  json.Str("simd_backend", davinci::simd::kBackend);
  json.Count("hardware_threads", std::thread::hardware_concurrency());

  const ProbeFixture& f = Probes();
  constexpr int kProbeRounds = 200;
  auto time_probe = [&](auto pass) {
    size_t sink = 0;
    davinci::Timer timer;
    for (int r = 0; r < kProbeRounds; ++r) sink += pass(f);
    double seconds = timer.ElapsedSeconds();
    benchmark::DoNotOptimize(sink);
    return davinci::ThroughputMpps(
        static_cast<size_t>(kProbeRounds) * f.needles.size(), seconds);
  };
  double probe_scalar = time_probe(ProbePass<false>);
  double probe_simd = time_probe(ProbePass<true>);
  json.Metric("probe_scalar_mops", probe_scalar);
  json.Metric("probe_simd_mops", probe_simd);
  json.Metric("probe_speedup",
              probe_scalar > 0 ? probe_simd / probe_scalar : 0.0);

  // Single-query reference path, best-of-N over full trace passes.
  const auto& keys = Keys();
  constexpr int kQueryRepeats = 5;
  int64_t sink = 0;
  double single_seconds;
  {
    davinci::DaVinciSketch sketch = MakeSketch<davinci::DaVinciSketch>();
    sketch.InsertBatch(keys);
    single_seconds = BestOfSeconds(kQueryRepeats, [&] {
      for (uint32_t key : keys) sink += sketch.Query(key);
    });
  }
  double query_single = davinci::ThroughputMpps(keys.size(), single_seconds);

  // Adaptive-batch parameter sweep: time QueryBatch at each (block,
  // prefetch distance) candidate and adopt the fastest. The chosen point
  // lands in the JSON so a regression run shows not just the speedup but
  // the tuning that produced it.
  constexpr size_t kBlockGrid[] = {256, 1024, 2048};
  constexpr size_t kDistGrid[] = {0, 8, 16, 32};
  double best_seconds = -1.0;
  size_t best_block = 0;
  size_t best_dist = 0;
  for (size_t block : kBlockGrid) {
    for (size_t dist : kDistGrid) {
      davinci::DaVinciConfig config =
          davinci::DaVinciConfig::FromMemory(kBytes, 1);
      config.batch_query_block = block;
      config.batch_prefetch_distance = dist;
      davinci::DaVinciSketch sketch(config);
      sketch.InsertBatch(keys);
      double seconds = BestOfSeconds(kQueryRepeats, [&] {
        std::vector<int64_t> answers = sketch.QueryBatch(keys);
        sink += answers.empty() ? 0 : answers.back();
      });
      if (best_seconds < 0 || seconds < best_seconds) {
        best_seconds = seconds;
        best_block = block;
        best_dist = dist;
      }
    }
  }
  benchmark::DoNotOptimize(sink);
  double query_batch = davinci::ThroughputMpps(keys.size(), best_seconds);
  json.Metric("query_single_mops", query_single);
  json.Metric("query_batch_mops", query_batch);
  json.Metric("query_batch_speedup",
              query_single > 0 ? query_batch / query_single : 0.0);
  json.Count("batch_block_chosen", best_block);
  json.Count("batch_prefetch_distance_chosen", best_dist);

  // Decode scaling, default options (clamped to the host's cores): on a
  // single-core host the 4-thread request honestly degrades to the
  // sequential scan and the reported speedup sits at ~1.0 rather than
  // manufacturing a parallel win the hardware cannot deliver.
  const davinci::InfrequentPart& ifp = DecodeFixture();
  constexpr int kDecodeReps = 3;
  auto time_decode_ms = [&](size_t threads) {
    size_t flows = 0;
    double seconds = BestOfSeconds(kDecodeReps, [&] {
      flows += ifp.Decode(nullptr, threads).size();
    });
    benchmark::DoNotOptimize(flows);
    return seconds * 1000.0;
  };
  double decode_1t = time_decode_ms(1);
  double decode_4t = time_decode_ms(4);
  unsigned hw = std::thread::hardware_concurrency();
  json.Metric("decode_1t_ms", decode_1t);
  json.Metric("decode_4t_ms", decode_4t);
  json.Metric("decode_speedup_4t", decode_4t > 0 ? decode_1t / decode_4t : 0.0);
  json.Count("decode_threads_effective",
             std::min<size_t>(4, hw == 0 ? 1 : hw));
  // Every Decode above landed in the process-wide ifp_decode histogram.
  json.Histogram("ifp_decode",
                 davinci::obs::StatsRegistry::Global().Histogram("ifp_decode"));
  json.Write();
}

// Direct timings for BENCH_epoch_engine.json: snapshot acquisition cost,
// CoW clone tallies, epoch rotation rate, memoized window-merge reuse and
// RCU read throughput with and without a racing writer.
void WriteEpochEngineJson() {
  davinci::bench::BenchJson json("epoch_engine");
  const auto& keys = Keys();

  // Snapshot acquisition is O(1): the view shares the parts' CoW buffers,
  // so the loop measures pointer bookkeeping, not counter copies.
  davinci::obs::CowTally::ResetForTesting();
  davinci::DaVinciSketch sketch = MakeSketch<davinci::DaVinciSketch>();
  sketch.InsertBatch(keys);
  constexpr size_t kSnapshots = 200000;
  std::shared_ptr<const davinci::SketchView> view;
  davinci::Timer timer;
  for (size_t i = 0; i < kSnapshots; ++i) {
    view = sketch.Snapshot();
    benchmark::DoNotOptimize(view);
  }
  json.Metric("snapshot_acquire_mops",
              davinci::ThroughputMpps(kSnapshots, timer.ElapsedSeconds()));
  // One write against the outstanding view triggers the lazy clones.
  sketch.Insert(1, 1);
  json.Count("cow_clones", davinci::obs::CowTally::Clones());
  json.Count("cow_clone_bytes", davinci::obs::CowTally::CloneBytes());

  // Rotation: seal (a move) + fresh sketch + one accumulator merge.
  constexpr size_t kRotations = 64;
  constexpr size_t kKeysPerEpoch = 4096;
  davinci::EpochManager engine(8, 64 * 1024, 3);
  timer.Restart();
  for (size_t r = 0; r < kRotations; ++r) {
    engine.InsertBatch(std::span<const uint32_t>(
        keys.data() + (r % 16) * kKeysPerEpoch, kKeysPerEpoch));
    engine.Advance();
  }
  double rotate_seconds = timer.ElapsedSeconds();
  json.Metric("rotation_per_s", rotate_seconds > 0
                                    ? static_cast<double>(kRotations) /
                                          rotate_seconds
                                    : 0.0);
  for (int i = 0; i < 4; ++i) {
    benchmark::DoNotOptimize(engine.MergedWindow());
  }
  json.Count("window_merge_reuse_hits", engine.window_merge_hits());
  json.Count("window_rebuild_merges", engine.window_rebuild_merges());

  // RCU read path: Query throughput against the published views, first
  // uncontended, then with a writer batching its view publications at the
  // serving-style interval (interval 1 would re-clone ~200KB of CoW
  // buffers per insert, trashing the reader's cache along with the
  // writer's throughput — see DESIGN.md §10).
  constexpr size_t kPublishInterval = 1024;
  json.Count("publish_interval", kPublishInterval);
  json.Count("hardware_threads", std::thread::hardware_concurrency());
  davinci::ConcurrentDaVinci shared(4, kBytes, 5);
  shared.InsertBatch(keys);
  constexpr int kReadRounds = 5;
  int64_t sink = 0;
  auto read_pass = [&shared, &keys] {
    int64_t total = 0;
    for (uint32_t key : keys) total += shared.Query(key);
    return total;
  };
  // Best-of-N per full trace pass, matching the query-kernel timings: a
  // scheduling hiccup can only inflate a pass, never shrink it.
  double uncontended_seconds =
      BestOfSeconds(kReadRounds, [&] { sink += read_pass(); });
  json.Metric("read_uncontended_mops",
              davinci::ThroughputMpps(keys.size(), uncontended_seconds));
  shared.SetPublishInterval(kPublishInterval);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_ops{0};
  std::thread writer([&shared, &keys, &stop, &writer_ops] {
    size_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      shared.Insert(keys[i % keys.size()], 1);
      if ((++i & 1023) == 0) {
        writer_ops.fetch_add(1024, std::memory_order_relaxed);
      }
    }
  });
  timer.Restart();
  double contended_seconds =
      BestOfSeconds(kReadRounds, [&] { sink += read_pass(); });
  double contended_window = timer.ElapsedSeconds();
  json.Metric("read_under_contention_mops",
              davinci::ThroughputMpps(keys.size(), contended_seconds));
  stop.store(true, std::memory_order_release);
  writer.join();
  // Write-side face of the same contest: inserts the racing writer
  // retired per second. Publication batching is what keeps this from
  // collapsing into per-insert CoW clones.
  json.Metric("contended_writer_mops",
              davinci::ThroughputMpps(
                  writer_ops.load(std::memory_order_relaxed),
                  contended_window));
  shared.FlushViews();

  // Whole-system mixed read/write scaling: one writer thread streaming
  // Inserts (publishing every kPublishInterval) against 1/2/4/8 reader
  // threads running batched queries over the published views. Reported
  // per point: aggregate reader Mops. On a host with fewer cores than
  // readers + writer the curve honestly flattens or droops — the
  // hardware_threads count above tells the regression gate which regime
  // produced the numbers.
  for (size_t readers : {1u, 2u, 4u, 8u}) {
    std::atomic<bool> mixed_stop{false};
    std::thread mixed_writer([&shared, &keys, &mixed_stop] {
      size_t i = 0;
      while (!mixed_stop.load(std::memory_order_acquire)) {
        shared.Insert(keys[i % keys.size()], 1);
        ++i;
      }
    });
    constexpr int kMixedRounds = 2;
    std::vector<std::thread> pool;
    pool.reserve(readers);
    timer.Restart();
    for (size_t t = 0; t < readers; ++t) {
      pool.emplace_back([&shared, &keys] {
        int64_t total = 0;
        for (int r = 0; r < kMixedRounds; ++r) {
          std::vector<int64_t> answers = shared.QueryBatch(keys);
          total += answers.empty() ? 0 : answers.back();
        }
        benchmark::DoNotOptimize(total);
      });
    }
    for (std::thread& thread : pool) thread.join();
    double seconds = timer.ElapsedSeconds();
    mixed_stop.store(true, std::memory_order_release);
    mixed_writer.join();
    json.Metric("mixed_read_mops_" + std::to_string(readers) + "t",
                davinci::ThroughputMpps(
                    readers * kMixedRounds * keys.size(), seconds));
  }
  benchmark::DoNotOptimize(sink);
  json.Write();
}

// Captures items_per_second per benchmark while still printing the normal
// console table, keyed by a JSON-friendly name.
class MopsCapture : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        mops_.emplace_back(JsonKey(run.benchmark_name()),
                           it->second.value / 1e6);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<std::pair<std::string, double>>& mops() const {
    return mops_;
  }

 private:
  // "BM_Insert<davinci::CmSketch>" -> "Insert_CmSketch_mops".
  static std::string JsonKey(const std::string& name) {
    std::string key;
    key.reserve(name.size() + 5);
    for (size_t i = 0; i < name.size();) {
      if (name.compare(i, 3, "BM_") == 0) {
        i += 3;
      } else if (name.compare(i, 10, "<davinci::") == 0) {
        key += '_';
        i += 10;
      } else if (name[i] == '>') {
        ++i;
      } else {
        key += name[i++];
      }
    }
    return key + "_mops";
  }

  std::vector<std::pair<std::string, double>> mops_;
};

}  // namespace

BENCHMARK_TEMPLATE(BM_Insert, davinci::DaVinciSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::CmSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::CuSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::ElasticSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::FcmSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::Csoa)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::ColdFilterCm)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::SpaceSaving)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::HeavyGuardian)->Unit(benchmark::kMillisecond);

BENCHMARK_TEMPLATE(BM_Query, davinci::DaVinciSketch);
BENCHMARK_TEMPLATE(BM_Query, davinci::CmSketch);
BENCHMARK_TEMPLATE(BM_Query, davinci::ElasticSketch);

BENCHMARK(BM_ProbeScalar);
BENCHMARK(BM_ProbeSimd);
BENCHMARK(BM_QueryBatch)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Decode)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  MopsCapture reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  davinci::bench::BenchJson json("micro_ops");
  for (const auto& [key, mops] : reporter.mops()) json.Metric(key, mops);
  davinci::DaVinciSketch sketch = MakeSketch<davinci::DaVinciSketch>();
  for (uint32_t key : Keys()) sketch.Insert(key, 1);
  davinci::obs::HealthSnapshot snapshot;
  sketch.CollectStats(&snapshot);
  json.Snapshot(snapshot);
  json.Write();

  WriteQueryKernelsJson();
  WriteEpochEngineJson();
  return 0;
}
