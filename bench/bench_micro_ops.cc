// Google-benchmark micro-benchmarks: per-sketch insertion and query
// throughput on a Zipf stream (backs the paper's throughput claims with
// op-level numbers).
//
// Besides the console table, writes BENCH_micro_ops.json (per-sketch Mops
// plus the final DaVinci HealthSnapshot) for the CI bench-regression gate.

#include <string>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "baselines/cm_sketch.h"
#include "baselines/csoa.h"
#include "baselines/cu_sketch.h"
#include "baselines/elastic_sketch.h"
#include "baselines/cold_filter.h"
#include "baselines/fcm_sketch.h"
#include "baselines/heavy_guardian.h"
#include "baselines/space_saving.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"
#include "workload/trace.h"

namespace {

constexpr size_t kBytes = 200 * 1024;

const std::vector<uint32_t>& Keys() {
  static const std::vector<uint32_t>* keys = [] {
    auto trace = new davinci::Trace(
        davinci::BuildSkewedTrace("bench", 200000, 20000, 1.05, 97));
    return &trace->keys;
  }();
  return *keys;
}

template <typename Sketch>
Sketch MakeSketch();

template <>
davinci::DaVinciSketch MakeSketch() {
  return davinci::DaVinciSketch(kBytes, 1);
}
template <>
davinci::CmSketch MakeSketch() {
  return davinci::CmSketch(kBytes, 3, 1);
}
template <>
davinci::CuSketch MakeSketch() {
  return davinci::CuSketch(kBytes, 3, 1);
}
template <>
davinci::ElasticSketch MakeSketch() {
  return davinci::ElasticSketch(kBytes, 1);
}
template <>
davinci::FcmSketch MakeSketch() {
  return davinci::FcmSketch(kBytes, 1);
}
template <>
davinci::Csoa MakeSketch() {
  return davinci::Csoa({kBytes, kBytes, kBytes}, 1);
}
template <>
davinci::ColdFilterCm MakeSketch() {
  return davinci::ColdFilterCm(kBytes, 15, 1);
}
template <>
davinci::SpaceSaving MakeSketch() {
  return davinci::SpaceSaving(kBytes, 1);
}
template <>
davinci::HeavyGuardian MakeSketch() {
  return davinci::HeavyGuardian(kBytes, 1);
}

template <typename Sketch>
void BM_Insert(benchmark::State& state) {
  const auto& keys = Keys();
  for (auto _ : state) {
    Sketch sketch = MakeSketch<Sketch>();
    for (uint32_t key : keys) sketch.Insert(key, 1);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(keys.size()));
}

template <typename Sketch>
void BM_Query(benchmark::State& state) {
  const auto& keys = Keys();
  Sketch sketch = MakeSketch<Sketch>();
  for (uint32_t key : keys) sketch.Insert(key, 1);
  size_t i = 0;
  int64_t sink = 0;
  for (auto _ : state) {
    sink += sketch.Query(keys[i % keys.size()]);
    ++i;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

// Captures items_per_second per benchmark while still printing the normal
// console table, keyed by a JSON-friendly name.
class MopsCapture : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        mops_.emplace_back(JsonKey(run.benchmark_name()),
                           it->second.value / 1e6);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<std::pair<std::string, double>>& mops() const {
    return mops_;
  }

 private:
  // "BM_Insert<davinci::CmSketch>" -> "Insert_CmSketch_mops".
  static std::string JsonKey(const std::string& name) {
    std::string key;
    key.reserve(name.size() + 5);
    for (size_t i = 0; i < name.size();) {
      if (name.compare(i, 3, "BM_") == 0) {
        i += 3;
      } else if (name.compare(i, 10, "<davinci::") == 0) {
        key += '_';
        i += 10;
      } else if (name[i] == '>') {
        ++i;
      } else {
        key += name[i++];
      }
    }
    return key + "_mops";
  }

  std::vector<std::pair<std::string, double>> mops_;
};

}  // namespace

BENCHMARK_TEMPLATE(BM_Insert, davinci::DaVinciSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::CmSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::CuSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::ElasticSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::FcmSketch)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::Csoa)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::ColdFilterCm)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::SpaceSaving)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_Insert, davinci::HeavyGuardian)->Unit(benchmark::kMillisecond);

BENCHMARK_TEMPLATE(BM_Query, davinci::DaVinciSketch);
BENCHMARK_TEMPLATE(BM_Query, davinci::CmSketch);
BENCHMARK_TEMPLATE(BM_Query, davinci::ElasticSketch);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  MopsCapture reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  davinci::bench::BenchJson json("micro_ops");
  for (const auto& [key, mops] : reporter.mops()) json.Metric(key, mops);
  davinci::DaVinciSketch sketch = MakeSketch<davinci::DaVinciSketch>();
  for (uint32_t key : Keys()) sketch.Insert(key, 1);
  davinci::obs::HealthSnapshot snapshot;
  sketch.CollectStats(&snapshot);
  json.Snapshot(snapshot);
  json.Write();
  return 0;
}
