// Extension bench (beyond the paper's figures): robustness of DaVinci
// Sketch to workload shape — skew sweep, uniform traffic, bursty arrivals —
// plus the cost/accuracy of the sliding-window and concurrent extensions.

#include <cstdio>

#include "bench_common.h"
#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "core/sliding_davinci.h"

namespace {

using davinci::DaVinciSketch;
using davinci::GroundTruth;
using davinci::Trace;

constexpr size_t kBytes = 300 * 1024;
constexpr size_t kPackets = 400000;
constexpr size_t kFlows = 40000;

double FrequencyAre(const Trace& trace, const DaVinciSketch& sketch) {
  GroundTruth truth(trace.keys);
  auto observations = davinci::bench::Observe(
      truth, [&](uint32_t key) { return sketch.Query(key); });
  return davinci::AverageRelativeError(observations);
}

}  // namespace

int main() {
  davinci::bench::BenchJson json("ext_robustness");
  std::printf("# Robustness 1: skew sweep (%zu pkts, %zu flows, %zu KB)\n",
              kPackets, kFlows, kBytes / 1024);
  std::printf("skew,freq_are,card_re,hh_f1\n");
  for (double skew : {0.0, 0.6, 0.9, 1.05, 1.2, 1.5}) {
    Trace trace = davinci::BuildSkewedTrace("s", kPackets, kFlows, skew, 17);
    GroundTruth truth(trace.keys);
    DaVinciSketch sketch(kBytes, 7);
    for (uint32_t key : trace.keys) sketch.Insert(key, 1);
    int64_t threshold = static_cast<int64_t>(kPackets * 0.0005);
    auto actual = truth.HeavyHitters(threshold);
    double f1 = actual.empty()
                    ? 1.0
                    : davinci::bench::HeavySetF1(
                          sketch.HeavyHitters(threshold), actual);
    std::printf("%.2f,%.5f,%.5f,%.4f\n", skew, FrequencyAre(trace, sketch),
                davinci::RelativeError(
                    static_cast<double>(truth.cardinality()),
                    sketch.EstimateCardinality()),
                f1);
  }

  std::printf("\n# Robustness 2: arrival order (skew 1.05)\n");
  std::printf("arrival,freq_are\n");
  {
    Trace shuffled =
        davinci::BuildSkewedTrace("s", kPackets, kFlows, 1.05, 19);
    DaVinciSketch a(kBytes, 7);
    for (uint32_t key : shuffled.keys) a.Insert(key, 1);
    std::printf("shuffled,%.5f\n", FrequencyAre(shuffled, a));
    for (size_t burst : {16, 256, 4096}) {
      Trace bursty = davinci::BuildBurstyTrace("b", kPackets, kFlows, 1.05,
                                               burst, 19);
      DaVinciSketch b(kBytes, 7);
      for (uint32_t key : bursty.keys) b.Insert(key, 1);
      std::printf("bursty_%zu,%.5f\n", burst, FrequencyAre(bursty, b));
    }
  }

  std::printf("\n# Extension: sliding window (4 epochs x %zu KB)\n",
              kBytes / 4 / 1024);
  std::printf("metric,value\n");
  {
    Trace trace = davinci::BuildSkewedTrace("w", kPackets, kFlows, 1.05, 23);
    davinci::SlidingDaVinci window(4, kBytes / 4, 7);
    size_t quarter = trace.keys.size() / 4;
    for (size_t i = 0; i < trace.keys.size(); ++i) {
      if (i > 0 && i % quarter == 0) window.Advance();
      window.Insert(trace.keys[i], 1);
    }
    GroundTruth truth(trace.keys);
    std::vector<davinci::Estimate> observations;
    for (const auto& [key, f] : truth.frequencies()) {
      observations.push_back({f, window.Query(key)});
    }
    std::printf("window_freq_are,%.5f\n",
                davinci::AverageRelativeError(observations));
    std::printf("window_card_re,%.5f\n",
                davinci::RelativeError(
                    static_cast<double>(truth.cardinality()),
                    window.MergedWindow().EstimateCardinality()));
  }

  std::printf("\n# Extension: sharded insert overhead (single thread)\n");
  std::printf("shards,mpps\n");
  {
    Trace trace = davinci::BuildSkewedTrace("c", kPackets, kFlows, 1.05, 29);
    for (size_t shards : {1, 2, 4, 8}) {
      davinci::ConcurrentDaVinci concurrent(shards, kBytes, 7);
      davinci::Timer timer;
      for (uint32_t key : trace.keys) concurrent.Insert(key, 1);
      std::printf("%zu,%.2f\n", shards,
                  davinci::ThroughputMpps(trace.keys.size(),
                                          timer.ElapsedSeconds()));
    }
  }
  Trace obs_trace = davinci::BuildSkewedTrace("obs", kPackets, kFlows, 1.05, 17);
  davinci::bench::DaVinciObsEpilogue(json, obs_trace.keys, kBytes, 7);
  return 0;
}
