// Single-insert vs. batched-insert throughput of the DaVinci hot path on a
// Zipf-1.05 micro-bench trace (google-benchmark harness).
//
// The sketch is sized well past the last-level cache so the workload is
// memory-bound — the regime the batched pipeline (one-pass hashing +
// one-block-ahead software prefetch + fastrange index reduction) targets.
//
// Besides the console table, the binary writes BENCH_insert_throughput.json
// (override the path with DAVINCI_BENCH_JSON) holding both throughputs in
// Mops and their ratio, so the insertion-throughput trajectory is
// machine-readable from this PR onward. A committed snapshot lives at
// results/BENCH_insert_throughput.json.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "obs/health.h"
#include "workload/zipf.h"

namespace {

using davinci::ConcurrentDaVinci;
using davinci::DaVinciSketch;
using davinci::ZipfGenerator;

// Defaults reproduce the committed snapshot. DAVINCI_BENCH_SKETCH_BYTES,
// DAVINCI_BENCH_TRACE_LEN and DAVINCI_BENCH_DOMAIN shrink the workload for
// quick runs — the CI regression gate compares two equally small runs, not
// a small run against the full-size committed snapshot.
//
// 32 MB of design state (≈ 8× that physically: counters are stored as
// int64_t) keeps the FP/EF/IFP arrays far larger than any L2/L3.
constexpr size_t kDefaultSketchBytes = 32u << 20;
constexpr uint64_t kSeed = 42;
constexpr size_t kDefaultTraceLen = 8u << 20;
// A wide key domain keeps the tail cold: the batched pipeline's prefetching
// is aimed at exactly this DRAM-latency-bound regime.
constexpr uint64_t kDefaultDomain = 16u << 20;

size_t EnvSize(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  unsigned long long value = std::strtoull(env, nullptr, 10);
  return value > 0 ? static_cast<size_t>(value) : fallback;
}

size_t SketchBytes() {
  static const size_t bytes =
      EnvSize("DAVINCI_BENCH_SKETCH_BYTES", kDefaultSketchBytes);
  return bytes;
}

size_t TraceLen() {
  static const size_t len = EnvSize("DAVINCI_BENCH_TRACE_LEN", kDefaultTraceLen);
  return len;
}

uint64_t Domain() {
  static const uint64_t domain =
      EnvSize("DAVINCI_BENCH_DOMAIN", kDefaultDomain);
  return domain;
}

const std::vector<uint32_t>& ZipfTrace() {
  static const std::vector<uint32_t> trace = [] {
    ZipfGenerator zipf(Domain(), 1.05, kSeed);
    std::vector<uint32_t> keys;
    keys.reserve(TraceLen());
    for (size_t i = 0; i < TraceLen(); ++i) {
      keys.push_back(static_cast<uint32_t>(zipf.Next()));
    }
    return keys;
  }();
  return trace;
}

void BM_SingleInsert(benchmark::State& state) {
  const std::vector<uint32_t>& keys = ZipfTrace();
  for (auto _ : state) {
    state.PauseTiming();
    DaVinciSketch sketch(SketchBytes(), kSeed);
    state.ResumeTiming();
    for (uint32_t key : keys) sketch.Insert(key, 1);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_SingleInsert)->Unit(benchmark::kMillisecond);

void BM_InsertBatch(benchmark::State& state) {
  const std::vector<uint32_t>& keys = ZipfTrace();
  for (auto _ : state) {
    state.PauseTiming();
    DaVinciSketch sketch(SketchBytes(), kSeed);
    state.ResumeTiming();
    sketch.InsertBatch(keys);
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_InsertBatch)->Unit(benchmark::kMillisecond);

// Bulk-load configuration: at the default publish interval of 1 every
// shard-block publish pins the live sketch's CoW buffers, so the next
// block re-clones them — megabytes of memcpy per few-thousand-key block,
// which is the read-your-writes price, not the insert pipeline's. A bulk
// load has no concurrent readers to keep current, so it raises the
// interval and force-publishes once at the end (inside the timed region —
// the flush is part of the work).
constexpr size_t kBulkLoadPublishInterval = 1u << 20;

void BM_ConcurrentInsertBatch(benchmark::State& state) {
  const std::vector<uint32_t>& keys = ZipfTrace();
  for (auto _ : state) {
    state.PauseTiming();
    ConcurrentDaVinci sketch(4, SketchBytes(), kSeed);
    sketch.SetPublishInterval(kBulkLoadPublishInterval);
    state.ResumeTiming();
    sketch.InsertBatch(keys);
    sketch.FlushViews();
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(keys.size()));
}
BENCHMARK(BM_ConcurrentInsertBatch)->Unit(benchmark::kMillisecond);

// Captures items_per_second per benchmark while still printing the normal
// console table.
class ThroughputCapture : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        mops_[run.benchmark_name()] = it->second.value / 1e6;
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  // Prefers the median aggregate (present when --benchmark_repetitions is
  // used) over a lone run — single-insert timings are latency-bound and
  // noisy on shared machines, so the snapshot records medians.
  double Mops(const std::string& name) const {
    auto median = mops_.find(name + "_median");
    if (median != mops_.end()) return median->second;
    auto it = mops_.find(name);
    return it == mops_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::string, double> mops_;
};

void WriteJson(const ThroughputCapture& capture) {
  const char* path = std::getenv("DAVINCI_BENCH_JSON");
  if (path == nullptr) path = "BENCH_insert_throughput.json";
  double single = capture.Mops("BM_SingleInsert");
  double batch = capture.Mops("BM_InsertBatch");
  double concurrent = capture.Mops("BM_ConcurrentInsertBatch");
  double ratio = single > 0.0 ? batch / single : 0.0;

  // Final-state health of one batched build over the same trace, so the
  // snapshot records occupancy/saturation alongside the throughputs.
  DaVinciSketch sketch(SketchBytes(), kSeed);
  sketch.InsertBatch(ZipfTrace());
  davinci::obs::HealthSnapshot snapshot;
  sketch.CollectStats(&snapshot);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"bench_batch_pipeline\",\n"
                "  \"trace\": \"zipf-1.05\",\n"
                "  \"trace_len\": %zu,\n"
                "  \"sketch_bytes\": %zu,\n"
                "  \"single_insert_mops\": %.3f,\n"
                "  \"insert_batch_mops\": %.3f,\n"
                "  \"concurrent_insert_batch_mops\": %.3f,\n"
                "  \"concurrent_publish_interval\": %zu,\n"
                "  \"batch_over_single\": %.3f,\n"
                "  \"health\": ",
                TraceLen(), SketchBytes(), single, batch, concurrent,
                size_t{kBulkLoadPublishInterval}, ratio);
  out << buf;
  snapshot.WriteJson(out);
  out << "\n}\n";
  std::printf("single=%.2f Mops  batch=%.2f Mops  ratio=%.2fx  -> %s\n",
              single, batch, ratio, path);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ThroughputCapture reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  WriteJson(reporter);
  return 0;
}
