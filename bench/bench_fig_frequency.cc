// Figures 4a / 5a / 6a (frequency ARE vs memory) and Figure 7c
// (frequency AAE): CM, CU, Elastic, FCM vs DaVinci on all three datasets.

#include <cstdio>
#include <memory>

#include "baselines/cm_sketch.h"
#include "baselines/cold_filter.h"
#include "baselines/cu_sketch.h"
#include "baselines/elastic_sketch.h"
#include "baselines/fcm_sketch.h"
#include "baselines/sketch_interface.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"

namespace {

using davinci::FrequencySketch;

std::unique_ptr<FrequencySketch> Make(const std::string& name, size_t bytes,
                                      uint64_t seed) {
  if (name == "CM") return std::make_unique<davinci::CmSketch>(bytes, 3, seed);
  if (name == "CU") return std::make_unique<davinci::CuSketch>(bytes, 3, seed);
  if (name == "Elastic") {
    return std::make_unique<davinci::ElasticSketch>(bytes, seed);
  }
  if (name == "FCM") return std::make_unique<davinci::FcmSketch>(bytes, seed);
  if (name == "ColdFilter") {
    return std::make_unique<davinci::ColdFilterCm>(bytes, 15, seed);
  }
  return std::make_unique<davinci::DaVinciSketch>(bytes, seed);
}

}  // namespace

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig_frequency");
  std::printf(
      "# Fig 4a/5a/6a + 7c: element frequency estimation (scale=%.2f)\n",
      scale);
  std::printf("dataset,memory_kb,algorithm,are,aae\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    for (size_t kb : davinci::bench::MemorySweepKb()) {
      for (const std::string name :  // NOLINT: elements are char literals
           {"Ours", "CM", "CU", "Elastic", "FCM", "ColdFilter"}) {
        auto sketch = Make(name, kb * 1024, 7);
        for (uint32_t key : dataset.trace.keys) sketch->Insert(key, 1);
        auto observations = davinci::bench::Observe(
            dataset.truth,
            [&](uint32_t key) { return sketch->Query(key); });
        std::printf("%s,%zu,%s,%.6f,%.4f\n", dataset.trace.name.c_str(), kb,
                    name.c_str(),
                    davinci::AverageRelativeError(observations),
                    davinci::AverageAbsoluteError(observations));
      }
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
