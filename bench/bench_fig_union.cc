// Figures 4g / 5g / 6g: union of two sets — frequency ARE on the merged
// sketch vs memory. Comparators: Elastic (heavy/light merge) and
// FermatSketch (linear merge + decode) vs DaVinci (Algorithm 3).

#include <cstdio>

#include "baselines/elastic_sketch.h"
#include "baselines/fermat_sketch.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig_union");
  std::printf("# Fig 4g/5g/6g: union of two sets, frequency ARE (scale=%.2f)\n",
              scale);
  std::printf("dataset,memory_kb,algorithm,are\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    size_t half = dataset.trace.keys.size() / 2;
    davinci::Trace a = davinci::Slice(dataset.trace, 0, half, "a");
    davinci::Trace b =
        davinci::Slice(dataset.trace, half, dataset.trace.keys.size(), "b");
    // Union truth == the whole trace's truth (the halves partition it).
    const davinci::GroundTruth& truth = dataset.truth;

    for (size_t kb : davinci::bench::MemorySweepKb()) {
      size_t bytes = kb * 1024;
      {
        davinci::DaVinciSketch sa(bytes, 29), sb(bytes, 29);
        for (uint32_t key : a.keys) sa.Insert(key, 1);
        for (uint32_t key : b.keys) sb.Insert(key, 1);
        sa.Merge(sb);
        auto observations = davinci::bench::Observe(
            truth, [&](uint32_t key) { return sa.Query(key); });
        std::printf("%s,%zu,Ours,%.6f\n", dataset.trace.name.c_str(), kb,
                    davinci::AverageRelativeError(observations));
      }
      {
        davinci::ElasticSketch sa(bytes, 29), sb(bytes, 29);
        for (uint32_t key : a.keys) sa.Insert(key, 1);
        for (uint32_t key : b.keys) sb.Insert(key, 1);
        sa.Merge(sb);
        auto observations = davinci::bench::Observe(
            truth, [&](uint32_t key) { return sa.Query(key); });
        std::printf("%s,%zu,Elastic,%.6f\n", dataset.trace.name.c_str(), kb,
                    davinci::AverageRelativeError(observations));
      }
      {
        davinci::FermatSketch sa(bytes, 3, 29), sb(bytes, 3, 29);
        for (uint32_t key : a.keys) sa.Insert(key, 1);
        for (uint32_t key : b.keys) sb.Insert(key, 1);
        sa.Merge(sb);
        auto decoded = sa.Decode();
        auto observations =
            davinci::bench::Observe(truth, [&](uint32_t key) -> int64_t {
              auto it = decoded.find(key);
              return it == decoded.end() ? 0 : it->second;
            });
        std::printf("%s,%zu,Fermat,%.6f\n", dataset.trace.name.c_str(), kb,
                    davinci::AverageRelativeError(observations));
      }
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
