// Figure 8: overall multi-task performance — DaVinci vs CSOA (the minimal
// composite of FCM + FermatSketch + JoinSketch covering the same nine
// tasks).
//   (a) average memory accesses per insertion
//   (b) insertion throughput (Mpps)
//   (c) memory consumption: for each case, CSOA components are sized by a
//       doubling search until they match DaVinci's accuracy on their tasks
//       (frequency ARE for FCM, difference ARE for Fermat, join RE for
//       JoinSketch), which is how the paper defines "same accuracy".

#include <cstdio>
#include <cstdlib>

#include "baselines/csoa.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"

namespace {

using davinci::Csoa;
using davinci::DaVinciSketch;
using davinci::FcmSketch;
using davinci::FermatSketch;
using davinci::GroundTruth;
using davinci::JoinSketch;
using davinci::Trace;

struct Workload {
  Trace trace;
  GroundTruth truth;
  Trace da, db;  // difference/join operands
  GroundTruth ta, tb;
  GroundTruth diff_truth;
  double join_truth;
};

Workload MakeWorkload(double scale) {
  Workload w;
  w.trace = davinci::BuildCaidaLike(scale);
  w.truth = GroundTruth(w.trace.keys);
  size_t n = w.trace.keys.size();
  w.da = davinci::Slice(w.trace, 0, 2 * n / 3, "da");
  w.db = davinci::Slice(w.trace, n / 3, n, "db");
  w.ta = GroundTruth(w.da.keys);
  w.tb = GroundTruth(w.db.keys);
  w.diff_truth = GroundTruth::Difference(w.ta, w.tb);
  w.join_truth = GroundTruth::InnerJoin(w.ta, w.tb);
  return w;
}

double FrequencyAre(const Workload& w, const davinci::FrequencySketch& s) {
  auto observations = davinci::bench::Observe(
      w.truth, [&](uint32_t key) { return s.Query(key); });
  return davinci::AverageRelativeError(observations);
}

// Smallest FCM memory whose frequency ARE matches `target`.
size_t SearchFcmBytes(const Workload& w, double target) {
  for (size_t bytes = 64 * 1024; bytes <= 64 * 1024 * 1024; bytes *= 2) {
    FcmSketch s(bytes, 43);
    for (uint32_t key : w.trace.keys) s.Insert(key, 1);
    if (FrequencyAre(w, s) <= target) return bytes;
  }
  return 64 * 1024 * 1024;
}

double FermatDiffAre(const Workload& w, size_t bytes) {
  FermatSketch sa(bytes, 3, 43), sb(bytes, 3, 43);
  for (uint32_t key : w.da.keys) sa.Insert(key, 1);
  for (uint32_t key : w.db.keys) sb.Insert(key, 1);
  sa.Subtract(sb);
  auto decoded = sa.Decode();
  std::vector<davinci::Estimate> observations;
  for (const auto& [key, f] : w.diff_truth.frequencies()) {
    auto it = decoded.find(key);
    observations.push_back({f, it == decoded.end() ? 0 : it->second});
  }
  return davinci::AverageRelativeError(observations);
}

size_t SearchFermatBytes(const Workload& w, double target) {
  for (size_t bytes = 64 * 1024; bytes <= 64 * 1024 * 1024; bytes *= 2) {
    if (FermatDiffAre(w, bytes) <= target) return bytes;
  }
  return 64 * 1024 * 1024;
}

double JoinRe(const Workload& w, size_t bytes) {
  JoinSketch a(bytes, 43), b(bytes, 43);
  for (uint32_t key : w.da.keys) a.Insert(key, 1);
  for (uint32_t key : w.db.keys) b.Insert(key, 1);
  return davinci::RelativeError(w.join_truth,
                                JoinSketch::InnerProduct(a, b));
}

size_t SearchJoinBytes(const Workload& w, double target) {
  for (size_t bytes = 64 * 1024; bytes <= 64 * 1024 * 1024; bytes *= 2) {
    if (JoinRe(w, bytes) <= target) return bytes;
  }
  return 64 * 1024 * 1024;
}

}  // namespace

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  Workload w = MakeWorkload(scale);
  davinci::bench::BenchJson json("fig8_overall");

  std::printf("# Fig 8: overall performance, DaVinci vs CSOA (scale=%.2f)\n",
              scale);
  std::printf(
      "case,davinci_kb,csoa_kb,memory_pct,davinci_ama,csoa_ama,"
      "davinci_mpps,csoa_mpps,speedup\n");

  for (int c = 1; c <= 9; ++c) {
    size_t bytes = static_cast<size_t>(c) * 100 * 1024;

    // --- DaVinci: accuracy targets + AMA + throughput.
    DaVinciSketch davinci_sketch(bytes, 43);
    davinci::Timer timer;
    for (uint32_t key : w.trace.keys) davinci_sketch.Insert(key, 1);
    double davinci_seconds = timer.ElapsedSeconds();
    double davinci_mpps =
        davinci::ThroughputMpps(w.trace.keys.size(), davinci_seconds);
    double davinci_ama = static_cast<double>(davinci_sketch.MemoryAccesses()) /
                         static_cast<double>(w.trace.keys.size());

    double freq_target = FrequencyAre(w, davinci_sketch);
    // Difference target.
    DaVinciSketch sa(bytes, 43), sb(bytes, 43);
    for (uint32_t key : w.da.keys) sa.Insert(key, 1);
    for (uint32_t key : w.db.keys) sb.Insert(key, 1);
    DaVinciSketch diff = sa;
    diff.Subtract(sb);
    std::vector<davinci::Estimate> diff_observations;
    for (const auto& [key, f] : w.diff_truth.frequencies()) {
      diff_observations.push_back({f, diff.Query(key)});
    }
    double diff_target = davinci::AverageRelativeError(diff_observations);
    double join_target = davinci::RelativeError(
        w.join_truth, DaVinciSketch::InnerProduct(sa, sb));

    // --- CSOA sized to match those targets.
    Csoa::MemoryPlan plan;
    plan.fcm_bytes = SearchFcmBytes(w, freq_target);
    plan.fermat_bytes = SearchFermatBytes(w, diff_target);
    plan.join_bytes = SearchJoinBytes(w, join_target);
    Csoa csoa(plan, 43);
    timer.Restart();
    for (uint32_t key : w.trace.keys) csoa.Insert(key, 1);
    double csoa_seconds = timer.ElapsedSeconds();
    double csoa_mpps =
        davinci::ThroughputMpps(w.trace.keys.size(), csoa_seconds);
    double csoa_ama = static_cast<double>(csoa.MemoryAccesses()) /
                      static_cast<double>(w.trace.keys.size());

    double memory_pct = 100.0 * static_cast<double>(bytes) /
                        static_cast<double>(csoa.MemoryBytes());
    std::printf("%d,%zu,%zu,%.2f,%.2f,%.2f,%.2f,%.2f,%.1f\n", c, bytes / 1024,
                csoa.MemoryBytes() / 1024, memory_pct, davinci_ama, csoa_ama,
                davinci_mpps, csoa_mpps, davinci_mpps / csoa_mpps);
  }
  davinci::bench::DaVinciObsEpilogue(json, w.trace.keys, 600 * 1024, 43);
  return 0;
}
