// Figures 4h/4j, 5h/5j, 6h/6j: set difference, frequency ARE on the
// difference vs memory, in the paper's two scenarios:
//   inclusion — subtract the first half from the whole trace (B ⊂ A);
//   overlap   — subtract the last two-thirds from the first two-thirds.
// Comparators: FlowRadar, LossRadar, FermatSketch vs DaVinci.

#include <cstdio>
#include <string>

#include "baselines/fermat_sketch.h"
#include "baselines/flow_radar.h"
#include "baselines/loss_radar.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"

namespace {

using davinci::GroundTruth;
using davinci::Trace;

struct Scenario {
  std::string name;
  Trace a;
  Trace b;
};

// ARE over the keys with non-zero true difference.
template <typename QueryFn>
double DifferenceAre(const GroundTruth& truth_diff, QueryFn&& query) {
  std::vector<davinci::Estimate> observations;
  for (const auto& [key, f] : truth_diff.frequencies()) {
    observations.push_back({f, query(key)});
  }
  return davinci::AverageRelativeError(observations);
}

}  // namespace

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig_difference");
  std::printf(
      "# Fig 4h/4j (and 5/6 twins): set difference, frequency ARE "
      "(scale=%.2f)\n",
      scale);
  std::printf("dataset,scenario,memory_kb,algorithm,are\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    size_t n = dataset.trace.keys.size();
    std::vector<Scenario> scenarios;
    scenarios.push_back({"inclusion", davinci::Slice(dataset.trace, 0, n, "A"),
                         davinci::Slice(dataset.trace, 0, n / 2, "B")});
    scenarios.push_back(
        {"overlap", davinci::Slice(dataset.trace, 0, 2 * n / 3, "A"),
         davinci::Slice(dataset.trace, n / 3, n, "B")});

    for (const Scenario& scenario : scenarios) {
      GroundTruth ta(scenario.a.keys), tb(scenario.b.keys);
      GroundTruth diff = GroundTruth::Difference(ta, tb);
      for (size_t kb : davinci::bench::MemorySweepKb()) {
        size_t bytes = kb * 1024;
        {
          davinci::DaVinciSketch sa(bytes, 31), sb(bytes, 31);
          for (uint32_t key : scenario.a.keys) sa.Insert(key, 1);
          for (uint32_t key : scenario.b.keys) sb.Insert(key, 1);
          sa.Subtract(sb);
          std::printf("%s,%s,%zu,Ours,%.6f\n", dataset.trace.name.c_str(),
                      scenario.name.c_str(), kb,
                      DifferenceAre(diff, [&](uint32_t key) {
                        return sa.Query(key);
                      }));
        }
        {
          davinci::FlowRadar sa(bytes, 31), sb(bytes, 31);
          for (uint32_t key : scenario.a.keys) sa.Insert(key, 1);
          for (uint32_t key : scenario.b.keys) sb.Insert(key, 1);
          sa.Subtract(sb);
          auto decoded = sa.Decode();
          std::printf("%s,%s,%zu,FlowRadar,%.6f\n",
                      dataset.trace.name.c_str(), scenario.name.c_str(), kb,
                      DifferenceAre(diff, [&](uint32_t key) -> int64_t {
                        auto it = decoded.find(key);
                        return it == decoded.end() ? 0 : it->second;
                      }));
        }
        {
          davinci::LossRadar sa(bytes, 31), sb(bytes, 31);
          for (uint32_t key : scenario.a.keys) sa.Insert(key, 1);
          for (uint32_t key : scenario.b.keys) sb.Insert(key, 1);
          sa.Subtract(sb);
          auto decoded = sa.Decode();
          std::printf("%s,%s,%zu,LossRadar,%.6f\n",
                      dataset.trace.name.c_str(), scenario.name.c_str(), kb,
                      DifferenceAre(diff, [&](uint32_t key) -> int64_t {
                        auto it = decoded.find(key);
                        return it == decoded.end() ? 0 : it->second;
                      }));
        }
        {
          davinci::FermatSketch sa(bytes, 3, 31), sb(bytes, 3, 31);
          for (uint32_t key : scenario.a.keys) sa.Insert(key, 1);
          for (uint32_t key : scenario.b.keys) sb.Insert(key, 1);
          sa.Subtract(sb);
          auto decoded = sa.Decode();
          std::printf("%s,%s,%zu,Fermat,%.6f\n", dataset.trace.name.c_str(),
                      scenario.name.c_str(), kb,
                      DifferenceAre(diff, [&](uint32_t key) -> int64_t {
                        auto it = decoded.find(key);
                        return it == decoded.end() ? 0 : it->second;
                      }));
        }
      }
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
