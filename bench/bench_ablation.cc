// Ablation bench for the design choices called out in DESIGN.md §6:
//   (1) λ eviction ratio sweep (frequency ARE, heavy-hitter F1)
//   (2) T promotion threshold sweep (frequency ARE, decode success count)
//   (3) memory split across FP/EF/IFP (frequency ARE)
//   (4) ζ sign hashes on/off (inner-join RE)
//   (5) decode cross-validation on/off (spurious decodes under overload)

#include <cstdio>

#include "bench_common.h"
#include "core/davinci_sketch.h"

namespace {

using davinci::DaVinciConfig;
using davinci::DaVinciSketch;
using davinci::GroundTruth;
using davinci::Trace;

constexpr size_t kBytes = 300 * 1024;

double FrequencyAre(const GroundTruth& truth, const DaVinciSketch& sketch) {
  auto observations = davinci::bench::Observe(
      truth, [&](uint32_t key) { return sketch.Query(key); });
  return davinci::AverageRelativeError(observations);
}

}  // namespace

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("ablation");
  Trace trace = davinci::BuildCaidaLike(scale);
  GroundTruth truth(trace.keys);
  size_t n = trace.keys.size();
  int64_t hh_threshold =
      static_cast<int64_t>(static_cast<double>(n) * 0.0002);
  auto hh_actual = truth.HeavyHitters(hh_threshold);

  std::printf("# Ablation 1: eviction ratio lambda (scale=%.2f)\n", scale);
  std::printf("lambda,freq_are,hh_f1\n");
  for (int64_t lambda : {1, 2, 4, 8, 16, 32}) {
    DaVinciConfig config = DaVinciConfig::FromMemory(kBytes, 47);
    config.evict_lambda = lambda;
    DaVinciSketch sketch(config);
    for (uint32_t key : trace.keys) sketch.Insert(key, 1);
    std::printf("%lld,%.5f,%.4f\n", static_cast<long long>(lambda),
                FrequencyAre(truth, sketch),
                davinci::bench::HeavySetF1(sketch.HeavyHitters(hh_threshold),
                                           hh_actual));
  }

  std::printf("\n# Ablation 2: promotion threshold T\n");
  std::printf("threshold,freq_are,decoded_flows\n");
  for (int64_t t : {2, 4, 8, 16, 32, 64}) {
    DaVinciConfig config = DaVinciConfig::FromMemory(kBytes, 47);
    config.promotion_threshold = t;
    DaVinciSketch sketch(config);
    for (uint32_t key : trace.keys) sketch.Insert(key, 1);
    std::printf("%lld,%.5f,%zu\n", static_cast<long long>(t),
                FrequencyAre(truth, sketch),
                sketch.DecodedFlows().size());
  }

  std::printf("\n# Ablation 3: FP/EF/IFP byte split\n");
  std::printf("fp_pct,ef_pct,ifp_pct,freq_are\n");
  struct Split {
    double fp, ef;
  };
  for (Split split : {Split{0.10, 0.60}, Split{0.25, 0.50}, Split{0.40, 0.40},
                      Split{0.50, 0.25}, Split{0.25, 0.25}}) {
    DaVinciConfig config =
        DaVinciConfig::FromMemorySplit(kBytes, split.fp, split.ef, 47);
    DaVinciSketch sketch(config);
    for (uint32_t key : trace.keys) sketch.Insert(key, 1);
    std::printf("%.0f,%.0f,%.0f,%.5f\n", split.fp * 100, split.ef * 100,
                (1.0 - split.fp - split.ef) * 100,
                FrequencyAre(truth, sketch));
  }

  std::printf("\n# Ablation 4: zeta sign hashes (inner-join RE)\n");
  std::printf("signs,join_re\n");
  {
    Trace da = davinci::Slice(trace, 0, 2 * n / 3, "da");
    Trace db = davinci::Slice(trace, n / 3, n, "db");
    double join_truth = GroundTruth::InnerJoin(GroundTruth(da.keys),
                                               GroundTruth(db.keys));
    for (bool signs : {true, false}) {
      DaVinciConfig config = DaVinciConfig::FromMemory(kBytes, 47);
      config.use_sign_hash = signs;
      DaVinciSketch a(config), b(config);
      for (uint32_t key : da.keys) a.Insert(key, 1);
      for (uint32_t key : db.keys) b.Insert(key, 1);
      std::printf("%s,%.5f\n", signs ? "on" : "off",
                  davinci::RelativeError(
                      join_truth, DaVinciSketch::InnerProduct(a, b)));
    }
  }

  std::printf("\n# Ablation 5: decode cross-validation under IFP overload\n");
  std::printf("cross_validation,decoded,spurious\n");
  {
    // Deliberately undersized IFP so peeling is stressed.
    for (bool validate : {true, false}) {
      DaVinciConfig config = DaVinciConfig::FromMemory(64 * 1024, 47);
      config.ifp_buckets_per_row = 48;  // hopelessly overloaded IFP
      config.decode_cross_validation = validate;
      DaVinciSketch sketch(config);
      for (uint32_t key : trace.keys) sketch.Insert(key, 1);
      size_t spurious = 0;
      const auto& decoded = sketch.DecodedFlows();
      for (const auto& [key, count] : decoded) {
        (void)count;
        if (truth.frequencies().find(key) == truth.frequencies().end()) {
          ++spurious;
        }
      }
      std::printf("%s,%zu,%zu\n", validate ? "on" : "off", decoded.size(),
                  spurious);
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, trace.keys, 600 * 1024, 7);
  return 0;
}
