// Dynamic-geometry bench (DESIGN.md §12): resize latency + autotune
// accuracy under drift.
//
//   1. resizes_per_s_carry / resize_carry_ms: grow FP+IFP 2x with the EF
//      tower carried verbatim (the cheap path — no flow replay of the
//      EF-resident mass).
//   2. resizes_per_s_rebuild / resize_rebuild_ms: tower change forces the
//      full SurvivingFlows replay (the expensive path).
//   3. The drift scenario from tests/workload_shift_test.cc: a static
//      FP-starved split vs the same budget driven by AutotuneController
//      at every epoch seal. Reports frequency ARE and heavy-hitter error
//      (1 - F1) for both deployments plus the improvements; CI floors
//      hh_error_improvement, so "autotune beats static under drift" is a
//      regression-gated fact, not a one-off observation.
//
// Env knobs: DAVINCI_BENCH_TRACE_LEN (default 200'000 keys for the
// latency legs), DAVINCI_BENCH_SKETCH_BYTES (default 1 MiB). The drift
// leg is fixed-shape so its accuracy numbers stay comparable to the
// committed baseline. Output: results/BENCH_autotune.json.

#include <cstdio>
#include <cstdlib>
#include <unordered_map>
#include <vector>

#include "bench_common.h"
#include "core/autotune.h"
#include "core/config.h"
#include "core/davinci_sketch.h"
#include "obs/health.h"
#include "workload/trace.h"

namespace davinci::bench {
namespace {

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  long long value = std::atoll(env);
  return value > 0 ? static_cast<size_t>(value) : fallback;
}

// The drift workload of tests/workload_shift_test.cc: recurring size-1
// mice every epoch, plus a flash crowd of uniform heavy flows from epoch
// 3 on (new flows each epoch = churn).
std::vector<uint32_t> EpochKeys(int epoch, uint64_t seed) {
  std::vector<uint32_t> keys =
      BuildSkewedTrace("spray", 2000, 2000, 0.0, seed).keys;
  if (epoch >= 3) {
    std::vector<uint32_t> crowd =
        BuildSkewedTrace("crowd" + std::to_string(epoch), 400 * 100, 400, 0.0,
                         seed + 100 + static_cast<uint64_t>(epoch))
            .keys;
    keys.insert(keys.end(), crowd.begin(), crowd.end());
  }
  return keys;
}

double FrequencyAre(const std::unordered_map<uint32_t, int64_t>& truth,
                    const DaVinciSketch& sketch) {
  double sum = 0;
  for (const auto& [key, count] : truth) {
    sum += std::abs(static_cast<double>(sketch.Query(key) - count)) /
           static_cast<double>(count);
  }
  return sum / static_cast<double>(truth.size());
}

std::vector<std::pair<uint32_t, int64_t>> ExactHeavy(
    const std::unordered_map<uint32_t, int64_t>& truth, int64_t threshold) {
  std::vector<std::pair<uint32_t, int64_t>> heavy;
  for (const auto& [key, count] : truth) {
    if (count > threshold) heavy.emplace_back(key, count);
  }
  return heavy;
}

int Run() {
  const size_t trace_len = EnvCount("DAVINCI_BENCH_TRACE_LEN", 200'000);
  const size_t sketch_bytes =
      EnvCount("DAVINCI_BENCH_SKETCH_BYTES", size_t{1} << 20);
  const uint64_t seed = 42;
  const int reps = 5;

  BenchJson json("autotune");
  json.Count("trace_len", trace_len);
  json.Count("sketch_bytes", sketch_bytes);

  // ---- resize latency: carry vs full rebuild ----
  Trace trace =
      BuildSkewedTrace("resize", trace_len, trace_len / 20, 1.05, seed);
  DaVinciConfig base = DaVinciConfig::FromMemory(sketch_bytes, seed);
  DaVinciSketch loaded(base);
  for (uint32_t key : trace.keys) loaded.Insert(key, 1);

  DaVinciConfig carry = base;  // same tower => EF carried verbatim
  carry.fp_buckets *= 2;
  carry.ifp_buckets_per_row *= 2;
  DaVinciConfig rebuild = base;  // tower change => SurvivingFlows replay
  rebuild.ef_bytes += 1024;
  for (const auto& [label, target] :
       {std::pair<const char*, const DaVinciConfig*>{"carry", &carry},
        std::pair<const char*, const DaVinciConfig*>{"rebuild", &rebuild}}) {
    double total_s = 0;
    for (int r = 0; r < reps; ++r) {
      DaVinciSketch copy(loaded);  // resize mutates: time a fresh copy
      Timer timer;
      if (!copy.Resize(*target)) {
        std::fprintf(stderr, "bench_autotune: %s resize rejected\n", label);
        return 1;
      }
      total_s += timer.ElapsedSeconds();
    }
    const double mean_s = total_s / reps;
    json.Metric(std::string("resize_") + label + "_ms", mean_s * 1e3);
    json.Metric(std::string("resizes_per_s_") + label, 1.0 / mean_s);
    std::printf("resize %s: %.3f ms (%.1f/s)\n", label, mean_s * 1e3,
                1.0 / mean_s);
  }

  // ---- drift: static split vs autotuned split on the same budget ----
  const size_t drift_bytes = 64 * 1024;
  const int epochs = 12;
  DaVinciConfig static_config =
      DaVinciConfig::FromMemorySplit(drift_bytes, 0.10, 0.40, seed);
  DaVinciSketch static_sketch(static_config);
  DaVinciSketch tuned(static_config);
  AutotuneControllerOptions options;
  options.cooldown_epochs = 1;
  options.threshold_max = 32;
  AutotuneController controller(static_config, drift_bytes, options);

  std::unordered_map<uint32_t, int64_t> truth;
  Timer drift_timer;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (uint32_t key : EpochKeys(epoch, seed)) {
      ++truth[key];
      static_sketch.Insert(key, 1);
      tuned.Insert(key, 1);
    }
    obs::HealthSnapshot health;
    tuned.CollectStats(&health);
    if (auto proposal = controller.Observe(health)) {
      if (!tuned.Resize(*proposal)) {
        std::fprintf(stderr, "bench_autotune: drift resize rejected\n");
        return 1;
      }
    }
  }
  json.Metric("drift_ingest_s", drift_timer.ElapsedSeconds());
  json.Count("autotune_proposals", controller.proposals());

  const double tuned_are = FrequencyAre(truth, tuned);
  const double static_are = FrequencyAre(truth, static_sketch);
  auto heavy = ExactHeavy(truth, 80);
  const double tuned_hh = 1.0 - HeavySetF1(tuned.HeavyHitters(80), heavy);
  const double static_hh =
      1.0 - HeavySetF1(static_sketch.HeavyHitters(80), heavy);
  json.Metric("autotune_freq_are", tuned_are);
  json.Metric("static_freq_are", static_are);
  json.Metric("freq_are_improvement", static_are - tuned_are);
  json.Metric("autotune_hh_error", tuned_hh);
  json.Metric("static_hh_error", static_hh);
  json.Metric("hh_error_improvement", static_hh - tuned_hh);
  std::printf(
      "drift: proposals %llu, freq are tuned %.4f static %.4f, "
      "hh error tuned %.4f static %.4f\n",
      static_cast<unsigned long long>(controller.proposals()), tuned_are,
      static_are, tuned_hh, static_hh);

  obs::HealthSnapshot snapshot;
  tuned.CollectStats(&snapshot);
  json.Snapshot(snapshot);
  return 0;
}

}  // namespace
}  // namespace davinci::bench

int main() { return davinci::bench::Run(); }
