// Figures 4d / 5d / 6d: cardinality estimation RE vs memory.
// Comparators: UnivMon, Elastic, FCM, MRAC vs DaVinci.

#include <cstdio>

#include "baselines/cardinality_sketches.h"
#include "baselines/elastic_sketch.h"
#include "baselines/hll.h"
#include "baselines/fcm_sketch.h"
#include "baselines/mrac.h"
#include "baselines/univmon.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig_cardinality");
  std::printf("# Fig 4d/5d/6d: cardinality estimation RE (scale=%.2f)\n",
              scale);
  std::printf("dataset,memory_kb,algorithm,re\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    double truth = static_cast<double>(dataset.truth.cardinality());
    for (size_t kb : davinci::bench::MemorySweepKb()) {
      size_t bytes = kb * 1024;
      auto report = [&](const char* name, double estimate) {
        std::printf("%s,%zu,%s,%.6f\n", dataset.trace.name.c_str(), kb, name,
                    davinci::RelativeError(truth, estimate));
      };
      {
        davinci::DaVinciSketch s(bytes, 17);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("Ours", s.EstimateCardinality());
      }
      {
        davinci::UnivMon s(bytes, 8, 17);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("UnivMon", s.EstimateCardinality());
      }
      {
        davinci::ElasticSketch s(bytes, 17);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("Elastic", s.EstimateCardinality());
      }
      {
        davinci::FcmSketch s(bytes, 17);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("FCM", s.EstimateCardinality());
      }
      {
        davinci::Mrac s(bytes, 17);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("MRAC", s.EstimateCardinality());
      }
      {
        // Dedicated cardinality structures need far fewer bytes; give
        // them 16 KB (a precision-14 HLL) to show the trade-off.
        davinci::HyperLogLog s(14, 17);
        for (uint32_t key : dataset.trace.keys) s.Insert(key);
        report("HLL-16KB", s.EstimateCardinality());
      }
      {
        // PCSA and LogLog need load factors well above 1 per register;
        // size them small so the classical operating regime holds.
        davinci::Pcsa s(512, 17);
        for (uint32_t key : dataset.trace.keys) s.Insert(key);
        report("PCSA-2KB", s.EstimateCardinality());
      }
      {
        davinci::LogLog s(10, 17);
        for (uint32_t key : dataset.trace.keys) s.Insert(key);
        report("LogLog-1KB", s.EstimateCardinality());
      }
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
