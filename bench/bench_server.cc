// Loadgen for the multi-tenant sketch server (docs/SERVER.md).
//
// Starts an in-process SketchServer on an ephemeral loopback port, creates
// a fixed fleet of tenants, then measures three things end to end — socket,
// framing, dispatch, and sketch included:
//
//   1. server_ingest_mops      batched wire ingest throughput, one client
//                              streaming kInsertBatch frames round-robin
//                              across the fleet.
//   2. mixed_query_p99_ns      per-op latency of the query mix (point,
//                              batch, heavy hitters, cardinality, entropy,
//                              cross-tenant union) while a background
//                              writer keeps ingesting. Also exported as the
//                              higher-is-better mixed_query_p99_kops
//                              (1e6 / p99_ns) so the regression gate's
//                              floor semantics apply.
//   3. rss_mib                 resident set at the fixed tenant count,
//                              plus rss_headroom_mib (budget − rss,
//                              higher is better) for the floor gate.
//   4. wire_bytes_per_op       request+response frame bytes per ingest
//                              batch, and checkpoint_write_ms /
//                              checkpoint_bytes_total / _mibps for the
//                              DVCK v2 (compressed-body) checkpoint pass
//                              over the whole fleet.
//
// Env knobs: DAVINCI_BENCH_TENANTS (default 8), DAVINCI_BENCH_TRACE_LEN
// (default 2'000'000 keys total), DAVINCI_BENCH_MIXED_QUERIES (default
// 4000). Output: results/BENCH_server.json via the shared BenchJson
// plumbing (CI gates it with scripts/check_bench_regression.py).

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_common.h"
#include "server/client.h"
#include "server/server.h"
#include "workload/trace.h"

namespace davinci::bench {
namespace {

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  long long value = std::atoll(env);
  return value > 0 ? static_cast<size_t>(value) : fallback;
}

// VmRSS from /proc/self/status, in MiB; 0.0 when unavailable.
double ResidentSetMib() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      long long kb = 0;
      std::sscanf(line.c_str(), "VmRSS: %lld kB", &kb);
      return static_cast<double>(kb) / 1024.0;
    }
  }
  return 0.0;
}

std::string TenantName(size_t i) { return "bench" + std::to_string(i); }

int Run() {
  const size_t tenants = EnvCount("DAVINCI_BENCH_TENANTS", 8);
  const size_t trace_len = EnvCount("DAVINCI_BENCH_TRACE_LEN", 2'000'000);
  const size_t mixed_queries = EnvCount("DAVINCI_BENCH_MIXED_QUERIES", 4000);
  const size_t batch = 4096;
  const uint64_t seed = 42;

  // Persistent registry so the checkpoint-cost phase has somewhere to
  // write its DVCK v2 (compressed-body) files.
  namespace fs = std::filesystem;
  const fs::path ckpt_dir =
      fs::temp_directory_path() /
      ("bench_server_ckpt_" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(ckpt_dir, ec);

  server::ServerOptions options;
  options.workers = 3;
  options.checkpoint_dir = ckpt_dir.string();
  server::SketchServer server(options);
  if (!server.Start()) {
    std::fprintf(stderr, "bench_server: server failed to start\n");
    return 1;
  }

  server::Client admin;
  if (!admin.Connect(server.port())) {
    std::fprintf(stderr, "bench_server: connect failed\n");
    return 1;
  }
  for (size_t i = 0; i < tenants; ++i) {
    // Shared seed keeps every pair union-compatible for the query mix.
    if (admin.CreateTenant(TenantName(i), 4, 1 << 20, seed) !=
        server::StatusCode::kOk) {
      std::fprintf(stderr, "bench_server: create tenant failed\n");
      return 1;
    }
  }

  Trace trace = BuildSkewedTrace("server", trace_len, trace_len / 20, 1.1,
                                 seed);

  BenchJson json("server");
  json.Count("tenants", tenants);
  json.Count("trace_len", trace.keys.size());
  json.Count("batch_keys", batch);
  json.Count("server_workers", options.workers);
  json.Count("hardware_threads", std::thread::hardware_concurrency());

  // ---- phase 1: batched wire ingest, round-robin over the fleet ----
  const std::vector<int64_t> ones(batch, 1);
  {
    Timer timer;
    size_t tenant = 0;
    uint64_t wire_bytes = 0;
    size_t ops = 0;
    for (size_t off = 0; off < trace.keys.size(); off += batch) {
      size_t n = std::min(batch, trace.keys.size() - off);
      std::string body = server::Client::InsertBatchRequest(
          TenantName(tenant),
          std::span<const uint32_t>(trace.keys.data() + off, n),
          std::span<const int64_t>(ones.data(), n));
      std::string response;
      if (!admin.Call(body, &response) ||
          server::Client::ParseStatus(response) != server::StatusCode::kOk) {
        std::fprintf(stderr, "bench_server: wire ingest failed\n");
        return 1;
      }
      // Frame overhead is one u32 length prefix each way.
      wire_bytes += body.size() + 4 + response.size() + 4;
      ++ops;
      tenant = (tenant + 1) % tenants;
    }
    double mops = ThroughputMpps(trace.keys.size(), timer.ElapsedSeconds());
    json.Metric("server_ingest_mops", mops);
    json.Count("ingest_wire_bytes", wire_bytes);
    json.Metric("wire_bytes_per_op",
                ops > 0 ? static_cast<double>(wire_bytes) /
                              static_cast<double>(ops)
                        : 0.0);
    std::printf("ingest: %zu keys across %zu tenants at %.3f Mops "
                "(%.0f wire B/op)\n",
                trace.keys.size(), tenants, mops,
                ops > 0 ? static_cast<double>(wire_bytes) /
                              static_cast<double>(ops)
                        : 0.0);
  }

  // ---- phase 1.5: checkpoint write cost (DVCK v2 compressed bodies) ----
  {
    Timer timer;
    size_t written_files = 0;
    for (size_t i = 0; i < tenants; ++i) {
      bool written = false;
      if (admin.Checkpoint(TenantName(i), &written) !=
          server::StatusCode::kOk) {
        std::fprintf(stderr, "bench_server: checkpoint failed\n");
        return 1;
      }
      if (written) ++written_files;
    }
    double seconds = timer.ElapsedSeconds();
    uint64_t ckpt_bytes = 0;
    for (const auto& entry : fs::directory_iterator(ckpt_dir, ec)) {
      if (entry.is_regular_file(ec)) {
        ckpt_bytes += entry.file_size(ec);
      }
    }
    json.Count("checkpoint_files", written_files);
    json.Count("checkpoint_bytes_total", ckpt_bytes);
    json.Metric("checkpoint_write_ms", seconds * 1e3);
    json.Metric("checkpoint_write_mibps",
                seconds > 0.0
                    ? static_cast<double>(ckpt_bytes) / (1 << 20) / seconds
                    : 0.0);
    std::printf("checkpoint: %zu files, %" PRIu64 " B in %.1f ms\n",
                written_files, ckpt_bytes, seconds * 1e3);
  }

  // ---- phase 2: query mix under concurrent ingest ----
  std::atomic<bool> stop{false};
  std::thread writer([&server, &trace, &ones, tenants, &stop] {
    server::Client client;
    if (!client.Connect(server.port())) return;
    size_t off = 0, tenant = 0;
    const size_t batch_keys = ones.size();
    while (!stop.load(std::memory_order_relaxed)) {
      size_t n = std::min(batch_keys, trace.keys.size() - off);
      client.InsertBatch(
          TenantName(tenant),
          std::span<const uint32_t>(trace.keys.data() + off, n),
          std::span<const int64_t>(ones.data(), n));
      off = (off + n) % trace.keys.size();
      tenant = (tenant + 1) % tenants;
    }
  });

  obs::LatencyHistogram mixed;
  std::vector<uint32_t> probe(trace.keys.begin(),
                              trace.keys.begin() +
                                  std::min<size_t>(64, trace.keys.size()));
  bool mixed_ok = true;
  Timer mixed_timer;
  for (size_t i = 0; i < mixed_queries && mixed_ok; ++i) {
    const std::string a = TenantName(i % tenants);
    const std::string b = TenantName((i + 1) % tenants);
    server::StatusCode status = server::StatusCode::kOk;
    obs::ScopedLatencyTimer op_timer(&mixed);
    switch (i % 6) {
      case 0: {
        int64_t count = 0;
        status = admin.Query(a, probe[i % probe.size()], &count);
        break;
      }
      case 1: {
        std::vector<int64_t> counts;
        status = admin.QueryBatch(a, probe, &counts);
        break;
      }
      case 2: {
        std::vector<std::pair<uint32_t, int64_t>> hitters;
        status = admin.HeavyHitters(a, 1000, &hitters);
        break;
      }
      case 3: {
        double value = 0;
        status = admin.Cardinality(a, &value);
        break;
      }
      case 4: {
        double value = 0;
        status = admin.Entropy(a, &value);
        break;
      }
      default: {
        double value = 0;
        status = admin.UnionCardinality(a, b, &value);
        break;
      }
    }
    mixed_ok = status == server::StatusCode::kOk;
  }
  double mixed_seconds = mixed_timer.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  if (!mixed_ok) {
    std::fprintf(stderr, "bench_server: mixed query phase failed\n");
    return 1;
  }

  json.Histogram("mixed_query", mixed);
  uint64_t p99_ns = mixed.PercentileNanos(0.99);
  // Higher-is-better alias so check_bench_regression floors can gate p99.
  json.Metric("mixed_query_p99_kops",
              p99_ns > 0 ? 1e6 / static_cast<double>(p99_ns) : 0.0);
  json.Metric("mixed_query_rate_kqps",
              mixed_seconds > 0.0
                  ? static_cast<double>(mixed_queries) / mixed_seconds / 1e3
                  : 0.0);
  std::printf("mixed load: %zu queries, p99 %" PRIu64 " ns\n", mixed_queries,
              p99_ns);

  // ---- phase 3: resident set at the fixed tenant count ----
  const double rss_budget_mib = 512.0;
  double rss = ResidentSetMib();
  json.Metric("rss_mib", rss);
  json.Metric("rss_headroom_mib", std::max(0.0, rss_budget_mib - rss));
  std::printf("rss: %.1f MiB at %zu tenants (budget %.0f MiB)\n", rss,
              tenants, rss_budget_mib);

  server.Stop();
  fs::remove_all(ckpt_dir, ec);
  json.Write();
  return 0;
}

}  // namespace
}  // namespace davinci::bench

int main() { return davinci::bench::Run(); }
