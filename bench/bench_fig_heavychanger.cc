// Figures 4c / 5c / 6c: heavy-changer detection F1 vs memory.
// Two consecutive windows (first/second half of the trace); elements whose
// frequency changes by more than δ ≈ 0.01% of the packets are heavy
// changers. Baselines detect changers by differencing two per-window
// sketches over their candidate keys; DaVinci subtracts the sketches
// natively.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <unordered_set>

#include "baselines/coco_sketch.h"
#include "baselines/count_heap.h"
#include "baselines/elastic_sketch.h"
#include "baselines/fcm_sketch.h"
#include "baselines/hashpipe.h"
#include "baselines/sketch_interface.h"
#include "baselines/deltoid.h"
#include "baselines/mv_sketch.h"
#include "baselines/univmon.h"
#include "bench_common.h"
#include "core/extended_queries.h"

namespace {

using davinci::FrequencySketch;
using davinci::HeavyHitterSketch;

struct Candidate {
  std::unique_ptr<FrequencySketch> sketch;
  HeavyHitterSketch* heavy = nullptr;
};

Candidate Make(const std::string& name, size_t bytes, uint64_t seed) {
  Candidate c;
  auto wrap = [&c](auto s) {
    c.heavy = s.get();
    c.sketch = std::move(s);
  };
  if (name == "Elastic") {
    wrap(std::make_unique<davinci::ElasticSketch>(bytes, seed));
  } else if (name == "Coco") {
    wrap(std::make_unique<davinci::CocoSketch>(bytes, 2, seed));
  } else if (name == "FCM") {
    wrap(std::make_unique<davinci::FcmSketch>(bytes, seed));
  } else if (name == "UnivMon") {
    wrap(std::make_unique<davinci::UnivMon>(bytes, 8, seed));
  } else if (name == "CountHeap") {
    wrap(std::make_unique<davinci::CountHeap>(bytes, 3, seed));
  } else {
    wrap(std::make_unique<davinci::HashPipe>(bytes, 6, seed));
  }
  return c;
}

// Exact heavy changers between two windows.
std::vector<std::pair<uint32_t, int64_t>> TrueChangers(
    const davinci::GroundTruth& a, const davinci::GroundTruth& b,
    int64_t delta) {
  davinci::GroundTruth diff = davinci::GroundTruth::Difference(a, b);
  std::vector<std::pair<uint32_t, int64_t>> out;
  for (const auto& [key, change] : diff.frequencies()) {
    if (std::llabs(change) > delta) out.emplace_back(key, change);
  }
  return out;
}

}  // namespace

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig_heavychanger");
  std::printf("# Fig 4c/5c/6c: heavy-changer detection F1 (scale=%.2f)\n",
              scale);
  std::printf("dataset,memory_kb,algorithm,f1\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    size_t half = dataset.trace.keys.size() / 2;
    davinci::Trace w1 = davinci::Slice(dataset.trace, 0, half, "w1");
    davinci::Trace w2 = davinci::Slice(dataset.trace, half,
                                       dataset.trace.keys.size(), "w2");
    davinci::GroundTruth t1(w1.keys), t2(w2.keys);
    int64_t delta = static_cast<int64_t>(
        static_cast<double>(dataset.trace.keys.size()) * 0.0001);
    auto actual = TrueChangers(t1, t2, delta);
    if (actual.empty()) continue;

    for (size_t kb : davinci::bench::MemorySweepKb()) {
      // DaVinci: native sketch difference.
      {
        davinci::DaVinciSketch a(kb * 1024, 13), b(kb * 1024, 13);
        for (uint32_t key : w1.keys) a.Insert(key, 1);
        for (uint32_t key : w2.keys) b.Insert(key, 1);
        double f1 =
            davinci::bench::HeavySetF1(a.HeavyChangers(b, delta), actual);
        std::printf("%s,%zu,Ours,%.4f\n", dataset.trace.name.c_str(), kb, f1);
      }
      // MV-Sketch and Deltoid: native invertible change detection.
      {
        davinci::MvSketch a(kb * 1024, 4, 13), b(kb * 1024, 4, 13);
        for (uint32_t key : w1.keys) a.Insert(key, 1);
        for (uint32_t key : w2.keys) b.Insert(key, 1);
        double f1 = davinci::bench::HeavySetF1(
            davinci::MvSketch::HeavyChangers(a, b, delta), actual);
        std::printf("%s,%zu,MV,%.4f\n", dataset.trace.name.c_str(), kb, f1);
      }
      {
        davinci::Deltoid a(kb * 1024, 3, 13), b(kb * 1024, 3, 13);
        for (uint32_t key : w1.keys) a.Insert(key, 1);
        for (uint32_t key : w2.keys) b.Insert(key, 1);
        a.Subtract(b);
        double f1 =
            davinci::bench::HeavySetF1(a.HeavyChangers(delta), actual);
        std::printf("%s,%zu,Deltoid,%.4f\n", dataset.trace.name.c_str(), kb,
                    f1);
      }
      // Baselines: per-window sketches, candidates from both windows' heavy
      // sets, change = |q1 − q2|.
      for (const std::string name :  // NOLINT: elements are char literals
           {"Elastic", "Coco", "FCM", "UnivMon", "CountHeap", "HashPipe"}) {
        Candidate a = Make(name, kb * 1024, 13);
        Candidate b = Make(name, kb * 1024, 13);
        for (uint32_t key : w1.keys) a.sketch->Insert(key, 1);
        for (uint32_t key : w2.keys) b.sketch->Insert(key, 1);
        std::unordered_set<uint32_t> candidates;
        for (const auto& [key, est] : a.heavy->HeavyHitters(delta / 2)) {
          candidates.insert(key);
        }
        for (const auto& [key, est] : b.heavy->HeavyHitters(delta / 2)) {
          candidates.insert(key);
        }
        std::vector<std::pair<uint32_t, int64_t>> reported;
        for (uint32_t key : candidates) {
          int64_t change = a.sketch->Query(key) - b.sketch->Query(key);
          if (std::llabs(change) > delta) reported.emplace_back(key, change);
        }
        std::printf("%s,%zu,%s,%.4f\n", dataset.trace.name.c_str(), kb,
                    name.c_str(), davinci::bench::HeavySetF1(reported, actual));
      }
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
