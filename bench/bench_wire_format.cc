// Flat vs DVSZ wire-format bench (DESIGN.md §Wire format).
//
// Builds one sketch over a zipf-1.05 insert workload — the acceptance
// workload for the compressed format — and measures:
//
//   1. compression_ratio_full   flat SaveShards bytes / DVSZ bytes for the
//                               full image (CI floors this at 4x).
//   2. encode/decode throughput for both formats, in MiB/s of FLAT image
//      bytes per second (the logical state moved, so the two formats are
//      directly comparable).
//   3. delta_bytes + compression_ratio_delta: a sealed epoch followed by a
//      small write burst, encoded as a DVSD delta vs the full flat image.
//   4. merge_tree_images_per_s: fan-in fold throughput — N exported DVSZ
//      images decoded and left-folded into a live target, the server's
//      kImportMerge inner loop without the socket.
//
// The bench doubles as a correctness gate: the compressed round trip must
// re-save to the exact flat bytes, or it exits nonzero.
//
// Env knobs: DAVINCI_BENCH_TRACE_LEN (default 1'000'000 keys),
// DAVINCI_BENCH_SKETCH_BYTES (default 1 MiB), DAVINCI_BENCH_FANIN
// (default 8 images). Output: results/BENCH_wire_format.json.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/davinci_sketch.h"
#include "workload/trace.h"

namespace davinci::bench {
namespace {

size_t EnvCount(const char* name, size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  long long value = std::atoll(env);
  return value > 0 ? static_cast<size_t>(value) : fallback;
}

std::string FlatBytes(const DaVinciSketch& sketch) {
  std::stringstream out;
  sketch.Save(out);
  return out.str();
}

int Run() {
  const size_t trace_len = EnvCount("DAVINCI_BENCH_TRACE_LEN", 1'000'000);
  const size_t sketch_bytes =
      EnvCount("DAVINCI_BENCH_SKETCH_BYTES", size_t{1} << 20);
  const size_t fanin = EnvCount("DAVINCI_BENCH_FANIN", 8);
  const uint64_t seed = 42;
  const int reps = 5;

  Trace trace = BuildSkewedTrace("wire", trace_len, trace_len / 20, 1.05,
                                 seed);
  DaVinciSketch sketch(sketch_bytes, seed);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);

  BenchJson json("wire_format");
  json.Count("trace_len", trace.keys.size());
  json.Count("sketch_bytes", sketch_bytes);
  json.Count("fanin", fanin);

  // ---- full-image sizes + encode/decode throughput ----
  std::string flat = FlatBytes(sketch);
  std::string compressed;
  {
    std::stringstream out;
    sketch.Save(out, SketchFormat::kCompressed);
    compressed = out.str();
  }
  const double flat_mib = static_cast<double>(flat.size()) / (1 << 20);
  const double ratio = static_cast<double>(flat.size()) /
                       static_cast<double>(compressed.size());
  json.Count("flat_bytes", flat.size());
  json.Count("dvsz_bytes", compressed.size());
  json.Metric("compression_ratio_full", ratio);
  std::printf("full image: flat %zu B, dvsz %zu B, ratio %.2fx\n",
              flat.size(), compressed.size(), ratio);

  {
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      std::stringstream out;
      sketch.Save(out, SketchFormat::kCompressed);
    }
    json.Metric("encode_dvsz_mibps", reps * flat_mib / timer.ElapsedSeconds());
  }
  {
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      std::stringstream out;
      sketch.Save(out);
    }
    json.Metric("encode_flat_mibps", reps * flat_mib / timer.ElapsedSeconds());
  }
  {
    Timer timer;
    for (int r = 0; r < reps; ++r) {
      std::stringstream in(compressed);
      DaVinciSketch loaded(1024, 0);
      if (!DaVinciSketch::Load(in, &loaded)) {
        std::fprintf(stderr, "bench_wire_format: dvsz load failed\n");
        return 1;
      }
    }
    json.Metric("decode_dvsz_mibps", reps * flat_mib / timer.ElapsedSeconds());
  }

  // Correctness gate: the compressed round trip must re-save bit-identical.
  {
    std::stringstream in(compressed);
    DaVinciSketch loaded(1024, 0);
    if (!DaVinciSketch::Load(in, &loaded) || FlatBytes(loaded) != flat) {
      std::fprintf(stderr,
                   "bench_wire_format: compressed round trip diverged\n");
      return 1;
    }
  }

  // ---- delta image: seal, small burst, encode only the touched cells ----
  {
    DaVinciSketch delta_sketch(sketch);
    delta_sketch.SealDelta();
    const size_t burst = std::max<size_t>(1, trace.keys.size() / 100);
    for (size_t i = 0; i < burst; ++i) {
      delta_sketch.Insert(trace.keys[i], 1);
    }
    std::stringstream delta;
    delta_sketch.SaveDelta(delta);
    json.Count("delta_burst_keys", burst);
    json.Count("delta_bytes", delta.str().size());
    json.Metric("compression_ratio_delta",
                static_cast<double>(flat.size()) /
                    static_cast<double>(delta.str().size()));
    std::printf("delta: %zu keys touched -> %zu B (full flat %zu B)\n",
                burst, delta.str().size(), flat.size());
  }

  // ---- merge-tree fold throughput ----
  {
    // N leaf sketches over disjoint trace segments, exported as DVSZ.
    std::vector<std::string> images;
    const size_t seg = trace.keys.size() / fanin;
    for (size_t i = 0; i < fanin; ++i) {
      DaVinciSketch leaf(sketch_bytes, seed);
      for (size_t k = i * seg; k < (i + 1) * seg; ++k) {
        leaf.Insert(trace.keys[k], 1);
      }
      std::stringstream out;
      leaf.Save(out, SketchFormat::kCompressed);
      images.push_back(out.str());
    }
    DaVinciSketch target(sketch_bytes, seed);
    Timer timer;
    for (const std::string& image : images) {
      std::stringstream in(image);
      DaVinciSketch staged(1024, 0);
      if (!DaVinciSketch::Load(in, &staged)) {
        std::fprintf(stderr, "bench_wire_format: fold image load failed\n");
        return 1;
      }
      target.Merge(staged);
    }
    double seconds = timer.ElapsedSeconds();
    json.Metric("merge_tree_images_per_s",
                seconds > 0.0 ? static_cast<double>(fanin) / seconds : 0.0);
    std::printf("fold: %zu images in %.3f s\n", fanin, seconds);
  }

  json.Write();
  return 0;
}

}  // namespace
}  // namespace davinci::bench

int main() { return davinci::bench::Run(); }
