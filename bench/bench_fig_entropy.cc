// Figures 4f / 5f / 6f: entropy estimation relative error vs memory.
// Comparators: UnivMon, Elastic, FCM, MRAC vs DaVinci.

#include <cstdio>

#include "baselines/elastic_sketch.h"
#include "estimators/ams_entropy.h"
#include "baselines/fcm_sketch.h"
#include "baselines/mrac.h"
#include "baselines/univmon.h"
#include "bench_common.h"
#include "core/davinci_sketch.h"

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig_entropy");
  std::printf("# Fig 4f/5f/6f: entropy estimation RE (scale=%.2f)\n", scale);
  std::printf("dataset,memory_kb,algorithm,re\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    double truth = dataset.truth.Entropy();
    for (size_t kb : davinci::bench::MemorySweepKb()) {
      size_t bytes = kb * 1024;
      auto report = [&](const char* name, double estimate) {
        std::printf("%s,%zu,%s,%.6f\n", dataset.trace.name.c_str(), kb, name,
                    davinci::RelativeError(truth, estimate));
      };
      {
        davinci::DaVinciSketch s(bytes, 23);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("Ours", s.EstimateEntropy());
      }
      {
        davinci::UnivMon s(bytes, 8, 23);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("UnivMon", s.EstimateEntropy());
      }
      {
        davinci::ElasticSketch s(bytes, 23);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("Elastic", s.EstimateEntropy());
      }
      {
        davinci::FcmSketch s(bytes, 23);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("FCM", s.EstimateEntropy());
      }
      {
        davinci::Mrac s(bytes, 23);
        for (uint32_t key : dataset.trace.keys) s.Insert(key, 1);
        report("MRAC", s.EstimateEntropy());
      }
      {
        // 1024 samples ≈ 16 KB: the sampling-based streaming estimator.
        davinci::AmsEntropyEstimator s(1024, 23);
        for (uint32_t key : dataset.trace.keys) s.Insert(key);
        report("AMS-16KB", s.EstimateEntropy());
      }
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
