// Figure 1: the motivation plot — CDF of flow sizes, showing that a small
// number of large flows dominates the traffic (the Pareto premise behind
// the frequent/infrequent split).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("fig1_cdf");
  std::printf("# Fig 1: CDF of flow sizes (scale=%.2f)\n", scale);
  std::printf("dataset,flow_percentile,traffic_share\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    std::vector<int64_t> sizes;
    sizes.reserve(dataset.truth.cardinality());
    double total = 0;
    for (const auto& [key, f] : dataset.truth.frequencies()) {
      (void)key;
      sizes.push_back(f);
      total += static_cast<double>(f);
    }
    std::sort(sizes.rbegin(), sizes.rend());  // biggest flows first
    double cumulative = 0;
    size_t next_report = 0;
    const double percentiles[] = {0.001, 0.01, 0.05, 0.10, 0.25,
                                  0.50,  0.75, 0.90, 1.00};
    for (size_t i = 0; i < sizes.size(); ++i) {
      cumulative += static_cast<double>(sizes[i]);
      double flow_pct = static_cast<double>(i + 1) /
                        static_cast<double>(sizes.size());
      while (next_report < std::size(percentiles) &&
             flow_pct >= percentiles[next_report]) {
        std::printf("%s,%.3f,%.4f\n", dataset.trace.name.c_str(),
                    percentiles[next_report], cumulative / total);
        ++next_report;
      }
    }
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
