// Table II: dataset statistics (#packets, #flows, cardinality) for the
// three synthetic traces calibrated to the paper's datasets.

#include <cstdio>

#include "bench_common.h"

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  std::printf("# Table II: dataset statistics (scale=%.2f)\n", scale);
  std::printf("dataset,packets,flows,cardinality\n");
  for (const auto& dataset : davinci::bench::AllDatasets(scale)) {
    davinci::TraceStats stats = davinci::ComputeStats(dataset.trace);
    std::printf("%s,%zu,%zu,%zu\n", dataset.trace.name.c_str(), stats.packets,
                stats.flows, stats.cardinality);
  }
  return 0;
}
