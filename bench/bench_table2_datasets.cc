// Table II: dataset statistics (#packets, #flows, cardinality) for the
// three synthetic traces calibrated to the paper's datasets.

#include <cstdio>

#include "bench_common.h"

int main() {
  double scale = davinci::bench::ScaleFromEnv();
  davinci::bench::BenchJson json("table2_datasets");
  std::printf("# Table II: dataset statistics (scale=%.2f)\n", scale);
  std::printf("dataset,packets,flows,cardinality\n");
  const auto datasets = davinci::bench::AllDatasets(scale);
  for (const auto& dataset : datasets) {
    davinci::TraceStats stats = davinci::ComputeStats(dataset.trace);
    std::printf("%s,%zu,%zu,%zu\n", dataset.trace.name.c_str(), stats.packets,
                stats.flows, stats.cardinality);
  }
  davinci::bench::DaVinciObsEpilogue(json, datasets[0].trace.keys,
                                     600 * 1024, 7);
  return 0;
}
