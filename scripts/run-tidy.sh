#!/usr/bin/env bash
# Static-analysis gate over src/.
#
# Preferred path: clang-tidy with the checked-in .clang-tidy config,
# against a compile_commands.json produced by the `tidy` CMake preset.
# Fallback path (toolchains without clang-tidy, e.g. the minimal gcc
# container): a strict warning pass — g++ -fsyntax-only with
# -Wall -Wextra -Wshadow -Wconversion promoted to errors — over the same
# sources, so the gate always has teeth.
#
# Baseline mode (clang-tidy path only): findings are normalized
# (file + check + message, line numbers dropped so unrelated edits don't
# shift the ledger) and diffed against scripts/tidy_baseline.txt. Only
# NEW findings fail the gate — pre-existing debt is visible but frozen.
# After paying down debt, or when accepting a finding as permanent,
# refresh the ledger with:  scripts/run-tidy.sh --update-baseline
#
# Usage: scripts/run-tidy.sh [--update-baseline] [extra clang-tidy args...]
# Exit 0 iff no new findings.

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=scripts/tidy_baseline.txt
UPDATE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  UPDATE=1
  shift
fi

mapfile -t sources < <(find src -name '*.cc' | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run-tidy: no sources found under src/" >&2
  exit 1
fi

# Normalize a clang-tidy diagnostic stream to stable baseline keys:
#   src/core/foo.cc: warning: message text [check-name]
normalize() {
  grep -E '^[^ ]+:[0-9]+:[0-9]+: (warning|error):' \
    | sed -E "s#^$(pwd)/##; s#^([^:]+):[0-9]+:[0-9]+:#\1:#" \
    | sort -u
}

if command -v clang-tidy >/dev/null 2>&1; then
  echo "run-tidy: clang-tidy $(clang-tidy --version | grep -o 'version [0-9.]*' | head -1)"
  if [[ ! -f build-tidy/compile_commands.json ]]; then
    cmake --preset tidy >/dev/null
  fi
  raw=$(clang-tidy --quiet -p build-tidy "$@" "${sources[@]}" 2>/dev/null) || true
  current=$(normalize <<<"$raw" || true)

  if [[ $UPDATE -eq 1 ]]; then
    {
      echo "# clang-tidy findings accepted as pre-existing debt."
      echo "# Regenerate with: scripts/run-tidy.sh --update-baseline"
      [[ -n "$current" ]] && printf '%s\n' "$current"
    } > "$BASELINE"
    echo "run-tidy: baseline updated ($(grep -vc '^#' "$BASELINE" || true) entries)"
    exit 0
  fi

  baseline=$(grep -v '^#' "$BASELINE" 2>/dev/null | sort -u || true)
  new=$(comm -23 <(printf '%s\n' "$current" | sed '/^$/d') \
                 <(printf '%s\n' "$baseline" | sed '/^$/d') || true)
  fixed=$(comm -13 <(printf '%s\n' "$current" | sed '/^$/d') \
                   <(printf '%s\n' "$baseline" | sed '/^$/d') || true)
  if [[ -n "$fixed" ]]; then
    echo "run-tidy: $(wc -l <<<"$fixed") baselined finding(s) no longer fire —"
    echo "          consider scripts/run-tidy.sh --update-baseline"
  fi
  if [[ -n "$new" ]]; then
    echo "run-tidy: NEW findings (not in $BASELINE):" >&2
    printf '%s\n' "$new" >&2
    exit 1
  fi
  echo "run-tidy: clean (${#sources[@]} files, no new findings)"
else
  echo "run-tidy: clang-tidy not found; using strict g++ warning pass" >&2
  fail=0
  for f in "${sources[@]}"; do
    if ! g++ -std=c++20 -fsyntax-only -Isrc \
         -Wall -Wextra -Wshadow -Wconversion -Werror "$f"; then
      fail=1
      echo "run-tidy: FAIL $f" >&2
    fi
  done
  if [[ $fail -ne 0 ]]; then
    exit 1
  fi
  echo "run-tidy: clean (${#sources[@]} files, g++ fallback)"
fi
