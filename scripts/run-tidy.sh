#!/usr/bin/env bash
# Static-analysis gate over src/.
#
# Preferred path: clang-tidy with the checked-in .clang-tidy config,
# against a compile_commands.json produced by the `tidy` CMake preset.
# Fallback path (toolchains without clang-tidy, e.g. the minimal gcc
# container): a strict warning pass — g++ -fsyntax-only with
# -Wall -Wextra -Wshadow -Wconversion promoted to errors — over the same
# sources, so the gate always has teeth.
#
# Usage: scripts/run-tidy.sh [extra clang-tidy args...]
# Exit 0 iff every file is clean.

set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t sources < <(find src -name '*.cc' | sort)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run-tidy: no sources found under src/" >&2
  exit 1
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "run-tidy: clang-tidy $(clang-tidy --version | grep -o 'version [0-9.]*' | head -1)"
  if [[ ! -f build-tidy/compile_commands.json ]]; then
    cmake --preset tidy >/dev/null
  fi
  clang-tidy --quiet -p build-tidy "$@" "${sources[@]}"
  echo "run-tidy: clean (${#sources[@]} files)"
else
  echo "run-tidy: clang-tidy not found; using strict g++ warning pass" >&2
  fail=0
  for f in "${sources[@]}"; do
    if ! g++ -std=c++20 -fsyntax-only -Isrc \
         -Wall -Wextra -Wshadow -Wconversion -Werror "$f"; then
      fail=1
      echo "run-tidy: FAIL $f" >&2
    fi
  done
  if [[ $fail -ne 0 ]]; then
    exit 1
  fi
  echo "run-tidy: clean (${#sources[@]} files, g++ fallback)"
fi
