#!/usr/bin/env python3
"""Repo-specific lint rules the generic toolchain can't express.

Five rules, each encoding a decision documented in DESIGN.md /
docs/STATIC_ANALYSIS.md:

  raw-bucket-mod      src/core must reduce hashes to bucket indexes with
                      FastReduce (common/hash.h), never raw `%`: the
                      division stalls the probe hot path and the repo's
                      widths are not powers of two.
  store-mutation      Copy-on-write storage may only be mutated through
                      Mut() (which clones when a snapshot still shares the
                      buffers) or inside CloneStore()/constructors. A raw
                      `store_->` write anywhere else silently corrupts
                      published snapshots.
  raw-thread          All threads come from the persistent WorkerPool
                      (src/common/worker_pool.cc). Ad-hoc std::thread
                      construction reintroduces the per-query spawn cost
                      the pool exists to amortize, and escapes the pool's
                      TSA-annotated shutdown protocol.
  unseeded-random     Tests derive randomness from tests/test_seed.h so
                      failures reproduce. An argless std::random_device
                      gives every run different entropy.
  geometry-field-read Geometry is dynamic (DESIGN.md §12): a Resize can
                      change fp_buckets/fp_slots/ef_bytes/ef_level_bits/
                      ifp_rows/ifp_buckets_per_row at any epoch seal, so
                      src/ code that reads those DaVinciConfig fields
                      directly (outside src/core/config.{h,cc} and
                      constructors) risks caching a stale shape. Go
                      through the config accessors (FpBytes, TotalBytes,
                      GeometryEquals, GeometryCompatible, EfCarriesOver)
                      or the owning part's shape accessors
                      (fp_.num_buckets() etc), which always reflect the
                      live geometry.

Suppressions: inline `// davinci-lint: allow(<rule>)` on the offending
line, or an entry in scripts/lint_suppressions.txt (see its header).

Usage:
  lint_project.py [--root DIR]     lint the repo, exit 1 on findings
  lint_project.py --self-test      prove each rule still fires on a
                                   seeded violation (CI runs this first)
"""

from __future__ import annotations

import argparse
import fnmatch
import re
import sys
from pathlib import Path

# ---------------------------------------------------------------------------
# Rules. Each: (name, file predicate, line regex, extra predicate, message).

BUCKET_MOD_RE = re.compile(
    r"%\s*(?:\w*(?:width|bucket)\w*|\w+(?:\.|->)size\(\))")
STORE_MUT_RE = re.compile(
    r"(?:\+\+|--)\s*store_->"
    r"|store_->\s*\w+\s*(?:\[[^\]]*\]\s*)?(?:=[^=]|\+=|-=|\*=|/=|\|=|&=|\^=)"
    r"|store_->\s*\w+\s*\.\s*"
    r"(?:assign|resize|clear|push_back|emplace_back|insert|erase|swap)\s*\(")
RAW_THREAD_RE = re.compile(r"std::thread\s*(?:\w+\s*)?[({]|std::jthread")
RANDOM_DEVICE_RE = re.compile(r"std::random_device\s*(?:\w+\s*)?[;({]")
GEOMETRY_FIELD_RE = re.compile(
    r"(?:\.|->)\s*(?:fp_buckets|fp_slots|ef_bytes|ef_level_bits"
    r"|ifp_rows|ifp_buckets_per_row)\b")

# Functions allowed to touch store_-> directly: the CoW choke points plus
# constructors (storage is unshared until the first Snapshot).
STORE_MUT_ALLOWED_FUNCS = {"Mut", "CloneStore", "__ctor__"}

FUNC_DEF_RE = re.compile(r"^[\w:&<>*\s]*?(\w+)::(~?\w+)\s*\(")


def _in_core(path: str) -> bool:
    return path.startswith("src/core/")


def _in_cow_sources(path: str) -> bool:
    return (path.startswith(("src/core/", "src/baselines/"))
            and path.endswith((".cc", ".h")))


def _in_src(path: str) -> bool:
    return path.startswith("src/") and path != "src/common/worker_pool.cc"


def _in_tests(path: str) -> bool:
    return path.startswith("tests/")


def _in_geometry_consumers(path: str) -> bool:
    """src/ minus the accessors' own home (tests fabricate geometries)."""
    return (path.startswith("src/")
            and path not in ("src/core/config.h", "src/core/config.cc"))


def strip_noncode(line: str) -> str:
    """Drop // comments and string-literal contents (keeps the quotes)."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    return line.split("//")[0]


def enclosing_functions(lines: list[str]) -> list[str]:
    """Per-line name of the enclosing out-of-line member function.

    Heuristic (brace-free): a line matching `Class::Func(` starts function
    `Func` (or `__ctor__` when Func == Class / ~Class); the name sticks
    until the next definition. Good enough for the .cc layout this repo
    uses — one top-level definition at a time, no nested lambdas defining
    new members.
    """
    names = []
    current = ""
    for line in lines:
        match = FUNC_DEF_RE.match(line)
        if match:
            cls, func = match.group(1), match.group(2)
            current = "__ctor__" if func.lstrip("~") == cls else func
        names.append(current)
    return names


def check_file(path: str, text: str) -> list[tuple[str, int, str, str]]:
    """Returns (rule, line_number, line_text, message) findings."""
    findings = []
    lines = text.splitlines()
    funcs = enclosing_functions(lines)
    in_block_comment = False
    for i, raw in enumerate(lines, start=1):
        line = raw
        if in_block_comment:
            if "*/" in line:
                line = line.split("*/", 1)[1]
                in_block_comment = False
            else:
                continue
        if "/*" in line and "*/" not in line:
            in_block_comment = True
            line = line.split("/*")[0]
        code = strip_noncode(line)
        if not code.strip():
            continue
        if "davinci-lint: allow(" in raw:
            continue

        if _in_core(path) and BUCKET_MOD_RE.search(code):
            findings.append((
                "raw-bucket-mod", i, raw,
                "raw `%` bucket reduction in src/core — use FastReduce / "
                "BucketFastWithBase (common/hash.h)"))
        if _in_cow_sources(path) and STORE_MUT_RE.search(code):
            if funcs[i - 1] not in STORE_MUT_ALLOWED_FUNCS:
                findings.append((
                    "store-mutation", i, raw,
                    "direct store_-> mutation outside Mut()/CloneStore() "
                    "bypasses copy-on-write and corrupts live snapshots"))
        if _in_src(path) and RAW_THREAD_RE.search(code):
            findings.append((
                "raw-thread", i, raw,
                "std::thread construction outside common/worker_pool.cc — "
                "run work on the shared WorkerPool"))
        if _in_tests(path) and RANDOM_DEVICE_RE.search(code):
            findings.append((
                "unseeded-random", i, raw,
                "argless std::random_device in tests — derive the seed "
                "via tests/test_seed.h so failures reproduce"))
        if (_in_geometry_consumers(path) and GEOMETRY_FIELD_RE.search(code)
                and funcs[i - 1] != "__ctor__"):
            findings.append((
                "geometry-field-read", i, raw,
                "direct geometry-field read outside config/geometry "
                "accessors — geometry changes at runtime (DESIGN.md §12); "
                "use the DaVinciConfig accessors or the owning part's "
                "shape accessors"))
    return findings


# ---------------------------------------------------------------------------
# Suppression file: `<rule> <path-glob> <substring>` per line, # comments.

def load_suppressions(path: Path) -> list[tuple[str, str, str]]:
    entries = []
    if not path.exists():
        return entries
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) != 3:
            print(f"lint_suppressions.txt: malformed entry: {raw!r}",
                  file=sys.stderr)
            sys.exit(2)
        entries.append((parts[0], parts[1], parts[2]))
    return entries


def suppressed(entry_list, rule: str, path: str, line_text: str) -> bool:
    return any(
        rule == s_rule and fnmatch.fnmatch(path, s_glob)
        and s_sub in line_text
        for s_rule, s_glob, s_sub in entry_list)


# ---------------------------------------------------------------------------

def lint_tree(root: Path) -> int:
    suppressions = load_suppressions(root / "scripts" / "lint_suppressions.txt")
    count = 0
    for sub in ("src", "tests"):
        base = root / sub
        if not base.is_dir():
            continue
        for file in sorted(base.rglob("*")):
            if file.suffix not in (".cc", ".h", ".cpp", ".hpp"):
                continue
            rel = file.relative_to(root).as_posix()
            for rule, lineno, text, message in check_file(
                    rel, file.read_text(errors="replace")):
                if suppressed(suppressions, rule, rel, text):
                    continue
                print(f"{rel}:{lineno}: [{rule}] {message}\n    {text.strip()}")
                count += 1
    if count:
        print(f"\n{count} finding(s). Suppress intentional ones with "
              "`// davinci-lint: allow(<rule>)` or scripts/lint_suppressions.txt.")
    return 1 if count else 0


# ---------------------------------------------------------------------------
# Self-test: every rule must fire on a seeded violation and stay quiet on
# the idiomatic spelling. Run by ctest (lint_selftest) so a refactor of
# the regexes can't silently lobotomize the gate.

SELF_TEST_CASES = [
    # (rule, path, snippet, should_fire)
    ("raw-bucket-mod", "src/core/foo.cc",
     "size_t index = base_hash % fp_buckets_;", True),
    ("raw-bucket-mod", "src/core/foo.cc",
     "size_t index = hash % counters.size();", True),
    ("raw-bucket-mod", "src/core/foo.cc",
     "size_t index = FastReduce(base_hash, fp_buckets_);", False),
    ("raw-bucket-mod", "src/common/modular.h",
     "uint64_t r = value % kFermatPrime;", False),  # mod-p is not a bucket
    ("store-mutation", "src/core/foo.cc",
     "void Foo::Insert() {\n  store_->counts[i] += count;\n}", True),
    ("store-mutation", "src/core/foo.cc",
     "void Foo::Insert() {\n  store_->ids.assign(n, 0);\n}", True),
    ("store-mutation", "src/core/foo.cc",
     "Foo::Foo() {\n  store_->ids.assign(n, 0);\n}", False),  # ctor OK
    ("store-mutation", "src/core/foo.cc",
     "void Foo::Insert() {\n  Storage& st = Mut();\n  st.counts[i] = 1;\n}",
     False),
    ("store-mutation", "src/core/foo.cc",
     "int64_t Foo::Query() const {\n  return store_->counts[i] == 0;\n}",
     False),  # read, not write
    ("raw-thread", "src/core/foo.cc",
     "std::thread worker([] { Work(); });", True),
    ("raw-thread", "src/core/foo.cc",
     "size_t n = std::thread::hardware_concurrency();", False),
    ("raw-thread", "src/common/worker_pool.cc",
     "workers_.emplace_back(std::thread([] { Loop(); }));", False),
    ("unseeded-random", "tests/foo_test.cc",
     "std::random_device rd;", True),
    ("unseeded-random", "tests/foo_test.cc",
     "std::mt19937_64 rng(davinci::TestSeed());", False),
    ("unseeded-random", "src/core/foo.cc",
     "std::random_device rd;", False),  # rule scoped to tests/
    ("raw-bucket-mod", "src/core/foo.cc",
     "// a comment mentioning hash % buckets is fine", False),
    ("raw-bucket-mod", "src/core/foo.cc",
     "size_t i = h % width_;  // davinci-lint: allow(raw-bucket-mod)",
     False),
    ("geometry-field-read", "src/core/foo.cc",
     "void Foo::Rebuild() {\n  size_t n = config_.fp_buckets;\n}", True),
    ("geometry-field-read", "src/server/foo.cc",
     "void Foo::Plan() {\n  rows_ = config->ifp_rows;\n}", True),
    ("geometry-field-read", "src/core/foo.cc",
     "Foo::Foo(const DaVinciConfig& c)\n"
     "    : fp_(c.fp_buckets, c.fp_slots) {}", False),  # ctor builds parts
    ("geometry-field-read", "src/core/config.cc",
     "size_t DaVinciConfig::FpBytes() const {\n"
     "  return fp_buckets * BucketBytes();\n}", False),  # accessors' home
    ("geometry-field-read", "tests/foo_test.cc",
     "config.fp_buckets = 1024;", False),  # tests fabricate geometries
    ("geometry-field-read", "src/core/foo.cc",
     "size_t n = config_.FpBytes();", False),  # accessor, not a raw field
]


def self_test() -> int:
    failures = 0
    for rule, path, snippet, should_fire in SELF_TEST_CASES:
        hits = [f for f in check_file(path, snippet) if f[0] == rule]
        fired = bool(hits)
        if fired != should_fire:
            failures += 1
            verb = "did not fire" if should_fire else "fired spuriously"
            print(f"SELF-TEST FAIL [{rule}] {verb} on:\n    {snippet}")
    if failures:
        print(f"\n{failures} self-test failure(s)")
        return 1
    print(f"self-test OK: {len(SELF_TEST_CASES)} cases")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule fires on a seeded violation")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    root = Path(args.root) if args.root else Path(__file__).resolve().parent.parent
    return lint_tree(root)


if __name__ == "__main__":
    sys.exit(main())
