#!/usr/bin/env python3
"""Gate insert throughput against a committed BENCH_*.json baseline.

Compares one or more numeric keys between a baseline JSON (typically
results/BENCH_insert_throughput.json) and a freshly produced one, and
fails when any compared value dropped by more than --max-regression
(default 25%). Higher-is-better semantics: values above baseline always
pass.

--min KEY=VALUE adds an absolute floor on the CURRENT file, independent
of the baseline — for behavioral counters that must simply be non-zero
(e.g. window_merge_reuse_hits, proving the epoch engine served window
queries from its memoized merges) rather than within a tolerance band.

--min-multicore KEY=VALUE is the same floor but applied only when the
CURRENT file's `hardware_threads` count is at least --multicore-threads
(default 4). This is how parallel-scaling gates stay honest: a speedup
like decode_speedup_4t legitimately sits at ~1.0 on a single-core host
(the decoder falls back to the sequential scan rather than timeslicing
four workers on one core), so the floor only binds where the hardware
can actually deliver the win. A current file without `hardware_threads`
never triggers these floors.

Usage:
    scripts/check_bench_regression.py BASELINE CURRENT \
        [--key insert_batch_mops] [--max-regression 0.25] \
        [--min window_merge_reuse_hits=1] \
        [--min-multicore decode_speedup_4t=1.2] [--multicore-threads 4]

`--self-test` runs the gate against synthetic JSON pairs and proves each
trigger still fires (and each pass still passes); ctest registers it so
the gate's own behavior is covered by the local test run.

Only the standard library is used, so the script runs anywhere python3
does (the CI bench-regression job calls it on the runner).
"""

import argparse
import json
import sys
import tempfile


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "--self-test":
        return self_test()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--key",
        action="append",
        dest="keys",
        help="numeric key to compare (repeatable; default insert_batch_mops)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional drop vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--min",
        action="append",
        dest="floors",
        metavar="KEY=VALUE",
        help="absolute floor on a CURRENT key (repeatable)",
    )
    parser.add_argument(
        "--min-multicore",
        action="append",
        dest="multicore_floors",
        metavar="KEY=VALUE",
        help=(
            "absolute floor applied only when the CURRENT file's "
            "hardware_threads >= --multicore-threads (repeatable)"
        ),
    )
    parser.add_argument(
        "--multicore-threads",
        type=int,
        default=4,
        help="hardware_threads needed to arm --min-multicore floors "
        "(default 4)",
    )
    args = parser.parse_args(argv)
    keys = args.keys or ["insert_batch_mops"]

    def parse_floors(specs, flag):
        floors = []
        for spec in specs or []:
            key, sep, value = spec.partition("=")
            if not sep:
                parser.error(f"{flag} expects KEY=VALUE, got {spec!r}")
            floors.append((key, float(value)))
        return floors

    floors = parse_floors(args.floors, "--min")
    multicore_floors = parse_floors(args.multicore_floors, "--min-multicore")

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    failures = []
    for key in keys:
        if key not in baseline:
            print(f"SKIP {key}: not in baseline {args.baseline}")
            continue
        if key not in current:
            failures.append(f"{key}: missing from {args.current}")
            continue
        base = float(baseline[key])
        now = float(current[key])
        floor = base * (1.0 - args.max_regression)
        verdict = "OK" if now >= floor else "REGRESSION"
        print(
            f"{verdict} {key}: baseline={base:.3f} current={now:.3f} "
            f"floor={floor:.3f}"
        )
        if now < floor:
            failures.append(
                f"{key}: {now:.3f} < {floor:.3f} "
                f"({args.max_regression:.0%} below baseline {base:.3f})"
            )

    if multicore_floors:
        hardware_threads = int(current.get("hardware_threads", 0))
        if hardware_threads >= args.multicore_threads:
            floors = floors + multicore_floors
        else:
            for key, floor in multicore_floors:
                print(
                    f"SKIP {key} (multicore floor {floor:.3f}): "
                    f"hardware_threads={hardware_threads} < "
                    f"{args.multicore_threads}"
                )

    for key, floor in floors:
        if key not in current:
            failures.append(f"{key}: missing from {args.current}")
            continue
        now = float(current[key])
        verdict = "OK" if now >= floor else "BELOW FLOOR"
        print(f"{verdict} {key}: current={now:.3f} min={floor:.3f}")
        if now < floor:
            failures.append(f"{key}: {now:.3f} < absolute floor {floor:.3f}")

    if failures:
        print("bench regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench regression gate passed")
    return 0


def self_test() -> int:
    """Prove each gate trigger fires (and each pass passes) on synthetic
    JSON. Every case runs main() for real — argument parsing, file IO and
    verdict logic included."""
    import os

    def run_case(name, baseline, current, extra_args, want_exit):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "baseline.json")
            cur_path = os.path.join(tmp, "current.json")
            with open(base_path, "w") as f:
                json.dump(baseline, f)
            with open(cur_path, "w") as f:
                json.dump(current, f)
            got = main([base_path, cur_path] + extra_args)
        verdict = "ok" if got == want_exit else "FAIL"
        print(f"self-test [{verdict}] {name}: exit={got} want={want_exit}")
        return got == want_exit

    cases = [
        # The >25% relative gate: a 26% drop fires, a 24% drop does not,
        # and improvements always pass.
        ("relative drop >25% fires",
         {"m": 100.0}, {"m": 74.0}, ["--key", "m"], 1),
        ("relative drop <=25% passes",
         {"m": 100.0}, {"m": 76.0}, ["--key", "m"], 0),
        ("improvement passes",
         {"m": 100.0}, {"m": 150.0}, ["--key", "m"], 0),
        ("key missing from current fails",
         {"m": 100.0}, {}, ["--key", "m"], 1),
        ("key missing from baseline skips",
         {}, {"m": 1.0}, ["--key", "m"], 0),
        # --min absolute floors on the current file.
        ("--min below floor fires",
         {}, {"hits": 0.0}, ["--min", "hits=1"], 1),
        ("--min at floor passes",
         {}, {"hits": 1.0}, ["--min", "hits=1"], 0),
        ("--min missing key fails",
         {}, {}, ["--min", "hits=1"], 1),
        # --min-multicore: armed only when hardware_threads clears the bar.
        ("--min-multicore fires on multicore host",
         {}, {"speedup": 1.0, "hardware_threads": 8},
         ["--min-multicore", "speedup=1.2"], 1),
        ("--min-multicore passes on multicore host",
         {}, {"speedup": 1.5, "hardware_threads": 8},
         ["--min-multicore", "speedup=1.2"], 0),
        ("--min-multicore skipped on single core",
         {}, {"speedup": 1.0, "hardware_threads": 1},
         ["--min-multicore", "speedup=1.2"], 0),
        ("--min-multicore skipped without hardware_threads",
         {}, {"speedup": 1.0},
         ["--min-multicore", "speedup=1.2"], 0),
        # A custom tolerance reshapes the relative gate.
        ("--max-regression 0.5 relaxes the gate",
         {"m": 100.0}, {"m": 60.0},
         ["--key", "m", "--max-regression", "0.5"], 0),
    ]

    failures = sum(not run_case(*case) for case in cases)
    if failures:
        print(f"self-test FAILED: {failures} case(s)", file=sys.stderr)
        return 1
    print(f"self-test passed: {len(cases)} cases")
    return 0


if __name__ == "__main__":
    sys.exit(main())
