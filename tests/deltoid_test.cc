#include "baselines/deltoid.h"

#include <gtest/gtest.h>

namespace davinci {
namespace {

TEST(DeltoidTest, QueryUpperBoundsFrequency) {
  Deltoid deltoid(64 * 1024, 3, 1);
  deltoid.Insert(1234, 500);
  deltoid.Insert(5678, 20);
  EXPECT_GE(deltoid.Query(1234), 500);
  EXPECT_GE(deltoid.Query(5678), 20);
}

TEST(DeltoidTest, FindsSingleHeavyChanger) {
  Deltoid a(64 * 1024, 3, 2), b(64 * 1024, 3, 2);
  for (uint32_t key = 1; key <= 200; ++key) {
    a.Insert(key, 10);
    b.Insert(key, 10);  // stable background
  }
  b.Insert(0xabcdef12, 5000);  // surge in the second window
  a.Subtract(b);
  auto changers = a.HeavyChangers(2500);
  ASSERT_EQ(changers.size(), 1u);
  EXPECT_EQ(changers[0].first, 0xabcdef12u);
  EXPECT_NEAR(static_cast<double>(changers[0].second), -5000.0, 2100.0);
}

TEST(DeltoidTest, FindsMultipleChangers) {
  Deltoid a(128 * 1024, 4, 3), b(128 * 1024, 4, 3);
  for (uint32_t key = 1; key <= 500; ++key) {
    a.Insert(key, 5);
    b.Insert(key, 5);
  }
  a.Insert(111111, 4000);   // dropped flow (positive change)
  b.Insert(2222222, 4000);  // surged flow (negative change)
  a.Subtract(b);
  auto changers = a.HeavyChangers(2000);
  bool found_drop = false, found_surge = false;
  for (const auto& [key, change] : changers) {
    if (key == 111111 && change > 0) found_drop = true;
    if (key == 2222222 && change < 0) found_surge = true;
  }
  EXPECT_TRUE(found_drop);
  EXPECT_TRUE(found_surge);
}

TEST(DeltoidTest, StableWindowsReportNothing) {
  Deltoid a(64 * 1024, 3, 4), b(64 * 1024, 3, 4);
  for (uint32_t key = 1; key <= 300; ++key) {
    a.Insert(key, key);
    b.Insert(key, key);
  }
  a.Subtract(b);
  EXPECT_TRUE(a.HeavyChangers(50).empty());
}

TEST(DeltoidTest, MergeUndoesSubtract) {
  Deltoid a(32 * 1024, 3, 5), b(32 * 1024, 3, 5);
  a.Insert(999, 100);
  b.Insert(999, 40);
  a.Subtract(b);
  a.Merge(b);
  EXPECT_GE(a.Query(999), 100);
}

TEST(DeltoidTest, MemoryAccountsBitCounters) {
  Deltoid deltoid(66 * 1024, 2, 6);
  // Each bucket is 33 four-byte counters.
  EXPECT_LE(deltoid.MemoryBytes(), 66u * 1024);
  EXPECT_GT(deltoid.MemoryBytes(), 60u * 1024);
}

}  // namespace
}  // namespace davinci
