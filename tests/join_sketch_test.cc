// Inner-product estimators: AGMS, F-AGMS, JoinSketch, SkimmedSketch, and
// the CSOA composite.

#include <gtest/gtest.h>

#include "baselines/agms.h"
#include "baselines/csoa.h"
#include "baselines/join_sketch.h"
#include "baselines/skimmed_sketch.h"
#include "metrics/metrics.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

struct JoinWorkload {
  Trace a;
  Trace b;
  double truth;
};

JoinWorkload MakeJoinWorkload(size_t packets, uint64_t seed) {
  Trace full = BuildSkewedTrace("j", packets, packets / 20, 1.1, seed);
  JoinWorkload w;
  // Two overlapping windows, as in the paper's join experiments.
  w.a = Slice(full, 0, packets * 2 / 3, "a");
  w.b = Slice(full, packets / 3, packets, "b");
  w.truth = GroundTruth::InnerJoin(GroundTruth(w.a.keys),
                                   GroundTruth(w.b.keys));
  return w;
}

TEST(AgmsTest, SecondMomentSmallCase) {
  Agms sketch(5, 64, 3);
  sketch.Insert(1, 100);
  sketch.Insert(2, 50);
  // F2 = 100² + 50² = 12500.
  EXPECT_NEAR(sketch.SecondMoment(), 12500.0, 12500.0 * 0.4);
}

TEST(AgmsTest, InnerProductSmallCase) {
  Agms a(5, 64, 4), b(5, 64, 4);
  a.Insert(1, 30);
  a.Insert(2, 10);
  b.Insert(1, 20);
  b.Insert(3, 50);
  // f⊙g = 30·20 = 600.
  EXPECT_NEAR(Agms::InnerProduct(a, b), 600.0, 400.0);
}

TEST(FAgmsTest, JoinAreSmallOnTrace) {
  JoinWorkload w = MakeJoinWorkload(100000, 31);
  FAgms a(200 * 1024, 5, 7), b(200 * 1024, 5, 7);
  for (uint32_t key : w.a.keys) a.Insert(key, 1);
  for (uint32_t key : w.b.keys) b.Insert(key, 1);
  double est = FAgms::InnerProduct(a, b);
  EXPECT_LT(RelativeError(w.truth, est), 0.15);
}

TEST(JoinSketchTest, FrequentKeysExact) {
  JoinSketch sketch(64 * 1024, 8);
  for (int i = 0; i < 5000; ++i) sketch.Insert(42, 1);
  EXPECT_EQ(sketch.Query(42), 5000);
}

TEST(JoinSketchTest, MoreAccurateThanFAgmsOnSkew) {
  JoinWorkload w = MakeJoinWorkload(200000, 32);
  JoinSketch ja(200 * 1024, 9), jb(200 * 1024, 9);
  FAgms fa(200 * 1024, 5, 9), fb(200 * 1024, 5, 9);
  for (uint32_t key : w.a.keys) {
    ja.Insert(key, 1);
    fa.Insert(key, 1);
  }
  for (uint32_t key : w.b.keys) {
    jb.Insert(key, 1);
    fb.Insert(key, 1);
  }
  double join_err = RelativeError(w.truth, JoinSketch::InnerProduct(ja, jb));
  EXPECT_LT(join_err, 0.1);
}

TEST(SkimmedSketchTest, JoinWithinTolerance) {
  JoinWorkload w = MakeJoinWorkload(100000, 33);
  SkimmedSketch a(200 * 1024, 11), b(200 * 1024, 11);
  for (uint32_t key : w.a.keys) a.Insert(key, 1);
  for (uint32_t key : w.b.keys) b.Insert(key, 1);
  double est = SkimmedSketch::InnerProduct(a, b);
  EXPECT_LT(RelativeError(w.truth, est), 0.2);
}

TEST(CsoaTest, CoversAllTaskFamilies) {
  Trace trace = BuildSkewedTrace("c", 100000, 10000, 1.1, 34);
  Csoa::MemoryPlan plan{100 * 1024, 100 * 1024, 100 * 1024};
  Csoa csoa(plan, 5);
  for (uint32_t key : trace.keys) csoa.Insert(key, 1);
  GroundTruth truth(trace.keys);

  // Frequency via FCM.
  auto top = truth.HeavyHitters(static_cast<int64_t>(trace.keys.size()) / 100);
  ASSERT_FALSE(top.empty());
  EXPECT_NEAR(static_cast<double>(csoa.Query(top[0].first)),
              static_cast<double>(top[0].second), top[0].second * 0.1);
  // Cardinality via linear counting.
  EXPECT_NEAR(csoa.EstimateCardinality(),
              static_cast<double>(truth.cardinality()),
              truth.cardinality() * 0.25);
  // Entropy via EM distribution.
  EXPECT_NEAR(csoa.EstimateEntropy(), truth.Entropy(), truth.Entropy() * 0.3);
  // Memory accounting covers the three components.
  EXPECT_NEAR(static_cast<double>(csoa.MemoryBytes()), 300.0 * 1024,
              40.0 * 1024);
  EXPECT_GT(csoa.MemoryAccesses(), trace.keys.size() * 5);
}

TEST(CsoaTest, DifferenceViaFermatMember) {
  Csoa::MemoryPlan plan{32 * 1024, 64 * 1024, 32 * 1024};
  Csoa a(plan, 6), b(plan, 6);
  for (uint32_t key = 1; key <= 300; ++key) {
    a.Insert(key, 4);
    if (key % 2 == 0) b.Insert(key, 4);
  }
  a.fermat().Subtract(b.fermat());
  auto decoded = a.fermat().Decode();
  EXPECT_EQ(decoded.size(), 150u);
  EXPECT_EQ(decoded[1], 4);
}

}  // namespace
}  // namespace davinci
