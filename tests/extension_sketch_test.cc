// Tests for the extension baselines: HeavyKeeper, MV-Sketch, PCSA, LogLog.

#include <unordered_set>

#include <gtest/gtest.h>

#include "baselines/cardinality_sketches.h"
#include "baselines/heavy_keeper.h"
#include "baselines/mv_sketch.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

Trace SkewedTrace(size_t packets = 100000, uint64_t seed = 61) {
  return BuildSkewedTrace("t", packets, packets / 10, 1.1, seed);
}

// ---------- HeavyKeeper ----------

TEST(HeavyKeeperTest, SingleElephantNearExact) {
  HeavyKeeper hk(64 * 1024, 2, 1);
  for (int i = 0; i < 5000; ++i) hk.Insert(42, 1);
  EXPECT_NEAR(static_cast<double>(hk.Query(42)), 5000.0, 250.0);
}

TEST(HeavyKeeperTest, ElephantsSurviveMousePressure) {
  HeavyKeeper hk(64 * 1024, 2, 2);
  // An elephant interleaved with a horde of mice.
  for (int round = 0; round < 1000; ++round) {
    hk.Insert(7, 1);
    for (uint32_t mouse = 0; mouse < 20; ++mouse) {
      hk.Insert(1000 + round * 20 + mouse, 1);
    }
  }
  // The decay probability b^-1000 is astronomically small: the elephant's
  // counter cannot be washed away.
  EXPECT_GT(hk.Query(7), 900);
}

TEST(HeavyKeeperTest, TopFlowsRecalled) {
  Trace trace = SkewedTrace();
  HeavyKeeper hk(128 * 1024, 2, 3);
  for (uint32_t key : trace.keys) hk.Insert(key, 1);
  GroundTruth truth(trace.keys);
  int64_t threshold = trace.keys.size() / 500;
  auto reported = hk.HeavyHitters(threshold / 2);
  std::unordered_set<uint32_t> reported_keys;
  for (const auto& [key, est] : reported) reported_keys.insert(key);
  auto actual = truth.HeavyHitters(threshold);
  size_t found = 0;
  for (const auto& [key, f] : actual) {
    (void)f;
    if (reported_keys.count(key)) ++found;
  }
  EXPECT_GT(static_cast<double>(found) / actual.size(), 0.9);
}

// ---------- MV-Sketch ----------

TEST(MvSketchTest, MajorityFlowRecovered) {
  MvSketch mv(32 * 1024, 2, 4);
  for (int i = 0; i < 10000; ++i) mv.Insert(99, 1);
  for (uint32_t key = 1; key <= 100; ++key) mv.Insert(key, 1);
  EXPECT_NEAR(static_cast<double>(mv.Query(99)), 10000.0, 200.0);
}

TEST(MvSketchTest, HeavyHittersFound) {
  Trace trace = SkewedTrace();
  MvSketch mv(128 * 1024, 4, 5);
  for (uint32_t key : trace.keys) mv.Insert(key, 1);
  GroundTruth truth(trace.keys);
  int64_t threshold = trace.keys.size() / 200;
  auto reported = mv.HeavyHitters(threshold / 2);
  std::unordered_set<uint32_t> reported_keys;
  for (const auto& [key, est] : reported) reported_keys.insert(key);
  auto actual = truth.HeavyHitters(threshold);
  size_t found = 0;
  for (const auto& [key, f] : actual) {
    (void)f;
    if (reported_keys.count(key)) ++found;
  }
  EXPECT_GT(static_cast<double>(found) / actual.size(), 0.9);
}

TEST(MvSketchTest, HeavyChangersAcrossWindows) {
  MvSketch a(64 * 1024, 4, 6), b(64 * 1024, 4, 6);
  for (int i = 0; i < 1000; ++i) {
    a.Insert(5, 1);
    b.Insert(5, 1);  // stable flow
  }
  for (int i = 0; i < 3000; ++i) b.Insert(6, 1);  // surge in window b
  auto changers = MvSketch::HeavyChangers(a, b, 1500);
  ASSERT_EQ(changers.size(), 1u);
  EXPECT_EQ(changers[0].first, 6u);
  EXPECT_NEAR(static_cast<double>(changers[0].second), -3000.0, 300.0);
}

// ---------- PCSA / LogLog ----------

TEST(PcsaTest, EstimateWithinTwentyPercent) {
  Pcsa pcsa(256, 7);
  for (uint32_t key = 1; key <= 100000; ++key) pcsa.Insert(key);
  EXPECT_NEAR(pcsa.EstimateCardinality(), 100000.0, 20000.0);
}

TEST(PcsaTest, MergeEqualsUnion) {
  Pcsa a(256, 8), b(256, 8), u(256, 8);
  for (uint32_t key = 1; key <= 50000; ++key) {
    a.Insert(key);
    u.Insert(key);
  }
  for (uint32_t key = 25000; key <= 75000; ++key) {
    b.Insert(key);
    u.Insert(key);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateCardinality(), u.EstimateCardinality());
}

TEST(LogLogTest, EstimateWithinFifteenPercent) {
  LogLog loglog(12, 9);
  for (uint32_t key = 1; key <= 200000; ++key) loglog.Insert(key);
  EXPECT_NEAR(loglog.EstimateCardinality(), 200000.0, 30000.0);
}

TEST(LogLogTest, DuplicatesDoNotInflate) {
  LogLog loglog(12, 10);
  for (int round = 0; round < 5; ++round) {
    for (uint32_t key = 1; key <= 50000; ++key) loglog.Insert(key);
  }
  EXPECT_NEAR(loglog.EstimateCardinality(), 50000.0, 10000.0);
}

TEST(LogLogTest, MergeMonotone) {
  LogLog a(10, 11), b(10, 11);
  for (uint32_t key = 1; key <= 10000; ++key) a.Insert(key);
  double before = a.EstimateCardinality();
  for (uint32_t key = 10001; key <= 30000; ++key) b.Insert(key);
  a.Merge(b);
  EXPECT_GT(a.EstimateCardinality(), before);
}

}  // namespace
}  // namespace davinci
