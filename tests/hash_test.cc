#include "common/hash.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace davinci {
namespace {

TEST(BobHashTest, DeterministicForSameInput) {
  uint32_t key = 0xdeadbeef;
  EXPECT_EQ(BobHash(&key, sizeof(key), 1), BobHash(&key, sizeof(key), 1));
}

TEST(BobHashTest, SeedChangesOutput) {
  uint32_t key = 0xdeadbeef;
  EXPECT_NE(BobHash(&key, sizeof(key), 1), BobHash(&key, sizeof(key), 2));
}

TEST(BobHashTest, HandlesLongInput) {
  std::vector<uint8_t> data(100, 0xab);
  uint32_t h1 = BobHash(data.data(), data.size(), 7);
  data[50] ^= 1;
  uint32_t h2 = BobHash(data.data(), data.size(), 7);
  EXPECT_NE(h1, h2);
}

TEST(BobHashTest, EmptyInputIsStable) {
  EXPECT_EQ(BobHash(nullptr, 0, 3), BobHash(nullptr, 0, 3));
}

TEST(Mix64Test, IsBijectiveOnSamples) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashFamilyTest, SameSeedSameFunction) {
  HashFamily a(42), b(42);
  for (uint64_t key = 1; key < 100; ++key) {
    EXPECT_EQ(a.Hash(key), b.Hash(key));
  }
}

TEST(HashFamilyTest, DifferentSeedsDiffer) {
  HashFamily a(1), b(2);
  size_t differing = 0;
  for (uint64_t key = 1; key < 100; ++key) {
    if (a.Hash(key) != b.Hash(key)) ++differing;
  }
  EXPECT_GT(differing, 90u);
}

TEST(HashFamilyTest, BucketInRange) {
  HashFamily h(9);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_LT(h.Bucket(key, 17), 17u);
  }
}

TEST(HashFamilyTest, BucketsRoughlyUniform) {
  HashFamily h(11);
  const size_t kBuckets = 16;
  std::vector<size_t> counts(kBuckets, 0);
  const size_t kSamples = 160000;
  for (uint64_t key = 0; key < kSamples; ++key) {
    ++counts[h.Bucket(key, kBuckets)];
  }
  double expected = static_cast<double>(kSamples) / kBuckets;
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.05);
  }
}

TEST(SignHashTest, OnlyPlusMinusOne) {
  SignHash s(5);
  for (uint64_t key = 0; key < 1000; ++key) {
    int sign = s.Sign(key);
    EXPECT_TRUE(sign == 1 || sign == -1);
  }
}

TEST(SignHashTest, RoughlyBalanced) {
  SignHash s(6);
  int64_t sum = 0;
  const int kSamples = 100000;
  for (uint64_t key = 0; key < kSamples; ++key) {
    sum += s.Sign(key);
  }
  EXPECT_LT(std::abs(sum), kSamples / 50);
}

TEST(SignHashTest, Deterministic) {
  SignHash a(9), b(9);
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(a.Sign(key), b.Sign(key));
  }
}

}  // namespace
}  // namespace davinci
