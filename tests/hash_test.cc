#include "common/hash.h"

#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace davinci {
namespace {

TEST(BobHashTest, DeterministicForSameInput) {
  uint32_t key = 0xdeadbeef;
  EXPECT_EQ(BobHash(&key, sizeof(key), 1), BobHash(&key, sizeof(key), 1));
}

TEST(BobHashTest, SeedChangesOutput) {
  uint32_t key = 0xdeadbeef;
  EXPECT_NE(BobHash(&key, sizeof(key), 1), BobHash(&key, sizeof(key), 2));
}

TEST(BobHashTest, HandlesLongInput) {
  std::vector<uint8_t> data(100, 0xab);
  uint32_t h1 = BobHash(data.data(), data.size(), 7);
  data[50] ^= 1;
  uint32_t h2 = BobHash(data.data(), data.size(), 7);
  EXPECT_NE(h1, h2);
}

TEST(BobHashTest, EmptyInputIsStable) {
  EXPECT_EQ(BobHash(nullptr, 0, 3), BobHash(nullptr, 0, 3));
}

TEST(Mix64Test, IsBijectiveOnSamples) {
  std::set<uint64_t> outputs;
  for (uint64_t i = 0; i < 10000; ++i) {
    outputs.insert(Mix64(i));
  }
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashFamilyTest, SameSeedSameFunction) {
  HashFamily a(42), b(42);
  for (uint64_t key = 1; key < 100; ++key) {
    EXPECT_EQ(a.Hash(key), b.Hash(key));
  }
}

TEST(HashFamilyTest, DifferentSeedsDiffer) {
  HashFamily a(1), b(2);
  size_t differing = 0;
  for (uint64_t key = 1; key < 100; ++key) {
    if (a.Hash(key) != b.Hash(key)) ++differing;
  }
  EXPECT_GT(differing, 90u);
}

TEST(HashFamilyTest, BucketInRange) {
  HashFamily h(9);
  for (uint64_t key = 0; key < 1000; ++key) {
    EXPECT_LT(h.Bucket(key, 17), 17u);
  }
}

TEST(HashFamilyTest, BucketsRoughlyUniform) {
  HashFamily h(11);
  const size_t kBuckets = 16;
  std::vector<size_t> counts(kBuckets, 0);
  const size_t kSamples = 160000;
  for (uint64_t key = 0; key < kSamples; ++key) {
    ++counts[h.Bucket(key, kBuckets)];
  }
  double expected = static_cast<double>(kSamples) / kBuckets;
  for (size_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.05);
  }
}

TEST(HashFamilyTest, BucketFastInRangeAndDeterministic) {
  HashFamily h(13);
  for (size_t buckets : {size_t{1}, size_t{2}, size_t{17}, size_t{64},
                         size_t{1000}}) {
    for (uint64_t key = 0; key < 500; ++key) {
      size_t b = h.BucketFast(key, buckets);
      EXPECT_LT(b, buckets);
      EXPECT_EQ(b, h.BucketFastWithBase(HashFamily::BaseHash(key), buckets));
      EXPECT_EQ(b, h.BucketFast(key, buckets));
    }
  }
}

TEST(HashFamilyTest, FastReducePowerOfTwoUsesMask) {
  // On power-of-two widths the mask path must agree with hash mod n,
  // because the mask IS hash mod n there.
  for (uint64_t hash : {0ull, 1ull, 0xdeadbeefcafef00dull, ~0ull}) {
    EXPECT_EQ(HashFamily::FastReduce(hash, 64), hash % 64);
    EXPECT_EQ(HashFamily::FastReduce(hash, 1), 0u);
  }
}

// Pearson chi-squared statistic of observed counts against a uniform
// expectation. With k cells the statistic has k−1 degrees of freedom:
// mean k−1, variance 2(k−1). A threshold of dof + 8·sqrt(2·dof) is far
// beyond any plausible statistical fluctuation (≈ 8 sigma) while still
// catching structural bias like a stuck bit.
double ChiSquared(const std::vector<size_t>& counts, size_t samples) {
  double expected = static_cast<double>(samples) / counts.size();
  double chi2 = 0.0;
  for (size_t c : counts) {
    double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  return chi2;
}

TEST(HashFamilyTest, ChiSquaredBucketBalance) {
  const size_t kSamples = 1 << 20;
  // Both reduction paths: a power of two (mask) and a non power of two
  // (Lemire multiply-shift).
  for (size_t buckets : {size_t{64}, size_t{97}}) {
    for (uint64_t seed : {3u, 77u, 20250806u}) {
      HashFamily h(seed);
      std::vector<size_t> counts(buckets, 0);
      for (uint64_t key = 0; key < kSamples; ++key) {
        ++counts[h.BucketFast(key, buckets)];
      }
      double dof = static_cast<double>(buckets - 1);
      EXPECT_LT(ChiSquared(counts, kSamples), dof + 8.0 * std::sqrt(2.0 * dof))
          << "buckets=" << buckets << " seed=" << seed;
    }
  }
}

TEST(SignHashTest, ChiSquaredBalance) {
  const size_t kSamples = 1 << 20;
  for (uint64_t seed : {2u, 51u, 987654u}) {
    SignHash s(seed);
    std::vector<size_t> counts(2, 0);
    for (uint64_t key = 0; key < kSamples; ++key) {
      ++counts[s.Sign(key) > 0 ? 1 : 0];
    }
    // 1 degree of freedom: threshold 1 + 8·sqrt(2) ≈ 12.3.
    EXPECT_LT(ChiSquared(counts, kSamples), 1.0 + 8.0 * std::sqrt(2.0))
        << "seed=" << seed;
  }
}

TEST(SignHashTest, SignComesFromHighBitNotBitZero) {
  // The sign must track the underlying hash's high bit; sequential keys
  // whose hashes have identical low bits but differing high bits must be
  // able to disagree in sign, and a run of keys must not correlate with
  // key parity (which bit-0 derivations are prone to).
  SignHash s(8);
  int64_t parity_correlation = 0;
  for (uint64_t key = 0; key < 100000; ++key) {
    parity_correlation += s.Sign(key) * ((key & 1) ? 1 : -1);
  }
  EXPECT_LT(std::abs(parity_correlation), 100000 / 50);
}

TEST(SignHashTest, OnlyPlusMinusOne) {
  SignHash s(5);
  for (uint64_t key = 0; key < 1000; ++key) {
    int sign = s.Sign(key);
    EXPECT_TRUE(sign == 1 || sign == -1);
  }
}

TEST(SignHashTest, RoughlyBalanced) {
  SignHash s(6);
  int64_t sum = 0;
  const int kSamples = 100000;
  for (uint64_t key = 0; key < kSamples; ++key) {
    sum += s.Sign(key);
  }
  EXPECT_LT(std::abs(sum), kSamples / 50);
}

TEST(SignHashTest, Deterministic) {
  SignHash a(9), b(9);
  for (uint64_t key = 0; key < 200; ++key) {
    EXPECT_EQ(a.Sign(key), b.Sign(key));
  }
}

}  // namespace
}  // namespace davinci
