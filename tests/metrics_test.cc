#include "metrics/metrics.h"

#include <gtest/gtest.h>

namespace davinci {
namespace {

TEST(MetricsTest, AreExactEstimatesGiveZero) {
  std::vector<Estimate> obs = {{10, 10}, {5, 5}};
  EXPECT_DOUBLE_EQ(AverageRelativeError(obs), 0.0);
}

TEST(MetricsTest, AreAveragesRelativeErrors) {
  std::vector<Estimate> obs = {{10, 15}, {100, 100}};
  // |10-15|/10 = 0.5; |100-100|/100 = 0 → mean 0.25.
  EXPECT_DOUBLE_EQ(AverageRelativeError(obs), 0.25);
}

TEST(MetricsTest, AreSkipsZeroTruth) {
  std::vector<Estimate> obs = {{0, 100}, {10, 20}};
  EXPECT_DOUBLE_EQ(AverageRelativeError(obs), 1.0);
}

TEST(MetricsTest, AreEmptyIsZero) {
  EXPECT_DOUBLE_EQ(AverageRelativeError({}), 0.0);
}

TEST(MetricsTest, AaeAveragesAbsoluteErrors) {
  std::vector<Estimate> obs = {{10, 14}, {100, 98}};
  EXPECT_DOUBLE_EQ(AverageAbsoluteError(obs), 3.0);
}

TEST(MetricsTest, F1PerfectDetection) {
  EXPECT_DOUBLE_EQ(F1Score(10, 10, 10), 1.0);
}

TEST(MetricsTest, F1HalfPrecision) {
  // 10 correct out of 20 reported, 10 actual → P=0.5, R=1 → F1=2/3.
  EXPECT_NEAR(F1Score(10, 20, 10), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, F1NothingReported) {
  EXPECT_DOUBLE_EQ(F1Score(0, 0, 10), 0.0);
}

TEST(MetricsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(100.0, 90.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 5.0), 1.0);
}

TEST(MetricsTest, WmreIdenticalIsZero) {
  std::map<int64_t, int64_t> h = {{1, 100}, {2, 50}};
  EXPECT_DOUBLE_EQ(WeightedMeanRelativeError(h, h), 0.0);
}

TEST(MetricsTest, WmreDisjointIsTwo) {
  std::map<int64_t, int64_t> a = {{1, 100}};
  std::map<int64_t, int64_t> b = {{2, 100}};
  // Numerator 200, denominator 100 → 2 (maximum disagreement).
  EXPECT_DOUBLE_EQ(WeightedMeanRelativeError(a, b), 2.0);
}

TEST(MetricsTest, WmrePartialOverlap) {
  std::map<int64_t, int64_t> truth = {{1, 100}, {2, 100}};
  std::map<int64_t, int64_t> est = {{1, 100}, {2, 50}};
  // |0| + |50| over (100 + 75) → 50/175.
  EXPECT_NEAR(WeightedMeanRelativeError(truth, est), 50.0 / 175.0, 1e-12);
}

TEST(MetricsTest, ThroughputMpps) {
  EXPECT_DOUBLE_EQ(ThroughputMpps(2000000, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(ThroughputMpps(100, 0.0), 0.0);
}

TEST(MetricsTest, TimerAdvances) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace davinci
