#include <cmath>
#include <random>

#include <gtest/gtest.h>

#include "estimators/em_distribution.h"
#include "estimators/entropy.h"
#include "estimators/linear_counting.h"
#include "metrics/metrics.h"

namespace davinci {
namespace {

TEST(LinearCountingTest, EmptyArrayIsZero) {
  EXPECT_DOUBLE_EQ(LinearCountingEstimate(1000, 1000), 0.0);
}

TEST(LinearCountingTest, NoSlotsIsZero) {
  EXPECT_DOUBLE_EQ(LinearCountingEstimate(0, 0), 0.0);
}

TEST(LinearCountingTest, SaturatedArrayIsFinite) {
  double estimate = LinearCountingEstimate(1000, 0);
  EXPECT_TRUE(std::isfinite(estimate));
  EXPECT_GT(estimate, 1000.0);
}

TEST(LinearCountingTest, AccurateAtModerateLoad) {
  // Hash n distinct items into m slots and estimate n back.
  const size_t m = 10000;
  const size_t n = 5000;
  std::mt19937_64 rng(1234);
  std::vector<bool> slots(m, false);
  for (size_t i = 0; i < n; ++i) {
    slots[rng() % m] = true;
  }
  size_t zeros = 0;
  for (bool occupied : slots) {
    if (!occupied) ++zeros;
  }
  double estimate = LinearCountingEstimate(m, zeros);
  EXPECT_NEAR(estimate, static_cast<double>(n), n * 0.05);
}

TEST(EntropyTest, EmptyHistogramIsZero) {
  EXPECT_DOUBLE_EQ(EntropyFromDistribution({}), 0.0);
}

TEST(EntropyTest, UniformFlowsMatchLogN) {
  // 8 flows of size 1 → H = ln 8.
  std::map<int64_t, int64_t> hist = {{1, 8}};
  EXPECT_NEAR(EntropyFromDistribution(hist), std::log(8.0), 1e-12);
}

TEST(EntropyTest, SingleFlowIsZero) {
  std::map<int64_t, int64_t> hist = {{1000, 1}};
  EXPECT_NEAR(EntropyFromDistribution(hist), 0.0, 1e-12);
}

TEST(EntropyTest, MatchesDirectComputation) {
  // Two flows of size 1 and one of size 2: p = {1/4, 1/4, 1/2}.
  std::map<int64_t, int64_t> hist = {{1, 2}, {2, 1}};
  double expected = -(0.25 * std::log(0.25) * 2 + 0.5 * std::log(0.5));
  EXPECT_NEAR(EntropyFromDistribution(hist), expected, 1e-12);
}

TEST(EmDistributionTest, EmptyCountersGiveEmptyHistogram) {
  EXPECT_TRUE(EmDistribution::Estimate(std::vector<int64_t>(100, 0)).empty());
}

TEST(EmDistributionTest, NoCollisionsIsExact) {
  // Distinct counters: 10 ones and 5 threes, no collisions to disentangle.
  std::vector<int64_t> counters(1000, 0);
  for (int i = 0; i < 10; ++i) counters[i] = 1;
  for (int i = 10; i < 15; ++i) counters[i] = 3;
  auto hist = EmDistribution::Estimate(counters);
  EXPECT_NEAR(hist[1], 10, 2);
  EXPECT_NEAR(hist[3], 5, 1);
}

TEST(EmDistributionTest, SeparatesPairCollisions) {
  // 1000 size-1 flows hashed into 2000 counters: ≈ 200 counters show "2"
  // from collisions, which EM must re-attribute to size-1 flows.
  const size_t m = 2000;
  const size_t n = 1000;
  std::mt19937_64 rng(777);
  std::vector<int64_t> counters(m, 0);
  for (size_t i = 0; i < n; ++i) {
    ++counters[rng() % m];
  }
  auto hist = EmDistribution::Estimate(counters);
  // The raw counter histogram would report ~190 flows of size 2; EM should
  // push the size-1 estimate back toward 1000.
  EXPECT_GT(hist[1], 850);
  EXPECT_LT(hist[2], 120);
}

TEST(EmDistributionTest, LargeCountersKeptAsSingleFlows) {
  std::vector<int64_t> counters(500, 0);
  counters[0] = 100000;  // above the single-flow cutoff
  counters[1] = 1;
  auto hist = EmDistribution::Estimate(counters);
  EXPECT_EQ(hist[100000], 1);
}

TEST(EmDistributionTest, WmreSmallOnSkewedWorkload) {
  // A Zipf-ish mix of sizes through a realistic load factor.
  const size_t m = 4096;
  std::mt19937_64 rng(4242);
  std::vector<int64_t> counters(m, 0);
  std::map<int64_t, int64_t> truth;
  for (int i = 0; i < 1500; ++i) {
    int64_t size = 1 + (i % 97 == 0 ? 50 : i % 3);
    ++truth[size];
    counters[rng() % m] += size;
  }
  auto hist = EmDistribution::Estimate(counters);
  EXPECT_LT(WeightedMeanRelativeError(truth, hist), 0.35);
}

}  // namespace
}  // namespace davinci
