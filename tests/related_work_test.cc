// Tests for the second wave of related-work baselines: SpaceSaving,
// WavingSketch, HeavyGuardian, ColdFilter+CM, SlidingHLL, AMS entropy.

#include <unordered_set>

#include <gtest/gtest.h>

#include "baselines/cold_filter.h"
#include "baselines/heavy_guardian.h"
#include "baselines/sliding_hll.h"
#include "baselines/space_saving.h"
#include "baselines/waving_sketch.h"
#include "estimators/ams_entropy.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

Trace SkewedTrace(size_t packets = 100000, uint64_t seed = 91) {
  return BuildSkewedTrace("t", packets, packets / 10, 1.1, seed);
}

double HeavyRecall(const HeavyHitterSketch& sketch, const GroundTruth& truth,
                   int64_t report_threshold, int64_t actual_threshold) {
  auto reported = sketch.HeavyHitters(report_threshold);
  std::unordered_set<uint32_t> reported_keys;
  for (const auto& [key, est] : reported) reported_keys.insert(key);
  auto actual = truth.HeavyHitters(actual_threshold);
  if (actual.empty()) return 1.0;
  size_t found = 0;
  for (const auto& [key, f] : actual) {
    (void)f;
    if (reported_keys.count(key)) ++found;
  }
  return static_cast<double>(found) / static_cast<double>(actual.size());
}

// ---------- SpaceSaving ----------

TEST(SpaceSavingTest, CountNeverUndershootsByMoreThanError) {
  SpaceSaving ss(8 * 1024, 1);
  Trace trace = SkewedTrace(30000, 5);
  GroundTruth truth(trace.keys);
  for (uint32_t key : trace.keys) ss.Insert(key, 1);
  for (const auto& [key, f] : truth.frequencies()) {
    int64_t est = ss.Query(key);
    if (est == 0) continue;  // evicted
    EXPECT_GE(est, f) << key;                 // overestimate only
    EXPECT_LE(est - ss.ErrorOf(key), f) << key;  // error bound holds
  }
}

TEST(SpaceSavingTest, CapacityIsRespected) {
  SpaceSaving ss(1200, 2);  // 100 entries
  for (uint32_t key = 1; key <= 10000; ++key) ss.Insert(key, 1);
  EXPECT_LE(ss.HeavyHitters(0).size(), 100u);
}

TEST(SpaceSavingTest, ElephantsRetained) {
  Trace trace = SkewedTrace();
  SpaceSaving ss(64 * 1024, 3);
  for (uint32_t key : trace.keys) ss.Insert(key, 1);
  GroundTruth truth(trace.keys);
  EXPECT_GT(HeavyRecall(ss, truth, trace.keys.size() / 1000,
                        trace.keys.size() / 500),
            0.95);
}

// ---------- WavingSketch ----------

TEST(WavingSketchTest, FrozenFlowsAreExact) {
  WavingSketch waving(64 * 1024, 8, 4);
  for (int i = 0; i < 7777; ++i) waving.Insert(5, 1);
  EXPECT_EQ(waving.Query(5), 7777);
}

TEST(WavingSketchTest, TopFlowsRecalled) {
  Trace trace = SkewedTrace();
  WavingSketch waving(96 * 1024, 8, 5);
  for (uint32_t key : trace.keys) waving.Insert(key, 1);
  GroundTruth truth(trace.keys);
  EXPECT_GT(HeavyRecall(waving, truth, trace.keys.size() / 1000,
                        trace.keys.size() / 500),
            0.9);
}

TEST(WavingSketchTest, RoughlyUnbiasedOnMediumFlows) {
  Trace trace = SkewedTrace(60000, 6);
  WavingSketch waving(32 * 1024, 8, 6);
  for (uint32_t key : trace.keys) waving.Insert(key, 1);
  GroundTruth truth(trace.keys);
  double signed_error = 0;
  size_t counted = 0;
  for (const auto& [key, f] : truth.frequencies()) {
    if (f < 5) continue;
    signed_error += static_cast<double>(waving.Query(key) - f);
    ++counted;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_LT(std::abs(signed_error / counted), 15.0);
}

// ---------- HeavyGuardian ----------

TEST(HeavyGuardianTest, GuardsElephants) {
  HeavyGuardian hg(64 * 1024, 7);
  for (int round = 0; round < 2000; ++round) {
    hg.Insert(9, 1);
    for (uint32_t mouse = 0; mouse < 10; ++mouse) {
      hg.Insert(100000 + round * 10 + mouse, 1);
    }
  }
  EXPECT_GT(hg.Query(9), 1800);
}

TEST(HeavyGuardianTest, MiceLandInLightCounters) {
  // Saturate the heavy cells with elephants too big to decay, then stream
  // mice: the mice must lose the guard contest and land in the light
  // counters, so their queries answer non-zero.
  HeavyGuardian hg(1024, 8);  // ~25 buckets, 100 heavy cells
  for (uint32_t key = 1; key <= 200; ++key) hg.Insert(key, 500);
  size_t nonzero = 0;
  for (uint32_t mouse = 10000; mouse < 10200; ++mouse) {
    hg.Insert(mouse, 1);
    if (hg.Query(mouse) > 0) ++nonzero;
  }
  EXPECT_GT(nonzero, 150u);
}

TEST(HeavyGuardianTest, HeavyHitterRecall) {
  Trace trace = SkewedTrace();
  HeavyGuardian hg(128 * 1024, 9);
  for (uint32_t key : trace.keys) hg.Insert(key, 1);
  GroundTruth truth(trace.keys);
  EXPECT_GT(HeavyRecall(hg, truth, trace.keys.size() / 1000,
                        trace.keys.size() / 500),
            0.9);
}

// ---------- ColdFilter+CM ----------

TEST(ColdFilterTest, ColdItemsStayInFilter) {
  ColdFilterCm cf(64 * 1024, 15, 10);
  cf.Insert(5, 10);
  EXPECT_EQ(cf.Query(5), 10);
}

TEST(ColdFilterTest, HotItemsPassThrough) {
  ColdFilterCm cf(64 * 1024, 15, 11);
  for (int i = 0; i < 5000; ++i) cf.Insert(6, 1);
  EXPECT_NEAR(static_cast<double>(cf.Query(6)), 5000.0, 250.0);
}

TEST(ColdFilterTest, BetterThanPlainCmOnSkewedStream) {
  Trace trace = SkewedTrace(200000, 12);
  ColdFilterCm cf(64 * 1024, 15, 12);
  CmSketch cm(64 * 1024, 3, 12);
  for (uint32_t key : trace.keys) {
    cf.Insert(key, 1);
    cm.Insert(key, 1);
  }
  GroundTruth truth(trace.keys);
  double cf_err = 0, cm_err = 0;
  for (const auto& [key, f] : truth.frequencies()) {
    cf_err += std::abs(static_cast<double>(cf.Query(key) - f));
    cm_err += std::abs(static_cast<double>(cm.Query(key) - f));
  }
  EXPECT_LT(cf_err, cm_err);
}

// ---------- SlidingHLL ----------

TEST(SlidingHllTest, CurrentWindowCardinality) {
  SlidingHll hll(12, 3, 13);
  for (uint32_t key = 1; key <= 20000; ++key) hll.Insert(key);
  EXPECT_NEAR(hll.EstimateCardinality(), 20000.0, 1500.0);
}

TEST(SlidingHllTest, ExpiredEpochsDropOut) {
  SlidingHll hll(12, 2, 14);
  for (uint32_t key = 1; key <= 30000; ++key) hll.Insert(key);
  hll.Advance();
  hll.Advance();  // original epoch now out of the 2-epoch window
  EXPECT_LT(hll.EstimateCardinality(), 500.0);
}

TEST(SlidingHllTest, WindowAccumulatesAcrossLiveEpochs) {
  SlidingHll hll(12, 3, 15);
  for (uint32_t key = 1; key <= 10000; ++key) hll.Insert(key);
  hll.Advance();
  for (uint32_t key = 10001; key <= 20000; ++key) hll.Insert(key);
  EXPECT_NEAR(hll.EstimateCardinality(), 20000.0, 1600.0);
}

// ---------- AMS entropy ----------

TEST(AmsEntropyTest, UniformStreamMatchesLogN) {
  AmsEntropyEstimator ams(2048, 16);
  for (int round = 0; round < 20; ++round) {
    for (uint32_t key = 1; key <= 1000; ++key) ams.Insert(key);
  }
  EXPECT_NEAR(ams.EstimateEntropy(), std::log(1000.0), 0.8);
}

TEST(AmsEntropyTest, SkewedStreamWithinTolerance) {
  Trace trace = SkewedTrace(150000, 17);
  GroundTruth truth(trace.keys);
  AmsEntropyEstimator ams(1024, 17);
  for (uint32_t key : trace.keys) ams.Insert(key);
  EXPECT_NEAR(ams.EstimateEntropy(), truth.Entropy(),
              truth.Entropy() * 0.2);
}

TEST(AmsEntropyTest, SingleKeyStreamNearZero) {
  // The estimator is unbiased, so a single-key stream (true entropy 0)
  // gives a near-zero mean, but each sample's X has O(1) variance: allow
  // the statistical tolerance of 1024 samples.
  AmsEntropyEstimator ams(1024, 18);
  for (int i = 0; i < 5000; ++i) ams.Insert(42);
  EXPECT_NEAR(ams.EstimateEntropy(), 0.0, 0.2);
}

}  // namespace
}  // namespace davinci
