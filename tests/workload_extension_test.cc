// Tests for the five-tuple key layer and the uniform/bursty trace shapes.

#include <thread>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/concurrent_davinci.h"
#include "workload/five_tuple.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

// ---------- FiveTuple ----------

TEST(FiveTupleTest, FingerprintDeterministicAndNonZero) {
  FiveTuple t{0x0a000001, 0x08080808, 12345, 443, 6};
  EXPECT_EQ(t.Fingerprint(), t.Fingerprint());
  EXPECT_NE(t.Fingerprint(), 0u);
}

TEST(FiveTupleTest, DistinctTuplesDistinctFingerprints) {
  FiveTuple a{0x0a000001, 0x08080808, 12345, 443, 6};
  FiveTuple b = a;
  b.src_port = 12346;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  FiveTuple c = a;
  c.protocol = 17;
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(FiveTupleTest, ToStringRendersDottedQuad) {
  FiveTuple t{0x0a000001, 0xc0a80102, 1000, 53, 17};
  EXPECT_EQ(t.ToString(), "10.0.0.1:1000->192.168.1.2:53/17");
}

TEST(FiveTupleTest, TraceHasExactPacketCount) {
  FiveTupleTrace trace = BuildFiveTupleTrace(50000, 5000, 1.0, 9);
  EXPECT_EQ(trace.packets.size(), 50000u);
  std::unordered_set<uint32_t> fingerprints;
  for (const FiveTuple& packet : trace.packets) {
    fingerprints.insert(packet.Fingerprint());
  }
  EXPECT_NEAR(static_cast<double>(fingerprints.size()), 5000.0, 100.0);
}

TEST(FiveTupleTest, SketchOverFingerprints) {
  FiveTupleTrace trace = BuildFiveTupleTrace(100000, 10000, 1.1, 10);
  DaVinciSketch sketch(256 * 1024, 1);
  std::unordered_map<uint32_t, int64_t> truth;
  for (const FiveTuple& packet : trace.packets) {
    uint32_t fp = packet.Fingerprint();
    sketch.Insert(fp, 1);
    ++truth[fp];
  }
  // Top tuple is near-exact.
  uint32_t top_fp = 0;
  int64_t top_count = 0;
  for (const auto& [fp, count] : truth) {
    if (count > top_count) {
      top_fp = fp;
      top_count = count;
    }
  }
  EXPECT_NEAR(static_cast<double>(sketch.Query(top_fp)),
              static_cast<double>(top_count), top_count * 0.02);
}

// ---------- uniform / bursty traces ----------

TEST(TraceShapeTest, UniformTraceHasNoElephants) {
  Trace trace = BuildUniformTrace("u", 100000, 10000, 11);
  GroundTruth truth(trace.keys);
  int64_t max_f = 0;
  for (const auto& [key, f] : truth.frequencies()) {
    (void)key;
    max_f = std::max(max_f, f);
  }
  EXPECT_LT(max_f, 40);  // mean is 10; no flow dominates
}

TEST(TraceShapeTest, BurstyTracePreservesFlowSizes) {
  Trace shuffled = BuildSkewedTrace("s", 50000, 5000, 1.1, 12);
  Trace bursty = BuildBurstyTrace("b", 50000, 5000, 1.1, 64, 12);
  GroundTruth a(shuffled.keys), b(bursty.keys);
  ASSERT_EQ(a.cardinality(), b.cardinality());
  for (const auto& [key, f] : a.frequencies()) {
    EXPECT_EQ(b.frequencies().at(key), f);
  }
}

TEST(TraceShapeTest, BurstyTraceIsActuallyBursty) {
  Trace bursty = BuildBurstyTrace("b", 50000, 5000, 1.1, 64, 13);
  // Count adjacent same-key pairs; a shuffled trace of 5000 flows has
  // almost none, a bursty one has many.
  size_t adjacent = 0;
  for (size_t i = 1; i < bursty.keys.size(); ++i) {
    if (bursty.keys[i] == bursty.keys[i - 1]) ++adjacent;
  }
  EXPECT_GT(adjacent, bursty.keys.size() / 2);
}

TEST(TraceShapeTest, DaVinciHandlesBurstyArrivals) {
  Trace bursty = BuildBurstyTrace("b", 100000, 10000, 1.1, 128, 14);
  DaVinciSketch sketch(200 * 1024, 2);
  for (uint32_t key : bursty.keys) sketch.Insert(key, 1);
  GroundTruth truth(bursty.keys);
  for (const auto& [key, f] :
       truth.HeavyHitters(static_cast<int64_t>(bursty.keys.size()) / 500)) {
    EXPECT_NEAR(static_cast<double>(sketch.Query(key)),
                static_cast<double>(f), f * 0.1)
        << key;
  }
}

// ---------- ConcurrentDaVinci ----------

TEST(ConcurrentTest, SingleThreadMatchesShardSum) {
  ConcurrentDaVinci concurrent(4, 512 * 1024, 3);
  for (uint32_t key = 1; key <= 1000; ++key) {
    concurrent.Insert(key, key % 7 + 1);
  }
  for (uint32_t key = 1; key <= 1000; key += 97) {
    EXPECT_EQ(concurrent.Query(key), key % 7 + 1);
  }
  EXPECT_NEAR(concurrent.EstimateCardinality(), 1000.0, 50.0);
}

TEST(ConcurrentTest, ParallelInsertsAreConsistent) {
  ConcurrentDaVinci concurrent(8, 1024 * 1024, 4);
  const int kThreads = 4;
  const int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Each thread hammers one hot key plus its own cold range.
        concurrent.Insert(7777, 1);
        concurrent.Insert(static_cast<uint32_t>(100000 + t * kPerThread + i),
                          1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(concurrent.Query(7777), kThreads * kPerThread);
  EXPECT_NEAR(concurrent.EstimateCardinality(),
              1.0 + kThreads * kPerThread,
              kThreads * kPerThread * 0.05);
}

TEST(ConcurrentTest, SnapshotAnswersAllTasks) {
  ConcurrentDaVinci concurrent(4, 512 * 1024, 5);
  Trace trace = BuildSkewedTrace("c", 80000, 8000, 1.05, 15);
  for (uint32_t key : trace.keys) concurrent.Insert(key, 1);
  DaVinciSketch snapshot = concurrent.Snapshot();
  GroundTruth truth(trace.keys);
  EXPECT_NEAR(snapshot.EstimateCardinality(),
              static_cast<double>(truth.cardinality()),
              truth.cardinality() * 0.1);
  EXPECT_FALSE(snapshot.HeavyHitters(
                       static_cast<int64_t>(trace.keys.size()) / 500)
                   .empty());
}

}  // namespace
}  // namespace davinci
