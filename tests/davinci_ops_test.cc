// Multi-set operations of DaVinci Sketch: union, difference (inclusion and
// overlap), heavy changers, and the nine-component inner product.

#include <unordered_set>

#include <gtest/gtest.h>

#include "core/davinci_sketch.h"
#include "metrics/metrics.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

DaVinciSketch BuildOn(const std::vector<uint32_t>& keys, size_t bytes,
                      uint64_t seed) {
  DaVinciSketch sketch(bytes, seed);
  for (uint32_t key : keys) sketch.Insert(key, 1);
  return sketch;
}

TEST(DaVinciOpsTest, UnionOfDisjointStreams) {
  DaVinciSketch a(128 * 1024, 1), b(128 * 1024, 1);
  for (int i = 0; i < 5000; ++i) a.Insert(11, 1);
  for (int i = 0; i < 3000; ++i) b.Insert(22, 1);
  a.Merge(b);
  EXPECT_EQ(a.Query(11), 5000);
  EXPECT_EQ(a.Query(22), 3000);
}

TEST(DaVinciOpsTest, UnionAccumulatesSharedHeavyFlows) {
  DaVinciSketch a(128 * 1024, 2), b(128 * 1024, 2);
  for (int i = 0; i < 4000; ++i) {
    a.Insert(33, 1);
    b.Insert(33, 1);
  }
  a.Merge(b);
  EXPECT_EQ(a.Query(33), 8000);
}

TEST(DaVinciOpsTest, UnionAreSmallOnTraceHalves) {
  Trace trace = BuildSkewedTrace("t", 200000, 20000, 1.05, 3);
  Trace first = Slice(trace, 0, trace.keys.size() / 2, "a");
  Trace second = Slice(trace, trace.keys.size() / 2, trace.keys.size(), "b");
  DaVinciSketch a = BuildOn(first.keys, 200 * 1024, 3);
  DaVinciSketch b = BuildOn(second.keys, 200 * 1024, 3);
  a.Merge(b);
  GroundTruth truth(trace.keys);
  std::vector<Estimate> observations;
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, a.Query(key)});
  }
  EXPECT_LT(AverageRelativeError(observations), 0.8);
}

TEST(DaVinciOpsTest, InclusionDifferenceRecoversRemainder) {
  // A ⊃ B: subtract half the stream from the whole stream.
  Trace trace = BuildSkewedTrace("t", 100000, 10000, 1.05, 4);
  Trace half = Slice(trace, 0, trace.keys.size() / 2, "half");
  DaVinciSketch whole = BuildOn(trace.keys, 200 * 1024, 4);
  DaVinciSketch part = BuildOn(half.keys, 200 * 1024, 4);
  whole.Subtract(part);

  GroundTruth truth_whole(trace.keys);
  GroundTruth truth_half(half.keys);
  GroundTruth diff = GroundTruth::Difference(truth_whole, truth_half);
  std::vector<Estimate> observations;
  for (const auto& [key, f] : diff.frequencies()) {
    observations.push_back({f, whole.Query(key)});
  }
  EXPECT_LT(AverageRelativeError(observations), 1.0);
}

TEST(DaVinciOpsTest, DifferenceWithNegativeSide) {
  DaVinciSketch a(128 * 1024, 5), b(128 * 1024, 5);
  for (int i = 0; i < 2000; ++i) a.Insert(50, 1);
  for (int i = 0; i < 3000; ++i) b.Insert(60, 1);
  a.Subtract(b);
  EXPECT_NEAR(static_cast<double>(a.Query(50)), 2000.0, 100.0);
  EXPECT_NEAR(static_cast<double>(a.Query(60)), -3000.0, 150.0);
}

TEST(DaVinciOpsTest, ExactCancellation) {
  std::vector<uint32_t> keys;
  for (uint32_t key = 1; key <= 500; ++key) {
    for (int i = 0; i < 30; ++i) keys.push_back(key);
  }
  DaVinciSketch a = BuildOn(keys, 128 * 1024, 6);
  DaVinciSketch b = BuildOn(keys, 128 * 1024, 6);
  a.Subtract(b);
  for (uint32_t key = 1; key <= 500; key += 17) {
    EXPECT_EQ(a.Query(key), 0) << key;
  }
}

TEST(DaVinciOpsTest, HeavyChangersDetected) {
  Trace window1 = BuildSkewedTrace("w1", 100000, 10000, 1.05, 7);
  DaVinciSketch a = BuildOn(window1.keys, 200 * 1024, 7);
  DaVinciSketch b = BuildOn(window1.keys, 200 * 1024, 7);
  // Window 2 = window 1 plus one flow that surges by 5000 packets.
  uint32_t surging = window1.keys[0];
  for (int i = 0; i < 5000; ++i) b.Insert(surging, 1);

  auto changers = b.HeavyChangers(a, 2500);
  bool found = false;
  for (const auto& [key, change] : changers) {
    if (key == surging) {
      found = true;
      EXPECT_NEAR(static_cast<double>(change), 5000.0, 500.0);
    }
  }
  EXPECT_TRUE(found);
  // No false positives above the threshold.
  EXPECT_LE(changers.size(), 3u);
}

TEST(DaVinciOpsTest, InnerProductSmallExactCase) {
  DaVinciSketch a(128 * 1024, 8), b(128 * 1024, 8);
  a.Insert(1, 100);
  a.Insert(2, 50);
  b.Insert(1, 200);
  b.Insert(3, 70);
  // f⊙g = 100·200 = 20000, both flows resident in the FPs.
  EXPECT_NEAR(DaVinciSketch::InnerProduct(a, b), 20000.0, 2000.0);
}

TEST(DaVinciOpsTest, InnerProductAreSmallOnOverlappingWindows) {
  Trace trace = BuildSkewedTrace("t", 200000, 10000, 1.1, 9);
  Trace wa = Slice(trace, 0, trace.keys.size() * 2 / 3, "a");
  Trace wb = Slice(trace, trace.keys.size() / 3, trace.keys.size(), "b");
  DaVinciSketch a = BuildOn(wa.keys, 300 * 1024, 9);
  DaVinciSketch b = BuildOn(wb.keys, 300 * 1024, 9);
  double truth =
      GroundTruth::InnerJoin(GroundTruth(wa.keys), GroundTruth(wb.keys));
  double est = DaVinciSketch::InnerProduct(a, b);
  EXPECT_LT(RelativeError(truth, est), 0.1);
}

TEST(DaVinciOpsTest, QueriesStillWorkAfterUnionThenDifference) {
  DaVinciSketch a(128 * 1024, 10), b(128 * 1024, 10), c(128 * 1024, 10);
  for (int i = 0; i < 1000; ++i) {
    a.Insert(5, 1);
    b.Insert(5, 1);
    c.Insert(5, 1);
  }
  a.Merge(b);     // 2000 of key 5
  a.Subtract(c);  // back to 1000
  EXPECT_NEAR(static_cast<double>(a.Query(5)), 1000.0, 100.0);
}

}  // namespace
}  // namespace davinci
