// End-to-end behaviour of the DaVinci Sketch facade on all nine tasks.

#include "core/davinci_sketch.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "metrics/metrics.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

DaVinciSketch BuildOn(const Trace& trace, size_t bytes = 200 * 1024,
                      uint64_t seed = 1) {
  DaVinciSketch sketch(bytes, seed);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);
  return sketch;
}

TEST(DaVinciSketchTest, ExactForSingleFlow) {
  DaVinciSketch sketch(64 * 1024, 1);
  for (int i = 0; i < 12345; ++i) sketch.Insert(42, 1);
  EXPECT_EQ(sketch.Query(42), 12345);
  sketch.CheckInvariants(InvariantMode::kAdditive);
}

TEST(DaVinciSketchTest, SmallFlowStaysInFilter) {
  DaVinciSketch sketch(64 * 1024, 2);
  // Fill the FP bucket space with heavy flows first is unnecessary: a lone
  // small flow sits in the FP. Instead check the decomposition on a flow
  // that was rejected from a full bucket — emulated by many distinct keys.
  for (uint32_t key = 1; key <= 20000; ++key) sketch.Insert(key, 1);
  // All flows have size 1; every estimate must be small.
  for (uint32_t key = 1; key <= 100; ++key) {
    EXPECT_LE(sketch.Query(key), 4);
    EXPECT_GE(sketch.Query(key), 0);
  }
}

TEST(DaVinciSketchTest, FrequencyAreSmallOnSkewedTrace) {
  Trace trace = BuildSkewedTrace("t", 300000, 30000, 1.05, 3);
  DaVinciSketch sketch = BuildOn(trace, 200 * 1024, 3);
  GroundTruth truth(trace.keys);
  std::vector<Estimate> observations;
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, sketch.Query(key)});
  }
  EXPECT_LT(AverageRelativeError(observations), 0.2);
}

TEST(DaVinciSketchTest, HeavyFlowsNearExact) {
  Trace trace = BuildSkewedTrace("t", 300000, 30000, 1.05, 4);
  DaVinciSketch sketch = BuildOn(trace, 200 * 1024, 4);
  GroundTruth truth(trace.keys);
  for (const auto& [key, f] :
       truth.HeavyHitters(static_cast<int64_t>(trace.keys.size()) / 1000)) {
    EXPECT_NEAR(static_cast<double>(sketch.Query(key)),
                static_cast<double>(f), f * 0.05)
        << "heavy flow " << key;
  }
}

TEST(DaVinciSketchTest, HeavyHitterF1High) {
  Trace trace = BuildSkewedTrace("t", 300000, 30000, 1.05, 5);
  DaVinciSketch sketch = BuildOn(trace, 200 * 1024, 5);
  GroundTruth truth(trace.keys);
  int64_t threshold = static_cast<int64_t>(trace.keys.size() * 0.0002);
  auto reported = sketch.HeavyHitters(threshold);
  auto actual = truth.HeavyHitters(threshold);
  std::unordered_set<uint32_t> actual_keys;
  for (const auto& [key, f] : actual) actual_keys.insert(key);
  size_t correct = 0;
  for (const auto& [key, est] : reported) {
    if (actual_keys.count(key)) ++correct;
  }
  EXPECT_GT(F1Score(correct, reported.size(), actual.size()), 0.95);
}

TEST(DaVinciSketchTest, CardinalityWithinFivePercent) {
  Trace trace = BuildSkewedTrace("t", 300000, 30000, 1.05, 6);
  DaVinciSketch sketch = BuildOn(trace, 200 * 1024, 6);
  GroundTruth truth(trace.keys);
  EXPECT_NEAR(sketch.EstimateCardinality(),
              static_cast<double>(truth.cardinality()),
              truth.cardinality() * 0.05);
}

TEST(DaVinciSketchTest, DistributionWmreSmall) {
  Trace trace = BuildSkewedTrace("t", 300000, 30000, 1.05, 7);
  DaVinciSketch sketch = BuildOn(trace, 600 * 1024, 7);
  GroundTruth truth(trace.keys);
  double wmre =
      WeightedMeanRelativeError(truth.Distribution(), sketch.Distribution());
  EXPECT_LT(wmre, 0.4);
}

TEST(DaVinciSketchTest, EntropyWithinTolerance) {
  Trace trace = BuildSkewedTrace("t", 300000, 30000, 1.05, 8);
  DaVinciSketch sketch = BuildOn(trace, 600 * 1024, 8);
  GroundTruth truth(trace.keys);
  EXPECT_NEAR(sketch.EstimateEntropy(), truth.Entropy(),
              truth.Entropy() * 0.1);
}

TEST(DaVinciSketchTest, DecodedFlowsMatchTruthExactly) {
  // Medium flows (above T, outside FP) decode to their exact IFP share;
  // with query composition the full count is recovered.
  DaVinciSketch sketch(256 * 1024, 9);
  for (uint32_t key = 1; key <= 1000; ++key) {
    for (int i = 0; i < 60; ++i) sketch.Insert(key, 1);
  }
  for (uint32_t key = 1; key <= 1000; ++key) {
    EXPECT_EQ(sketch.Query(key), 60) << key;
  }
}

TEST(DaVinciSketchTest, QueryCachesDecodeAcrossCalls) {
  Trace trace = BuildSkewedTrace("t", 50000, 5000, 1.0, 10);
  DaVinciSketch sketch = BuildOn(trace, 128 * 1024, 10);
  const auto& first = sketch.DecodedFlows();
  const auto& second = sketch.DecodedFlows();
  EXPECT_EQ(&first, &second);  // same cached object
  sketch.Insert(424243, 1);
  const auto& third = sketch.DecodedFlows();
  (void)third;  // cache was rebuilt without crashing
}

TEST(DaVinciSketchTest, MemoryBudgetHonored) {
  for (size_t kb : {100, 200, 400, 600}) {
    DaVinciSketch sketch(kb * 1024, 11);
    EXPECT_LE(sketch.MemoryBytes(), kb * 1024 + 2048) << kb;
    EXPECT_GE(sketch.MemoryBytes(), kb * 1024 * 8 / 10) << kb;
  }
}

TEST(DaVinciSketchTest, MemoryAccessesPerInsertIsSmall) {
  Trace trace = BuildSkewedTrace("t", 100000, 10000, 1.05, 12);
  DaVinciSketch sketch = BuildOn(trace, 200 * 1024, 12);
  double ama = static_cast<double>(sketch.MemoryAccesses()) /
               static_cast<double>(trace.keys.size());
  // Paper reports ~6.7 accesses/insert with c=7, m=2, d=3.
  EXPECT_LT(ama, 14.0);
  EXPECT_GT(ama, 1.0);
}

TEST(DaVinciSketchTest, CountParameterInsertsBatch) {
  DaVinciSketch sketch(64 * 1024, 13);
  sketch.Insert(5, 1000);
  EXPECT_EQ(sketch.Query(5), 1000);
}

}  // namespace
}  // namespace davinci
