#ifndef DAVINCI_TESTS_TEST_SEED_H_
#define DAVINCI_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

// Seed plumbing for randomized tests: every such test calls
// TestSeed(default) so DAVINCI_TEST_SEED=<n> reproduces a failure, and
// DAVINCI_ANNOUNCE_SEED(seed) so the seed is printed with any failing
// assertion (via SCOPED_TRACE) and recorded in the XML report.

namespace davinci::testing {

inline uint64_t TestSeed(uint64_t default_seed) {
  const char* env = std::getenv("DAVINCI_TEST_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  char* end = nullptr;
  unsigned long long value = std::strtoull(env, &end, 10);
  return (end != env) ? static_cast<uint64_t>(value) : default_seed;
}

}  // namespace davinci::testing

// Attaches "rerun with DAVINCI_TEST_SEED=<seed>" to every assertion failure
// in the current scope and records the seed as a test property.
#define DAVINCI_ANNOUNCE_SEED(seed)                                        \
  ::testing::Test::RecordProperty("davinci_test_seed",                     \
                                  std::to_string(seed));                   \
  SCOPED_TRACE("rerun with DAVINCI_TEST_SEED=" + std::to_string(seed))

#endif  // DAVINCI_TESTS_TEST_SEED_H_
