#include "core/extended_queries.h"

#include <gtest/gtest.h>

#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

DaVinciSketch Build(const std::vector<uint32_t>& keys, uint64_t seed,
                    size_t bytes = 256 * 1024) {
  DaVinciSketch sketch(bytes, seed);
  for (uint32_t key : keys) sketch.Insert(key, 1);
  return sketch;
}

TEST(ExtendedQueriesTest, IntersectionOfOverlappingSets) {
  // A = {1..6000}, B = {4001..10000} → |A∩B| = 2000.
  std::vector<uint32_t> a_keys, b_keys;
  for (uint32_t key = 1; key <= 6000; ++key) a_keys.push_back(key);
  for (uint32_t key = 4001; key <= 10000; ++key) b_keys.push_back(key);
  DaVinciSketch a = Build(a_keys, 1);
  DaVinciSketch b = Build(b_keys, 1);
  EXPECT_NEAR(EstimateIntersectionCardinality(a, b), 2000.0, 300.0);
}

TEST(ExtendedQueriesTest, IntersectionOfDisjointSetsNearZero) {
  std::vector<uint32_t> a_keys, b_keys;
  for (uint32_t key = 1; key <= 5000; ++key) a_keys.push_back(key);
  for (uint32_t key = 100000; key <= 105000; ++key) b_keys.push_back(key);
  DaVinciSketch a = Build(a_keys, 2);
  DaVinciSketch b = Build(b_keys, 2);
  EXPECT_LT(EstimateIntersectionCardinality(a, b), 300.0);
}

TEST(ExtendedQueriesTest, JaccardIdenticalSetsNearOne) {
  std::vector<uint32_t> keys;
  for (uint32_t key = 1; key <= 8000; ++key) keys.push_back(key);
  DaVinciSketch a = Build(keys, 3);
  DaVinciSketch b = Build(keys, 3);
  EXPECT_GT(EstimateJaccard(a, b), 0.9);
}

TEST(ExtendedQueriesTest, JaccardHalfOverlap) {
  // |A∩B| = 5000, |A∪B| = 15000 → J = 1/3.
  std::vector<uint32_t> a_keys, b_keys;
  for (uint32_t key = 1; key <= 10000; ++key) a_keys.push_back(key);
  for (uint32_t key = 5001; key <= 15000; ++key) b_keys.push_back(key);
  DaVinciSketch a = Build(a_keys, 4);
  DaVinciSketch b = Build(b_keys, 4);
  EXPECT_NEAR(EstimateJaccard(a, b), 1.0 / 3.0, 0.07);
}

TEST(ExtendedQueriesTest, TopKOrderAndContents) {
  DaVinciSketch sketch(256 * 1024, 5);
  // Sizes 100, 200, ..., 1000 for keys 1..10 plus background noise.
  for (uint32_t key = 1; key <= 10; ++key) {
    sketch.Insert(key, key * 100);
  }
  for (uint32_t key = 1000; key < 3000; ++key) sketch.Insert(key, 1);
  auto top3 = TopK(sketch, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].first, 10u);
  EXPECT_EQ(top3[1].first, 9u);
  EXPECT_EQ(top3[2].first, 8u);
  EXPECT_GE(top3[0].second, top3[1].second);
  EXPECT_GE(top3[1].second, top3[2].second);
}

TEST(ExtendedQueriesTest, TopKLargerThanCandidateSet) {
  DaVinciSketch sketch(128 * 1024, 6);
  sketch.Insert(1, 50);
  sketch.Insert(2, 60);
  auto top = TopK(sketch, 100);
  EXPECT_LE(top.size(), 100u);
  EXPECT_GE(top.size(), 2u);
}

TEST(ExtendedQueriesTest, QuantilesOfSkewedTrace) {
  Trace trace = BuildSkewedTrace("t", 150000, 15000, 1.05, 7);
  DaVinciSketch sketch = Build(trace.keys, 7, 400 * 1024);
  GroundTruth truth(trace.keys);
  // Exact quantiles from the true histogram.
  auto hist = truth.Distribution();
  double total = 0;
  for (const auto& [size, n] : hist) {
    (void)size;
    total += static_cast<double>(n);
  }
  auto exact_quantile = [&](double q) {
    double cum = 0;
    for (const auto& [size, n] : hist) {
      cum += static_cast<double>(n);
      if (cum / total >= q) return size;
    }
    return hist.rbegin()->first;
  };
  // The median of flow sizes is small (mice dominate) and must match.
  EXPECT_EQ(FlowSizeQuantile(sketch, 0.5), exact_quantile(0.5));
  // High quantiles should be within a factor of ~2.
  double q99_true = static_cast<double>(exact_quantile(0.99));
  double q99_est = static_cast<double>(FlowSizeQuantile(sketch, 0.99));
  EXPECT_GT(q99_est, q99_true * 0.5);
  EXPECT_LT(q99_est, q99_true * 2.0);
}

TEST(ExtendedQueriesTest, SecondMomentMatchesTruth) {
  Trace trace = BuildSkewedTrace("t", 100000, 10000, 1.1, 8);
  DaVinciSketch sketch = Build(trace.keys, 8);
  GroundTruth truth(trace.keys);
  double f2 = GroundTruth::InnerJoin(truth, truth);
  EXPECT_NEAR(EstimateSecondMoment(sketch), f2, f2 * 0.05);
}

}  // namespace
}  // namespace davinci
