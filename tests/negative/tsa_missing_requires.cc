// Negative-compilation probe: calling a REQUIRES(mu_) function without
// holding the mutex — the shape of the ConcurrentDaVinci::Publish
// contract. The `-Wthread-safety -Werror` build MUST reject this file;
// cmake/NegativeCompileTSA.cmake fails the configure if it compiles.
#include "common/thread_annotations.h"

namespace {

class Engine {
 public:
  // BAD: Publish demands mu_, Tick calls it lock-free.
  void Tick() { Publish(); }

 private:
  void Publish() DAVINCI_REQUIRES(mu_) { ++published_; }

  davinci::Mutex mu_;
  int published_ DAVINCI_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Engine engine;
  engine.Tick();
  return 0;
}
