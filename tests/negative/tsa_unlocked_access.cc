// Negative-compilation probe: an unlocked write to a GUARDED_BY field.
// The `-Wthread-safety -Werror` build MUST reject this file; if it ever
// compiles, the annotations have rotted (macros expanding to nothing under
// clang, a capability type losing its attribute, ...) and
// cmake/NegativeCompileTSA.cmake fails the configure.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  // BAD: touches value_ without holding mu_.
  void Bump() { ++value_; }

 private:
  davinci::Mutex mu_;
  int value_ DAVINCI_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return 0;
}
