// Control for the negative-compilation harness (cmake/NegativeCompileTSA
// .cmake): correctly-locked code that MUST compile under
// `-Wthread-safety -Werror`. If this file fails, the toolchain itself is
// broken and the two expected-failure probes prove nothing.
#include "common/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() DAVINCI_EXCLUDES(mu_) {
    davinci::MutexLock lock(&mu_);
    ++value_;
  }

  int Read() DAVINCI_EXCLUDES(mu_) {
    davinci::MutexLock lock(&mu_);
    return value_;
  }

 private:
  davinci::Mutex mu_;
  int value_ DAVINCI_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Bump();
  return counter.Read() == 1 ? 0 : 1;
}
