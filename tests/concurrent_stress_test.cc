// Hammers ConcurrentDaVinci from many threads at once — writers running
// Insert/InsertBatch against readers running Query/EstimateCardinality/
// Snapshot and a merger folding a second sharded sketch in mid-stream.
// Functional in every build; its real teeth come from the `tsan` preset
// (-fsanitize=thread), where any unlocked shard access or lock-order
// inversion turns into a hard failure.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_davinci.h"
#include "server/client.h"
#include "server/server.h"
#include "test_seed.h"

namespace davinci {
namespace {

// Deterministic per-thread key stream: thread t draws from a disjoint key
// range so post-join totals are predictable.
std::vector<uint32_t> ThreadKeys(int thread, size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed * 1000003 + static_cast<uint64_t>(thread));
  uint32_t lo = static_cast<uint32_t>(thread) * 100000 + 1;
  std::uniform_int_distribution<uint32_t> dist(lo, lo + 9999);
  std::vector<uint32_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(dist(rng));
  return keys;
}

TEST(ConcurrentStressTest, InsertsRacingQueriesAndSnapshots) {
  constexpr int kWriters = 4;
  constexpr size_t kKeysPerWriter = 20000;
  const uint64_t seed = testing::TestSeed(7);
  DAVINCI_ANNOUNCE_SEED(seed);
  ConcurrentDaVinci sketch(4, 512 * 1024, seed);

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  // Writers: mixed single and batched inserts.
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&sketch, t] {
      std::vector<uint32_t> keys = ThreadKeys(t, kKeysPerWriter, 7);
      size_t half = keys.size() / 2;
      for (size_t i = 0; i < half; ++i) sketch.Insert(keys[i]);
      sketch.InsertBatch(
          std::span<const uint32_t>(keys.data() + half, keys.size() - half));
    });
  }
  // Readers: point queries, cardinality, snapshots, structural audits.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&sketch, &done, t] {
      std::mt19937_64 rng(900 + static_cast<uint64_t>(t));
      std::uniform_int_distribution<uint32_t> dist(1, 400000);
      while (!done.load(std::memory_order_acquire)) {
        for (int i = 0; i < 64; ++i) {
          // Absent keys may estimate slightly negative (signed IFP fast
          // query); anything huge means torn state.
          int64_t estimate = sketch.Query(dist(rng));
          EXPECT_LT(std::llabs(estimate), int64_t{1} << 40);
        }
        EXPECT_GE(sketch.EstimateCardinality(), 0.0);
        DaVinciSketch snapshot = sketch.Snapshot();
        EXPECT_GT(snapshot.MemoryBytes(), 0u);
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[static_cast<size_t>(t)].join();
  done.store(true, std::memory_order_release);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  sketch.CheckInvariants(InvariantMode::kAdditive);
  // Every writer inserted kKeysPerWriter packets into a ~10k-key range;
  // cardinality must land near the true distinct count (well under the
  // inserted-packet total, well above a small constant).
  double cardinality = sketch.EstimateCardinality();
  EXPECT_GT(cardinality, 0.5 * 10000 * kWriters);
  EXPECT_LT(cardinality, 2.0 * 10000 * kWriters);
}

TEST(ConcurrentStressTest, MergeRacingInsertsAndQueries) {
  constexpr size_t kKeysPerWriter = 15000;
  ConcurrentDaVinci target(4, 256 * 1024, 13);
  ConcurrentDaVinci source(4, 256 * 1024, 13);
  source.InsertBatch(
      std::span<const uint32_t>(ThreadKeys(8, kKeysPerWriter, 13)));

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  // Two writers keep inserting into the target while it absorbs merges.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&target, t] {
      std::vector<uint32_t> keys = ThreadKeys(t, kKeysPerWriter, 13);
      target.InsertBatch(std::span<const uint32_t>(keys));
    });
  }
  // One writer keeps inserting into the source while it is being merged
  // from — Merge holds both shards' locks, so this must be race-free.
  threads.emplace_back([&source] {
    std::vector<uint32_t> keys = ThreadKeys(5, kKeysPerWriter, 13);
    for (uint32_t key : keys) source.Insert(key);
  });
  // The merger folds source into target repeatedly, racing everything.
  threads.emplace_back([&target, &source] {
    for (int i = 0; i < 3; ++i) target.Merge(source);
  });
  // A reader hammers both sides throughout.
  threads.emplace_back([&target, &source, &done] {
    std::mt19937_64 rng(4242);
    std::uniform_int_distribution<uint32_t> dist(1, 900000);
    while (!done.load(std::memory_order_acquire)) {
      int64_t a = target.Query(dist(rng));
      int64_t b = source.Query(dist(rng));
      EXPECT_LT(std::llabs(a) + std::llabs(b), int64_t{1} << 40);
    }
  });
  for (size_t t = 0; t + 1 < threads.size(); ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  threads.back().join();

  target.CheckInvariants(InvariantMode::kAdditive);
  source.CheckInvariants(InvariantMode::kAdditive);
  EXPECT_GT(target.EstimateCardinality(), 0.0);
}

TEST(ConcurrentStressTest, SnapshotViewsRacingWriters) {
  // RCU leg: readers pin SnapshotAll() views and keep reading them while
  // writers race ahead and republish. Runs everywhere; the tsan CI leg
  // sets DAVINCI_STRESS_SNAPSHOTS=1 for a longer soak.
  const char* soak_env = std::getenv("DAVINCI_STRESS_SNAPSHOTS");
  const bool soak = soak_env != nullptr && *soak_env != '\0';
  const size_t keys_per_writer = soak ? 30000 : 8000;
  ConcurrentDaVinci sketch(4, 256 * 1024, 23);

  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&sketch, t, keys_per_writer] {
      std::vector<uint32_t> keys = ThreadKeys(t, keys_per_writer, 23);
      size_t half = keys.size() / 2;
      for (size_t i = 0; i < half; ++i) sketch.Insert(keys[i]);
      sketch.InsertBatch(
          std::span<const uint32_t>(keys.data() + half, keys.size() - half));
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&sketch, &done, t] {
      std::mt19937_64 rng(7000 + static_cast<uint64_t>(t));
      std::uniform_int_distribution<uint32_t> dist(1, 300000);
      while (!done.load(std::memory_order_acquire)) {
        // Pin a coherent serving set, then read it while writers move on:
        // each view must stay internally consistent (CoW) even though the
        // shard has long since republished.
        auto views = sketch.SnapshotAll();
        int64_t total = 0;
        for (const auto& view : views) {
          total += view->Query(dist(rng));
          EXPECT_GT(view->MemoryBytes(), 0u);
        }
        EXPECT_LT(std::llabs(total), int64_t{1} << 40);
        for (const auto& view : views) {
          EXPECT_GE(view->EstimateCardinality(), 0.0);
          (void)view->HeavyHitters(1 << 20);
        }
      }
    });
  }
  for (int t = 0; t < 2; ++t) threads[static_cast<size_t>(t)].join();
  done.store(true, std::memory_order_release);
  for (size_t t = 2; t < threads.size(); ++t) threads[t].join();

  sketch.CheckInvariants(InvariantMode::kAdditive);
}

TEST(ConcurrentStressTest, CrossMergeDoesNotDeadlock) {
  // Two instances merging into each other concurrently: std::scoped_lock's
  // deadlock-avoidance must hold even with writers active on both.
  ConcurrentDaVinci a(4, 128 * 1024, 17);
  ConcurrentDaVinci b(4, 128 * 1024, 17);
  a.InsertBatch(std::span<const uint32_t>(ThreadKeys(0, 10000, 17)));
  b.InsertBatch(std::span<const uint32_t>(ThreadKeys(1, 10000, 17)));

  std::vector<std::thread> threads;
  threads.emplace_back([&] { a.Merge(b); });
  threads.emplace_back([&] { b.Merge(a); });
  threads.emplace_back([&a] {
    for (uint32_t key : ThreadKeys(2, 5000, 17)) a.Insert(key);
  });
  threads.emplace_back([&b] {
    for (uint32_t key : ThreadKeys(3, 5000, 17)) b.Insert(key);
  });
  for (std::thread& t : threads) t.join();

  a.CheckInvariants(InvariantMode::kAdditive);
  b.CheckInvariants(InvariantMode::kAdditive);
}

TEST(ConcurrentStressTest, MultiTenantServerSoak) {
  // Server leg: N client threads hammer M tenants over real sockets with
  // mixed ops — batched ingest, point/batch queries, heavy hitters,
  // cardinality, epoch seals, cross-tenant unions, admin churn. Runs a
  // short version everywhere; the tsan CI leg sets DAVINCI_STRESS_SERVER=1
  // for a longer soak (dispatcher + registry + tenant synchronization all
  // under the race detector).
  const char* soak_env = std::getenv("DAVINCI_STRESS_SERVER");
  const bool soak = soak_env != nullptr && *soak_env != '\0';
  const int kClients = 4;
  const int kTenants = 4;
  const int rounds = soak ? 60 : 12;
  const uint64_t seed = testing::TestSeed(29);
  DAVINCI_ANNOUNCE_SEED(seed);

  server::ServerOptions options;
  options.workers = 3;
  server::SketchServer server(options);
  ASSERT_TRUE(server.Start());
  {
    server::Client admin;
    ASSERT_TRUE(admin.Connect(server.port()));
    for (int m = 0; m < kTenants; ++m) {
      // Shared seed: every cross-tenant pairing stays geometry-compatible.
      ASSERT_EQ(admin.CreateTenant("soak" + std::to_string(m), 4, 128 * 1024,
                                   seed),
                server::StatusCode::kOk);
    }
  }

  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&server, c, rounds, seed] {
      server::Client client;
      ASSERT_TRUE(client.Connect(server.port()));
      std::mt19937_64 rng(seed * 77 + static_cast<uint64_t>(c));
      std::uniform_int_distribution<int> pick_tenant(0, kTenants - 1);
      for (int round = 0; round < rounds; ++round) {
        std::string tenant = "soak" + std::to_string(pick_tenant(rng));
        std::string other = "soak" + std::to_string(pick_tenant(rng));
        std::vector<uint32_t> keys = ThreadKeys(c, 512, seed + 1);
        std::vector<int64_t> ones(keys.size(), 1);
        ASSERT_EQ(client.InsertBatch(tenant, keys, ones),
                  server::StatusCode::kOk);
        int64_t count = 0;
        ASSERT_EQ(client.Query(tenant, keys[0], &count),
                  server::StatusCode::kOk);
        EXPECT_LT(std::llabs(count), int64_t{1} << 40);
        std::vector<int64_t> batch;
        ASSERT_EQ(client.QueryBatch(tenant, keys, &batch),
                  server::StatusCode::kOk);
        EXPECT_EQ(batch.size(), keys.size());
        double cardinality = -1;
        ASSERT_EQ(client.Cardinality(tenant, &cardinality),
                  server::StatusCode::kOk);
        EXPECT_GE(cardinality, 0.0);
        std::vector<std::pair<uint32_t, int64_t>> hitters;
        ASSERT_EQ(client.HeavyHitters(tenant, 1000, &hitters),
                  server::StatusCode::kOk);
        if (round % 4 == c % 4) {
          uint64_t epoch = 0;
          ASSERT_EQ(client.AdvanceEpoch(tenant, &epoch),
                    server::StatusCode::kOk);
        }
        if (tenant != other) {
          double union_card = -1;
          ASSERT_EQ(client.UnionCardinality(tenant, other, &union_card),
                    server::StatusCode::kOk);
          EXPECT_GE(union_card, 0.0);
        }
        std::vector<std::string> names;
        ASSERT_EQ(client.ListTenants(&names), server::StatusCode::kOk);
        EXPECT_GE(names.size(), static_cast<size_t>(kTenants));
        server::HealthReply health;
        ASSERT_EQ(client.Health(tenant, &health), server::StatusCode::kOk);
        EXPECT_EQ(health.shards, 4u);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Post-join structural audit of every tenant the storm touched.
  for (int m = 0; m < kTenants; ++m) {
    std::shared_ptr<server::Tenant> tenant =
        server.registry().Find("soak" + std::to_string(m));
    ASSERT_NE(tenant, nullptr);
    tenant->engine().CheckInvariants(InvariantMode::kAdditive);
  }
  server.Stop();
}

}  // namespace
}  // namespace davinci
