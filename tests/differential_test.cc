// Differential testing: random operation sequences executed in parallel
// against DaVinci Sketch and an exact dictionary; the sketch's answers must
// track the dictionary within accuracy tolerances regardless of the
// sequence of inserts / merges / subtracts.

#include <map>
#include <random>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/davinci_sketch.h"
#include "test_seed.h"
#include "metrics/metrics.h"

namespace davinci {
namespace {

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, RandomInsertSequencesTrackDictionary) {
  const uint64_t seed = testing::TestSeed(GetParam());
  DAVINCI_ANNOUNCE_SEED(seed);
  std::mt19937_64 rng(seed);
  DaVinciSketch sketch(256 * 1024, GetParam());
  std::unordered_map<uint32_t, int64_t> exact;

  // A mix of hot keys (Zipf-ish via modulo bias) and one-off keys.
  for (int i = 0; i < 150000; ++i) {
    uint32_t key;
    if (rng() % 100 < 60) {
      key = static_cast<uint32_t>(rng() % 64 + 1);  // hot set
    } else if (rng() % 100 < 90) {
      key = static_cast<uint32_t>(rng() % 4096 + 1000);  // warm set
    } else {
      key = static_cast<uint32_t>(rng() | 1);  // cold one-offs
    }
    int64_t count = static_cast<int64_t>(rng() % 3 + 1);
    sketch.Insert(key, count);
    exact[key] += count;
  }

  std::vector<Estimate> observations;
  for (const auto& [key, f] : exact) {
    observations.push_back({f, sketch.Query(key)});
  }
  EXPECT_LT(AverageRelativeError(observations), 0.35);

  // Hot keys individually accurate.
  for (uint32_t key = 1; key <= 64; ++key) {
    auto it = exact.find(key);
    if (it == exact.end()) continue;
    EXPECT_NEAR(static_cast<double>(sketch.Query(key)),
                static_cast<double>(it->second), it->second * 0.05)
        << key;
  }
}

TEST_P(DifferentialTest, RandomMergeSubtractProgramsStayConsistent) {
  const uint64_t base = testing::TestSeed(GetParam());
  DAVINCI_ANNOUNCE_SEED(base);
  std::mt19937_64 rng(base * 977);
  const size_t kBytes = 192 * 1024;
  const uint64_t kSeed = 5;

  // Three streams with overlapping key ranges.
  std::vector<std::unordered_map<uint32_t, int64_t>> exact(3);
  std::vector<DaVinciSketch> sketches;
  for (int s = 0; s < 3; ++s) sketches.emplace_back(kBytes, kSeed);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 30000; ++i) {
      uint32_t key = static_cast<uint32_t>(rng() % 3000 + s * 1000 + 1);
      sketches[s].Insert(key, 1);
      ++exact[s][key];
    }
  }

  // Random program: result = s0 ± s1 ± s2.
  DaVinciSketch result = sketches[0];
  std::unordered_map<uint32_t, int64_t> expected = exact[0];
  for (int s = 1; s < 3; ++s) {
    bool subtract = rng() % 2 == 0;
    if (subtract) {
      result.Subtract(sketches[s]);
      for (const auto& [key, f] : exact[s]) expected[key] -= f;
    } else {
      result.Merge(sketches[s]);
      for (const auto& [key, f] : exact[s]) expected[key] += f;
    }
  }

  // The result sketch must track the expected signed frequencies of the
  // heavy keys (|expected| in the upper decile).
  std::vector<std::pair<int64_t, uint32_t>> ranked;
  for (const auto& [key, f] : expected) {
    ranked.emplace_back(std::llabs(f), key);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  size_t top = std::max<size_t>(1, ranked.size() / 10);
  for (size_t i = 0; i < top; ++i) {
    uint32_t key = ranked[i].second;
    double truth = static_cast<double>(expected[key]);
    double est = static_cast<double>(result.Query(key));
    EXPECT_NEAR(est, truth, std::max(10.0, std::abs(truth) * 0.25))
        << "key " << key << " after random program";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace davinci
