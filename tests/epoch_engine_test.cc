// Epoch & snapshot lifecycle (DESIGN.md §10): CoW snapshot semantics on
// DaVinciSketch, the RCU read path of ConcurrentDaVinci, and the
// EpochManager rotation/memoized-window machinery behind SlidingDaVinci.
// The tsan preset turns the racing sections into hard data-race checks.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <random>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_davinci.h"
#include "core/extended_queries.h"
#include "core/sliding_davinci.h"
#include "obs/stats.h"
#include "test_seed.h"

namespace davinci {
namespace {

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char byte : bytes) {
    hash ^= byte;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string SaveBytes(const DaVinciSketch& sketch) {
  std::ostringstream buffer;
  sketch.Save(buffer);
  return buffer.str();
}

std::vector<uint32_t> Keys(uint32_t lo, size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> dist(lo, lo + 49999);
  std::vector<uint32_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(dist(rng));
  return keys;
}

// ---- CoW snapshots --------------------------------------------------------

TEST(SnapshotTest, NoCloneWhenNoSnapshotOutstanding) {
  obs::CowTally::ResetForTesting();
  DaVinciSketch sketch(64 * 1024, testing::TestSeed(31));
  for (uint32_t key : Keys(1, 20000, 31)) sketch.Insert(key, 1);
  // The write path must mutate in place when nobody shares the buffers.
  EXPECT_EQ(obs::CowTally::Clones(), 0u);
  EXPECT_EQ(obs::CowTally::CloneBytes(), 0u);

  // A snapshot taken and dropped before the next write must not force a
  // clone either: the refcount is back to one when the write lands.
  sketch.Snapshot();
  for (uint32_t key : Keys(1, 1000, 32)) sketch.Insert(key, 1);
  EXPECT_EQ(obs::CowTally::Clones(), 0u);
}

TEST(SnapshotTest, ImmutableWhileWriterMutates) {
  obs::CowTally::ResetForTesting();
  const uint64_t seed = testing::TestSeed(33);
  DAVINCI_ANNOUNCE_SEED(seed);
  DaVinciSketch sketch(64 * 1024, seed);
  for (uint32_t key : Keys(1, 15000, 33)) sketch.Insert(key, 1);
  sketch.Insert(777, 42);

  std::shared_ptr<const SketchView> view = sketch.Snapshot();
  const std::string before = SaveBytes(view->sketch());
  EXPECT_EQ(view->Query(777), 42);

  // Mutate the live sketch through every part: FP residents, EF tower
  // counters, IFP buckets all change under the outstanding snapshot.
  sketch.Insert(777, 58);
  for (uint32_t key : Keys(60001, 15000, 34)) sketch.Insert(key, 1);

  // The view's bytes are pinned; the live sketch moved on.
  EXPECT_EQ(SaveBytes(view->sketch()), before);
  EXPECT_EQ(view->Query(777), 42);
  EXPECT_EQ(sketch.Query(777), 100);
  // And the lazy clones actually happened (and were tallied).
  EXPECT_GT(obs::CowTally::Clones(), 0u);
  EXPECT_GT(obs::CowTally::CloneBytes(), 0u);
}

TEST(SnapshotTest, BitStableUnderConcurrentWrites) {
  const uint64_t seed = testing::TestSeed(35);
  DAVINCI_ANNOUNCE_SEED(seed);
  DaVinciSketch sketch(64 * 1024, seed);
  for (uint32_t key : Keys(1, 10000, 35)) sketch.Insert(key, 1);

  // Snapshot() itself is synchronized with writes (taken before the writer
  // starts); the CoW machinery is what makes the view safe to read while
  // the live sketch keeps mutating on another thread.
  std::shared_ptr<const SketchView> view = sketch.Snapshot();
  const std::string baseline = SaveBytes(view->sketch());

  std::thread writer([&sketch] {
    for (uint32_t key : Keys(60001, 30000, 36)) sketch.Insert(key, 1);
  });
  for (int round = 0; round < 8; ++round) {
    EXPECT_EQ(SaveBytes(view->sketch()), baseline);
    EXPECT_GE(view->EstimateCardinality(), 0.0);
  }
  writer.join();
  EXPECT_EQ(SaveBytes(view->sketch()), baseline);
}

// ---- RCU read path --------------------------------------------------------

TEST(RcuReadPathTest, ReadsCompleteWhileShardLockHeldHostage) {
  ConcurrentDaVinci sketch(4, 256 * 1024, testing::TestSeed(37));
  std::vector<uint32_t> keys = Keys(1, 20000, 37);
  sketch.InsertBatch(std::span<const uint32_t>(keys));
  sketch.Insert(999, 1000);

  // Take a shard lock hostage on this thread. If any read-path operation
  // touched a shard mutex it would block forever; the RCU views must serve
  // every read regardless. ReleasableMutexLock (not std::unique_lock) so
  // the hostage-holding stays visible to Thread Safety Analysis — see
  // docs/STATIC_ANALYSIS.md §"Locks across call boundaries".
  davinci::ReleasableMutexLock hostage(&sketch.ShardMutexForTesting(0));
  auto reads = std::async(std::launch::async, [&sketch, &keys] {
    int64_t point = sketch.Query(999);
    std::vector<int64_t> batch = sketch.QueryBatch(
        std::span<const uint32_t>(keys.data(), 256));
    double cardinality = sketch.EstimateCardinality();
    auto heavy = sketch.HeavyHitters(500);
    auto views = sketch.SnapshotAll();
    return std::make_tuple(point, batch.size(), cardinality, heavy.size(),
                           views.size());
  });
  if (reads.wait_for(std::chrono::seconds(10)) !=
      std::future_status::ready) {
    hostage.Release();
    FAIL() << "read path blocked on a shard mutex";
  }
  auto [point, batch_size, cardinality, heavy_size, view_count] =
      reads.get();
  hostage.Release();

  EXPECT_EQ(point, 1000);
  EXPECT_EQ(batch_size, 256u);
  EXPECT_GT(cardinality, 0.0);
  EXPECT_GE(heavy_size, 1u);
  EXPECT_EQ(view_count, 4u);
}

TEST(RcuReadPathTest, PublishedViewsTrackWrites) {
  ConcurrentDaVinci sketch(4, 256 * 1024, testing::TestSeed(39));
  sketch.Insert(4242, 7);
  EXPECT_EQ(sketch.Query(4242), 7);
  sketch.Insert(4242, 3);
  EXPECT_EQ(sketch.Query(4242), 10);

  // SnapshotAll is a stable serving set: later writes don't leak in.
  std::vector<std::shared_ptr<const SketchView>> views = sketch.SnapshotAll();
  int64_t frozen = 0;
  for (const auto& view : views) frozen += view->Query(4242);
  EXPECT_EQ(frozen, 10);
  sketch.Insert(4242, 90);
  int64_t still_frozen = 0;
  for (const auto& view : views) still_frozen += view->Query(4242);
  EXPECT_EQ(still_frozen, 10);
  EXPECT_EQ(sketch.Query(4242), 100);
}

// ---- EpochManager ---------------------------------------------------------

TEST(EpochManagerTest, RotationMatchesOfflineMergeBitForBit) {
  const uint64_t seed = testing::TestSeed(41);
  DAVINCI_ANNOUNCE_SEED(seed);
  constexpr size_t kEpochBytes = 33 * 1024;
  constexpr size_t kEpochs = 3;

  EpochManager engine(kEpochs + 1, kEpochBytes, seed);
  std::vector<DaVinciSketch> offline;
  for (size_t e = 0; e < kEpochs; ++e) {
    offline.emplace_back(kEpochBytes, seed);
    for (uint32_t key : Keys(static_cast<uint32_t>(e) * 100000 + 1, 8000,
                             100 + e)) {
      engine.Insert(key);
      offline.back().Insert(key, 1);
    }
    engine.Advance();
  }
  ASSERT_EQ(engine.sealed_epochs(), kEpochs);

  // Offline reference: left-fold merge in seal order. The engine's
  // memoized accumulator performs exactly this fold, and with the live
  // epoch untouched MergedWindow() adds nothing else, so the serialized
  // bytes — and hence the digest — must match exactly.
  DaVinciSketch reference = offline[0];
  for (size_t e = 1; e < kEpochs; ++e) reference.Merge(offline[e]);
  EXPECT_EQ(Fnv1a64(SaveBytes(engine.MergedWindow())),
            Fnv1a64(SaveBytes(reference)));
}

TEST(EpochManagerTest, WindowQueriesReuseMemoizedMerges) {
  EpochManager engine(3, 33 * 1024, testing::TestSeed(43));
  for (int e = 0; e < 7; ++e) {
    for (uint32_t key : Keys(static_cast<uint32_t>(e) * 100000 + 1, 4000,
                             200 + e)) {
      engine.Insert(key);
    }
    engine.Advance();
  }

  const uint64_t rebuilds_before = engine.window_rebuild_merges();
  (void)engine.MergedWindow();
  (void)engine.HeavyChangers(1000);
  (void)engine.MergedWindow();
  // Queries never re-merge sealed epochs: all maintenance merges happened
  // at Advance() time, and every sealed epoch was served from the memo.
  EXPECT_EQ(engine.window_rebuild_merges(), rebuilds_before);
  EXPECT_GT(engine.window_merge_hits(), 0u);
  // Maintenance itself is amortized O(1) merges per rotation.
  EXPECT_LE(engine.window_rebuild_merges(), 2 * engine.rotations());
}

TEST(EpochManagerTest, ExpiryKeepsWindowSumsExact) {
  constexpr size_t kWindow = 3;
  EpochManager engine(kWindow, 33 * 1024, testing::TestSeed(45));
  // Epoch e carries key 1000+e with count 10(e+1), plus shared key 5 ×7.
  constexpr int kTotalEpochs = 6;  // epochs 0..4 sealed by 5 advances
  for (int e = 0; e < kTotalEpochs; ++e) {
    engine.Insert(1000 + static_cast<uint32_t>(e), 10 * (e + 1));
    engine.Insert(5, 7);
    if (e + 1 < kTotalEpochs) engine.Advance();
  }
  ASSERT_EQ(engine.epochs_in_window(), kWindow);

  // Window = epochs 3,4 (sealed) + 5 (live).
  EXPECT_EQ(engine.Query(5), 3 * 7);
  EXPECT_EQ(engine.Query(1003), 40);
  EXPECT_EQ(engine.Query(1004), 50);
  EXPECT_EQ(engine.Query(1005), 60);
  EXPECT_EQ(engine.QueryCurrentEpoch(1005), 60);
  EXPECT_EQ(engine.QueryCurrentEpoch(1004), 0);
  // Expired epochs contribute nothing.
  EXPECT_EQ(engine.Query(1000), 0);
  EXPECT_EQ(engine.Query(1001), 0);
  EXPECT_EQ(engine.Query(1002), 0);

  engine.CheckInvariants(InvariantMode::kAdditive);
  DaVinciSketch merged = engine.MergedWindow();
  EXPECT_EQ(merged.Query(5), 21);
  EXPECT_EQ(merged.Query(1000), 0);
}

// ---- heavy changers -------------------------------------------------------

TEST(EpochManagerTest, HeavyChangersCompareAgainstMergedRemainder) {
  constexpr int64_t kDelta = 2000;
  constexpr uint32_t kMidKey = 424242;   // heavy only in the middle epoch
  constexpr uint32_t kLiveKey = 515151;  // heavy only in the live epoch
  auto build = [](bool legacy) {
    SlidingDaVinci window(3, 33 * 1024, 47);
    window.set_legacy_heavy_changers(legacy);
    for (uint32_t key : Keys(1, 3000, 300)) window.Insert(key);
    window.Advance();
    window.Insert(kMidKey, 5000);
    window.Advance();
    window.Insert(kLiveKey, 4000);
    return window;
  };
  auto contains = [](const std::vector<std::pair<uint32_t, int64_t>>& found,
                     uint32_t key) {
    for (const auto& [k, change] : found) {
      if (k == key) return true;
    }
    return false;
  };

  // Default semantics: the newest epoch is compared against the merged
  // remainder of the window, so a key heavy anywhere in the remainder is
  // visible — including the middle epoch the legacy path never saw.
  SlidingDaVinci window = build(false);
  auto changers = window.HeavyChangers(kDelta);
  EXPECT_TRUE(contains(changers, kMidKey));
  EXPECT_TRUE(contains(changers, kLiveKey));
  // Same answer through the extended-queries facade.
  auto facade = WindowHeavyChangers(window.engine(), kDelta);
  EXPECT_TRUE(contains(facade, kMidKey));
  EXPECT_TRUE(contains(facade, kLiveKey));

  // Legacy semantics (newest vs the single oldest epoch) miss the middle
  // epoch entirely; the live-only key still shows.
  SlidingDaVinci legacy = build(true);
  auto legacy_changers = legacy.HeavyChangers(kDelta);
  EXPECT_FALSE(contains(legacy_changers, kMidKey));
  EXPECT_TRUE(contains(legacy_changers, kLiveKey));
}

// ---- SlidingDaVinci parity satellites -------------------------------------

TEST(SlidingDaVinciTest, InsertBatchMatchesSingleInserts) {
  const uint64_t seed = testing::TestSeed(49);
  SlidingDaVinci singles(3, 33 * 1024, seed);
  SlidingDaVinci batched(3, 33 * 1024, seed);

  for (int e = 0; e < 4; ++e) {
    std::vector<uint32_t> keys =
        Keys(static_cast<uint32_t>(e) * 100000 + 1, 6000, 400 + e);
    std::vector<int64_t> counts(keys.size());
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] = 1 + static_cast<int64_t>(i % 3);
    }
    for (size_t i = 0; i < keys.size(); ++i) {
      singles.Insert(keys[i], counts[i]);
    }
    batched.InsertBatch(std::span<const uint32_t>(keys),
                        std::span<const int64_t>(counts));
    if (e < 3) {
      singles.Advance();
      batched.Advance();
    }
  }

  // InsertBatch is bit-equivalent to stream-order single inserts, so the
  // whole window — not just query answers — serializes identically.
  EXPECT_EQ(SaveBytes(singles.MergedWindow()),
            SaveBytes(batched.MergedWindow()));
  singles.CheckInvariants(InvariantMode::kAdditive);
  batched.CheckInvariants(InvariantMode::kAdditive);
}

TEST(SlidingDaVinciTest, CollectStatsExposesEpochTelemetry) {
  SlidingDaVinci window(4, 33 * 1024, testing::TestSeed(51));
  for (int e = 0; e < 6; ++e) {
    for (uint32_t key : Keys(static_cast<uint32_t>(e) * 100000 + 1, 3000,
                             500 + e)) {
      window.Insert(key);
    }
    window.Advance();
  }
  (void)window.MergedWindow();

  obs::HealthSnapshot snapshot;
  window.CollectStats(&snapshot);
  EXPECT_EQ(snapshot.epoch.window_epochs, 4u);
  EXPECT_EQ(snapshot.epoch.epochs_in_window, 4u);
  EXPECT_EQ(snapshot.epoch.rotations, 6u);
  EXPECT_GT(snapshot.epoch.window_merge_hits, 0u);
  // One HealthSnapshot per window epoch folded in.
  EXPECT_EQ(snapshot.shards, 4u);
  EXPECT_GT(snapshot.memory_bytes, 0u);
  EXPECT_GT(snapshot.fp.buckets, 0u);

  std::ostringstream json;
  snapshot.WriteJson(json);
  EXPECT_NE(json.str().find("\"epoch\":{\"window_epochs\":4"),
            std::string::npos);
}

}  // namespace
}  // namespace davinci
