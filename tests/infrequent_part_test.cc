#include "core/infrequent_part.h"

#include <gtest/gtest.h>

namespace davinci {
namespace {

TEST(InfrequentPartTest, DecodeRoundTripWithoutFilter) {
  InfrequentPart ifp(3, 2048, /*use_signs=*/true, 1);
  for (uint32_t key = 1; key <= 800; ++key) {
    ifp.Insert(key, key % 13 + 1);
  }
  auto decoded = ifp.Decode(nullptr);
  ASSERT_EQ(decoded.size(), 800u);
  for (uint32_t key = 1; key <= 800; ++key) {
    EXPECT_EQ(decoded[key], key % 13 + 1);
  }
  ifp.CheckInvariants(InvariantMode::kAdditive);
}

TEST(InfrequentPartTest, DecodeWorksWithoutSignHash) {
  InfrequentPart ifp(3, 1024, /*use_signs=*/false, 2);
  for (uint32_t key = 1; key <= 400; ++key) ifp.Insert(key, 7);
  auto decoded = ifp.Decode(nullptr);
  EXPECT_EQ(decoded.size(), 400u);
}

TEST(InfrequentPartTest, DecodeHandlesNegativeCounts) {
  InfrequentPart a(3, 1024, true, 3), b(3, 1024, true, 3);
  a.Insert(10, 6);
  b.Insert(10, 9);
  b.Insert(20, 4);
  a.Subtract(b);
  auto decoded = a.Decode(nullptr);
  EXPECT_EQ(decoded[10], -3);
  EXPECT_EQ(decoded[20], -4);
}

TEST(InfrequentPartTest, MergeIsUnion) {
  InfrequentPart a(3, 1024, true, 4), b(3, 1024, true, 4);
  a.Insert(1, 5);
  b.Insert(1, 6);
  b.Insert(2, 7);
  a.Merge(b);
  auto decoded = a.Decode(nullptr);
  EXPECT_EQ(decoded[1], 11);
  EXPECT_EQ(decoded[2], 7);
}

TEST(InfrequentPartTest, FastQueryApproximatesCount) {
  InfrequentPart ifp(3, 4096, true, 5);
  for (uint32_t key = 1; key <= 500; ++key) {
    ifp.Insert(key, 20);
  }
  // Fast query is unbiased; on a lightly loaded sketch it is near-exact.
  int within = 0;
  for (uint32_t key = 1; key <= 500; ++key) {
    if (std::llabs(ifp.FastQuery(key) - 20) <= 20) ++within;
  }
  EXPECT_GT(within, 450);
}

TEST(InfrequentPartTest, CrossValidationRejectsUnknownFlows) {
  // Build a filter that knows nothing, so every candidate fails the
  // |EF(e)| ≥ T check and nothing decodes.
  ElementFilter empty_filter(8 * 1024, {8, 16}, 16, 6);
  InfrequentPart ifp(3, 512, true, 6);
  for (uint32_t key = 1; key <= 100; ++key) ifp.Insert(key, 50);
  EXPECT_TRUE(ifp.Decode(&empty_filter).empty());
}

TEST(InfrequentPartTest, CrossValidationAcceptsPromotedFlows) {
  ElementFilter filter(32 * 1024, {8, 16}, 16, 7);
  InfrequentPart ifp(3, 2048, true, 7);
  for (uint32_t key = 1; key <= 300; ++key) {
    // Emulate the DaVinci insertion path: EF first, overflow to IFP.
    int64_t overflow = filter.Insert(key, 40);
    if (overflow > 0) ifp.Insert(key, overflow);
  }
  auto decoded = ifp.Decode(&filter);
  EXPECT_EQ(decoded.size(), 300u);
  for (const auto& [key, count] : decoded) {
    (void)key;
    EXPECT_EQ(count, 40 - 16);  // everything beyond T reached the IFP
  }
}

TEST(InfrequentPartTest, EmptyBucketsShrinkWithLoad) {
  InfrequentPart ifp(3, 1024, true, 8);
  size_t before = ifp.EmptyBuckets();
  EXPECT_EQ(before, ifp.TotalBuckets());
  for (uint32_t key = 1; key <= 100; ++key) ifp.Insert(key, 1);
  EXPECT_LT(ifp.EmptyBuckets(), before);
}

TEST(InfrequentPartTest, InnerProductUnbiasedSmallCase) {
  InfrequentPart a(5, 2048, true, 9), b(5, 2048, true, 9);
  a.Insert(1, 100);
  a.Insert(2, 40);
  b.Insert(1, 60);
  b.Insert(3, 80);
  // f⊙g = 100·60 = 6000.
  EXPECT_NEAR(InfrequentPart::InnerProduct(a, b), 6000.0, 1500.0);
}

TEST(InfrequentPartTest, OverloadedDecodeTerminatesAndTrueKeysAreExact) {
  // A hopelessly overloaded sketch (500 flows into 3×64 buckets) cannot
  // decode fully; without cross-validation a peeling decoder may even emit
  // spurious keys (hash-match false positives). The contract is that it
  // terminates and that every *true* key it reports carries the exact
  // count. The EF cross-validation test below shows how the full DaVinci
  // pipeline suppresses the spurious keys.
  InfrequentPart ifp(3, 64, true, 10);
  for (uint32_t key = 1; key <= 500; ++key) ifp.Insert(key, 3);
  auto decoded = ifp.Decode(nullptr);
  for (const auto& [key, count] : decoded) {
    if (key >= 1 && key <= 500) {
      EXPECT_EQ(count, 3) << key;
    }
  }
}

TEST(InfrequentPartTest, CrossValidationSuppressesSpuriousDecodes) {
  // Same overload, but candidates must now clear |EF(e)| ≥ T; only real
  // flows were pushed through the filter.
  ElementFilter filter(32 * 1024, {8, 16}, 4, 10);
  InfrequentPart ifp(3, 64, true, 10);
  for (uint32_t key = 1; key <= 500; ++key) {
    int64_t overflow = filter.Insert(key, 7);  // 4 retained, 3 overflow
    if (overflow > 0) ifp.Insert(key, overflow);
  }
  auto decoded = ifp.Decode(&filter);
  for (const auto& [key, count] : decoded) {
    EXPECT_GE(key, 1u);
    EXPECT_LE(key, 500u);
    EXPECT_EQ(count, 3) << key;
  }
}

TEST(InfrequentPartTest, MemoryAccountsNineBytesPerBucket) {
  InfrequentPart ifp(3, 1000, true, 11);
  EXPECT_EQ(ifp.MemoryBytes(), 3u * 1000 * 9);
}

}  // namespace
}  // namespace davinci
