// Empirical validation of the paper's theoretical claims (§IV):
//  Lemma 1 — the ±1-signed basic structure gives unbiased estimates.
//  Lemma 2 — its variance is ||F||₂²/R.
//  Lemma 3 — the Chebyshev tail bound Pr(|err| > √(k/R)·||F||₂) < 1/k.
//  Theorem 2 — DaVinci's frequency bias is bounded by the (small) element-
//              filter term; in particular the mean signed error is tiny.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "core/davinci_sketch.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

// The one-row "basic structure" from §IV: R counters, one hash θ, one
// sign hash φ; estimate of f_e is φ(e)·A[θ(e)].
struct BasicStructure {
  explicit BasicStructure(size_t r, uint64_t seed)
      : theta(seed), phi(seed + 1), counters(r, 0) {}

  void Insert(uint32_t key, int64_t count) {
    counters[theta.Bucket(key, counters.size())] += phi.Sign(key) * count;
  }
  int64_t Query(uint32_t key) const {
    return phi.Sign(key) * counters[theta.Bucket(key, counters.size())];
  }

  HashFamily theta;
  SignHash phi;
  std::vector<int64_t> counters;
};

// A fixed small workload: 50 flows, sizes 1..50.
std::vector<std::pair<uint32_t, int64_t>> Workload() {
  std::vector<std::pair<uint32_t, int64_t>> flows;
  for (uint32_t i = 1; i <= 50; ++i) {
    flows.emplace_back(i * 2654435761u, i);
  }
  return flows;
}

TEST(TheoryTest, Lemma1BasicStructureUnbiased) {
  auto flows = Workload();
  const uint32_t probe = flows[10].first;
  const int64_t truth = flows[10].second;
  double mean_error = 0.0;
  const int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    BasicStructure basic(16, 1000 + trial);  // tiny R → many collisions
    for (const auto& [key, f] : flows) basic.Insert(key, f);
    mean_error += static_cast<double>(basic.Query(probe) - truth);
  }
  mean_error /= kTrials;
  // ||F||₂ ≈ 287; per-trial std ≈ √(F₂/R) ≈ 72; the mean of 4000 trials
  // has std ≈ 1.1, so |mean| < 4 is a ~3.5σ check of unbiasedness.
  EXPECT_LT(std::abs(mean_error), 4.0);
}

TEST(TheoryTest, Lemma2VarianceMatchesF2OverR) {
  auto flows = Workload();
  const uint32_t probe = flows[10].first;
  const int64_t truth = flows[10].second;
  double f2_minus_probe = 0.0;
  for (const auto& [key, f] : flows) {
    if (key != probe) f2_minus_probe += static_cast<double>(f) * f;
  }
  const size_t r = 32;
  double predicted_variance = f2_minus_probe / static_cast<double>(r);

  double sum_sq = 0.0;
  const int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    BasicStructure basic(r, 5000 + trial);
    for (const auto& [key, f] : flows) basic.Insert(key, f);
    double err = static_cast<double>(basic.Query(probe) - truth);
    sum_sq += err * err;
  }
  double empirical_variance = sum_sq / kTrials;
  EXPECT_NEAR(empirical_variance, predicted_variance,
              predicted_variance * 0.25);
}

TEST(TheoryTest, Lemma3ChebyshevTailBound) {
  auto flows = Workload();
  const uint32_t probe = flows[10].first;
  const int64_t truth = flows[10].second;
  double f2 = 0.0;
  for (const auto& [key, f] : flows) {
    if (key != probe) f2 += static_cast<double>(f) * f;
  }
  const size_t r = 32;
  const double k = 8.0;
  double bound = std::sqrt(k / static_cast<double>(r)) * std::sqrt(f2);

  int exceedances = 0;
  const int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    BasicStructure basic(r, 9000 + trial);
    for (const auto& [key, f] : flows) basic.Insert(key, f);
    if (std::abs(static_cast<double>(basic.Query(probe) - truth)) > bound) {
      ++exceedances;
    }
  }
  // Pr(|err| > √(k/R)·||F||₂) < 1/k = 12.5 %.
  EXPECT_LT(static_cast<double>(exceedances) / kTrials, 1.0 / k);
}

TEST(TheoryTest, Theorem2DaVinciBiasIsSmall) {
  // Mean signed error over all flows of a skewed trace must be a tiny
  // fraction of the mean flow size (the EF term of Theorem 2).
  Trace trace = BuildSkewedTrace("t", 200000, 20000, 1.05, 99);
  GroundTruth truth(trace.keys);
  DaVinciSketch sketch(300 * 1024, 7);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);

  double signed_error = 0.0;
  for (const auto& [key, f] : truth.frequencies()) {
    signed_error += static_cast<double>(sketch.Query(key) - f);
  }
  double mean_bias = signed_error / static_cast<double>(truth.cardinality());
  double mean_size = static_cast<double>(trace.keys.size()) /
                     static_cast<double>(truth.cardinality());
  EXPECT_LT(std::abs(mean_bias), mean_size * 0.05);
}

TEST(TheoryTest, DecodedFrequenciesAreExact) {
  // Theorem 1's "precise" component: every decoded IFP flow plus its
  // EF residue reproduces the exact frequency. Uniform medium flows land
  // outside the FP and all decode.
  DaVinciSketch sketch(256 * 1024, 3);
  const int64_t size = 40;
  for (uint32_t key = 1; key <= 2000; ++key) {
    for (int64_t i = 0; i < size; ++i) sketch.Insert(key, 1);
  }
  size_t exact = 0;
  for (uint32_t key = 1; key <= 2000; ++key) {
    if (sketch.Query(key) == size) ++exact;
  }
  EXPECT_GT(exact, 1950u);
}

}  // namespace
}  // namespace davinci
