// Exercises CheckInvariants() on every sketch component after randomized
// workloads, and proves the audits actually fire on corrupted state
// (death tests). This is the tentpole consumer of common/check.h: each
// audit aborts with a file:line message instead of returning a verdict,
// so a passing test here means the structural invariants held at every
// probed point.

#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "test_seed.h"
#include "workload/zipf.h"

namespace davinci {
namespace {

std::vector<uint32_t> ZipfKeys(size_t n, uint64_t seed) {
  ZipfGenerator gen(50000, 1.05, seed);
  std::vector<uint32_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<uint32_t>(gen.Next()));
  }
  return keys;
}

TEST(InvariantAuditTest, FreshSketchPasses) {
  DaVinciSketch sketch(64 * 1024, 1);
  sketch.CheckInvariants(InvariantMode::kAdditive);
}

TEST(InvariantAuditTest, RandomizedInsertWorkloads) {
  const uint64_t base = testing::TestSeed(1);
  for (uint64_t seed : {base, base + 6, base + 22}) {
    DAVINCI_ANNOUNCE_SEED(seed);
    DaVinciSketch sketch(48 * 1024, seed);
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<uint32_t> key_dist(1, 30000);
    std::geometric_distribution<int64_t> count_dist(0.05);
    for (int i = 0; i < 60000; ++i) {
      sketch.Insert(key_dist(rng), 1 + count_dist(rng));
      if (i % 20000 == 19999) {
        sketch.CheckInvariants(InvariantMode::kAdditive);
      }
    }
    // Query paths populate the decode cache; the audit covers it too.
    sketch.Query(1);
    sketch.CheckInvariants(InvariantMode::kAdditive);
    sketch.frequent_part().CheckInvariants(InvariantMode::kAdditive);
    sketch.element_filter().CheckInvariants(InvariantMode::kAdditive);
    sketch.infrequent_part().CheckInvariants(InvariantMode::kAdditive);
  }
}

TEST(InvariantAuditTest, BatchedInsertsPass) {
  DaVinciSketch sketch(48 * 1024, 11);
  std::vector<uint32_t> keys = ZipfKeys(80000, 11);
  sketch.InsertBatch(keys);
  sketch.CheckInvariants(InvariantMode::kAdditive);
}

TEST(InvariantAuditTest, MergePreservesInvariants) {
  DaVinciSketch a(48 * 1024, 3);
  DaVinciSketch b(48 * 1024, 3);
  a.InsertBatch(ZipfKeys(40000, 5));
  b.InsertBatch(ZipfKeys(40000, 6));
  a.Merge(b);
  a.CheckInvariants(InvariantMode::kAdditive);
}

TEST(InvariantAuditTest, SubtractPreservesGeneralInvariants) {
  DaVinciSketch a(48 * 1024, 3);
  DaVinciSketch b(48 * 1024, 3);
  a.InsertBatch(ZipfKeys(40000, 5));
  b.InsertBatch(ZipfKeys(40000, 6));
  a.Subtract(b);
  // Negative counts are legal now; only the unconditional invariants hold.
  a.CheckInvariants(InvariantMode::kGeneral);
}

TEST(InvariantAuditTest, SerializationRoundTripPasses) {
  DaVinciSketch sketch(48 * 1024, 9);
  sketch.InsertBatch(ZipfKeys(50000, 9));
  std::stringstream stream;
  sketch.Save(stream);
  DaVinciSketch loaded(64, 1);
  ASSERT_TRUE(DaVinciSketch::Load(stream, &loaded));
  loaded.CheckInvariants(InvariantMode::kAdditive);
}

TEST(InvariantAuditTest, ConcurrentShardsPass) {
  ConcurrentDaVinci sketch(4, 256 * 1024, 21);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&sketch, t] {
      std::vector<uint32_t> keys = ZipfKeys(30000, 100 + t);
      sketch.InsertBatch(keys);
    });
  }
  for (std::thread& w : writers) w.join();
  sketch.CheckInvariants(InvariantMode::kAdditive);
}

TEST(InvariantAuditTest, ConcurrentMergePasses) {
  ConcurrentDaVinci a(4, 128 * 1024, 33);
  ConcurrentDaVinci b(4, 128 * 1024, 33);
  a.InsertBatch(ZipfKeys(40000, 1));
  b.InsertBatch(ZipfKeys(40000, 2));
  a.Merge(b);
  a.CheckInvariants(InvariantMode::kAdditive);
  b.CheckInvariants(InvariantMode::kAdditive);
}

// --- The audits must FIRE on corrupted state, not just pass on good
// state. Corruption is injected through public APIs only. ---

TEST(InvariantAuditDeathTest, DetectsForeignKeyInBucket) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FrequentPart fp(64, 4, 8, 1);
  for (uint32_t key = 1; key <= 500; ++key) fp.Insert(key, int64_t{10});
  // Plant a key into a bucket it does not hash to: find a key whose home
  // bucket is not 0 and overwrite bucket 0 with it.
  uint32_t foreign = 1;
  while (fp.BucketOf(foreign) == 0) ++foreign;
  fp.OverwriteBucket(0, {{foreign, 5, false}}, false);
  EXPECT_DEATH(fp.CheckInvariants(InvariantMode::kAdditive),
               "hashes elsewhere");
}

TEST(InvariantAuditDeathTest, DetectsNegativeCountInAdditiveMode) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  FrequentPart fp(64, 4, 8, 1);
  uint32_t key = 1;
  fp.OverwriteBucket(fp.BucketOf(key), {{key, -3, false}}, false);
  EXPECT_DEATH(fp.CheckInvariants(InvariantMode::kAdditive),
               "nonpositive count");
}

TEST(InvariantAuditDeathTest, DetectsIdOutsideField) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  InfrequentPart ifp(3, 64, true, 1);
  for (uint32_t key = 1; key <= 200; ++key) ifp.Insert(key, 4);
  // LoadState range-checks every cell now, so an out-of-field iID in a
  // serialized image is rejected at the boundary...
  std::stringstream stream;
  ifp.SaveState(stream);
  std::string bytes = stream.str();
  // Layout: uint64 size, then size iIDs (uint64 each). Overwrite iID[0].
  uint64_t bad = kFermatPrime + 123;
  bytes.replace(sizeof(uint64_t), sizeof(uint64_t),
                reinterpret_cast<const char*>(&bad), sizeof(uint64_t));
  std::stringstream corrupted(bytes);
  EXPECT_FALSE(ifp.LoadState(corrupted));
  // ...so CheckInvariants' field check covers in-process corruption only —
  // plant the bad id directly, behind the public boundaries.
  ifp.OverwriteCellForTesting(0, 0, bad, 4);
  EXPECT_DEATH(ifp.CheckInvariants(InvariantMode::kGeneral),
               "outside the field");
}

TEST(InvariantAuditDeathTest, DetectsRowSumDivergence) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  InfrequentPart ifp(3, 64, true, 1);
  for (uint32_t key = 1; key <= 200; ++key) ifp.Insert(key, 4);
  std::stringstream stream;
  ifp.SaveState(stream);
  std::string bytes = stream.str();
  // Swap row 0's first iID for a different in-field value: row 0's id sum
  // no longer matches the other rows'.
  uint64_t original = 0;
  bytes.copy(reinterpret_cast<char*>(&original), sizeof(uint64_t),
             sizeof(uint64_t));
  uint64_t skewed = original == 17 ? 18 : 17;
  bytes.replace(sizeof(uint64_t), sizeof(uint64_t),
                reinterpret_cast<const char*>(&skewed), sizeof(uint64_t));
  std::stringstream corrupted(bytes);
  ASSERT_TRUE(ifp.LoadState(corrupted));
  EXPECT_DEATH(ifp.CheckInvariants(InvariantMode::kGeneral), "id_sum");
}

}  // namespace
}  // namespace davinci
