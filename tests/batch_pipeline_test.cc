// Batch-vs-single equivalence: DaVinciSketch::InsertBatch must be
// bit-for-bit state-equivalent to the same sequence of single Insert calls
// — identical FP entries, EF counters, and IFP cells (compared through the
// serialized state), and identical answers for all nine query tasks —
// across seeds and batch sizes including 0, 1, and sizes that are not a
// multiple of the pipeline block.

#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "test_seed.h"
#include "workload/zipf.h"

namespace davinci {
namespace {

std::string SerializedState(const DaVinciSketch& sketch) {
  std::ostringstream out;
  sketch.Save(out);
  return out.str();
}

std::vector<uint32_t> ZipfKeys(size_t n, uint64_t seed) {
  ZipfGenerator zipf(50000, 1.05, seed);
  std::vector<uint32_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<uint32_t>(zipf.Next()));
  }
  return keys;
}

std::vector<int64_t> MixedCounts(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> dist(1, 5);
  std::vector<int64_t> counts(n);
  for (int64_t& c : counts) c = dist(rng);
  return counts;
}

// Feeds the same stream through single Insert and InsertBatch (applied in
// chunks of `batch_size`) and asserts the serialized FP/EF/IFP state is
// byte-identical.
void ExpectBatchEquivalent(size_t stream_len, size_t batch_size,
                           uint64_t seed) {
  std::vector<uint32_t> keys = ZipfKeys(stream_len, seed);
  std::vector<int64_t> counts = MixedCounts(stream_len, seed + 1);

  DaVinciSketch single(64 * 1024, seed);
  for (size_t i = 0; i < keys.size(); ++i) single.Insert(keys[i], counts[i]);

  DaVinciSketch batched(64 * 1024, seed);
  if (batch_size == 0) {
    batched.InsertBatch(std::span<const uint32_t>(),
                        std::span<const int64_t>());
    batched.InsertBatch(keys, counts);  // the stream still has to go in
  } else {
    for (size_t start = 0; start < keys.size(); start += batch_size) {
      size_t len = std::min(batch_size, keys.size() - start);
      batched.InsertBatch(std::span<const uint32_t>(&keys[start], len),
                          std::span<const int64_t>(&counts[start], len));
    }
  }

  EXPECT_EQ(SerializedState(single), SerializedState(batched))
      << "stream=" << stream_len << " batch=" << batch_size
      << " seed=" << seed;
}

TEST(BatchPipelineTest, StateEquivalentAcrossBatchSizesAndSeeds) {
  const uint64_t base = testing::TestSeed(1);
  DAVINCI_ANNOUNCE_SEED(base);
  for (uint64_t seed : {base, base + 6, base + 41}) {
    for (size_t batch_size : {size_t{0}, size_t{1}, size_t{7}, size_t{16},
                              size_t{1000}}) {
      ExpectBatchEquivalent(20000, batch_size, seed);
    }
  }
}

TEST(BatchPipelineTest, StateEquivalentOnNonBlockMultipleStreams) {
  // Stream lengths that are not multiples of kInsertBlock exercise the
  // pipeline's tail block.
  for (size_t stream_len : {size_t{1}, size_t{15}, size_t{17}, size_t{4093}}) {
    ExpectBatchEquivalent(stream_len, stream_len, 3);
  }
}

TEST(BatchPipelineTest, EmptyBatchIsANoOp) {
  DaVinciSketch sketch(64 * 1024, 5);
  std::string before = SerializedState(sketch);
  sketch.InsertBatch(std::span<const uint32_t>(), std::span<const int64_t>());
  sketch.InsertBatch(std::span<const uint32_t>());
  EXPECT_EQ(before, SerializedState(sketch));
}

TEST(BatchPipelineTest, ImplicitCountOverloadMatchesExplicitOnes) {
  std::vector<uint32_t> keys = ZipfKeys(30000, 11);
  std::vector<int64_t> ones(keys.size(), 1);

  DaVinciSketch explicit_counts(64 * 1024, 11);
  explicit_counts.InsertBatch(keys, ones);
  DaVinciSketch implicit_counts(64 * 1024, 11);
  implicit_counts.InsertBatch(keys);

  EXPECT_EQ(SerializedState(explicit_counts),
            SerializedState(implicit_counts));
}

// All nine task answers agree between a batch-built and a single-built
// sketch. State equality already implies this, but the answers are what the
// paper promises, so they are asserted directly: (1) frequency, (2) heavy
// hitters, (3) cardinality, (4) distribution, (5) entropy, (6) union,
// (7) difference, (8) heavy changers, (9) inner join.
TEST(BatchPipelineTest, AllNineQueryAnswersMatch) {
  const uint64_t seed = 9;
  std::vector<uint32_t> window_a = ZipfKeys(40000, 21);
  std::vector<uint32_t> window_b = ZipfKeys(40000, 22);

  auto build_single = [&](const std::vector<uint32_t>& keys) {
    DaVinciSketch sketch(64 * 1024, seed);
    for (uint32_t key : keys) sketch.Insert(key, 1);
    return sketch;
  };
  auto build_batched = [&](const std::vector<uint32_t>& keys) {
    DaVinciSketch sketch(64 * 1024, seed);
    sketch.InsertBatch(keys);
    return sketch;
  };

  DaVinciSketch sa = build_single(window_a), sb = build_single(window_b);
  DaVinciSketch ba = build_batched(window_a), bb = build_batched(window_b);

  // (1) frequency
  for (uint32_t key = 1; key <= 2000; ++key) {
    ASSERT_EQ(sa.Query(key), ba.Query(key)) << key;
  }
  // (2) heavy hitters
  EXPECT_EQ(sa.HeavyHitters(100), ba.HeavyHitters(100));
  // (3) cardinality
  EXPECT_DOUBLE_EQ(sa.EstimateCardinality(), ba.EstimateCardinality());
  // (4) distribution
  EXPECT_EQ(sa.Distribution(), ba.Distribution());
  // (5) entropy
  EXPECT_DOUBLE_EQ(sa.EstimateEntropy(), ba.EstimateEntropy());
  // (6) union and (7) difference, both built each way
  DaVinciSketch s_union = sa, b_union = ba;
  s_union.Merge(sb);
  b_union.Merge(bb);
  EXPECT_EQ(SerializedState(s_union), SerializedState(b_union));
  DaVinciSketch s_diff = sa, b_diff = ba;
  s_diff.Subtract(sb);
  b_diff.Subtract(bb);
  EXPECT_EQ(SerializedState(s_diff), SerializedState(b_diff));
  // (8) heavy changers
  EXPECT_EQ(sa.HeavyChangers(sb, 50), ba.HeavyChangers(bb, 50));
  // (9) inner join
  EXPECT_DOUBLE_EQ(DaVinciSketch::InnerProduct(sa, sb),
                   DaVinciSketch::InnerProduct(ba, bb));
}

TEST(BatchPipelineTest, ConcurrentInsertBatchMatchesSingleInserts) {
  const uint64_t seed = testing::TestSeed(31);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::vector<uint32_t> keys = ZipfKeys(30000, seed);
  std::vector<int64_t> counts = MixedCounts(keys.size(), 32);

  ConcurrentDaVinci single(4, 256 * 1024, 7);
  for (size_t i = 0; i < keys.size(); ++i) single.Insert(keys[i], counts[i]);
  ConcurrentDaVinci batched(4, 256 * 1024, 7);
  batched.InsertBatch(keys, counts);

  // Shards partition the key space and per-shard order is preserved, so the
  // merged snapshots must be byte-identical.
  EXPECT_EQ(SerializedState(single.Snapshot()),
            SerializedState(batched.Snapshot()));

  // Implicit count-1 overload, split across two calls mid-stream.
  ConcurrentDaVinci implicit(4, 256 * 1024, 7);
  std::vector<uint32_t> first(keys.begin(), keys.begin() + 12345);
  std::vector<uint32_t> rest(keys.begin() + 12345, keys.end());
  implicit.InsertBatch(first);
  implicit.InsertBatch(rest);
  ConcurrentDaVinci ones(4, 256 * 1024, 7);
  for (uint32_t key : keys) ones.Insert(key, 1);
  EXPECT_EQ(SerializedState(implicit.Snapshot()),
            SerializedState(ones.Snapshot()));
}

}  // namespace
}  // namespace davinci
