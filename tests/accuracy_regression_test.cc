// Statistical accuracy-regression gate: one seeded Zipf workload, one
// DaVinci Sketch per operand set, and a pinned upper bound for every one
// of the paper's nine measurement tasks. The bounds are ~2× the error
// observed at pin time, so ordinary run-to-run noise passes while a real
// accuracy regression (a broken eviction rule, a miscounted EF threshold,
// a bad decode) trips the gate in plain ctest.
//
// DAVINCI_TEST_SEED overrides the trace seed; the bounds are loose enough
// to hold across seeds, and failures print the seed for replay.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/davinci_sketch.h"
#include "metrics/metrics.h"
#include "test_seed.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

constexpr size_t kBytes = 256 * 1024;
constexpr uint64_t kSketchSeed = 7;  // fixed: only the trace seed varies
constexpr size_t kPackets = 120000;
constexpr size_t kFlows = 10000;

struct Fixture {
  uint64_t seed;
  Trace full, a, b, da, db;
  GroundTruth truth, ta, tb, tda, tdb;
  DaVinciSketch s_full, sa, sb, sda, sdb;
};

DaVinciSketch BuildSketch(const std::vector<uint32_t>& keys) {
  DaVinciSketch sketch(kBytes, kSketchSeed);
  for (uint32_t key : keys) sketch.Insert(key, 1);
  return sketch;
}

const Fixture& F() {
  static const Fixture* fixture = [] {
    uint64_t seed = testing::TestSeed(2025);
    Trace full = BuildSkewedTrace("acc", kPackets, kFlows, 1.0, seed);
    size_t n = full.keys.size();
    // Disjoint halves (union, heavy changers) and overlapping two-thirds
    // slices (difference, inner join — the paper's overlap scenario).
    Trace a = Slice(full, 0, n / 2, "a");
    Trace b = Slice(full, n / 2, n, "b");
    Trace da = Slice(full, 0, 2 * n / 3, "da");
    Trace db = Slice(full, n / 3, n, "db");
    auto* f = new Fixture{seed,
                          full,
                          a,
                          b,
                          da,
                          db,
                          GroundTruth(full.keys),
                          GroundTruth(a.keys),
                          GroundTruth(b.keys),
                          GroundTruth(da.keys),
                          GroundTruth(db.keys),
                          BuildSketch(full.keys),
                          BuildSketch(a.keys),
                          BuildSketch(b.keys),
                          BuildSketch(da.keys),
                          BuildSketch(db.keys)};
    return f;
  }();
  return *fixture;
}

// ARE over a truth frequency map against a query functor.
template <typename QueryFn>
double FrequencyAre(const GroundTruth& truth, QueryFn&& query) {
  std::vector<Estimate> observations;
  observations.reserve(truth.frequencies().size());
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, query(key)});
  }
  return AverageRelativeError(observations);
}

double HeavySetF1(const std::vector<std::pair<uint32_t, int64_t>>& reported,
                  const std::vector<std::pair<uint32_t, int64_t>>& actual) {
  std::unordered_map<uint32_t, int64_t> actual_map(actual.begin(),
                                                   actual.end());
  size_t correct = 0;
  for (const auto& [key, est] : reported) {
    if (actual_map.count(key)) ++correct;
  }
  return F1Score(correct, reported.size(), actual.size());
}

#define DAVINCI_GATE(metric, bound)                                   \
  do {                                                                \
    DAVINCI_ANNOUNCE_SEED(F().seed);                                  \
    double observed = (metric);                                       \
    std::printf("accuracy-gate %s: %.6f (bound %.6f)\n", #metric,     \
                observed, static_cast<double>(bound));                \
    EXPECT_LE(observed, bound);                                       \
  } while (0)

// Task 1: per-flow frequency estimation.
TEST(AccuracyRegressionTest, FrequencyAre) {
  DAVINCI_GATE(
      FrequencyAre(F().truth, [](uint32_t key) { return F().s_full.Query(key); }),
      0.02);
}

// Task 2: heavy hitters at ~0.1% of the stream.
TEST(AccuracyRegressionTest, HeavyHitterF1) {
  int64_t threshold = F().truth.total() / 1000;
  auto actual = F().truth.HeavyHitters(threshold);
  ASSERT_FALSE(actual.empty());
  DAVINCI_GATE(1.0 - HeavySetF1(F().s_full.HeavyHitters(threshold), actual),
               0.05);
}

// Task 3: heavy changers between the two halves.
TEST(AccuracyRegressionTest, HeavyChangerF1) {
  int64_t delta = F().truth.total() / 2000;
  GroundTruth diff = GroundTruth::Difference(F().ta, F().tb);
  std::vector<std::pair<uint32_t, int64_t>> actual;
  for (const auto& [key, change] : diff.frequencies()) {
    if (std::llabs(change) > delta) actual.emplace_back(key, change);
  }
  ASSERT_FALSE(actual.empty());
  DAVINCI_GATE(1.0 - HeavySetF1(F().sa.HeavyChangers(F().sb, delta), actual),
               0.05);
}

// Task 4: cardinality.
TEST(AccuracyRegressionTest, CardinalityRe) {
  DAVINCI_GATE(RelativeError(static_cast<double>(F().truth.cardinality()),
                             F().s_full.EstimateCardinality()),
               0.05);
}

// Task 5: flow-size distribution.
TEST(AccuracyRegressionTest, DistributionWmre) {
  DAVINCI_GATE(WeightedMeanRelativeError(F().truth.Distribution(),
                                         F().s_full.Distribution()),
               0.05);
}

// Task 6: entropy.
TEST(AccuracyRegressionTest, EntropyRe) {
  DAVINCI_GATE(
      RelativeError(F().truth.Entropy(), F().s_full.EstimateEntropy()), 0.05);
}

// Task 7: union — merging the halves must answer like the whole trace.
TEST(AccuracyRegressionTest, UnionAre) {
  DaVinciSketch merged = F().sa;
  merged.Merge(F().sb);
  DAVINCI_GATE(
      FrequencyAre(F().truth, [&](uint32_t key) { return merged.Query(key); }),
      0.02);
}

// Task 8: signed difference of the overlapping slices.
TEST(AccuracyRegressionTest, DifferenceAre) {
  DaVinciSketch diff_sketch = F().sda;
  diff_sketch.Subtract(F().sdb);
  GroundTruth diff = GroundTruth::Difference(F().tda, F().tdb);
  DAVINCI_GATE(FrequencyAre(
                   diff, [&](uint32_t key) { return diff_sketch.Query(key); }),
               0.10);
}

// Task 9: cardinality of the inner join.
TEST(AccuracyRegressionTest, InnerJoinRe) {
  double truth = GroundTruth::InnerJoin(F().tda, F().tdb);
  DAVINCI_GATE(
      RelativeError(truth, DaVinciSketch::InnerProduct(F().sda, F().sdb)),
      0.10);
}

}  // namespace
}  // namespace davinci
