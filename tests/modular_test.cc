#include "common/modular.h"

#include <cstdint>
#include <random>

#include <gtest/gtest.h>

namespace davinci {
namespace {

TEST(ModularTest, FermatPrimeIsPrime) {
  // Trial division by small primes is enough to sanity-check 2^32 + 15;
  // full primality is asserted via Fermat's little theorem below.
  for (uint64_t d : {3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL, 23ULL}) {
    EXPECT_NE(kFermatPrime % d, 0u) << d;
  }
  // a^(p-1) ≡ 1 (mod p) for several witnesses.
  for (uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 31337ULL, 4294967295ULL}) {
    EXPECT_EQ(PowMod(a, kFermatPrime - 1, kFermatPrime), 1u) << a;
  }
}

TEST(ModularTest, MulModMatchesSmallCases) {
  EXPECT_EQ(MulMod(7, 9, 10), 3u);
  EXPECT_EQ(MulMod(0, 12345, 97), 0u);
  EXPECT_EQ(MulMod(96, 96, 97), 1u);
}

TEST(ModularTest, MulModNoOverflow) {
  uint64_t big = kFermatPrime - 1;
  // (p-1)^2 mod p == 1.
  EXPECT_EQ(MulMod(big, big, kFermatPrime), 1u);
}

TEST(ModularTest, PowModBasics) {
  EXPECT_EQ(PowMod(2, 10, 1000000007), 1024u);
  EXPECT_EQ(PowMod(5, 0, 13), 1u);
  EXPECT_EQ(PowMod(0, 5, 13), 0u);
}

TEST(ModularTest, ModInverseRoundTrips) {
  for (uint64_t a : {1ULL, 2ULL, 17ULL, 123456789ULL, 4294967295ULL}) {
    uint64_t inv = ModInverse(a, kFermatPrime);
    EXPECT_EQ(MulMod(a, inv, kFermatPrime), 1u) << a;
  }
}

TEST(ModularTest, SignedModHandlesNegatives) {
  EXPECT_EQ(SignedMod(-1, 97), 96u);
  EXPECT_EQ(SignedMod(-97, 97), 0u);
  EXPECT_EQ(SignedMod(5, 97), 5u);
  EXPECT_EQ(SignedMod(-1, kFermatPrime), kFermatPrime - 1);
}

TEST(ModularTest, SignedModExtremeValues) {
  // INT64_MIN has no positive counterpart; the unsigned magnitude path
  // must still produce the exact residue. 2^63 mod 97 = 79, so
  // (−2^63) mod 97 = 97 − 79 = 18.
  EXPECT_EQ(SignedMod(INT64_MIN, 97), 18u);
  EXPECT_EQ(SignedMod(INT64_MIN, 2), 0u);
  EXPECT_EQ(SignedMod(INT64_MAX, 2), 1u);
  // Against a modulus above INT64_MAX the old signed cast was wrong; the
  // unsigned form reduces exactly (here p > |v| so the residue is p−|v|).
  uint64_t huge = (uint64_t{1} << 63) + 9;
  EXPECT_EQ(SignedMod(-5, huge), huge - 5);
  EXPECT_EQ(SignedMod(INT64_MIN, huge), 9u);
}

TEST(ModularTest, SignedModMatchesReferenceOnRandomInputs) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    int64_t v = static_cast<int64_t>(rng());
    uint64_t p = rng() % 1000000 + 2;
    // Reference via 128-bit arithmetic: ((v mod p) + p) mod p.
    auto wide = static_cast<__int128>(v);
    auto residue = static_cast<uint64_t>(
        ((wide % static_cast<__int128>(p)) + static_cast<__int128>(p)) %
        static_cast<__int128>(p));
    EXPECT_EQ(SignedMod(v, p), residue) << v << " mod " << p;
  }
}

TEST(ModularTest, AddModNearTheTopOfTheField) {
  // a + b close to 2p must wrap exactly once.
  EXPECT_EQ(AddMod(kFermatPrime - 1, kFermatPrime - 1, kFermatPrime),
            kFermatPrime - 2);
  EXPECT_EQ(AddMod(0, 0, kFermatPrime), 0u);
  EXPECT_EQ(SubMod(0, kFermatPrime - 1, kFermatPrime), 1u);
}

TEST(ModularTest, AddSubModInverse) {
  uint64_t a = 1234567, b = kFermatPrime - 3;
  uint64_t s = AddMod(a, b, kFermatPrime);
  EXPECT_EQ(SubMod(s, b, kFermatPrime), a);
  EXPECT_EQ(SubMod(a, a, kFermatPrime), 0u);
}

TEST(ModularTest, KeyRecoveryViaFermat) {
  // The IFP decode identity: id = count·key, key = id · count^(p-2).
  uint64_t key = 0xfeedface;
  uint64_t count = 12345;
  uint64_t id = MulMod(count, key, kFermatPrime);
  uint64_t recovered =
      MulMod(id, PowMod(count, kFermatPrime - 2, kFermatPrime), kFermatPrime);
  EXPECT_EQ(recovered, key);
}

TEST(ModularTest, NegativeCountRecoversMirrorKey) {
  // With a negative count c, id = (p−|c|)·key and the naive inversion
  // yields p − key; Algorithm 5 therefore validates both e and p − e.
  uint64_t key = 0xabcd1234;
  int64_t count = -77;
  uint64_t id = MulMod(SignedMod(count, kFermatPrime), key, kFermatPrime);
  uint64_t count_abs = 77;
  uint64_t naive =
      MulMod(id, ModInverse(count_abs, kFermatPrime), kFermatPrime);
  EXPECT_EQ(naive, kFermatPrime - key);
}

}  // namespace
}  // namespace davinci
