// Integration "shape" tests: small-scale versions of the paper's headline
// comparisons, asserted as regressions so the claims EXPERIMENTS.md makes
// cannot silently rot. Each test mirrors one figure's winner at 200 KB.

#include <gtest/gtest.h>

#include "baselines/cm_sketch.h"
#include "baselines/csoa.h"
#include "baselines/cu_sketch.h"
#include "baselines/elastic_sketch.h"
#include "baselines/fermat_sketch.h"
#include "baselines/flow_radar.h"
#include "core/davinci_sketch.h"
#include "metrics/metrics.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

constexpr size_t kBytes = 200 * 1024;
constexpr double kScale = 0.1;  // 10% of Table II sizes keeps tests fast

double FrequencyAre(const GroundTruth& truth, const FrequencySketch& sketch) {
  std::vector<Estimate> observations;
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, sketch.Query(key)});
  }
  return AverageRelativeError(observations);
}

class ShapeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new Trace(BuildCaidaLike(kScale));
    truth_ = new GroundTruth(trace_->keys);
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete truth_;
    trace_ = nullptr;
    truth_ = nullptr;
  }

  static const Trace& trace() { return *trace_; }
  static const GroundTruth& truth() { return *truth_; }

 private:
  static Trace* trace_;
  static GroundTruth* truth_;
};

Trace* ShapeTest::trace_ = nullptr;
GroundTruth* ShapeTest::truth_ = nullptr;

TEST_F(ShapeTest, Fig4aFrequencyDaVinciBeatsCmAndCu) {
  DaVinciSketch ours(kBytes, 7);
  CmSketch cm(kBytes, 3, 7);
  CuSketch cu(kBytes, 3, 7);
  for (uint32_t key : trace().keys) {
    ours.Insert(key, 1);
    cm.Insert(key, 1);
    cu.Insert(key, 1);
  }
  double ours_are = FrequencyAre(truth(), ours);
  EXPECT_LT(ours_are * 3, FrequencyAre(truth(), cm));
  EXPECT_LT(ours_are * 2, FrequencyAre(truth(), cu));
}

TEST_F(ShapeTest, Fig4gUnionDaVinciBeatsElastic) {
  size_t half = trace().keys.size() / 2;
  DaVinciSketch a(kBytes, 7), b(kBytes, 7);
  ElasticSketch ea(kBytes, 7), eb(kBytes, 7);
  for (size_t i = 0; i < trace().keys.size(); ++i) {
    if (i < half) {
      a.Insert(trace().keys[i], 1);
      ea.Insert(trace().keys[i], 1);
    } else {
      b.Insert(trace().keys[i], 1);
      eb.Insert(trace().keys[i], 1);
    }
  }
  a.Merge(b);
  ea.Merge(eb);
  EXPECT_LT(FrequencyAre(truth(), a), FrequencyAre(truth(), ea));
}

TEST_F(ShapeTest, Fig4hDifferenceDaVinciBeatsFlowRadarOnOverlap) {
  size_t n = trace().keys.size();
  Trace wa = Slice(trace(), 0, 2 * n / 3, "a");
  Trace wb = Slice(trace(), n / 3, n, "b");
  GroundTruth diff =
      GroundTruth::Difference(GroundTruth(wa.keys), GroundTruth(wb.keys));

  DaVinciSketch da(kBytes, 7), db(kBytes, 7);
  FlowRadar fa(kBytes, 7), fb(kBytes, 7);
  for (uint32_t key : wa.keys) {
    da.Insert(key, 1);
    fa.Insert(key, 1);
  }
  for (uint32_t key : wb.keys) {
    db.Insert(key, 1);
    fb.Insert(key, 1);
  }
  da.Subtract(db);
  fa.Subtract(fb);
  auto radar_decoded = fa.Decode();

  std::vector<Estimate> ours_obs, radar_obs;
  for (const auto& [key, f] : diff.frequencies()) {
    ours_obs.push_back({f, da.Query(key)});
    auto it = radar_decoded.find(key);
    radar_obs.push_back({f, it == radar_decoded.end() ? 0 : it->second});
  }
  EXPECT_LT(AverageRelativeError(ours_obs),
            AverageRelativeError(radar_obs));
}

TEST_F(ShapeTest, Fig8CsoaNeedsMoreMemoryAndAccesses) {
  // CSOA at the SAME total memory is less accurate on frequency, and at
  // any memory costs ~3x the memory accesses per packet.
  DaVinciSketch ours(kBytes, 7);
  Csoa csoa({kBytes / 3, kBytes / 3, kBytes / 3}, 7);
  for (uint32_t key : trace().keys) {
    ours.Insert(key, 1);
    csoa.Insert(key, 1);
  }
  EXPECT_LT(FrequencyAre(truth(), ours), FrequencyAre(truth(), csoa));
  EXPECT_LT(ours.MemoryAccesses() * 2, csoa.MemoryAccesses());
}

TEST_F(ShapeTest, Table3MonotoneImprovementWithMemory) {
  double previous = 1e9;
  for (size_t kb : {100, 300, 900}) {
    DaVinciSketch sketch(kb * 1024, 7);
    for (uint32_t key : trace().keys) sketch.Insert(key, 1);
    double are = FrequencyAre(truth(), sketch);
    EXPECT_LT(are, previous * 1.05) << kb;  // allow tiny noise
    previous = are;
  }
}

}  // namespace
}  // namespace davinci
