// Tests for the invertible (decodable) structures: FlowRadar, LossRadar,
// FermatSketch — the difference/union substrates.

#include <unordered_map>

#include <gtest/gtest.h>

#include "baselines/fermat_sketch.h"
#include "baselines/flow_radar.h"
#include "baselines/loss_radar.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

// ---------- FlowRadar ----------

TEST(FlowRadarTest, DecodesSparseFlowSet) {
  FlowRadar radar(64 * 1024, 4);
  for (uint32_t key = 1; key <= 500; ++key) {
    radar.Insert(key, key % 7 + 1);
  }
  auto decoded = radar.Decode();
  EXPECT_EQ(decoded.size(), 500u);
  for (uint32_t key = 1; key <= 500; ++key) {
    EXPECT_EQ(decoded[key], key % 7 + 1);
  }
}

TEST(FlowRadarTest, InclusionDifferenceDecodes) {
  // B ⊂ A: flows only in A survive the subtraction and decode exactly.
  FlowRadar a(64 * 1024, 5), b(64 * 1024, 5);
  for (uint32_t key = 1; key <= 400; ++key) {
    a.Insert(key, 3);
    if (key <= 200) b.Insert(key, 3);
  }
  a.Subtract(b);
  auto decoded = a.Decode();
  EXPECT_EQ(decoded.size(), 200u);
  for (uint32_t key = 201; key <= 400; ++key) {
    EXPECT_EQ(decoded[key], 3);
  }
}

TEST(FlowRadarTest, OverlapDifferenceLosesSharedFlows) {
  // Flows in both sets with differing counts leave residue that FlowRadar
  // cannot attribute — its documented weakness on overlap differences.
  FlowRadar a(64 * 1024, 6), b(64 * 1024, 6);
  for (uint32_t key = 1; key <= 100; ++key) {
    a.Insert(key, 5);
    b.Insert(key, 2);
  }
  a.Subtract(b);
  auto decoded = a.Decode();
  // FlowCounts cancelled, so nothing is recoverable.
  EXPECT_TRUE(decoded.empty());
}

TEST(FlowRadarTest, OverloadDecodeFailsGracefully) {
  FlowRadar radar(2 * 1024, 7);  // far too small for 5000 flows
  for (uint32_t key = 1; key <= 5000; ++key) radar.Insert(key, 1);
  auto decoded = radar.Decode();
  EXPECT_LT(decoded.size(), 5000u);  // partial or empty, but no crash
}

// ---------- LossRadar ----------

TEST(LossRadarTest, DecodesMultisetCounts) {
  LossRadar radar(64 * 1024, 8);
  for (uint32_t key = 1; key <= 300; ++key) {
    radar.Insert(key, key % 5 + 1);
  }
  auto decoded = radar.Decode();
  EXPECT_EQ(decoded.size(), 300u);
  for (uint32_t key = 1; key <= 300; ++key) {
    EXPECT_EQ(decoded[key], key % 5 + 1);
  }
}

TEST(LossRadarTest, OverlapDifferenceRecoversDeltas) {
  LossRadar a(64 * 1024, 9), b(64 * 1024, 9);
  for (uint32_t key = 1; key <= 100; ++key) {
    a.Insert(key, 5);
    b.Insert(key, key % 2 == 0 ? 5 : 2);
  }
  a.Subtract(b);
  auto decoded = a.Decode();
  // Even keys cancel exactly; odd keys leave a delta of +3.
  EXPECT_EQ(decoded.size(), 50u);
  for (uint32_t key = 1; key <= 99; key += 2) {
    EXPECT_EQ(decoded[key], 3);
  }
}

TEST(LossRadarTest, NegativeDeltasDecode) {
  LossRadar a(32 * 1024, 10), b(32 * 1024, 10);
  a.Insert(77, 2);
  b.Insert(77, 9);
  b.Insert(88, 4);
  a.Subtract(b);
  auto decoded = a.Decode();
  EXPECT_EQ(decoded[77], -7);
  EXPECT_EQ(decoded[88], -4);
}

TEST(LossRadarTest, MergeActsAsUnion) {
  LossRadar a(32 * 1024, 11), b(32 * 1024, 11);
  a.Insert(5, 3);
  b.Insert(5, 4);
  b.Insert(6, 1);
  a.Merge(b);
  auto decoded = a.Decode();
  EXPECT_EQ(decoded[5], 7);
  EXPECT_EQ(decoded[6], 1);
}

// ---------- FermatSketch ----------

TEST(FermatSketchTest, DecodeRoundTrip) {
  FermatSketch sketch(64 * 1024, 3, 12);
  for (uint32_t key = 1; key <= 1000; ++key) {
    sketch.Insert(key, key);
  }
  auto decoded = sketch.Decode();
  EXPECT_EQ(decoded.size(), 1000u);
  for (uint32_t key = 1; key <= 1000; ++key) {
    EXPECT_EQ(decoded[key], key);
  }
}

TEST(FermatSketchTest, DecodesLargeKeys) {
  FermatSketch sketch(16 * 1024, 3, 13);
  sketch.Insert(UINT32_MAX, 17);
  sketch.Insert(UINT32_MAX - 5, 1);
  auto decoded = sketch.Decode();
  EXPECT_EQ(decoded[UINT32_MAX], 17);
  EXPECT_EQ(decoded[UINT32_MAX - 5], 1);
}

TEST(FermatSketchTest, DifferenceWithNegativeCounts) {
  FermatSketch a(32 * 1024, 3, 14), b(32 * 1024, 3, 14);
  a.Insert(100, 10);
  a.Insert(200, 5);
  b.Insert(100, 3);
  b.Insert(300, 8);
  a.Subtract(b);
  auto decoded = a.Decode();
  EXPECT_EQ(decoded[100], 7);
  EXPECT_EQ(decoded[200], 5);
  EXPECT_EQ(decoded[300], -8);
}

TEST(FermatSketchTest, UnionViaMerge) {
  FermatSketch a(32 * 1024, 3, 15), b(32 * 1024, 3, 15);
  for (uint32_t key = 1; key <= 200; ++key) a.Insert(key, 2);
  for (uint32_t key = 100; key <= 300; ++key) b.Insert(key, 3);
  a.Merge(b);
  auto decoded = a.Decode();
  EXPECT_EQ(decoded[50], 2);
  EXPECT_EQ(decoded[150], 5);
  EXPECT_EQ(decoded[250], 3);
}

TEST(FermatSketchTest, ExactCancellationLeavesEmptySketch) {
  FermatSketch a(16 * 1024, 3, 16), b(16 * 1024, 3, 16);
  for (uint32_t key = 1; key <= 100; ++key) {
    a.Insert(key, 9);
    b.Insert(key, 9);
  }
  a.Subtract(b);
  EXPECT_TRUE(a.Decode().empty());
}

TEST(FermatSketchTest, OverloadedSketchDecodesPartially) {
  // 2000 flows into ~38 buckets cannot decode fully; the peeling must
  // terminate, and every true key it reports must carry the exact count.
  // (Spurious keys are possible in this regime — the DaVinci element
  // filter's cross-validation exists precisely to reject them.)
  FermatSketch sketch(1024, 3, 17);
  for (uint32_t key = 1; key <= 2000; ++key) sketch.Insert(key, 1);
  auto decoded = sketch.Decode();
  EXPECT_LT(decoded.size(), 2000u);
  for (const auto& [key, count] : decoded) {
    if (key >= 1 && key <= 2000) {
      EXPECT_EQ(count, 1) << key;
    }
  }
}

}  // namespace
}  // namespace davinci
