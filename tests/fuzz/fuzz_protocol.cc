// Fuzz harness for the sketch server's request parser (docs/SERVER.md).
//
// Contract under test: for ANY byte stream fed into the connection
// pipeline — FrameAssembler chunk reassembly, then RequestDispatcher over
// each completed frame — the server either answers with a well-formed
// status or poisons the connection (fatal framing), but never aborts,
// never trips UB, and never lets the assembler buffer grow past the
// declared frame cap. Hostile payloads may be gibberish; the dispatcher
// must map them to kMalformed/kUnknownOp/kBadArgument cleanly.
//
// The one concession to being a fuzz target: kCreateTenant is only
// dispatched when its parsed geometry is tiny and few tenants exist, so a
// hostile "create 2 GiB tenant" input reads as the parser rejection it is
// in production being exercised elsewhere, not an OOM in the harness.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/tenant.h"

#include "standalone_main.h"

namespace {

#define FUZZ_EXPECT(cond) \
  do {                    \
    if (!(cond)) __builtin_trap(); \
  } while (0)

using davinci::server::FrameAssembler;
using davinci::server::Op;
using davinci::server::RequestDispatcher;
using davinci::server::StatusCode;
using davinci::server::TenantOptions;
using davinci::server::TenantRegistry;
using davinci::server::WireReader;
using davinci::server::WireWriter;

// Harness memory bound: dispatch a parsed kCreateTenant only when it is
// small; everything else (including creates that fail the parse) goes
// through untouched.
bool AllowDispatch(const std::vector<uint8_t>& body,
                   const TenantRegistry& registry) {
  if (body.size() < 2) return true;
  WireReader reader(std::span<const uint8_t>(body.data() + 2,
                                             body.size() - 2));
  if (static_cast<Op>(body[1]) == Op::kCreateTenant) {
    std::string name;
    TenantOptions options;
    if (!reader.Str(&name) || !reader.U32(&options.shards) ||
        !reader.U64(&options.total_bytes) || !reader.U64(&options.seed) ||
        !reader.U32(&options.window_epochs) ||
        !reader.U64(&options.max_bytes) || !reader.Done()) {
      return true;  // will be answered kMalformed — no allocation happens
    }
    return options.shards <= 8 && options.total_bytes <= 64 * 1024 &&
           options.window_epochs <= 4 && registry.size() < 8;
  }
  if (static_cast<Op>(body[1]) == Op::kResizeTenant) {
    // Same memory bound for the rebuild path: a parsed "grow to 2 GiB"
    // reads as the admission rejection it is elsewhere, not a harness OOM.
    std::string name;
    uint64_t total_bytes = 0;
    if (!reader.Str(&name) || !reader.U64(&total_bytes) || !reader.Done()) {
      return true;
    }
    return total_bytes <= 64 * 1024;
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (size_t{1} << 20)) return 0;  // 1 MiB input cap
  TenantRegistry registry("");  // no persistence inside the fuzzer
  registry.Create("a", TenantOptions{2, 16 * 1024, 7, 2});
  registry.Create("b", TenantOptions{2, 16 * 1024, 7, 0});
  RequestDispatcher dispatcher(&registry);

  FrameAssembler assembler;
  // Feed in input-derived chunk sizes so reassembly across arbitrary read
  // boundaries is part of the search space.
  size_t chunk_seed = size > 0 ? data[0] : 1;
  size_t pos = 0;
  while (pos < size) {
    size_t chunk = 1 + (chunk_seed * 31 + pos * 7) % 97;
    if (chunk > size - pos) chunk = size - pos;
    bool fed = assembler.Feed(data + pos, chunk);
    pos += chunk;
    std::vector<uint8_t> body;
    while (assembler.Next(&body)) {
      FUZZ_EXPECT(body.size() >= 1 &&
                  body.size() <= davinci::server::kMaxFrameBytes);
      if (!AllowDispatch(body, registry)) continue;
      std::string response = dispatcher.Handle(body);
      // Every response leads with a valid status byte.
      FUZZ_EXPECT(!response.empty());
      FUZZ_EXPECT(static_cast<uint8_t>(response[0]) <=
                  static_cast<uint8_t>(StatusCode::kQuotaExceeded));
    }
    if (!fed) {
      FUZZ_EXPECT(assembler.fatal());
      break;
    }
  }
  // A hostile prefix can never balloon the buffer past one frame.
  FUZZ_EXPECT(assembler.buffered() <=
              size_t{davinci::server::kMaxFrameBytes} + sizeof(uint32_t));
  return 0;
}

#if !defined(DAVINCI_LIBFUZZER)
namespace davinci::fuzz {

namespace {

std::string FramedRequest(const std::string& body) {
  return davinci::server::Frame(body);
}

}  // namespace

int WriteSeeds(const std::string& dir) {
  int written = 0;
  // Seed 1: a well-formed session — create, batch-ingest, query, admin.
  {
    std::string stream;
    {
      WireWriter w;
      w.U8(davinci::server::kProtocolVersion);
      w.U8(static_cast<uint8_t>(Op::kCreateTenant));
      w.Str("seed");
      w.U32(2);
      w.U64(16 * 1024);
      w.U64(7);
      w.U32(0);
      w.U64(32 * 1024);  // quota
      stream += FramedRequest(w.Take());
    }
    {
      WireWriter w;
      w.U8(davinci::server::kProtocolVersion);
      w.U8(static_cast<uint8_t>(Op::kResizeTenant));
      w.Str("seed");
      w.U64(24 * 1024);
      stream += FramedRequest(w.Take());
    }
    {
      // Over-quota resize: exercises the kQuotaExceeded admission path.
      WireWriter w;
      w.U8(davinci::server::kProtocolVersion);
      w.U8(static_cast<uint8_t>(Op::kResizeTenant));
      w.Str("seed");
      w.U64(48 * 1024);
      stream += FramedRequest(w.Take());
    }
    {
      WireWriter w;
      w.U8(davinci::server::kProtocolVersion);
      w.U8(static_cast<uint8_t>(Op::kInsertBatch));
      w.Str("seed");
      std::vector<uint32_t> keys{1, 2, 3, 4, 5, 1, 1, 2};
      std::vector<int64_t> counts(keys.size(), 1);
      w.Keys(keys);
      w.Counts(counts);
      stream += FramedRequest(w.Take());
    }
    {
      WireWriter w;
      w.U8(davinci::server::kProtocolVersion);
      w.U8(static_cast<uint8_t>(Op::kQuery));
      w.Str("seed");
      w.U32(1);
      stream += FramedRequest(w.Take());
    }
    {
      WireWriter w;
      w.U8(davinci::server::kProtocolVersion);
      w.U8(static_cast<uint8_t>(Op::kHeavyHitters));
      w.Str("a");
      w.I64(2);
      stream += FramedRequest(w.Take());
    }
    {
      WireWriter w;
      w.U8(davinci::server::kProtocolVersion);
      w.U8(static_cast<uint8_t>(Op::kListTenants));
      stream += FramedRequest(w.Take());
    }
    if (WriteSeedFile(dir + "/protocol_session.bin", stream) == 0) ++written;
  }
  // Seed 2: cross-tenant queries against the pre-seeded tenants.
  {
    std::string stream;
    for (Op op : {Op::kUnionCardinality, Op::kInnerProduct}) {
      WireWriter w;
      w.U8(davinci::server::kProtocolVersion);
      w.U8(static_cast<uint8_t>(op));
      w.Str("a");
      w.Str("b");
      stream += FramedRequest(w.Take());
    }
    {
      WireWriter w;
      w.U8(davinci::server::kProtocolVersion);
      w.U8(static_cast<uint8_t>(Op::kWindowHeavyChangers));
      w.Str("a");
      w.I64(1);
      stream += FramedRequest(w.Take());
    }
    if (WriteSeedFile(dir + "/protocol_cross.bin", stream) == 0) ++written;
  }
  // Seed 3: a truncated frame (prefix declares more than follows).
  {
    WireWriter w;
    w.U8(davinci::server::kProtocolVersion);
    w.U8(static_cast<uint8_t>(Op::kPing));
    std::string framed = FramedRequest(w.Take());
    framed += "\x40\x00\x00\x00partial";  // declares 64 bytes, sends 7
    if (WriteSeedFile(dir + "/protocol_truncated.bin", framed) == 0) {
      ++written;
    }
  }
  // Seed 4: garbage that is not even a frame boundary.
  {
    std::string junk = "\x05\x00\x00\x00\xff\xfe\xfd\xfc\xfb";
    if (WriteSeedFile(dir + "/protocol_garbage.bin", junk) == 0) ++written;
  }
  return written;
}

}  // namespace davinci::fuzz
#endif  // !DAVINCI_LIBFUZZER
