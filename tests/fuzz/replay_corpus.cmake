# Replays every file in ${CORPUS} through ${FUZZER} (the standalone
# driver's argv mode). Separate script because the corpus contents are
# produced at test time by the --write-seeds step — a glob at configure
# time would see an empty directory.
file(GLOB inputs ${CORPUS}/*)
if(NOT inputs)
  message(FATAL_ERROR "no corpus inputs in ${CORPUS} — did write_seeds run?")
endif()
execute_process(COMMAND ${FUZZER} ${inputs} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fuzzer replay failed (exit ${rc})")
endif()
