// Fuzz harness for the IFP Fermat peeling decode on corrupted buckets.
//
// Contract under test (docs/STATIC_ANALYSIS.md §Fuzzing): the peeling
// decode (Algorithm 5) must terminate and stay UB-free for ANY bucket
// contents that pass LoadState's range gate — a corrupted {iID, icnt}
// lane may decode to garbage flows (the EF cross-validation exists to
// reject most of them), but never to a crash, a non-terminating peel, or
// signed-overflow UB in the sign-corrected arithmetic.
//
// Input encoding: the fuzz input is a corruption script over a serialized
// IFP image built from a fixed workload — 3-byte records (offset16, xor8)
// each XOR a byte of the image. This keeps most mutants structurally
// close to a real image, so they survive LoadState and reach the decoder
// (a raw byte-soup input would almost always die at the geometry check).

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/element_filter.h"
#include "core/infrequent_part.h"

#include "standalone_main.h"

namespace {

#define FUZZ_EXPECT(cond) \
  do {                    \
    if (!(cond)) __builtin_trap(); \
  } while (0)

constexpr size_t kRows = 3;
constexpr size_t kWidth = 64;
constexpr uint64_t kSeed = 1;

// The baseline image every corruption script starts from. Deterministic:
// the same bytes every run, so corpus entries are reproducible.
std::string BaselineImage() {
  davinci::InfrequentPart ifp(kRows, kWidth, /*use_signs=*/true, kSeed);
  for (uint32_t key = 1; key <= 96; ++key) {
    ifp.Insert(key, 1 + static_cast<int64_t>(key % 7));
  }
  std::stringstream out;
  ifp.SaveState(out);
  return out.str();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (size_t{1} << 16)) return 0;
  static const std::string baseline = BaselineImage();
  std::string image = baseline;
  for (size_t i = 0; i + 3 <= size; i += 3) {
    size_t offset = (static_cast<size_t>(data[i]) |
                     (static_cast<size_t>(data[i + 1]) << 8)) %
                    image.size();
    image[offset] = static_cast<char>(
        static_cast<uint8_t>(image[offset]) ^ data[i + 2]);
  }

  davinci::InfrequentPart ifp(kRows, kWidth, /*use_signs=*/true, kSeed);
  std::stringstream in(image);
  if (!ifp.LoadState(in)) return 0;  // out-of-range cell: clean rejection

  // Fast queries over the original keys (sign-corrected medians).
  for (uint32_t key = 1; key <= 96; ++key) {
    (void)ifp.FastQuery(key);
  }

  // Full peel, both without and with the EF cross-filter. Termination is
  // part of the contract: peeling strictly shrinks the active set, so a
  // corrupted image converges (possibly to a partial decode) — a hang
  // here is a real bug, surfaced by the fuzzer's per-input timeout.
  (void)ifp.Decode(/*cross_filter=*/nullptr, /*num_threads=*/1);

  davinci::ElementFilter filter(2 * 1024, {8, 16}, /*threshold=*/4,
                                kSeed + 1);
  for (uint32_t key = 1; key <= 96; ++key) filter.Insert(key, 3);
  (void)ifp.Decode(&filter, /*num_threads=*/1);

  // Linear ops on the corrupted state must stay wrap-safe too.
  davinci::InfrequentPart twin(kRows, kWidth, /*use_signs=*/true, kSeed);
  twin.Merge(ifp);
  twin.Subtract(ifp);
  FUZZ_EXPECT(twin.rows() == kRows && twin.width() == kWidth);
  return 0;
}

#if !defined(DAVINCI_LIBFUZZER)
namespace davinci::fuzz {

int WriteSeeds(const std::string& dir) {
  int written = 0;
  // Empty script: the uncorrupted baseline (decoder's happy path).
  if (WriteSeedFile(dir + "/decode_identity.bin", std::string()) == 0) {
    ++written;
  }
  // A few single-byte flips at spread offsets — one per image region
  // (size header, iID lane, icnt lane).
  const std::string baseline = BaselineImage();
  auto script = [](uint16_t offset, uint8_t mask) {
    std::string s(3, '\0');
    s[0] = static_cast<char>(offset & 0xff);
    s[1] = static_cast<char>(offset >> 8);
    s[2] = static_cast<char>(mask);
    return s;
  };
  uint16_t id_lane = static_cast<uint16_t>(8 + 16);  // inside iID array
  uint16_t cnt_lane =
      static_cast<uint16_t>(baseline.size() - 16);   // inside icnt array
  if (WriteSeedFile(dir + "/decode_flip_header.bin", script(0, 0xff)) == 0) {
    ++written;
  }
  if (WriteSeedFile(dir + "/decode_flip_id.bin", script(id_lane, 0x40)) ==
      0) {
    ++written;
  }
  if (WriteSeedFile(dir + "/decode_flip_count.bin",
                    script(cnt_lane, 0x80) + script(id_lane, 0x01)) == 0) {
    ++written;
  }
  return written;
}

}  // namespace davinci::fuzz
#endif  // !DAVINCI_LIBFUZZER
