// Fuzz harness for the DaVinciSketch binary serialization boundary.
//
// Contract under test (docs/STATIC_ANALYSIS.md §Fuzzing): for ANY byte
// string, DaVinciSketch::Load either returns false or produces a sketch
// whose read paths are safe to drive — mutated/hostile images may corrupt
// *answers*, but must never abort the process, allocate unbounded memory,
// or trip undefined behavior. Pair this harness with the `ubsan` preset
// (or clang's -fsanitize=fuzzer,undefined) so arithmetic on loaded state
// is checked, not just memory safety.

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/davinci_sketch.h"

#include "standalone_main.h"

namespace {

// Harness-side expectation: trap (fuzzer-visible crash) on violation.
#define FUZZ_EXPECT(cond) \
  do {                    \
    if (!(cond)) __builtin_trap(); \
  } while (0)

// Loaded geometry cap for the exercise phase. Load itself enforces
// kMaxLoadedBytes (2 GiB); the fuzzer additionally skips the heavy walks
// on anything above 1 MiB so iterations stay fast.
constexpr size_t kExerciseBytesCap = size_t{1} << 20;

void Exercise(const davinci::DaVinciSketch& sketch) {
  // Point queries across a spread of keys (hits FP, EF, and IFP probes).
  int64_t sum = 0;
  for (uint32_t key = 1; key <= 64; ++key) {
    sum += sketch.Query(key * 2654435761u);
  }
  (void)sum;
  if (sketch.MemoryBytes() > kExerciseBytesCap) return;
  // Linear-algebra paths on the loaded state: self-merge and subtract via
  // a copy (identical seeds by construction), then a Save round-trip —
  // whatever Load accepted must serialize again without tripping.
  davinci::DaVinciSketch merged(sketch);
  merged.Merge(sketch);
  merged.Subtract(sketch);
  std::stringstream resaved;
  sketch.Save(resaved);
  davinci::DaVinciSketch reloaded(64, 0);
  FUZZ_EXPECT(davinci::DaVinciSketch::Load(resaved, &reloaded));
  // The decode/cardinality path peels the (possibly nonsense) IFP state;
  // bounded work because geometry is ≤ 1 MiB here.
  (void)sketch.EstimateCardinality();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > (size_t{1} << 22)) return 0;  // 4 MiB input cap
  std::string bytes(reinterpret_cast<const char*>(data), size);
  std::stringstream in(bytes);
  davinci::DaVinciSketch sketch(64, 0);  // placeholder, overwritten by Load
  if (davinci::DaVinciSketch::Load(in, &sketch)) {
    Exercise(sketch);
  }
  return 0;
}

#if !defined(DAVINCI_LIBFUZZER)
namespace davinci::fuzz {

int WriteSeeds(const std::string& dir) {
  int written = 0;
  // Seed 1: small default-config sketch with a mixed workload.
  {
    DaVinciConfig config = DaVinciConfig::FromMemory(16 * 1024, /*seed=*/7);
    DaVinciSketch sketch(config);
    for (uint32_t key = 1; key <= 400; ++key) {
      sketch.Insert(key, 1 + static_cast<int64_t>(key % 19));
    }
    std::stringstream out;
    sketch.Save(out);
    if (WriteSeedFile(dir + "/serialize_mixed.bin", out.str()) == 0) {
      ++written;
    }
  }
  // Seed 2: empty sketch (minimal valid image — header-heavy mutations).
  {
    DaVinciSketch sketch(4 * 1024, /*seed=*/3);
    std::stringstream out;
    sketch.Save(out);
    if (WriteSeedFile(dir + "/serialize_empty.bin", out.str()) == 0) {
      ++written;
    }
  }
  // Seed 3: truncated image (exercises the short-read rejection path).
  {
    DaVinciSketch sketch(4 * 1024, /*seed=*/5);
    for (uint32_t key = 1; key <= 50; ++key) sketch.Insert(key, 2);
    std::stringstream out;
    sketch.Save(out);
    std::string bytes = out.str();
    bytes.resize(bytes.size() / 2);
    if (WriteSeedFile(dir + "/serialize_truncated.bin", bytes) == 0) {
      ++written;
    }
  }
  // Seed 4: DVSZ compressed image with a mixed workload (the varint/RLE/
  // sparse decode paths).
  {
    DaVinciConfig config = DaVinciConfig::FromMemory(16 * 1024, /*seed=*/7);
    DaVinciSketch sketch(config);
    for (uint32_t key = 1; key <= 400; ++key) {
      sketch.Insert(key, 1 + static_cast<int64_t>(key % 19));
    }
    std::stringstream out;
    sketch.Save(out, SketchFormat::kCompressed);
    if (WriteSeedFile(dir + "/serialize_dvsz_mixed.bin", out.str()) == 0) {
      ++written;
    }
  }
  // Seed 5: truncated DVSZ image (mid-run short reads).
  {
    DaVinciSketch sketch(4 * 1024, /*seed=*/5);
    for (uint32_t key = 1; key <= 50; ++key) sketch.Insert(key, 2);
    std::stringstream out;
    sketch.Save(out, SketchFormat::kCompressed);
    std::string bytes = out.str();
    bytes.resize(bytes.size() * 2 / 3);
    if (WriteSeedFile(dir + "/serialize_dvsz_truncated.bin", bytes) == 0) {
      ++written;
    }
  }
  // Seed 6: valid DVSZ prefix followed by an overlong varint (eleven
  // continuation bytes) — the ReadVarU64 overflow gate.
  {
    DaVinciSketch sketch(4 * 1024, /*seed=*/9);
    sketch.Insert(17, 3);
    std::stringstream out;
    sketch.Save(out, SketchFormat::kCompressed);
    std::string bytes = out.str();
    bytes.resize(bytes.size() / 3);
    bytes.append(11, '\x80');
    if (WriteSeedFile(dir + "/serialize_dvsz_varint_overflow.bin", bytes) ==
        0) {
      ++written;
    }
  }
  // Seed 7: DVSZ image with its sparse-section bytes scrambled (duplicate
  // and descending indices for the gap decoder to reject).
  {
    DaVinciSketch sketch(8 * 1024, /*seed=*/11);
    for (uint32_t key = 1; key <= 120; ++key) sketch.Insert(key, 1);
    std::stringstream out;
    sketch.Save(out, SketchFormat::kCompressed);
    std::string bytes = out.str();
    // Zero a run in the back half (the IFP sparse section lives near the
    // end): zeroed gaps decode as duplicate indices.
    size_t begin = bytes.size() * 3 / 4;
    for (size_t i = begin; i < std::min(bytes.size(), begin + 24); ++i) {
      bytes[i] = '\0';
    }
    if (WriteSeedFile(dir + "/serialize_dvsz_dup_sparse.bin", bytes) == 0) {
      ++written;
    }
  }
  return written;
}

}  // namespace davinci::fuzz
#endif  // !DAVINCI_LIBFUZZER
