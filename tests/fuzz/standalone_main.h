#ifndef DAVINCI_TESTS_FUZZ_STANDALONE_MAIN_H_
#define DAVINCI_TESTS_FUZZ_STANDALONE_MAIN_H_

// Driver shim shared by the fuzz harnesses. Two build modes:
//
//  - DAVINCI_LIBFUZZER (clang, -fsanitize=fuzzer): libFuzzer supplies
//    main(); the harness exports only LLVMFuzzerTestOneInput. This is the
//    CI smoke mode (see .github/workflows/ci.yml, fuzz-smoke job).
//  - otherwise (any compiler, incl. GCC): this header supplies a main()
//    that replays files passed on the command line through the same
//    LLVMFuzzerTestOneInput, and regenerates the seed corpus with
//    --write-seeds <dir>. That makes the corpus a plain ctest regression
//    suite on toolchains without libFuzzer.
//
// Each harness defines WriteSeeds(dir) next to its TestOneInput so seeds
// stay in sync with the format they exercise.

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

#if !defined(DAVINCI_LIBFUZZER)

#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

namespace davinci::fuzz {

// Defined by the including harness: writes the seed corpus into `dir`
// (which must exist) and returns the number of files written.
int WriteSeeds(const std::string& dir);

inline int WriteSeedFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return out ? 0 : 1;
}

}  // namespace davinci::fuzz

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "--write-seeds") == 0) {
    int written = davinci::fuzz::WriteSeeds(argv[2]);
    std::cout << "wrote " << written << " seeds to " << argv[2] << "\n";
    return written > 0 ? 0 : 1;
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::cerr << "cannot open " << argv[i] << "\n";
      return 1;
    }
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  }
  std::cout << "replayed " << replayed << " inputs\n";
  return 0;
}

#endif  // !DAVINCI_LIBFUZZER

#endif  // DAVINCI_TESTS_FUZZ_STANDALONE_MAIN_H_
