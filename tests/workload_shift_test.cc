// Workload-shift acceptance test (DESIGN.md §12): the continuous
// AutotuneController, driving DaVinciSketch::Resize at epoch boundaries,
// must keep the nine measurement tasks inside accuracy bounds on a
// drifting workload where a statically-split sketch of the SAME byte
// budget degrades.
//
// The drift is the classic operational one: traffic deployed against a
// heavy-hitter-friendly split (fat FP, thin IFP) later grows a flash
// crowd of medium flows — thousands of new distinct keys per epoch, every
// one past the promotion threshold — followed by key churn. The static
// split's starved IFP overloads (Fermat peeling needs load headroom), so
// decode-backed tasks (cardinality, distribution, entropy) and the
// frequencies of non-FP-resident flows collapse. The controller sees the
// IFP pressure in the epoch HealthSnapshot, re-splits toward the IFP
// step-by-step, and the same traffic stays measurable.
//
// Both tenants of each two-operand task share one controller (the
// proposals from the full-stream sketch are applied to the slice
// sketches too), so the pair stays geometry-identical and linear ops
// remain admissible — the fleet-style deployment of the controller.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/autotune.h"
#include "core/davinci_sketch.h"
#include "metrics/metrics.h"
#include "test_seed.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

constexpr size_t kTotal = 64 * 1024;
constexpr uint64_t kSketchSeed = 7;

template <typename QueryFn>
double FrequencyAre(const GroundTruth& truth, QueryFn&& query) {
  std::vector<Estimate> observations;
  observations.reserve(truth.frequencies().size());
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, query(key)});
  }
  return AverageRelativeError(observations);
}

double HeavySetF1(const std::vector<std::pair<uint32_t, int64_t>>& reported,
                  const std::vector<std::pair<uint32_t, int64_t>>& actual) {
  std::unordered_map<uint32_t, int64_t> actual_map(actual.begin(),
                                                   actual.end());
  size_t correct = 0;
  for (const auto& [key, est] : reported) {
    if (actual_map.count(key)) ++correct;
  }
  return F1Score(correct, reported.size(), actual.size());
}

// One epoch's packets. Every epoch carries the background the static
// split was deployed for: a persistent spray of 2000 mice (one packet
// per epoch each — same key population every epoch, the traffic the EF
// absorbs). From epoch 3 on the workload drifts into a flash crowd with
// churn — hundreds of brand-new uniform heavy flows per epoch
// (CDN-style object rotation), far more residents than the static
// split's starved FP can hold, so their mass lands in the IFP as
// thousands of distinct un-peelable flows.
constexpr int kEpochs = 12;

std::vector<uint32_t> EpochKeys(int epoch, uint64_t seed) {
  // The recurring mice: seed does NOT vary with the epoch.
  std::vector<uint32_t> keys =
      BuildSkewedTrace("spray", 2000, 2000, 0.0, seed).keys;
  if (epoch >= 3) {  // the drift: flash crowd + churn
    std::vector<uint32_t> crowd =
        BuildSkewedTrace("crowd" + std::to_string(epoch), 400 * 100, 400, 0.0,
                         seed + 100 + static_cast<uint64_t>(epoch))
            .keys;
    keys.insert(keys.end(), crowd.begin(), crowd.end());
  }
  return keys;
}

struct ShiftFixture {
  uint64_t seed;
  uint64_t proposals = 0;
  DaVinciConfig static_config;
  GroundTruth truth, ta, tb;
  // The statically-split sketches and the autotuned ones, over the full
  // stream and its two interleaved halves.
  DaVinciSketch s_full, s_a, s_b;
  DaVinciSketch t_full, t_a, t_b;

  explicit ShiftFixture(uint64_t trace_seed)
      : seed(trace_seed),
        // Deployed for phase A's cardinality spray: fat EF and IFP, the
        // FP starved at 10% of the budget — a few hundred resident slots.
        static_config(
            DaVinciConfig::FromMemorySplit(kTotal, 0.10, 0.40, kSketchSeed)),
        s_full(static_config),
        s_a(static_config),
        s_b(static_config),
        t_full(static_config),
        t_a(static_config),
        t_b(static_config) {
    // An operator reacting at every epoch seal (cooldown 1) instead of
    // the default settle-for-two: the drift window is short.
    AutotuneControllerOptions options;
    options.cooldown_epochs = 1;
    // Pin T near the deployment value: the crowd flows (size 100) promote
    // past any T in [16, 32], so late doublings would only force extra
    // rebuilds while the IFP is at peak load — each one re-routes decoded
    // flows and silently drops the undecodable ones.
    options.threshold_max = 32;
    AutotuneController controller(static_config, kTotal, options);
    std::vector<uint32_t> all, half_a, half_b;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      std::vector<uint32_t> keys = EpochKeys(epoch, seed);
      for (size_t i = 0; i < keys.size(); ++i) {
        uint32_t key = keys[i];
        all.push_back(key);
        s_full.Insert(key, 1);
        t_full.Insert(key, 1);
        // Asymmetric thirds so the halves genuinely differ (the heavy
        // changers of the drift are the flows whose a/b counts split 1:2).
        if (i % 3 == 0) {
          half_a.push_back(key);
          s_a.Insert(key, 1);
          t_a.Insert(key, 1);
        } else {
          half_b.push_back(key);
          s_b.Insert(key, 1);
          t_b.Insert(key, 1);
        }
      }
      // Epoch seal boundary: one controller observes the full-stream
      // sketch's structural pressures; its proposal is applied to the
      // whole fleet so the operand pair stays geometry-identical.
      obs::HealthSnapshot health;
      t_full.CollectStats(&health);
      if (auto proposal = controller.Observe(health)) {
        DAVINCI_CHECK(t_full.Resize(*proposal));
        DAVINCI_CHECK(t_a.Resize(*proposal));
        DAVINCI_CHECK(t_b.Resize(*proposal));
      }
    }
    proposals = controller.proposals();
    truth = GroundTruth(all);
    ta = GroundTruth(half_a);
    tb = GroundTruth(half_b);
  }
};

const ShiftFixture& F() {
  static const ShiftFixture* fixture =
      new ShiftFixture(testing::TestSeed(2025));
  return *fixture;
}

// Prints tuned vs static side by side and gates the tuned error. Tasks
// the drift decisively breaks for the static split additionally assert
// tuned < static below; tasks that pay the migration cost (EF residue
// wiped at tower changes, undecodable IFP flows dropped at rebuilds)
// only carry an absolute ceiling.
#define DAVINCI_SHIFT_GATE(task, tuned, stat, bound)                        \
  do {                                                                      \
    DAVINCI_ANNOUNCE_SEED(F().seed);                                        \
    double tuned_observed = (tuned);                                        \
    double static_observed = (stat);                                        \
    std::printf("shift-gate %s: tuned %.6f static %.6f (bound %.6f)\n",     \
                task, tuned_observed, static_observed,                      \
                static_cast<double>(bound));                                \
    EXPECT_LE(tuned_observed, bound);                                       \
  } while (0)

TEST(WorkloadShiftTest, ControllerReactedAndKeptTheBudget) {
  DAVINCI_ANNOUNCE_SEED(F().seed);
  std::printf(
      "shift-summary: proposals %llu, fp %zu -> %zu B, ef %zu -> %zu B, "
      "ifp %zu -> %zu B, T %lld -> %lld\n",
      static_cast<unsigned long long>(F().proposals),
      F().static_config.FpBytes(), F().t_full.config().FpBytes(),
      F().static_config.ef_bytes, F().t_full.config().ef_bytes,
      F().static_config.IfpBytes(), F().t_full.config().IfpBytes(),
      static_cast<long long>(F().static_config.promotion_threshold),
      static_cast<long long>(F().t_full.config().promotion_threshold));
  EXPECT_GE(F().proposals, 2u);
  // Re-splits, not growth: the tuned sketch stays at (about) the static
  // sketch's byte budget.
  EXPECT_LE(F().t_full.config().TotalBytes(), kTotal + kTotal / 10);
  // The pressure was in the starved FP: bytes moved toward it.
  EXPECT_GT(F().t_full.config().FpBytes(), F().static_config.FpBytes());
}

TEST(WorkloadShiftTest, FrequencyAre) {
  DAVINCI_SHIFT_GATE(
      "frequency",
      FrequencyAre(F().truth, [](uint32_t key) { return F().t_full.Query(key); }),
      FrequencyAre(F().truth, [](uint32_t key) { return F().s_full.Query(key); }),
      0.45);
}

TEST(WorkloadShiftTest, HeavyHitterF1) {
  // Below the flash-crowd flow size (100): the crowd IS the heavy set.
  int64_t threshold = 80;
  auto actual = F().truth.HeavyHitters(threshold);
  ASSERT_FALSE(actual.empty());
  double tuned = 1.0 - HeavySetF1(F().t_full.HeavyHitters(threshold), actual);
  double stat = 1.0 - HeavySetF1(F().s_full.HeavyHitters(threshold), actual);
  DAVINCI_SHIFT_GATE("heavy-hitters", tuned, stat, 0.05);
  // The starved FP can hold only a sliver of the crowd: most heavy flows
  // live as undecodable IFP soup and never make the static report.
  EXPECT_GT(stat, tuned);
}

TEST(WorkloadShiftTest, HeavyChangerF1) {
  // The 1:2 a/b split makes every crowd flow change by ~f/3.
  int64_t delta = 25;
  GroundTruth diff = GroundTruth::Difference(F().ta, F().tb);
  std::vector<std::pair<uint32_t, int64_t>> actual;
  for (const auto& [key, change] : diff.frequencies()) {
    if (std::llabs(change) > delta) actual.emplace_back(key, change);
  }
  ASSERT_FALSE(actual.empty());
  double tuned = 1.0 - HeavySetF1(F().t_a.HeavyChangers(F().t_b, delta), actual);
  double stat = 1.0 - HeavySetF1(F().s_a.HeavyChangers(F().s_b, delta), actual);
  DAVINCI_SHIFT_GATE("heavy-changers", tuned, stat, 0.40);
  EXPECT_GT(stat, tuned);
}

TEST(WorkloadShiftTest, CardinalityRe) {
  double truth = static_cast<double>(F().truth.cardinality());
  double tuned = RelativeError(truth, F().t_full.EstimateCardinality());
  double stat = RelativeError(truth, F().s_full.EstimateCardinality());
  // Migration cost, not a win: cardinality is backed by EF linear
  // counting (never IFP decode), so the static split stays accurate
  // while each tuned rebuild pays for flows dropped as undecodable.
  DAVINCI_SHIFT_GATE("cardinality", tuned, stat, 0.25);
}

TEST(WorkloadShiftTest, DistributionWmre) {
  double tuned = WeightedMeanRelativeError(F().truth.Distribution(),
                                           F().t_full.Distribution());
  double stat = WeightedMeanRelativeError(F().truth.Distribution(),
                                          F().s_full.Distribution());
  // WMRE here is dominated by the size-1 spray bins, which both splits
  // estimate poorly; the tuned sketch additionally pays the rebuild
  // migration cost. Ceiling only.
  DAVINCI_SHIFT_GATE("distribution", tuned, stat, 1.80);
}

TEST(WorkloadShiftTest, EntropyRe) {
  double tuned = RelativeError(F().truth.Entropy(), F().t_full.EstimateEntropy());
  double stat = RelativeError(F().truth.Entropy(), F().s_full.EstimateEntropy());
  DAVINCI_SHIFT_GATE("entropy", tuned, stat, 0.05);
  EXPECT_GT(stat, tuned);
}

TEST(WorkloadShiftTest, UnionAre) {
  DaVinciSketch tuned_merged = F().t_a;
  tuned_merged.Merge(F().t_b);
  DaVinciSketch static_merged = F().s_a;
  static_merged.Merge(F().s_b);
  DAVINCI_SHIFT_GATE(
      "union",
      FrequencyAre(F().truth,
                   [&](uint32_t key) { return tuned_merged.Query(key); }),
      FrequencyAre(F().truth,
                   [&](uint32_t key) { return static_merged.Query(key); }),
      0.70);
}

TEST(WorkloadShiftTest, DifferenceAre) {
  GroundTruth diff = GroundTruth::Difference(F().ta, F().tb);
  DaVinciSketch tuned_diff = F().t_a;
  tuned_diff.Subtract(F().t_b);
  DaVinciSketch static_diff = F().s_a;
  static_diff.Subtract(F().s_b);
  double tuned =
      FrequencyAre(diff, [&](uint32_t key) { return tuned_diff.Query(key); });
  double stat =
      FrequencyAre(diff, [&](uint32_t key) { return static_diff.Query(key); });
  DAVINCI_SHIFT_GATE("difference", tuned, stat, 0.75);
  EXPECT_GT(stat, tuned);
}

TEST(WorkloadShiftTest, InnerJoinRe) {
  double truth = GroundTruth::InnerJoin(F().ta, F().tb);
  double tuned =
      RelativeError(truth, DaVinciSketch::InnerProduct(F().t_a, F().t_b));
  double stat =
      RelativeError(truth, DaVinciSketch::InnerProduct(F().s_a, F().s_b));
  DAVINCI_SHIFT_GATE("inner-join", tuned, stat, 0.15);
  EXPECT_GT(stat, tuned);
}

}  // namespace
}  // namespace davinci
