// Parameterized property sweeps of DaVinci Sketch invariants over memory
// budgets and workload skews (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <tuple>

#include <gtest/gtest.h>

#include "core/davinci_sketch.h"
#include "metrics/metrics.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

// (memory_kb, skew)
using Param = std::tuple<size_t, double>;

class DaVinciPropertyTest : public ::testing::TestWithParam<Param> {
 protected:
  size_t memory_bytes() const { return std::get<0>(GetParam()) * 1024; }
  double skew() const { return std::get<1>(GetParam()); }

  Trace MakeTrace(uint64_t seed) const {
    return BuildSkewedTrace("p", 120000, 12000, skew(), seed);
  }

  DaVinciSketch Build(const std::vector<uint32_t>& keys, uint64_t seed) const {
    DaVinciSketch sketch(memory_bytes(), seed);
    for (uint32_t key : keys) sketch.Insert(key, 1);
    return sketch;
  }
};

TEST_P(DaVinciPropertyTest, EstimatesAreNonNegativeOnStreams) {
  Trace trace = MakeTrace(1);
  DaVinciSketch sketch = Build(trace.keys, 1);
  GroundTruth truth(trace.keys);
  for (const auto& [key, f] : truth.frequencies()) {
    (void)f;
    EXPECT_GE(sketch.Query(key), 0) << key;
  }
}

TEST_P(DaVinciPropertyTest, TotalMassRoughlyConserved) {
  Trace trace = MakeTrace(2);
  DaVinciSketch sketch = Build(trace.keys, 2);
  GroundTruth truth(trace.keys);
  double estimated_mass = 0;
  for (const auto& [key, f] : truth.frequencies()) {
    (void)f;
    estimated_mass += static_cast<double>(sketch.Query(key));
  }
  double true_mass = static_cast<double>(trace.keys.size());
  EXPECT_NEAR(estimated_mass, true_mass, true_mass * 0.25);
}

TEST_P(DaVinciPropertyTest, MergeIsLinearOnFrequencies) {
  Trace trace = MakeTrace(3);
  size_t half = trace.keys.size() / 2;
  std::vector<uint32_t> first(trace.keys.begin(), trace.keys.begin() + half);
  std::vector<uint32_t> second(trace.keys.begin() + half, trace.keys.end());

  DaVinciSketch merged = Build(first, 3);
  DaVinciSketch other = Build(second, 3);
  merged.Merge(other);
  DaVinciSketch direct = Build(trace.keys, 3);

  // The union estimate must track the direct single-sketch estimate for
  // the top flows (both are near-exact there).
  GroundTruth truth(trace.keys);
  for (const auto& [key, f] :
       truth.HeavyHitters(static_cast<int64_t>(trace.keys.size()) / 500)) {
    double m = static_cast<double>(merged.Query(key));
    EXPECT_NEAR(m, static_cast<double>(f), f * 0.15) << key;
    EXPECT_NEAR(m, static_cast<double>(direct.Query(key)), f * 0.15) << key;
  }
}

TEST_P(DaVinciPropertyTest, SubtractIsInverseOfMerge) {
  Trace trace = MakeTrace(4);
  size_t half = trace.keys.size() / 2;
  std::vector<uint32_t> first(trace.keys.begin(), trace.keys.begin() + half);
  std::vector<uint32_t> second(trace.keys.begin() + half, trace.keys.end());

  DaVinciSketch a = Build(first, 4);
  DaVinciSketch b = Build(second, 4);
  DaVinciSketch roundtrip = a;
  roundtrip.Merge(b);
  roundtrip.Subtract(b);

  GroundTruth truth_a(first);
  for (const auto& [key, f] :
       truth_a.HeavyHitters(static_cast<int64_t>(first.size()) / 500)) {
    EXPECT_NEAR(static_cast<double>(roundtrip.Query(key)),
                static_cast<double>(f), f * 0.15)
        << key;
  }
}

TEST_P(DaVinciPropertyTest, SelfDifferenceIsZeroEverywhere) {
  Trace trace = MakeTrace(5);
  DaVinciSketch a = Build(trace.keys, 5);
  DaVinciSketch b = Build(trace.keys, 5);
  a.Subtract(b);
  GroundTruth truth(trace.keys);
  size_t nonzero = 0;
  for (const auto& [key, f] : truth.frequencies()) {
    (void)f;
    if (a.Query(key) != 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 0u);
}

TEST_P(DaVinciPropertyTest, SelfJoinMatchesSecondMoment) {
  Trace trace = MakeTrace(6);
  DaVinciSketch a = Build(trace.keys, 6);
  DaVinciSketch b = Build(trace.keys, 6);
  GroundTruth truth(trace.keys);
  double f2 = GroundTruth::InnerJoin(truth, truth);
  EXPECT_NEAR(DaVinciSketch::InnerProduct(a, b), f2, f2 * 0.05);
}

TEST_P(DaVinciPropertyTest, CardinalityWithinTenPercent) {
  Trace trace = MakeTrace(7);
  DaVinciSketch sketch = Build(trace.keys, 7);
  GroundTruth truth(trace.keys);
  EXPECT_NEAR(sketch.EstimateCardinality(),
              static_cast<double>(truth.cardinality()),
              truth.cardinality() * 0.10);
}

TEST_P(DaVinciPropertyTest, HeavyHittersNoLargeMisses) {
  Trace trace = MakeTrace(8);
  DaVinciSketch sketch = Build(trace.keys, 8);
  GroundTruth truth(trace.keys);
  int64_t threshold = static_cast<int64_t>(trace.keys.size()) / 1000;
  auto reported = sketch.HeavyHitters(threshold);
  std::unordered_map<uint32_t, int64_t> reported_map(reported.begin(),
                                                     reported.end());
  // Every flow at 2× the threshold must be reported.
  for (const auto& [key, f] : truth.HeavyHitters(threshold * 2)) {
    EXPECT_TRUE(reported_map.count(key)) << "missed flow of size " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MemoryAndSkew, DaVinciPropertyTest,
    ::testing::Combine(::testing::Values<size_t>(150, 300, 600),
                       ::testing::Values(0.8, 1.05, 1.3)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return "kb" + std::to_string(std::get<0>(info.param)) + "_skew" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

}  // namespace
}  // namespace davinci
