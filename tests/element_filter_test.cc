#include "core/element_filter.h"

#include <gtest/gtest.h>

namespace davinci {
namespace {

ElementFilter MakeFilter(int64_t threshold = 16, size_t bytes = 16 * 1024,
                         uint64_t seed = 1) {
  return ElementFilter(bytes, {8, 16}, threshold, seed);
}

TEST(ElementFilterTest, AbsorbsBelowThreshold) {
  ElementFilter ef = MakeFilter();
  EXPECT_EQ(ef.Insert(5, 10), 0);
  EXPECT_EQ(ef.Query(5), 10);
}

TEST(ElementFilterTest, OverflowBeyondThreshold) {
  ElementFilter ef = MakeFilter(16);
  EXPECT_EQ(ef.Insert(5, 10), 0);
  EXPECT_EQ(ef.Insert(5, 10), 4);   // only 6 more fit under T=16
  EXPECT_EQ(ef.Insert(5, 100), 100);  // everything overflows now
  EXPECT_EQ(ef.Query(5), 16);
}

TEST(ElementFilterTest, RetainsAtMostTPerFlow) {
  ElementFilter ef = MakeFilter(16);
  int64_t overflow_total = 0;
  for (int i = 0; i < 100; ++i) {
    overflow_total += ef.Insert(77, 1);
  }
  EXPECT_EQ(ef.Query(77), 16);
  EXPECT_EQ(overflow_total, 100 - 16);
}

TEST(ElementFilterTest, IndependentFlowsDoNotInterfereAtLowLoad) {
  ElementFilter ef = MakeFilter(16, 64 * 1024);
  for (uint32_t key = 1; key <= 50; ++key) {
    ef.Insert(key, static_cast<int64_t>(key % 10 + 1));
  }
  for (uint32_t key = 1; key <= 50; ++key) {
    EXPECT_GE(ef.Query(key), static_cast<int64_t>(key % 10 + 1));
  }
  ef.CheckInvariants(InvariantMode::kAdditive);
}

TEST(ElementFilterTest, MergeAddsRetainedCounts) {
  ElementFilter a = MakeFilter(16, 16 * 1024, 3);
  ElementFilter b = MakeFilter(16, 16 * 1024, 3);
  a.Insert(9, 6);
  b.Insert(9, 5);
  a.Merge(b);
  EXPECT_EQ(a.Query(9), 11);
}

TEST(ElementFilterTest, SubtractGoesSigned) {
  ElementFilter a = MakeFilter(16, 16 * 1024, 4);
  ElementFilter b = MakeFilter(16, 16 * 1024, 4);
  a.Insert(9, 3);
  b.Insert(9, 8);
  a.Subtract(b);
  EXPECT_EQ(a.QuerySigned(9), -5);
}

TEST(ElementFilterTest, BottomLevelSupportsLinearCounting) {
  ElementFilter ef = MakeFilter(16, 32 * 1024, 5);
  size_t zeros_before = ef.BottomZeroSlots();
  for (uint32_t key = 1; key <= 200; ++key) ef.Insert(key, 1);
  size_t zeros_after = ef.BottomZeroSlots();
  EXPECT_LE(zeros_before - zeros_after, 200u);
  EXPECT_GE(zeros_before - zeros_after, 190u);  // few collisions at this load
}

TEST(ElementFilterTest, MemoryMatchesBudget) {
  ElementFilter ef = MakeFilter(16, 64 * 1024, 6);
  EXPECT_NEAR(static_cast<double>(ef.MemoryBytes()), 64.0 * 1024, 1024.0);
}

}  // namespace
}  // namespace davinci
