// Tests for NitroSketch (sampled updates) and the configuration autotuner.

#include <gtest/gtest.h>

#include "baselines/nitro_sketch.h"
#include "core/autotune.h"
#include "core/davinci_sketch.h"
#include "metrics/metrics.h"
#include "workload/ground_truth.h"
#include "workload/trace.h"

namespace davinci {
namespace {

TEST(NitroSketchTest, FullRateMatchesCountSketchBehaviour) {
  NitroSketch nitro(64 * 1024, 5, 1.0, 1);
  for (int i = 0; i < 4000; ++i) nitro.Insert(7, 1);
  EXPECT_NEAR(static_cast<double>(nitro.Query(7)), 4000.0, 200.0);
}

TEST(NitroSketchTest, SampledUpdatesStayUnbiasedOnHeavyFlows) {
  NitroSketch nitro(128 * 1024, 5, 0.25, 2);
  for (int i = 0; i < 20000; ++i) nitro.Insert(9, 1);
  // 1/p compensation: the estimate concentrates around the true count
  // with sampling noise ~√(f/p).
  EXPECT_NEAR(static_cast<double>(nitro.Query(9)), 20000.0, 1500.0);
}

TEST(NitroSketchTest, SamplingReducesCounterTouches) {
  Trace trace = BuildSkewedTrace("t", 50000, 5000, 1.1, 3);
  NitroSketch full(64 * 1024, 5, 1.0, 4);
  NitroSketch sampled(64 * 1024, 5, 0.2, 4);
  for (uint32_t key : trace.keys) {
    full.Insert(key, 1);
    sampled.Insert(key, 1);
  }
  EXPECT_LT(sampled.MemoryAccesses(), full.MemoryAccesses() / 3);
}

TEST(NitroSketchTest, TraceAreReasonableAtQuarterRate) {
  Trace trace = BuildSkewedTrace("t", 200000, 20000, 1.1, 5);
  NitroSketch nitro(200 * 1024, 5, 0.25, 6);
  for (uint32_t key : trace.keys) nitro.Insert(key, 1);
  GroundTruth truth(trace.keys);
  // Sampling noise dominates the mice; check the elephants.
  for (const auto& [key, f] :
       truth.HeavyHitters(static_cast<int64_t>(trace.keys.size()) / 200)) {
    EXPECT_NEAR(static_cast<double>(nitro.Query(key)),
                static_cast<double>(f), f * 0.25)
        << key;
  }
}

TEST(AutotuneTest, ReturnsAConfigWithinBudget) {
  Trace trace = BuildSkewedTrace("t", 80000, 8000, 1.05, 7);
  AutotuneResult result = AutotuneConfig(trace.keys, 256 * 1024, 7);
  EXPECT_LE(result.config.TotalBytes(), 256u * 1024 + 2048);
  EXPECT_GE(result.config.TotalBytes(), 200u * 1024);
}

TEST(AutotuneTest, WinningConfigBeatsWorstGridPoint) {
  Trace trace = BuildSkewedTrace("t", 120000, 12000, 1.2, 8);
  AutotuneResult best = AutotuneConfig(trace.keys, 200 * 1024, 8);

  // Evaluate a known-bad split (FP-starved) on the same sample.
  DaVinciConfig bad =
      DaVinciConfig::FromMemorySplit(200 * 1024, 0.10, 0.60, 8);
  DaVinciSketch bad_sketch(bad);
  GroundTruth truth(trace.keys);
  for (uint32_t key : trace.keys) bad_sketch.Insert(key, 1);
  std::vector<Estimate> observations;
  for (const auto& [key, f] : truth.frequencies()) {
    observations.push_back({f, bad_sketch.Query(key)});
  }
  double bad_are = AverageRelativeError(observations);
  EXPECT_LE(best.sample_are, bad_are + 1e-9);
}

TEST(AutotuneTest, TunedConfigGeneralizesToFullStream) {
  // Tune on a 10% prefix, then measure on the full stream: the tuned
  // config must not lose to the default split by more than noise.
  Trace trace = BuildSkewedTrace("t", 200000, 20000, 1.2, 9);
  std::vector<uint32_t> prefix(trace.keys.begin(),
                               trace.keys.begin() + trace.keys.size() / 10);
  AutotuneResult tuned = AutotuneConfig(prefix, 200 * 1024, 9);

  auto run = [&](const DaVinciConfig& config) {
    DaVinciSketch sketch(config);
    for (uint32_t key : trace.keys) sketch.Insert(key, 1);
    GroundTruth truth(trace.keys);
    std::vector<Estimate> observations;
    for (const auto& [key, f] : truth.frequencies()) {
      observations.push_back({f, sketch.Query(key)});
    }
    return AverageRelativeError(observations);
  };
  double tuned_are = run(tuned.config);
  double default_are = run(DaVinciConfig::FromMemory(200 * 1024, 9));
  EXPECT_LE(tuned_are, default_are * 1.5);
}

}  // namespace
}  // namespace davinci
