// Query-path equivalence: the SIMD probe kernels must match the scalar
// reference slot-for-slot, QueryBatch must answer exactly what per-key
// Query answers (including after Merge and Subtract), and the parallel
// Fermat decode must be bit-identical for every thread count — on fresh,
// overloaded, merged and subtracted sketches.

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"
#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "core/element_filter.h"
#include "core/infrequent_part.h"
#include "test_seed.h"
#include "workload/zipf.h"

namespace davinci {
namespace {

std::vector<uint32_t> ZipfKeys(size_t n, uint64_t seed) {
  ZipfGenerator zipf(50000, 1.05, seed);
  std::vector<uint32_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<uint32_t>(zipf.Next()));
  }
  return keys;
}

// ---- probe kernels vs the scalar reference ----

TEST(ProbeKernelTest, FindLiveKeyMatchesScalarOnRandomLanes) {
  const uint64_t seed = testing::TestSeed(1);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::mt19937_64 rng(seed);
  // Small key space forces duplicates, stale keys over dead slots, and
  // needle hits in every lane position.
  std::uniform_int_distribution<uint32_t> key_dist(0, 9);
  std::uniform_int_distribution<int> count_dist(-2, 2);
  for (size_t slots : {size_t{1}, size_t{4}, size_t{7}, size_t{8},
                       size_t{12}, size_t{16}}) {
    size_t stride = simd::PaddedSlots(slots);
    for (int trial = 0; trial < 2000; ++trial) {
      std::vector<uint32_t> keys(stride, 0);
      std::vector<int64_t> counts(stride, 0);
      for (size_t i = 0; i < slots; ++i) {
        keys[i] = key_dist(rng);
        counts[i] = count_dist(rng);
      }
      uint32_t needle = key_dist(rng);
      EXPECT_EQ(
          simd::FindLiveKey(keys.data(), counts.data(), stride, needle),
          simd::FindLiveKeyScalar(keys.data(), counts.data(), stride, needle))
          << "slots=" << slots << " trial=" << trial;
      EXPECT_EQ(simd::FindZeroCount(counts.data(), stride),
                simd::FindZeroCountScalar(counts.data(), stride))
          << "slots=" << slots << " trial=" << trial;
    }
  }
}

TEST(ProbeKernelTest, PaddingSlotsAreNeverLive) {
  // A padding slot carries key 0 / count 0; probing for key 0 must never
  // surface it, and the first-zero scan must land exactly on slot `slots`
  // when the logical slots are all full.
  for (size_t slots : {size_t{1}, size_t{7}, size_t{9}}) {
    size_t stride = simd::PaddedSlots(slots);
    std::vector<uint32_t> keys(stride, 0);
    std::vector<int64_t> counts(stride, 0);
    for (size_t i = 0; i < slots; ++i) {
      keys[i] = static_cast<uint32_t>(i + 1);
      counts[i] = 1;
    }
    EXPECT_EQ(simd::FindLiveKey(keys.data(), counts.data(), stride, 0),
              SIZE_MAX);
    EXPECT_EQ(simd::FindZeroCount(counts.data(), stride),
              slots == stride ? SIZE_MAX : slots);
  }
}

// ---- QueryBatch vs per-key Query ----

void ExpectQueryBatchEquivalent(const DaVinciSketch& sketch,
                                const std::vector<uint32_t>& probes) {
  std::vector<int64_t> batch = sketch.QueryBatch(probes);
  ASSERT_EQ(batch.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(batch[i], sketch.Query(probes[i]))
        << "key=" << probes[i] << " at index " << i;
  }
}

// Probe set: every inserted key plus keys the sketch never saw.
std::vector<uint32_t> ProbeKeys(const std::vector<uint32_t>& inserted) {
  std::vector<uint32_t> probes = inserted;
  for (uint32_t key = 1000000; key < 1002000; ++key) probes.push_back(key);
  return probes;
}

TEST(QueryBatchTest, MatchesSingleQueriesOnZipfWorkload) {
  const uint64_t seed = testing::TestSeed(2);
  DAVINCI_ANNOUNCE_SEED(seed);
  for (uint64_t s : {seed, seed + 17}) {
    std::vector<uint32_t> keys = ZipfKeys(40000, s);
    DaVinciSketch sketch(64 * 1024, s);
    sketch.InsertBatch(keys);
    ExpectQueryBatchEquivalent(sketch, ProbeKeys(keys));
  }
}

TEST(QueryBatchTest, MatchesSingleQueriesOnNonBlockMultipleBatches) {
  std::vector<uint32_t> keys = ZipfKeys(20000, 5);
  DaVinciSketch sketch(64 * 1024, 5);
  sketch.InsertBatch(keys);
  // Batch lengths around the pipeline block width, plus empty.
  for (size_t len : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                     size_t{65}, size_t{1000}}) {
    std::vector<uint32_t> probes(keys.begin(),
                                 keys.begin() + static_cast<long>(len));
    ExpectQueryBatchEquivalent(sketch, probes);
  }
}

TEST(QueryBatchTest, MatchesSingleQueriesAfterMergeAndSubtract) {
  const uint64_t seed = testing::TestSeed(3);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::vector<uint32_t> window_a = ZipfKeys(30000, seed);
  std::vector<uint32_t> window_b = ZipfKeys(30000, seed + 1);

  DaVinciSketch a(64 * 1024, 7);
  a.InsertBatch(window_a);
  DaVinciSketch b(64 * 1024, 7);
  b.InsertBatch(window_b);

  DaVinciSketch merged = a;
  merged.Merge(b);
  std::vector<uint32_t> probes = ProbeKeys(window_a);
  probes.insert(probes.end(), window_b.begin(), window_b.end());
  ExpectQueryBatchEquivalent(merged, probes);

  // Subtraction produces negative counts in every part; the batch pipeline
  // must keep answering what Query answers.
  DaVinciSketch diff = a;
  diff.Subtract(b);
  ExpectQueryBatchEquivalent(diff, probes);
}

TEST(QueryBatchTest, ConcurrentShardedBatchMatchesSingleQueries) {
  const uint64_t seed = testing::TestSeed(4);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::vector<uint32_t> keys = ZipfKeys(30000, seed);
  ConcurrentDaVinci sharded(4, 256 * 1024, 7);
  sharded.InsertBatch(keys);

  std::vector<uint32_t> probes = ProbeKeys(keys);
  std::vector<int64_t> batch = sharded.QueryBatch(probes);
  ASSERT_EQ(batch.size(), probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(batch[i], sharded.Query(probes[i])) << "key=" << probes[i];
  }
}

// ---- parallel decode determinism ----

// Decodes the same part with 1, 2, 4 and 7 worker threads and asserts the
// recovered maps are identical (not approximately — element for element).
void ExpectDecodeThreadInvariant(const InfrequentPart& ifp,
                                 const ElementFilter* filter) {
  auto reference = ifp.Decode(filter, 1);
  for (size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
    auto parallel = ifp.Decode(filter, threads);
    ASSERT_EQ(parallel.size(), reference.size()) << "threads=" << threads;
    for (const auto& [key, count] : reference) {
      auto it = parallel.find(key);
      ASSERT_TRUE(it != parallel.end())
          << "threads=" << threads << " lost key " << key;
      ASSERT_EQ(it->second, count) << "threads=" << threads << " key=" << key;
    }
  }
}

TEST(ParallelDecodeTest, BitIdenticalAcrossThreadCountsLightLoad) {
  const uint64_t seed = testing::TestSeed(5);
  DAVINCI_ANNOUNCE_SEED(seed);
  // ~40% load: everything decodes, all threads must find it all.
  InfrequentPart ifp(3, 4096, /*use_signs=*/true, seed);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> key_dist(1, 1500);
  std::uniform_int_distribution<int64_t> count_dist(1, 40);
  for (int i = 0; i < 5000; ++i) {
    ifp.Insert(key_dist(rng), count_dist(rng));
  }
  ExpectDecodeThreadInvariant(ifp, nullptr);
}

TEST(ParallelDecodeTest, BitIdenticalAcrossThreadCountsOverloaded) {
  const uint64_t seed = testing::TestSeed(6);
  DAVINCI_ANNOUNCE_SEED(seed);
  // Far beyond decodable load: peeling stalls partway and the max_peels /
  // no-progress valves engage. The stopping point must not depend on the
  // thread count either.
  InfrequentPart ifp(3, 512, /*use_signs=*/true, seed);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> key_dist(1, 100000);
  for (int i = 0; i < 20000; ++i) {
    ifp.Insert(key_dist(rng), 1);
  }
  ExpectDecodeThreadInvariant(ifp, nullptr);
}

TEST(ParallelDecodeTest, BitIdenticalAfterMergeAndSubtract) {
  const uint64_t seed = testing::TestSeed(7);
  DAVINCI_ANNOUNCE_SEED(seed);
  InfrequentPart a(3, 4096, /*use_signs=*/true, 13);
  InfrequentPart b(3, 4096, /*use_signs=*/true, 13);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> key_dist(1, 2000);
  std::uniform_int_distribution<int64_t> count_dist(1, 30);
  for (int i = 0; i < 3000; ++i) a.Insert(key_dist(rng), count_dist(rng));
  for (int i = 0; i < 3000; ++i) b.Insert(key_dist(rng), count_dist(rng));

  InfrequentPart merged = a;
  merged.Merge(b);
  ExpectDecodeThreadInvariant(merged, nullptr);

  // Differences leave negative counters; the two-sided (e, p−e) candidate
  // check runs on every peel.
  InfrequentPart diff = a;
  diff.Subtract(b);
  ExpectDecodeThreadInvariant(diff, nullptr);
}

TEST(ParallelDecodeTest, BitIdenticalWithCrossFilterValidation) {
  const uint64_t seed = testing::TestSeed(8);
  DAVINCI_ANNOUNCE_SEED(seed);
  // Route keys through a real element filter so Decode's cross-validation
  // path (threshold check per candidate) is active in every round.
  ElementFilter ef(16 * 1024, {8, 16}, /*threshold=*/16, seed);
  InfrequentPart ifp(3, 4096, /*use_signs=*/true, seed);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<uint32_t> key_dist(1, 1200);
  for (int i = 0; i < 60000; ++i) {
    uint32_t key = key_dist(rng);
    int64_t overflow = ef.InsertSigned(key, 1);
    if (overflow != 0) ifp.Insert(key, overflow);
  }
  ExpectDecodeThreadInvariant(ifp, &ef);
}

TEST(ParallelDecodeTest, SketchAnswersAreThreadCountInvariant) {
  const uint64_t seed = testing::TestSeed(9);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::vector<uint32_t> keys = ZipfKeys(40000, seed);

  DaVinciConfig config = DaVinciConfig::FromMemory(64 * 1024, 7);
  DaVinciSketch sequential(config);
  config.decode_threads = 4;
  DaVinciSketch parallel(config);
  sequential.InsertBatch(keys);
  parallel.InsertBatch(keys);

  std::vector<uint32_t> probes = ProbeKeys(keys);
  // Frequency answers (the decode cache feeds Query) and the decode-backed
  // aggregate tasks must not depend on the worker count.
  EXPECT_EQ(sequential.QueryBatch(probes), parallel.QueryBatch(probes));
  EXPECT_EQ(sequential.HeavyHitters(100), parallel.HeavyHitters(100));
  EXPECT_EQ(sequential.Distribution(), parallel.Distribution());
  EXPECT_DOUBLE_EQ(sequential.EstimateEntropy(), parallel.EstimateEntropy());
  ASSERT_EQ(sequential.DecodedFlows().size(), parallel.DecodedFlows().size());
  for (const auto& [key, count] : sequential.DecodedFlows()) {
    auto it = parallel.DecodedFlows().find(key);
    ASSERT_TRUE(it != parallel.DecodedFlows().end()) << key;
    ASSERT_EQ(it->second, count) << key;
  }
}

}  // namespace
}  // namespace davinci
