#include "baselines/hll.h"

#include <gtest/gtest.h>

namespace davinci {
namespace {

TEST(HllTest, EmptyIsZero) {
  HyperLogLog hll(12, 1);
  EXPECT_NEAR(hll.EstimateCardinality(), 0.0, 1.0);
}

TEST(HllTest, SmallRangeUsesLinearCounting) {
  HyperLogLog hll(12, 2);
  for (uint32_t key = 1; key <= 100; ++key) hll.Insert(key);
  EXPECT_NEAR(hll.EstimateCardinality(), 100.0, 5.0);
}

TEST(HllTest, LargeRangeWithinTwoPercent) {
  HyperLogLog hll(14, 3);
  const uint32_t n = 1000000;
  for (uint32_t key = 1; key <= n; ++key) hll.Insert(key);
  EXPECT_NEAR(hll.EstimateCardinality(), static_cast<double>(n), n * 0.02);
}

TEST(HllTest, DuplicatesDoNotInflate) {
  HyperLogLog hll(12, 4);
  for (int round = 0; round < 10; ++round) {
    for (uint32_t key = 1; key <= 1000; ++key) hll.Insert(key);
  }
  EXPECT_NEAR(hll.EstimateCardinality(), 1000.0, 1000.0 * 0.05);
}

TEST(HllTest, MergeEqualsUnion) {
  HyperLogLog a(12, 5), b(12, 5), u(12, 5);
  for (uint32_t key = 1; key <= 5000; ++key) {
    a.Insert(key);
    u.Insert(key);
  }
  for (uint32_t key = 4000; key <= 9000; ++key) {
    b.Insert(key);
    u.Insert(key);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateCardinality(), u.EstimateCardinality());
}

TEST(HllTest, MemoryMatchesPrecision) {
  HyperLogLog hll(10, 6);
  EXPECT_EQ(hll.MemoryBytes(), 1024u);
}

}  // namespace
}  // namespace davinci
