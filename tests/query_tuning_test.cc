// Tuning-surface equivalence for the adaptive query path: the tiny-batch
// fallthrough and every (block, prefetch) setting of QueryBatch must
// answer exactly what per-key Query answers; the persistent-pool Fermat
// decode must be bit-identical across sharding granularities and worker
// counts; the concurrent wrapper's batched view publication must converge
// to the per-mutation-publish state once flushed; and the WorkerPool must
// run every shard exactly once per round across many reused rounds.

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/worker_pool.h"
#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "core/infrequent_part.h"
#include "obs/health.h"
#include "test_seed.h"
#include "workload/zipf.h"

namespace davinci {
namespace {

std::vector<uint32_t> ZipfKeys(size_t n, uint64_t seed) {
  ZipfGenerator zipf(50000, 1.05, seed);
  std::vector<uint32_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(static_cast<uint32_t>(zipf.Next()));
  }
  return keys;
}

// ---- WorkerPool ----

TEST(WorkerPoolTest, RunsEveryShardExactlyOncePerRound) {
  WorkerPool pool(3);
  // Reuse the pool across many rounds of varying width — the generation
  // counter must keep parked workers from re-running a stale round.
  for (size_t round = 0; round < 50; ++round) {
    size_t shards = 1 + round % 9;
    std::vector<std::atomic<uint32_t>> hits(shards);
    for (auto& hit : hits) hit.store(0);
    pool.Run(shards, [&](size_t shard) {
      hits[shard].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t s = 0; s < shards; ++s) {
      ASSERT_EQ(hits[s].load(), 1u) << "round=" << round << " shard=" << s;
    }
  }
}

TEST(WorkerPoolTest, ZeroExtraWorkersRunsInline) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.extra_workers(), 0u);
  std::vector<int> hits(7, 0);
  pool.Run(hits.size(), [&](size_t shard) { ++hits[shard]; });
  for (int hit : hits) EXPECT_EQ(hit, 1);
  pool.Run(0, [&](size_t) { FAIL() << "zero shards must not invoke"; });
}

// ---- adaptive QueryBatch ----

TEST(QueryTuningTest, TinyBatchFallsThroughToSingleQueryAnswers) {
  const uint64_t seed = testing::TestSeed(41);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::vector<uint32_t> keys = ZipfKeys(30000, seed);

  DaVinciConfig config = DaVinciConfig::FromMemory(64 * 1024, 11);
  config.batch_query_min_keys = 32;
  DaVinciSketch sketch(config);
  sketch.InsertBatch(keys);

  // Every length below, at, and just above the fallthrough threshold —
  // including the boundary lengths where the pipeline takes over.
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{31}, size_t{32},
                   size_t{33}, size_t{100}}) {
    std::vector<uint32_t> probes(keys.begin(), keys.begin() + n);
    probes.resize(n);
    std::vector<int64_t> batched = sketch.QueryBatch(probes);
    ASSERT_EQ(batched.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[i], sketch.Query(probes[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(QueryTuningTest, AnswersInvariantAcrossBlockAndPrefetchSettings) {
  const uint64_t seed = testing::TestSeed(42);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::vector<uint32_t> keys = ZipfKeys(30000, seed);

  DaVinciConfig config = DaVinciConfig::FromMemory(64 * 1024, 11);
  DaVinciSketch reference(config);
  reference.InsertBatch(keys);
  std::vector<int64_t> expected = reference.QueryBatch(keys);

  for (size_t block : {size_t{64}, size_t{256}, size_t{2048}}) {
    for (size_t dist : {size_t{0}, size_t{1}, size_t{16}, size_t{63}}) {
      DaVinciConfig tuned = config;
      tuned.batch_query_block = block;
      tuned.batch_prefetch_distance = dist;
      DaVinciSketch sketch(tuned);
      sketch.InsertBatch(keys);
      ASSERT_EQ(sketch.QueryBatch(keys), expected)
          << "block=" << block << " dist=" << dist;
    }
  }
}

// ---- decode sharding granularity ----

TEST(DecodeGranularityTest, BitIdenticalAcrossGranularityBoundaries) {
  const uint64_t seed = testing::TestSeed(43);
  DAVINCI_ANNOUNCE_SEED(seed);
  InfrequentPart ifp(3, 4096, /*use_signs=*/true, seed);
  ZipfGenerator zipf(1500, 1.05, seed);
  for (int i = 0; i < 5000; ++i) {
    ifp.Insert(static_cast<uint32_t>(1 + zipf.Next()), 1 + i % 40);
  }

  std::unordered_map<uint32_t, int64_t> sequential = ifp.Decode(nullptr, 1);
  // Granularities straddling the fixture's ~12k active buckets: 1 (every
  // round splits), the defaults, the boundary where only the first rounds
  // split, and a floor so high every round runs sequentially. The pool is
  // exercised regardless of host core count (clamp off).
  for (size_t granularity : {size_t{1}, size_t{64}, size_t{4096},
                             size_t{6000}, size_t{1} << 20}) {
    for (size_t threads : {size_t{2}, size_t{4}, size_t{7}}) {
      InfrequentPart::DecodeOptions options;
      options.num_threads = threads;
      options.min_buckets_per_worker = granularity;
      options.clamp_to_hardware = false;
      std::unordered_map<uint32_t, int64_t> sharded =
          ifp.Decode(nullptr, options);
      ASSERT_EQ(sharded.size(), sequential.size())
          << "granularity=" << granularity << " threads=" << threads;
      for (const auto& [key, count] : sequential) {
        auto it = sharded.find(key);
        ASSERT_TRUE(it != sharded.end())
            << "granularity=" << granularity << " threads=" << threads
            << " lost key " << key;
        ASSERT_EQ(it->second, count)
            << "granularity=" << granularity << " threads=" << threads
            << " key=" << key;
      }
    }
  }
}

// ---- batched view publication ----

TEST(PublishBatchingTest, ReadsAreStaleUntilFlush) {
  ConcurrentDaVinci sketch(2, 64 * 1024, /*seed=*/3);
  EXPECT_EQ(sketch.publish_interval(), 1u);
  sketch.SetPublishInterval(1000);

  sketch.Insert(42, 7);
  // One mutation, interval 1000: the published view predates the insert.
  EXPECT_EQ(sketch.Query(42), 0);
  sketch.FlushViews();
  EXPECT_EQ(sketch.Query(42), 7);
  // Flushed shards have nothing pending; a second flush is a no-op.
  sketch.FlushViews();
  EXPECT_EQ(sketch.Query(42), 7);
}

TEST(PublishBatchingTest, IntervalReachedPublishesWithoutFlush) {
  ConcurrentDaVinci sketch(1, 64 * 1024, /*seed=*/3);
  sketch.SetPublishInterval(4);
  for (uint32_t i = 0; i < 3; ++i) sketch.Insert(7, 1);
  EXPECT_EQ(sketch.Query(7), 0);  // three mutations, below the interval
  sketch.Insert(7, 1);            // fourth crosses it
  EXPECT_EQ(sketch.Query(7), 4);
}

TEST(PublishBatchingTest, MixedReadersMatchQuiescedReference) {
  const uint64_t seed = testing::TestSeed(44);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::vector<uint32_t> keys = ZipfKeys(60000, seed);

  // Reference: the same stream, applied with publish-per-mutation.
  ConcurrentDaVinci reference(4, 128 * 1024, 9);
  reference.InsertBatch(keys);

  // Batched publication with concurrent lock-free readers racing the
  // writer. Reader answers are unchecked mid-flight (they lag by design);
  // what must hold is bit-equivalence after quiesce + flush.
  ConcurrentDaVinci contended(4, 128 * 1024, 9);
  contended.SetPublishInterval(512);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&contended, &keys, &stop] {
      int64_t sink = 0;
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        sink += contended.Query(keys[i % keys.size()]);
        ++i;
      }
      volatile int64_t keep = sink;
      (void)keep;
    });
  }
  contended.InsertBatch(keys);
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  contended.FlushViews();

  std::vector<uint32_t> probes(keys.begin(), keys.begin() + 4096);
  EXPECT_EQ(contended.QueryBatch(probes), reference.QueryBatch(probes));
  EXPECT_EQ(contended.EstimateCardinality(), reference.EstimateCardinality());
  contended.CheckInvariants(InvariantMode::kAdditive);
}

// ---- tuning telemetry ----

TEST(TuningHealthTest, KnobsSurfaceInHealthSnapshot) {
  DaVinciConfig config = DaVinciConfig::FromMemory(64 * 1024, 5);
  config.batch_query_min_keys = 48;
  config.batch_query_block = 512;
  config.batch_prefetch_distance = 8;
  config.decode_min_buckets_per_worker = 2048;
  DaVinciSketch sketch(config);

  obs::HealthSnapshot snapshot;
  sketch.CollectStats(&snapshot);
  EXPECT_EQ(snapshot.tuning.batch_query_min_keys, 48u);
  EXPECT_EQ(snapshot.tuning.batch_query_block, 512u);
  EXPECT_EQ(snapshot.tuning.batch_prefetch_distance, 8u);
  EXPECT_EQ(snapshot.tuning.decode_min_buckets_per_worker, 2048u);
  EXPECT_EQ(snapshot.tuning.publish_interval, 0u);  // plain sketch

  ConcurrentDaVinci shared(2, 64 * 1024, 5);
  shared.SetPublishInterval(256);
  obs::HealthSnapshot aggregated;
  shared.CollectStats(&aggregated);
  EXPECT_EQ(aggregated.tuning.publish_interval, 256u);
  EXPECT_GT(aggregated.tuning.batch_query_block, 0u);
}

}  // namespace
}  // namespace davinci
