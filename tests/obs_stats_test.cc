// Tests for the observability subsystem (src/obs/): event counters,
// latency histograms, the StatsRegistry, and the per-structure
// CollectStats hooks. Event-counter expectations branch on
// obs::kStatsEnabled so the same test source passes in both the default
// and the DAVINCI_STATS=OFF (CI preset `stats-off`) builds — in the OFF
// build every hook must compile to a no-op and report zero.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/concurrent_davinci.h"
#include "core/davinci_sketch.h"
#include "core/element_filter.h"
#include "core/frequent_part.h"
#include "core/infrequent_part.h"
#include "obs/health.h"
#include "obs/stats.h"

namespace davinci {
namespace {

uint64_t IfEnabled(uint64_t value) { return obs::kStatsEnabled ? value : 0; }

TEST(EventCounterTest, CompilesToNoOpWhenStatsOff) {
  obs::EventCounter counter;
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.value(), IfEnabled(42));
#ifndef DAVINCI_STATS
  // The stats-off stub must never accumulate anything.
  EXPECT_EQ(counter.value(), 0u);
#endif
}

TEST(LatencyHistogramTest, PercentilesBracketRecordedValues) {
  obs::LatencyHistogram histogram;
  // 97% of samples at 100ns, a 3% tail at 100µs: p50 reports the 100ns
  // bucket, p99 the tail bucket.
  for (int i = 0; i < 97; ++i) histogram.Record(100);
  for (int i = 0; i < 3; ++i) histogram.Record(100000);
  EXPECT_EQ(histogram.Count(), 100u);
  EXPECT_EQ(histogram.MaxNanos(), 100000u);
  // Log-scale bucket upper bound for values in [64, 127] is 127.
  EXPECT_GE(histogram.PercentileNanos(0.50), 100u);
  EXPECT_LE(histogram.PercentileNanos(0.50), 127u);
  // The tail bucket's nominal bound (131071) is clamped to the observed
  // maximum.
  EXPECT_EQ(histogram.PercentileNanos(0.99), 100000u);
  // p=0 degrades to the smallest non-empty bucket.
  EXPECT_LE(histogram.PercentileNanos(0.0), 127u);
}

TEST(StatsRegistryTest, CountersAndJsonDump) {
  obs::StatsRegistry registry;
  registry.Counter("inserts") += 3;
  registry.Counter("inserts") += 4;
  registry.Histogram("op_ns").Record(1000);
  std::ostringstream out;
  registry.DumpJson(out);
  std::string json = out.str();
  EXPECT_NE(json.find("\"inserts\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"op_ns\":{\"count\":1"), std::string::npos) << json;
  registry.Reset();
  EXPECT_EQ(registry.Counter("inserts").load(), 0u);
}

TEST(FrequentPartStatsTest, CaseCountersConserveInserts) {
  FrequentPart fp(1, 2, /*evict_lambda=*/1, /*seed=*/3);
  // Two slots, one bucket: two distinct keys fill, a third key exercises
  // the eviction/rejection path, repeats hit.
  for (int round = 0; round < 4; ++round) {
    for (uint32_t key = 1; key <= 5; ++key) fp.Insert(key, 1);
  }
  obs::FpHealth health;
  fp.CollectStats(&health);
  EXPECT_EQ(health.buckets, 1u);
  EXPECT_EQ(health.slots, 2u);
  EXPECT_EQ(health.live_slots, 2u);
  EXPECT_EQ(health.inserts, IfEnabled(20));
  // Every insert lands in exactly one of the four Algorithm-1 cases.
  EXPECT_EQ(health.hits + health.fills + health.evictions + health.rejections,
            health.inserts);
}

TEST(ElementFilterStatsTest, DistinctKeysPastThresholdCountPromotions) {
  constexpr int kKeys = 50;
  ElementFilter ef(4096, {8, 16}, /*threshold=*/16, /*seed=*/5);
  int promotions_seen = 0;
  for (uint32_t key = 1; key <= kKeys; ++key) {
    // 20 > T=16: every key overflows past the filter exactly once,
    // regardless of tower collisions (the overflow can only grow).
    if (ef.Insert(key, 20) != 0) ++promotions_seen;
  }
  EXPECT_EQ(promotions_seen, kKeys);
  obs::EfHealth health;
  ef.CollectStats(&health);
  EXPECT_EQ(health.threshold, 16);
  EXPECT_EQ(health.inserts, IfEnabled(kKeys));
  EXPECT_EQ(health.promotions, IfEnabled(kKeys));
  // Each key promoted at least 20 - 16 = 4 units.
  EXPECT_GE(health.promoted_units, IfEnabled(4 * kKeys));
  ASSERT_EQ(health.levels.size(), 2u);
  EXPECT_EQ(health.levels[0].bits, 8);
  EXPECT_EQ(health.levels[1].bits, 16);
  // The 8-bit level absorbed real traffic: some slots are non-zero.
  EXPECT_LT(health.levels[0].zeros, health.levels[0].width);
}

TEST(InfrequentPartStatsTest, CorruptedBucketSurfacesAsRejectedDecode) {
  InfrequentPart ifp(3, 64, /*use_signs=*/true, /*seed=*/9);
  ElementFilter ef(4096, {8, 16}, /*threshold=*/16, /*seed=*/9);
  // The IFP holds a flow the element filter never saw — the state the
  // paper's double verification exists to reject (a "pure-looking" bucket
  // whose candidate fails the cross-check).
  ifp.Insert(777, 5);
  auto flows = ifp.Decode(&ef);
  EXPECT_TRUE(flows.empty());
  obs::IfpHealth health;
  ifp.CollectStats(&health);
  EXPECT_EQ(health.rows, 3u);
  EXPECT_EQ(health.inserts, IfEnabled(1));
  EXPECT_EQ(health.decode_runs, IfEnabled(1));
  EXPECT_EQ(health.decoded_flows, 0u);
  EXPECT_GE(health.decode_rejected_by_filter, IfEnabled(1));
  // One insert touched one bucket per row.
  EXPECT_EQ(health.empty_buckets, 3u * 64u - 3u);
}

TEST(DaVinciSketchStatsTest, SnapshotReflectsStreamAndBuildMode) {
  constexpr size_t kInserts = 20000;
  DaVinciSketch sketch(64 * 1024, 11);
  for (uint32_t i = 0; i < kInserts; ++i) sketch.Insert(i % 997, 1);
  (void)sketch.Query(1);
  obs::HealthSnapshot snapshot;
  sketch.CollectStats(&snapshot);
  EXPECT_EQ(snapshot.stats_enabled, obs::kStatsEnabled);
  EXPECT_EQ(snapshot.shards, 1u);
  EXPECT_EQ(snapshot.memory_bytes, sketch.MemoryBytes());
  EXPECT_EQ(snapshot.inserts, IfEnabled(kInserts));
  EXPECT_EQ(snapshot.queries, IfEnabled(1));
  // Structural fields are live in BOTH build modes: 997 distinct flows
  // must occupy frequent-part slots.
  EXPECT_GT(snapshot.fp.live_slots, 0u);
  EXPECT_GT(snapshot.fp.Occupancy(), 0.0);
  ASSERT_FALSE(snapshot.ef.levels.empty());

  std::ostringstream out;
  snapshot.WriteJson(out);
  std::string json = out.str();
  for (const char* field : {"\"stats_enabled\"", "\"fp\"", "\"ef\"",
                            "\"ifp\"", "\"occupancy\"", "\"levels\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " in " << json;
  }
}

TEST(ConcurrentDaVinciStatsTest, AggregatesAcrossShards) {
  constexpr size_t kInserts = 10000;
  ConcurrentDaVinci sketch(4, 256 * 1024, 13);
  for (uint32_t i = 0; i < kInserts; ++i) sketch.Insert(i, 1);
  obs::HealthSnapshot snapshot;
  sketch.CollectStats(&snapshot);
  EXPECT_EQ(snapshot.shards, 4u);
  EXPECT_EQ(snapshot.inserts, IfEnabled(kInserts));
  EXPECT_EQ(snapshot.memory_bytes, sketch.MemoryBytes());
  // Per-shard FP case conservation survives aggregation.
  EXPECT_EQ(snapshot.fp.hits + snapshot.fp.fills + snapshot.fp.evictions +
                snapshot.fp.rejections,
            snapshot.inserts);
}

}  // namespace
}  // namespace davinci
