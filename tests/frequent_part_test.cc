#include "core/frequent_part.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "workload/trace.h"

namespace davinci {
namespace {

using Action = FrequentPart::InsertResult::Action;

TEST(FrequentPartTest, Case1AccumulatesResidentKey) {
  FrequentPart fp(16, 4, 8, 1);
  EXPECT_EQ(fp.Insert(7, 1).action, Action::kAbsorbed);
  EXPECT_EQ(fp.Insert(7, 1).action, Action::kAbsorbed);
  bool flag = true;
  EXPECT_EQ(fp.Query(7, &flag), 2);
  EXPECT_FALSE(flag);
}

TEST(FrequentPartTest, Case2FillsEmptySlots) {
  FrequentPart fp(1, 4, 8, 2);  // single bucket
  for (uint32_t key = 1; key <= 4; ++key) {
    EXPECT_EQ(fp.Insert(key, 1).action, Action::kAbsorbed);
  }
  for (uint32_t key = 1; key <= 4; ++key) {
    EXPECT_TRUE(fp.Contains(key));
  }
}

TEST(FrequentPartTest, Case4RejectsWhenFullAndEvictionNotDue) {
  FrequentPart fp(1, 2, 8, 3);
  fp.Insert(1, 100);
  fp.Insert(2, 100);
  FrequentPart::InsertResult result = fp.Insert(3, 1);
  EXPECT_EQ(result.action, Action::kRejected);
  EXPECT_EQ(result.overflow_key, 3u);
  EXPECT_EQ(result.overflow_count, 1);
  EXPECT_FALSE(fp.Contains(3));
}

TEST(FrequentPartTest, Case3EvictsMinimumAfterLambdaVotes) {
  const int64_t lambda = 4;
  FrequentPart fp(1, 2, lambda, 4);
  fp.Insert(1, 100);
  fp.Insert(2, 1);  // the eviction victim
  // Each rejected newcomer bumps ecnt; eviction fires when
  // ecnt > λ·min_count = 4.
  FrequentPart::InsertResult result;
  for (int i = 0; i < 5; ++i) {
    result = fp.Insert(3, 1);
  }
  EXPECT_EQ(result.action, Action::kEvicted);
  EXPECT_EQ(result.overflow_key, 2u);
  EXPECT_EQ(result.overflow_count, 1);
  EXPECT_TRUE(fp.Contains(3));
  bool flag = false;
  fp.Query(3, &flag);
  EXPECT_TRUE(flag);  // the bucket is now marked as having evicted
}

TEST(FrequentPartTest, QueryMissReturnsZero) {
  FrequentPart fp(16, 4, 8, 5);
  bool flag = true;
  EXPECT_EQ(fp.Query(12345, &flag), 0);
}

TEST(FrequentPartTest, KeepsElephantsOnSkewedStream) {
  Trace trace = BuildSkewedTrace("t", 100000, 10000, 1.1, 6);
  FrequentPart fp(512, 7, 8, 6);
  std::unordered_map<uint32_t, int64_t> truth;
  for (uint32_t key : trace.keys) {
    fp.Insert(key, 1);
    ++truth[key];
  }
  // The top-10 flows must all be resident.
  std::vector<std::pair<int64_t, uint32_t>> flows;
  for (const auto& [key, f] : truth) flows.emplace_back(f, key);
  std::sort(flows.rbegin(), flows.rend());
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(fp.Contains(flows[i].second))
        << "flow of size " << flows[i].first << " missing";
  }
  fp.CheckInvariants(InvariantMode::kAdditive);
}

TEST(FrequentPartTest, EntriesEnumerationMatchesQueries) {
  FrequentPart fp(64, 4, 8, 7);
  for (uint32_t key = 1; key <= 50; ++key) fp.Insert(key, key);
  for (const FrequentPart::Entry& entry : fp.Entries()) {
    bool flag;
    EXPECT_EQ(fp.Query(entry.key, &flag), entry.count);
  }
}

TEST(FrequentPartTest, OverwriteBucketReplacesContents) {
  FrequentPart fp(4, 3, 8, 8);
  fp.Insert(1, 10);
  size_t bucket = fp.BucketOf(1);
  fp.OverwriteBucket(bucket, {{99, 5}, {98, 4}}, true);
  EXPECT_FALSE(fp.Contains(1));
  bool flag = false;
  // 99 may hash elsewhere; read the bucket directly.
  EXPECT_EQ(fp.EntryAt(bucket, 0).key, 99u);
  EXPECT_EQ(fp.EntryAt(bucket, 0).count, 5);
  EXPECT_EQ(fp.EntryAt(bucket, 2).count, 0);
  EXPECT_TRUE(fp.BucketFlag(bucket));
  (void)flag;
}

TEST(FrequentPartTest, MemoryAccountingFormula) {
  FrequentPart fp(100, 7, 8, 9);
  EXPECT_EQ(fp.MemoryBytes(), 100u * (7 * 8 + 6));
}

TEST(FrequentPartTest, AccessesGrowWithInsertions) {
  FrequentPart fp(16, 4, 8, 10);
  uint64_t before = fp.memory_accesses();
  fp.Insert(5, 1);
  EXPECT_GT(fp.memory_accesses(), before);
}

}  // namespace
}  // namespace davinci
