// Robustness of the binary loader: random truncations and byte flips of a
// serialized sketch must never crash or hang — Load either fails cleanly
// or yields a structurally valid sketch. Also pins a digest of the
// serialized form so stats-on and stats-off builds (and future PRs) are
// caught the moment the byte layout drifts.

#include <random>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "core/davinci_sketch.h"
#include "test_seed.h"
#include "workload/trace.h"

namespace davinci {
namespace {

std::string SerializedSketchBytes(uint64_t seed) {
  Trace trace = BuildSkewedTrace("t", 20000, 2000, 1.0, seed);
  DaVinciSketch sketch(96 * 1024, seed);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);
  std::stringstream buffer;
  sketch.Save(buffer);
  return buffer.str();
}

TEST(SerializationFuzzTest, AllTruncationPointsFailCleanly) {
  std::string bytes = SerializedSketchBytes(1);
  // Sample truncation points densely near the start (header/config) and
  // sparsely through the body.
  std::vector<size_t> cut_points;
  for (size_t i = 0; i < 64 && i < bytes.size(); ++i) cut_points.push_back(i);
  for (size_t i = 64; i < bytes.size(); i += bytes.size() / 97 + 1) {
    cut_points.push_back(i);
  }
  for (size_t cut : cut_points) {
    std::stringstream truncated(bytes.substr(0, cut));
    DaVinciSketch loaded(1024, 0);
    EXPECT_FALSE(DaVinciSketch::Load(truncated, &loaded)) << "cut=" << cut;
  }
}

TEST(SerializationFuzzTest, RandomByteFlipsDoNotCrash) {
  std::string bytes = SerializedSketchBytes(2);
  const uint64_t seed = testing::TestSeed(42);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    // Flip 1-4 random bytes.
    int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[rng() % corrupted.size()] ^=
          static_cast<char>(1 + rng() % 255);
    }
    std::stringstream stream(corrupted);
    DaVinciSketch loaded(1024, 0);
    bool ok = DaVinciSketch::Load(stream, &loaded);
    if (ok) {
      // A structurally valid (if wrong-valued) sketch: queries must not
      // crash and memory accounting must be sane.
      loaded.Query(12345);
      EXPECT_GT(loaded.MemoryBytes(), 0u);
    }
  }
}

TEST(SerializationFuzzTest, GarbageStreamRejected) {
  const uint64_t seed = testing::TestSeed(7);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < 50; ++trial) {
    std::string garbage(1024, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    // Cap the vector-length prefixes so a "valid-looking" garbage header
    // cannot request a gigabyte allocation: flip the high bytes low.
    std::stringstream stream(garbage);
    DaVinciSketch loaded(1024, 0);
    bool ok = DaVinciSketch::Load(stream, &loaded);
    if (ok) {
      loaded.Query(1);
    }
  }
  SUCCEED();
}

uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

// Differential gate for the observability build flag: serialization writes
// only the config and the three parts' state vectors — never telemetry —
// so a DAVINCI_STATS=OFF build (CI preset `stats-off`) and the default
// stats-on build must produce byte-identical sketches. Both builds run
// this test against the same pinned digest, which is what enforces the
// cross-build identity within single-configuration test runs.
//
// The workload avoids std::shuffle and std:: distributions (their output
// is stdlib-implementation-specific): keys and counts come straight from
// the repo's own Mix64, so the bytes are reproducible on any toolchain.
TEST(SerializationDifferentialTest, StatsOnAndOffBuildsSerializeIdentically) {
  DaVinciSketch sketch(96 * 1024, 12345);
  for (uint64_t i = 0; i < 50000; ++i) {
    uint32_t key = static_cast<uint32_t>(Mix64(i) & 0xFFFFF);
    sketch.Insert(key, 1 + static_cast<int64_t>(i % 7));
  }
  std::stringstream buffer;
  sketch.Save(buffer);

  constexpr uint64_t kPinnedDigest = 0xEAF9FBE3F390C0D3ull;
  EXPECT_EQ(Fnv1a64(buffer.str()), kPinnedDigest)
      << "serialized byte layout changed (" << buffer.str().size()
      << " bytes) — if intentional, re-pin kPinnedDigest in BOTH the "
         "default and the stats-off build and bump the format version";

  // The pinned bytes still round-trip.
  std::stringstream reread(buffer.str());
  DaVinciSketch loaded(1024, 0);
  ASSERT_TRUE(DaVinciSketch::Load(reread, &loaded));
  uint32_t probe = static_cast<uint32_t>(Mix64(1) & 0xFFFFF);
  EXPECT_EQ(loaded.Query(probe), sketch.Query(probe));

  // The DVSZ compressed path must reproduce the SAME pinned flat bytes
  // after a round trip: compression changes the wire image, never the
  // state. (This is the cross-format half of the digest gate.)
  std::stringstream dvsz;
  sketch.Save(dvsz, SketchFormat::kCompressed);
  ASSERT_LT(dvsz.str().size(), buffer.str().size());
  DaVinciSketch from_dvsz(1024, 0);
  ASSERT_TRUE(DaVinciSketch::Load(dvsz, &from_dvsz));
  std::stringstream resaved;
  from_dvsz.Save(resaved);
  EXPECT_EQ(Fnv1a64(resaved.str()), kPinnedDigest)
      << "DVSZ round trip no longer reproduces the flat byte layout";
}

// The compressed reader sits behind the same hostile-image contract as the
// flat one: truncations fail cleanly, byte flips either fail or produce a
// structurally valid sketch.
TEST(SerializationFuzzTest, CompressedTruncationPointsFailCleanly) {
  Trace trace = BuildSkewedTrace("t", 20000, 2000, 1.0, 3);
  DaVinciSketch sketch(96 * 1024, 3);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);
  std::stringstream buffer;
  sketch.Save(buffer, SketchFormat::kCompressed);
  std::string bytes = buffer.str();

  std::vector<size_t> cut_points;
  for (size_t i = 0; i < 64 && i < bytes.size(); ++i) cut_points.push_back(i);
  for (size_t i = 64; i < bytes.size(); i += bytes.size() / 97 + 1) {
    cut_points.push_back(i);
  }
  for (size_t cut : cut_points) {
    std::stringstream truncated(bytes.substr(0, cut));
    DaVinciSketch loaded(1024, 0);
    EXPECT_FALSE(DaVinciSketch::Load(truncated, &loaded)) << "cut=" << cut;
  }
}

TEST(SerializationFuzzTest, CompressedByteFlipsDoNotCrash) {
  Trace trace = BuildSkewedTrace("t", 20000, 2000, 1.0, 4);
  DaVinciSketch sketch(96 * 1024, 4);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);
  std::stringstream buffer;
  sketch.Save(buffer, SketchFormat::kCompressed);
  std::string bytes = buffer.str();

  const uint64_t seed = testing::TestSeed(43);
  DAVINCI_ANNOUNCE_SEED(seed);
  std::mt19937_64 rng(seed);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[rng() % corrupted.size()] ^=
          static_cast<char>(1 + rng() % 255);
    }
    std::stringstream stream(corrupted);
    DaVinciSketch loaded(1024, 0);
    if (DaVinciSketch::Load(stream, &loaded)) {
      loaded.Query(12345);
      EXPECT_GT(loaded.MemoryBytes(), 0u);
    }
  }
}

}  // namespace
}  // namespace davinci
