// Robustness of the binary loader: random truncations and byte flips of a
// serialized sketch must never crash or hang — Load either fails cleanly
// or yields a structurally valid sketch.

#include <random>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/davinci_sketch.h"
#include "workload/trace.h"

namespace davinci {
namespace {

std::string SerializedSketchBytes(uint64_t seed) {
  Trace trace = BuildSkewedTrace("t", 20000, 2000, 1.0, seed);
  DaVinciSketch sketch(96 * 1024, seed);
  for (uint32_t key : trace.keys) sketch.Insert(key, 1);
  std::stringstream buffer;
  sketch.Save(buffer);
  return buffer.str();
}

TEST(SerializationFuzzTest, AllTruncationPointsFailCleanly) {
  std::string bytes = SerializedSketchBytes(1);
  // Sample truncation points densely near the start (header/config) and
  // sparsely through the body.
  std::vector<size_t> cut_points;
  for (size_t i = 0; i < 64 && i < bytes.size(); ++i) cut_points.push_back(i);
  for (size_t i = 64; i < bytes.size(); i += bytes.size() / 97 + 1) {
    cut_points.push_back(i);
  }
  for (size_t cut : cut_points) {
    std::stringstream truncated(bytes.substr(0, cut));
    DaVinciSketch loaded(1024, 0);
    EXPECT_FALSE(DaVinciSketch::Load(truncated, &loaded)) << "cut=" << cut;
  }
}

TEST(SerializationFuzzTest, RandomByteFlipsDoNotCrash) {
  std::string bytes = SerializedSketchBytes(2);
  std::mt19937_64 rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    std::string corrupted = bytes;
    // Flip 1-4 random bytes.
    int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      corrupted[rng() % corrupted.size()] ^=
          static_cast<char>(1 + rng() % 255);
    }
    std::stringstream stream(corrupted);
    DaVinciSketch loaded(1024, 0);
    bool ok = DaVinciSketch::Load(stream, &loaded);
    if (ok) {
      // A structurally valid (if wrong-valued) sketch: queries must not
      // crash and memory accounting must be sane.
      loaded.Query(12345);
      EXPECT_GT(loaded.MemoryBytes(), 0u);
    }
  }
}

TEST(SerializationFuzzTest, GarbageStreamRejected) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    std::string garbage(1024, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    // Cap the vector-length prefixes so a "valid-looking" garbage header
    // cannot request a gigabyte allocation: flip the high bytes low.
    std::stringstream stream(garbage);
    DaVinciSketch loaded(1024, 0);
    bool ok = DaVinciSketch::Load(stream, &loaded);
    if (ok) {
      loaded.Query(1);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace davinci
