// Wire-protocol conformance of the sketch server (docs/SERVER.md):
//  - every request/response round-trips through a real socket;
//  - batched wire ingest is bit-equivalent to a direct InsertBatch into a
//    same-parameter ConcurrentDaVinci (compared on serialized bytes);
//  - all nine query tasks answered over the wire match the in-process
//    computation bit-for-bit on a seeded Zipf trace;
//  - hostile input (unknown opcodes, truncated payloads, trailing
//    garbage, oversized/zero length prefixes) gets a clean error reply
//    and never harms other connections or tenants.

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_davinci.h"
#include "obs/health.h"
#include "server/client.h"
#include "server/server.h"
#include "test_seed.h"
#include "workload/trace.h"

namespace davinci::server {
namespace {

constexpr uint32_t kShards = 4;
constexpr uint64_t kTenantBytes = 256 * 1024;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServerOptions options;
    options.workers = 2;
    server_ = std::make_unique<SketchServer>(options);
    ASSERT_TRUE(server_->Start());
    ASSERT_TRUE(client_.Connect(server_->port()));
  }

  void TearDown() override {
    client_.Close();
    server_->Stop();
  }

  std::unique_ptr<SketchServer> server_;
  Client client_;
};

std::string SerializedSnapshot(const ConcurrentDaVinci& engine) {
  std::stringstream buffer;
  engine.Snapshot().Save(buffer);
  return buffer.str();
}

TEST_F(ServerTest, PingAndTenantLifecycle) {
  EXPECT_EQ(client_.Ping(), StatusCode::kOk);

  EXPECT_EQ(client_.CreateTenant("alpha", kShards, kTenantBytes, 7),
            StatusCode::kOk);
  EXPECT_EQ(client_.CreateTenant("alpha", kShards, kTenantBytes, 7),
            StatusCode::kTenantExists);
  // Filesystem-hostile and empty names are rejected before any state.
  EXPECT_EQ(client_.CreateTenant("../evil", kShards, kTenantBytes, 7),
            StatusCode::kBadArgument);
  EXPECT_EQ(client_.CreateTenant("", kShards, kTenantBytes, 7),
            StatusCode::kBadArgument);
  // Invalid geometry: zero shards.
  EXPECT_EQ(client_.CreateTenant("beta", 0, kTenantBytes, 7),
            StatusCode::kBadArgument);

  EXPECT_EQ(client_.CreateTenant("beta", kShards, kTenantBytes, 7),
            StatusCode::kOk);
  std::vector<std::string> names;
  ASSERT_EQ(client_.ListTenants(&names), StatusCode::kOk);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "beta"}));

  EXPECT_EQ(client_.DropTenant("alpha"), StatusCode::kOk);
  EXPECT_EQ(client_.DropTenant("alpha"), StatusCode::kNoSuchTenant);
  ASSERT_EQ(client_.ListTenants(&names), StatusCode::kOk);
  EXPECT_EQ(names, (std::vector<std::string>{"beta"}));

  uint64_t epoch = 0;
  EXPECT_EQ(client_.AdvanceEpoch("beta", &epoch), StatusCode::kOk);
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(client_.AdvanceEpoch("ghost", &epoch), StatusCode::kNoSuchTenant);

  HealthReply health;
  ASSERT_EQ(client_.Health("beta", &health), StatusCode::kOk);
  EXPECT_EQ(health.shards, kShards);
  EXPECT_GT(health.memory_bytes, 0u);
  EXPECT_FALSE(health.windowed);
  EXPECT_EQ(client_.FlushViews("beta"), StatusCode::kOk);
}

TEST_F(ServerTest, BatchedIngestBitEquivalentToDirectInsertBatch) {
  const uint64_t seed = testing::TestSeed(11);
  DAVINCI_ANNOUNCE_SEED(seed);
  Trace trace = BuildSkewedTrace("ingest", 60000, 5000, 1.0, seed);
  std::vector<int64_t> ones(trace.keys.size(), 1);

  ASSERT_EQ(client_.CreateTenant("t", kShards, kTenantBytes, seed),
            StatusCode::kOk);
  // Mixed chunk sizes, plus a few single inserts, to exercise framing.
  size_t pos = 0;
  int toggle = 0;
  while (pos < trace.keys.size()) {
    size_t chunk = (toggle++ % 3 == 0) ? 1 : std::min<size_t>(
        4096, trace.keys.size() - pos);
    chunk = std::min(chunk, trace.keys.size() - pos);
    if (chunk == 1) {
      ASSERT_EQ(client_.Insert("t", trace.keys[pos], 1), StatusCode::kOk);
    } else {
      ASSERT_EQ(
          client_.InsertBatch(
              "t", std::span<const uint32_t>(trace.keys.data() + pos, chunk),
              std::span<const int64_t>(ones.data() + pos, chunk)),
          StatusCode::kOk);
    }
    pos += chunk;
  }

  ConcurrentDaVinci reference(kShards, kTenantBytes, seed);
  reference.InsertBatch(trace.keys, ones);

  // Bit-equivalence at the strongest level: the serialized merged
  // snapshots are byte-identical.
  std::shared_ptr<Tenant> tenant = server_->registry().Find("t");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(SerializedSnapshot(tenant->engine()),
            SerializedSnapshot(reference));
}

TEST_F(ServerTest, AllNineTasksMatchInProcessAnswers) {
  const uint64_t seed = testing::TestSeed(23);
  DAVINCI_ANNOUNCE_SEED(seed);
  Trace trace_a = BuildSkewedTrace("a", 50000, 4000, 1.0, seed);
  Trace trace_b = BuildSkewedTrace("b", 50000, 4000, 1.0, seed + 1);
  std::vector<int64_t> ones_a(trace_a.keys.size(), 1);
  std::vector<int64_t> ones_b(trace_b.keys.size(), 1);

  ASSERT_EQ(client_.CreateTenant("a", kShards, kTenantBytes, seed),
            StatusCode::kOk);
  ASSERT_EQ(client_.CreateTenant("b", kShards, kTenantBytes, seed),
            StatusCode::kOk);
  ASSERT_EQ(client_.InsertBatch("a", trace_a.keys, ones_a), StatusCode::kOk);
  ASSERT_EQ(client_.InsertBatch("b", trace_b.keys, ones_b), StatusCode::kOk);

  ConcurrentDaVinci ref_a(kShards, kTenantBytes, seed);
  ConcurrentDaVinci ref_b(kShards, kTenantBytes, seed);
  ref_a.InsertBatch(trace_a.keys, ones_a);
  ref_b.InsertBatch(trace_b.keys, ones_b);
  DaVinciSketch snap_a = ref_a.Snapshot();
  DaVinciSketch snap_b = ref_b.Snapshot();

  // Task 1: frequency (spot keys + batch).
  std::vector<uint32_t> probe(trace_a.keys.begin(),
                              trace_a.keys.begin() + 512);
  probe.push_back(0xdeadbeef);  // absent key
  for (uint32_t key : std::vector<uint32_t>(probe.begin(), probe.begin() + 32)) {
    int64_t wire = -1;
    ASSERT_EQ(client_.Query("a", key, &wire), StatusCode::kOk);
    EXPECT_EQ(wire, ref_a.Query(key)) << "key=" << key;
  }
  std::vector<int64_t> wire_batch;
  ASSERT_EQ(client_.QueryBatch("a", probe, &wire_batch), StatusCode::kOk);
  EXPECT_EQ(wire_batch, ref_a.QueryBatch(probe));

  // Task 2: heavy hitters.
  std::vector<std::pair<uint32_t, int64_t>> wire_pairs;
  ASSERT_EQ(client_.HeavyHitters("a", 100, &wire_pairs), StatusCode::kOk);
  EXPECT_EQ(wire_pairs, ref_a.HeavyHitters(100));

  // Task 3: heavy changers (tenant a vs tenant b).
  ASSERT_EQ(client_.HeavyChangers("a", "b", 50, &wire_pairs),
            StatusCode::kOk);
  EXPECT_EQ(wire_pairs, snap_a.HeavyChangers(snap_b, 50));

  // Task 4: cardinality — IEEE-754 bit pattern identical.
  double wire_double = 0;
  ASSERT_EQ(client_.Cardinality("a", &wire_double), StatusCode::kOk);
  double local_double = ref_a.EstimateCardinality();
  EXPECT_EQ(std::memcmp(&wire_double, &local_double, sizeof(double)), 0);

  // Task 5: flow-size distribution.
  std::vector<std::pair<int64_t, int64_t>> wire_dist;
  ASSERT_EQ(client_.Distribution("a", &wire_dist), StatusCode::kOk);
  std::vector<std::pair<int64_t, int64_t>> local_dist;
  for (const auto& [size, flows] : snap_a.Distribution()) {
    local_dist.emplace_back(size, flows);
  }
  EXPECT_EQ(wire_dist, local_dist);

  // Task 6: entropy.
  ASSERT_EQ(client_.Entropy("a", &wire_double), StatusCode::kOk);
  local_double = snap_a.EstimateEntropy();
  EXPECT_EQ(std::memcmp(&wire_double, &local_double, sizeof(double)), 0);

  // Task 7: union cardinality.
  ASSERT_EQ(client_.UnionCardinality("a", "b", &wire_double), StatusCode::kOk);
  {
    DaVinciSketch merged = ref_a.Snapshot();
    merged.Merge(snap_b);
    local_double = merged.EstimateCardinality();
  }
  EXPECT_EQ(std::memcmp(&wire_double, &local_double, sizeof(double)), 0);

  // Task 8: per-key signed difference.
  ASSERT_EQ(client_.DifferenceQuery("a", "b", probe, &wire_batch),
            StatusCode::kOk);
  {
    DaVinciSketch diff = ref_a.Snapshot();
    diff.Subtract(snap_b);
    EXPECT_EQ(wire_batch, diff.QueryBatch(probe));
  }

  // Task 9: inner join size.
  ASSERT_EQ(client_.InnerProduct("a", "b", &wire_double), StatusCode::kOk);
  local_double = DaVinciSketch::InnerProduct(snap_a, snap_b);
  EXPECT_EQ(std::memcmp(&wire_double, &local_double, sizeof(double)), 0);
}

TEST_F(ServerTest, WindowedTenantHeavyChangers) {
  ASSERT_EQ(client_.CreateTenant("w", kShards, kTenantBytes, 5, /*window=*/4),
            StatusCode::kOk);
  ASSERT_EQ(client_.CreateTenant("plain", kShards, kTenantBytes, 5),
            StatusCode::kOk);

  std::vector<uint32_t> epoch1(2000, 42);  // key 42 hot in epoch 1
  std::vector<int64_t> ones(epoch1.size(), 1);
  ASSERT_EQ(client_.InsertBatch("w", epoch1, ones), StatusCode::kOk);
  uint64_t epoch = 0;
  ASSERT_EQ(client_.AdvanceEpoch("w", &epoch), StatusCode::kOk);
  EXPECT_EQ(epoch, 1u);
  std::vector<uint32_t> epoch2(2000, 99);  // key 99 hot in epoch 2
  ASSERT_EQ(client_.InsertBatch("w", epoch2, ones), StatusCode::kOk);

  std::vector<std::pair<uint32_t, int64_t>> wire_pairs;
  ASSERT_EQ(client_.WindowHeavyChangers("w", 500, &wire_pairs),
            StatusCode::kOk);
  std::shared_ptr<Tenant> tenant = server_->registry().Find("w");
  ASSERT_NE(tenant, nullptr);
  EXPECT_EQ(wire_pairs, tenant->WindowHeavyChangers(500));
  EXPECT_FALSE(wire_pairs.empty());

  // A window query against an unwindowed tenant is a usage error, not
  // silence.
  EXPECT_EQ(client_.WindowHeavyChangers("plain", 500, &wire_pairs),
            StatusCode::kBadArgument);
}

TEST_F(ServerTest, CrossTenantGeometryMismatchIsRejected) {
  ASSERT_EQ(client_.CreateTenant("s1", kShards, kTenantBytes, 1),
            StatusCode::kOk);
  // Different seed => different hash functions => not mergeable.
  ASSERT_EQ(client_.CreateTenant("s2", kShards, kTenantBytes, 2),
            StatusCode::kOk);

  double out_d = 0;
  std::vector<std::pair<uint32_t, int64_t>> out_pairs;
  std::vector<int64_t> out_counts;
  std::vector<uint32_t> keys{1, 2, 3};
  EXPECT_EQ(client_.UnionCardinality("s1", "s2", &out_d),
            StatusCode::kBadArgument);
  EXPECT_EQ(client_.HeavyChangers("s1", "s2", 10, &out_pairs),
            StatusCode::kBadArgument);
  EXPECT_EQ(client_.DifferenceQuery("s1", "s2", keys, &out_counts),
            StatusCode::kBadArgument);
  EXPECT_EQ(client_.InnerProduct("s1", "s2", &out_d),
            StatusCode::kBadArgument);
  // The daemon survived every rejected pairing.
  EXPECT_EQ(client_.Ping(), StatusCode::kOk);
}

TEST_F(ServerTest, ResizeTenantRebuildsLiveAndEnforcesQuota) {
  const uint64_t seed = testing::TestSeed(31);
  DAVINCI_ANNOUNCE_SEED(seed);
  ASSERT_EQ(client_.CreateTenant("elastic", kShards, kTenantBytes, 9),
            StatusCode::kOk);
  Trace trace = BuildSkewedTrace("resize", 40000, 4000, 1.0, seed);
  std::vector<int64_t> counts(trace.keys.size(), 1);
  ASSERT_EQ(client_.InsertBatch("elastic", trace.keys, counts),
            StatusCode::kOk);
  int64_t heavy_before = 0;
  ASSERT_EQ(client_.Query("elastic", trace.keys.front(), &heavy_before),
            StatusCode::kOk);

  // Grow 2x: the reply reports the real post-resize footprint and the
  // tenant keeps serving with its state migrated.
  uint64_t new_bytes = 0;
  ASSERT_EQ(client_.ResizeTenant("elastic", 2 * kTenantBytes, &new_bytes),
            StatusCode::kOk);
  EXPECT_GT(new_bytes, kTenantBytes);
  int64_t heavy_after = 0;
  ASSERT_EQ(client_.Query("elastic", trace.keys.front(), &heavy_after),
            StatusCode::kOk);
  // The heavy key's estimate survives migration (promotion-threshold
  // slack is the only mass a rebuild may shed per flow).
  EXPECT_GE(heavy_after, heavy_before - 64);
  EXPECT_LE(heavy_after, heavy_before + 64);

  // Provenance lands in kHealth.
  HealthReply health;
  ASSERT_EQ(client_.Health("elastic", &health), StatusCode::kOk);
  EXPECT_EQ(health.resizes_applied, 1u);
  EXPECT_EQ(health.resizes_rejected, 0u);
  EXPECT_GT(health.resize_bytes_after, health.resize_bytes_before);
  EXPECT_EQ(health.resize_last_trigger,
            static_cast<uint32_t>(obs::ResizeHealth::kAdmin));

  // Quota: a capped tenant admits in-quota resizes and rejects past the
  // ceiling with kQuotaExceeded (recorded as a rejection, state intact).
  ASSERT_EQ(client_.CreateTenant("capped", kShards, kTenantBytes, 9,
                                 /*window_epochs=*/0,
                                 /*max_bytes=*/2 * kTenantBytes),
            StatusCode::kOk);
  EXPECT_EQ(client_.CreateTenant("greedy", kShards, 4 * kTenantBytes, 9,
                                 /*window_epochs=*/0,
                                 /*max_bytes=*/2 * kTenantBytes),
            StatusCode::kQuotaExceeded);
  ASSERT_EQ(client_.ResizeTenant("capped", 2 * kTenantBytes, &new_bytes),
            StatusCode::kOk);
  EXPECT_EQ(client_.ResizeTenant("capped", 4 * kTenantBytes, &new_bytes),
            StatusCode::kQuotaExceeded);
  ASSERT_EQ(client_.Health("capped", &health), StatusCode::kOk);
  EXPECT_EQ(health.resizes_applied, 1u);
  EXPECT_GE(health.resizes_rejected, 1u);

  // Degenerate budgets and missing tenants get clean errors.
  EXPECT_EQ(client_.ResizeTenant("elastic", 0), StatusCode::kBadArgument);
  EXPECT_EQ(client_.ResizeTenant("ghost", kTenantBytes),
            StatusCode::kNoSuchTenant);
  // Truncated kResizeTenant: name but no budget.
  {
    WireWriter writer;
    writer.U8(kProtocolVersion);
    writer.U8(static_cast<uint8_t>(Op::kResizeTenant));
    writer.Str("elastic");
    std::string response;
    ASSERT_TRUE(client_.Call(writer.Take(), &response));
    EXPECT_EQ(Client::ParseStatus(response), StatusCode::kMalformed);
  }
}

TEST_F(ServerTest, HostileRequestsGetCleanErrors) {
  ASSERT_EQ(client_.CreateTenant("safe", kShards, kTenantBytes, 3),
            StatusCode::kOk);
  ASSERT_EQ(client_.Insert("safe", 7, 5), StatusCode::kOk);

  // Unknown opcode: error reply, connection survives.
  {
    WireWriter writer;
    writer.U8(kProtocolVersion);
    writer.U8(0xEE);
    std::string response;
    ASSERT_TRUE(client_.Call(writer.Take(), &response));
    EXPECT_EQ(Client::ParseStatus(response), StatusCode::kUnknownOp);
  }
  // Wrong protocol version.
  {
    WireWriter writer;
    writer.U8(0x42);
    writer.U8(static_cast<uint8_t>(Op::kPing));
    std::string response;
    ASSERT_TRUE(client_.Call(writer.Take(), &response));
    EXPECT_EQ(Client::ParseStatus(response), StatusCode::kBadVersion);
  }
  // Truncated payload: kQuery without the key.
  {
    WireWriter writer;
    writer.U8(kProtocolVersion);
    writer.U8(static_cast<uint8_t>(Op::kQuery));
    writer.Str("safe");
    std::string response;
    ASSERT_TRUE(client_.Call(writer.Take(), &response));
    EXPECT_EQ(Client::ParseStatus(response), StatusCode::kMalformed);
  }
  // Trailing garbage after a well-formed request.
  {
    std::string body = Client::QueryRequest("safe", 7);
    body += "junk";
    std::string response;
    ASSERT_TRUE(client_.Call(body, &response));
    EXPECT_EQ(Client::ParseStatus(response), StatusCode::kMalformed);
  }
  // A batch whose declared key count overruns the actual bytes.
  {
    WireWriter writer;
    writer.U8(kProtocolVersion);
    writer.U8(static_cast<uint8_t>(Op::kInsertBatch));
    writer.Str("safe");
    writer.U32(1000000);  // ...but no key bytes follow
    std::string response;
    ASSERT_TRUE(client_.Call(writer.Take(), &response));
    EXPECT_EQ(Client::ParseStatus(response), StatusCode::kMalformed);
  }
  // Truncated kExportSketch: name but no format byte.
  {
    WireWriter writer;
    writer.U8(kProtocolVersion);
    writer.U8(static_cast<uint8_t>(Op::kExportSketch));
    writer.Str("safe");
    std::string response;
    ASSERT_TRUE(client_.Call(writer.Take(), &response));
    EXPECT_EQ(Client::ParseStatus(response), StatusCode::kMalformed);
  }
  // kImportMerge whose declared image count overruns the actual bytes.
  {
    WireWriter writer;
    writer.U8(kProtocolVersion);
    writer.U8(static_cast<uint8_t>(Op::kImportMerge));
    writer.Str("safe");
    writer.U32(3);  // ...but no (height, blob) entries follow
    std::string response;
    ASSERT_TRUE(client_.Call(writer.Take(), &response));
    EXPECT_EQ(Client::ParseStatus(response), StatusCode::kMalformed);
  }
  // kImportMerge with a blob length prefix past the frame's end.
  {
    WireWriter writer;
    writer.U8(kProtocolVersion);
    writer.U8(static_cast<uint8_t>(Op::kImportMerge));
    writer.Str("safe");
    writer.U32(1);
    writer.U32(0);           // source height
    writer.U32(0xFFFFFF00);  // blob "length" with no bytes behind it
    std::string response;
    ASSERT_TRUE(client_.Call(writer.Take(), &response));
    EXPECT_EQ(Client::ParseStatus(response), StatusCode::kMalformed);
  }
  // The connection is still healthy and tenant state unharmed.
  int64_t count = 0;
  ASSERT_EQ(client_.Query("safe", 7, &count), StatusCode::kOk);
  EXPECT_EQ(count, 5);
}

TEST_F(ServerTest, OversizedLengthPrefixClosesOnlyThatConnection) {
  ASSERT_EQ(client_.CreateTenant("victim", kShards, kTenantBytes, 4),
            StatusCode::kOk);
  ASSERT_EQ(client_.Insert("victim", 1, 9), StatusCode::kOk);

  Client attacker;
  ASSERT_TRUE(attacker.Connect(server_->port()));
  uint32_t huge = kMaxFrameBytes + 1;
  ASSERT_TRUE(attacker.SendRaw(&huge, sizeof(huge)));
  std::string response;
  ASSERT_TRUE(attacker.ReadResponse(&response));
  EXPECT_EQ(Client::ParseStatus(response), StatusCode::kTooLarge);
  // The stream cannot be resynchronized: the server closes it.
  EXPECT_FALSE(attacker.ReadResponse(&response));

  Client zero_attacker;
  ASSERT_TRUE(zero_attacker.Connect(server_->port()));
  uint32_t zero = 0;
  ASSERT_TRUE(zero_attacker.SendRaw(&zero, sizeof(zero)));
  ASSERT_TRUE(zero_attacker.ReadResponse(&response));
  EXPECT_EQ(Client::ParseStatus(response), StatusCode::kTooLarge);
  EXPECT_FALSE(zero_attacker.ReadResponse(&response));

  // The original connection and tenant never noticed.
  int64_t count = 0;
  ASSERT_EQ(client_.Query("victim", 1, &count), StatusCode::kOk);
  EXPECT_EQ(count, 9);
}

TEST_F(ServerTest, PipelinedRequestsAnswerInOrder) {
  ASSERT_EQ(client_.CreateTenant("p", kShards, kTenantBytes, 6),
            StatusCode::kOk);
  for (uint32_t key = 0; key < 64; ++key) {
    ASSERT_EQ(client_.Insert("p", key, static_cast<int64_t>(key) + 1),
              StatusCode::kOk);
  }
  // Send 64 queries back-to-back, then read 64 replies: order preserved.
  for (uint32_t key = 0; key < 64; ++key) {
    ASSERT_TRUE(client_.SendRequest(Client::QueryRequest("p", key)));
  }
  for (uint32_t key = 0; key < 64; ++key) {
    std::string response;
    ASSERT_TRUE(client_.ReadResponse(&response));
    ASSERT_EQ(Client::ParseStatus(response), StatusCode::kOk);
    ASSERT_EQ(response.size(), 1 + sizeof(int64_t));
    int64_t count = 0;
    std::memcpy(&count, response.data() + 1, sizeof(count));
    EXPECT_EQ(count, static_cast<int64_t>(key) + 1) << "key=" << key;
  }
}

}  // namespace
}  // namespace davinci::server
